// Package bucket implements the bucketization that lets NeuroLPM scale past
// on-chip SRAM (paper §7): every k adjacent ranges are merged into one
// bucket-directory range kept in SRAM, while the original ranges — the
// bucket array — live in DRAM and are fetched one whole bucket per query.
// The per-query DRAM traffic is therefore a single access whose size is set
// by the bucket size, independent of the RQRMI error bound.
package bucket

import (
	"fmt"

	"neurolpm/internal/keys"
	"neurolpm/internal/ranges"
	"neurolpm/internal/telemetry"
)

// Every simulated DRAM fetch passes through DRAMAddr, so counting there
// makes the fetch total exact by construction. core divides this counter by
// its bucketized-lookup counter to expose the §7 "exactly one dependent
// DRAM access per query" invariant as a live gauge.
var (
	metFetches = telemetry.Default.Counter("neurolpm_bucket_fetches_total",
		"DRAM bucket fetches issued (paper §7)")
	metFetchBytes = telemetry.Default.Counter("neurolpm_bucket_fetch_bytes_total",
		"Bytes of bucket data fetched from DRAM (paper §7.1 layout)")
)

// Directory is the SRAM-resident compression of a range array.
//
// It uses the paper's optimized layout (§7.1): directory entry i is simply
// every k-th range boundary, so one range bound of each bucket already
// resides in SRAM and only k−1 bounds must be fetched from DRAM.
type Directory struct {
	K     int // ranges per bucket
	array *ranges.Array
	lows  []keys.Value // lows[i] == array.Entries[i*K].Low
}

// Build groups the range array into buckets of k ranges. k must be at least 2
// (k == 1 would reproduce the range array itself; use the SRAM-only design
// instead).
func Build(a *ranges.Array, k int) (*Directory, error) {
	if k < 2 {
		return nil, fmt.Errorf("bucket: bucket size %d must be >= 2", k)
	}
	n := (a.Len() + k - 1) / k
	d := &Directory{K: k, array: a, lows: make([]keys.Value, n)}
	for i := 0; i < n; i++ {
		d.lows[i] = a.Entries[i*k].Low
	}
	return d, nil
}

// Len returns the number of buckets (implements rqrmi.Index).
func (d *Directory) Len() int { return len(d.lows) }

// Low returns the lower bound of bucket i (implements rqrmi.Index).
func (d *Directory) Low(i int) keys.Value { return d.lows[i] }

// Array returns the underlying (DRAM-resident) range array.
func (d *Directory) Array() *ranges.Array { return d.array }

// Bounds returns the half-open range-index span [start, end) of bucket b.
func (d *Directory) Bounds(b int) (start, end int) {
	start = b * d.K
	end = start + d.K
	if end > d.array.Len() {
		end = d.array.Len()
	}
	return start, end
}

// Search finds, within bucket b, the range containing key k (which must lie
// within the bucket's span — i.e. b == the directory index found for k). It
// returns the global range index and the number of comparisons the bucket
// search performed. This models the hardware Bucket Search module, which
// scans the fetched bucket.
func (d *Directory) Search(b int, k keys.Value) (idx, comparisons int) {
	start, end := d.Bounds(b)
	// The hardware compares the fetched bounds in order; the entry with the
	// greatest Low ≤ k wins. A linear scan over ≤ k entries mirrors that.
	idx = start
	for i := start + 1; i < end; i++ {
		comparisons++
		if k.Less(d.array.Entries[i].Low) {
			break
		}
		idx = i
	}
	return idx, comparisons
}

// SizeBytes is the directory's SRAM footprint: one range bound per bucket.
func (d *Directory) SizeBytes() int {
	return d.Len() * d.array.BytesPerEntry()
}

// BucketBytes is the DRAM fetch size of one query: the k−1 bounds that are
// not already in SRAM (§7.1), padded to the full per-bucket layout used in
// DRAM addressing.
func (d *Directory) BucketBytes() int {
	return (d.K - 1) * d.array.BytesPerEntry()
}

// DRAMAddr returns the byte address and fetch size of bucket b in the
// simulated DRAM: buckets are laid out contiguously, and the fetch skips the
// bound that already resides in SRAM.
func (d *Directory) DRAMAddr(b int) (addr uint64, size int) {
	eb := uint64(d.array.BytesPerEntry())
	stride := uint64(d.K) * eb
	size = d.BucketBytes()
	metFetches.Inc()
	metFetchBytes.Add(uint64(size))
	return uint64(b)*stride + eb, size
}
