package bucket

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
)

func buildArray(t testing.TB, width, nRules int, seed int64) *ranges.Array {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for len(rules) < nRules {
		length := 1 + rng.Intn(width)
		prefix := keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
		prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(rng.Intn(64))})
	}
	s, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ranges.Convert(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// paperExample reproduces §7.1: range array [0-3],[4-5],[6-10],[11-15] with
// buckets of size 2 gives directory [0-5],[6-15]. (The paper writes the
// first range as [1-3]; our arrays cover the whole domain, so it starts at
// 0 — the bucket structure is identical.)
func paperExample(t *testing.T) (*ranges.Array, *Directory) {
	t.Helper()
	a := &ranges.Array{
		Width: 4,
		Entries: []ranges.Entry{
			{Low: keys.FromUint64(0), Rule: 0},
			{Low: keys.FromUint64(4), Rule: 1},
			{Low: keys.FromUint64(6), Rule: 2},
			{Low: keys.FromUint64(11), Rule: 3},
		},
	}
	d, err := Build(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	return a, d
}

func TestPaperBucketExample(t *testing.T) {
	a, d := paperExample(t)
	if d.Len() != 2 {
		t.Fatalf("directory size = %d", d.Len())
	}
	// Input 9 → matching bucket range is the one starting at 6.
	b := rqrmi.Find(d, keys.FromUint64(9))
	if d.Low(b) != keys.FromUint64(6) {
		t.Fatalf("bucket low = %v", d.Low(b))
	}
	idx, _ := d.Search(b, keys.FromUint64(9))
	if a.Entries[idx].Low != keys.FromUint64(6) {
		t.Fatalf("found range low %v", a.Entries[idx].Low)
	}
}

func TestBuildRejectsSmallK(t *testing.T) {
	a := buildArray(t, 16, 50, 1)
	for _, k := range []int{-1, 0, 1} {
		if _, err := Build(a, k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestDirectoryLows(t *testing.T) {
	a := buildArray(t, 16, 100, 2)
	d, err := Build(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if d.Low(i) != a.Entries[i*8].Low {
			t.Fatalf("directory low %d mismatch", i)
		}
	}
	want := (a.Len() + 7) / 8
	if d.Len() != want {
		t.Fatalf("directory len %d, want %d", d.Len(), want)
	}
}

func TestBoundsLastBucketPartial(t *testing.T) {
	a := buildArray(t, 16, 100, 3)
	d, err := Build(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	start, end := d.Bounds(d.Len() - 1)
	if end != a.Len() {
		t.Fatalf("last bucket end %d, want %d", end, a.Len())
	}
	if end-start < 1 || end-start > 7 {
		t.Fatalf("last bucket size %d", end-start)
	}
}

// TestSearchEqualsGlobalFind: directory find + bucket search must equal the
// flat range-array search for every key (the §7 correctness argument).
func TestSearchEqualsGlobalFind(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		a := buildArray(t, 16, 200, 4)
		d, err := Build(a, k)
		if err != nil {
			t.Fatal(err)
		}
		for q := uint64(0); q < 1<<16; q += 13 {
			key := keys.FromUint64(q)
			b := rqrmi.Find(d, key)
			idx, comps := d.Search(b, key)
			if want := a.Find(key); idx != want {
				t.Fatalf("k=%d key %d: bucket search %d, flat %d", k, q, idx, want)
			}
			if comps > k-1 {
				t.Fatalf("k=%d: %d comparisons", k, comps)
			}
		}
	}
}

func TestSizeBytes(t *testing.T) {
	a := buildArray(t, 32, 300, 5)
	d, err := Build(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.SizeBytes() != d.Len()*4 {
		t.Fatalf("SizeBytes = %d", d.SizeBytes())
	}
	if d.BucketBytes() != 7*4 {
		t.Fatalf("BucketBytes = %d", d.BucketBytes())
	}
	// Paper §10.1: 32-byte buckets = 8 ranges of 4 bytes.
	d8, err := Build(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	stride := 8 * 4
	addr, size := d8.DRAMAddr(3)
	if addr != uint64(3*stride+4) {
		t.Fatalf("DRAMAddr = %d", addr)
	}
	if size != 28 {
		t.Fatalf("DRAM fetch size = %d", size)
	}
}

func TestDirectoryImplementsIndex(t *testing.T) {
	var _ rqrmi.Index = (*Directory)(nil)
}

func TestCompressionRatio(t *testing.T) {
	a := buildArray(t, 24, 2000, 6)
	d, err := Build(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(a.SizeBytes()) / float64(d.SizeBytes())
	if ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("compression ratio %.2f, want ~8", ratio)
	}
}

func BenchmarkDirectorySearch(b *testing.B) {
	a := buildArray(b, 24, 5000, 7)
	d, err := Build(a, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Intn(1 << 24)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := qs[i&1023]
		bkt := rqrmi.Find(d, k)
		d.Search(bkt, k)
	}
}
