package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"time"
)

// DefaultDrainTimeout bounds how long Serve waits for in-flight requests
// after a shutdown signal before forcing connections closed.
const DefaultDrainTimeout = 10 * time.Second

// Serve runs h on the listener until an error or a value on stop, then
// drains: http.Server.Shutdown stops accepting, lets in-flight requests
// (lookups, batch fan-outs, metric scrapes) finish within drainTimeout, and
// closes idle connections. A clean drain returns nil — the daemon's signal
// handler can distinguish "told to stop" from "fell over".
//
// The stop channel is generic so callers pass a signal.Notify channel
// (SIGINT/SIGTERM in cmd/lpmserve) and tests pass a plain channel.
func Serve(l net.Listener, h http.Handler, stop <-chan os.Signal, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		// Serve never returns nil; surface whatever broke the accept loop.
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	// The accept loop exits with ErrServerClosed after Shutdown; anything
	// else is a real failure that raced the signal.
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
