package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"sync"
	"time"
)

// DefaultDrainTimeout bounds how long Serve waits for in-flight requests
// after a shutdown signal before forcing connections closed.
const DefaultDrainTimeout = 10 * time.Second

// Unit is one drainable serving surface — the HTTP listener, the wire
// listener — run together under ServeUnits so one SIGINT/SIGTERM drains them
// all. Serve blocks until the unit stops (returning the error that broke its
// accept loop); Shutdown stops accepting, lets in-flight work finish within
// the context's deadline, and makes Serve return.
type Unit interface {
	Serve() error
	Shutdown(ctx context.Context) error
}

// HTTPUnit adapts an http.Server + listener to the Unit interface.
type HTTPUnit struct {
	Listener net.Listener
	Handler  http.Handler

	once sync.Once
	srv  *http.Server
}

// server lazily builds the http.Server so Shutdown is safe even if it wins
// the race against the Serve goroutine (http.Server tolerates Shutdown
// before Serve: the later Serve returns ErrServerClosed immediately).
func (u *HTTPUnit) server() *http.Server {
	u.once.Do(func() { u.srv = &http.Server{Handler: u.Handler} })
	return u.srv
}

// Serve runs the HTTP accept loop until Shutdown or an accept error. The
// http.ErrServerClosed sentinel from a clean Shutdown is translated to nil so
// ServeUnits treats a drained unit as success.
func (u *HTTPUnit) Serve() error {
	if err := u.server().Serve(u.Listener); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Shutdown drains in-flight HTTP requests within ctx's deadline.
func (u *HTTPUnit) Shutdown(ctx context.Context) error { return u.server().Shutdown(ctx) }

// ServeUnits runs every unit until an error or a value on stop, then drains
// them all concurrently within drainTimeout. Any unit failing its accept loop
// stops the whole group (remaining units are shut down before returning, so
// a dead wire listener does not leave HTTP half-alive). A clean stop-and-drain
// returns nil.
//
// The stop channel is generic so callers pass a signal.Notify channel
// (SIGINT/SIGTERM in cmd/lpmserve) and tests pass a plain channel.
func ServeUnits(stop <-chan os.Signal, drainTimeout time.Duration, units ...Unit) error {
	if drainTimeout <= 0 {
		drainTimeout = DefaultDrainTimeout
	}
	errc := make(chan error, len(units))
	for _, u := range units {
		u := u
		go func() { errc <- u.Serve() }()
	}
	var firstErr error
	running := len(units)
	select {
	case firstErr = <-errc:
		running--
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Shut every unit down concurrently — a slow HTTP drain must not eat the
	// wire listener's share of the timeout (and vice versa).
	shutErrs := make(chan error, len(units))
	for _, u := range units {
		u := u
		go func() { shutErrs <- u.Shutdown(ctx) }()
	}
	for range units {
		if err := <-shutErrs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Collect the remaining Serve returns; a unit that exited cleanly after
	// Shutdown reports nil.
	for ; running > 0; running-- {
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Serve runs h on the listener until an error or a value on stop, then
// drains: http.Server.Shutdown stops accepting, lets in-flight requests
// (lookups, batch fan-outs, metric scrapes) finish within drainTimeout, and
// closes idle connections. A clean drain returns nil — the daemon's signal
// handler can distinguish "told to stop" from "fell over". Kept as the
// single-listener entry point; multi-listener daemons use ServeUnits.
func Serve(l net.Listener, h http.Handler, stop <-chan os.Signal, drainTimeout time.Duration) error {
	return ServeUnits(stop, drainTimeout, &HTTPUnit{Listener: l, Handler: h})
}
