// Degraded-mode serving tests (DESIGN.md §11): /healthz must track the
// sharded update plane's health, /update must apply backpressure, and
// readers must stay correct throughout a failure storm.
package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
)

// buildFaultyShardedServer is buildShardedServer with commits routed
// through a fault injector and a configurable per-shard delta capacity.
func buildFaultyShardedServer(t *testing.T, capacity int) (*Server, *lpm.RuleSet, *shard.ShardedUpdatable, *fault.Injector) {
	t.Helper()
	rs := buildTestRuleSet(t)
	in := fault.NewInjector(7)
	cfg := quickConfig(true)
	cfg.Fault = in.Hook()
	sh, err := shard.BuildUpdatable(rs, cfg, 4, capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sh.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return NewSharded(sh, telemetry.NewRegistry()), rs, sh, in
}

// freeKey32 returns a 32-bit key in the given shard (top 2 bits of 4
// shards) with no /32 rule installed, so it can be inserted as a fresh rule.
func freeKey32(t *testing.T, rs *lpm.RuleSet, shardIdx int) keys.Value {
	t.Helper()
	base := uint64(shardIdx) << 30
	for p := uint64(0); p < 1<<30; p++ {
		k := keys.FromUint64(base | (p*2654435761)%(1<<30))
		if rs.Find(k, 32) == lpm.NoMatch {
			return k
		}
	}
	t.Fatalf("no free /32 in shard %d", shardIdx)
	return keys.Value{}
}

func postJSON(t *testing.T, h http.Handler, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, strings.NewReader(body)))
	return rec
}

// TestHealthzTracksShardHealth walks /healthz through the acceptance
// sequence: ok → degraded (200, readers still correct) → stale (503) →
// ok again after a successful commit, with the queued update applied
// exactly once.
func TestHealthzTracksShardHealth(t *testing.T) {
	srv, rs, sh, in := buildFaultyShardedServer(t, 0)
	h := srv.Handler()
	sh.SetStaleBudget(50 * time.Millisecond)
	k := freeKey32(t, rs, 1)

	var hz struct {
		Status        string        `json:"status"`
		ShardHealth   []shardHealth `json:"shard_health"`
		StaleBudgetMs int64         `json:"stale_budget_ms"`
		Pending       int           `json:"pending_inserts"`
	}
	if rec := getJSON(t, h, "/healthz", &hz); rec.Code != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("initial healthz: %d %q", rec.Code, hz.Status)
	}
	if hz.StaleBudgetMs != 50 {
		t.Fatalf("stale_budget_ms = %d, want 50", hz.StaleBudgetMs)
	}

	body := `{"op":"insert","prefix":"` + k.String() + `","len":32,"action":777}`
	if rec := postJSON(t, h, "/update", body); rec.Code != http.StatusOK {
		t.Fatalf("insert via /update: %d %s", rec.Code, rec.Body)
	}
	in.FailProb(fault.SiteRetrain, 1)
	if err := sh.CommitAll(); err == nil {
		t.Fatal("injected commit succeeded")
	}

	// Degraded: still 200, per-shard detail carries the failure.
	if rec := getJSON(t, h, "/healthz", &hz); rec.Code != http.StatusOK || hz.Status != "degraded" {
		t.Fatalf("degraded healthz: %d %q", rec.Code, hz.Status)
	}
	found := false
	for _, st := range hz.ShardHealth {
		if st.Health == "degraded" {
			found = true
			if st.ConsecutiveFailures == 0 || st.LastError == "" || st.Pending == 0 {
				t.Fatalf("degraded shard entry incomplete: %+v", st)
			}
		}
	}
	if !found {
		t.Fatalf("no degraded shard in %+v", hz.ShardHealth)
	}
	// Readers keep answering — the pending rule is served from the delta.
	var lr lookupResponse
	if rec := getJSON(t, h, "/lookup?key="+k.String(), &lr); rec.Code != http.StatusOK {
		t.Fatalf("lookup while degraded: %d", rec.Code)
	}
	if !lr.Matched || lr.Action != 777 {
		t.Fatalf("lookup while degraded = (%d,%v), want (777,true)", lr.Action, lr.Matched)
	}

	// Past the budget the endpoint flips to 503 stale.
	time.Sleep(60 * time.Millisecond)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale healthz code = %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"stale"`) {
		t.Fatalf("stale healthz body missing state: %s", rec.Body)
	}

	// Recovery: next successful commit restores ok and applies the rule once.
	in.Clear(fault.SiteRetrain)
	if err := sh.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if rec := getJSON(t, h, "/healthz", &hz); rec.Code != http.StatusOK || hz.Status != "ok" || hz.Pending != 0 {
		t.Fatalf("recovered healthz: %d %q pending=%d", rec.Code, hz.Status, hz.Pending)
	}
	if rec := getJSON(t, h, "/lookup?key="+k.String(), &lr); rec.Code != http.StatusOK || !lr.Matched || lr.Action != 777 {
		t.Fatalf("lookup after recovery = (%d,%v) code %d", lr.Action, lr.Matched, rec.Code)
	}
}

// TestUpdateEndpointLifecycle drives insert → modify → delete through
// POST /update and checks each step through /lookup.
func TestUpdateEndpointLifecycle(t *testing.T) {
	srv, rs, _ := buildShardedServer(t)
	h := srv.Handler()
	k := freeKey32(t, rs, 2)
	key := k.String()

	if rec := postJSON(t, h, "/update", `{"op":"insert","prefix":"`+key+`","len":32,"action":101}`); rec.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", rec.Code, rec.Body)
	}
	var lr lookupResponse
	if getJSON(t, h, "/lookup?key="+key, &lr); !lr.Matched || lr.Action != 101 {
		t.Fatalf("after insert: (%d,%v)", lr.Action, lr.Matched)
	}
	if rec := postJSON(t, h, "/update", `{"op":"modify","prefix":"`+key+`","len":32,"action":202}`); rec.Code != http.StatusOK {
		t.Fatalf("modify: %d %s", rec.Code, rec.Body)
	}
	if getJSON(t, h, "/lookup?key="+key, &lr); !lr.Matched || lr.Action != 202 {
		t.Fatalf("after modify: (%d,%v)", lr.Action, lr.Matched)
	}
	if rec := postJSON(t, h, "/update", `{"op":"delete","prefix":"`+key+`","len":32}`); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", rec.Code, rec.Body)
	}
	// After deleting the /32 the answer must match the trie oracle again.
	oracle := lpm.NewTrieMatcher(rs)
	want, wantOK := oracle.Lookup(k)
	if getJSON(t, h, "/lookup?key="+key, &lr); lr.Matched != wantOK || (wantOK && lr.Action != want) {
		t.Fatalf("after delete: (%d,%v), oracle (%d,%v)", lr.Action, lr.Matched, want, wantOK)
	}
}

// TestUpdateEndpointRejectsBadInput is the table-driven bad-input sweep for
// POST /update: every malformed request must produce the right status and
// a JSON error payload.
func TestUpdateEndpointRejectsBadInput(t *testing.T) {
	srv, _, _ := buildShardedServer(t)
	h := srv.Handler()
	cases := []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"get method", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"empty body", http.MethodPost, "", http.StatusBadRequest},
		{"truncated json", http.MethodPost, `{"op":"insert"`, http.StatusBadRequest},
		{"trailing data", http.MethodPost, `{"op":"delete","prefix":"0x1","len":32} true`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, `{"op":"insert","prefix":"0x1","len":32,"bogus":1}`, http.StatusBadRequest},
		{"unknown op", http.MethodPost, `{"op":"upsert","prefix":"0x1","len":32}`, http.StatusBadRequest},
		{"bad prefix", http.MethodPost, `{"op":"insert","prefix":"zz!!","len":32,"action":1}`, http.StatusBadRequest},
		{"bad length", http.MethodPost, `{"op":"insert","prefix":"0x1","len":99,"action":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, "/update", strings.NewReader(tc.body)))
			if rec.Code != tc.want {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.want, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), `"error"`) {
				t.Fatalf("missing JSON error payload: %s", rec.Body)
			}
		})
	}
}

// TestUpdateEndpointSingleEngineIs501: the single-engine server has no
// update plane.
func TestUpdateEndpointSingleEngineIs501(t *testing.T) {
	srv := New(buildTestEngine(t, false), telemetry.NewRegistry())
	rec := postJSON(t, srv.Handler(), "/update", `{"op":"insert","prefix":"0x1","len":32,"action":1}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("single-engine /update: %d, want 501", rec.Code)
	}
}

// TestUpdateBackpressure429: a full delta buffer must answer 429 with a
// Retry-After hint, not 500 — clients are expected to back off and retry
// after the committer drains the shard.
func TestUpdateBackpressure429(t *testing.T) {
	srv, rs, sh, _ := buildFaultyShardedServer(t, 1) // capacity 1 per shard
	h := srv.Handler()
	k1, k2 := freeKey32(t, rs, 0), freeKey32(t, rs, 0).Xor(keys.FromUint64(1))
	if rs.Find(k2, 32) != lpm.NoMatch {
		t.Skip("second probe key collides with the rule set")
	}
	if rec := postJSON(t, h, "/update", `{"op":"insert","prefix":"`+k1.String()+`","len":32,"action":1}`); rec.Code != http.StatusOK {
		t.Fatalf("first insert: %d %s", rec.Code, rec.Body)
	}
	rec := postJSON(t, h, "/update", `{"op":"insert","prefix":"`+k2.String()+`","len":32,"action":2}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow insert: %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After hint")
	}
	// Draining the shard unblocks writes.
	if err := sh.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if rec := postJSON(t, h, "/update", `{"op":"insert","prefix":"`+k2.String()+`","len":32,"action":2}`); rec.Code != http.StatusOK {
		t.Fatalf("insert after drain: %d %s", rec.Code, rec.Body)
	}
}

// TestBatchBadInputTable is the table-driven /batch sweep (satellite 3):
// malformed JSON, empty key lists and oversized batches all get 400 plus a
// JSON error payload.
func TestBatchBadInputTable(t *testing.T) {
	srv, _, _ := buildShardedServer(t)
	h := srv.Handler()
	oversized := `{"keys":[` + strings.Repeat(`"1",`, MaxBatchKeys) + `"1"]}`
	cases := []struct {
		name   string
		method string
		target string
		body   string
		want   int
	}{
		{"get no keys", http.MethodGet, "/batch", "", http.StatusBadRequest},
		{"get bad key", http.MethodGet, "/batch?keys=0x1,zz!!", "", http.StatusBadRequest},
		{"post malformed", http.MethodPost, "/batch", `{"keys": [`, http.StatusBadRequest},
		{"post wrong type", http.MethodPost, "/batch", `{"keys": "0x1"}`, http.StatusBadRequest},
		{"post empty list", http.MethodPost, "/batch", `{"keys": []}`, http.StatusBadRequest},
		{"post null keys", http.MethodPost, "/batch", `{}`, http.StatusBadRequest},
		{"post trailing data", http.MethodPost, "/batch", `{"keys":["0x1"]} {"keys":["0x2"]}`, http.StatusBadRequest},
		{"post oversized", http.MethodPost, "/batch", oversized, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.target, body))
			if rec.Code != tc.want {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.want, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), `"error"`) {
				t.Fatalf("missing JSON error payload: %s", rec.Body)
			}
		})
	}
}
