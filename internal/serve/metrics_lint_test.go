package serve

import (
	"regexp"
	"strings"
	"testing"

	"neurolpm/internal/telemetry"
)

// TestMetricNameLint enforces the registry-wide naming contract over every
// metric the serving binary registers (building an engine and a server first
// forces the lazy registrations):
//
//   - names match ^neurolpm_[a-z0-9_]+$ — one namespace, lowercase,
//     Prometheus-safe;
//   - counters end in _total (the Prometheus counter convention);
//   - only counters end in _total — a gauge named *_total misleads every
//     rate() query written against it;
//   - no name ends in _count, _sum or _bucket: the histogram exposition
//     appends exactly those suffixes, so a scalar metric using one would
//     collide with (or masquerade as) a histogram series.
//
// This is the cheap half of satellite (f): it runs on every `go test` and
// fails the build the moment a new metric breaks the contract.
func TestMetricNameLint(t *testing.T) {
	e := buildTestEngine(t, true)
	srv := New(e, telemetry.NewRegistry())
	srv.SetInfo("lint", "1")
	_ = srv.Handler()
	telemetry.SetBuildInfo(nil)

	nameRe := regexp.MustCompile(`^neurolpm_[a-z0-9_]+$`)
	entries := telemetry.Default.Entries()
	if len(entries) < 10 {
		t.Fatalf("only %d metrics registered — the lint is not seeing the real registry", len(entries))
	}
	for _, m := range entries {
		if !nameRe.MatchString(m.Name) {
			t.Errorf("%s: name does not match %s", m.Name, nameRe)
		}
		if strings.Contains(m.Name, "__") {
			t.Errorf("%s: double underscore", m.Name)
		}
		for _, reserved := range []string{"_count", "_sum", "_bucket"} {
			if strings.HasSuffix(m.Name, reserved) {
				t.Errorf("%s: reserved histogram suffix %s", m.Name, reserved)
			}
		}
		isTotal := strings.HasSuffix(m.Name, "_total")
		if m.Kind == "counter" && !isTotal {
			t.Errorf("%s: counter must end in _total", m.Name)
		}
		if m.Kind != "counter" && isTotal {
			t.Errorf("%s: %s must not end in _total (counters only)", m.Name, m.Kind)
		}
		if m.Help == "" {
			t.Errorf("%s: registered with empty help text", m.Name)
		}
	}
}
