// The flight-recorder & SLO surface (DESIGN.md §13): /slo renders windowed
// tail-latency quantiles plus per-shard drift and hotness, /debug/flightrec
// and /debug/slow expose the sampled query ring and the worst-N log, and
// /debug/hotness lists a shard's hottest buckets. Everything here reads the
// process-wide telemetry.Flight recorder and the engines' meters; nothing
// touches the query hot path.
package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/telemetry"
)

// sloWindows are the standard /slo reporting windows; "boot" is the
// cumulative since-start distribution (span_ms 0 by convention).
var sloWindows = []struct {
	label string
	d     time.Duration
}{
	{"10s", 10 * time.Second},
	{"60s", 60 * time.Second},
	{"boot", 0},
}

// sloWindow is one window row of the /slo response. Latencies come from the
// flight recorder's sampled queries (1-in-N), so Count is samples, not
// lookups; SpanMs is the actual time the window covers (windows early in the
// process life cover less than requested).
type sloWindow struct {
	Window string  `json:"window"`
	SpanMs int64   `json:"span_ms"`
	Count  uint64  `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MeanNs float64 `json:"mean_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// sloShard is one shard's model-drift and hotness row.
type sloShard struct {
	Shard       int     `json:"shard"`
	Drift       float64 `json:"drift"`
	ProbeBound  int     `json:"probe_bound"`
	HotnessSkew float64 `json:"hotness_skew"`
}

// sloResponse is the /slo JSON shape, the document lpmtop polls.
type sloResponse struct {
	SampleEvery  uint64      `json:"sample_every"`
	Recorded     uint64      `json:"recorded"`
	LookupsTotal uint64      `json:"lookups_total"`
	Windows      []sloWindow `json:"windows"`
	Shards       []sloShard  `json:"shards,omitempty"`
}

// windowRow evaluates one labelled window against the flight recorder.
func windowRow(label string, d time.Duration) sloWindow {
	s, span := telemetry.Flight.LatencyWindow(d)
	return sloWindow{
		Window: label,
		SpanMs: span.Milliseconds(),
		Count:  s.Total,
		P50Ns:  s.Quantile(0.50),
		P99Ns:  s.Quantile(0.99),
		P999Ns: s.Quantile(0.999),
		MeanNs: s.Mean(),
		MaxNs:  s.Max(),
	}
}

// sloCore builds the engine-independent part of the /slo payload, honouring
// an optional ?window=<duration> extra row.
func sloCore(r *http.Request) (sloResponse, error) {
	resp := sloResponse{
		SampleEvery:  telemetry.Flight.SampleEvery(),
		Recorded:     telemetry.Flight.Recorded(),
		LookupsTotal: telemetry.Default.Counter("neurolpm_lookups_total", "").Load(),
	}
	for _, w := range sloWindows {
		resp.Windows = append(resp.Windows, windowRow(w.label, w.d))
	}
	if q := r.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			return resp, fmt.Errorf("bad window %q (want a positive Go duration like 30s)", q)
		}
		resp.Windows = append(resp.Windows, windowRow(q, d))
	}
	return resp, nil
}

// shardRows collects the per-shard drift/hotness section in either mode
// (single-engine mode reports as shard 0).
func (s *Server) shardRows() []sloShard {
	n, at := 1, func(int) *core.Engine { return s.eng }
	if s.sh != nil {
		n, at = s.sh.Shards(), s.sh.Engine
	}
	rows := make([]sloShard, n)
	for i := 0; i < n; i++ {
		e := at(i)
		rows[i] = sloShard{
			Shard:       i,
			Drift:       e.DriftMeter().Drift(),
			ProbeBound:  e.DriftMeter().Bound(),
			HotnessSkew: e.HotSketch().Skew(),
		}
	}
	return rows
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	resp, err := sloCore(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	resp.Shards = s.shardRows()
	writeJSON(w, resp)
}

// handleSLOBare serves /slo without an engine attached (MetricsHandler —
// lpmbench -metrics): windows only, no shard section.
func handleSLOBare(w http.ResponseWriter, r *http.Request) {
	resp, err := sloCore(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, resp)
}

// flightJSON is the rendered form of one telemetry.FlightRecord.
type flightJSON struct {
	When       string           `json:"when"`
	Key        string           `json:"key"`
	Shard      int32            `json:"shard"`
	TotalNs    int64            `json:"total_ns"`
	StagesNs   map[string]int64 `json:"stages_ns"`
	Probes     int32            `json:"probes"`
	ErrBound   int32            `json:"error_bound"`
	Action     uint64           `json:"action"`
	Matched    bool             `json:"matched"`
	BucketRead bool             `json:"bucket_read"`
	Batch      bool             `json:"batch,omitempty"`
	Cache      string           `json:"cache,omitempty"`
}

func renderRecords(recs []telemetry.FlightRecord) []flightJSON {
	out := make([]flightJSON, len(recs))
	for i, rec := range recs {
		stages := make(map[string]int64, telemetry.NumStages)
		for st, ns := range rec.StageNs {
			if ns != 0 {
				stages[telemetry.StageNames[st]] = ns
			}
		}
		out[i] = flightJSON{
			When:       time.Unix(0, rec.When).UTC().Format(time.RFC3339Nano),
			Key:        keys.FromParts(rec.KeyHi, rec.KeyLo).String(),
			Shard:      rec.Shard,
			TotalNs:    rec.TotalNs,
			StagesNs:   stages,
			Probes:     rec.Probes,
			ErrBound:   rec.ErrBound,
			Action:     rec.Action,
			Matched:    rec.Matched,
			BucketRead: rec.BucketRead,
			Batch:      rec.Batch,
		}
		if rec.Cache != 0 {
			out[i].Cache = lcache.Outcome(rec.Cache).String()
		}
	}
	return out
}

// parseN reads a positive ?n= parameter, with a default and a cap.
func parseN(r *http.Request, def, max int) (int, error) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return def, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad n %q (want a positive integer)", q)
	}
	if n > max {
		n = max
	}
	return n, nil
}

// flightResponse is the /debug/flightrec and /debug/slow JSON shape.
type flightResponse struct {
	SampleEvery uint64       `json:"sample_every"`
	RingSize    int          `json:"ring_size"`
	Recorded    uint64       `json:"recorded"`
	Count       int          `json:"count"`
	Records     []flightJSON `json:"records"`
}

func handleFlightRec(w http.ResponseWriter, r *http.Request) {
	n, err := parseN(r, 64, telemetry.Flight.RingSize())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	recs := renderRecords(telemetry.Flight.Recent(n))
	writeJSON(w, flightResponse{
		SampleEvery: telemetry.Flight.SampleEvery(),
		RingSize:    telemetry.Flight.RingSize(),
		Recorded:    telemetry.Flight.Recorded(),
		Count:       len(recs),
		Records:     recs,
	})
}

func handleSlow(w http.ResponseWriter, r *http.Request) {
	n, err := parseN(r, 32, telemetry.Flight.RingSize())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	recs := renderRecords(telemetry.Flight.Slow(n))
	writeJSON(w, flightResponse{
		SampleEvery: telemetry.Flight.SampleEvery(),
		RingSize:    telemetry.Flight.RingSize(),
		Recorded:    telemetry.Flight.Recorded(),
		Count:       len(recs),
		Records:     recs,
	})
}

// hotnessResponse is the /debug/hotness JSON shape.
type hotnessResponse struct {
	Shard   int                   `json:"shard"`
	Slots   int                   `json:"slots"`
	Aliased bool                  `json:"aliased"`
	Total   uint64                `json:"total"`
	Skew    float64               `json:"skew"`
	Top     []telemetry.HotBucket `json:"top"`
}

func (s *Server) handleHotness(w http.ResponseWriter, r *http.Request) {
	shardIdx := 0
	if q := r.URL.Query().Get("shard"); q != "" {
		i, err := strconv.Atoi(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", q))
			return
		}
		shardIdx = i
	}
	var e *core.Engine
	switch {
	case s.sh != nil:
		if shardIdx < 0 || shardIdx >= s.sh.Shards() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("shard %d out of range [0,%d)", shardIdx, s.sh.Shards()))
			return
		}
		e = s.sh.Engine(shardIdx)
	default:
		if shardIdx != 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("single-engine mode has only shard 0"))
			return
		}
		e = s.eng
	}
	hs := e.HotSketch()
	n, err := parseN(r, 20, hs.Slots())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, hotnessResponse{
		Shard:   shardIdx,
		Slots:   hs.Slots(),
		Aliased: hs.Aliased(),
		Total:   hs.Total(),
		Skew:    hs.Skew(),
		Top:     hs.Top(n),
	})
}
