// Package serve is the HTTP surface of a NeuroLPM engine: lookups over
// HTTP, Prometheus-format /metrics backed by the telemetry registry (also
// published through expvar at /debug/vars), net/http/pprof, and a
// /trace?key= endpoint returning one fully-annotated query span as JSON.
// cmd/lpmserve wraps it into a daemon; lpmbench and lpmquery mount the
// metrics-only subset behind their -metrics flag.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
)

// Server serves one engine — or, in sharded mode, a ShardedUpdatable whose
// per-shard balance and rebuild telemetry ride the same /metrics surface.
// Lookups run concurrently (engines are read-only at query time; sharded
// commits swap snapshots atomically); the DRAM-path memory model is either
// the thread-safe Uncached tally or a mutex-guarded cache.
type Server struct {
	eng *core.Engine            // single-engine mode; nil in sharded mode
	sh  *shard.ShardedUpdatable // sharded mode; nil in single-engine mode
	reg *telemetry.Registry

	mu    sync.Mutex // guards cache when non-nil
	cache *cachesim.Cache
	plain *cachesim.Uncached

	// rcache is the single-engine result-cache plane (DESIGN.md §12): each
	// request checks a cache out of the pool, owns it for the request, and
	// returns it — no locks on the probe path. In sharded mode the plane
	// lives inside the shard router (EnableCache) and this stays nil.
	rcache *lcache.Pool

	// stack is the lookup-plane stack the endpoints serve (DESIGN.md §14):
	// compiled-uncached by default, with the cache-probe plane prepended by
	// UseResultCache. Set before serving traffic; /lookup and /batch route
	// through the stack executors with this configuration, /trace reports it.
	stack plane.StackConfig

	// info accumulates the neurolpm_build_info labels (mode, shards,
	// cache-bytes, ...); guarded by mu.
	info map[string]string
}

// New wraps an engine. reg is the registry /metrics renders; pass
// telemetry.Default to expose the engine's always-on instrumentation.
func New(eng *core.Engine, reg *telemetry.Registry) *Server {
	s := &Server{eng: eng, reg: reg, plain: &cachesim.Uncached{}}
	s.plain.Stats() // initialize the tally before concurrent use
	s.plain.Register(reg, "neurolpm_serve_dram")
	telemetry.PublishExpvar()
	telemetry.StartRotor()
	s.SetInfo("mode", "single")
	s.SetInfo("stack", s.stack.String())
	s.registerSingleObserverGauges()
	return s
}

// NewSharded wraps a sharded updatable engine: /lookup and /batch route
// through the shard fan-out (and see pending delta-buffer rules), /trace
// spans the key's sub-engine, /healthz aggregates across shards. The
// simulated-cache path is a single-engine feature and is not available.
func NewSharded(sh *shard.ShardedUpdatable, reg *telemetry.Registry) *Server {
	s := &Server{sh: sh, reg: reg, plain: &cachesim.Uncached{}}
	s.plain.Stats()
	s.plain.Register(reg, "neurolpm_serve_dram")
	telemetry.PublishExpvar()
	telemetry.StartRotor()
	s.SetInfo("mode", "sharded")
	s.SetInfo("stack", s.stack.String())
	s.SetInfo("shards", strconv.Itoa(sh.Shards()))
	return s
}

// SetInfo adds (or replaces) one neurolpm_build_info label and republishes
// the metric. The constructors seed mode/shards; cmd/lpmserve adds its
// configuration (rules, cache-bytes, flight-sample).
func (s *Server) SetInfo(key, value string) {
	s.mu.Lock()
	if s.info == nil {
		s.info = make(map[string]string)
	}
	s.info[key] = value
	cp := make(map[string]string, len(s.info))
	for k, v := range s.info {
		cp[k] = v
	}
	s.mu.Unlock()
	telemetry.SetBuildInfo(cp)
}

// registerSingleObserverGauges publishes the per-shard observability gauges
// for single-engine mode under shard label "0" (the sharded builders
// register the real per-shard families; the names and label must match).
func (s *Server) registerSingleObserverGauges() {
	s.reg.GaugeVec("neurolpm_model_drift",
		"Observed p99 secondary-search probes over the last minute divided by the compiled probe ceiling (→1 = bound headroom consumed; retrain signal)", "shard").
		Set("0", func() float64 { return s.eng.DriftMeter().Drift() })
	s.reg.GaugeVec("neurolpm_model_probe_bound",
		"Compiled worst-case secondary-search probes for the shard's live model", "shard").
		Set("0", func() float64 { return float64(s.eng.DriftMeter().Bound()) })
	s.reg.GaugeVec("neurolpm_bucket_hotness_skew",
		"Fraction of sampled bucket accesses landing in the hottest 10% of buckets (decaying window)", "shard").
		Set("0", func() float64 { return s.eng.HotSketch().Skew() })
	s.reg.GaugeVec("neurolpm_tier_resident_buckets",
		"Fast-tier-resident buckets in the shard's live engine (total buckets when untiered)", "shard").
		Set("0", func() float64 {
			if t := s.eng.TierStore(); t != nil {
				return float64(t.Stats().FastResident)
			}
			if d := s.eng.Directory(); d != nil {
				return float64((d.Array().Len() + d.K - 1) / d.K)
			}
			return 0
		})
	s.reg.GaugeVec("neurolpm_tier_fast_bytes",
		"Fast-tier-resident bucket-array bytes in the shard's live engine", "shard").
		Set("0", func() float64 {
			if t := s.eng.TierStore(); t != nil {
				return float64(t.Stats().FastBytes)
			}
			return float64(s.eng.DRAMFootprint())
		})
	bank := s.reg.GaugeVec("neurolpm_inference_bank_bytes",
		"Coefficient-bank bytes of each inference plane (float32 compiled vs int16 quantized)", "plane")
	bank.Set("compiled", func() float64 { return float64(s.eng.Compiled().BankBytes()) })
	bank.Set("quantized", func() float64 { return float64(s.eng.Quantized().BankBytes()) })
}

// width returns the served key bit width in either mode.
func (s *Server) width() int {
	if s.sh != nil {
		return s.sh.Width()
	}
	return s.eng.Width()
}

// UseCache routes DRAM accesses through a simulated SRAM cache (serialized
// by a mutex — the LRU state is not lock-free) and registers its counters.
func (s *Server) UseCache(c *cachesim.Cache) {
	s.cache = c
	c.Register(s.reg, "neurolpm_serve_cache")
}

// UseInference selects the inference plane every query endpoint routes
// through (the -inference flag): the compiled float32 plane (default), the
// reference Model arithmetic, or the quantized int32 fixed-point plane
// (DESIGN.md §15). Call before serving traffic; /trace labels the inference
// stage after the selected arm and neurolpm_build_info carries the stack.
func (s *Server) UseInference(inf plane.Inference) {
	s.stack.Inference = inf
	s.SetInfo("stack", s.stack.String())
}

// UseResultCache enables the hot-key result cache (the -cache-bytes flag):
// /lookup, /batch and /trace probe epoch-invalidated result caches of the
// given per-cache size before touching the inference pipeline. Call before
// serving traffic. bytes ≤ 0 is a no-op.
func (s *Server) UseResultCache(bytes int) {
	if bytes <= 0 {
		return
	}
	s.stack.Cached = true
	s.SetInfo("stack", s.stack.String())
	defer s.SetInfo("cache_bytes", strconv.Itoa(bytes))
	if s.sh != nil {
		s.sh.EnableCache(bytes)
		return
	}
	s.rcache = lcache.NewPool(bytes)
}

// StartTierRebalancer launches the background tier placement loop (the
// -cold-tier flag): every interval the served engines run one rebalance
// pass — sketch-driven demotions, burst-driven promotions, migrations
// published through the cache epoch. In sharded mode the loop rides the
// shard router's lifecycle (stopped by its Close); in single-engine mode the
// returned stop function ends it. interval ≤ 0 selects 1s. No-op on
// untiered engines beyond the timer tick.
func (s *Server) StartTierRebalancer(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	if s.sh != nil {
		s.sh.StartTierRebalancer(interval)
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.eng.RebalanceTier()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// resultCacheEnabled reports whether the result-cache plane is live in the
// current mode (/lookup and /trace include the "cache" field only then).
func (s *Server) resultCacheEnabled() bool {
	if s.sh != nil {
		return s.sh.CacheEnabled()
	}
	return s.rcache != nil
}

// cachedLookup answers k through the single-engine result cache: the epoch
// is loaded before the engine runs, hits skip the pipeline entirely, misses
// and stale entries run the configured memory-model path and refill.
func (s *Server) cachedLookup(k keys.Value) (core.Trace, lcache.Outcome) {
	c := s.rcache.Get()
	defer s.rcache.Put(c)
	if c.Bypassed(1) {
		tr, _ := s.lookup(k, false)
		return tr, lcache.None
	}
	epoch := s.eng.CacheEpoch().Load()
	a, m, o := c.Get(k, epoch)
	if o == lcache.Hit {
		return core.Trace{Action: a, Matched: m}, o
	}
	tr, _ := s.lookup(k, false)
	c.Put(k, epoch, tr.Action, tr.Matched)
	return tr, o
}

// read routes one query's DRAM traffic through the configured memory model
// and its inference through the stack's selected plane.
func (s *Server) lookup(k keys.Value, traced bool) (core.Trace, *telemetry.Span) {
	if s.cache != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if traced {
			tr, sp := s.eng.LookupSpanInfer(s.stack.Inference, k, s.cache)
			return tr, sp
		}
		return s.eng.LookupMemInfer(s.stack.Inference, k, s.cache), nil
	}
	if traced {
		return s.eng.LookupSpanInfer(s.stack.Inference, k, s.plain)
	}
	return s.eng.LookupMemInfer(s.stack.Inference, k, s.plain), nil
}

// Handler returns the full mux: /lookup, /batch, /trace, /metrics, /slo,
// /healthz, /debug/vars, /debug/flightrec, /debug/slow, /debug/hotness and
// /debug/pprof/*.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", s.handleLookup)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/debug/hotness", s.handleHotness)
	mountMetrics(mux, s.reg)
	return mux
}

// MetricsHandler returns the observability-only mux (/metrics, /slo,
// /debug/vars, /debug/flightrec, /debug/slow, /debug/pprof/*) for tools that
// serve no queries, like lpmbench -metrics. /slo carries the windows but no
// per-shard section (no engine is attached).
func MetricsHandler(reg *telemetry.Registry) http.Handler {
	telemetry.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/slo", handleSLOBare)
	mountMetrics(mux, reg)
	return mux
}

func mountMetrics(mux *http.ServeMux, reg *telemetry.Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
		writeRuntimeMetrics(w)
	})
	mux.HandleFunc("/debug/flightrec", handleFlightRec)
	mux.HandleFunc("/debug/slow", handleSlow)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// writeRuntimeMetrics appends Go runtime gauges to a Prometheus scrape.
func writeRuntimeMetrics(w http.ResponseWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_goroutines Number of goroutines\n# TYPE go_goroutines gauge\ngo_goroutines %d\n",
		runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_heap_alloc_bytes Heap bytes in use\n# TYPE go_heap_alloc_bytes gauge\ngo_heap_alloc_bytes %d\n",
		ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles\n# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n",
		ms.NumGC)
}

// lookupResponse is the /lookup JSON shape. Cache reports the result-cache
// outcome ("hit" | "miss" | "stale" | "off") when the plane is enabled; a
// hit answers without the pipeline, so its paper-unit fields are zero.
type lookupResponse struct {
	Key        string `json:"key"`
	Matched    bool   `json:"matched"`
	Action     uint64 `json:"action"`
	SRAMProbes int    `json:"sram_probes"`
	ErrorBound int    `json:"error_bound"`
	BucketRead bool   `json:"bucket_read"`
	DRAMBytes  int    `json:"dram_bytes"`
	Cache      string `json:"cache,omitempty"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	k, err := ParseKey(r.URL.Query().Get("key"), s.width())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if s.sh != nil {
		// One stack-executor call serves both the cached and uncached
		// configurations; the cache-outcome field appears only when the
		// plane is part of the served stack.
		action, ok, o := s.sh.LookupStack(s.stack, k)
		resp := lookupResponse{Key: k.String(), Matched: ok, Action: action}
		if s.stack.Cached {
			resp.Cache = o.String()
		}
		writeJSON(w, resp)
		return
	}
	if s.rcache != nil {
		tr, o := s.cachedLookup(k)
		writeJSON(w, lookupResponse{
			Key:        k.String(),
			Matched:    tr.Matched,
			Action:     tr.Action,
			SRAMProbes: tr.SRAMProbes,
			ErrorBound: tr.Prediction.Err,
			BucketRead: tr.BucketRead,
			DRAMBytes:  tr.DRAMBytes,
			Cache:      o.String(),
		})
		return
	}
	tr, _ := s.lookup(k, false)
	writeJSON(w, lookupResponse{
		Key:        k.String(),
		Matched:    tr.Matched,
		Action:     tr.Action,
		SRAMProbes: tr.SRAMProbes,
		ErrorBound: tr.Prediction.Err,
		BucketRead: tr.BucketRead,
		DRAMBytes:  tr.DRAMBytes,
	})
}

// traceResponse is the /trace JSON shape: the paper-units trace plus the
// timed span. Stack names the lookup-plane stack the server routes queries
// through (DESIGN.md §14); the span's stage names are the stack's stages.
type traceResponse struct {
	Lookup lookupResponse  `json:"lookup"`
	Stack  string          `json:"stack"`
	Span   *telemetry.Span `json:"span"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	k, err := ParseKey(r.URL.Query().Get("key"), s.width())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var (
		tr      core.Trace
		sp      *telemetry.Span
		outcome string
	)
	// With the result cache enabled, classify the query first (serving and
	// filling through the cache plane exactly as /lookup would) and then run
	// the annotated span regardless — /trace exists to show the pipeline, so
	// a hit still spans. The duplicated pipeline work on a miss is fine for a
	// debug endpoint.
	if s.sh != nil {
		if s.stack.Cached {
			_, _, o := s.sh.LookupStack(s.stack, k)
			outcome = o.String()
		}
		// Span the key's sub-engine directly; the delta-buffer overlay is
		// not part of the traced hardware path.
		tr, sp = s.sh.Engine(s.sh.ShardOf(k)).LookupSpanInfer(s.stack.Inference, k, s.plain)
	} else {
		if s.rcache != nil {
			_, o := s.cachedLookup(k)
			outcome = o.String()
		}
		tr, sp = s.lookup(k, true)
	}
	writeJSON(w, traceResponse{
		Lookup: lookupResponse{
			Key:        k.String(),
			Matched:    tr.Matched,
			Action:     tr.Action,
			SRAMProbes: tr.SRAMProbes,
			ErrorBound: tr.Prediction.Err,
			BucketRead: tr.BucketRead,
			DRAMBytes:  tr.DRAMBytes,
			Cache:      outcome,
		},
		Stack: s.stack.String(),
		Span:  sp,
	})
}

// MaxBatchKeys bounds one /batch request; larger workloads should stream
// several batches (each already amortizes the per-call overhead).
const MaxBatchKeys = 65536

// batchResponse is the /batch JSON shape. Results are positional.
type batchResponse struct {
	Count   int           `json:"count"`
	Results []batchResult `json:"results"`
}

type batchResult struct {
	Key     string `json:"key"`
	Matched bool   `json:"matched"`
	Action  uint64 `json:"action"`
}

// handleBatch resolves many keys in one request: GET /batch?keys=a,b,c or
// POST /batch with {"keys": ["10.0.0.1", ...]}. In sharded mode the batch
// fans out across the shard worker pool; in single-engine mode it loops the
// engine — either way one HTTP round-trip amortizes over the whole batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var raw []string
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("keys")
		if q == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("missing keys parameter"))
			return
		}
		raw = strings.Split(q, ",")
	case http.MethodPost:
		var body struct {
			Keys []string `json:"keys"`
		}
		dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
		if err := dec.Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		// Strict decode: a second document (or trailing garbage) after the
		// request object means the client is confused — reject it rather
		// than silently serving the first object.
		if _, err := dec.Token(); err != io.EOF {
			httpError(w, http.StatusBadRequest, fmt.Errorf("trailing data after JSON body"))
			return
		}
		raw = body.Keys
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	if len(raw) == 0 || len(raw) > MaxBatchKeys {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch must carry 1..%d keys, got %d", MaxBatchKeys, len(raw)))
		return
	}
	ks := make([]keys.Value, len(raw))
	for i, txt := range raw {
		k, err := ParseKey(strings.TrimSpace(txt), s.width())
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("key %d: %w", i, err))
			return
		}
		ks[i] = k
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.res = s.batchStack(ks, sc.res[:0])
	if cap(sc.rows) < len(ks) {
		sc.rows = make([]batchResult, len(ks))
	}
	sc.rows = sc.rows[:len(ks)]
	for i, res := range sc.res {
		sc.rows[i] = batchResult{Key: ks[i].String(), Matched: res.Matched, Action: res.Action}
	}
	writeJSON(w, batchResponse{Count: len(ks), Results: sc.rows})
}

// batchScratch holds one /batch request's reusable result staging; pooled so
// steady-state batch serving reuses the same backing arrays.
type batchScratch struct {
	res  []shard.Result
	rows []batchResult
}

var batchScratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// batchStack resolves ks through the served lookup-plane stack, appending the
// positional answers into dst. It is the one batch entry point shared by the
// HTTP /batch handler and the wire server's coalescer (DESIGN.md §17), and is
// safe for concurrent use in every mode.
func (s *Server) batchStack(ks []keys.Value, dst []shard.Result) []shard.Result {
	switch {
	case s.sh != nil:
		// The sharded fan-out: the batch splits across the shard worker pool
		// and sees pending delta-buffer rules.
		return append(dst, s.sh.LookupBatchStack(s.stack, ks)...)
	case s.cache == nil:
		// The unified batch stack. With the cache-probe plane in the served
		// stack, a cache is checked out of the pool for the whole batch
		// (probe every key, resolve only the misses through the pipelined
		// blocks, fill on the way out); otherwise the uncached pipeline runs
		// with DRAM traffic still tallied by the uncached model.
		var c *lcache.Cache
		var epoch uint64
		if s.stack.Cached && s.rcache != nil {
			c = s.rcache.Get()
			defer s.rcache.Put(c)
			epoch = s.eng.CacheEpoch().Load()
		}
		bs := engineBatchPool.Get().(*engineBatch)
		bs.res = s.eng.LookupBatchStack(s.stack, ks, bs.res[:0], s.plain, c, epoch)
		for _, r := range bs.res {
			dst = append(dst, shard.Result{Action: r.Action, Matched: r.Matched})
		}
		engineBatchPool.Put(bs)
		return dst
	default:
		// The cache-sim path stays per-key: every bucket read must pass
		// through the mutex-guarded LRU model.
		for _, k := range ks {
			tr, _ := s.lookup(k, false)
			dst = append(dst, shard.Result{Action: tr.Action, Matched: tr.Matched})
		}
		return dst
	}
}

// engineBatch pools the single-engine batch executor's out-slice.
type engineBatch struct{ res []core.BatchResult }

var engineBatchPool = sync.Pool{New: func() any { return &engineBatch{} }}

// shardHealth is the per-shard entry in the sharded /healthz response.
type shardHealth struct {
	Shard               int    `json:"shard"`
	Health              string `json:"health"`
	Pending             int    `json:"pending"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	StaleForMs          int64  `json:"stale_for_ms"`
	Commits             uint64 `json:"commits"`
	Failures            uint64 `json:"failures"`
	LastError           string `json:"last_error,omitempty"`
}

// handleHealthz reports liveness. In sharded mode it carries the update
// plane's per-shard state (DESIGN.md §11): the aggregate status is the
// worst shard's health, and the endpoint answers 503 only once some
// shard's staleness exceeds the configured budget — a merely degraded
// engine still serves correct answers from the last good engines plus the
// delta overlay, so load balancers should keep it in rotation.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.sh != nil {
		sramBytes, dramBytes, ranges := 0, 0, 0
		for i := 0; i < s.sh.Shards(); i++ {
			e := s.sh.Engine(i)
			sramBytes += e.SRAMUsage().Total
			dramBytes += e.DRAMFootprint()
			ranges += e.Ranges().Len()
		}
		worst := shard.Healthy
		states := make([]shardHealth, 0, s.sh.Shards())
		for _, st := range s.sh.Statuses() {
			if st.Health > worst {
				worst = st.Health
			}
			h := shardHealth{
				Shard:               st.Shard,
				Health:              st.Health.String(),
				Pending:             st.Pending,
				ConsecutiveFailures: st.ConsecutiveFailures,
				StaleForMs:          st.StaleFor.Milliseconds(),
				Commits:             st.Commits,
				Failures:            st.Failures,
			}
			if st.LastErr != nil {
				h.LastError = st.LastErr.Error()
			}
			states = append(states, h)
		}
		status, code := "ok", http.StatusOK
		switch worst {
		case shard.Degraded:
			status = "degraded"
		case shard.Stale:
			status, code = "stale", http.StatusServiceUnavailable
		}
		writeJSONStatus(w, code, map[string]any{
			"status":          status,
			"width":           s.sh.Width(),
			"shards":          s.sh.Shards(),
			"shard_health":    states,
			"stale_budget_ms": s.sh.StaleBudget().Milliseconds(),
			"ranges":          ranges,
			"sram_bytes":      sramBytes,
			"dram_bytes":      dramBytes,
			"pending_inserts": s.sh.PendingInserts(),
		})
		return
	}
	u := s.eng.SRAMUsage()
	writeJSON(w, map[string]any{
		"status":          "ok",
		"width":           s.eng.Width(),
		"bucketized":      s.eng.Bucketized(),
		"ranges":          s.eng.Ranges().Len(),
		"sram_bytes":      u.Total,
		"dram_bytes":      s.eng.DRAMFootprint(),
		"model_max_err":   s.eng.Model().MaxErr(),
		"worst_case_dram": s.eng.WorstCaseDRAMAccesses(),
	})
}

// updateRequest is the POST /update JSON shape. The prefix uses the same
// spellings ParseKey accepts for lookups, left-aligned to the engine width.
type updateRequest struct {
	Op     string `json:"op"` // insert | delete | modify
	Prefix string `json:"prefix"`
	Len    int    `json:"len"`
	Action uint64 `json:"action"`
}

// handleUpdate applies one rule-table update through the delta-buffer path
// (§6.5): inserts and deletes are visible to queries immediately, the
// retrain happens in the background committer. Backpressure is explicit —
// a full delta buffer answers 429 so clients slow down instead of the
// committer falling further behind. Single-engine mode has no update plane
// and answers 501.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	if s.sh == nil {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("updates require sharded mode (run with -shards)"))
		return
	}
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req updateRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, fmt.Errorf("trailing data after JSON body"))
		return
	}
	prefix, err := ParseKey(req.Prefix, s.width())
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("prefix: %w", err))
		return
	}
	switch req.Op {
	case "insert":
		err = s.sh.Insert(lpm.Rule{Prefix: prefix, Len: req.Len, Action: req.Action})
	case "delete":
		err = s.sh.Delete(prefix, req.Len)
	case "modify":
		err = s.sh.ModifyAction(prefix, req.Len, req.Action)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q (want insert, delete or modify)", req.Op))
		return
	}
	if err != nil {
		if errors.Is(err, core.ErrDeltaFull) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{
		"op":              req.Op,
		"ok":              true,
		"pending_inserts": s.sh.PendingInserts(),
	})
}

// jsonEnc pairs a staging buffer with a json.Encoder writing into it, pooled
// so the hot endpoints (/lookup, /batch) reuse the encoder state and buffer
// instead of allocating both per request. Staging also yields an exact
// Content-Length, which keeps the HTTP baseline honest in E29.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		jsonEncPool.Put(e)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(code)
	w.Write(e.buf.Bytes())
	jsonEncPool.Put(e)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// ParseKey accepts the key formats operators actually paste: dotted IPv4
// (width 32), colon IPv6 (width 128), 0x-prefixed or bare hex, and decimal.
func ParseKey(s string, width int) (keys.Value, error) {
	if s == "" {
		return keys.Value{}, fmt.Errorf("missing key parameter")
	}
	if width == 32 && strings.Count(s, ".") == 3 {
		var b [4]uint64
		parts := strings.Split(s, ".")
		for i, p := range parts {
			v, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return keys.Value{}, fmt.Errorf("bad IPv4 key %q", s)
			}
			b[i] = v
		}
		return keys.FromUint64(b[0]<<24 | b[1]<<16 | b[2]<<8 | b[3]), nil
	}
	if strings.Contains(s, ":") {
		if width != 128 {
			return keys.Value{}, fmt.Errorf("IPv6 key %q on a %d-bit engine", s, width)
		}
		return parseHex128(strings.ReplaceAll(expandIPv6(s), ":", ""))
	}
	hexDigits := s
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		hexDigits = s[2:]
		return parseHex128(hexDigits)
	}
	// Bare digits: decimal first, hex as fallback for a..f.
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return keys.FromUint64(v), nil
	}
	return parseHex128(hexDigits)
}

// parseHex128 parses up to 32 hex digits into a 128-bit key.
func parseHex128(h string) (keys.Value, error) {
	if h == "" || len(h) > 32 {
		return keys.Value{}, fmt.Errorf("bad hex key %q", h)
	}
	if len(h) <= 16 {
		lo, err := strconv.ParseUint(h, 16, 64)
		if err != nil {
			return keys.Value{}, fmt.Errorf("bad hex key %q", h)
		}
		return keys.FromUint64(lo), nil
	}
	hi, err := strconv.ParseUint(h[:len(h)-16], 16, 64)
	if err != nil {
		return keys.Value{}, fmt.Errorf("bad hex key %q", h)
	}
	lo, err := strconv.ParseUint(h[len(h)-16:], 16, 64)
	if err != nil {
		return keys.Value{}, fmt.Errorf("bad hex key %q", h)
	}
	return keys.FromParts(hi, lo), nil
}

// expandIPv6 rewrites an IPv6 literal into 32 contiguous hex digits.
func expandIPv6(s string) string {
	halves := strings.SplitN(s, "::", 2)
	expand := func(part string) []string {
		if part == "" {
			return nil
		}
		return strings.Split(part, ":")
	}
	head := expand(halves[0])
	var tail []string
	if len(halves) == 2 {
		tail = expand(halves[1])
	}
	groups := make([]string, 0, 8)
	groups = append(groups, head...)
	for i := len(head) + len(tail); i < 8; i++ {
		groups = append(groups, "0")
	}
	groups = append(groups, tail...)
	var b strings.Builder
	for _, g := range groups {
		for len(g) < 4 {
			g = "0" + g
		}
		b.WriteString(g)
	}
	return b.String()
}
