package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neurolpm/internal/lpm"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
)

func buildShardedServer(t *testing.T) (*Server, *lpm.RuleSet, *shard.ShardedUpdatable) {
	t.Helper()
	rs := buildTestRuleSet(t)
	sh, err := shard.BuildUpdatable(rs, quickConfig(true), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sh.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return NewSharded(sh, telemetry.NewRegistry()), rs, sh
}

func getJSON(t *testing.T, h http.Handler, target string, into any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	if rec.Code == http.StatusOK && into != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
			t.Fatalf("%s: bad JSON: %v", target, err)
		}
	}
	return rec
}

func TestBatchEndpointShardedMatchesOracle(t *testing.T) {
	srv, rs, _ := buildShardedServer(t)
	h := srv.Handler()
	oracle := lpm.NewTrieMatcher(rs)

	// Three known keys via GET, comma-separated hex.
	keyTxt := []string{"0x10203040", "0xffffffff", "0"}
	var resp batchResponse
	rec := getJSON(t, h, "/batch?keys="+strings.Join(keyTxt, ","), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /batch: %d %s", rec.Code, rec.Body)
	}
	if resp.Count != len(keyTxt) || len(resp.Results) != len(keyTxt) {
		t.Fatalf("batch count %d/%d, want %d", resp.Count, len(resp.Results), len(keyTxt))
	}
	for i, txt := range keyTxt {
		k, err := ParseKey(txt, 32)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := oracle.Lookup(k)
		got := resp.Results[i]
		if got.Matched != wantOK || (wantOK && got.Action != want) {
			t.Errorf("key %s: got (%d,%v), oracle (%d,%v)", txt, got.Action, got.Matched, want, wantOK)
		}
	}

	// POST JSON body path.
	body := `{"keys": ["0x10203040", "16.32.48.64"]}`
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /batch: %d %s", rec.Code, rec.Body)
	}
	var post batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &post); err != nil {
		t.Fatal(err)
	}
	if post.Count != 2 {
		t.Fatalf("POST count %d, want 2", post.Count)
	}
	// "16.32.48.64" is dotted-quad for 0x10203040: both spellings must agree.
	if post.Results[0] != post.Results[1] {
		t.Errorf("same key, different answers: %+v vs %+v", post.Results[0], post.Results[1])
	}
}

func TestBatchEndpointSingleEngine(t *testing.T) {
	eng := buildTestEngine(t, false)
	srv := New(eng, telemetry.NewRegistry())
	var resp batchResponse
	rec := getJSON(t, srv.Handler(), "/batch?keys=0x01020304,0xf0f0f0f0", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /batch: %d %s", rec.Code, rec.Body)
	}
	for i, res := range resp.Results {
		k, _ := ParseKey(strings.Split("0x01020304,0xf0f0f0f0", ",")[i], 32)
		want, wantOK := eng.Lookup(k)
		if res.Matched != wantOK || res.Action != want {
			t.Errorf("result %d: got (%d,%v), engine (%d,%v)", i, res.Action, res.Matched, want, wantOK)
		}
	}
}

func TestBatchEndpointRejectsBadInput(t *testing.T) {
	srv, _, _ := buildShardedServer(t)
	h := srv.Handler()
	if rec := getJSON(t, h, "/batch", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("missing keys: %d, want 400", rec.Code)
	}
	if rec := getJSON(t, h, "/batch?keys=zz!!", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("garbage key: %d, want 400", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader("{")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("truncated JSON: %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: %d, want 405", rec.Code)
	}
}

func TestShardedLookupAndHealthz(t *testing.T) {
	srv, rs, sh := buildShardedServer(t)
	h := srv.Handler()
	oracle := lpm.NewTrieMatcher(rs)

	var lr lookupResponse
	rec := getJSON(t, h, "/lookup?key=0x01020304", &lr)
	if rec.Code != http.StatusOK {
		t.Fatalf("/lookup: %d %s", rec.Code, rec.Body)
	}
	k, _ := ParseKey("0x01020304", 32)
	want, wantOK := oracle.Lookup(k)
	if lr.Matched != wantOK || (wantOK && lr.Action != want) {
		t.Errorf("/lookup: got (%d,%v), oracle (%d,%v)", lr.Action, lr.Matched, want, wantOK)
	}

	var hz map[string]any
	rec = getJSON(t, h, "/healthz", &hz)
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", rec.Code)
	}
	if got := hz["shards"]; got != float64(sh.Shards()) {
		t.Errorf("healthz shards = %v, want %d", got, sh.Shards())
	}
	if _, ok := hz["pending_inserts"]; !ok {
		t.Error("healthz missing pending_inserts")
	}

	// /trace routes to the key's sub-engine and must include a span.
	var trc traceResponse
	rec = getJSON(t, h, "/trace?key=0x01020304", &trc)
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace: %d %s", rec.Code, rec.Body)
	}
	if trc.Span == nil {
		t.Error("/trace returned no span in sharded mode")
	}
}
