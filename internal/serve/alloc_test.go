package serve

import (
	"net/http/httptest"
	"testing"

	"neurolpm/internal/telemetry"
)

// measureHandlerAllocs returns the steady-state allocations of one request
// against the mux (the recorder's own constant cost included).
func measureHandlerAllocs(t *testing.T, srv *Server, target string) float64 {
	t.Helper()
	h := srv.Handler()
	req := httptest.NewRequest("GET", target, nil)
	// Warm the pools (scratch buffers, encoder) before counting.
	for i := 0; i < 8; i++ {
		h.ServeHTTP(httptest.NewRecorder(), req)
	}
	return testing.AllocsPerRun(200, func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("%s answered %d", target, rec.Code)
		}
	})
}

// TestHandlerAllocsPinned pins the pooled response encoding on the hot HTTP
// endpoints (PR 10 satellite): /lookup and /batch stage their JSON through
// pooled encoders and reuse batch scratch, so per-request allocations must
// stay flat. The thresholds carry ~2x headroom over measured steady state
// (recorder + header-map + trace bookkeeping); an unpooled json.Encoder or
// per-request result slices blows well past them.
func TestHandlerAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are measured without -race instrumentation")
	}
	eng := buildTestEngine(t, true)
	srv := New(eng, telemetry.NewRegistry())

	lk := measureHandlerAllocs(t, srv, "/lookup?key=0x10203040")
	t.Logf("/lookup: %.1f allocs/req", lk)
	if got := lk; got > 40 {
		t.Errorf("/lookup allocates %.1f per request, pin is 40", got)
	}
	// 64-key batch: allocations must not scale with batch size (the scratch
	// and encoder are pooled; only the per-key hex key strings remain).
	target := "/batch?keys=0x10203040"
	for i := 1; i < 64; i++ {
		target += ",0x" + "1020" + "3040"
	}
	bt := measureHandlerAllocs(t, srv, target)
	t.Logf("/batch 64 keys: %.1f allocs/req", bt)
	if got := bt; got > 300 {
		t.Errorf("/batch (64 keys) allocates %.1f per request, pin is 300", got)
	}
}
