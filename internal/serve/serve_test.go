package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/telemetry"
)

func quickConfig(bucketized bool) core.Config {
	mc := rqrmi.DefaultConfig()
	mc.StageWidths = []int{1, 2, 8}
	mc.Samples = 512
	mc.Epochs = 20
	mc.MaxRounds = 2
	cfg := core.Config{Model: mc}
	if bucketized {
		cfg.BucketSize = 8
	}
	return cfg
}

func buildTestRuleSet(t testing.TB) *lpm.RuleSet {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	seen := map[string]bool{}
	var rules []lpm.Rule
	for len(rules) < 300 {
		length := 1 + rng.Intn(32)
		prefix := keys.FromUint64(rng.Uint64() & (1<<32 - 1))
		prefix = prefix.Shr(uint(32 - length)).Shl(uint(32 - length))
		id := fmt.Sprintf("%v/%d", prefix, length)
		if seen[id] {
			continue
		}
		seen[id] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(len(rules) + 1)})
	}
	rs, err := lpm.NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func buildTestEngine(t testing.TB, bucketized bool) *core.Engine {
	t.Helper()
	e, err := core.Build(buildTestRuleSet(t), quickConfig(bucketized))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseKey(t *testing.T) {
	cases := []struct {
		in    string
		width int
		want  keys.Value
		ok    bool
	}{
		{"10.1.2.3", 32, keys.FromUint64(0x0a010203), true},
		{"255.255.255.255", 32, keys.FromUint64(0xffffffff), true},
		{"167837955", 32, keys.FromUint64(167837955), true},
		{"0x0a010203", 32, keys.FromUint64(0x0a010203), true},
		{"dead", 32, keys.FromUint64(0xdead), true}, // hex fallback for a..f
		{"2001:db8::1", 128, keys.FromParts(0x20010db800000000, 1), true},
		{"::1", 128, keys.FromUint64(1), true},
		{"0x00010002000300040005000600070008", 128, keys.FromParts(0x0001000200030004, 0x0005000600070008), true},
		{"", 32, keys.Value{}, false},
		{"10.1.2.999", 32, keys.Value{}, false},
		{"2001:db8::1", 32, keys.Value{}, false}, // IPv6 on 32-bit engine
		{"zz", 32, keys.Value{}, false},
		{"0x" + strings.Repeat("f", 33), 128, keys.Value{}, false},
	}
	for _, c := range cases {
		got, err := ParseKey(c.in, c.width)
		if c.ok != (err == nil) {
			t.Errorf("ParseKey(%q, %d): err = %v, want ok=%v", c.in, c.width, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseKey(%q, %d) = %v, want %v", c.in, c.width, got, c.want)
		}
	}
}

func TestEndpoints(t *testing.T) {
	e := buildTestEngine(t, true)
	srv := httptest.NewServer(New(e, telemetry.Default).Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// /healthz reports the engine's shape.
	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// /lookup agrees with a direct engine query.
	code, body = get("/lookup?key=10.1.2.3")
	if code != http.StatusOK {
		t.Fatalf("/lookup = %d %q", code, body)
	}
	var lr lookupResponse
	if err := json.Unmarshal([]byte(body), &lr); err != nil {
		t.Fatalf("/lookup body: %v", err)
	}
	action, ok := e.Lookup(keys.FromUint64(0x0a010203))
	if lr.Matched != ok || (ok && lr.Action != action) {
		t.Fatalf("/lookup (%d,%v) disagrees with engine (%d,%v)", lr.Action, lr.Matched, action, ok)
	}
	if !lr.BucketRead || lr.DRAMBytes <= 0 {
		t.Fatalf("/lookup on a bucketized engine reported no DRAM fetch: %+v", lr)
	}

	// Missing and malformed keys are client errors.
	if code, _ = get("/lookup"); code != http.StatusBadRequest {
		t.Fatalf("/lookup without key = %d, want 400", code)
	}
	if code, _ = get("/trace?key=zz"); code != http.StatusBadRequest {
		t.Fatalf("/trace?key=zz = %d, want 400", code)
	}

	// /trace returns the span with the three bucketized stages.
	code, body = get("/trace?key=10.1.2.3")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d %q", code, body)
	}
	var tr traceResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace body: %v", err)
	}
	if tr.Span == nil || tr.Span.TotalNs <= 0 {
		t.Fatalf("/trace span missing timing: %q", body)
	}
	var stages []string
	for _, st := range tr.Span.Stages {
		stages = append(stages, st.Name)
	}
	want := []string{"inference", "secondary-search", "bucket-fetch"}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Fatalf("/trace stages = %v, want %v", stages, want)
	}

	// /metrics is a Prometheus scrape carrying the engine counters and the
	// §7 invariant gauge.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE neurolpm_lookups_total counter",
		"neurolpm_bucket_fetches_per_query",
		"neurolpm_serve_dram_accesses_total",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// expvar and pprof surfaces answer.
	if code, body = get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, `"neurolpm"`) {
		t.Fatalf("/debug/vars = %d (neurolpm present: %v)", code, strings.Contains(body, `"neurolpm"`))
	}
	if code, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

// TestConcurrentLookupsAndScrapes hammers /lookup from many goroutines while
// another scrapes /metrics and /trace — the acceptance scenario, run under
// -race in CI.
func TestConcurrentLookupsAndScrapes(t *testing.T) {
	e := buildTestEngine(t, true)
	srv := httptest.NewServer(New(e, telemetry.Default).Handler())
	defer srv.Close()

	lookups := telemetry.Default.Counter("neurolpm_lookups_total", "")
	l0 := lookups.Load()

	const workers, per = 8, 60
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/lookup?key=%d", srv.URL, rng.Uint32()))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("lookup status %d", resp.StatusCode)
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/metrics", "/trace?key=10.0.0.1"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s status %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every HTTP lookup and the 20 traces hit the engine exactly once.
	if d := lookups.Load() - l0; d < workers*per+20 {
		t.Fatalf("lookup counter delta = %d, want >= %d", d, workers*per+20)
	}
}

func TestMetricsHandlerOnly(t *testing.T) {
	srv := httptest.NewServer(MetricsHandler(telemetry.Default))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "neurolpm_") {
		t.Fatalf("metrics-only handler = %d", resp.StatusCode)
	}
	// No query surface on the metrics-only mux.
	resp, err = http.Get(srv.URL + "/lookup?key=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics-only /lookup = %d, want 404", resp.StatusCode)
	}
}
