package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neurolpm/internal/lpm"
	"neurolpm/internal/telemetry"
)

// Result-cache plane tests (DESIGN.md §12): the serve surface with
// UseResultCache must answer identically to the uncached paths, report the
// per-query outcome in the "cache" field, and export the lcache counters.

func TestResultCacheSingleEngine(t *testing.T) {
	e := buildTestEngine(t, true)
	srv := New(e, telemetry.Default)
	srv.UseResultCache(256 << 10)
	h := srv.Handler()

	k, _ := ParseKey("10.1.2.3", 32)
	wantAction, wantOK := e.Lookup(k)

	// First probe of a fresh cache cannot hit; repeated probes must hit at
	// least once (the pool hands the warm cache back on the same goroutine).
	var first lookupResponse
	if rec := getJSON(t, h, "/lookup?key=10.1.2.3", &first); rec.Code != http.StatusOK {
		t.Fatalf("/lookup: %d %s", rec.Code, rec.Body)
	}
	if first.Cache != "miss" {
		t.Fatalf("first cached /lookup outcome = %q, want miss", first.Cache)
	}
	hits := 0
	for i := 0; i < 8; i++ {
		var lr lookupResponse
		getJSON(t, h, "/lookup?key=10.1.2.3", &lr)
		if lr.Matched != wantOK || (wantOK && lr.Action != wantAction) {
			t.Fatalf("cached /lookup (%d,%v) disagrees with engine (%d,%v)", lr.Action, lr.Matched, wantAction, wantOK)
		}
		if lr.Cache == "hit" {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("8 repeat lookups of the same key never hit the result cache")
	}

	// /batch through the cached path: duplicates and fresh keys all agree
	// with direct engine queries.
	keyTxt := []string{"10.1.2.3", "10.1.2.3", "0x7f000001", "0xffffffff"}
	var br batchResponse
	if rec := getJSON(t, h, "/batch?keys="+strings.Join(keyTxt, ","), &br); rec.Code != http.StatusOK {
		t.Fatalf("/batch: %d %s", rec.Code, rec.Body)
	}
	for i, txt := range keyTxt {
		bk, err := ParseKey(txt, 32)
		if err != nil {
			t.Fatal(err)
		}
		a, ok := e.Lookup(bk)
		got := br.Results[i]
		if got.Matched != ok || (ok && got.Action != a) {
			t.Errorf("batch key %s: got (%d,%v), engine (%d,%v)", txt, got.Action, got.Matched, a, ok)
		}
	}

	// /trace still spans the pipeline and carries the cache outcome.
	var tr traceResponse
	if rec := getJSON(t, h, "/trace?key=10.1.2.3", &tr); rec.Code != http.StatusOK {
		t.Fatalf("/trace: %d %s", rec.Code, rec.Body)
	}
	if tr.Lookup.Cache == "" {
		t.Error("/trace with result cache enabled omitted the cache outcome")
	}
	if tr.Span == nil || tr.Span.TotalNs <= 0 {
		t.Error("/trace lost its span when the result cache is on")
	}

	// /metrics exports the lcache counter family.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"neurolpm_lcache_hits_total",
		"neurolpm_lcache_misses_total",
		"neurolpm_lcache_fills_total",
		"neurolpm_lcache_hit_rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestResultCacheOffOmitsField(t *testing.T) {
	e := buildTestEngine(t, true)
	h := New(e, telemetry.NewRegistry()).Handler()
	rec := getJSON(t, h, "/lookup?key=10.1.2.3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/lookup: %d %s", rec.Code, rec.Body)
	}
	if strings.Contains(rec.Body.String(), `"cache"`) {
		t.Fatalf("uncached /lookup response leaked a cache field: %s", rec.Body)
	}
}

func TestResultCacheShardedUpdateInvalidates(t *testing.T) {
	srv, rs, sh := buildShardedServer(t)
	srv.UseResultCache(128 << 10)
	if !sh.CacheEnabled() {
		t.Fatal("UseResultCache on a sharded server did not enable the shard cache plane")
	}
	h := srv.Handler()
	oracle := lpm.NewTrieMatcher(rs)

	k, _ := ParseKey("10.1.2.3", 32)
	wantAction, wantOK := oracle.Lookup(k)
	hits := 0
	for i := 0; i < 8; i++ {
		var lr lookupResponse
		if rec := getJSON(t, h, "/lookup?key=10.1.2.3", &lr); rec.Code != http.StatusOK {
			t.Fatalf("/lookup: %d %s", rec.Code, rec.Body)
		}
		if lr.Cache == "" {
			t.Fatalf("sharded cached /lookup omitted the outcome: %+v", lr)
		}
		if lr.Matched != wantOK || (wantOK && lr.Action != wantAction) {
			t.Fatalf("cached /lookup (%d,%v) disagrees with oracle (%d,%v)", lr.Action, lr.Matched, wantAction, wantOK)
		}
		if lr.Cache == "hit" {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("repeat sharded lookups never hit the result cache")
	}

	// A delta insert of a more-specific rule bumps the shard's epoch: the
	// cached answer must die and the very next lookup must see the new rule.
	body := `{"op": "insert", "prefix": "10.1.2.3", "len": 32, "action": 424242}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/update: %d %s", rec.Code, rec.Body)
	}
	for i := 0; i < 4; i++ {
		var lr lookupResponse
		getJSON(t, h, "/lookup?key=10.1.2.3", &lr)
		if !lr.Matched || lr.Action != 424242 {
			t.Fatalf("lookup %d after update: got (%d,%v), want (424242,true) — stale cache entry served", i, lr.Action, lr.Matched)
		}
	}

	// Batches agree with the oracle under the cache plane too.
	keyTxt := make([]string, 0, 32)
	for i := 0; i < 16; i++ {
		keyTxt = append(keyTxt, fmt.Sprintf("0x%08x", 0x0a010200+i), fmt.Sprintf("0x%08x", 0x0a010200+i))
	}
	var br batchResponse
	if rec := getJSON(t, h, "/batch?keys="+strings.Join(keyTxt, ","), &br); rec.Code != http.StatusOK {
		t.Fatalf("/batch: %d %s", rec.Code, rec.Body)
	}
	for i, txt := range keyTxt {
		bk, err := ParseKey(txt, 32)
		if err != nil {
			t.Fatal(err)
		}
		a, ok := sh.Lookup(bk)
		got := br.Results[i]
		if got.Matched != ok || (ok && got.Action != a) {
			t.Errorf("batch key %s: got (%d,%v), engine (%d,%v)", txt, got.Action, got.Matched, a, ok)
		}
	}
}
