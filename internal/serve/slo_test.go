package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/telemetry"
)

// withFlightSampling arms the process-wide flight recorder at 1:1 for the
// duration of a test and restores the previous stride afterwards.
func withFlightSampling(t *testing.T) {
	t.Helper()
	prev := telemetry.Flight.SampleEvery()
	telemetry.Flight.SetSampleEvery(1)
	t.Cleanup(func() { telemetry.Flight.SetSampleEvery(prev) })
}

// drive issues n deterministic lookups so the recorder, drift meter and
// hotness sketch all have traffic (the sketch samples 1:64, so n should be
// a few hundred at least).
func drive(t *testing.T, lookup func(keys.Value), n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lookup(keys.FromUint64(uint64(i*2654435761) & 0xffffffff))
	}
}

func TestSLOEndpoint(t *testing.T) {
	withFlightSampling(t)
	e := buildTestEngine(t, true)
	h := New(e, telemetry.NewRegistry()).Handler()
	drive(t, func(k keys.Value) { e.Lookup(k) }, 500)

	var resp sloResponse
	if rec := getJSON(t, h, "/slo", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/slo = %d %s", rec.Code, rec.Body.String())
	}
	if resp.SampleEvery != 1 {
		t.Errorf("sample_every = %d, want 1", resp.SampleEvery)
	}
	if resp.Recorded < 500 {
		t.Errorf("recorded = %d, want ≥ 500", resp.Recorded)
	}
	if len(resp.Windows) != 3 {
		t.Fatalf("windows = %d rows, want 3 (10s, 60s, boot)", len(resp.Windows))
	}
	for i, want := range []string{"10s", "60s", "boot"} {
		if resp.Windows[i].Window != want {
			t.Errorf("windows[%d] = %q, want %q", i, resp.Windows[i].Window, want)
		}
	}
	boot := resp.Windows[2]
	if boot.Count == 0 || boot.P99Ns <= 0 || boot.MaxNs == 0 {
		t.Errorf("boot window has no samples: %+v", boot)
	}
	if boot.P50Ns > boot.P99Ns || boot.P99Ns > boot.P999Ns {
		t.Errorf("quantiles not monotonic: %+v", boot)
	}
	if len(resp.Shards) != 1 || resp.Shards[0].Shard != 0 {
		t.Fatalf("shards = %+v, want exactly shard 0", resp.Shards)
	}
	if resp.Shards[0].ProbeBound <= 0 {
		t.Errorf("probe_bound = %d, want > 0 (set at build)", resp.Shards[0].ProbeBound)
	}
	if d := resp.Shards[0].Drift; d < 0 || d > 1 {
		t.Errorf("drift = %v, want within [0,1] on a fresh model", d)
	}

	// ?window= appends a custom row.
	resp = sloResponse{}
	if rec := getJSON(t, h, "/slo?window=30s", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/slo?window=30s = %d", rec.Code)
	}
	if len(resp.Windows) != 4 || resp.Windows[3].Window != "30s" {
		t.Fatalf("custom window row missing: %+v", resp.Windows)
	}

	for _, bad := range []string{"abc", "-5s", "0s", "5"} {
		if rec := getJSON(t, h, "/slo?window="+bad, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("/slo?window=%s = %d, want 400", bad, rec.Code)
		}
	}
}

func TestFlightRecAndSlowEndpoints(t *testing.T) {
	withFlightSampling(t)
	telemetry.Flight.ResetSlow()
	e := buildTestEngine(t, true)
	h := New(e, telemetry.NewRegistry()).Handler()
	drive(t, func(k keys.Value) { e.Lookup(k) }, 300)

	var fresp flightResponse
	if rec := getJSON(t, h, "/debug/flightrec", &fresp); rec.Code != http.StatusOK {
		t.Fatalf("/debug/flightrec = %d %s", rec.Code, rec.Body.String())
	}
	if fresp.Count == 0 || len(fresp.Records) != fresp.Count {
		t.Fatalf("flightrec count=%d records=%d", fresp.Count, len(fresp.Records))
	}
	if fresp.RingSize != telemetry.Flight.RingSize() {
		t.Errorf("ring_size = %d, want %d", fresp.RingSize, telemetry.Flight.RingSize())
	}
	r0 := fresp.Records[0]
	if r0.TotalNs <= 0 || r0.Key == "" || r0.When == "" {
		t.Errorf("malformed record: %+v", r0)
	}
	if len(r0.StagesNs) == 0 {
		t.Errorf("record has no stage timings: %+v", r0)
	}
	for name := range r0.StagesNs {
		ok := false
		for _, s := range telemetry.StageNames {
			if name == s {
				ok = true
			}
		}
		if !ok {
			t.Errorf("unknown stage name %q", name)
		}
	}

	fresp = flightResponse{}
	if rec := getJSON(t, h, "/debug/flightrec?n=1", &fresp); rec.Code != http.StatusOK || fresp.Count != 1 {
		t.Fatalf("/debug/flightrec?n=1: code=%d count=%d", rec.Code, fresp.Count)
	}

	fresp = flightResponse{}
	if rec := getJSON(t, h, "/debug/slow", &fresp); rec.Code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", rec.Code)
	}
	if fresp.Count == 0 {
		t.Fatal("slow log empty after 300 sampled lookups")
	}
	for i := 1; i < len(fresp.Records); i++ {
		if fresp.Records[i].TotalNs > fresp.Records[i-1].TotalNs {
			t.Fatalf("slow log not worst-first at %d: %d then %d",
				i, fresp.Records[i-1].TotalNs, fresp.Records[i].TotalNs)
		}
	}

	for _, path := range []string{"/debug/flightrec", "/debug/slow"} {
		for _, bad := range []string{"0", "-3", "x"} {
			if rec := getJSON(t, h, path+"?n="+bad, nil); rec.Code != http.StatusBadRequest {
				t.Errorf("%s?n=%s = %d, want 400", path, bad, rec.Code)
			}
		}
	}
}

func TestHotnessEndpoint(t *testing.T) {
	e := buildTestEngine(t, true)
	h := New(e, telemetry.NewRegistry()).Handler()
	// The sketch samples 1:64, so a few thousand lookups guarantee touches.
	drive(t, func(k keys.Value) { e.Lookup(k) }, 2048)

	var resp hotnessResponse
	if rec := getJSON(t, h, "/debug/hotness", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/debug/hotness = %d %s", rec.Code, rec.Body.String())
	}
	if resp.Shard != 0 || resp.Slots == 0 {
		t.Errorf("hotness shape: %+v", resp)
	}
	if resp.Total == 0 || len(resp.Top) == 0 {
		t.Errorf("sketch saw no traffic after 2048 lookups: total=%d top=%d", resp.Total, len(resp.Top))
	}
	if resp.Skew < 0 || resp.Skew > 1 {
		t.Errorf("skew = %v, want within [0,1]", resp.Skew)
	}
	for i := 1; i < len(resp.Top); i++ {
		if resp.Top[i].Count > resp.Top[i-1].Count {
			t.Fatalf("top list not count-descending at %d", i)
		}
	}

	// Single-engine mode has only shard 0; bad parameters are 400s.
	for _, bad := range []string{"?shard=1", "?shard=-1", "?shard=abc", "?n=0", "?n=-2", "?n=z"} {
		if rec := getJSON(t, h, "/debug/hotness"+bad, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("/debug/hotness%s = %d, want 400", bad, rec.Code)
		}
	}
}

func TestSLOShardedMode(t *testing.T) {
	withFlightSampling(t)
	srv, rs, sh := buildShardedServer(t)
	h := srv.Handler()
	drive(t, func(k keys.Value) { sh.Lookup(k) }, 500)
	_ = rs

	var resp sloResponse
	if rec := getJSON(t, h, "/slo", &resp); rec.Code != http.StatusOK {
		t.Fatalf("/slo = %d", rec.Code)
	}
	if len(resp.Shards) != sh.Shards() {
		t.Fatalf("shard rows = %d, want %d", len(resp.Shards), sh.Shards())
	}
	for i, row := range resp.Shards {
		if row.Shard != i {
			t.Errorf("row %d reports shard %d", i, row.Shard)
		}
		if row.ProbeBound <= 0 {
			t.Errorf("shard %d probe_bound = %d, want > 0", i, row.ProbeBound)
		}
	}

	// Every shard index resolves; one past the end is a 400.
	for i := 0; i < sh.Shards(); i++ {
		var hr hotnessResponse
		if rec := getJSON(t, h, "/debug/hotness?shard="+itoa(i), &hr); rec.Code != http.StatusOK {
			t.Fatalf("/debug/hotness?shard=%d = %d", i, rec.Code)
		}
		if hr.Shard != i {
			t.Errorf("asked shard %d, got %d", i, hr.Shard)
		}
	}
	if rec := getJSON(t, h, "/debug/hotness?shard="+itoa(sh.Shards()), nil); rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range shard = %d, want 400", rec.Code)
	}
}

// itoa avoids pulling strconv into the test imports for two call sites.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// TestConcurrentLookupsAndSLOReads hammers the SLO/debug endpoints while
// lookups run — the race detector's view of the recorder ring, slow log,
// windowed histograms, drift meter and hot sketch all being read mid-write.
func TestConcurrentLookupsAndSLOReads(t *testing.T) {
	withFlightSampling(t)
	e := buildTestEngine(t, true)
	h := New(e, telemetry.NewRegistry()).Handler()

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
					e.Lookup(keys.FromUint64(i * 2654435761 & 0xffffffff))
					i++
				}
			}
		}(uint64(w) * 7919)
	}
	paths := []string{"/slo", "/slo?window=5s", "/debug/flightrec?n=8", "/debug/slow", "/debug/hotness?n=4"}
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for round := 0; round < 40; round++ {
				for _, p := range paths {
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
					if rec.Code != http.StatusOK {
						t.Errorf("%s = %d under concurrency", p, rec.Code)
						return
					}
				}
			}
		}()
	}
	// Readers run a bounded number of rounds; writers spin until they finish.
	readers.Wait()
	close(stop)
	writers.Wait()
}
