package serve

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/wire"
)

// startWire runs a WireServer for srv on a fresh loopback listener under
// ServeUnits. The returned channels let a test drive shutdown by hand
// (send SIGTERM on stop, read the result from errc); the cleanup calls the
// idempotent stopFn, which is a no-op if the body already consumed errc
// through it. Tests that read errc directly must not also call stopFn.
func startWire(t *testing.T, srv *Server, window time.Duration, autoStop bool) (addr string, stop chan os.Signal, errc chan error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(srv, l, window)
	stop = make(chan os.Signal, 1)
	errc = make(chan error, 1)
	go func() { errc <- ServeUnits(stop, 5*time.Second, ws) }()
	if autoStop {
		t.Cleanup(func() {
			stop <- syscall.SIGTERM
			select {
			case <-errc:
			case <-time.After(10 * time.Second):
				t.Error("ServeUnits did not exit during cleanup")
			}
		})
	}
	return l.Addr().String(), stop, errc
}

// TestWireServerMatchesOracle drives every opcode over a real TCP connection
// against the sharded server and checks lookups against the trie oracle.
func TestWireServerMatchesOracle(t *testing.T) {
	srv, rs, sh := buildShardedServer(t)
	addr, _, _ := startWire(t, srv, 0, true)
	oracle := lpm.NewTrieMatcher(rs)

	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	rng := rand.New(rand.NewSource(7))
	ks := make([]keys.Value, 200)
	for i := range ks {
		ks[i] = keys.FromUint64(rng.Uint64() & (1<<32 - 1))
	}
	for _, k := range ks[:50] {
		res, err := c.Lookup(k)
		if err != nil {
			t.Fatalf("lookup %v: %v", k, err)
		}
		action, ok := oracle.Lookup(k)
		if res.Matched != ok || (ok && res.Action != action) {
			t.Fatalf("lookup %v = (%d,%v), oracle (%d,%v)", k, res.Action, res.Matched, action, ok)
		}
	}
	batch, err := c.Batch(ks)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i, k := range ks {
		action, ok := oracle.Lookup(k)
		if batch[i].Matched != ok || (ok && batch[i].Action != action) {
			t.Fatalf("batch key %d (%v) = (%d,%v), oracle (%d,%v)", i, k, batch[i].Action, batch[i].Matched, action, ok)
		}
	}

	// Updates flow through the delta buffer and are immediately visible.
	probe := keys.FromUint64(0x7f000001)
	if _, err := c.Update(wire.RuleUpdate{Op: wire.UpdateInsert, Prefix: probe, Len: 32, Action: 4242}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	res, err := c.Lookup(probe)
	if err != nil || !res.Matched || res.Action != 4242 {
		t.Fatalf("lookup after insert = (%d,%v,%v), want (4242,true,nil)", res.Action, res.Matched, err)
	}
	if _, err := c.Update(wire.RuleUpdate{Op: wire.UpdateDelete, Prefix: probe, Len: 32}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	action, ok := oracle.Lookup(probe)
	res, err = c.Lookup(probe)
	if err != nil || res.Matched != ok || (ok && res.Action != action) {
		t.Fatalf("lookup after delete = (%d,%v,%v), oracle (%d,%v)", res.Action, res.Matched, err, action, ok)
	}
	_ = sh
}

// TestWireSingleEngineMode exercises the coalescer against a single-engine
// server (no updates there — must answer ErrNotImplemented, not hang).
func TestWireSingleEngineMode(t *testing.T) {
	eng := buildTestEngine(t, true)
	srv := New(eng, telemetry.NewRegistry())
	addr, _, _ := startWire(t, srv, 0, true)

	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k := keys.FromUint64(0x10203040)
	res, err := c.Lookup(k)
	if err != nil {
		t.Fatal(err)
	}
	action, ok := eng.Lookup(k)
	if res.Matched != ok || (ok && res.Action != action) {
		t.Fatalf("wire (%d,%v) disagrees with engine (%d,%v)", res.Action, res.Matched, action, ok)
	}
	_, err = c.Update(wire.RuleUpdate{Op: wire.UpdateInsert, Prefix: k, Len: 32, Action: 1})
	re, isRemote := err.(*wire.RemoteError)
	if !isRemote || re.Code != wire.ErrNotImplemented {
		t.Fatalf("update on single-engine mode: %v, want ErrNotImplemented", err)
	}
}

// TestWireMalformedFramesDoNotKillServer: a client sending garbage gets an
// error/disconnect while other connections keep serving.
func TestWireMalformedFramesDoNotKillServer(t *testing.T) {
	srv, _, _ := buildShardedServer(t)
	addr, _, _ := startWire(t, srv, 0, true)

	good, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()

	bad, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte("GET /lookup?key=1 HTTP/1.1\r\nHost: x\r\n\r\n"))
	// The server must answer with an error frame (bad magic) and close.
	bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	if _, err := bad.Read(buf); err != nil {
		t.Fatalf("no response to garbage: %v", err)
	}
	bad.Close()

	if err := good.Ping(); err != nil {
		t.Fatalf("healthy connection broken by another client's garbage: %v", err)
	}
}

// TestWireDrainsInFlightFrames is the PR 10 shutdown regression test: a
// lookup parked in the coalescer's gather window when SIGTERM arrives must
// still be answered before the connection closes.
func TestWireDrainsInFlightFrames(t *testing.T) {
	srv, rs, _ := buildShardedServer(t)
	// A long window guarantees the request is sitting in the gather state
	// when the signal lands; several warm-up lookups push the EWMA over the
	// light-load threshold so the window actually applies.
	addr, stop, errc := startWire(t, srv, 300*time.Millisecond, false)
	oracle := lpm.NewTrieMatcher(rs)

	c, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	warm := make([]keys.Value, 64)
	for i := range warm {
		warm[i] = keys.FromUint64(uint64(i) * 997)
	}
	if _, err := c.Batch(warm); err != nil {
		t.Fatal(err)
	}
	// Push the EWMA up: concurrent singles force multi-lookup dispatches.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc, err := wire.Dial(addr, time.Second)
			if err != nil {
				return
			}
			defer cc.Close()
			for i := 0; i < 8; i++ {
				cc.Lookup(keys.FromUint64(uint64(g*100 + i)))
			}
		}(g)
	}
	wg.Wait()

	k := keys.FromUint64(0x0a010203)
	id := c.ID()
	if err := c.Send(func(b []byte) []byte { return wire.AppendLookup(b, id, k) }); err != nil {
		t.Fatal(err)
	}
	stop <- syscall.SIGTERM // the lookup may still be parked in the window

	f, err := c.Recv()
	if err != nil {
		t.Fatalf("in-flight wire frame not drained: %v", err)
	}
	if f.ID != id || f.Op != wire.OpResult {
		t.Fatalf("drained response frame %s id=%d, want result id=%d", f.Op, f.ID, id)
	}
	res, err := f.Result()
	if err != nil {
		t.Fatal(err)
	}
	action, ok := oracle.Lookup(k)
	if res.Matched != ok || (ok && res.Action != action) {
		t.Fatalf("drained answer (%d,%v), oracle (%d,%v)", res.Action, res.Matched, action, ok)
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("ServeUnits returned %v, want nil on clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUnits did not return after drain")
	}
	// The listener must be closed after shutdown.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("wire listener still accepting after shutdown")
	}
}

// TestUnitsDrainTogether: one SIGTERM drains HTTP and wire listeners run
// under the same ServeUnits call (the unified-shutdown satellite).
func TestUnitsDrainTogether(t *testing.T) {
	srv, _, _ := buildShardedServer(t)
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(srv, wl, 0)
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- ServeUnits(stop, 5*time.Second, &HTTPUnit{Listener: hl, Handler: srv.Handler()}, ws)
	}()

	c, err := wire.Dial(wl.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("ServeUnits: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUnits did not return")
	}
	for _, addr := range []string{hl.Addr().String(), wl.Addr().String()} {
		if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
			t.Fatalf("listener %s still accepting after shutdown", addr)
		}
	}
}

// TestWireStressCoalescerVsCommits is the -race stress test: N client
// connections hammer single lookups through the coalescer while a probe rule
// flaps through the delta buffer and background commits run. Every answer
// must equal the base oracle or the probe action — nothing else, ever.
func TestWireStressCoalescerVsCommits(t *testing.T) {
	srv, rs, sh := buildShardedServer(t)
	sh.StartAutoCommit(2*time.Millisecond, 1)
	addr, _, _ := startWire(t, srv, 5*time.Microsecond, true)
	oracle := lpm.NewTrieMatcher(rs)

	const (
		nConns   = 6
		perConn  = 400
		probeKey = 0x7f7f7f7f
		probeAct = 999999
	)
	probe := keys.FromUint64(probeKey)
	baseAction, baseOK := oracle.Lookup(probe)

	stopFlap := make(chan struct{})
	var flapWg sync.WaitGroup
	flapWg.Add(1)
	go func() {
		defer flapWg.Done()
		cu, err := wire.Dial(addr, time.Second)
		if err != nil {
			return
		}
		defer cu.Close()
		for i := 0; ; i++ {
			select {
			case <-stopFlap:
				return
			default:
			}
			if i%2 == 0 {
				cu.Update(wire.RuleUpdate{Op: wire.UpdateInsert, Prefix: probe, Len: 32, Action: probeAct})
			} else {
				cu.Update(wire.RuleUpdate{Op: wire.UpdateDelete, Prefix: probe, Len: 32})
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var bad atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < nConns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := wire.Dial(addr, time.Second)
			if err != nil {
				t.Errorf("conn %d: %v", g, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(g) * 31))
			for i := 0; i < perConn; i++ {
				var k keys.Value
				if i%7 == 0 {
					k = probe // contended key: base or probe answer allowed
				} else {
					k = keys.FromUint64(rng.Uint64() & (1<<32 - 1))
					if k == probe {
						k = keys.FromUint64(1) // keep the random arm oracle-stable
					}
				}
				res, err := c.Lookup(k)
				if err != nil {
					t.Errorf("conn %d lookup %d: %v", g, i, err)
					return
				}
				if k == probe {
					okBase := res.Matched == baseOK && (!baseOK || res.Action == baseAction)
					okProbe := res.Matched && res.Action == probeAct
					if !okBase && !okProbe {
						bad.Add(1)
					}
					continue
				}
				action, ok := oracle.Lookup(k)
				if res.Matched != ok || (ok && res.Action != action) {
					bad.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopFlap)
	flapWg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d oracle mismatches under coalescer/commit stress", n)
	}
}
