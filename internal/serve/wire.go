package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/wire"
)

// Coalescer defaults (DESIGN.md §17). The window is the most a queued lookup
// waits for company; the batch cap matches the point where the batch plane's
// per-key amortization has flattened out.
const (
	DefaultCoalesceWindow = 20 * time.Microsecond
	maxCoalesceBatch      = 256

	// The adaptive window interpolates between the IMMEDIATE and GATHER
	// states on the EWMA of dispatched batch sizes: at or below
	// coalesceLightLoad the window is 0 (a lone client never waits), at
	// coalesceFullLoad and above the full configured window applies.
	coalesceLightLoad = 1.25
	coalesceFullLoad  = 8.0
	// coalesceAlpha is the EWMA smoothing factor per dispatch.
	coalesceAlpha = 0.2

	// wireDrainGrace is how long readers keep decoding after a shutdown
	// signal: a frame the client already sent (in the kernel buffer, not yet
	// decoded) is still read and answered instead of being reset. Readers
	// exit at this deadline; the dispatcher then drains what they queued.
	wireDrainGrace = 100 * time.Millisecond
)

// WireServer serves the binary protocol (internal/wire) over persistent TCP
// connections, answering through the same Server the HTTP mux serves. It is
// a serve.Unit: run it under ServeUnits next to the HTTP listener and one
// SIGINT/SIGTERM drains both.
//
// Single-key lookups from all connections flow through one adaptive
// coalescer: a dispatcher goroutine gathers requests that arrive within the
// effective window into one batch-plane call (Server.batchStack) and
// demultiplexes the answers back by request id. The effective window adapts
// to load — see DESIGN.md §17 for the IMMEDIATE↔GATHER state machine.
// OpBatch frames are already batched by the client and execute directly on
// the connection's reader goroutine.
type WireServer struct {
	s *Server
	l net.Listener

	co *coalescer

	mu       sync.Mutex
	conns    map[*wireConn]struct{}
	draining bool

	readerWg sync.WaitGroup
	stopc    chan struct{} // closed by Shutdown: stop accepting, kick readers
	drainc   chan struct{} // closed when all readers have exited
	donec    chan struct{} // closed when the dispatcher has drained and exited
	stopOnce sync.Once

	cConns      *telemetry.Counter
	cFrames     *telemetry.Counter
	cLookups    *telemetry.Counter
	cBatchKeys  *telemetry.Counter
	cUpdates    *telemetry.Counter
	cErrors     *telemetry.Counter
	cDispatches *telemetry.Counter
	hBatchSize  *telemetry.Histogram
}

// NewWireServer wraps s on the listener. window ≤ 0 selects
// DefaultCoalesceWindow; the dispatcher starts immediately so Shutdown is
// safe even if it races Serve.
func NewWireServer(s *Server, l net.Listener, window time.Duration) *WireServer {
	if window <= 0 {
		window = DefaultCoalesceWindow
	}
	ws := &WireServer{
		s:      s,
		l:      l,
		conns:  make(map[*wireConn]struct{}),
		stopc:  make(chan struct{}),
		drainc: make(chan struct{}),
		donec:  make(chan struct{}),
		co: &coalescer{
			window: window,
			wake:   make(chan struct{}, 1),
		},
	}
	reg := s.reg
	ws.cConns = reg.Counter("neurolpm_wire_conns_total", "Wire connections accepted")
	ws.cFrames = reg.Counter("neurolpm_wire_frames_total", "Wire request frames decoded")
	ws.cLookups = reg.Counter("neurolpm_wire_lookups_total", "Wire single-key lookups answered")
	ws.cBatchKeys = reg.Counter("neurolpm_wire_batch_keys_total", "Keys answered through wire client-side batch frames")
	ws.cUpdates = reg.Counter("neurolpm_wire_updates_total", "Wire rule updates applied")
	ws.cErrors = reg.Counter("neurolpm_wire_errors_total", "Wire error frames sent")
	ws.cDispatches = reg.Counter("neurolpm_wire_coalesce_dispatches_total", "Coalescer dispatches (one batch-plane call each)")
	ws.hBatchSize = reg.Histogram("neurolpm_wire_coalesce_batch_size", "Lookups gathered per coalescer dispatch")
	go ws.dispatcher()
	return ws
}

// Serve accepts wire connections until Shutdown closes the listener.
func (ws *WireServer) Serve() error {
	for {
		conn, err := ws.l.Accept()
		if err != nil {
			select {
			case <-ws.stopc:
				return nil
			default:
				return err
			}
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := &wireConn{ws: ws, conn: conn, bw: bufio.NewWriterSize(conn, 16<<10)}
		ws.mu.Lock()
		if ws.draining {
			ws.mu.Unlock()
			conn.Close()
			continue
		}
		ws.conns[c] = struct{}{}
		ws.mu.Unlock()
		ws.cConns.Inc()
		ws.readerWg.Add(1)
		go c.readLoop()
	}
}

// Shutdown drains the wire plane: stop accepting, kick blocked readers (a
// frame already received — including one parked in the coalescer's gather
// window — is still answered), wait for the dispatcher to empty its queue,
// then flush and close every connection. Bounded by ctx's deadline.
func (ws *WireServer) Shutdown(ctx context.Context) error {
	ws.stopOnce.Do(func() {
		close(ws.stopc)
		ws.l.Close()
		ws.mu.Lock()
		ws.draining = true
		deadline := time.Now().Add(wireDrainGrace)
		for c := range ws.conns {
			// Bound every reader: frames already in flight are decoded and
			// answered within the grace window, then the deadline error
			// ends the read loop.
			c.conn.SetReadDeadline(deadline)
		}
		ws.mu.Unlock()
		go func() {
			ws.readerWg.Wait()
			close(ws.drainc)
		}()
	})
	var err error
	select {
	case <-ws.donec:
	case <-ctx.Done():
		err = ctx.Err()
	}
	ws.mu.Lock()
	for c := range ws.conns {
		c.closeConn()
		delete(ws.conns, c)
	}
	ws.mu.Unlock()
	return err
}

// Addr returns the listener address (tests bind :0).
func (ws *WireServer) Addr() net.Addr { return ws.l.Addr() }

// wireConn is one accepted connection: a reader goroutine decoding frames
// and a mutex-guarded write side shared with the coalescer's dispatcher.
type wireConn struct {
	ws   *WireServer
	conn net.Conn

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte // encode scratch, reused under wmu

	// Reader-owned scratch (no locking: only readLoop touches these).
	rbuf  []byte
	kbuf  []keys.Value
	resb  []shard.Result
	wresb []wire.Result

	// dispatchSeq marks the last dispatcher round that wrote to this conn;
	// dispatcher-owned, used to flush each touched conn exactly once.
	dispatchSeq uint64
}

// send encodes one response frame under the write lock and flushes it.
func (c *wireConn) send(enc func(b []byte) []byte) {
	c.wmu.Lock()
	c.wbuf = enc(c.wbuf[:0])
	c.bw.Write(c.wbuf)
	c.bw.Flush()
	c.wmu.Unlock()
}

func (c *wireConn) sendErr(id uint64, code uint8, msg string) {
	c.ws.cErrors.Inc()
	c.send(func(b []byte) []byte { return wire.AppendError(b, id, code, msg) })
}

// closeConn closes the underlying connection once (reader exit and Shutdown
// can both reach it).
func (c *wireConn) closeConn() { c.conn.Close() }

// readLoop decodes request frames until the connection errors or drain kicks
// it. Protocol violations that survive framing (bad payloads) answer an
// error frame and keep the connection; framing violations close it.
func (c *wireConn) readLoop() {
	defer func() {
		// During drain the conn must outlive the reader: queued lookups are
		// still being answered. Shutdown closes it after the dispatcher
		// drains. On a normal client disconnect, close and unregister here.
		c.ws.mu.Lock()
		draining := c.ws.draining
		if !draining {
			delete(c.ws.conns, c)
		}
		c.ws.mu.Unlock()
		if !draining {
			c.closeConn()
		}
		c.ws.readerWg.Done()
	}()
	for {
		f, buf, err := wire.ReadFrame(c.conn, c.rbuf)
		c.rbuf = buf
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				// Framing violation: tell the client once, then drop it —
				// the stream cannot be resynchronized.
				c.sendErr(0, wire.ErrMalformed, err.Error())
			}
			return
		}
		c.ws.cFrames.Inc()
		switch f.Op {
		case wire.OpPing:
			c.send(func(b []byte) []byte { return wire.AppendPong(b, f.ID) })
		case wire.OpLookup:
			k, err := f.Key()
			if err != nil {
				c.sendErr(f.ID, wire.ErrMalformed, err.Error())
				continue
			}
			c.ws.co.submit(pendingLookup{c: c, id: f.ID, k: k})
		case wire.OpBatch:
			c.handleBatch(f)
		case wire.OpUpdate:
			c.handleUpdate(f)
		default:
			c.sendErr(f.ID, wire.ErrBadRequest, fmt.Sprintf("unexpected %s frame", f.Op))
		}
	}
}

// handleBatch answers a client-side batch on the reader goroutine — the
// client already amortized its round-trip, so it skips the coalescer.
func (c *wireConn) handleBatch(f wire.Frame) {
	var err error
	c.kbuf, err = f.BatchKeys(c.kbuf[:0])
	if err != nil {
		c.sendErr(f.ID, wire.ErrMalformed, err.Error())
		return
	}
	c.resb = c.ws.s.batchStack(c.kbuf, c.resb[:0])
	c.ws.cBatchKeys.Add(uint64(len(c.kbuf)))
	c.wresb = c.wresb[:0]
	for _, r := range c.resb {
		c.wresb = append(c.wresb, wire.Result{Action: r.Action, Matched: r.Matched})
	}
	c.wmu.Lock()
	c.wbuf = wire.AppendBatchResults(c.wbuf[:0], f.ID, c.wresb)
	c.bw.Write(c.wbuf)
	c.bw.Flush()
	c.wmu.Unlock()
}

func (c *wireConn) handleUpdate(f wire.Frame) {
	u, err := f.Update()
	if err != nil {
		c.sendErr(f.ID, wire.ErrMalformed, err.Error())
		return
	}
	s := c.ws.s
	if s.sh == nil {
		c.sendErr(f.ID, wire.ErrNotImplemented, "updates require sharded mode (run with -shards)")
		return
	}
	switch u.Op {
	case wire.UpdateInsert:
		err = s.sh.Insert(lpm.Rule{Prefix: u.Prefix, Len: u.Len, Action: u.Action})
	case wire.UpdateDelete:
		err = s.sh.Delete(u.Prefix, u.Len)
	case wire.UpdateModify:
		err = s.sh.ModifyAction(u.Prefix, u.Len, u.Action)
	}
	if err != nil {
		if errors.Is(err, core.ErrDeltaFull) {
			c.sendErr(f.ID, wire.ErrBackpressure, err.Error())
			return
		}
		c.sendErr(f.ID, wire.ErrBadRequest, err.Error())
		return
	}
	c.ws.cUpdates.Inc()
	pending := uint32(s.sh.PendingInserts())
	c.send(func(b []byte) []byte { return wire.AppendUpdateResult(b, f.ID, pending) })
}

// pendingLookup is one queued single-key request awaiting a dispatch.
type pendingLookup struct {
	c  *wireConn
	id uint64
	k  keys.Value
}

// coalescer gathers single-key lookups from all connections. Submitters
// append under mu and nudge the dispatcher through wake; the dispatcher owns
// the EWMA and the effective-window computation.
type coalescer struct {
	mu      sync.Mutex
	pending []pendingLookup

	wake   chan struct{}
	window time.Duration // configured maximum gather window
	ewma   float64       // dispatcher-owned load estimate (batch size)
}

func (co *coalescer) submit(p pendingLookup) {
	co.mu.Lock()
	co.pending = append(co.pending, p)
	co.mu.Unlock()
	select {
	case co.wake <- struct{}{}:
	default:
	}
}

// take moves up to maxCoalesceBatch queued lookups into batch, re-arming the
// wake channel if a backlog remains.
func (co *coalescer) take(batch []pendingLookup) []pendingLookup {
	co.mu.Lock()
	n := len(co.pending)
	if n > maxCoalesceBatch {
		n = maxCoalesceBatch
	}
	batch = append(batch, co.pending[:n]...)
	rest := copy(co.pending, co.pending[n:])
	co.pending = co.pending[:rest]
	backlog := rest > 0
	co.mu.Unlock()
	if backlog {
		select {
		case co.wake <- struct{}{}:
		default:
		}
	}
	return batch
}

// effectiveWindow maps the load estimate onto [0, window]: IMMEDIATE at or
// below coalesceLightLoad, GATHER with the full window at coalesceFullLoad.
func (co *coalescer) effectiveWindow() time.Duration {
	frac := (co.ewma - coalesceLightLoad) / (coalesceFullLoad - coalesceLightLoad)
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	return time.Duration(float64(co.window) * frac)
}

// dispatcher is the coalescer's single consumer: woken by the first queued
// lookup, it optionally lingers for the adaptive window, takes the gathered
// batch through one batch-plane call, and demultiplexes the answers back to
// their connections by request id.
func (ws *WireServer) dispatcher() {
	co := ws.co
	var (
		batch []pendingLookup
		ks    []keys.Value
		res   []shard.Result
		seq   uint64
		conns []*wireConn // touched this round, flushed once each
	)
	drainMode := false
	for {
		if !drainMode {
			select {
			case <-co.wake:
			case <-ws.drainc:
				drainMode = true
			}
		}
		if w := co.effectiveWindow(); w > 0 && !drainMode {
			time.Sleep(w)
		}
		batch = co.take(batch[:0])
		if len(batch) == 0 {
			if drainMode {
				close(ws.donec)
				return
			}
			continue
		}
		co.ewma = (1-coalesceAlpha)*co.ewma + coalesceAlpha*float64(len(batch))
		ws.cDispatches.Inc()
		ws.cLookups.Add(uint64(len(batch)))
		ws.hBatchSize.ObserveInt(len(batch))

		ks = ks[:0]
		for _, p := range batch {
			ks = append(ks, p.k)
		}
		res = ws.s.batchStack(ks, res[:0])

		// Demux: append each answer into its connection's buffered writer,
		// flushing every touched connection exactly once per round.
		seq++
		conns = conns[:0]
		for i, p := range batch {
			c := p.c
			c.wmu.Lock()
			c.wbuf = wire.AppendResult(c.wbuf[:0], p.id, res[i].Action, res[i].Matched)
			c.bw.Write(c.wbuf)
			c.wmu.Unlock()
			if c.dispatchSeq != seq {
				c.dispatchSeq = seq
				conns = append(conns, c)
			}
		}
		for _, c := range conns {
			c.wmu.Lock()
			c.bw.Flush()
			c.wmu.Unlock()
		}
	}
}

// isTimeout reports whether err is a deadline kick (the drain path).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
