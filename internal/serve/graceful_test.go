package serve

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestServeDrainsInFlightRequests is the clean-shutdown regression test for
// the lpmserve daemon path: a signal must stop the accept loop, let the
// in-flight request finish with a full response, and return nil.
func TestServeDrainsInFlightRequests(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var handled atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release // request is in flight while the signal arrives
		fmt.Fprint(w, "done")
		handled.Add(1)
	})

	stop := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(l, mux, stop, 5*time.Second) }()

	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + l.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && string(body) != "done" {
			err = fmt.Errorf("body %q, want %q", body, "done")
		}
		reqErr <- err
	}()

	<-started
	stop <- syscall.SIGTERM // shutdown begins while /slow is mid-flight
	// Give Shutdown a beat to close the listener, then release the handler.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v, want nil on clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	if handled.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", handled.Load())
	}
	// The listener must be closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", l.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeReportsListenerErrors: a listener that dies surfaces the error
// rather than hanging.
func TestServeReportsListenerErrors(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal)
	errc := make(chan error, 1)
	go func() { errc <- Serve(l, http.NewServeMux(), stop, time.Second) }()
	l.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Serve returned nil after listener closed underneath it")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not notice the dead listener")
	}
}
