//go:build race

package serve

// raceEnabled gates the allocation pins: race instrumentation adds its own
// allocations, so AllocsPerRun thresholds only hold in plain builds.
const raceEnabled = true
