//go:build !race

package load

const raceEnabled = false
