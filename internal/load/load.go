// Package load is the open-loop load driver behind cmd/lpmload and the E29
// wire experiment: it replays a calibrated key trace (plus an optional
// update stream) against a serving endpoint — HTTP/JSON or the binary wire
// protocol — at a Poisson-scheduled offered rate, and reports offered vs.
// achieved qps and latency quantiles measured from each request's *scheduled*
// send time. Measuring from the schedule (not from the moment the request
// finally got written) keeps the driver honest under saturation: a server
// that falls behind shows queueing delay in its tail instead of silently
// slowing the clock (the coordinated-omission trap closed-loop drivers fall
// into). Rate 0 selects closed-loop mode — one outstanding request per
// connection — which measures best-case per-request latency instead.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/workload"
)

// Proto selects the endpoint flavor.
type Proto int

const (
	ProtoWire Proto = iota
	ProtoHTTP
)

func (p Proto) String() string {
	if p == ProtoHTTP {
		return "http"
	}
	return "wire"
}

// ParseProto accepts the -proto flag spellings.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "wire":
		return ProtoWire, nil
	case "http":
		return ProtoHTTP, nil
	}
	return 0, fmt.Errorf("unknown protocol %q (want wire or http)", s)
}

// Result is one expected answer for verification.
type Result struct {
	Action  uint64
	Matched bool
}

// Config parameterizes one load run.
type Config struct {
	Addr  string
	Proto Proto
	// Conns is the number of persistent connections (and, for HTTP, the
	// concurrency cap). 0 selects 1.
	Conns int
	// Rate is the offered rate in queries/sec across all connections,
	// scheduled as Poisson arrivals. 0 = closed loop (one outstanding
	// request per connection, as fast as the server answers).
	Rate float64
	// Duration bounds the send window; in-flight requests drain afterwards.
	Duration time.Duration
	// Trace is replayed round-robin (each connection strides through it).
	Trace []keys.Value
	// Width is the served key bit width (HTTP key formatting).
	Width int
	// Expected, when non-nil, holds the oracle answer for each trace key;
	// every response is checked and disagreements count as mismatches.
	// Keys listed in SkipVerify are exempt (update-stream flap sites).
	Expected   []Result
	SkipVerify map[keys.Value]struct{}
	// Updates, when non-empty, is replayed on its own connection at the
	// stream's own schedule (workload.GenerateUpdates pacing), looping
	// until the send window closes.
	Updates []workload.Update
	// Seed drives the Poisson arrival schedule.
	Seed int64
}

// Report is the outcome of one run.
type Report struct {
	Proto      string
	Conns      int
	Offered    float64 // scheduled qps over the send window
	Achieved   float64 // completed qps over the full run (send + drain)
	Sent       int64
	Done       int64
	Errors     int64
	Mismatches int64
	Updates    int64
	UpdateErrs int64
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	Elapsed    time.Duration
}

func (r *Report) String() string {
	return fmt.Sprintf("%s conns=%d offered=%.0f/s achieved=%.0f/s done=%d errors=%d mismatches=%d updates=%d p50=%v p99=%v p999=%v",
		r.Proto, r.Conns, r.Offered, r.Achieved, r.Done, r.Errors, r.Mismatches, r.Updates, r.P50, r.P99, r.P999)
}

// job is one scheduled request: the trace index to send and the instant it
// was supposed to leave.
type job struct {
	idx   int
	sched time.Time
}

// runner is the shared bookkeeping both protocol drivers report into.
type runner struct {
	cfg Config

	sent       atomic.Int64
	done       atomic.Int64
	errors     atomic.Int64
	mismatches atomic.Int64

	latMu sync.Mutex
	lats  []int64 // ns, from scheduled send time
}

func (r *runner) record(lat time.Duration) {
	r.done.Add(1)
	r.latMu.Lock()
	r.lats = append(r.lats, lat.Nanoseconds())
	r.latMu.Unlock()
}

// verify checks a response against the expected answer for trace index idx.
func (r *runner) verify(idx int, action uint64, matched bool) {
	exp := r.cfg.Expected
	if exp == nil {
		return
	}
	if r.cfg.SkipVerify != nil {
		if _, skip := r.cfg.SkipVerify[r.cfg.Trace[idx]]; skip {
			return
		}
	}
	e := exp[idx]
	if matched != e.Matched || (e.Matched && action != e.Action) {
		r.mismatches.Add(1)
	}
}

// Run executes one load run and blocks until the send window closed and
// in-flight requests drained (or timed out).
func Run(cfg Config) (*Report, error) {
	if len(cfg.Trace) == 0 {
		return nil, fmt.Errorf("load: empty trace")
	}
	if cfg.Expected != nil && len(cfg.Expected) != len(cfg.Trace) {
		return nil, fmt.Errorf("load: %d expected answers for %d trace keys", len(cfg.Expected), len(cfg.Trace))
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	r := &runner{cfg: cfg, lats: make([]int64, 0, 1<<16)}

	stopUpdates := make(chan struct{})
	var updWg sync.WaitGroup
	var updSent, updErrs atomic.Int64
	if len(cfg.Updates) > 0 {
		updWg.Add(1)
		go func() {
			defer updWg.Done()
			r.updateLoop(stopUpdates, &updSent, &updErrs)
		}()
	}

	start := time.Now()
	var err error
	if cfg.Proto == ProtoHTTP {
		err = r.runHTTP(start)
	} else {
		err = r.runWire(start)
	}
	elapsed := time.Since(start)
	close(stopUpdates)
	updWg.Wait()
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Proto:      cfg.Proto.String(),
		Conns:      cfg.Conns,
		Sent:       r.sent.Load(),
		Done:       r.done.Load(),
		Errors:     r.errors.Load(),
		Mismatches: r.mismatches.Load(),
		Updates:    updSent.Load(),
		UpdateErrs: updErrs.Load(),
		Elapsed:    elapsed,
	}
	rep.Offered = float64(rep.Sent) / cfg.Duration.Seconds()
	if elapsed > 0 {
		rep.Achieved = float64(rep.Done) / elapsed.Seconds()
	}
	r.latMu.Lock()
	lats := r.lats
	r.latMu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		rep.P50 = time.Duration(lats[len(lats)/2])
		rep.P99 = time.Duration(lats[len(lats)*99/100])
		rep.P999 = time.Duration(lats[len(lats)*999/1000])
	}
	return rep, nil
}

// schedule feeds Poisson-timed jobs into out until the send window closes,
// then closes out. Closed-loop mode (Rate ≤ 0) is handled by the protocol
// drivers and never calls this.
func (r *runner) schedule(out chan<- job, start time.Time) {
	defer close(out)
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	interval := func() time.Duration {
		return time.Duration(rng.ExpFloat64() / r.cfg.Rate * float64(time.Second))
	}
	next := start
	deadline := start.Add(r.cfg.Duration)
	idx := 0
	n := len(r.cfg.Trace)
	for {
		next = next.Add(interval())
		if next.After(deadline) {
			return
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		out <- job{idx: idx, sched: next}
		r.sent.Add(1)
		idx++
		if idx == n {
			idx = 0
		}
	}
}
