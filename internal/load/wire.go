package load

import (
	"fmt"
	"sync"
	"time"

	"neurolpm/internal/wire"
)

// drainTimeout bounds how long the driver waits for in-flight responses
// after the send window closes before giving up on them.
const drainTimeout = 3 * time.Second

// wireConnState is one pipelined connection: the sender registers each
// request's schedule under mu before writing, the receiver matches response
// ids back to it. outstanding lets the drain phase wait for exactly the
// requests that were sent.
type wireConnState struct {
	c  *wire.Client
	mu sync.Mutex
	// pending maps request id -> (trace index, scheduled send time).
	pending     map[uint64]job
	outstanding sync.WaitGroup
}

// runWire drives the binary wire protocol. Open-loop mode pipelines: the
// per-connection sender keeps writing frames on schedule regardless of how
// many responses are still in flight, which is what lets the server's
// cross-connection coalescer see concurrent work.
func (r *runner) runWire(start time.Time) error {
	conns := make([]*wireConnState, r.cfg.Conns)
	for i := range conns {
		c, err := wire.Dial(r.cfg.Addr, 5*time.Second)
		if err != nil {
			return fmt.Errorf("dial wire conn %d: %w", i, err)
		}
		conns[i] = &wireConnState{c: c, pending: make(map[uint64]job)}
	}
	defer func() {
		for _, cs := range conns {
			cs.c.Close()
		}
	}()

	if r.cfg.Rate <= 0 {
		return r.runWireClosed(conns, start)
	}

	// Receivers run for the whole window plus drain.
	var recvWg sync.WaitGroup
	for _, cs := range conns {
		recvWg.Add(1)
		go func(cs *wireConnState) {
			defer recvWg.Done()
			r.wireReceiver(cs)
		}(cs)
	}

	jobs := make(chan job, 1024)
	go r.schedule(jobs, start)

	var sendWg sync.WaitGroup
	for _, cs := range conns {
		sendWg.Add(1)
		go func(cs *wireConnState) {
			defer sendWg.Done()
			for j := range jobs {
				id := cs.c.ID()
				cs.mu.Lock()
				cs.pending[id] = j
				cs.mu.Unlock()
				cs.outstanding.Add(1)
				k := r.cfg.Trace[j.idx]
				if err := cs.c.Send(func(b []byte) []byte { return wire.AppendLookup(b, id, k) }); err != nil {
					r.errors.Add(1)
					cs.mu.Lock()
					delete(cs.pending, id)
					cs.mu.Unlock()
					cs.outstanding.Done()
				}
			}
		}(cs)
	}
	sendWg.Wait()

	// Drain: wait for every outstanding response (bounded), then close the
	// connections so the receivers unblock.
	for _, cs := range conns {
		waitTimeout(&cs.outstanding, drainTimeout)
	}
	for _, cs := range conns {
		cs.c.Close()
	}
	recvWg.Wait()
	return nil
}

// wireReceiver matches response frames back to their scheduled jobs until
// the connection closes.
func (r *runner) wireReceiver(cs *wireConnState) {
	for {
		f, err := cs.c.Recv()
		if err != nil {
			// Connection closed by the drain phase (or the server); any
			// still-pending requests are simply lost sends.
			return
		}
		cs.mu.Lock()
		j, ok := cs.pending[f.ID]
		if ok {
			delete(cs.pending, f.ID)
		}
		cs.mu.Unlock()
		if !ok {
			r.errors.Add(1)
			continue
		}
		switch f.Op {
		case wire.OpResult:
			res, derr := f.Result()
			if derr != nil {
				r.errors.Add(1)
			} else {
				r.record(time.Since(j.sched))
				r.verify(j.idx, res.Action, res.Matched)
			}
		default:
			r.errors.Add(1)
		}
		cs.outstanding.Done()
	}
}

// runWireClosed is the closed-loop arm: one synchronous request in flight
// per connection, latency measured from the moment the request leaves.
func (r *runner) runWireClosed(conns []*wireConnState, start time.Time) error {
	deadline := start.Add(r.cfg.Duration)
	var wg sync.WaitGroup
	for ci, cs := range conns {
		wg.Add(1)
		go func(ci int, cs *wireConnState) {
			defer wg.Done()
			idx := ci % len(r.cfg.Trace)
			for time.Now().Before(deadline) {
				k := r.cfg.Trace[idx]
				r.sent.Add(1)
				t0 := time.Now()
				res, err := cs.c.Lookup(k)
				if err != nil {
					r.errors.Add(1)
				} else {
					r.record(time.Since(t0))
					r.verify(idx, res.Action, res.Matched)
				}
				idx += r.cfg.Conns
				if idx >= len(r.cfg.Trace) {
					idx -= len(r.cfg.Trace)
				}
			}
		}(ci, cs)
	}
	wg.Wait()
	return nil
}

// waitTimeout waits for wg up to d.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}
