package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/wire"
	"neurolpm/internal/workload"
)

// updateLoop replays cfg.Updates on its own connection at the stream's
// Poisson schedule, looping until the send window closes. Between passes any
// site the stream left populated is deleted first, so each pass's inserts
// apply cleanly. A not-implemented answer (single-engine server) ends the
// loop; backpressure (full delta buffer) counts as an update error and the
// stream keeps its pace.
func (r *runner) updateLoop(stop <-chan struct{}, sent, errs *atomic.Int64) {
	apply, closeSink := r.dialUpdateSink(errs)
	if apply == nil {
		return
	}
	defer closeSink()
	present := make(map[keys.Value]bool, len(r.cfg.Updates))
	for {
		passStart := time.Now()
		for _, u := range r.cfg.Updates {
			if !sleepUntil(stop, passStart.Add(u.At)) {
				return
			}
			if u.Op == workload.UpdateInsert && present[u.Rule.Prefix] {
				// Leftover from the previous pass: clear it so the insert
				// applies (mixed streams end mid-flap).
				if !r.applyOne(apply, workload.Update{Op: workload.UpdateDelete, Rule: u.Rule}, present, sent, errs) {
					return
				}
			}
			if !r.applyOne(apply, u, present, sent, errs) {
				return
			}
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

// applyOne sends one update and tracks site presence. A false return ends
// the replay loop (server can't apply updates, or we're stopping).
func (r *runner) applyOne(apply func(workload.Update) error, u workload.Update, present map[keys.Value]bool, sent, errs *atomic.Int64) bool {
	err := apply(u)
	sent.Add(1)
	if err != nil {
		errs.Add(1)
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Code == wire.ErrNotImplemented {
			return false
		}
		if errors.Is(err, errUpdatesUnsupported) {
			return false
		}
		return true
	}
	switch u.Op {
	case workload.UpdateInsert:
		present[u.Rule.Prefix] = true
	case workload.UpdateDelete:
		present[u.Rule.Prefix] = false
	}
	return true
}

// errUpdatesUnsupported marks an HTTP 501 — the server has no update plane.
var errUpdatesUnsupported = errors.New("load: server does not support updates")

// dialUpdateSink opens the update connection for the configured protocol and
// returns the per-update apply function (nil if the dial failed).
func (r *runner) dialUpdateSink(errs *atomic.Int64) (apply func(workload.Update) error, closeSink func()) {
	if r.cfg.Proto == ProtoHTTP {
		client := r.httpClient()
		url := "http://" + r.cfg.Addr + "/update"
		return func(u workload.Update) error {
			body, err := json.Marshal(map[string]any{
				"op":     u.Op.String(),
				"prefix": hexKey(u.Rule.Prefix),
				"len":    u.Rule.Len,
				"action": u.Rule.Action,
			})
			if err != nil {
				return err
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				return nil
			case http.StatusNotImplemented:
				return errUpdatesUnsupported
			default:
				return fmt.Errorf("update status %d", resp.StatusCode)
			}
		}, client.CloseIdleConnections
	}
	c, err := wire.Dial(r.cfg.Addr, 5*time.Second)
	if err != nil {
		errs.Add(1)
		return nil, func() {}
	}
	return func(u workload.Update) error {
		_, uerr := c.Update(wire.RuleUpdate{
			Op:     uint8(u.Op),
			Prefix: u.Rule.Prefix,
			Len:    u.Rule.Len,
			Action: u.Rule.Action,
		})
		return uerr
	}, func() { c.Close() }
}

// sleepUntil sleeps until t or stop; false means stop fired.
func sleepUntil(stop <-chan struct{}, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		select {
		case <-stop:
			return false
		default:
			return true
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-stop:
		return false
	case <-timer.C:
		return true
	}
}
