//go:build race

package load

// raceEnabled scales the smoke rates down: race instrumentation slows the
// served side several-fold, and the open-loop achieved/offered check is about
// driver correctness, not server throughput under the detector.
const raceEnabled = true
