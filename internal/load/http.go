package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"neurolpm/internal/keys"
)

// hexKey formats a key the way serve.ParseKey reads it back.
func hexKey(k keys.Value) string {
	if k.Hi != 0 {
		return fmt.Sprintf("0x%x%016x", k.Hi, k.Lo)
	}
	return fmt.Sprintf("0x%x", k.Lo)
}

// httpLookupReply is the subset of the /lookup response the driver checks.
type httpLookupReply struct {
	Matched bool   `json:"matched"`
	Action  uint64 `json:"action"`
}

func (r *runner) httpClient() *http.Client {
	return &http.Client{
		Timeout: 5 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        r.cfg.Conns,
			MaxIdleConnsPerHost: r.cfg.Conns,
		},
	}
}

// httpLookup performs one GET /lookup round-trip and decodes the answer.
func (r *runner) httpLookup(client *http.Client, idx int) (httpLookupReply, error) {
	url := "http://" + r.cfg.Addr + "/lookup?key=" + hexKey(r.cfg.Trace[idx])
	resp, err := client.Get(url)
	if err != nil {
		return httpLookupReply{}, err
	}
	var reply httpLookupReply
	derr := json.NewDecoder(resp.Body).Decode(&reply)
	io.Copy(io.Discard, resp.Body) // drain for keep-alive reuse
	resp.Body.Close()
	if derr != nil {
		return httpLookupReply{}, derr
	}
	if resp.StatusCode != http.StatusOK {
		return httpLookupReply{}, fmt.Errorf("lookup status %d", resp.StatusCode)
	}
	return reply, nil
}

// runHTTP drives the HTTP/JSON baseline over a keep-alive client. Open-loop
// mode schedules Poisson arrivals into a worker pool of Conns concurrent
// requests; when the pool is saturated, jobs queue and their latency — still
// measured from the scheduled send time — grows, exactly as an open-loop
// client would experience it.
func (r *runner) runHTTP(start time.Time) error {
	client := r.httpClient()
	defer client.CloseIdleConnections()

	if r.cfg.Rate <= 0 {
		return r.runHTTPClosed(client, start)
	}

	jobs := make(chan job, 1024)
	go r.schedule(jobs, start)

	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				reply, err := r.httpLookup(client, j.idx)
				if err != nil {
					r.errors.Add(1)
					continue
				}
				r.record(time.Since(j.sched))
				r.verify(j.idx, reply.Action, reply.Matched)
			}
		}()
	}
	wg.Wait()
	return nil
}

// runHTTPClosed is the closed-loop arm: Conns workers each keep one request
// in flight, latency from the moment the request leaves.
func (r *runner) runHTTPClosed(client *http.Client, start time.Time) error {
	deadline := start.Add(r.cfg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx := w % len(r.cfg.Trace)
			for time.Now().Before(deadline) {
				r.sent.Add(1)
				t0 := time.Now()
				reply, err := r.httpLookup(client, idx)
				if err != nil {
					r.errors.Add(1)
				} else {
					r.record(time.Since(t0))
					r.verify(idx, reply.Action, reply.Matched)
				}
				idx += r.cfg.Conns
				if idx >= len(r.cfg.Trace) {
					idx -= len(r.cfg.Trace)
				}
			}
		}(w)
	}
	wg.Wait()
	return nil
}
