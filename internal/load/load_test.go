package load

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/serve"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/workload"
)

// smokeFixture is an in-process sharded server with both endpoints up, plus
// the oracle-verified trace and update stream the driver replays.
type smokeFixture struct {
	wireAddr string
	httpAddr string
	trace    []keys.Value
	expected []Result
	updates  *workload.UpdateStream
}

func buildSmokeFixture(t *testing.T) *smokeFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	seen := map[string]bool{}
	var rules []lpm.Rule
	for len(rules) < 300 {
		length := 1 + rng.Intn(32)
		prefix := keys.FromUint64(rng.Uint64() & (1<<32 - 1))
		prefix = prefix.Shr(uint(32 - length)).Shl(uint(32 - length))
		id := fmt.Sprintf("%v/%d", prefix, length)
		if seen[id] {
			continue
		}
		seen[id] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(len(rules) + 1)})
	}
	rs, err := lpm.NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}

	mc := rqrmi.DefaultConfig()
	mc.StageWidths = []int{1, 2, 8}
	mc.Samples = 512
	mc.Epochs = 20
	mc.MaxRounds = 2
	sh, err := shard.BuildUpdatable(rs, core.Config{Model: mc, BucketSize: 8}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := sh.Close(); err != nil {
			t.Errorf("close shards: %v", err)
		}
	})
	sh.StartAutoCommit(5*time.Millisecond, 8)
	srv := serve.NewSharded(sh, telemetry.NewRegistry())

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := serve.NewWireServer(srv, l, serve.DefaultCoalesceWindow)
	go ws.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := ws.Shutdown(ctx); err != nil {
			t.Errorf("wire shutdown: %v", err)
		}
	})

	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	// Update stream first, so trace verification can exempt its flap sites.
	stream, err := workload.GenerateUpdates(rs, workload.UpdateConfig{
		Count: 400, Rate: 300, Sites: 16, ActionBase: 1 << 25, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}

	oracle := lpm.NewTrieMatcher(rs)
	trace := make([]keys.Value, 4096)
	expected := make([]Result, len(trace))
	for i := range trace {
		trace[i] = keys.FromUint64(rng.Uint64() & (1<<32 - 1))
		a, ok := oracle.Lookup(trace[i])
		expected[i] = Result{Action: a, Matched: ok}
	}

	return &smokeFixture{
		wireAddr: l.Addr().String(),
		httpAddr: strings.TrimPrefix(hs.URL, "http://"),
		trace:    trace,
		expected: expected,
		updates:  stream,
	}
}

func checkReport(t *testing.T, rep *Report, openLoop bool) {
	t.Helper()
	t.Logf("%v", rep)
	if rep.Done == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d oracle mismatches", rep.Mismatches)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if openLoop && rep.Achieved < 0.9*rep.Offered {
		t.Fatalf("achieved %.0f/s below 90%% of offered %.0f/s", rep.Achieved, rep.Offered)
	}
}

// TestLoadSmoke is the `make loadtest` CI smoke: a 2s open-loop wire run with
// a live update stream against an in-process WireServer must complete ≥ 90%
// of the offered rate with zero errors and zero oracle mismatches.
func TestLoadSmoke(t *testing.T) {
	fx := buildSmokeFixture(t)
	rate := 2000.0
	if raceEnabled {
		rate = 600
	}
	rep, err := Run(Config{
		Addr:       fx.wireAddr,
		Proto:      ProtoWire,
		Conns:      4,
		Rate:       rate,
		Duration:   2 * time.Second,
		Trace:      fx.trace,
		Width:      32,
		Expected:   fx.expected,
		SkipVerify: fx.updates.SiteSet(),
		Updates:    fx.updates.Updates,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, true)
	if rep.Updates == 0 {
		t.Fatal("update stream sent nothing")
	}
	if rep.UpdateErrs != 0 {
		t.Fatalf("%d update errors", rep.UpdateErrs)
	}
}

// TestLoadHTTPDriver covers the HTTP arms: a short open-loop run (with the
// update stream riding POST /update) and a closed-loop run, both verified
// against the oracle.
func TestLoadHTTPDriver(t *testing.T) {
	fx := buildSmokeFixture(t)
	rate := 500.0
	if raceEnabled {
		rate = 100
	}
	rep, err := Run(Config{
		Addr:       fx.httpAddr,
		Proto:      ProtoHTTP,
		Conns:      4,
		Rate:       rate,
		Duration:   700 * time.Millisecond,
		Trace:      fx.trace,
		Width:      32,
		Expected:   fx.expected,
		SkipVerify: fx.updates.SiteSet(),
		Updates:    fx.updates.Updates,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, true)
	if rep.Updates == 0 {
		t.Fatal("update stream sent nothing")
	}

	// The first run may have left flap sites populated, so the closed-loop
	// pass keeps the site exemption.
	rep, err = Run(Config{
		Addr:       fx.httpAddr,
		Proto:      ProtoHTTP,
		Conns:      2,
		Duration:   300 * time.Millisecond,
		Trace:      fx.trace,
		Width:      32,
		Expected:   fx.expected,
		SkipVerify: fx.updates.SiteSet(),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, false)
}

// TestLoadWireClosedLoop covers the synchronous wire arm.
func TestLoadWireClosedLoop(t *testing.T) {
	fx := buildSmokeFixture(t)
	rep, err := Run(Config{
		Addr:     fx.wireAddr,
		Proto:    ProtoWire,
		Conns:    2,
		Duration: 300 * time.Millisecond,
		Trace:    fx.trace,
		Width:    32,
		Expected: fx.expected,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, false)
}
