// Package lcache is the hot-key result cache plane (DESIGN.md §12): a
// fixed-size, set-associative, epoch-invalidated cache of final lookup
// results ((key) → (action, matched)) that sits in front of the compiled
// query plane. Real LPM traffic is heavily skewed — the paper's §10
// methodology models Zipf flow popularity with bursty temporal locality —
// so a repeated hot key can skip RQRMI inference, the bounded secondary
// search and the DRAM bucket fetch entirely and be answered from one or two
// cache lines of SRAM-sized state.
//
// Concurrency model — single owner, shared epochs:
//
//   - A Cache is owned by exactly one goroutine at a time (one cache per
//     shard-pool worker, plus Pool-managed caches for paths without a stable
//     worker identity). Probes and fills therefore take no locks and issue
//     no atomic operations on the table itself.
//   - Invalidation is carried entirely by Epoch, a shared padded atomic
//     counter bumped by writers after every mutation (tombstone delete,
//     action modify, delta insert, committed engine swap). Entries are
//     stamped with the epoch value the reader loaded before it computed the
//     result; a probe only hits when the stamp equals the current epoch, so
//     stale entries die on read with no invalidation walk.
//
// Correctness argument (the fill/invalidate race): a reader loads the epoch
// E before touching any engine state, computes, and stamps its fill with E.
// A writer completes its mutation before bumping. If the mutation finished
// before the reader's epoch load, the reader stamps E ≥ post-bump value only
// after the bump — and Go's atomics give acquire/release ordering, so the
// reader's recompute sees the mutation. If the mutation finished after the
// load, the fill is stamped with the pre-bump epoch and is dead on arrival:
// every later probe sees stamp ≠ current and recomputes. Either way no probe
// can return a pre-mutation action under a post-mutation epoch. Negative
// results (no live rule matched) are cached under the same rule.
//
// Adaptive bypass: caching only pays when traffic repeats keys. Each cache
// monitors its own windowed hit rate; when a window closes below the
// break-even threshold the cache bypasses itself for a fixed number of keys
// and then re-probes a trial window. On a uniform (worst-case) trace this
// bounds the plane's overhead to the duty cycle of the trial windows.
package lcache

import (
	"sync"
	"sync/atomic"

	"neurolpm/internal/keys"
	"neurolpm/internal/telemetry"
)

// Epoch is a cache-line-padded atomic invalidation counter. The zero value
// is ready to use and reads as epoch 1, so zero-initialized cache entries
// (stamp 0) can never match a live epoch. Writers call Bump after completing
// a mutation; readers Load once per lookup (or once per batch group) before
// touching engine state and stamp their fills with that value.
type Epoch struct {
	n atomic.Uint64
	_ [56]byte
}

// Load returns the current epoch (≥ 1).
func (e *Epoch) Load() uint64 { return e.n.Load() + 1 }

// Bump advances the epoch, logically invalidating every entry stamped with
// an older value — O(1), no walk. Call it after the mutation is visible.
func (e *Epoch) Bump() { e.n.Add(1) }

// Outcome classifies one cached-lookup probe.
type Outcome uint8

const (
	// None: the cache plane is disabled or bypassed — the query went
	// straight to the engine.
	None Outcome = iota
	// Hit: answered from the cache at the current epoch.
	Hit
	// Miss: key not present; the engine answered and the entry was filled.
	Miss
	// Stale: key present but stamped with a dead epoch (invalidated by an
	// update); the engine answered and the entry was refilled.
	Stale
)

// String returns the /trace spelling of the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Stale:
		return "stale"
	}
	return "off"
}

// entry is one cached result: 32 bytes, two entries per 64-byte cache line.
// meta packs epoch<<1 | matched; meta == 0 marks a never-filled slot (a live
// epoch is always ≥ 1).
type entry struct {
	keyHi, keyLo uint64
	action       uint64
	meta         uint64
}

const (
	// Ways is the set associativity: 4 × 32-byte entries = two cache lines
	// per set.
	Ways       = 4
	entryBytes = 32
	setBytes   = Ways * entryBytes
	// MinBytes is the smallest table New will build (32 sets).
	MinBytes = 32 * setBytes
)

// Adaptive-bypass tuning: a window of bypassWindow probes closing with a hit
// rate below 1/bypassDenom (12.5%, near the probe-cost/hit-savings
// break-even on the reference machine) bypasses the cache for bypassPeriod
// keys before the next trial window. Worst-case (zero-hit) duty cycle:
// 2048/(2048+131072) ≈ 1.5% of keys pay the probe cost, bounding the
// uniform-traffic overhead well under the measurement noise floor. At a few
// Mlookups/s a bypass period lasts tens of milliseconds, so a workload that
// turns hot is re-detected quickly.
const (
	bypassWindow = 2048
	bypassDenom  = 8
	bypassPeriod = 131072
)

// Cache is one single-owner result cache: a power-of-two number of
// Ways-entry sets. The zero value is not usable; create with New. All
// methods also accept a nil receiver (Bypassed reports true), so disabled
// cache planes need no branches at call sites.
type Cache struct {
	entries []entry
	mask    uint64 // set count − 1

	// Windowed self-monitoring; single-owner, so plain fields.
	winProbes  uint32
	winHits    uint32
	bypassLeft int

	// tick numbers this cache's lookups for flight-recorder sampling
	// (single-owner, so a plain increment — the cached hit path stays free
	// of atomics).
	tick uint64
}

// SampleTick returns this cache's next lookup ordinal — the sampling tick
// the cached query paths feed telemetry.Flight.HitN, mirroring how the
// uncached paths reuse the lookup counter's value. Single-owner like every
// other Cache method.
func (c *Cache) SampleTick() uint64 {
	c.tick++
	return c.tick
}

// New builds a cache of at most bytes of table (rounded down to a power-of-
// two set count, floored at MinBytes).
func New(bytes int) *Cache {
	if bytes < MinBytes {
		bytes = MinBytes
	}
	sets := 1
	for sets*2*setBytes <= bytes {
		sets *= 2
	}
	return &Cache{entries: make([]entry, sets*Ways), mask: uint64(sets - 1)}
}

// Bytes returns the table's actual size in bytes.
func (c *Cache) Bytes() int { return len(c.entries) * entryBytes }

// Len returns the entry capacity.
func (c *Cache) Len() int { return len(c.entries) }

// hash mixes a 128-bit key into a well-distributed 64-bit set selector
// (splitmix64 finalizer over the folded limbs).
func hash(k keys.Value) uint64 {
	x := k.Lo ^ (k.Hi * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Bypassed reports whether the next n keys should skip the cache entirely
// (nil cache, or the adaptive-bypass heuristic is in its off period). When
// bypassing it consumes n keys from the off period, so callers check once
// per batch group, not per key.
func (c *Cache) Bypassed(n int) bool {
	if c == nil {
		return true
	}
	if c.bypassLeft <= 0 {
		return false
	}
	c.bypassLeft -= n
	metBypassed.Add(uint64(n))
	return true
}

// Get probes for k at the given epoch (loaded by the caller before touching
// any engine state). On Hit the cached action/matched pair is returned; on
// Miss or Stale the caller must compute the answer and Put it back stamped
// with the same epoch value.
func (c *Cache) Get(k keys.Value, epoch uint64) (action uint64, matched bool, o Outcome) {
	base := (hash(k) & c.mask) * Ways
	set := c.entries[base : base+Ways : base+Ways]
	c.winProbes++
	want := epoch << 1
	for i := range set {
		e := &set[i]
		if e.keyLo != k.Lo || e.keyHi != k.Hi || e.meta == 0 {
			continue
		}
		// Right key under a dead epoch still proves locality: count it as a
		// window hit so a mass invalidation (epoch bump) cannot trip the
		// bypass heuristic while the hot set refills.
		c.winHits++
		if e.meta&^uint64(1) == want {
			c.closeWindow()
			metHits.Inc()
			return e.action, e.meta&1 == 1, Hit
		}
		c.closeWindow()
		metStale.Inc()
		return 0, false, Stale
	}
	c.closeWindow()
	metMisses.Inc()
	return 0, false, Miss
}

// closeWindow rolls the self-monitoring window and arms the bypass period
// when the closing window's hit rate is below 1/bypassDenom.
func (c *Cache) closeWindow() {
	if c.winProbes < bypassWindow {
		return
	}
	if bypassDenom*c.winHits < c.winProbes {
		c.bypassLeft = bypassPeriod
	}
	c.winProbes, c.winHits = 0, 0
}

// Put fills k's entry with the computed result, stamped with the epoch the
// caller loaded before computing. Victim selection: the key's existing slot
// first (so Get and Put agree on which duplicate is live), then the first
// empty or dead-epoch way, then a hash-selected way.
func (c *Cache) Put(k keys.Value, epoch uint64, action uint64, matched bool) {
	h := hash(k)
	base := (h & c.mask) * Ways
	set := c.entries[base : base+Ways : base+Ways]
	cur := epoch << 1
	idx := -1
	for i := range set {
		e := &set[i]
		if e.keyLo == k.Lo && e.keyHi == k.Hi && e.meta != 0 {
			idx = i
			break
		}
		if idx < 0 && (e.meta == 0 || e.meta&^uint64(1) != cur) {
			idx = i
		}
	}
	if idx < 0 {
		idx = int(h >> 62) // Ways == 4: top two hash bits pick the victim
	}
	e := &set[idx]
	e.keyHi, e.keyLo, e.action = k.Hi, k.Lo, action
	m := cur
	if matched {
		m |= 1
	}
	e.meta = m
	metFills.Inc()
}

// Pool hands out equally-sized caches with exclusive ownership for serving
// paths that have no stable worker identity (serial shard fan-out, per-
// request HTTP lookups): Get before probing, Put when the request or batch
// group is done. Backed by sync.Pool, so steady-state traffic reuses warm
// tables without allocation; the GC may drop idle tables, which only costs
// refills. A nil *Pool hands out nil caches (the disabled plane).
type Pool struct {
	bytes int
	pool  sync.Pool
}

// NewPool returns a pool of caches of the given size.
func NewPool(bytes int) *Pool {
	p := &Pool{bytes: bytes}
	p.pool.New = func() any { return New(bytes) }
	return p
}

// Get takes exclusive ownership of a cache (nil when p is nil).
func (p *Pool) Get() *Cache {
	if p == nil {
		return nil
	}
	return p.pool.Get().(*Cache)
}

// Put returns a cache taken with Get.
func (p *Pool) Put(c *Cache) {
	if p == nil || c == nil {
		return
	}
	p.pool.Put(c)
}

// Bytes returns the per-cache table size the pool was built with.
func (p *Pool) Bytes() int {
	if p == nil {
		return 0
	}
	return p.bytes
}

// The lcache metric family (DESIGN.md §8). Counters are the process-wide
// lock-free sharded kind, aggregated across every cache instance; per-run
// views (experiments, tests) snapshot deltas.
var (
	metHits = telemetry.Default.Counter("neurolpm_lcache_hits_total",
		"Result-cache probes answered from the cache at the current epoch")
	metMisses = telemetry.Default.Counter("neurolpm_lcache_misses_total",
		"Result-cache probes that found no entry for the key")
	metStale = telemetry.Default.Counter("neurolpm_lcache_stale_total",
		"Result-cache probes that found the key under a dead epoch (entry invalidated by an update)")
	metFills = telemetry.Default.Counter("neurolpm_lcache_fills_total",
		"Result-cache entries written (misses and stale refills)")
	metBypassed = telemetry.Default.Counter("neurolpm_lcache_bypassed_total",
		"Keys that skipped the cache while the adaptive bypass was active")
)

func init() {
	telemetry.Default.Gauge("neurolpm_lcache_hit_rate",
		"Result-cache hits / probes (0 before any probe)",
		func() float64 {
			h := metHits.Load()
			total := h + metMisses.Load() + metStale.Load()
			if total == 0 {
				return 0
			}
			return float64(h) / float64(total)
		})
}
