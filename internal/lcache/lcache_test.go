package lcache

import (
	"testing"

	"neurolpm/internal/keys"
)

func TestEpochZeroValueNeverMatchesEmptyEntry(t *testing.T) {
	var ep Epoch
	if got := ep.Load(); got != 1 {
		t.Fatalf("zero-value epoch reads %d, want 1", got)
	}
	c := New(MinBytes)
	k := keys.Value{} // key 0: worst case for zero-initialized entries
	if _, _, o := c.Get(k, ep.Load()); o != Miss {
		t.Fatalf("probe of empty cache for key 0 at epoch 1 = %v, want miss", o)
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	var ep Epoch
	c := New(64 << 10)
	e := ep.Load()
	pos := keys.Value{Lo: 42}
	neg := keys.Value{Lo: 7, Hi: 3}
	c.Put(pos, e, 99, true)
	c.Put(neg, e, 0, false) // negative result cached identically
	if a, m, o := c.Get(pos, e); o != Hit || !m || a != 99 {
		t.Fatalf("Get(pos) = (%d,%v,%v), want (99,true,hit)", a, m, o)
	}
	if _, m, o := c.Get(neg, e); o != Hit || m {
		t.Fatalf("Get(neg) = (_,%v,%v), want cached negative hit", m, o)
	}
}

func TestBumpInvalidatesAndRefillRevives(t *testing.T) {
	var ep Epoch
	c := New(MinBytes)
	k := keys.Value{Lo: 5}
	e1 := ep.Load()
	c.Put(k, e1, 10, true)
	ep.Bump()
	e2 := ep.Load()
	if e2 != e1+1 {
		t.Fatalf("epoch after bump = %d, want %d", e2, e1+1)
	}
	if _, _, o := c.Get(k, e2); o != Stale {
		t.Fatalf("post-bump probe = %v, want stale", o)
	}
	c.Put(k, e2, 11, true)
	if a, _, o := c.Get(k, e2); o != Hit || a != 11 {
		t.Fatalf("refilled probe = (%d,%v), want (11,hit)", a, o)
	}
	// A fill stamped with the dead epoch must be dead on arrival.
	c.Put(k, e1, 10, true)
	if _, _, o := c.Get(k, e2); o != Stale {
		t.Fatalf("probe after dead-epoch fill = %v, want stale", o)
	}
}

func TestPutPrefersExistingSlot(t *testing.T) {
	var ep Epoch
	c := New(MinBytes)
	e := ep.Load()
	k := keys.Value{Lo: 77}
	c.Put(k, e, 1, true)
	c.Put(k, e, 2, true) // update in place, not a second way
	if a, _, o := c.Get(k, e); o != Hit || a != 2 {
		t.Fatalf("Get after double Put = (%d,%v), want (2,hit)", a, o)
	}
}

func TestSetOverflowEvicts(t *testing.T) {
	var ep Epoch
	c := New(MinBytes)
	e := ep.Load()
	// Ways+1 distinct keys mapping to one set: the last Put must evict one.
	target := hash(keys.Value{Lo: 0}) & c.mask
	var colliding []keys.Value
	for lo := uint64(0); len(colliding) < Ways+1; lo++ {
		k := keys.Value{Lo: lo}
		if hash(k)&c.mask == target {
			colliding = append(colliding, k)
		}
	}
	for i, k := range colliding {
		c.Put(k, e, uint64(i), true)
	}
	hits := 0
	for i, k := range colliding {
		if a, _, o := c.Get(k, e); o == Hit {
			hits++
			if a != uint64(i) {
				t.Fatalf("hit for key %v returned %d, want %d", k, a, i)
			}
		}
	}
	if hits != Ways {
		t.Fatalf("after %d fills into one set, %d hits, want exactly %d", Ways+1, hits, Ways)
	}
}

func TestNewRoundsToPowerOfTwoSets(t *testing.T) {
	for _, bytes := range []int{0, 1, MinBytes, MinBytes + 1, 48 << 10, 64 << 10, 1 << 20} {
		c := New(bytes)
		sets := len(c.entries) / Ways
		if sets&(sets-1) != 0 {
			t.Fatalf("New(%d): %d sets, not a power of two", bytes, sets)
		}
		if c.Bytes() > bytes && bytes >= MinBytes {
			t.Fatalf("New(%d) built %d bytes, exceeding the budget", bytes, c.Bytes())
		}
	}
}

func TestNilCacheBypassed(t *testing.T) {
	var c *Cache
	if !c.Bypassed(16) {
		t.Fatal("nil cache must report bypassed")
	}
	var p *Pool
	if p.Get() != nil {
		t.Fatal("nil pool must hand out nil caches")
	}
	p.Put(nil) // must not panic
}

func TestAdaptiveBypassOnUniformTraffic(t *testing.T) {
	var ep Epoch
	c := New(MinBytes)
	e := ep.Load()
	// Drive a full window of guaranteed misses (all-distinct keys into a
	// tiny cache): the window must close below threshold and arm the bypass.
	for i := 0; i < bypassWindow; i++ {
		if c.Bypassed(1) {
			t.Fatalf("bypass armed after only %d probes", i)
		}
		k := keys.Value{Lo: uint64(i), Hi: uint64(i) * 1315423911}
		if _, _, o := c.Get(k, e); o == Hit {
			continue
		}
	}
	if !c.Bypassed(1) {
		t.Fatal("bypass not armed after a zero-hit window")
	}
	// The off period is consumed in key counts and then probing resumes.
	if !c.Bypassed(bypassPeriod) {
		t.Fatal("bypass ended before its period was consumed")
	}
	if c.Bypassed(1) {
		t.Fatal("bypass still armed after its period was consumed")
	}
}

func TestHotTrafficNeverArmsBypass(t *testing.T) {
	var ep Epoch
	c := New(64 << 10)
	e := ep.Load()
	hot := make([]keys.Value, 64)
	for i := range hot {
		hot[i] = keys.Value{Lo: uint64(i)}
	}
	for round := 0; round < 4*bypassWindow/len(hot); round++ {
		for _, k := range hot {
			if c.Bypassed(1) {
				t.Fatal("bypass armed on a pure hot-set trace")
			}
			if _, _, o := c.Get(k, e); o != Hit {
				c.Put(k, e, k.Lo, true)
			}
		}
	}
}

func TestStaleCountsAsWindowHit(t *testing.T) {
	var ep Epoch
	c := New(1 << 20)
	hot := make([]keys.Value, 256)
	for i := range hot {
		hot[i] = keys.Value{Lo: uint64(i)}
	}
	e := ep.Load()
	for _, k := range hot {
		c.Put(k, e, k.Lo, true)
	}
	// Alternate epoch bumps with hot-set sweeps: every probe is stale or a
	// post-refill hit; the bypass must never arm (stale proves locality).
	for round := 0; round < 40; round++ {
		ep.Bump()
		e = ep.Load()
		for _, k := range hot {
			if c.Bypassed(1) {
				t.Fatal("bypass armed under mass invalidation of a hot set")
			}
			if _, _, o := c.Get(k, e); o != Hit {
				c.Put(k, e, k.Lo, true)
			}
		}
	}
}

func TestPoolHandsOutCorrectSize(t *testing.T) {
	p := NewPool(48 << 10)
	c := p.Get()
	if c == nil {
		t.Fatal("pool handed out nil")
	}
	if c.Bytes() > 48<<10 {
		t.Fatalf("pool cache is %d bytes, budget 48KiB", c.Bytes())
	}
	p.Put(c)
	if p.Bytes() != 48<<10 {
		t.Fatalf("Pool.Bytes() = %d, want %d", p.Bytes(), 48<<10)
	}
}

func BenchmarkGetHit(b *testing.B) {
	var ep Epoch
	c := New(64 << 10)
	e := ep.Load()
	k := keys.Value{Lo: 123456789}
	c.Put(k, e, 7, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, o := c.Get(k, e); o != Hit {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkGetMiss(b *testing.B) {
	var ep Epoch
	c := New(64 << 10)
	e := ep.Load()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get(keys.Value{Lo: uint64(i), Hi: uint64(i)}, e)
	}
}
