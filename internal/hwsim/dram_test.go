package hwsim

import (
	"testing"

	"neurolpm/internal/bucket"
	"neurolpm/internal/keys"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/workload"
)

func buildBucketized(t testing.TB, rules int, seed int64) (*rqrmi.Model, *bucket.Directory, []keys.Value) {
	t.Helper()
	rs, err := workload.Generate(workload.RIPE(), rules, seed)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ranges.Convert(rs)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := bucket.Build(arr, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 16}
	cfg.Samples = 1024
	cfg.Epochs = 25
	model, _, err := rqrmi.Train(dir, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(3000, seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return model, dir, trace
}

func TestSimulateDRAMCompletes(t *testing.T) {
	model, dir, trace := buildBucketized(t, 1500, 1)
	res, err := SimulateDRAM(model, dir, trace, DefaultConfig(), DefaultDRAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMFetches != uint64(len(trace)) {
		t.Fatalf("fetches %d, want exactly one per query (§7)", res.DRAMFetches)
	}
	for i, l := range res.Latencies {
		if int(l) < 22+30+2 {
			t.Fatalf("query %d latency %d below pipeline floor", i, l)
		}
	}
}

func TestSimulateDRAMLatencyDominatesSRAMOnly(t *testing.T) {
	model, dir, trace := buildBucketized(t, 1500, 2)
	cfg := DefaultConfig()
	dram := DefaultDRAMConfig()
	sram, err := Simulate(model, dir, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulateDRAM(model, dir, trace, cfg, dram)
	if err != nil {
		t.Fatal(err)
	}
	if full.AvgLatency() < sram.AvgLatency()+float64(dram.LatencyCycles) {
		t.Fatalf("DRAM stage added only %.1f cycles", full.AvgLatency()-sram.AvgLatency())
	}
	if full.Cycles < sram.Cycles {
		t.Fatal("total cycles shrank with an extra stage")
	}
}

func TestSimulateDRAMBandwidthBound(t *testing.T) {
	// With one issue slot per cycle the DRAM stage caps throughput at one
	// query per cycle regardless of engine count.
	model, dir, trace := buildBucketized(t, 1500, 3)
	res, err := SimulateDRAM(model, dir, trace, DefaultConfig(), DRAMConfig{
		LatencyCycles: 30, IssuePerCycle: 1, SearchCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tput := float64(res.Queries) / float64(res.Cycles); tput > 1.0 {
		t.Fatalf("throughput %.3f exceeds the 1-fetch/cycle DRAM bound", tput)
	}
	// A wider controller restores throughput.
	wide, err := SimulateDRAM(model, dir, trace, DefaultConfig(), DRAMConfig{
		LatencyCycles: 30, IssuePerCycle: 4, SearchCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wide.DRAMStallCycles > res.DRAMStallCycles {
		t.Fatal("wider DRAM issue increased stalls")
	}
}

func TestSimulateDRAMValidation(t *testing.T) {
	model, dir, trace := buildBucketized(t, 500, 4)
	bad := []DRAMConfig{
		{LatencyCycles: 0, IssuePerCycle: 1},
		{LatencyCycles: 10, IssuePerCycle: 0},
		{LatencyCycles: 10, IssuePerCycle: 1, SearchCycles: -1},
	}
	for i, d := range bad {
		if _, err := SimulateDRAM(model, dir, trace, DefaultConfig(), d); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
