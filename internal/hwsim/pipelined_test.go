package hwsim

import "testing"

func TestPipelinedCompletesAll(t *testing.T) {
	model, ix, trace := buildModel(t, 1500, 20)
	res, err := SimulatePipelined(model, ix, trace, PipelinedConfig{
		Engines: 1, Banks: 16, InferenceLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != len(trace) {
		t.Fatalf("completed %d of %d", res.Queries, len(trace))
	}
	for i, l := range res.Latencies {
		if int(l) < 22+res.Stages {
			t.Fatalf("query %d latency %d below pipeline floor %d", i, l, 22+res.Stages)
		}
	}
}

func TestPipelinedStagesFromModel(t *testing.T) {
	model, ix, trace := buildModel(t, 1000, 21)
	res, err := SimulatePipelined(model, ix, trace, PipelinedConfig{
		Engines: 1, Banks: 16, InferenceLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := stagesFor(model)
	if res.Stages != want {
		t.Fatalf("stages = %d, want ⌈log₂(2e+1)⌉ = %d", res.Stages, want)
	}
	// The depth must cover the worst query: every search that runs to
	// completion finishes within the pipeline.
	for _, k := range trace[:500] {
		_, probes := model.Lookup(ix, k)
		if probes > res.Stages {
			t.Fatalf("software search used %d probes > %d stages", probes, res.Stages)
		}
	}
}

func TestPipelinedThroughputCappedByStalls(t *testing.T) {
	model, ix, trace := buildModel(t, 1500, 22)
	res, err := SimulatePipelined(model, ix, trace, PipelinedConfig{
		Engines: 1, Banks: 16, InferenceLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tput := res.Throughput(); tput > 1 {
		t.Fatalf("single-issue pipeline exceeds 1 q/cyc: %.3f", tput)
	}
	// With a single bank the pipeline serializes almost completely.
	single, err := SimulatePipelined(model, ix, trace, PipelinedConfig{
		Engines: 1, Banks: 1, InferenceLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if single.Throughput() >= res.Throughput() {
		t.Fatal("one bank not slower than sixteen")
	}
	if single.StallCycles == 0 {
		t.Fatal("single-bank run recorded no stalls")
	}
}

// TestPipelinedVsFSM captures the §6.2 trade-off quantitatively: the FSM
// design tolerates bank conflicts better (per-query decoupling), so with
// ample FSMs it should reach at least the staged design's throughput.
func TestPipelinedVsFSM(t *testing.T) {
	model, ix, trace := buildModel(t, 2000, 23)
	staged, err := SimulatePipelined(model, ix, trace, PipelinedConfig{
		Engines: 1, Banks: 16, InferenceLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := Simulate(model, ix, trace, Config{
		Engines: 1, Banks: 16, FSMs: 48, InferenceLatency: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fsm.Throughput() < staged.Throughput()*0.9 {
		t.Fatalf("FSM design (%.3f q/c) far below staged design (%.3f q/c)",
			fsm.Throughput(), staged.Throughput())
	}
}

func TestPipelinedValidation(t *testing.T) {
	model, ix, trace := buildModel(t, 500, 24)
	bad := []PipelinedConfig{
		{Engines: 0, Banks: 16, InferenceLatency: 22},
		{Engines: 1, Banks: 12, InferenceLatency: 22},
		{Engines: 1, Banks: 16, InferenceLatency: 0},
	}
	for i, cfg := range bad {
		if _, err := SimulatePipelined(model, ix, trace, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := SimulatePipelined(model, ix, nil, PipelinedConfig{Engines: 1, Banks: 16, InferenceLatency: 22}); err == nil {
		t.Error("empty trace accepted")
	}
}
