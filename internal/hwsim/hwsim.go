// Package hwsim is a cycle-level model of the SRAM-only NeuroLPM pipeline
// (paper Fig 5a, §6, §9): one or two fully-pipelined RQRMI inference
// engines feed a pool of binary-search FSMs over banked SRAM through a
// crossbar with a round-robin arbiter per bank. The simulator reproduces the
// quantities the paper's hardware evaluation reports — queries per cycle,
// end-to-end latency, bank conflicts (Fig 8, Fig 9) — and the analytical
// bank-throughput model of §6.2.1 (Fig 6a).
package hwsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"neurolpm/internal/keys"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/telemetry"
)

// Simulation tallies are accumulated locally in the Result (the sim loop is
// single-threaded and its fields are per-run outputs) and published to the
// shared registry as deltas once per run, so aggregate hardware behaviour —
// the Fig 6a bank-conflict distribution, FSM occupancy — is scrapeable
// alongside the engine's query metrics without double accounting in the
// cycle loop.
var (
	metSimRuns = telemetry.Default.Counter("neurolpm_hwsim_runs_total",
		"Cycle-level simulations executed")
	metSimQueries = telemetry.Default.Counter("neurolpm_hwsim_queries_total",
		"Queries simulated at cycle level")
	metSimCycles = telemetry.Default.Counter("neurolpm_hwsim_cycles_total",
		"Cycles simulated")
	metBankAccesses = telemetry.Default.Counter("neurolpm_hwsim_bank_accesses_total",
		"Granted SRAM bank reads (paper §6.2)")
	metBankConflicts = telemetry.Default.Counter("neurolpm_hwsim_bank_conflicts_total",
		"Cycles an FSM was denied by bank arbitration (paper Fig 6a)")
	metEngineStalls = telemetry.Default.Counter("neurolpm_hwsim_engine_stalls_total",
		"Cycles an inference engine stalled awaiting an FSM")
	metFSMBusy = telemetry.Default.Counter("neurolpm_hwsim_fsm_busy_cycles_total",
		"FSM-cycles spent busy (occupancy numerator, paper §6.2.1)")
	metSimLatency = telemetry.Default.Histogram("neurolpm_hwsim_latency_cycles",
		"End-to-end query latency in cycles")
)

// publish exports one finished run's tallies to the shared registry.
func (r *Result) publish() {
	metSimRuns.Inc()
	metSimQueries.Add(uint64(r.Queries))
	metSimCycles.Add(r.Cycles)
	metBankAccesses.Add(r.BankAccesses)
	metBankConflicts.Add(r.BankConflicts)
	metEngineStalls.Add(r.EngineStalls)
	metFSMBusy.Add(r.FSMBusyCycles)
	for _, l := range r.Latencies {
		metSimLatency.Observe(uint64(l))
	}
}

// Config is a hardware configuration point. The paper explores 1–2 RQRMI
// engines, 8–32 banks and 8–96 FSMs; banks must be a power of two for cheap
// bank indexing (§6.2).
type Config struct {
	Engines          int
	FSMs             int
	Banks            int
	InferenceLatency int // cycles; the prototype's RQRMI pipeline takes 22 (§10.3)
}

// DefaultConfig is the paper's best-performing large configuration:
// two RQRMI engines, 32 banks, 96 FSMs (196Mpps at 100MHz, §10.3).
func DefaultConfig() Config {
	return Config{Engines: 2, FSMs: 96, Banks: 32, InferenceLatency: 22}
}

func (c Config) validate() error {
	if c.Engines < 1 || c.Engines > 2 {
		return fmt.Errorf("hwsim: engines must be 1 or 2, got %d", c.Engines)
	}
	if c.FSMs < 1 {
		return fmt.Errorf("hwsim: need at least one FSM")
	}
	if c.Banks < 1 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("hwsim: banks must be a positive power of two, got %d", c.Banks)
	}
	if c.InferenceLatency < 1 {
		return fmt.Errorf("hwsim: inference latency must be positive")
	}
	return nil
}

// Result aggregates one simulation run.
type Result struct {
	Config        Config
	Queries       int
	Cycles        uint64
	BankAccesses  uint64 // granted SRAM reads
	BankConflicts uint64 // cycles an FSM was denied by arbitration
	EngineStalls  uint64 // cycles an engine was stalled awaiting an FSM
	FSMBusyCycles uint64 // Σ over cycles of busy FSMs (occupancy numerator)
	Latencies     []uint32

	// finishedAt[q] is the absolute cycle query q's secondary search
	// completed — the hand-off point to the DRAM stage (SimulateDRAM).
	finishedAt []uint64
}

// Throughput returns average queries per cycle.
func (r *Result) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Queries) / float64(r.Cycles)
}

// AvgLatency returns the mean end-to-end latency in cycles.
func (r *Result) AvgLatency() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range r.Latencies {
		sum += float64(l)
	}
	return sum / float64(len(r.Latencies))
}

// AvgBankAccesses returns the mean SRAM reads per query — the quantity the
// §6.2.1 sizing analysis is parameterized on.
func (r *Result) AvgBankAccesses() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.BankAccesses) / float64(r.Queries)
}

// AvgFSMOccupancy returns the mean fraction of FSMs busy per cycle — the
// utilization the §6.2.1 FSM-pool sizing targets.
func (r *Result) AvgFSMOccupancy() float64 {
	if r.Cycles == 0 || r.Config.FSMs == 0 {
		return 0
	}
	return float64(r.FSMBusyCycles) / (float64(r.Cycles) * float64(r.Config.FSMs))
}

// LatencyCDF returns latency values at the given quantiles (0..1).
func (r *Result) LatencyCDF(quantiles []float64) []uint32 {
	if len(r.Latencies) == 0 {
		return make([]uint32, len(quantiles))
	}
	sorted := append([]uint32(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]uint32, len(quantiles))
	for i, q := range quantiles {
		idx := int(q*float64(len(sorted)-1) + 0.5)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}

// MppsAt returns throughput in million queries per second at the given
// clock (the paper reports 196Mpps at 100MHz).
func (r *Result) MppsAt(hz float64) float64 {
	return r.Throughput() * hz / 1e6
}

// fsm is one secondary-search state machine.
type fsm struct {
	busy     bool
	lo, hi   int
	key      keys.Value
	query    int    // trace index served, for latency bookkeeping
	injected uint64 // cycle the query entered its inference engine
}

// engine is one RQRMI inference pipeline: a shift register of queries with
// an output register that must drain to an FSM before the pipeline advances.
type engine struct {
	stages []int // query ids in flight; -1 = bubble
	out    int   // query id awaiting an FSM; -1 = empty
	outKey keys.Value
}

// Simulate runs the trace through the hardware model. The model and index
// must be the ones the engine actually serves (predictions and search
// windows are computed with the real inference arithmetic, so probe counts
// and bank addresses are exact, not sampled).
func Simulate(m *rqrmi.Model, ix rqrmi.Index, trace []keys.Value, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("hwsim: empty trace")
	}
	res := &Result{
		Config:     cfg,
		Queries:    len(trace),
		Latencies:  make([]uint32, len(trace)),
		finishedAt: make([]uint64, len(trace)),
	}
	injectedAt := make([]uint64, len(trace))

	engines := make([]*engine, cfg.Engines)
	for i := range engines {
		engines[i] = &engine{stages: make([]int, cfg.InferenceLatency), out: -1}
		for s := range engines[i].stages {
			engines[i].stages[s] = -1
		}
	}
	fsms := make([]fsm, cfg.FSMs)
	// Per-bank round-robin arbitration pointer.
	rrBank := make([]int, cfg.Banks)
	// Round-robin pointer for which engine stalls when FSMs are scarce.
	enginePrio := 0

	next := 0 // next trace index to inject
	done := 0
	var cycle uint64

	for done < len(trace) {
		cycle++
		// 1) Secondary-search FSMs issue bank requests; per-bank round-robin
		// arbitration grants one per bank.
		want := make([][]int, cfg.Banks) // bank -> contending FSM ids
		for i := range fsms {
			f := &fsms[i]
			if !f.busy {
				continue
			}
			res.FSMBusyCycles++ // busy at cycle start, even if retiring now
			if f.lo >= f.hi {
				// Search complete: publish and free this cycle.
				res.Latencies[f.query] = uint32(cycle - f.injected)
				res.finishedAt[f.query] = cycle
				f.busy = false
				done++
				continue
			}
			mid := (f.lo + f.hi + 1) / 2
			bank := mid & (cfg.Banks - 1)
			want[bank] = append(want[bank], i)
		}
		for b := 0; b < cfg.Banks; b++ {
			reqs := want[b]
			if len(reqs) == 0 {
				continue
			}
			// Grant the first requester at or after the rotating pointer.
			granted := reqs[0]
			for _, id := range reqs {
				if id >= rrBank[b] {
					granted = id
					break
				}
			}
			rrBank[b] = granted + 1
			if rrBank[b] >= cfg.FSMs {
				rrBank[b] = 0
			}
			res.BankAccesses++
			res.BankConflicts += uint64(len(reqs) - 1)
			f := &fsms[granted]
			mid := (f.lo + f.hi + 1) / 2
			if f.key.Less(ix.Low(mid)) {
				f.hi = mid - 1
			} else {
				f.lo = mid
			}
		}

		// 2) Engine outputs claim idle FSMs (pop-count allocator, §9); when
		// FSMs are scarce the round-robin policy picks which engine stalls.
		idle := make([]int, 0, 4)
		for i := range fsms {
			if !fsms[i].busy {
				idle = append(idle, i)
			}
		}
		ready := make([]int, 0, 2)
		for e := 0; e < cfg.Engines; e++ {
			ei := (enginePrio + e) % cfg.Engines
			if engines[ei].out >= 0 {
				ready = append(ready, ei)
			}
		}
		for _, ei := range ready {
			if len(idle) == 0 {
				res.EngineStalls++
				continue
			}
			fi := idle[0]
			idle = idle[1:]
			eng := engines[ei]
			q := eng.out
			eng.out = -1
			p := m.Predict(eng.outKey)
			lo, hi := p.Index-p.Err, p.Index+p.Err
			if lo < 0 {
				lo = 0
			}
			if hi > ix.Len()-1 {
				hi = ix.Len() - 1
			}
			fsms[fi] = fsm{busy: true, lo: lo, hi: hi, key: eng.outKey, query: q, injected: injectedAt[q]}
		}
		enginePrio = (enginePrio + 1) % cfg.Engines

		// 3) Engine pipelines advance; stalled pipelines (occupied output
		// register) hold every stage.
		for _, eng := range engines {
			if eng.out >= 0 {
				continue // stalled
			}
			last := len(eng.stages) - 1
			if q := eng.stages[last]; q >= 0 {
				eng.out = q
				eng.outKey = trace[q]
			}
			copy(eng.stages[1:], eng.stages[:last])
			eng.stages[0] = -1
			if next < len(trace) {
				eng.stages[0] = next
				injectedAt[next] = cycle
				next++
			}
		}
	}
	res.Cycles = cycle
	res.publish()
	return res, nil
}

// TheoreticalBankThroughput is the §6.2.1 closed form: with k FSMs issuing
// independent uniform requests over m banks, the expected number of busy
// banks per cycle is T = m·(1 − ((m−1)/m)^k) — the birthday-style upper
// bound plotted in Fig 6a.
func TheoreticalBankThroughput(banks, fsms int) float64 {
	m := float64(banks)
	return m * (1 - math.Pow((m-1)/m, float64(fsms)))
}

// SimulateBankContention measures the same quantity empirically: k FSMs
// each request one uniformly random bank per cycle (independent requests,
// as the analytical model assumes) and each bank serves one request.
func SimulateBankContention(banks, fsms, cycles int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	served := 0
	hit := make([]bool, banks)
	for c := 0; c < cycles; c++ {
		for i := range hit {
			hit[i] = false
		}
		for f := 0; f < fsms; f++ {
			hit[rng.Intn(banks)] = true
		}
		for _, h := range hit {
			if h {
				served++
			}
		}
	}
	return float64(served) / float64(cycles)
}
