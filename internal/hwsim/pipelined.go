package hwsim

import (
	"fmt"

	"neurolpm/internal/keys"
	"neurolpm/internal/rqrmi"
)

// This file models the design alternative the paper weighed against the FSM
// pool (§6.2): "a pipelined design where each stage performs a single access
// to the RQ Array, with ⌈log e⌉ number of stages". The paper chose FSMs for
// simplicity; simulating both makes the trade-off concrete: the pipeline is
// deterministic and simple to reason about, but every stage must access a
// bank each cycle, so a single bank conflict stalls the whole pipeline,
// and its depth must cover the *worst-case* error bound while FSMs pay the
// per-query cost.

// PipelinedConfig configures the staged secondary-search design.
type PipelinedConfig struct {
	Engines          int // RQRMI inference pipelines feeding the search
	Banks            int // power of two
	InferenceLatency int
	// Stages is the search-pipeline depth. Zero derives it from the model:
	// ⌈log₂(2·maxErr+1)⌉ — enough for any query of the trained model.
	Stages int
}

// PipelinedResult is the staged design's outcome.
type PipelinedResult struct {
	Queries      int
	Cycles       uint64
	Stages       int
	StallCycles  uint64 // cycles the whole pipeline held for a bank conflict
	BankAccesses uint64
	Latencies    []uint32
}

// Throughput returns average queries per cycle.
func (r *PipelinedResult) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Queries) / float64(r.Cycles)
}

// AvgLatency returns the mean end-to-end latency in cycles.
func (r *PipelinedResult) AvgLatency() float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	s := 0.0
	for _, l := range r.Latencies {
		s += float64(l)
	}
	return s / float64(len(r.Latencies))
}

// stagesFor returns ⌈log₂(2e+1)⌉ for the model's worst error bound.
func stagesFor(m *rqrmi.Model) int {
	window := 2*m.MaxErr() + 1
	s := 0
	for v := 1; v < window; v <<= 1 {
		s++
	}
	if s == 0 {
		s = 1
	}
	return s
}

// SimulatePipelined runs the staged secondary-search design: queries move
// through the stage registers in lockstep, one binary-search step per
// stage. All stages issue their bank request in the same cycle; any
// conflict (two stages on one bank) stalls the whole pipeline for the extra
// cycles, which is exactly why the paper's analysis favours decoupled FSMs
// under bursty bank collision patterns.
func SimulatePipelined(m *rqrmi.Model, ix rqrmi.Index, trace []keys.Value, cfg PipelinedConfig) (*PipelinedResult, error) {
	if cfg.Engines < 1 || cfg.Engines > 2 {
		return nil, fmt.Errorf("hwsim: engines must be 1 or 2, got %d", cfg.Engines)
	}
	if cfg.Banks < 1 || cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, fmt.Errorf("hwsim: banks must be a positive power of two, got %d", cfg.Banks)
	}
	if cfg.InferenceLatency < 1 {
		return nil, fmt.Errorf("hwsim: inference latency must be positive")
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("hwsim: empty trace")
	}
	stages := cfg.Stages
	if stages <= 0 {
		stages = stagesFor(m)
	}
	res := &PipelinedResult{
		Queries:   len(trace),
		Stages:    stages,
		Latencies: make([]uint32, len(trace)),
	}

	// A slot in the search pipeline: a query with its live search bounds.
	type slot struct {
		query   int
		lo, hi  int
		key     keys.Value
		entered uint64 // cycle the query entered the search pipeline
	}
	pipe := make([]*slot, stages)
	next := 0
	done := 0
	var cycle uint64

	// The inference engines feed the search pipeline one query per engine
	// per cycle (modeled as a fixed delay: the engines are fully pipelined
	// and, unlike the FSM design, never back-pressured — the search
	// pipeline accepts a fixed number per cycle). With 2 engines the search
	// pipeline would need two issue ports; the paper's staged design is
	// single-issue, so engines beyond the first only help hide inference
	// latency. We model single issue per cycle.
	for done < len(trace) {
		cycle++
		// All occupied stages want one bank access this cycle. Count the
		// worst per-bank contention: the pipeline stalls until every
		// request is served (conflicts serialize).
		bankLoad := make(map[int]int, stages)
		for _, s := range pipe {
			if s == nil || s.lo >= s.hi {
				continue
			}
			mid := (s.lo + s.hi + 1) / 2
			bankLoad[mid&(cfg.Banks-1)]++
		}
		worst := 0
		for _, n := range bankLoad {
			if n > worst {
				worst = n
			}
			res.BankAccesses += uint64(n)
		}
		if worst > 1 {
			// Extra cycles to drain the most contended bank.
			res.StallCycles += uint64(worst - 1)
			cycle += uint64(worst - 1)
		}
		// Perform every stage's search step.
		for _, s := range pipe {
			if s == nil || s.lo >= s.hi {
				continue
			}
			mid := (s.lo + s.hi + 1) / 2
			if s.key.Less(ix.Low(mid)) {
				s.hi = mid - 1
			} else {
				s.lo = mid
			}
		}
		// Retire the last stage; shift; inject a new query. End-to-end
		// latency adds the inference pipeline depth in front of the search.
		if s := pipe[stages-1]; s != nil {
			res.Latencies[s.query] = uint32(cycle - s.entered + uint64(cfg.InferenceLatency))
			done++
		}
		copy(pipe[1:], pipe[:stages-1])
		pipe[0] = nil
		if next < len(trace) {
			k := trace[next]
			p := m.Predict(k)
			lo, hi := p.Index-p.Err, p.Index+p.Err
			if lo < 0 {
				lo = 0
			}
			if hi > ix.Len()-1 {
				hi = ix.Len() - 1
			}
			pipe[0] = &slot{query: next, lo: lo, hi: hi, key: k, entered: cycle}
			next++
		}
	}
	res.Cycles = cycle
	return res, nil
}
