package hwsim

import (
	"fmt"
	"sort"

	"neurolpm/internal/bucket"
	"neurolpm/internal/keys"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/telemetry"
)

var (
	metDRAMSimFetches = telemetry.Default.Counter("neurolpm_hwsim_dram_fetches_total",
		"Bucket fetches issued by the cycle-level DRAM stage")
	metDRAMSimStalls = telemetry.Default.Counter("neurolpm_hwsim_dram_stall_cycles_total",
		"Cycles DRAM jobs waited for a free issue slot")
)

// DRAMConfig models the off-chip stage of the full Figure 3 pipeline: after
// the secondary search resolves a bucket-directory index, the Bucket Reader
// issues one DRAM fetch and the Bucket Search scans the returned ranges.
// The paper evaluates this design with a software emulator (§9); here it is
// modeled at cycle level as an extension.
type DRAMConfig struct {
	// LatencyCycles is the fixed fetch latency (~30 cycles at the
	// prototype's 100MHz for a commodity-DRAM row hit).
	LatencyCycles int
	// IssuePerCycle is how many bucket fetches the memory controller can
	// start per cycle (bandwidth in bucket units).
	IssuePerCycle int
	// SearchCycles is the Bucket Search scan time over the fetched k−1
	// bounds (comparators run in parallel; 1–2 cycles typical).
	SearchCycles int
}

// DefaultDRAMConfig models one commodity DRAM channel behind the engine.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{LatencyCycles: 30, IssuePerCycle: 1, SearchCycles: 2}
}

func (c DRAMConfig) validate() error {
	if c.LatencyCycles < 1 {
		return fmt.Errorf("hwsim: DRAM latency must be positive")
	}
	if c.IssuePerCycle < 1 {
		return fmt.Errorf("hwsim: DRAM issue rate must be positive")
	}
	if c.SearchCycles < 0 {
		return fmt.Errorf("hwsim: negative bucket-search time")
	}
	return nil
}

// DRAMResult extends Result with the off-chip stage's statistics.
type DRAMResult struct {
	Result
	DRAMFetches     uint64
	DRAMStallCycles uint64 // cycles jobs waited for a free issue slot
	MaxQueueDepth   int
}

// SimulateDRAM runs the full bucketized pipeline: inference → secondary
// search over the SRAM bucket directory → one DRAM bucket fetch → bucket
// search. The directory must be the index the model was trained on.
//
// The DRAM stage is decoupled from the SRAM pipeline by a FIFO, so its
// behaviour is a deterministic function of the per-query SRAM completion
// times; simulating it as a second pass over those times is exact in the
// unbounded-FIFO (backpressure-free) regime the paper's designs target.
func SimulateDRAM(m *rqrmi.Model, dir *bucket.Directory, trace []keys.Value, cfg Config, dram DRAMConfig) (*DRAMResult, error) {
	if err := dram.validate(); err != nil {
		return nil, err
	}
	sram, err := Simulate(m, dir, trace, cfg)
	if err != nil {
		return nil, err
	}
	type job struct {
		query int
		ready uint64 // cycle the SRAM stage produced the bucket index
	}
	jobs := make([]job, len(trace))
	for q := range trace {
		jobs[q] = job{query: q, ready: sram.finishedAt[q]}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ready < jobs[j].ready })

	res := &DRAMResult{Result: *sram}
	res.Latencies = append([]uint32(nil), sram.Latencies...)
	service := uint64(dram.LatencyCycles + dram.SearchCycles)

	cycle := uint64(0)
	head := 0 // next job to issue
	for head < len(jobs) {
		if cycle < jobs[head].ready {
			cycle = jobs[head].ready
		}
		// Queue depth right now: jobs ready but not yet issued.
		depth := 0
		for i := head; i < len(jobs) && jobs[i].ready <= cycle; i++ {
			depth++
		}
		if depth > res.MaxQueueDepth {
			res.MaxQueueDepth = depth
		}
		for issued := 0; head < len(jobs) && jobs[head].ready <= cycle && issued < dram.IssuePerCycle; issued++ {
			j := jobs[head]
			head++
			wait := cycle - j.ready
			res.DRAMStallCycles += wait
			res.DRAMFetches++
			done := cycle + service
			res.Latencies[j.query] = uint32(done - (j.ready - uint64(sram.Latencies[j.query])))
			if done > res.Cycles {
				res.Cycles = done
			}
		}
		cycle++
	}
	metDRAMSimFetches.Add(res.DRAMFetches)
	metDRAMSimStalls.Add(res.DRAMStallCycles)
	return res, nil
}
