package hwsim

import "fmt"

// TierLatency is the analytic per-query cycle model for the two-tier bucket
// store (DESIGN.md §16): the SRAM pipeline cost is unchanged, the bucket
// fetch is charged at fast-tier (commodity DRAM) or slow-tier (CXL/flash
// class) latency depending on where placement put the bucket. It is a
// closed-form model rather than a FIFO simulation — E28 uses it to turn a
// 10M-query trace of (probes, cold?) observations into deterministic p99
// figures, which is what the bench guard needs.
type TierLatency struct {
	// SRAMCycle is the per-probe cost of the bounded secondary search.
	SRAMCycle int
	// FastFetch is the fast-tier bucket fetch latency (matches
	// DefaultDRAMConfig's row-hit latency).
	FastFetch int
	// ColdFetch is the slow-tier fetch latency. The 10× default models a
	// CXL-attached or first-generation persistent-memory device at the
	// prototype's 100MHz clock.
	ColdFetch int
	// SearchCycles is the bucket-scan time over the fetched bounds.
	SearchCycles int
}

// DefaultTierLatency matches DefaultDRAMConfig on the fast tier and charges
// 10× for a cold fetch.
func DefaultTierLatency() TierLatency {
	return TierLatency{SRAMCycle: 1, FastFetch: 30, ColdFetch: 300, SearchCycles: 2}
}

// Validate rejects non-physical configurations (a slow tier faster than the
// fast tier would silently invert every E28 conclusion).
func (l TierLatency) Validate() error {
	if l.SRAMCycle < 1 || l.FastFetch < 1 || l.SearchCycles < 0 {
		return fmt.Errorf("hwsim: tier latency cycles must be positive")
	}
	if l.ColdFetch < l.FastFetch {
		return fmt.Errorf("hwsim: cold-tier latency %d below fast-tier %d", l.ColdFetch, l.FastFetch)
	}
	return nil
}

// QueryCycles charges one bucketized query: sramProbes secondary-search
// probes, then one bucket fetch from the tier that holds the bucket, then
// the bucket scan. bucketRead=false (SRAM-only resolution) charges only the
// probes.
func (l TierLatency) QueryCycles(sramProbes int, bucketRead, cold bool) uint64 {
	c := uint64(sramProbes * l.SRAMCycle)
	if !bucketRead {
		return c
	}
	if cold {
		return c + uint64(l.ColdFetch+l.SearchCycles)
	}
	return c + uint64(l.FastFetch+l.SearchCycles)
}
