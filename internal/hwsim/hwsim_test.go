package hwsim

import (
	"math"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/workload"
)

// buildModel trains a small model over a synthetic rule-set and returns the
// pieces a simulation needs.
func buildModel(t testing.TB, rules int, seed int64) (*rqrmi.Model, rqrmi.Index, []keys.Value) {
	t.Helper()
	rs, err := workload.Generate(workload.RIPE(), rules, seed)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ranges.Convert(rs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 16}
	cfg.Samples = 1024
	cfg.Epochs = 25
	model, _, err := rqrmi.Train(arr, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(4000, seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return model, arr, trace
}

func TestSimulateCompletesAllQueries(t *testing.T) {
	model, ix, trace := buildModel(t, 1500, 1)
	res, err := Simulate(model, ix, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != len(trace) {
		t.Fatalf("completed %d of %d", res.Queries, len(trace))
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	for i, l := range res.Latencies {
		if l == 0 {
			t.Fatalf("query %d has zero latency", i)
		}
	}
}

func TestThroughputBounds(t *testing.T) {
	model, ix, trace := buildModel(t, 1500, 2)
	res, err := Simulate(model, ix, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Throughput()
	if tput <= 0 || tput > 2.0 {
		t.Fatalf("throughput %.3f outside (0, 2] queries/cycle for 2 engines", tput)
	}
	// One engine can never exceed 1 query/cycle.
	cfg := DefaultConfig()
	cfg.Engines = 1
	res1, err := Simulate(model, ix, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Throughput() > 1.0 {
		t.Fatalf("single engine throughput %.3f > 1", res1.Throughput())
	}
}

func TestLatencyAtLeastInference(t *testing.T) {
	model, ix, trace := buildModel(t, 1000, 3)
	cfg := DefaultConfig()
	res, err := Simulate(model, ix, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range res.Latencies {
		if int(l) < cfg.InferenceLatency {
			t.Fatalf("query %d latency %d below inference latency %d", i, l, cfg.InferenceLatency)
		}
	}
	if res.AvgLatency() < float64(cfg.InferenceLatency) {
		t.Fatal("average latency below pipeline depth")
	}
}

func TestMoreFSMsHelpThroughput(t *testing.T) {
	model, ix, trace := buildModel(t, 2000, 4)
	few := Config{Engines: 2, FSMs: 4, Banks: 16, InferenceLatency: 22}
	many := Config{Engines: 2, FSMs: 48, Banks: 16, InferenceLatency: 22}
	rFew, err := Simulate(model, ix, trace, few)
	if err != nil {
		t.Fatal(err)
	}
	rMany, err := Simulate(model, ix, trace, many)
	if err != nil {
		t.Fatal(err)
	}
	if rMany.Throughput() <= rFew.Throughput() {
		t.Fatalf("48 FSMs (%.3f q/c) not faster than 4 FSMs (%.3f q/c)",
			rMany.Throughput(), rFew.Throughput())
	}
}

func TestBankAccessesMatchSearchWork(t *testing.T) {
	model, ix, trace := buildModel(t, 1500, 5)
	res, err := Simulate(model, ix, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Granted accesses must equal the total binary-search probes the same
	// queries need in software.
	var want uint64
	for _, k := range trace {
		_, probes := model.Lookup(ix, k)
		want += uint64(probes)
	}
	if res.BankAccesses != want {
		t.Fatalf("bank accesses %d, software probes %d", res.BankAccesses, want)
	}
}

func TestSearchCorrectnessInsideSim(t *testing.T) {
	// The FSM search must land on the same index as the software path; we
	// verify indirectly by checking probe-by-probe equivalence on a tiny
	// config that forces heavy contention.
	model, ix, trace := buildModel(t, 800, 6)
	cfg := Config{Engines: 1, FSMs: 2, Banks: 1, InferenceLatency: 5}
	res, err := Simulate(model, ix, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != len(trace) {
		t.Fatal("queries lost under contention")
	}
}

func TestConfigValidation(t *testing.T) {
	model, ix, trace := buildModel(t, 500, 7)
	bad := []Config{
		{Engines: 0, FSMs: 8, Banks: 8, InferenceLatency: 22},
		{Engines: 3, FSMs: 8, Banks: 8, InferenceLatency: 22},
		{Engines: 1, FSMs: 0, Banks: 8, InferenceLatency: 22},
		{Engines: 1, FSMs: 8, Banks: 12, InferenceLatency: 22},
		{Engines: 1, FSMs: 8, Banks: 8, InferenceLatency: 0},
	}
	for i, cfg := range bad {
		if _, err := Simulate(model, ix, trace, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Simulate(model, ix, nil, DefaultConfig()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestLatencyCDFMonotone(t *testing.T) {
	model, ix, trace := buildModel(t, 1000, 8)
	res, err := Simulate(model, ix, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := []float64{0.1, 0.5, 0.9, 0.99, 1.0}
	cdf := res.LatencyCDF(qs)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("CDF not monotone: %v", cdf)
		}
	}
	if cdf[len(cdf)-1] == 0 {
		t.Fatal("max latency zero")
	}
}

func TestMppsAt(t *testing.T) {
	r := &Result{Queries: 200, Cycles: 100}
	if got := r.MppsAt(100e6); got != 200 {
		t.Fatalf("2 q/c at 100MHz = %g Mpps, want 200", got)
	}
}

// TestTheoreticalBankThroughput checks the Fig 6a closed form at easy
// anchor points.
func TestTheoreticalBankThroughput(t *testing.T) {
	// One FSM keeps exactly one bank busy.
	if got := TheoreticalBankThroughput(16, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("T(16,1) = %g", got)
	}
	// Infinitely many FSMs saturate all banks; 1000 is effectively there.
	if got := TheoreticalBankThroughput(8, 1000); math.Abs(got-8) > 1e-6 {
		t.Fatalf("T(8,1000) = %g", got)
	}
	// The paper's sizing example: 16 banks with 10 FSMs serve ~about 8
	// accesses; 16 FSMs serve ~10 (§6.2.1).
	if got := TheoreticalBankThroughput(16, 10); got < 7.3 || got > 8.3 {
		t.Fatalf("T(16,10) = %g, want ≈8", got)
	}
	if got := TheoreticalBankThroughput(16, 16); got < 9.5 || got > 10.5 {
		t.Fatalf("T(16,16) = %g, want ≈10", got)
	}
}

// TestContentionSimMatchesFormula: the micro-simulation of independent
// random requests must agree with the closed form within sampling noise.
func TestContentionSimMatchesFormula(t *testing.T) {
	for _, banks := range []int{8, 16, 32} {
		for _, fsms := range []int{1, 8, 24, 64} {
			want := TheoreticalBankThroughput(banks, fsms)
			got := SimulateBankContention(banks, fsms, 20000, 1)
			if math.Abs(got-want) > 0.05*want+0.05 {
				t.Fatalf("banks=%d fsms=%d: sim %.3f vs formula %.3f", banks, fsms, got, want)
			}
		}
	}
}

// TestEngineScaling reproduces the Fig 8 observation: doubling banks and
// FSMs while adding a second RQRMI engine roughly doubles throughput.
func TestEngineScaling(t *testing.T) {
	model, ix, trace := buildModel(t, 2000, 9)
	one := Config{Engines: 1, FSMs: 48, Banks: 16, InferenceLatency: 22}
	two := Config{Engines: 2, FSMs: 96, Banks: 32, InferenceLatency: 22}
	r1, err := Simulate(model, ix, trace, one)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(model, ix, trace, two)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.Throughput() / r1.Throughput()
	if ratio < 1.5 {
		t.Fatalf("2-engine config only %.2fx faster", ratio)
	}
}

func BenchmarkSimulate(b *testing.B) {
	model, ix, trace := buildModel(b, 2000, 10)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(model, ix, trace, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestArbiterFairness runs a deliberately bank-starved configuration (many
// FSMs, one bank) and checks every query still completes and no FSM
// monopolizes the bank: with round-robin arbitration the slowest query's
// latency is bounded by roughly (queries ahead × probes), not unbounded.
func TestArbiterFairness(t *testing.T) {
	model, ix, trace := buildModel(t, 800, 30)
	trace = trace[:600]
	cfg := Config{Engines: 1, FSMs: 32, Banks: 1, InferenceLatency: 5}
	res, err := Simulate(model, ix, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != len(trace) {
		t.Fatalf("%d of %d completed", res.Queries, len(trace))
	}
	// One bank serves one probe per cycle, so total cycles ≈ total probes;
	// a starving arbiter would blow far past that.
	slack := res.BankAccesses + uint64(len(trace)*cfg.InferenceLatency)
	if res.Cycles > 2*slack {
		t.Fatalf("cycles %d suggest starvation (work %d)", res.Cycles, slack)
	}
	// The longest wait must stay within the serialized backlog bound.
	worst := res.LatencyCDF([]float64{1})[0]
	if uint64(worst) > res.Cycles {
		t.Fatalf("latency %d exceeds total cycles %d", worst, res.Cycles)
	}
}

// TestDeterministicSimulation: identical inputs give identical results —
// the property that makes hwsim usable for regression comparisons.
func TestDeterministicSimulation(t *testing.T) {
	model, ix, trace := buildModel(t, 900, 31)
	a, err := Simulate(model, ix, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(model, ix, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.BankAccesses != b.BankAccesses || a.BankConflicts != b.BankConflicts {
		t.Fatal("simulation is not deterministic")
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("latency %d differs between runs", i)
		}
	}
}
