package keys

import (
	"math/rand"
	"testing"
)

// linearFloor is the oracle: greatest i in [lo, hi] with lows[i] ≤ k,
// scanned linearly.
func linearFloor(lows []Value, k Value, lo, hi int) int {
	idx := lo
	for i := lo + 1; i <= hi; i++ {
		if !k.Less(lows[i]) {
			idx = i
		}
	}
	return idx
}

func sortedValues(rng *rand.Rand, n int, wide bool) []Value {
	set := map[Value]bool{{}: true}
	for len(set) < n {
		v := Value{Lo: rng.Uint64()}
		if wide {
			v.Hi = rng.Uint64() >> 32 // mix of equal and distinct high limbs
		}
		set[v] = true
	}
	out := make([]Value, 0, n)
	for v := range set {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestSearchVariantsAgree pins the three specializations of the canonical
// bounded-search loop to each other and to a linear-scan oracle: identical
// indices and identical probe counts on every input.
func TestSearchVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, wide := range []bool{false, true} {
		lows := sortedValues(rng, 200, wide)
		lows64 := make([]uint64, len(lows))
		narrow := !wide
		for i, v := range lows {
			lows64[i] = v.Lo
		}
		for trial := 0; trial < 2000; trial++ {
			var k Value
			switch trial % 3 {
			case 0: // exact boundary
				k = lows[rng.Intn(len(lows))]
			case 1: // near boundary
				k = lows[rng.Intn(len(lows))].AddUint64(uint64(rng.Intn(3)))
			default:
				k = Value{Lo: rng.Uint64()}
				if wide {
					k.Hi = rng.Uint64() >> 32
				}
			}
			lo := rng.Intn(len(lows))
			hi := lo + rng.Intn(len(lows)-lo)
			if k.Less(lows[lo]) {
				continue // precondition: low(lo) ≤ k
			}
			wantIdx := linearFloor(lows, k, lo, hi)
			gotIdx, gotProbes := BoundedSearch(k, lo, hi, func(i int) Value { return lows[i] })
			if gotIdx != wantIdx {
				t.Fatalf("BoundedSearch(%v, [%d,%d]) = %d, oracle %d", k, lo, hi, gotIdx, wantIdx)
			}
			fIdx, fProbes := SearchLows(lows, k, lo, hi)
			if fIdx != gotIdx || fProbes != gotProbes {
				t.Fatalf("SearchLows diverged: (%d,%d) vs (%d,%d)", fIdx, fProbes, gotIdx, gotProbes)
			}
			if narrow && k.Hi == 0 {
				uIdx, uProbes := SearchLows64(lows64, k.Lo, lo, hi)
				if uIdx != gotIdx || uProbes != gotProbes {
					t.Fatalf("SearchLows64 diverged: (%d,%d) vs (%d,%d)", uIdx, uProbes, gotIdx, gotProbes)
				}
			}
		}
	}
}

// TestBoundedSearchProbeBound checks the probe count never exceeds
// ⌈log2(hi−lo+1)⌉, the bound the paper's secondary-search FSM is sized for.
func TestBoundedSearchProbeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lows := sortedValues(rng, 500, false)
	for trial := 0; trial < 500; trial++ {
		lo := rng.Intn(len(lows))
		hi := lo + rng.Intn(len(lows)-lo)
		k := lows[rng.Intn(len(lows))]
		if k.Less(lows[lo]) {
			continue
		}
		_, probes := BoundedSearch(k, lo, hi, func(i int) Value { return lows[i] })
		maxProbes := 0
		for span := hi - lo; span > 0; span /= 2 {
			maxProbes++
		}
		if probes > maxProbes {
			t.Fatalf("probes %d exceeds log bound %d for span %d", probes, maxProbes, hi-lo)
		}
	}
}
