package keys

// This file holds the one bounded-search loop the whole engine runs on.
// The reference query path (rqrmi.Find, Model.Search, ranges.FindWithin)
// and the compiled query plane both resolve "greatest i in [lo, hi] with
// low(i) ≤ k" with the upper-mid binary search below; keeping a single
// canonical loop means the probe sequence — and therefore the probe counts
// the paper's FSM/bank analysis is built on — cannot drift between paths.
//
// Three variants share the identical loop structure and differ only in how
// a lower bound is read:
//
//	BoundedSearch — through a func(int) Value (the rqrmi.Index paths);
//	SearchLows    — a flat []Value (compiled plane, width > 64);
//	SearchLows64  — a flat []uint64 (compiled plane, width ≤ 64, where the
//	                high limb of every bound is zero).
//
// TestSearchVariantsAgree asserts the three return identical (idx, probes)
// on random inputs, so the specializations cannot diverge silently.

// BoundedSearch returns the greatest i in [lo, hi] with low(i) ≤ k, assuming
// such an i exists (callers clamp [lo, hi] so low(lo) ≤ k), plus the number
// of probes the binary search performed. lo ≤ hi must hold.
func BoundedSearch(k Value, lo, hi int, low func(int) Value) (idx, probes int) {
	for lo < hi {
		mid := (lo + hi + 1) / 2
		probes++
		if k.Less(low(mid)) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo, probes
}

// SearchLows is BoundedSearch devirtualized over a flat bounds slice: no
// interface or function-pointer dispatch per probe.
func SearchLows(lows []Value, k Value, lo, hi int) (idx, probes int) {
	for lo < hi {
		mid := (lo + hi + 1) / 2
		probes++
		m := lows[mid]
		if k.Hi < m.Hi || (k.Hi == m.Hi && k.Lo < m.Lo) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo, probes
}

// SearchLows64 is SearchLows for bounds whose high limb is zero (width ≤ 64
// domains): one 8-byte load and one compare per probe.
func SearchLows64(lows []uint64, k uint64, lo, hi int) (idx, probes int) {
	for lo < hi {
		mid := (lo + hi + 1) / 2
		probes++
		if k < lows[mid] {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo, probes
}
