// Package keys provides fixed-width unsigned integer keys of up to 128 bits
// and the key domains used throughout NeuroLPM.
//
// All NeuroLPM structures (rules, ranges, the RQRMI model) operate on a
// single Value type regardless of the configured bit width, so scaling from
// 32-bit (IPv4) to 128-bit (IPv6) keys requires no structural change — only
// wider arithmetic, exactly as the paper argues in §6.4.
package keys

import (
	"fmt"
	"math"
	"math/bits"
)

// Value is an unsigned integer of up to 128 bits, stored as two 64-bit limbs.
// The zero Value is the number zero.
type Value struct {
	Hi, Lo uint64
}

// FromUint64 returns the Value representing v.
func FromUint64(v uint64) Value { return Value{Lo: v} }

// FromUint32 returns the Value representing v.
func FromUint32(v uint32) Value { return Value{Lo: uint64(v)} }

// FromParts returns the Value hi·2⁶⁴ + lo.
func FromParts(hi, lo uint64) Value { return Value{Hi: hi, Lo: lo} }

// Uint64 returns the low 64 bits of v.
func (v Value) Uint64() uint64 { return v.Lo }

// IsZero reports whether v is zero.
func (v Value) IsZero() bool { return v.Hi == 0 && v.Lo == 0 }

// Cmp compares v and o, returning -1, 0, or +1.
func (v Value) Cmp(o Value) int {
	switch {
	case v.Hi < o.Hi:
		return -1
	case v.Hi > o.Hi:
		return 1
	case v.Lo < o.Lo:
		return -1
	case v.Lo > o.Lo:
		return 1
	}
	return 0
}

// Less reports whether v < o.
func (v Value) Less(o Value) bool { return v.Cmp(o) < 0 }

// Add returns v + o, wrapping on 128-bit overflow.
func (v Value) Add(o Value) Value {
	lo, carry := bits.Add64(v.Lo, o.Lo, 0)
	hi, _ := bits.Add64(v.Hi, o.Hi, carry)
	return Value{Hi: hi, Lo: lo}
}

// Sub returns v − o, wrapping on underflow.
func (v Value) Sub(o Value) Value {
	lo, borrow := bits.Sub64(v.Lo, o.Lo, 0)
	hi, _ := bits.Sub64(v.Hi, o.Hi, borrow)
	return Value{Hi: hi, Lo: lo}
}

// AddUint64 returns v + x, wrapping on overflow.
func (v Value) AddUint64(x uint64) Value { return v.Add(Value{Lo: x}) }

// SubUint64 returns v − x, wrapping on underflow.
func (v Value) SubUint64(x uint64) Value { return v.Sub(Value{Lo: x}) }

// Inc returns v + 1, wrapping on overflow.
func (v Value) Inc() Value { return v.AddUint64(1) }

// Dec returns v − 1, wrapping on underflow.
func (v Value) Dec() Value { return v.SubUint64(1) }

// And returns the bitwise AND of v and o.
func (v Value) And(o Value) Value { return Value{Hi: v.Hi & o.Hi, Lo: v.Lo & o.Lo} }

// Or returns the bitwise OR of v and o.
func (v Value) Or(o Value) Value { return Value{Hi: v.Hi | o.Hi, Lo: v.Lo | o.Lo} }

// Xor returns the bitwise XOR of v and o.
func (v Value) Xor(o Value) Value { return Value{Hi: v.Hi ^ o.Hi, Lo: v.Lo ^ o.Lo} }

// Not returns the bitwise complement of v.
func (v Value) Not() Value { return Value{Hi: ^v.Hi, Lo: ^v.Lo} }

// Shl returns v << n. Shifts of 128 or more yield zero.
func (v Value) Shl(n uint) Value {
	switch {
	case n == 0:
		return v
	case n < 64:
		return Value{Hi: v.Hi<<n | v.Lo>>(64-n), Lo: v.Lo << n}
	case n < 128:
		return Value{Hi: v.Lo << (n - 64)}
	}
	return Value{}
}

// Shr returns v >> n. Shifts of 128 or more yield zero.
func (v Value) Shr(n uint) Value {
	switch {
	case n == 0:
		return v
	case n < 64:
		return Value{Hi: v.Hi >> n, Lo: v.Lo>>n | v.Hi<<(64-n)}
	case n < 128:
		return Value{Lo: v.Hi >> (n - 64)}
	}
	return Value{}
}

// Bit returns bit i of v (bit 0 is the least significant). It returns 0 for
// i outside [0,127].
func (v Value) Bit(i int) uint {
	switch {
	case i < 0 || i > 127:
		return 0
	case i < 64:
		return uint(v.Lo>>uint(i)) & 1
	}
	return uint(v.Hi>>uint(i-64)) & 1
}

// Mid returns the midpoint ⌊(v+o)/2⌋ without overflowing 128 bits.
func (v Value) Mid(o Value) Value {
	// (v & o) + (v ^ o)/2 is the classic overflow-free average.
	return v.And(o).Add(v.Xor(o).Shr(1))
}

// Float64 returns the nearest float64 to v. Values above 2⁵³ lose precision,
// which is fine for model-input normalization: the mapping stays monotone
// non-decreasing, and RQRMI error bounds are computed against the same
// arithmetic used at query time.
func (v Value) Float64() float64 {
	return float64(v.Hi)*0x1p64 + float64(v.Lo)
}

// String formats v in hexadecimal.
func (v Value) String() string {
	if v.Hi == 0 {
		return fmt.Sprintf("0x%x", v.Lo)
	}
	return fmt.Sprintf("0x%x%016x", v.Hi, v.Lo)
}

// MaxValue returns the largest value representable in width bits.
// It panics if width is outside [1,128].
func MaxValue(width int) Value {
	checkWidth(width)
	one := Value{Lo: 1}
	if width == 128 {
		return Value{Hi: ^uint64(0), Lo: ^uint64(0)}
	}
	return one.Shl(uint(width)).Dec()
}

func checkWidth(width int) {
	if width < 1 || width > 128 {
		panic(fmt.Sprintf("keys: invalid width %d (must be 1..128)", width))
	}
}

// Domain is the set of all width-bit keys: [0, 2^width − 1].
type Domain struct {
	width int
	max   Value
	scale float64 // 1 / 2^width
}

// NewDomain returns the domain of width-bit keys.
// It panics if width is outside [1,128].
func NewDomain(width int) Domain {
	checkWidth(width)
	return Domain{
		width: width,
		max:   MaxValue(width),
		scale: math.Ldexp(1, -width),
	}
}

// Width returns the bit width of the domain.
func (d Domain) Width() int { return d.width }

// Max returns the largest key in the domain.
func (d Domain) Max() Value { return d.max }

// Contains reports whether v lies within the domain.
func (d Domain) Contains(v Value) bool { return v.Cmp(d.max) <= 0 }

// ToUnit maps v to [0,1): v / 2^width. The mapping is monotone
// non-decreasing; distinct keys may collapse to the same float for wide
// domains, which the RQRMI error-bound analysis absorbs.
func (d Domain) ToUnit(v Value) float64 {
	return v.Float64() * d.scale
}

// FromUnit maps u ∈ [0,1) back to the nearest key at or below u·2^width.
// It is the approximate inverse of ToUnit, used to seed boundary searches.
func (d Domain) FromUnit(u float64) Value {
	if u <= 0 {
		return Value{}
	}
	if u >= 1 {
		return d.max
	}
	x := u * math.Ldexp(1, d.width)
	if d.width <= 63 {
		v := Value{Lo: uint64(x)}
		if v.Cmp(d.max) > 0 {
			return d.max
		}
		return v
	}
	hi := math.Floor(x * 0x1p-64)
	lo := x - hi*0x1p64
	if lo < 0 {
		lo = 0
	}
	v := Value{Hi: uint64(hi), Lo: uint64(lo)}
	if v.Cmp(d.max) > 0 {
		return d.max
	}
	return v
}
