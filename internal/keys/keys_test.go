package keys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint64(t *testing.T) {
	v := FromUint64(42)
	if v.Hi != 0 || v.Lo != 42 {
		t.Fatalf("FromUint64(42) = %+v", v)
	}
	if v.Uint64() != 42 {
		t.Fatalf("Uint64() = %d", v.Uint64())
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Value{0, 1}, Value{0, 2}, -1},
		{Value{0, 2}, Value{0, 1}, 1},
		{Value{0, 5}, Value{0, 5}, 0},
		{Value{1, 0}, Value{0, ^uint64(0)}, 1},
		{Value{0, ^uint64(0)}, Value{1, 0}, -1},
		{Value{3, 9}, Value{3, 9}, 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(aHi, aLo, bHi, bLo uint64) bool {
		a := Value{aHi, aLo}
		b := Value{bHi, bLo}
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarry(t *testing.T) {
	a := Value{0, ^uint64(0)}
	got := a.AddUint64(1)
	if got != (Value{1, 0}) {
		t.Fatalf("carry: got %v", got)
	}
}

func TestSubBorrow(t *testing.T) {
	a := Value{1, 0}
	got := a.SubUint64(1)
	if got != (Value{0, ^uint64(0)}) {
		t.Fatalf("borrow: got %v", got)
	}
}

func TestIncDec(t *testing.T) {
	f := func(hi, lo uint64) bool {
		v := Value{hi, lo}
		return v.Inc().Dec() == v && v.Dec().Inc() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShlShr(t *testing.T) {
	v := FromUint64(1)
	if got := v.Shl(64); got != (Value{1, 0}) {
		t.Fatalf("1<<64 = %v", got)
	}
	if got := v.Shl(127); got != (Value{1 << 63, 0}) {
		t.Fatalf("1<<127 = %v", got)
	}
	if got := v.Shl(128); !got.IsZero() {
		t.Fatalf("1<<128 = %v, want 0", got)
	}
	w := Value{1 << 63, 0}
	if got := w.Shr(127); got != FromUint64(1) {
		t.Fatalf("shr 127 = %v", got)
	}
	if got := w.Shr(128); !got.IsZero() {
		t.Fatalf("shr 128 = %v, want 0", got)
	}
}

func TestShlShrInverse(t *testing.T) {
	f := func(lo uint64, nRaw uint8) bool {
		// Bits shifted out of Lo land in Hi, so the 128-bit round trip
		// is lossless for shifts below 64.
		n := uint(nRaw % 64)
		v := Value{0, lo}
		return v.Shl(n).Shr(n) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBit(t *testing.T) {
	v := Value{Hi: 1, Lo: 0b101}
	if v.Bit(0) != 1 || v.Bit(1) != 0 || v.Bit(2) != 1 || v.Bit(64) != 1 || v.Bit(65) != 0 {
		t.Fatalf("Bit() wrong for %v", v)
	}
	if v.Bit(-1) != 0 || v.Bit(128) != 0 {
		t.Fatal("out-of-range Bit should be 0")
	}
}

func TestMid(t *testing.T) {
	cases := []struct{ a, b, want Value }{
		{FromUint64(0), FromUint64(10), FromUint64(5)},
		{FromUint64(1), FromUint64(2), FromUint64(1)},
		{Value{^uint64(0), ^uint64(0)}, Value{^uint64(0), ^uint64(0)}, Value{^uint64(0), ^uint64(0)}},
		{FromUint64(7), FromUint64(7), FromUint64(7)},
	}
	for _, c := range cases {
		if got := c.a.Mid(c.b); got != c.want {
			t.Errorf("Mid(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMidNoOverflow(t *testing.T) {
	f := func(aLo, bLo uint64) bool {
		a := Value{0, aLo}
		b := Value{0, bLo}
		lo, hi := a, b
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		m := a.Mid(b)
		return !m.Less(lo) && !hi.Less(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64(t *testing.T) {
	if got := FromUint64(1 << 30).Float64(); got != float64(1<<30) {
		t.Fatalf("Float64 = %g", got)
	}
	// 2^64 exactly.
	if got := (Value{1, 0}).Float64(); got != 0x1p64 {
		t.Fatalf("Float64(2^64) = %g", got)
	}
}

func TestMaxValue(t *testing.T) {
	if got := MaxValue(32); got != FromUint64(0xFFFFFFFF) {
		t.Fatalf("MaxValue(32) = %v", got)
	}
	if got := MaxValue(64); got != FromUint64(^uint64(0)) {
		t.Fatalf("MaxValue(64) = %v", got)
	}
	if got := MaxValue(128); got != (Value{^uint64(0), ^uint64(0)}) {
		t.Fatalf("MaxValue(128) = %v", got)
	}
	if got := MaxValue(1); got != FromUint64(1) {
		t.Fatalf("MaxValue(1) = %v", got)
	}
}

func TestMaxValuePanics(t *testing.T) {
	for _, w := range []int{0, -1, 129} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MaxValue(%d) did not panic", w)
				}
			}()
			MaxValue(w)
		}()
	}
}

func TestDomainContains(t *testing.T) {
	d := NewDomain(32)
	if !d.Contains(FromUint64(0xFFFFFFFF)) {
		t.Fatal("max should be in domain")
	}
	if d.Contains(FromUint64(1 << 32)) {
		t.Fatal("2^32 should not be in 32-bit domain")
	}
}

func TestToUnitRange(t *testing.T) {
	for _, w := range []int{1, 8, 32, 64, 127, 128} {
		d := NewDomain(w)
		if u := d.ToUnit(Value{}); u != 0 {
			t.Errorf("width %d: ToUnit(0) = %g", w, u)
		}
		u := d.ToUnit(d.Max())
		if u < 0 || u > 1 {
			t.Errorf("width %d: ToUnit(max) = %g out of [0,1]", w, u)
		}
	}
}

func TestToUnitMonotone(t *testing.T) {
	d := NewDomain(64)
	f := func(aLo, bLo uint64) bool {
		a, b := FromUint64(aLo), FromUint64(bLo)
		if b.Less(a) {
			a, b = b, a
		}
		return d.ToUnit(a) <= d.ToUnit(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestToUnitExact32(t *testing.T) {
	// For 32-bit keys the mapping is exact in float64.
	d := NewDomain(32)
	for _, v := range []uint64{0, 1, 12345, 1 << 31, 0xFFFFFFFF} {
		want := float64(v) / math.Ldexp(1, 32)
		if got := d.ToUnit(FromUint64(v)); got != want {
			t.Errorf("ToUnit(%d) = %g, want %g", v, got, want)
		}
	}
}

func TestFromUnitRoundTrip32(t *testing.T) {
	d := NewDomain(32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		v := FromUint64(uint64(rng.Uint32()))
		got := d.FromUnit(d.ToUnit(v))
		if got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestFromUnitClamps(t *testing.T) {
	d := NewDomain(32)
	if got := d.FromUnit(-0.5); !got.IsZero() {
		t.Fatalf("FromUnit(-0.5) = %v", got)
	}
	if got := d.FromUnit(1.5); got != d.Max() {
		t.Fatalf("FromUnit(1.5) = %v", got)
	}
	if got := d.FromUnit(1.0); got != d.Max() {
		t.Fatalf("FromUnit(1.0) = %v", got)
	}
}

func TestFromUnit128InDomain(t *testing.T) {
	d := NewDomain(128)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		u := rng.Float64()
		v := d.FromUnit(u)
		if !d.Contains(v) {
			t.Fatalf("FromUnit(%g) = %v out of domain", u, v)
		}
		// The round trip should land near u.
		got := d.ToUnit(v)
		if math.Abs(got-u) > 1e-9 {
			t.Fatalf("FromUnit(%g) -> ToUnit = %g", u, got)
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	a := Value{0xF0F0, 0x1234}
	b := Value{0x0FF0, 0xFF00}
	if got := a.And(b); got != (Value{0x00F0, 0x1200}) {
		t.Errorf("And = %v", got)
	}
	if got := a.Or(b); got != (Value{0xFFF0, 0xFF34}) {
		t.Errorf("Or = %v", got)
	}
	if got := a.Xor(b); got != (Value{0xFF00, 0xED34}) {
		t.Errorf("Xor = %v", got)
	}
	if got := a.Not().Not(); got != a {
		t.Errorf("Not.Not = %v", got)
	}
}

func TestString(t *testing.T) {
	if s := FromUint64(255).String(); s != "0xff" {
		t.Errorf("String = %q", s)
	}
	if s := (Value{1, 0}).String(); s != "0x10000000000000000" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkCmp(b *testing.B) {
	x := Value{1, 2}
	y := Value{1, 3}
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

func BenchmarkToUnit(b *testing.B) {
	d := NewDomain(128)
	v := Value{0x1234, 0x5678}
	for i := 0; i < b.N; i++ {
		_ = d.ToUnit(v)
	}
}
