package experiments

import (
	"strings"
	"testing"

	"neurolpm/internal/rqrmi"
)

// testScale is small enough for CI but large enough that the qualitative
// shapes (who wins, monotone trends) hold.
func testScale() Scale {
	m := rqrmi.DefaultConfig()
	m.StageWidths = []int{1, 2, 8}
	m.Samples = 512
	m.Epochs = 20
	m.MaxRounds = 2
	return Scale{
		Rules: map[string]int{
			"ripe": 9000, "routeviews": 9000, "stanford": 5000,
			"snort": 5000, "ipv6": 2500,
		},
		TraceLen:   60000,
		HWTraceLen: 6000,
		Model:      m,
		Seed:       1,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	s := tab.Render()
	for _, want := range []string{"demo", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutingTop != 24 {
		t.Errorf("routing mode /%d, want /24", res.RoutingTop)
	}
	if res.StringSpan < 30 {
		t.Errorf("string lengths span %d, want broad (>30)", res.StringSpan)
	}
	if tab := res.Table(); len(tab.Rows) == 0 {
		t.Error("empty table")
	}
}

func TestFig6a(t *testing.T) {
	pts := Fig6a(1)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	byBanks := map[int][]Fig6aPoint{}
	for _, p := range pts {
		byBanks[p.Banks] = append(byBanks[p.Banks], p)
		if diff := p.Analytical - p.Simulated; diff > 0.6 || diff < -0.6 {
			t.Errorf("banks=%d fsms=%d: analytic %.2f vs sim %.2f", p.Banks, p.FSMs, p.Analytical, p.Simulated)
		}
	}
	// More FSMs never reduce analytic throughput; more banks help at high FSMs.
	for banks, series := range byBanks {
		for i := 1; i < len(series); i++ {
			if series[i].Analytical < series[i-1].Analytical {
				t.Fatalf("banks=%d: analytic curve not monotone", banks)
			}
		}
	}
	if Fig6aTable(pts) == nil {
		t.Fatal("nil table")
	}
}

func TestFig6b(t *testing.T) {
	rows, err := Fig6b(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Errorf("log2e=%d: throughput %g", r.TargetLog2E, r.Throughput)
		}
		if r.TrainParallel <= 0 || r.TrainSequential <= 0 {
			t.Errorf("log2e=%d: missing timings", r.TargetLog2E)
		}
	}
	// The loosest target must not train slower than the tightest (the whole
	// point of the tradeoff).
	if rows[2].TrainSequential > rows[0].TrainSequential*3/2 {
		t.Errorf("loose target trained slower: %v vs %v", rows[2].TrainSequential, rows[0].TrainSequential)
	}
	if Fig6bTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestFig7(t *testing.T) {
	sc := testScale()
	cells, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	index := map[string]Fig7Cell{}
	for _, c := range cells {
		index[c.Family+"/"+fi(c.SRAMBytes/(1024*1024))+"/"+c.Algorithm] = c
	}
	for _, fam := range RoutingFamilies {
		// SAIL cannot run below its ~2.3MB static allocation.
		if index[fam+"/1/sail"].Ran || index[fam+"/2/sail"].Ran {
			t.Errorf("%s: SAIL ran under 2.3MB SRAM", fam)
		}
		if !index[fam+"/4/sail"].Ran {
			t.Errorf("%s: SAIL did not run at 4MB", fam)
		}
		for _, mb := range []string{"1", "2", "4"} {
			n := index[fam+"/"+mb+"/neurolpm"]
			tb := index[fam+"/"+mb+"/treebitmap"]
			if !n.Ran || !tb.Ran {
				t.Fatalf("%s/%sMB: neurolpm or treebitmap missing", fam, mb)
			}
			// The headline claim: NeuroLPM needs less DRAM bandwidth.
			if n.BytesPerQuery > tb.BytesPerQuery {
				t.Errorf("%s/%sMB: neurolpm %.2f B/q worse than treebitmap %.2f B/q",
					fam, mb, n.BytesPerQuery, tb.BytesPerQuery)
			}
		}
		// NeuroLPM also beats SAIL where SAIL runs.
		n4, s4 := index[fam+"/4/neurolpm"], index[fam+"/4/sail"]
		if n4.BytesPerQuery > s4.BytesPerQuery {
			t.Errorf("%s/4MB: neurolpm %.2f B/q worse than sail %.2f B/q",
				fam, n4.BytesPerQuery, s4.BytesPerQuery)
		}
	}
	if Fig7Table(cells) == nil {
		t.Fatal("nil table")
	}
}

func TestFig8(t *testing.T) {
	sc := testScale()
	rows, err := Fig8(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(RoutingFamilies)*len(Fig8Configs) {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]Fig8Row{}
	for _, r := range rows {
		if r.Throughput <= 0 || r.Throughput > 2 {
			t.Errorf("%s %s: throughput %.3f", r.Family, r.Config, r.Throughput)
		}
		byKey[r.Family+r.Config.String()] = r
	}
	for _, fam := range RoutingFamilies {
		small := byKey[fam+"1-16:16"]
		big := byKey[fam+"2-32:96"]
		if big.Throughput <= small.Throughput {
			t.Errorf("%s: flagship config not faster (%.3f vs %.3f)", fam, big.Throughput, small.Throughput)
		}
	}
	if Fig8Table(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestFig9(t *testing.T) {
	rows, err := Fig9(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for i := 1; i < len(r.Latencies); i++ {
			if r.Latencies[i] < r.Latencies[i-1] {
				t.Fatalf("%s %s: CDF not monotone: %v", r.Family, r.Config, r.Latencies)
			}
		}
		if r.Latencies[0] < 22 {
			t.Fatalf("%s %s: p10 below inference latency", r.Family, r.Config)
		}
	}
	if Fig9Table(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestFig10(t *testing.T) {
	cells, err := Fig10(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(RoutingFamilies)*len(Fig10BucketBytes) {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if !c.Ran {
			t.Errorf("%s/%dB did not run", c.Family, c.BucketBytes)
			continue
		}
		if c.MissRatePct < 0 || c.MissRatePct > 100 {
			t.Errorf("%s/%dB: miss rate %.2f", c.Family, c.BucketBytes, c.MissRatePct)
		}
	}
	if Fig10Table(cells) == nil {
		t.Fatal("nil table")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The fitted model must reproduce the paper's published counts closely.
	if small := rows[0]; small.LUT < 9000 || small.LUT > 11500 {
		t.Errorf("16:48 LUT = %d, paper 10165", small.LUT)
	}
	if big := rows[1]; big.LUT < 75000 || big.LUT > 90000 {
		t.Errorf("32:96 LUT = %d, paper 81862", big.LUT)
	}
	if rows[0].DSP != 30 || rows[1].DSP != 60 || rows[2].DSP != 0 {
		t.Errorf("DSP counts wrong: %d/%d/%d", rows[0].DSP, rows[1].DSP, rows[2].DSP)
	}
	// SAIL's BRAM demand dwarfs NeuroLPM's.
	if rows[2].BRAMBytes < 2*rows[0].BRAMBytes {
		t.Errorf("SAIL BRAM %d not ≫ NeuroLPM %d", rows[2].BRAMBytes, rows[0].BRAMBytes)
	}
	if Table1Table(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestExpansion(t *testing.T) {
	rows, err := Expansion(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ExpansionPct < 0 || r.ExpansionPct > 100 {
			t.Errorf("%s: expansion %.1f%% outside the 2x bound", r.Family, r.ExpansionPct)
		}
	}
	if ExpansionTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestWorstCase(t *testing.T) {
	rows, err := WorstCase(testScale())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"neurolpm": 1, "sail": 2, "treebitmap": 3}
	for _, r := range rows {
		if r.Bound != want[r.Algorithm] {
			t.Errorf("%s bound = %d, want %d", r.Algorithm, r.Bound, want[r.Algorithm])
		}
		if r.Observed > r.Bound {
			t.Errorf("%s observed %d exceeds bound %d", r.Algorithm, r.Observed, r.Bound)
		}
	}
	if WorstCaseTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestVsBinarySearch(t *testing.T) {
	rows, err := VsBinarySearch(testScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Reduction < 1.2 {
			t.Errorf("%s: reduction %.2fx; RQRMI should beat full binary search", r.Family, r.Reduction)
		}
	}
	if VsBinarySearchTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestBitwidth(t *testing.T) {
	rows, err := Bitwidth(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	prevTrie := 0
	for _, r := range rows {
		if r.NeuroDRAM != 1 {
			t.Errorf("%s: NeuroLPM worst-case DRAM %d, want 1 at every width", r.Family, r.NeuroDRAM)
		}
		if r.TrieDRAM <= prevTrie {
			t.Errorf("%s: trie accesses did not grow with width", r.Family)
		}
		prevTrie = r.TrieDRAM
	}
	if BitwidthTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestUpdates(t *testing.T) {
	rows, err := Updates(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if UpdatesTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestScaling(t *testing.T) {
	rows, err := Scaling(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].TputVsBase != 1 || rows[0].TrainVsBase != 1 {
		t.Error("base row not normalized to 1x")
	}
	if rows[1].Rules != rows[0].Rules*45/10 {
		t.Errorf("big rule count %d", rows[1].Rules)
	}
	if ScalingTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestModelSize(t *testing.T) {
	sc := testScale()
	rows, err := ModelSize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgProbes <= 0 || r.MaxErr < 0 || r.ModelBytes <= 0 {
			t.Errorf("row %+v has nonsense values", r)
		}
	}
	// Model footprint grows with the final stage.
	if rows[4].ModelBytes <= rows[0].ModelBytes {
		t.Error("model bytes did not grow with submodels")
	}
	if ModelSizeTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestTSSSensitivity(t *testing.T) {
	rows, err := TSSSensitivity(testScale())
	if err != nil {
		t.Fatal(err)
	}
	byFam := map[string]TSSRow{}
	for _, r := range rows {
		byFam[r.Family] = r
	}
	if byFam["snort"].Tables <= byFam["ripe"].Tables {
		t.Errorf("string matching (%d tables) should need more than routing (%d)",
			byFam["snort"].Tables, byFam["ripe"].Tables)
	}
	if byFam["snort"].AvgProbes <= byFam["ripe"].AvgProbes {
		t.Error("string matching should probe more tables per query")
	}
	if TSSSensitivityTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestDRAMPipeline(t *testing.T) {
	rows, err := DRAMPipeline(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// More DRAM bandwidth must not hurt throughput or stalls.
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput+1e-9 < rows[i-1].Throughput {
			t.Errorf("issue=%d throughput regressed", rows[i].IssuePerCycle)
		}
		if rows[i].StallCycles > rows[i-1].StallCycles {
			t.Errorf("issue=%d stalls grew", rows[i].IssuePerCycle)
		}
	}
	if rows[0].Throughput > 1.0 {
		t.Error("1 fetch/cycle cannot exceed 1 query/cycle")
	}
	if DRAMPipelineTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestReplicas(t *testing.T) {
	r, err := Replicas(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas < 2 {
		t.Errorf("only %d replicas fit in SAIL's budget; paper fits 4", r.Replicas)
	}
	if r.AggregateMpps <= r.SingleMpps {
		t.Error("aggregate throughput did not scale with replicas")
	}
	if r.AggregateMpps <= r.SAILMpps {
		t.Errorf("aggregate %.0f Mpps does not beat SAIL's %.0f", r.AggregateMpps, r.SAILMpps)
	}
	if r.SpareBRAMForCache < 0 {
		t.Error("negative spare BRAM")
	}
	if ReplicasTable(r) == nil {
		t.Fatal("nil table")
	}
}

func TestDesignSpace(t *testing.T) {
	rows, err := DesignSpace(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(RoutingFamilies) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.StagedThroughput <= 0 || r.FSMThroughput <= 0 {
			t.Errorf("%s: zero throughput", r.Family)
		}
		if r.FSMStages < 1 {
			t.Errorf("%s: stage depth %d", r.Family, r.FSMStages)
		}
	}
	if DesignSpaceTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestWorstCaseBandwidth(t *testing.T) {
	rows := WorstCaseBandwidth()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.LineRateGbps == 200 {
			// The paper's §10.1 figure: 88 Gbps worst case at 200 Gbps.
			if r.WorstCaseGbps < 85 || r.WorstCaseGbps > 92 {
				t.Fatalf("worst-case at 200G = %.1f Gbps, paper says ~88", r.WorstCaseGbps)
			}
		}
	}
	if WorstCaseBandwidthTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestEMExpansion(t *testing.T) {
	rows, err := EMExpansion(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(RoutingFamilies)*3 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]EMRow{}
	for _, r := range rows {
		byKey[r.Family+fi(r.Threshold)] = r
		if r.EMEntries < uint64(r.EMRules) {
			t.Errorf("%s/%d: fewer entries than rules", r.Family, r.Threshold)
		}
	}
	// Lower thresholds offload more rules and blow up faster (§3.3's
	// exponential growth in wildcard bits).
	for _, fam := range RoutingFamilies {
		if byKey[fam+"24"].EMEntries <= byKey[fam+"32"].EMEntries {
			t.Errorf("%s: /24 threshold did not dominate /32", fam)
		}
	}
	if EMExpansionTable(rows) == nil {
		t.Fatal("nil table")
	}
}

func TestFaults(t *testing.T) {
	cells, err := FaultStorm(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d phases, want 3", len(cells))
	}
	byPhase := map[string]FaultsCell{}
	for _, c := range cells {
		byPhase[c.Phase] = c
		if c.Mismatches != 0 {
			t.Errorf("%s: %d oracle mismatches — degraded mode served wrong answers", c.Phase, c.Mismatches)
		}
		if c.P99ns < c.P50ns {
			t.Errorf("%s: p99 (%.0f) below p50 (%.0f)", c.Phase, c.P99ns, c.P50ns)
		}
	}
	if byPhase["storm"].Failures == 0 {
		t.Error("storm phase recorded no commit failures")
	}
	if got := byPhase["recovery"].Pending; got != 0 {
		t.Errorf("recovery left %d rules pending", got)
	}
	if FaultsTable(cells) == nil {
		t.Fatal("nil table")
	}
}

func TestCacheHotKey(t *testing.T) {
	cells, err := CacheHotKey(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 hot rows (uncached + 2 sizes) + 2 mid + 2 uniform + 1 storm.
	if len(cells) != 8 {
		t.Fatalf("%d rows, want 8", len(cells))
	}
	for _, c := range cells {
		if c.Mismatches != 0 {
			t.Errorf("%s @%dKB: %d oracle mismatches — the cache served a wrong answer", c.Workload, c.CacheKB, c.Mismatches)
		}
		if c.MLookupsPS <= 0 {
			t.Errorf("%s @%dKB: nonpositive rate %f", c.Workload, c.CacheKB, c.MLookupsPS)
		}
	}
	// The hot-key regime is the point of the plane: the cached rows must hit
	// often. (Throughput ratios are asserted only at lpmbench scale — CI
	// machines are too noisy for a speedup bound at testScale.)
	if hit := cells[1].HitPct; hit < 50 {
		t.Errorf("zipf/loc0.9 @%dKB hit rate %.1f%%, want well above 50%%", cells[1].CacheKB, hit)
	}
	// Storm row: delta overlay + failing commits, still zero mismatches and
	// a live hit rate.
	storm := cells[len(cells)-1]
	if storm.HitPct <= 0 {
		t.Errorf("storm row hit rate %.1f%%, want > 0", storm.HitPct)
	}
	if CacheHotKeyTable(cells) == nil {
		t.Fatal("nil table")
	}
}

func TestTiered(t *testing.T) {
	cells, err := Tiered(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// all-hot + tiered + tiered sketch + storm.
	if len(cells) != 4 {
		t.Fatalf("%d rows, want 4", len(cells))
	}
	byConfig := map[string]TieredCell{}
	for _, c := range cells {
		byConfig[c.Config] = c
		if c.Mismatches != 0 {
			t.Errorf("%s: %d oracle mismatches — a tier migration corrupted an answer", c.Config, c.Mismatches)
		}
	}
	// The deterministic regime's contract (what the bench guard pins): one
	// warm-up pass + one burst rebalance leaves the measured pass entirely
	// in the fast tier, at full p99 headroom, on a smaller footprint.
	det := byConfig["tiered"]
	if det.ColdPct != 0 {
		t.Errorf("deterministic tiered row ran %.1f%% cold, want 0", det.ColdPct)
	}
	if det.HeadroomX != 1 {
		t.Errorf("deterministic tiered row p99 headroom %.2f, want exactly 1", det.HeadroomX)
	}
	if det.FastSavingX <= 1 {
		t.Errorf("deterministic tiered row fast saving %.2f, want > 1", det.FastSavingX)
	}
	if det.Promotions == 0 {
		t.Error("deterministic tiered row promoted nothing")
	}
	// The sketch regime must actually exercise both migration directions.
	sk := byConfig["tiered sketch"]
	if sk.Promotions == 0 || sk.Demotions == 0 {
		t.Errorf("sketch row promotions=%d demotions=%d, want both > 0", sk.Promotions, sk.Demotions)
	}
	if byConfig["tiered +storm"].Promotions == 0 {
		t.Error("storm row promoted nothing mid-storm")
	}
	if TieredTable(cells) == nil {
		t.Fatal("nil table")
	}
}

func TestWire(t *testing.T) {
	cells, err := Wire(testScale())
	if err != nil {
		t.Fatal(err)
	}
	// http fan-in, wire window=0, wire coalesce, two 1-conn rows, bytes row.
	if len(cells) != 6 {
		t.Fatalf("%d rows, want 6", len(cells))
	}
	byConfig := map[string]WireCell{}
	for _, c := range cells {
		byConfig[c.Config] = c
		if c.Mismatches != 0 {
			t.Errorf("%s: %d oracle mismatches — the wire plane served a wrong answer", c.Config, c.Mismatches)
		}
		if c.Errors != 0 {
			t.Errorf("%s: %d request errors", c.Config, c.Errors)
		}
		if !c.Deterministic && c.QPS <= 0 {
			t.Errorf("%s: nonpositive qps %f", c.Config, c.QPS)
		}
	}
	// The binary planes must beat the HTTP/JSON baseline at the fan-in
	// (the 2× headline is asserted at bench scale; shapes must hold here).
	if w := byConfig["wire coalesce"]; w.VsHTTPX <= 1 {
		t.Errorf("wire coalesce %.2fx vs http, want > 1", w.VsHTTPX)
	}
	// Light-load parity: the lone wire client's p50 must not be taxed by the
	// coalesce window (ISSUE: within 10% of HTTP parity; wire should win).
	h1, w1 := byConfig["http/json 1-conn"], byConfig["wire coalesce 1-conn"]
	if w1.P50us > 1.1*h1.P50us {
		t.Errorf("1-conn wire p50 %.1fµs above 110%% of http p50 %.1fµs", w1.P50us, h1.P50us)
	}
	// The deterministic bytes row: wire framing must be several times leaner
	// than the HTTP request + JSON response for the same lookup.
	det := byConfig["bytes/query ratio"]
	if !det.Deterministic {
		t.Fatal("bytes row not marked deterministic")
	}
	if det.VsHTTPX <= 3 {
		t.Errorf("bytes/query ratio %.2f, want > 3 (http vs wire)", det.VsHTTPX)
	}
	if WireTable(cells) == nil {
		t.Fatal("nil table")
	}
}
