// Package experiments reproduces every table and figure of the paper's
// evaluation (§10) plus the quantitative claims of §6–§8, mapping each to a
// runner that regenerates the corresponding rows/series. DESIGN.md carries
// the experiment index (E1–E15); EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"neurolpm/internal/core"
	"neurolpm/internal/rqrmi"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale sizes an experiment run. Tests and `go test -bench` use QuickScale;
// `lpmbench -full` uses PaperScale (rule counts and trace lengths matching
// §10.1).
type Scale struct {
	// Rules per family; families are workload profile names.
	Rules map[string]int
	// TraceLen is the number of queries replayed per measurement.
	TraceLen int
	// HWTraceLen is the (smaller) trace for cycle-level simulation.
	HWTraceLen int
	Model      rqrmi.Config
	Seed       int64
}

// QuickScale finishes in seconds; shapes (who wins, rough factors) already
// hold at this size.
func QuickScale() Scale {
	m := rqrmi.DefaultConfig()
	m.StageWidths = []int{1, 4, 16}
	m.Samples = 2048
	m.Epochs = 30
	return Scale{
		Rules: map[string]int{
			"ripe": 40000, "routeviews": 45000, "stanford": 15000,
			"snort": 20000, "ipv6": 10000,
		},
		TraceLen:   400000,
		HWTraceLen: 20000,
		Model:      m,
		Seed:       1,
	}
}

// PaperScale matches §10.1: ~870K-rule RIPE-like and ~950K RouteViews-like
// tables, ~180K Stanford-like, 10M-query traces.
func PaperScale() Scale {
	return Scale{
		Rules: map[string]int{
			"ripe": 870000, "routeviews": 948000, "stanford": 180000,
			"snort": 400000, "ipv6": 200000,
		},
		TraceLen:   10000000,
		HWTraceLen: 200000,
		Model:      rqrmi.DefaultConfig(),
		Seed:       1,
	}
}

// engineConfig returns the NeuroLPM build configuration for the scale:
// 32-byte buckets (8 × 4B ranges) per §10.1.
func (sc Scale) engineConfig() core.Config {
	return core.Config{BucketSize: 8, Model: sc.Model}
}

// RoutingFamilies are the three §10 packet-forwarding rule-set sources.
var RoutingFamilies = []string{"ripe", "routeviews", "stanford"}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func fi(v int) string     { return fmt.Sprintf("%d", v) }
func fu(v uint64) string  { return fmt.Sprintf("%d", v) }
