package experiments

import (
	"fmt"
	"time"

	"neurolpm/internal/baseline/tss"
	"neurolpm/internal/bucket"
	"neurolpm/internal/cachesim"
	"neurolpm/internal/hwsim"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/workload"
)

// ModelSizeRow is one point of the §8 "effect of RQRMI size" discussion:
// bigger final stages can reduce straggler error bounds but cost training
// time, so the paper prefers small models and absorbs high-e submodels in
// the secondary search.
type ModelSizeRow struct {
	FinalSubmodels int
	TrainTime      time.Duration
	MaxErr         int
	AvgProbes      float64
	ModelBytes     int
}

// ModelSize sweeps the final-stage width on the RIPE-like rule-set.
func ModelSize(sc Scale) ([]ModelSizeRow, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	arr, err := ranges.Convert(rs)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen/10+1, sc.Seed+11))
	if err != nil {
		return nil, err
	}
	var rows []ModelSizeRow
	for _, final := range []int{8, 16, 32, 64, 128} {
		cfg := sc.Model
		cfg.StageWidths = []int{1, 4, final}
		start := time.Now()
		model, _, err := rqrmi.Train(arr, rs.Width, cfg)
		if err != nil {
			return nil, err
		}
		row := ModelSizeRow{
			FinalSubmodels: final,
			TrainTime:      time.Since(start),
			MaxErr:         model.MaxErr(),
			ModelBytes:     model.SizeBytes(),
		}
		var probes uint64
		for _, k := range trace {
			_, p := model.Lookup(arr, k)
			probes += uint64(p)
		}
		row.AvgProbes = float64(probes) / float64(len(trace))
		rows = append(rows, row)
	}
	return rows, nil
}

// ModelSizeTable renders the sweep.
func ModelSizeTable(rows []ModelSizeRow) *Table {
	t := &Table{
		Title:  "§8 ablation: RQRMI final-stage width vs training time and lookup cost",
		Header: []string{"final submodels", "train [ms]", "max err bound", "avg probes", "model bytes"},
		Notes:  []string{"paper: prefer small models; absorb straggler error bounds in the secondary search"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fi(r.FinalSubmodels), fi(int(r.TrainTime.Milliseconds())),
			fi(r.MaxErr), f2(r.AvgProbes), fi(r.ModelBytes),
		})
	}
	return t
}

// TSSRow is the Tuple Space Search table-count sensitivity of §3.3.
type TSSRow struct {
	Family    string
	Width     int
	Tables    int
	AvgProbes float64
}

// TSSSensitivity measures per-query table probes for routing vs
// string-matching rule-sets — the structural sensitivity that disqualifies
// TSS as a multi-purpose engine (§3.3: >26 tables for NIDS strings).
func TSSSensitivity(sc Scale) ([]TSSRow, error) {
	var rows []TSSRow
	for _, family := range []string{"ripe", "stanford", "snort"} {
		p := workload.Profiles()[family]
		rs, err := workload.Generate(p, sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		eng, err := tss.Build(rs)
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen/10+1, sc.Seed+12))
		if err != nil {
			return nil, err
		}
		var probes uint64
		for _, k := range trace {
			_, _, pr := eng.LookupMem(k, cachesim.Null{})
			probes += uint64(pr)
		}
		rows = append(rows, TSSRow{
			Family: family, Width: p.Width, Tables: eng.NumTables(),
			AvgProbes: float64(probes) / float64(len(trace)),
		})
	}
	return rows, nil
}

// TSSSensitivityTable renders the comparison.
func TSSSensitivityTable(rows []TSSRow) *Table {
	t := &Table{
		Title:  "§3.3: Tuple Space Search sensitivity to prefix-length diversity",
		Header: []string{"family", "width", "hash tables", "avg tables probed/query"},
		Notes:  []string{"paper: NIDS string rules need >26 tables; NVIDIA NICs lose 2.5x/7.5x throughput at 4/16 tables"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Family, fi(r.Width), fi(r.Tables), f2(r.AvgProbes)})
	}
	return t
}

// DRAMPipelineRow is one configuration of the full (bucketized) pipeline
// cycle model — an extension beyond the paper's SRAM-only RTL.
type DRAMPipelineRow struct {
	IssuePerCycle int
	Throughput    float64
	AvgLatency    float64
	MaxQueue      int
	StallCycles   uint64
}

// DRAMPipeline measures the cycle-level engine with the Bucket Reader /
// Bucket Search stage attached, sweeping the DRAM issue bandwidth.
func DRAMPipeline(sc Scale) ([]DRAMPipelineRow, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	arr, err := ranges.Convert(rs)
	if err != nil {
		return nil, err
	}
	dir, err := bucket.Build(arr, 8)
	if err != nil {
		return nil, err
	}
	model, _, err := rqrmi.Train(dir, rs.Width, sc.Model)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+13))
	if err != nil {
		return nil, err
	}
	var rows []DRAMPipelineRow
	for _, issue := range []int{1, 2, 4} {
		dram := hwsim.DefaultDRAMConfig()
		dram.IssuePerCycle = issue
		res, err := hwsim.SimulateDRAM(model, dir, trace, hwsim.DefaultConfig(), dram)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DRAMPipelineRow{
			IssuePerCycle: issue,
			Throughput:    float64(res.Queries) / float64(res.Cycles),
			AvgLatency:    res.AvgLatency(),
			MaxQueue:      res.MaxQueueDepth,
			StallCycles:   res.DRAMStallCycles,
		})
	}
	return rows, nil
}

// DRAMPipelineTable renders the sweep.
func DRAMPipelineTable(rows []DRAMPipelineRow) *Table {
	t := &Table{
		Title:  "extension: full pipeline with DRAM bucket fetch (Fig 3), issue-bandwidth sweep",
		Header: []string{"DRAM fetches/cycle", "tput [q/cyc]", "avg latency [cyc]", "max queue", "stall cycles"},
		Notes:  []string{"one bucket fetch per query by construction (§7); bandwidth, not the error bound, sets the DRAM demand"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fi(r.IssuePerCycle), f3(r.Throughput), f1(r.AvgLatency),
			fi(r.MaxQueue), fmt.Sprintf("%d", r.StallCycles),
		})
	}
	return t
}

// EMRow quantifies §3.3's hybrid exact-match argument: offloading rules of
// length ≥ threshold to an exact-match table requires expanding each to
// full-width entries, and the entry count explodes with the threshold.
type EMRow struct {
	Family    string
	Threshold int     // rules with len ≥ threshold go to the EM table
	EMRules   int     // rules offloaded
	EMEntries uint64  // expanded exact-match entries
	EMBytes   uint64  // at width/8 key bytes + 4B action per entry
	Expansion float64 // entries per offloaded rule
}

// EMExpansion computes the exact-match expansion for the routing families
// at /24, /28 and /32 offload thresholds (fully analytic from the prefix
// histogram — building 100M-entry tables is the point being refuted).
func EMExpansion(sc Scale) ([]EMRow, error) {
	var rows []EMRow
	for _, family := range RoutingFamilies {
		p := workload.Profiles()[family]
		rs, err := workload.Generate(p, sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		hist := rs.PrefixHistogram()
		for _, thr := range []int{24, 28, 32} {
			row := EMRow{Family: family, Threshold: thr}
			for l := thr; l <= p.Width; l++ {
				n := uint64(hist[l])
				row.EMRules += hist[l]
				row.EMEntries += n << uint(p.Width-l)
			}
			row.EMBytes = row.EMEntries * uint64(p.Width/8+4)
			if row.EMRules > 0 {
				row.Expansion = float64(row.EMEntries) / float64(row.EMRules)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// EMExpansionTable renders the blow-up.
func EMExpansionTable(rows []EMRow) *Table {
	t := &Table{
		Title:  "§3.3: hybrid exact-match offload — expansion of rules with len ≥ threshold to EM entries",
		Header: []string{"family", "threshold", "rules offloaded", "EM entries", "EM size [MB]", "entries/rule"},
		Notes:  []string{"paper: expansion grows exponentially with wildcard bits, forcing EM tables off-chip (rule 01* → 010, 011)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Family, fi(r.Threshold), fi(r.EMRules),
			fu(r.EMEntries), f1(float64(r.EMBytes) / 1e6), f1(r.Expansion),
		})
	}
	return t
}
