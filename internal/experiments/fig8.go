package experiments

import (
	"fmt"

	"neurolpm/internal/core"
	"neurolpm/internal/hwsim"
	"neurolpm/internal/workload"
)

// HWConfigPoint names one Figure 8 hardware configuration.
type HWConfigPoint struct {
	Engines, Banks, FSMs int
}

func (p HWConfigPoint) String() string {
	return fmt.Sprintf("%d-%d:%d", p.Engines, p.Banks, p.FSMs)
}

// Fig8Configs mirrors the paper's evaluated space: a single RQRMI module
// with 16 banks and a doubled design with two modules and 32 banks, with
// FSMs from 16 to 96 (inferior points — FSMs < banks, 8 banks — omitted as
// in the paper).
var Fig8Configs = []HWConfigPoint{
	{1, 16, 16}, {1, 16, 32}, {1, 16, 48}, {1, 16, 64}, {1, 16, 96},
	{2, 32, 32}, {2, 32, 48}, {2, 32, 64}, {2, 32, 96},
}

// Fig8Row is the throughput/latency of one (family, config) pair.
type Fig8Row struct {
	Family     string
	Config     HWConfigPoint
	Throughput float64 // queries/cycle
	AvgLatency float64 // cycles
	MppsAt100M float64
}

// Fig8 runs the cycle-level simulator (SRAM-only design) across the
// configuration space for each routing family.
func Fig8(sc Scale) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		// SRAM-only design: the model indexes the full range array.
		eng, err := core.Build(rs, core.Config{Model: sc.Model})
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+3))
		if err != nil {
			return nil, err
		}
		for _, cfgPt := range Fig8Configs {
			cfg := hwsim.Config{
				Engines: cfgPt.Engines, Banks: cfgPt.Banks, FSMs: cfgPt.FSMs,
				InferenceLatency: 22,
			}
			res, err := hwsim.Simulate(eng.Model(), eng.Ranges(), trace, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{
				Family:     family,
				Config:     cfgPt,
				Throughput: res.Throughput(),
				AvgLatency: res.AvgLatency(),
				MppsAt100M: res.MppsAt(100e6),
			})
		}
	}
	return rows, nil
}

// Fig8Table renders the configuration sweep.
func Fig8Table(rows []Fig8Row) *Table {
	t := &Table{
		Title:  "Figure 8: end-to-end hardware throughput (SRAM-only), per configuration",
		Header: []string{"family", "config (eng-banks:FSMs)", "tput [q/cyc]", "Mpps @100MHz", "avg latency [cyc]"},
		Notes:  []string{"§10.3: 2-32:96 reaches ~196Mpps at 100MHz; latency annotations correspond to Fig 8's bar labels"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Family, r.Config.String(), f3(r.Throughput), f1(r.MppsAt100M), f1(r.AvgLatency),
		})
	}
	return t
}

// Fig9Quantiles are the CDF points reported for Figure 9.
var Fig9Quantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.00}

// Fig9Row is the latency CDF of one configuration on one family.
type Fig9Row struct {
	Family    string
	Config    HWConfigPoint
	Latencies []uint32 // at Fig9Quantiles
}

// Fig9Configs are the legend entries of Figure 9.
var Fig9Configs = []HWConfigPoint{
	{1, 16, 16}, {1, 16, 32}, {1, 16, 48}, {2, 32, 96},
}

// Fig9 regenerates the end-to-end query latency CDF.
func Fig9(sc Scale) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		eng, err := core.Build(rs, core.Config{Model: sc.Model})
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+4))
		if err != nil {
			return nil, err
		}
		for _, cfgPt := range Fig9Configs {
			cfg := hwsim.Config{
				Engines: cfgPt.Engines, Banks: cfgPt.Banks, FSMs: cfgPt.FSMs,
				InferenceLatency: 22,
			}
			res, err := hwsim.Simulate(eng.Model(), eng.Ranges(), trace, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{
				Family:    family,
				Config:    cfgPt,
				Latencies: res.LatencyCDF(Fig9Quantiles),
			})
		}
	}
	return rows, nil
}

// Fig9Table renders the CDF rows.
func Fig9Table(rows []Fig9Row) *Table {
	header := []string{"family", "config"}
	for _, q := range Fig9Quantiles {
		header = append(header, fmt.Sprintf("p%02.0f [cyc]", q*100))
	}
	t := &Table{
		Title:  "Figure 9: end-to-end query latency CDF",
		Header: header,
	}
	for _, r := range rows {
		row := []string{r.Family, r.Config.String()}
		for _, l := range r.Latencies {
			row = append(row, fmt.Sprintf("%d", l))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// HeadlineResult is the §10.3 summary: the flagship configuration's
// throughput and latency decomposition.
type HeadlineResult struct {
	Family           string
	MppsAt100M       float64
	InferenceCycles  int
	AvgLatencyCycles float64
	AvgBankAccesses  float64
}

// Headline measures the 2-engine / 32-bank / 96-FSM design point the paper
// leads with (196Mpps at 100MHz; inference 22 cycles).
func Headline(sc Scale) ([]HeadlineResult, error) {
	var out []HeadlineResult
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		eng, err := core.Build(rs, core.Config{Model: sc.Model})
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+5))
		if err != nil {
			return nil, err
		}
		cfg := hwsim.DefaultConfig()
		res, err := hwsim.Simulate(eng.Model(), eng.Ranges(), trace, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, HeadlineResult{
			Family:           family,
			MppsAt100M:       res.MppsAt(100e6),
			InferenceCycles:  cfg.InferenceLatency,
			AvgLatencyCycles: res.AvgLatency(),
			AvgBankAccesses:  res.AvgBankAccesses(),
		})
	}
	return out, nil
}

// HeadlineTable renders the summary.
func HeadlineTable(rows []HeadlineResult) *Table {
	t := &Table{
		Title:  "§10.3 headline: 2 RQRMI engines, 32 banks, 96 FSMs at 100MHz",
		Header: []string{"family", "Mpps @100MHz", "inference [cyc]", "avg latency [cyc]", "avg bank acc/query"},
		Notes:  []string{"paper: 196Mpps average, 22-cycle inference, 35–55-cycle secondary search"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Family, f1(r.MppsAt100M), fi(r.InferenceCycles), f1(r.AvgLatencyCycles), f2(r.AvgBankAccesses),
		})
	}
	return t
}
