package experiments

import (
	"runtime"
	"time"

	"neurolpm/internal/hwsim"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/workload"
)

// Fig6aPoint is one point of the Figure 6a memory-subsystem model.
type Fig6aPoint struct {
	Banks      int
	FSMs       int
	Analytical float64 // T = m(1-((m-1)/m)^k)
	Simulated  float64 // micro-simulation under the same independence assumption
}

// Fig6a regenerates Figure 6a: theoretical average memory throughput vs the
// number of FSMs for 8/16/32 banks, alongside a micro-simulation.
func Fig6a(seed int64) []Fig6aPoint {
	var out []Fig6aPoint
	for _, banks := range []int{8, 16, 32} {
		for fsms := 5; fsms <= 100; fsms += 5 {
			out = append(out, Fig6aPoint{
				Banks:      banks,
				FSMs:       fsms,
				Analytical: hwsim.TheoreticalBankThroughput(banks, fsms),
				Simulated:  hwsim.SimulateBankContention(banks, fsms, 3000, seed),
			})
		}
	}
	return out
}

// Fig6aTable renders the curve (one row per point).
func Fig6aTable(points []Fig6aPoint) *Table {
	t := &Table{
		Title:  "Figure 6a: average memory-subsystem throughput vs number of FSMs",
		Header: []string{"banks", "FSMs", "T analytic [acc/cyc]", "T simulated [acc/cyc]"},
		Notes:  []string{"analytic: T = m·(1−((m−1)/m)^k), the §6.2.1 birthday bound"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{fi(p.Banks), fi(p.FSMs), f2(p.Analytical), f2(p.Simulated)})
	}
	return t
}

// Fig6bRow is one row of Figure 6b: the training-time vs lookup-throughput
// tradeoff at a given target error bound.
type Fig6bRow struct {
	TargetLog2E     int
	AvgBankAccesses float64
	Throughput      float64 // hw queries/cycle
	TrainSequential time.Duration
	TrainParallel   time.Duration
	Workers         int
	Stragglers      int
}

// Fig6b regenerates Figure 6b on the RIPE-like rule-set: training with
// looser target error bounds (log₂e = 6, 7, 8) is faster but lengthens the
// secondary search and lowers end-to-end lookup throughput.
func Fig6b(sc Scale) ([]Fig6bRow, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	arr, err := ranges.Convert(rs)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+1))
	if err != nil {
		return nil, err
	}
	var rows []Fig6bRow
	for _, log2e := range []int{6, 7, 8} {
		cfg := sc.Model
		cfg.TargetErr = 1 << log2e
		// Looser targets buy speed by cutting the per-round budget: fewer
		// samples and epochs, fewer straggler retries (§6.5's 3× sample
		// reduction and straggler tolerance).
		switch log2e {
		case 7:
			cfg.Samples = cfg.Samples * 2 / 3
			cfg.MaxRounds = 2
		case 8:
			cfg.Samples = cfg.Samples / 3
			cfg.Epochs = cfg.Epochs * 2 / 3
			cfg.MaxRounds = 1
		}
		row := Fig6bRow{TargetLog2E: log2e}

		cfgSeq := cfg
		cfgSeq.Workers = 1
		start := time.Now()
		if _, _, err := rqrmi.Train(arr, rs.Width, cfgSeq); err != nil {
			return nil, err
		}
		row.TrainSequential = time.Since(start)

		cfgPar := cfg
		cfgPar.Workers = runtime.GOMAXPROCS(0)
		row.Workers = cfgPar.Workers
		start = time.Now()
		model, stats, err := rqrmi.Train(arr, rs.Width, cfgPar)
		if err != nil {
			return nil, err
		}
		row.TrainParallel = time.Since(start)
		row.Stragglers = stats.Stragglers

		hw := hwsim.DefaultConfig()
		res, err := hwsim.Simulate(model, arr, trace, hw)
		if err != nil {
			return nil, err
		}
		row.AvgBankAccesses = res.AvgBankAccesses()
		row.Throughput = res.Throughput()
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6bTable renders the tradeoff rows.
func Fig6bTable(rows []Fig6bRow) *Table {
	t := &Table{
		Title: "Figure 6b: training time and its effect on end-to-end lookup throughput",
		Header: []string{
			"target log2(e)", "avg bank accesses", "lookup tput [q/cyc]",
			"train 1-core [ms]", "train parallel [ms]", "workers", "stragglers",
		},
		Notes: []string{
			"substitution: wall-clock on this machine instead of the paper's Intel x86 / BlueField-2 ARM hosts",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fi(r.TargetLog2E), f2(r.AvgBankAccesses), f3(r.Throughput),
			fi(int(r.TrainSequential.Milliseconds())), fi(int(r.TrainParallel.Milliseconds())),
			fi(r.Workers), fi(r.Stragglers),
		})
	}
	return t
}
