package experiments

import (
	"fmt"

	"neurolpm/internal/baseline/sail"
	"neurolpm/internal/baseline/treebitmap"
	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/workload"
)

// Fig7Cell is one (family, SRAM size, algorithm) measurement.
type Fig7Cell struct {
	Family    string
	SRAMBytes int
	Algorithm string
	Ran       bool // false when static structures exceed the SRAM budget
	// Per-query averages over the replayed trace.
	DRAMAccesses  float64
	BytesPerQuery float64
	MissRatePct   float64 // misses per cache access, percent
	GbpsAt200Mpps float64 // bandwidth at 200M queries/s (≈§7's 200Gbps line rate)
}

// Fig7SRAMSizesMB are the paper's x-axis points.
var Fig7SRAMSizesMB = []int{1, 2, 4}

// Fig7Algorithms in presentation order.
var Fig7Algorithms = []string{"neurolpm", "treebitmap", "sail"}

// Fig7 regenerates Figure 7 (average DRAM bandwidth per query vs SRAM size)
// using the §10.2 methodology: a 2-way LRU cache with 32-byte lines in
// front of each algorithm's DRAM-resident structures; static SRAM residents
// shrink the effective cache.
func Fig7(sc Scale) ([]Fig7Cell, error) {
	var out []Fig7Cell
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+2))
		if err != nil {
			return nil, err
		}

		nlpm, err := core.Build(rs, sc.engineConfig())
		if err != nil {
			return nil, err
		}
		tbm, err := treebitmap.Build(rs)
		if err != nil {
			return nil, err
		}
		sl, err := sail.Build(rs)
		if err != nil {
			return nil, err
		}

		for _, mb := range Fig7SRAMSizesMB {
			sram := mb * 1024 * 1024

			// NeuroLPM: model + bucket directory are static.
			cell := Fig7Cell{Family: family, SRAMBytes: sram, Algorithm: "neurolpm"}
			if cacheBytes := sram - nlpm.SRAMUsage().Total; cacheBytes > 0 {
				cache, err := cachesim.New(cachesim.DefaultConfig(cacheBytes))
				if err == nil {
					for _, k := range trace {
						nlpm.LookupMem(k, cache)
					}
					cell.Ran = true
					fill(&cell, cache.Stats(), len(trace))
				}
			}
			out = append(out, cell)

			// Tree Bitmap: only the root chunk is static.
			cell = Fig7Cell{Family: family, SRAMBytes: sram, Algorithm: "treebitmap"}
			if cacheBytes := sram - tbm.StaticSRAMBytes(); cacheBytes > 0 {
				cache, err := cachesim.New(cachesim.DefaultConfig(cacheBytes))
				if err == nil {
					for _, k := range trace {
						tbm.LookupMem(k, cache)
					}
					cell.Ran = true
					fill(&cell, cache.Stats(), len(trace))
				}
			}
			out = append(out, cell)

			// SAIL: 2.3MB static; it cannot run below ~2.4MB (paper note).
			cell = Fig7Cell{Family: family, SRAMBytes: sram, Algorithm: "sail"}
			if cacheBytes := sram - sl.StaticSRAMBytes(); cacheBytes >= 64*1024 {
				cache, err := cachesim.New(cachesim.DefaultConfig(cacheBytes))
				if err == nil {
					for _, k := range trace {
						sl.LookupMem(k, cache)
					}
					cell.Ran = true
					fill(&cell, cache.Stats(), len(trace))
				}
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func fill(c *Fig7Cell, st cachesim.Stats, queries int) {
	q := float64(queries)
	c.DRAMAccesses = float64(st.Misses) / q
	c.BytesPerQuery = float64(st.Bytes) / q
	c.MissRatePct = 100 * st.MissRate()
	c.GbpsAt200Mpps = c.BytesPerQuery * 200e6 * 8 / 1e9
}

// Fig7Table renders the grid.
func Fig7Table(cells []Fig7Cell) *Table {
	t := &Table{
		Title: "Figure 7: average DRAM bandwidth per query vs SRAM size (2-way LRU, 32B lines)",
		Header: []string{
			"family", "SRAM [MB]", "algorithm", "DRAM acc/query",
			"bytes/query", "Gbps @200Mq/s", "miss rate [%]",
		},
		Notes: []string{
			"'-' = static structures exceed the SRAM budget (SAIL needs ≥2.4MB)",
			"lower is better; §10.2 reports up to 5x/3x miss-rate and 4x/1.7x bandwidth reduction vs Tree Bitmap/SAIL",
		},
	}
	for _, c := range cells {
		row := []string{c.Family, fmt.Sprintf("%d", c.SRAMBytes/(1024*1024)), c.Algorithm}
		if c.Ran {
			row = append(row, f3(c.DRAMAccesses), f2(c.BytesPerQuery), f2(c.GbpsAt200Mpps), f2(c.MissRatePct))
		} else {
			row = append(row, "-", "-", "-", "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
