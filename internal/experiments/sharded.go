package experiments

import (
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/shard"
	"neurolpm/internal/workload"
)

// ShardedCell is one row of the sharded-vs-single throughput comparison
// (paper §6: bank-parallel pipelines scale throughput by partitioning the
// rule-set across independent engines, Fig 6a).
type ShardedCell struct {
	Mode       string // "single" or "sharded"
	Shards     int    // 1 for the single engine
	BatchSize  int    // 1 for single-key lookups
	MLookupsPS float64
	Speedup    float64 // vs the single-engine single-key row
	Mismatches int     // disagreements with the trie oracle (must be 0)
}

// ShardedBatchSize is the LookupBatch fan-out unit: large enough to
// amortize the per-batch shard grouping, small enough to stay cache-hot.
const ShardedBatchSize = 256

// ShardedShardCounts are the partition sizes measured against the single
// engine.
var ShardedShardCounts = []int{4, 8}

// shardedMinMeasure bounds each throughput measurement: the trace is
// replayed until this much wall time has elapsed (at least one full pass),
// so short quick-scale traces still produce stable rates.
const shardedMinMeasure = 500 * time.Millisecond

// ShardedThroughput measures single-engine single-key lookups against
// sharded LookupBatch on the ripe workload, verifying every traced answer
// against the trie oracle. One build per shard count; the single engine is
// the baseline row.
func ShardedThroughput(sc Scale) ([]ShardedCell, error) {
	rs, err := workload.Generate(workload.Profiles()["ripe"], sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+2))
	if err != nil {
		return nil, err
	}
	oracle := lpm.NewTrieMatcher(rs)
	wantAction := make([]uint64, len(trace))
	wantMatch := make([]bool, len(trace))
	for i, k := range trace {
		wantAction[i], wantMatch[i] = oracle.Lookup(k)
	}

	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	single := ShardedCell{Mode: "single", Shards: 1, BatchSize: 1}
	for i, k := range trace {
		a, ok := eng.Lookup(k)
		if a != wantAction[i] || ok != wantMatch[i] {
			single.Mismatches++
		}
	}
	single.MLookupsPS = measureRate(trace, func(ks []keys.Value) {
		for _, k := range ks {
			eng.Lookup(k)
		}
	})
	single.Speedup = 1
	out := []ShardedCell{single}

	for _, n := range ShardedShardCounts {
		sh, err := shard.Build(rs, sc.engineConfig(), n)
		if err != nil {
			return nil, err
		}
		cell := ShardedCell{Mode: "sharded", Shards: n, BatchSize: ShardedBatchSize}
		for lo := 0; lo < len(trace); lo += ShardedBatchSize {
			hi := min(lo+ShardedBatchSize, len(trace))
			for i, res := range sh.LookupBatch(trace[lo:hi]) {
				if res.Action != wantAction[lo+i] || res.Matched != wantMatch[lo+i] {
					cell.Mismatches++
				}
			}
		}
		cell.MLookupsPS = measureRate(trace, func(ks []keys.Value) {
			for lo := 0; lo < len(ks); lo += ShardedBatchSize {
				sh.LookupBatch(ks[lo:min(lo+ShardedBatchSize, len(ks))])
			}
		})
		cell.Speedup = cell.MLookupsPS / single.MLookupsPS
		out = append(out, cell)
		sh.Close()
	}
	return out, nil
}

// measureRate replays the trace through run until shardedMinMeasure has
// elapsed (whole passes only) and returns millions of lookups per second.
func measureRate(trace []keys.Value, run func([]keys.Value)) float64 {
	run(trace[:min(len(trace), 4096)]) // warm caches outside the timed region
	var (
		start   = time.Now()
		elapsed time.Duration
		keys    int
	)
	for elapsed < shardedMinMeasure {
		run(trace)
		keys += len(trace)
		elapsed = time.Since(start)
	}
	return float64(keys) / elapsed.Seconds() / 1e6
}

// ShardedThroughputTable renders the comparison.
func ShardedThroughputTable(cells []ShardedCell) *Table {
	t := &Table{
		Title:  "Sharded engine: batched lookup throughput vs single engine (ripe workload)",
		Header: []string{"mode", "shards", "batch", "Mlookups/s", "speedup", "oracle mismatches"},
		Notes: []string{
			"§6 bank model: each shard owns a key slice with its own RQRMI + range array",
			"mismatches must be 0 — every answer is checked against the trie oracle",
		},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Mode, fi(c.Shards), fi(c.BatchSize),
			f2(c.MLookupsPS), f2(c.Speedup), fi(c.Mismatches),
		})
	}
	return t
}
