package experiments

import (
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/hwsim"
	"neurolpm/internal/workload"
)

// ScalingRow is one configuration of the §8 rule-set-scaling tradeoff.
type ScalingRow struct {
	Name        string
	Rules       int
	BucketSize  int
	Submodels   int
	TrainTime   time.Duration
	Throughput  float64 // hw queries/cycle over the SRAM-resident RQ Array
	TputVsBase  float64 // relative to the base configuration
	TrainVsBase float64
}

// Scaling regenerates the §8 experiment: a 4.5x larger rule-set under (a)
// the same model, (b) doubled final-stage submodels, and (c) doubled bucket
// size, reporting training-time and lookup-throughput movements relative to
// the base rule-set.
func Scaling(sc Scale) ([]ScalingRow, error) {
	baseRules := sc.Rules["ripe"]
	bigRules := baseRules * 45 / 10

	run := func(name string, nRules int, cfg core.Config) (ScalingRow, error) {
		rs, err := workload.Generate(workload.RIPE(), nRules, sc.Seed)
		if err != nil {
			return ScalingRow{}, err
		}
		start := time.Now()
		eng, err := core.Build(rs, cfg)
		if err != nil {
			return ScalingRow{}, err
		}
		trainTime := time.Since(start)
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+10))
		if err != nil {
			return ScalingRow{}, err
		}
		// A bank-limited configuration (16 banks serve ≤ ~15 accesses per
		// cycle): higher error bounds on the larger rule-set translate into
		// longer searches and visible throughput loss, which the flagship
		// 32-bank design would mask.
		hwCfg := hwsim.Config{Engines: 2, Banks: 16, FSMs: 64, InferenceLatency: 22}
		res, err := hwsim.Simulate(eng.Model(), eng.Directory(), trace, hwCfg)
		if err != nil {
			return ScalingRow{}, err
		}
		widths := eng.Model().StageWidths()
		return ScalingRow{
			Name:       name,
			Rules:      nRules,
			BucketSize: cfg.BucketSize,
			Submodels:  widths[len(widths)-1],
			TrainTime:  trainTime,
			Throughput: res.Throughput(),
		}, nil
	}

	base, err := run("base rule-set", baseRules, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	sameCfg, err := run("4.5x rules, same model", bigRules, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	doubledModel := sc.engineConfig()
	doubledModel.Model.StageWidths = append([]int(nil), sc.Model.StageWidths...)
	doubledModel.Model.StageWidths[len(doubledModel.Model.StageWidths)-1] *= 2
	moreSub, err := run("4.5x rules, 2x submodels", bigRules, doubledModel)
	if err != nil {
		return nil, err
	}
	doubledBucket := sc.engineConfig()
	doubledBucket.BucketSize *= 2
	moreBW, err := run("4.5x rules, 2x bucket size", bigRules, doubledBucket)
	if err != nil {
		return nil, err
	}

	rows := []ScalingRow{base, sameCfg, moreSub, moreBW}
	for i := range rows {
		rows[i].TputVsBase = rows[i].Throughput / base.Throughput
		rows[i].TrainVsBase = float64(rows[i].TrainTime) / float64(base.TrainTime)
	}
	return rows, nil
}

// ScalingTable renders the tradeoff.
func ScalingTable(rows []ScalingRow) *Table {
	t := &Table{
		Title:  "§8: rule-set scaling tradeoff (lookup throughput vs DRAM bandwidth vs training time)",
		Header: []string{"configuration", "rules", "bucket", "final submodels", "train [ms]", "tput [q/cyc]", "tput vs base", "train vs base"},
		Notes: []string{
			"paper: 4.5x rules under the same model lose ~12% throughput at 1.6x training;",
			"2x submodels regain throughput within ~2% at ~2x extra training; 2x buckets keep throughput at ~1.2x training",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, fi(r.Rules), fi(r.BucketSize), fi(r.Submodels),
			fi(int(r.TrainTime.Milliseconds())), f3(r.Throughput),
			f2(r.TputVsBase) + "x", f2(r.TrainVsBase) + "x",
		})
	}
	return t
}
