package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"net/http/httputil"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/load"
	"neurolpm/internal/lpm"
	"neurolpm/internal/serve"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/wire"
	"neurolpm/internal/workload"
)

// WireCell is one row of the wire-vs-HTTP serving experiment (E29,
// DESIGN.md §17): closed-loop throughput and latency of the same sharded
// engine behind the HTTP/JSON endpoint and the binary wire protocol, with
// and without cross-connection coalescing. The bytes-per-query row is
// computed from the canonical encodings — no timing — and is the
// deterministic anchor the bench guard pins.
type WireCell struct {
	Config        string
	Conns         int
	QPS           float64
	P50us         float64
	P99us         float64
	VsHTTPX       float64 // qps ratio against the same-conns HTTP row
	BytesPerQuery float64
	Errors        int
	Mismatches    int
	Deterministic bool
}

// wireFanConns is the many-client fan-in the coalescer is built for.
const wireFanConns = 32

// wireMeasureWindow sizes each row's closed-loop measurement to the scale.
func wireMeasureWindow(sc Scale) time.Duration {
	switch {
	case sc.TraceLen >= 1_000_000:
		return 3 * time.Second
	case sc.TraceLen >= 100_000:
		return 800 * time.Millisecond
	default:
		return 300 * time.Millisecond
	}
}

// Wire runs E29: the ripe workload served by one sharded engine through
// three data planes — HTTP/JSON, wire without coalescing (window 0), wire
// with the default adaptive coalesce window — at a 32-connection closed-loop
// fan-in, plus single-connection rows for the light-load p50 parity story
// and the deterministic bytes-per-query ratio.
func Wire(sc Scale) ([]WireCell, error) {
	rs, err := workload.Generate(workload.Profiles()["ripe"], sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	traceLen := sc.TraceLen
	if traceLen > 100000 {
		traceLen = 100000 // closed-loop rows replay the trace cyclically
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(traceLen, sc.Seed+3))
	if err != nil {
		return nil, err
	}
	oracle := lpm.NewTrieMatcher(rs)
	expected := make([]load.Result, len(trace))
	for i, k := range trace {
		a, ok := oracle.Lookup(k)
		expected[i] = load.Result{Action: a, Matched: ok}
	}

	sh, err := shard.BuildUpdatable(rs, sc.engineConfig(), 4, 0)
	if err != nil {
		return nil, err
	}
	defer sh.Close()
	srv := serve.NewSharded(sh, telemetry.NewRegistry())

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	httpAddr := hs.Listener.Addr().String()

	startWire := func(window time.Duration) (*serve.WireServer, string, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		ws := serve.NewWireServer(srv, l, window)
		go ws.Serve()
		return ws, l.Addr().String(), nil
	}
	shutdown := func(ws *serve.WireServer) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
	}

	window := wireMeasureWindow(sc)
	run := func(config string, proto load.Proto, addr string, conns int) (WireCell, error) {
		rep, err := load.Run(load.Config{
			Addr: addr, Proto: proto, Conns: conns, Duration: window,
			Trace: trace, Width: rs.Width, Expected: expected, Seed: sc.Seed,
		})
		if err != nil {
			return WireCell{}, fmt.Errorf("%s: %w", config, err)
		}
		return WireCell{
			Config:     config,
			Conns:      conns,
			QPS:        rep.Achieved,
			P50us:      float64(rep.P50.Nanoseconds()) / 1e3,
			P99us:      float64(rep.P99.Nanoseconds()) / 1e3,
			Errors:     int(rep.Errors),
			Mismatches: int(rep.Mismatches),
		}, nil
	}

	var cells []WireCell
	httpFan, err := run("http/json", load.ProtoHTTP, httpAddr, wireFanConns)
	if err != nil {
		return nil, err
	}
	httpFan.VsHTTPX = 1
	cells = append(cells, httpFan)

	ws0, addr0, err := startWire(0)
	if err != nil {
		return nil, err
	}
	wire0, err := run("wire window=0", load.ProtoWire, addr0, wireFanConns)
	shutdown(ws0)
	if err != nil {
		return nil, err
	}
	wire0.VsHTTPX = ratio(wire0.QPS, httpFan.QPS)
	cells = append(cells, wire0)

	wsC, addrC, err := startWire(serve.DefaultCoalesceWindow)
	if err != nil {
		return nil, err
	}
	wireC, err := run("wire coalesce", load.ProtoWire, addrC, wireFanConns)
	if err != nil {
		shutdown(wsC)
		return nil, err
	}
	wireC.VsHTTPX = ratio(wireC.QPS, httpFan.QPS)
	cells = append(cells, wireC)

	// Light-load parity: one closed-loop connection against each plane. The
	// adaptive window must collapse so the lone client's p50 is not taxed by
	// a full coalesce wait.
	http1, err := run("http/json 1-conn", load.ProtoHTTP, httpAddr, 1)
	if err != nil {
		shutdown(wsC)
		return nil, err
	}
	http1.VsHTTPX = 1
	cells = append(cells, http1)
	wire1, err := run("wire coalesce 1-conn", load.ProtoWire, addrC, 1)
	shutdown(wsC)
	if err != nil {
		return nil, err
	}
	wire1.VsHTTPX = ratio(wire1.QPS, http1.QPS)
	cells = append(cells, wire1)

	// Deterministic anchor: canonical per-query byte cost of each plane for
	// one representative lookup — HTTP request + JSON response as actually
	// serialized, vs the wire lookup + result frames.
	hb, wb := wireBytesPerQuery(srv, trace[0])
	cells[0].BytesPerQuery = hb
	for i := 1; i < len(cells); i++ {
		cells[i].BytesPerQuery = wb
	}
	cells[3].BytesPerQuery = hb
	cells = append(cells, WireCell{
		Config:        "bytes/query ratio",
		BytesPerQuery: wb,
		VsHTTPX:       ratio(hb, wb),
		Deterministic: true,
	})
	return cells, nil
}

// wireBytesPerQuery computes the canonical on-the-wire byte cost of one
// lookup on each plane: the HTTP GET request (as a client serializes it)
// plus the server's actual JSON response, and the wire request frame plus
// its result frame. Purely deterministic — it reruns identically at any
// scale, which is what lets the bench guard pin the ratio.
func wireBytesPerQuery(srv *serve.Server, k keys.Value) (httpBytes, wireBytes float64) {
	req := httptest.NewRequest("GET", "/lookup?key="+k.String(), nil)
	req.Host = "lpmserve"
	reqDump, _ := httputil.DumpRequest(req, false)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	respDump, _ := httputil.DumpResponse(rec.Result(), true)
	httpBytes = float64(len(reqDump) + len(respDump))

	lookup := wire.AppendLookup(nil, 1, k)
	result := wire.AppendResult(nil, 1, 42, true)
	wireBytes = float64(len(lookup) + len(result))
	return httpBytes, wireBytes
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// WireTable renders E29.
func WireTable(cells []WireCell) *Table {
	t := &Table{
		Title:  "Wire data plane vs HTTP/JSON: closed-loop fan-in, coalescing, and per-query bytes (ripe workload)",
		Header: []string{"config", "conns", "qps", "p50 µs", "p99 µs", "vs http x", "bytes/query", "errors", "mismatches"},
		Notes: []string{
			"DESIGN.md §17: same sharded engine and batchStack entry point behind every row; only the data plane differs",
			"wire coalesce gathers lookups from different connections within the adaptive window into one batch",
			"1-conn rows: the adaptive window collapses under light load, so the lone client's p50 stays at parity",
			"bytes/query ratio row is deterministic (canonical encodings, no timing) — the bench guard pins it",
			"mismatches are disagreements with the trie oracle and must be 0 in every row",
		},
	}
	for _, c := range cells {
		if c.Deterministic {
			t.Rows = append(t.Rows, []string{
				c.Config, "-", "-", "-", "-", f2(c.VsHTTPX), f1(c.BytesPerQuery), "-", "-",
			})
			continue
		}
		t.Rows = append(t.Rows, []string{
			c.Config, fi(c.Conns), f1(c.QPS), f1(c.P50us), f1(c.P99us),
			f2(c.VsHTTPX), f1(c.BytesPerQuery), fi(c.Errors), fi(c.Mismatches),
		})
	}
	return t
}
