package experiments

import (
	"neurolpm/internal/core"
	"neurolpm/internal/hwsim"
	"neurolpm/internal/workload"
)

// DesignSpaceRow compares the two §6.2 secondary-search organizations the
// paper weighed: a log-depth staged pipeline versus a pool of decoupled
// FSMs (the chosen design).
type DesignSpaceRow struct {
	Family           string
	StagedThroughput float64
	StagedLatency    float64
	StagedStalls     uint64
	FSMThroughput    float64
	FSMLatency       float64
	FSMStages        int // pipeline depth the staged design needed
}

// DesignSpace runs both designs on the same model, traces and bank count
// (16 banks, 48 FSMs for the FSM pool, 1 engine each).
func DesignSpace(sc Scale) ([]DesignSpaceRow, error) {
	var rows []DesignSpaceRow
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		eng, err := core.Build(rs, core.Config{Model: sc.Model})
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+15))
		if err != nil {
			return nil, err
		}
		staged, err := hwsim.SimulatePipelined(eng.Model(), eng.Ranges(), trace, hwsim.PipelinedConfig{
			Engines: 1, Banks: 16, InferenceLatency: 22,
		})
		if err != nil {
			return nil, err
		}
		fsm, err := hwsim.Simulate(eng.Model(), eng.Ranges(), trace, hwsim.Config{
			Engines: 1, Banks: 16, FSMs: 48, InferenceLatency: 22,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DesignSpaceRow{
			Family:           family,
			StagedThroughput: staged.Throughput(),
			StagedLatency:    staged.AvgLatency(),
			StagedStalls:     staged.StallCycles,
			FSMThroughput:    fsm.Throughput(),
			FSMLatency:       fsm.AvgLatency(),
			FSMStages:        staged.Stages,
		})
	}
	return rows, nil
}

// DesignSpaceTable renders the comparison.
func DesignSpaceTable(rows []DesignSpaceRow) *Table {
	t := &Table{
		Title:  "§6.2 design space: staged search pipeline vs FSM pool (1 engine, 16 banks)",
		Header: []string{"family", "staged tput", "staged lat [cyc]", "staged stalls", "FSM tput", "FSM lat [cyc]", "stage depth"},
		Notes: []string{
			"the paper chose FSMs for simplicity; the staged design stalls whole-pipeline on any bank conflict",
			"FSM column uses 48 FSMs (the paper's best single-engine point)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Family, f3(r.StagedThroughput), f1(r.StagedLatency),
			fu(r.StagedStalls), f3(r.FSMThroughput), f1(r.FSMLatency), fi(r.FSMStages),
		})
	}
	return t
}
