package experiments

import (
	"fmt"
	"sort"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/shard"
	"neurolpm/internal/workload"
)

// FaultsCell is one phase of the retrain-failure storm experiment (E24,
// DESIGN.md §11): lookup latency quantiles while the background committer
// is healthy, while every retrain is failing (readers must ride the last
// good engines + delta overlay), and after recovery.
type FaultsCell struct {
	Phase      string
	P50ns      float64
	P99ns      float64
	MLookupsPS float64
	Failures   uint64 // commit failures recorded during the phase
	Pending    int    // delta-buffer rules at the end of the phase
	Mismatches int    // disagreements with the merged-rule-set oracle (must be 0)
}

// faultsShards and faultsInsertsPerPhase size the storm: enough shards that
// a failing one is a minority, enough fresh rules that the delta overlay is
// genuinely exercised on the query path.
const (
	faultsShards          = 8
	faultsInsertsPerPhase = 64
)

// FaultStorm builds a sharded updatable engine on the ripe workload with a
// fault injector on the retrain site, then measures lookup behaviour in
// three phases:
//
//	baseline — no faults; inserted rules are committed by the background
//	           committer as usual.
//	storm    — every retrain fails (with added latency); commits keep
//	           retrying on the backoff schedule while lookups continue.
//	recovery — faults cleared; an explicit CommitAll drains every shard and
//	           the engine must match the merged oracle with nothing pending.
//
// Every phase verifies the full trace against a trie oracle over the merged
// rule-set; any mismatch is a correctness failure of the degraded mode.
func FaultStorm(sc Scale) ([]FaultsCell, error) {
	rs, err := workload.Generate(workload.Profiles()["ripe"], sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+2))
	if err != nil {
		return nil, err
	}
	in := fault.NewInjector(uint64(sc.Seed) | 1)
	cfg := sc.engineConfig()
	cfg.Fault = in.Hook()
	sh, err := shard.BuildUpdatable(rs, cfg, faultsShards, 0)
	if err != nil {
		return nil, err
	}
	sh.SetCommitBackoff(core.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond})
	sh.StartAutoCommit(10*time.Millisecond, faultsInsertsPerPhase/4)

	merged := append([]lpm.Rule(nil), rs.Rules...)
	// The churn comes from the shared open-loop update generator
	// (workload.GenerateUpdates, also replayed by cmd/lpmload): insert-only,
	// one fresh full-width site per rule, so each phase's inserts fold
	// directly into the merged oracle.
	stream, err := workload.GenerateUpdates(rs, workload.UpdateConfig{
		Count:      3 * faultsInsertsPerPhase,
		InsertOnly: true,
		ActionBase: 1 << 20,
		Seed:       sc.Seed | 1,
	})
	if err != nil {
		return nil, err
	}
	next := 0
	// insertFresh queues the stream's next n rules (visible immediately via
	// the delta overlay) and merges them into the logical rule-set.
	insertFresh := func(n int) error {
		for ; n > 0; n-- {
			r := stream.Updates[next].Rule
			next++
			if err := sh.Insert(r); err != nil {
				return fmt.Errorf("insert during storm: %w", err)
			}
			merged = append(merged, r)
		}
		return nil
	}

	failuresSoFar := uint64(0)
	runPhase := func(name string) (FaultsCell, error) {
		cell := FaultsCell{Phase: name}
		if err := insertFresh(faultsInsertsPerPhase); err != nil {
			return cell, err
		}
		// Latency quantiles: one timed Lookup per sampled key, while the
		// background committer does whatever the phase's faults dictate.
		sample := trace[:min(len(trace), 50000)]
		lat := make([]int64, len(sample))
		start := time.Now()
		for i, k := range sample {
			t0 := time.Now()
			sh.Lookup(k)
			lat[i] = time.Since(t0).Nanoseconds()
		}
		elapsed := time.Since(start)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		cell.P50ns = float64(lat[len(lat)/2])
		cell.P99ns = float64(lat[len(lat)*99/100])
		cell.MLookupsPS = float64(len(sample)) / elapsed.Seconds() / 1e6

		// Correctness under the phase's fault regime: the full trace plus
		// every inserted rule's own prefix, against the merged oracle.
		set, err := lpm.NewRuleSet(rs.Width, merged)
		if err != nil {
			return cell, err
		}
		oracle := lpm.NewTrieMatcher(set)
		check := append([]keys.Value(nil), trace...)
		for _, r := range merged[rs.Len():] {
			check = append(check, r.Prefix)
		}
		for _, k := range check {
			got, ok := sh.Lookup(k)
			want, wantOK := oracle.Lookup(k)
			if ok != wantOK || (wantOK && got != want) {
				cell.Mismatches++
			}
		}
		total := uint64(0)
		for _, st := range sh.Statuses() {
			total += st.Failures
		}
		cell.Failures, failuresSoFar = total-failuresSoFar, total
		cell.Pending = sh.PendingInserts()
		return cell, nil
	}

	var out []FaultsCell
	// Baseline: healthy committer.
	cell, err := runPhase("baseline")
	if err != nil {
		return nil, err
	}
	out = append(out, cell)

	// Storm: every retrain fails, and takes extra wall time doing so.
	in.FailProb(fault.SiteRetrain, 1)
	in.SetLatency(fault.SiteRetrain, 2*time.Millisecond)
	cell, err = runPhase("storm")
	if err != nil {
		return nil, err
	}
	out = append(out, cell)

	// Recovery: clear the faults and drain explicitly; queued updates must
	// land exactly once and nothing may stay pending.
	in.Clear(fault.SiteRetrain)
	if err := sh.CommitAll(); err != nil {
		return nil, fmt.Errorf("recovery commit: %w", err)
	}
	cell, err = runPhase("recovery")
	if err != nil {
		return nil, err
	}
	if err := sh.CommitAll(); err != nil {
		return nil, fmt.Errorf("final drain: %w", err)
	}
	cell.Pending = sh.PendingInserts()
	out = append(out, cell)

	if err := sh.Close(); err != nil {
		return nil, fmt.Errorf("close after recovery: %w", err)
	}
	return out, nil
}

// FaultsTable renders E24.
func FaultsTable(cells []FaultsCell) *Table {
	t := &Table{
		Title:  "Retrain-failure storm: lookup latency and correctness per phase (ripe workload)",
		Header: []string{"phase", "p50 ns", "p99 ns", "Mlookups/s", "commit failures", "pending", "oracle mismatches"},
		Notes: []string{
			"§6.5 + DESIGN.md §11: readers answer from the last good engine + delta overlay while commits fail",
			"mismatches must be 0 in every phase — degraded mode never serves a wrong or torn answer",
			"recovery drains via explicit CommitAll: pending must be 0 and each queued rule applied exactly once",
		},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Phase, f1(c.P50ns), f1(c.P99ns), f2(c.MLookupsPS),
			fmt.Sprintf("%d", c.Failures), fi(c.Pending), fi(c.Mismatches),
		})
	}
	return t
}
