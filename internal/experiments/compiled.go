package experiments

import (
	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/workload"
)

// CompiledCell is one row of E23/E27, the query-plane speedup experiment:
// the same engine queried through the reference path (Model.Predict's
// pointer-chasing LUT walk + interface-dispatched bounded search), the
// compiled float32 paths, and the quantized int32 fixed-point paths
// (single-key and software-pipelined batch for both hot planes).
type CompiledCell struct {
	Path       string // "reference", "compiled", "compiled-batch", "quantized", "quantized-batch"
	BatchSize  int    // 1 for the single-key paths
	MLookupsPS float64
	Speedup    float64 // vs the reference row
	Mismatches int     // disagreements with the trie oracle (must be 0)
	BankBytes  int     // inference coefficient-bank footprint; 0 for reference
}

// CompiledBatchSize is E23's batch unit, matching the sharded fan-out unit
// so the two experiments' batch rows are comparable.
const CompiledBatchSize = 256

// CompiledSpeedup measures the compiled plane against the reference
// arithmetic on one bucketized RIPE-profile engine. Every traced answer on
// every path is checked against the trie oracle, so the table doubles as a
// full-trace differential test of the bit-identity contract.
func CompiledSpeedup(sc Scale) ([]CompiledCell, error) {
	rs, err := workload.Generate(workload.Profiles()["ripe"], sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+3))
	if err != nil {
		return nil, err
	}
	oracle := lpm.NewTrieMatcher(rs)
	wantAction := make([]uint64, len(trace))
	wantMatch := make([]bool, len(trace))
	for i, k := range trace {
		wantAction[i], wantMatch[i] = oracle.Lookup(k)
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}

	check := func(i int, a uint64, ok bool, cell *CompiledCell) {
		if a != wantAction[i] || ok != wantMatch[i] {
			cell.Mismatches++
		}
	}

	// All five rows run the unified stack executor (DESIGN.md §14): Lookup
	// and LookupReference are the stack's inlined single-key entry points
	// (the zero and reference StackConfigs), the quantized rows dispatch on
	// the quantized StackConfig, and the batch rows go through
	// LookupBatchStack — the same arm every batch wrapper reaches.
	compStack := plane.StackConfig{}
	quantStack := plane.StackConfig{Inference: plane.Quantized}
	compBank := eng.Compiled().BankBytes()
	quantBank := eng.Quantized().BankBytes()

	ref := CompiledCell{Path: "reference", BatchSize: 1}
	for i, k := range trace {
		a, ok := eng.LookupReference(k)
		check(i, a, ok, &ref)
	}

	single := CompiledCell{Path: "compiled", BatchSize: 1, BankBytes: compBank}
	for i, k := range trace {
		a, ok := eng.Lookup(k)
		check(i, a, ok, &single)
	}

	batch := CompiledCell{Path: "compiled-batch", BatchSize: CompiledBatchSize, BankBytes: compBank}
	var out []core.BatchResult
	for lo := 0; lo < len(trace); lo += CompiledBatchSize {
		hi := min(lo+CompiledBatchSize, len(trace))
		out = eng.LookupBatchStack(compStack, trace[lo:hi], out[:0], cachesim.Null{}, nil, 0)
		for i, res := range out {
			check(lo+i, res.Action, res.Matched, &batch)
		}
	}

	qsingle := CompiledCell{Path: "quantized", BatchSize: 1, BankBytes: quantBank}
	for i, k := range trace {
		a, ok := eng.LookupQuantized(k)
		check(i, a, ok, &qsingle)
	}

	qbatch := CompiledCell{Path: "quantized-batch", BatchSize: CompiledBatchSize, BankBytes: quantBank}
	for lo := 0; lo < len(trace); lo += CompiledBatchSize {
		hi := min(lo+CompiledBatchSize, len(trace))
		out = eng.LookupBatchStack(quantStack, trace[lo:hi], out[:0], cachesim.Null{}, nil, 0)
		for i, res := range out {
			check(lo+i, res.Action, res.Matched, &qbatch)
		}
	}

	// Drift-immune rates: the five variants interleave rounds and keep each
	// one's best, so the speedup ratios survive thermal/background drift.
	rates := measureRatesInterleaved(trace, []func([]keys.Value){
		func(ks []keys.Value) {
			for _, k := range ks {
				eng.LookupReference(k)
			}
		},
		func(ks []keys.Value) {
			for _, k := range ks {
				eng.Lookup(k)
			}
		},
		func(ks []keys.Value) {
			for lo := 0; lo < len(ks); lo += CompiledBatchSize {
				out = eng.LookupBatchStack(compStack, ks[lo:min(lo+CompiledBatchSize, len(ks))], out[:0], cachesim.Null{}, nil, 0)
			}
		},
		func(ks []keys.Value) {
			for _, k := range ks {
				eng.LookupQuantized(k)
			}
		},
		func(ks []keys.Value) {
			for lo := 0; lo < len(ks); lo += CompiledBatchSize {
				out = eng.LookupBatchStack(quantStack, ks[lo:min(lo+CompiledBatchSize, len(ks))], out[:0], cachesim.Null{}, nil, 0)
			}
		},
	})
	ref.MLookupsPS, single.MLookupsPS, batch.MLookupsPS = rates[0], rates[1], rates[2]
	qsingle.MLookupsPS, qbatch.MLookupsPS = rates[3], rates[4]
	ref.Speedup = 1
	single.Speedup = single.MLookupsPS / ref.MLookupsPS
	batch.Speedup = batch.MLookupsPS / ref.MLookupsPS
	qsingle.Speedup = qsingle.MLookupsPS / ref.MLookupsPS
	qbatch.Speedup = qbatch.MLookupsPS / ref.MLookupsPS

	return []CompiledCell{ref, single, batch, qsingle, qbatch}, nil
}

// CompiledSpeedupTable renders E23/E27.
func CompiledSpeedupTable(cells []CompiledCell) *Table {
	t := &Table{
		Title:  "Query planes: compiled float32 and quantized int32 fixed-point vs reference path (ripe workload)",
		Header: []string{"path", "batch", "Mlookups/s", "speedup", "oracle mismatches", "coeff bank B"},
		Notes: []string{
			"same engine, same trace: only the query arithmetic differs",
			"compiled is bit-identical to reference (FuzzCompiledVsModel, Engine.Verify); quantized is",
			"bound-included (FuzzQuantizedVsModel): its int32 bounds cover its int32 predictions, so the",
			"bounded search lands on the same true index — mismatches must be 0 on every row",
			"batch rows software-pipeline inference across keys (PredictBatch)",
		},
	}
	var compBank, quantBank int
	for _, c := range cells {
		bank := "-"
		if c.BankBytes > 0 {
			bank = fi(c.BankBytes)
		}
		switch c.Path {
		case "compiled":
			compBank = c.BankBytes
		case "quantized":
			quantBank = c.BankBytes
		}
		t.Rows = append(t.Rows, []string{
			c.Path, fi(c.BatchSize), f2(c.MLookupsPS), f2(c.Speedup), fi(c.Mismatches), bank,
		})
	}
	if compBank > 0 && quantBank > 0 {
		t.Notes = append(t.Notes, "quantized bank is "+f2(float64(quantBank)/float64(compBank))+
			"x the float32 bank (int16 coefficients; target <= 0.60x)")
	}
	return t
}
