package experiments

import (
	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/workload"
)

// CompiledCell is one row of E23, the compiled-query-plane speedup
// experiment: the same engine queried through the reference path
// (Model.Predict's pointer-chasing LUT walk + interface-dispatched bounded
// search), the compiled single-key path, and the compiled batch path.
type CompiledCell struct {
	Path       string // "reference", "compiled", "compiled-batch"
	BatchSize  int    // 1 for the single-key paths
	MLookupsPS float64
	Speedup    float64 // vs the reference row
	Mismatches int     // disagreements with the trie oracle (must be 0)
}

// CompiledBatchSize is E23's batch unit, matching the sharded fan-out unit
// so the two experiments' batch rows are comparable.
const CompiledBatchSize = 256

// CompiledSpeedup measures the compiled plane against the reference
// arithmetic on one bucketized RIPE-profile engine. Every traced answer on
// every path is checked against the trie oracle, so the table doubles as a
// full-trace differential test of the bit-identity contract.
func CompiledSpeedup(sc Scale) ([]CompiledCell, error) {
	rs, err := workload.Generate(workload.Profiles()["ripe"], sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+3))
	if err != nil {
		return nil, err
	}
	oracle := lpm.NewTrieMatcher(rs)
	wantAction := make([]uint64, len(trace))
	wantMatch := make([]bool, len(trace))
	for i, k := range trace {
		wantAction[i], wantMatch[i] = oracle.Lookup(k)
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}

	check := func(i int, a uint64, ok bool, cell *CompiledCell) {
		if a != wantAction[i] || ok != wantMatch[i] {
			cell.Mismatches++
		}
	}

	// All three rows run the unified stack executor (DESIGN.md §14): Lookup
	// and LookupReference are the stack's inlined single-key entry points
	// (the zero and reference StackConfigs), and the batch row dispatches on
	// an explicit config through LookupBatchStack — the same arm every batch
	// wrapper reaches.
	compStack := plane.StackConfig{}

	ref := CompiledCell{Path: "reference", BatchSize: 1}
	for i, k := range trace {
		a, ok := eng.LookupReference(k)
		check(i, a, ok, &ref)
	}

	single := CompiledCell{Path: "compiled", BatchSize: 1}
	for i, k := range trace {
		a, ok := eng.Lookup(k)
		check(i, a, ok, &single)
	}

	batch := CompiledCell{Path: "compiled-batch", BatchSize: CompiledBatchSize}
	var out []core.BatchResult
	for lo := 0; lo < len(trace); lo += CompiledBatchSize {
		hi := min(lo+CompiledBatchSize, len(trace))
		out = eng.LookupBatchStack(compStack, trace[lo:hi], out[:0], cachesim.Null{}, nil, 0)
		for i, res := range out {
			check(lo+i, res.Action, res.Matched, &batch)
		}
	}

	// Drift-immune rates: the three variants interleave rounds and keep each
	// one's best, so the speedup ratios survive thermal/background drift.
	rates := measureRatesInterleaved(trace, []func([]keys.Value){
		func(ks []keys.Value) {
			for _, k := range ks {
				eng.LookupReference(k)
			}
		},
		func(ks []keys.Value) {
			for _, k := range ks {
				eng.Lookup(k)
			}
		},
		func(ks []keys.Value) {
			for lo := 0; lo < len(ks); lo += CompiledBatchSize {
				out = eng.LookupBatchStack(compStack, ks[lo:min(lo+CompiledBatchSize, len(ks))], out[:0], cachesim.Null{}, nil, 0)
			}
		},
	})
	ref.MLookupsPS, single.MLookupsPS, batch.MLookupsPS = rates[0], rates[1], rates[2]
	ref.Speedup = 1
	single.Speedup = single.MLookupsPS / ref.MLookupsPS
	batch.Speedup = batch.MLookupsPS / ref.MLookupsPS

	return []CompiledCell{ref, single, batch}, nil
}

// CompiledSpeedupTable renders E23.
func CompiledSpeedupTable(cells []CompiledCell) *Table {
	t := &Table{
		Title:  "Compiled query plane: flat inference + devirtualized search vs reference path (ripe workload)",
		Header: []string{"path", "batch", "Mlookups/s", "speedup", "oracle mismatches"},
		Notes: []string{
			"same engine, same trace: only the query arithmetic's layout differs",
			"results are bit-identical by construction (FuzzCompiledVsModel, Engine.Verify); mismatches must be 0",
			"compiled-batch software-pipelines inference across keys (Compiled.PredictBatch)",
		},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Path, fi(c.BatchSize), f2(c.MLookupsPS), f2(c.Speedup), fi(c.Mismatches),
		})
	}
	return t
}
