package experiments

import (
	"neurolpm/internal/core"
	"neurolpm/internal/hwsim"
	"neurolpm/internal/workload"
)

// ReplicasResult reproduces the §10.4 memory-budget argument: NeuroLPM's
// BRAM footprint is small enough that several engine replicas fit in the
// memory SAIL alone requires, multiplying aggregate throughput.
type ReplicasResult struct {
	NeuroLPMBRAM      int     // bytes per NeuroLPM instance (model + RQ Array)
	SAILBRAM          int     // bytes of SAIL's tables
	Replicas          int     // NeuroLPM instances within SAIL's budget
	SingleMpps        float64 // one 1-engine/16-bank/48-FSM instance at 100MHz
	AggregateMpps     float64 // replicas × single
	SAILMpps          float64 // SAIL's best case: 200Mpps at 200MHz (§10.2)
	SpareBRAMForCache int     // leftover bytes usable as DRAM cache
}

// Replicas sizes the replication argument on the RIPE-like rule-set using
// the paper's per-replica configuration (one RQRMI module, 16 banks, 48
// FSMs).
func Replicas(sc Scale) (*ReplicasResult, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.HWTraceLen, sc.Seed+14))
	if err != nil {
		return nil, err
	}
	cfg := hwsim.Config{Engines: 1, Banks: 16, FSMs: 48, InferenceLatency: 22}
	res, err := hwsim.Simulate(eng.Model(), eng.Directory(), trace, cfg)
	if err != nil {
		return nil, err
	}
	out := &ReplicasResult{
		NeuroLPMBRAM: eng.SRAMUsage().Total,
		// SAIL's BRAM demand: its static tables (Table 1 allocates 2439KB).
		SAILBRAM:   8*1024 + 64*1024 + 128*1024 + 2*1024*1024 + 192*1024,
		SingleMpps: res.MppsAt(100e6),
		SAILMpps:   200,
	}
	if out.NeuroLPMBRAM > 0 {
		out.Replicas = out.SAILBRAM / out.NeuroLPMBRAM
	}
	if out.Replicas > 4 {
		// The paper instantiates four replicas and keeps the remainder as
		// cache; follow that design point.
		out.Replicas = 4
	}
	out.AggregateMpps = float64(out.Replicas) * out.SingleMpps
	out.SpareBRAMForCache = out.SAILBRAM - out.Replicas*out.NeuroLPMBRAM
	return out, nil
}

// ReplicasTable renders the comparison.
func ReplicasTable(r *ReplicasResult) *Table {
	return &Table{
		Title:  "§10.4: NeuroLPM replicas within SAIL's memory budget",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"NeuroLPM BRAM per instance [KB]", fi(r.NeuroLPMBRAM / 1024)},
			{"SAIL BRAM [KB]", fi(r.SAILBRAM / 1024)},
			{"replicas in SAIL's budget", fi(r.Replicas)},
			{"single replica [Mpps @100MHz]", f1(r.SingleMpps)},
			{"aggregate [Mpps @100MHz]", f1(r.AggregateMpps)},
			{"SAIL best case [Mpps @200MHz]", f1(r.SAILMpps)},
			{"spare BRAM for cache [KB]", fi(r.SpareBRAMForCache / 1024)},
		},
		Notes: []string{"paper: four replicas reach 400Mpps at 100MHz, 2x SAIL at 200MHz, with 279KB spare"},
	}
}
