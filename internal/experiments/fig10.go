package experiments

import (
	"fmt"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/workload"
)

// Fig10Cell is the cache miss rate of one (family, bucket size) point.
type Fig10Cell struct {
	Family      string
	BucketBytes int
	MissRatePct float64
	Ran         bool
}

// Fig10BucketBytes are the paper's x-axis points (bucket size in bytes; a
// 4-byte range bound per entry).
var Fig10BucketBytes = []int{8, 16, 32, 64}

// Fig10SRAM is the fixed budget shared by directory and cache.
const Fig10SRAM = 2 * 1024 * 1024

// Fig10 regenerates Figure 10: NeuroLPM cache miss rate for 2MB SRAM under
// different bucket sizes. As in the paper, the cache line size equals the
// bucket size in this experiment (only).
func Fig10(sc Scale) ([]Fig10Cell, error) {
	var out []Fig10Cell
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+6))
		if err != nil {
			return nil, err
		}
		for _, bb := range Fig10BucketBytes {
			cell := Fig10Cell{Family: family, BucketBytes: bb}
			cfg := sc.engineConfig()
			cfg.BucketSize = bb / 4
			eng, err := core.Build(rs, cfg)
			if err != nil {
				return nil, err
			}
			cacheBytes := Fig10SRAM - eng.SRAMUsage().Total
			if cacheBytes > 0 {
				cache, err := cachesim.New(cachesim.Config{
					SizeBytes: cacheBytes, LineSize: bb, Ways: 2,
				})
				if err == nil {
					for _, k := range trace {
						eng.LookupMem(k, cache)
					}
					cell.Ran = true
					cell.MissRatePct = 100 * cache.Stats().MissRate()
				}
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Fig10Table renders the grid.
func Fig10Table(cells []Fig10Cell) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 10: NeuroLPM cache miss rate, %dMB SRAM, line size = bucket size", Fig10SRAM/(1024*1024)),
		Header: []string{"family", "bucket [B]", "miss rate [%]"},
		Notes:  []string{"paper: miss rate improves up to 32B buckets, then grows again (lost spatial locality)"},
	}
	for _, c := range cells {
		row := []string{c.Family, fi(c.BucketBytes)}
		if c.Ran {
			row = append(row, f2(c.MissRatePct))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
