package experiments

import (
	"fmt"
	"slices"
	"time"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/hwsim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/shard"
	"neurolpm/internal/tier"
	"neurolpm/internal/workload"
)

// TieredCell is one row of E28, the tiered-memory bucket store experiment
// (DESIGN.md §16): fast-tier footprint and analytic tail latency of
// hot/cold bucket placement under a skewed trace, against the uniform
// all-fast baseline, at the 10M-rule scale the tentpole targets.
type TieredCell struct {
	Config      string
	Rules       int
	FastMiB     float64
	FastSavingX float64 // uniform fast-tier bytes / this row's fast-tier bytes
	ColdPct     float64 // cold fetches as % of the measured pass's queries
	P99Cycles   uint64
	HeadroomX   float64 // all-hot p99 cycles / this row's p99 cycles
	Promotions  int
	Demotions   int
	Mismatches  int // disagreements with the trie oracle (must be 0)
	// Deterministic marks rows whose ratios are seed-reproducible (analytic
	// cycle model + burst-driven placement); only these feed the bench
	// guard. The sketch row rides the 1:64 hotness sampling phase, which
	// depends on global lookup counts, so its ratios are informative only.
	Deterministic bool
}

// tieredRules picks the rule count: the tentpole's 10M at paper scale,
// the ripe quota otherwise.
func tieredRules(sc Scale) int {
	if sc.TraceLen >= PaperScale().TraceLen {
		return 10_000_000
	}
	return sc.Rules["ripe"]
}

// Tiered measures the two-tier bucket store on one RIPE-profile engine:
//
//   - "all-hot": every bucket in the fast tier — the uniform baseline whose
//     footprint and p99 the other rows are normalized against.
//   - "tiered": the deterministic placement regime. Everything demotes, one
//     warm-up pass feeds the burst counters, and a burst-driven rebalance
//     promotes exactly the trace's working set. The measured pass must see
//     zero cold fetches (p99 headroom 1.0) while the fast tier holds only
//     the touched buckets.
//   - "tiered sketch": placement handed to the decaying hotness sketch
//     (DemoteBelow=1) with rebalance passes between trace replays — the
//     regime the lpmserve background rebalancer runs in. Sampled, so
//     informative rather than guarded.
//   - "+storm": the fault matrix row (always quick-sized — correctness, not
//     scale): a tiered sharded updatable under 100% retrain failure with
//     migrations churning mid-storm, checked against the merged oracle.
//
// Every pass checks every traced answer against the trie oracle.
func Tiered(sc Scale) ([]TieredCell, error) {
	n := tieredRules(sc)
	rs, err := workload.Generate(workload.RIPE(), n, sc.Seed)
	if err != nil {
		return nil, err
	}
	cfg := sc.engineConfig()
	cfg.Tier = tier.Config{Enabled: true}
	eng, err := core.Build(rs, cfg)
	if err != nil {
		return nil, err
	}
	ts := eng.TierStore()
	oracle := lpm.NewTrieMatcher(rs)
	trace, err := workload.GenerateTrace(rs, workload.TraceConfig{
		Queries: sc.TraceLen, ZipfS: 1.2, Locality: 0.9, Window: 256, Seed: sc.Seed + 6})
	if err != nil {
		return nil, err
	}
	lat := hwsim.DefaultTierLatency()
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	wantA := make([]uint64, len(trace))
	wantM := make([]bool, len(trace))
	for i, k := range trace {
		wantA[i], wantM[i] = oracle.Lookup(k)
	}

	// pass replays the trace once, charging each query through the analytic
	// tier latency model and checking it against the oracle.
	cycles := make([]uint64, len(trace))
	pass := func() (p99 uint64, coldPct float64, mism int) {
		cold := 0
		for i, k := range trace {
			tr := eng.LookupMem(k, cachesim.Null{})
			if tr.Action != wantA[i] || tr.Matched != wantM[i] {
				mism++
			}
			if tr.ColdRead {
				cold++
			}
			cycles[i] = lat.QueryCycles(tr.SRAMProbes, tr.BucketRead, tr.ColdRead)
		}
		slices.Sort(cycles)
		return cycles[len(cycles)*99/100], 100 * float64(cold) / float64(len(trace)), mism
	}
	mib := func(b int) float64 { return float64(b) / (1 << 20) }
	uniformBytes := ts.Stats().FastBytes // all-fast at build time = the uniform footprint

	var out []TieredCell

	// All-hot baseline.
	p99Hot, coldPct, mism := pass()
	st := ts.Stats()
	out = append(out, TieredCell{
		Config: "all-hot", Rules: rs.Len(), FastMiB: mib(st.FastBytes),
		FastSavingX: 1, ColdPct: coldPct, P99Cycles: p99Hot, HeadroomX: 1,
		Mismatches: mism, Deterministic: true,
	})

	// Deterministic tiered regime: demote everything, warm the burst
	// counters with one full oracle-checked pass, promote the working set.
	ts.DemoteAll()
	_, warmCold, warmMism := pass()
	if warmCold == 0 {
		return nil, fmt.Errorf("tiered: warm-up pass on an all-cold store saw no cold fetches")
	}
	promoted, _ := ts.Rebalance(nil)
	p99, coldPct, mism2 := pass()
	st = ts.Stats()
	out = append(out, TieredCell{
		Config: "tiered", Rules: rs.Len(), FastMiB: mib(st.FastBytes),
		FastSavingX: float64(uniformBytes) / float64(st.FastBytes),
		ColdPct:     coldPct, P99Cycles: p99,
		HeadroomX:  float64(p99Hot) / float64(p99),
		Promotions: promoted, Mismatches: warmMism + mism2, Deterministic: true,
	})

	// Sketch-driven regime: a few replay+rebalance rounds let the decaying
	// sketch and the burst counters converge on the working set.
	prom, dem, roundMism := 0, 0, 0
	for round := 0; round < 3; round++ {
		_, _, m := pass()
		roundMism += m
		p, d := eng.RebalanceTier()
		prom, dem = prom+p, dem+d
	}
	p99, coldPct, mism3 := pass()
	mism3 += roundMism
	st = ts.Stats()
	out = append(out, TieredCell{
		Config: "tiered sketch", Rules: rs.Len(), FastMiB: mib(st.FastBytes),
		FastSavingX: float64(uniformBytes) / float64(st.FastBytes),
		ColdPct:     coldPct, P99Cycles: p99,
		HeadroomX:  float64(p99Hot) / float64(p99),
		Promotions: prom, Demotions: dem, Mismatches: mism3,
	})

	storm, err := tieredStormRow(sc)
	if err != nil {
		return nil, err
	}
	return append(out, storm), nil
}

// tieredStormRow extends the update-storm matrix (E24/E25) to the tiered
// configuration: a tiered sharded updatable engine under 100% retrain
// failure, with every bucket demoted and rebalance passes migrating between
// check passes. Placement churn is quick-sized deliberately — the property
// is scale-independent correctness, not footprint.
func tieredStormRow(sc Scale) (TieredCell, error) {
	n := min(sc.Rules["ripe"], QuickScale().Rules["ripe"])
	traceLen := min(sc.TraceLen, QuickScale().TraceLen)
	cell := TieredCell{Config: "tiered +storm", Rules: n, FastSavingX: 1, HeadroomX: 1, Deterministic: true}
	rs, err := workload.Generate(workload.RIPE(), n, sc.Seed)
	if err != nil {
		return cell, err
	}
	trace, err := workload.GenerateTrace(rs, workload.TraceConfig{
		Queries: traceLen, ZipfS: 1.2, Locality: 0.9, Window: 256, Seed: sc.Seed + 7})
	if err != nil {
		return cell, err
	}
	in := fault.NewInjector(uint64(sc.Seed) | 1)
	cfg := sc.engineConfig()
	cfg.Fault = in.Hook()
	cfg.Tier = tier.Config{Enabled: true}
	sh, err := shard.BuildUpdatable(rs, cfg, 4, 0)
	if err != nil {
		return cell, err
	}
	sh.SetCommitBackoff(core.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond})

	// Fresh full-width rules stuck in the delta overlay for the whole storm.
	in.FailProb(fault.SiteRetrain, 1)
	merged := append([]lpm.Rule(nil), rs.Rules...)
	set := rs
	probe := uint64(0x9e3779b97f4a7c15)
	for added := 0; added < 64; probe = probe*2862933555777941757 + 3037000493 {
		p := keys.FromUint64(probe).And(keys.MaxValue(rs.Width))
		if set.Find(p, rs.Width) != lpm.NoMatch {
			continue
		}
		r := lpm.Rule{Prefix: p, Len: rs.Width, Action: uint64(1<<21) + uint64(added)}
		if err := sh.Insert(r); err != nil {
			return cell, fmt.Errorf("insert during storm: %w", err)
		}
		merged = append(merged, r)
		added++
	}
	set, err = lpm.NewRuleSet(rs.Width, merged)
	if err != nil {
		return cell, err
	}
	oracle := lpm.NewTrieMatcher(set)
	wantA := make([]uint64, len(trace))
	wantM := make([]bool, len(trace))
	for i, k := range trace {
		wantA[i], wantM[i] = oracle.Lookup(k)
	}

	check := func() {
		const batch = 256
		for lo := 0; lo < len(trace); lo += batch {
			hi := min(lo+batch, len(trace))
			for i, r := range sh.LookupBatch(trace[lo:hi]) {
				if r.Action != wantA[lo+i] || r.Matched != wantM[lo+i] {
					cell.Mismatches++
				}
			}
		}
	}
	// Mid-storm: all-cold, then burst-promoted, then all-cold again —
	// answers must match the merged oracle in every placement state.
	for i := 0; i < sh.Shards(); i++ {
		sh.Engine(i).TierStore().DemoteAll()
	}
	check()
	p, d := sh.RebalanceTiers()
	cell.Promotions += p
	cell.Demotions += d
	check()
	for i := 0; i < sh.Shards(); i++ {
		sh.Engine(i).TierStore().DemoteAll()
	}
	check()

	// Recovery: faults off, drain, re-check over rebuilt (all-fast) engines.
	in.Clear(fault.SiteRetrain)
	if err := sh.CommitAll(); err != nil {
		return cell, fmt.Errorf("recovery commit: %w", err)
	}
	if pending := sh.PendingInserts(); pending != 0 {
		return cell, fmt.Errorf("recovery left %d rules pending", pending)
	}
	p, d = sh.RebalanceTiers()
	cell.Promotions += p
	cell.Demotions += d
	check()
	for i := 0; i < sh.Shards(); i++ {
		cell.FastMiB += float64(sh.Engine(i).TierStore().Stats().FastBytes) / (1 << 20)
	}
	if err := sh.Close(); err != nil {
		return cell, fmt.Errorf("close after storm: %w", err)
	}
	return cell, nil
}

// TieredTable renders E28.
func TieredTable(cells []TieredCell) *Table {
	t := &Table{
		Title:  "Tiered-memory bucket store: hot/cold placement footprint and analytic p99 vs the uniform all-fast baseline (ripe workload, zipf1.2/loc0.9)",
		Header: []string{"config", "rules", "fast MiB", "fast saving x", "cold %", "p99 cycles", "p99 headroom x", "promotions", "demotions", "oracle mismatches"},
		Notes: []string{
			"DESIGN.md §16: cold buckets live in a simulated slow tier (10x fetch latency); placement is burst-promoted and sketch-demoted",
			"fast saving x = uniform fast-tier bytes / row's fast-tier bytes; p99 headroom x = all-hot p99 cycles / row's p99 cycles (both higher = better)",
			"'tiered' is the deterministic burst-only regime (warm-up pass, then one rebalance): the measured pass must run 0% cold at full headroom",
			"'tiered sketch' hands placement to the decaying hotness sketch (1:64 sampling), so its ratios are informative, not guarded",
			"'+storm' re-runs the fault matrix on a tiered sharded engine (quick-sized): every retrain failing, placement churning, 0 mismatches required",
			"p99 from hwsim.TierLatency, an analytic cycle model — deterministic across machines, which is what the bench guard compares",
		},
	}
	for _, c := range cells {
		p99 := fu(c.P99Cycles)
		if c.P99Cycles == 0 { // the storm row checks correctness, not latency
			p99 = "-"
		}
		t.Rows = append(t.Rows, []string{
			c.Config, fi(c.Rules), f1(c.FastMiB), f2(c.FastSavingX), f1(c.ColdPct),
			p99, f2(c.HeadroomX), fi(c.Promotions), fi(c.Demotions), fi(c.Mismatches),
		})
	}
	return t
}
