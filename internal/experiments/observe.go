package experiments

import (
	"fmt"
	"math/bits"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/workload"
)

// ObserveResult is E26, the observability-plane cost/fidelity experiment
// (DESIGN.md §13). It answers four questions about the flight-recorder &
// SLO plane:
//
//  1. What does always-on default-stride sampling cost the hot path? (single-key
//     and batched throughput, flight off vs on — the acceptance bar is <2%.)
//  2. Do the recorder's sampled latency quantiles agree with ground truth?
//     (the recorder's p99 vs a p99 from timing every query directly; log₂
//     buckets give factor-of-two quantiles, so agreement means the same or
//     an adjacent bucket.)
//  3. Is the drift gauge sane on a fresh model? (observed p99 probes must
//     sit inside the compiled probe bound, i.e. drift ≤ 1.)
//  4. Does the hotness sketch separate skewed from uniform traffic?
type ObserveResult struct {
	OffSingle, OnSingle float64 // Mlookups/s
	OffBatch, OnBatch   float64
	SingleOverheadPct   float64
	BatchOverheadPct    float64

	RecorderP99Ns float64 // flight recorder's sampled p99
	DirectP99Ns   float64 // p99 from timing every query into a local histogram
	P99Agree      bool    // same or adjacent log₂ bucket

	Drift      float64
	ProbeBound int
	ProbeP99   float64

	SkewZipf    float64
	SkewUniform float64

	Samples uint64 // flight records committed during the run
}

// observeBatch matches cacheBatchSize so the batch rows line up with E23/E25.
const observeBatch = 256

// onOff labels an overhead row with the live default stride.
func onOff(what string) string {
	return fmt.Sprintf("%s (a=off, b=1:%d)", what, telemetry.DefaultSampleEvery)
}

// log2Bucket is the histogram's bucket index for a latency value.
func log2Bucket(ns float64) int {
	if ns < 1 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// Observe runs E26 on a bucketized RIPE-profile engine with a locality
// trace (the same workload as the headline lookup bench, so its overhead
// numbers contextualize BENCH_*.json's ns/op directly).
func Observe(sc Scale) (*ObserveResult, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen, sc.Seed+99))
	if err != nil {
		return nil, err
	}

	res := &ObserveResult{}
	prevEvery := telemetry.Flight.SampleEvery()
	defer telemetry.Flight.SetSampleEvery(prevEvery)
	rec0 := telemetry.Flight.Recorded()

	// Overhead: flight off vs the default stride, single-key and batched. Each run closure
	// re-arms its own sampling mode so the interleaved rounds (drift-immune,
	// best-of-3 — see measureRatesInterleaved) compare only the recorder
	// cost. The off rows still pay the tick-and-mask test, i.e. they measure
	// the plane's disabled cost, not a build without it.
	var out []core.BatchResult
	rates := measureRatesInterleaved(trace, []func([]keys.Value){
		func(ks []keys.Value) {
			telemetry.Flight.SetSampleEvery(0)
			for _, k := range ks {
				eng.Lookup(k)
			}
		},
		func(ks []keys.Value) {
			telemetry.Flight.SetSampleEvery(telemetry.DefaultSampleEvery)
			for _, k := range ks {
				eng.Lookup(k)
			}
		},
		func(ks []keys.Value) {
			telemetry.Flight.SetSampleEvery(0)
			for lo := 0; lo < len(ks); lo += observeBatch {
				out = eng.LookupBatch(ks[lo:min(lo+observeBatch, len(ks))], out)
			}
		},
		func(ks []keys.Value) {
			telemetry.Flight.SetSampleEvery(telemetry.DefaultSampleEvery)
			for lo := 0; lo < len(ks); lo += observeBatch {
				out = eng.LookupBatch(ks[lo:min(lo+observeBatch, len(ks))], out)
			}
		},
	})
	res.OffSingle, res.OnSingle, res.OffBatch, res.OnBatch = rates[0], rates[1], rates[2], rates[3]
	res.SingleOverheadPct = 100 * (1 - res.OnSingle/res.OffSingle)
	res.BatchOverheadPct = 100 * (1 - res.OnBatch/res.OffBatch)

	// Quantile fidelity: replay the trace once with the recorder armed while
	// timing every single query into a local histogram of the same log₂
	// geometry. The recorder sees 1 in DefaultSampleEvery of exactly these
	// queries, so its
	// p99 must land in the same (or an adjacent) bucket as the all-queries
	// p99 — the factor-of-two resolution both sides share.
	telemetry.Flight.SetSampleEvery(telemetry.DefaultSampleEvery)
	direct := telemetry.NewHistogram()
	recBefore := telemetry.Default.Histogram("neurolpm_lookup_latency_ns", "").Snapshot()
	for _, k := range trace {
		t0 := time.Now()
		eng.Lookup(k)
		direct.Observe(uint64(time.Since(t0).Nanoseconds()))
	}
	recDelta := telemetry.Default.Histogram("neurolpm_lookup_latency_ns", "").Snapshot().Sub(recBefore)
	res.RecorderP99Ns = recDelta.Quantile(0.99)
	res.DirectP99Ns = direct.Snapshot().Quantile(0.99)
	db := log2Bucket(res.RecorderP99Ns) - log2Bucket(res.DirectP99Ns)
	res.P99Agree = db >= -1 && db <= 1

	// Drift sanity on the fresh model: the sampled queries above fed the
	// engine's drift meter; a just-trained model must run inside its own
	// compiled bound.
	res.Drift = eng.DriftMeter().Drift()
	res.ProbeBound = eng.DriftMeter().Bound()
	res.ProbeP99 = eng.DriftMeter().ProbeP99()

	// Hotness separation: the sketch (fed by the same sampled queries) must
	// report materially higher top-decile mass for Zipfian traffic than for
	// uniform. Each phase gets a fresh engine so the sketches are isolated.
	zipf, err := workload.GenerateTrace(rs, workload.TraceConfig{
		Queries: sc.TraceLen, ZipfS: 1.2, Locality: 0.9, Window: 256, Seed: sc.Seed + 4})
	if err != nil {
		return nil, err
	}
	uni := workload.UniformTrace(rs.Width, sc.TraceLen, sc.Seed+5)
	for _, ph := range []struct {
		trace []keys.Value
		skew  *float64
	}{{zipf, &res.SkewZipf}, {uni, &res.SkewUniform}} {
		e, err := core.Build(rs, sc.engineConfig())
		if err != nil {
			return nil, err
		}
		for _, k := range ph.trace {
			e.Lookup(k)
		}
		*ph.skew = e.HotSketch().Skew()
	}

	res.Samples = telemetry.Flight.Recorded() - rec0
	return res, nil
}

// ObserveTable renders E26.
func ObserveTable(r *ObserveResult) *Table {
	verdict := func(ok bool, yes, no string) string {
		if ok {
			return yes
		}
		return no
	}
	return &Table{
		Title:  "Flight-recorder & SLO plane: sampling overhead, quantile fidelity, drift and hotness sanity (ripe workload)",
		Header: []string{"row", "a", "b", "result"},
		Rows: [][]string{
			{onOff("single-key Mlookups/s"), f2(r.OffSingle), f2(r.OnSingle),
				fmt.Sprintf("overhead %.1f%%", r.SingleOverheadPct)},
			{onOff("batch Mlookups/s"), f2(r.OffBatch), f2(r.OnBatch),
				fmt.Sprintf("overhead %.1f%%", r.BatchOverheadPct)},
			{"p99 latency ns (a=all queries, b=recorder)", f1(r.DirectP99Ns), f1(r.RecorderP99Ns),
				verdict(r.P99Agree, "agree (within one log2 bucket)", "DISAGREE")},
			{"model drift (a=p99 probes, b=probe bound)", f1(r.ProbeP99), fi(r.ProbeBound),
				fmt.Sprintf("drift %.2f %s", r.Drift, verdict(r.Drift <= 1, "(inside bound)", "(OVER BOUND)"))},
			{"hotness skew (a=zipf1.2/loc0.9, b=uniform)", f2(r.SkewZipf), f2(r.SkewUniform),
				verdict(r.SkewZipf > r.SkewUniform, "separates", "NO SEPARATION")},
		},
		Notes: []string{
			fmt.Sprintf("DESIGN.md §13: 1-in-%d sampled flight records through the real plane stack; off rows still pay the disabled tick-and-mask test", telemetry.DefaultSampleEvery),
			"overhead is round-interleaved best-of-3 (drift-immune); the CI guard allows 10% to absorb scheduler noise, the honest number is this row",
			fmt.Sprintf("quantiles are log2-bucketed (factor-of-two); %d flight records committed during the run", r.Samples),
		},
	}
}
