package experiments

import (
	"fmt"

	"neurolpm/internal/workload"
)

// Fig2Result holds the prefix-length distributions of Figure 2: network
// routing (32-bit) vs string matching (48-bit).
type Fig2Result struct {
	RoutingHist map[int]int
	StringHist  map[int]int
	RoutingTop  int // modal prefix length of the routing set
	StringSpan  int // number of distinct lengths in the string set
}

// Fig2 regenerates the Figure 2 comparison from synthetic rule-sets.
func Fig2(sc Scale) (*Fig2Result, error) {
	routing, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	strs, err := workload.Generate(workload.Snort(), sc.Rules["snort"], sc.Seed)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{RoutingHist: map[int]int{}, StringHist: map[int]int{}}
	for l, c := range routing.PrefixHistogram() {
		if c > 0 {
			res.RoutingHist[l] = c
		}
	}
	best := 0
	for l, c := range res.RoutingHist {
		if c > best {
			best, res.RoutingTop = c, l
		}
	}
	for l, c := range strs.PrefixHistogram() {
		if c > 0 {
			res.StringHist[l] = c
			res.StringSpan++
		}
	}
	return res, nil
}

// Table renders the distributions as side-by-side counts.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:  "Figure 2: rule prefix-length distribution, routing (32-bit) vs string matching (48-bit)",
		Header: []string{"prefix bits", "routing rules", "string rules"},
		Notes: []string{
			fmt.Sprintf("routing mode at /%d; string matching spans %d distinct lengths", r.RoutingTop, r.StringSpan),
			"substitution: synthetic families calibrated to the published distributions (DESIGN.md §2)",
		},
	}
	for l := 0; l <= 48; l++ {
		rc, sc := r.RoutingHist[l], r.StringHist[l]
		if rc == 0 && sc == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{fi(l), fi(rc), fi(sc)})
	}
	return t
}
