package experiments

import (
	"fmt"
	"math"

	"neurolpm/internal/core"
	"neurolpm/internal/workload"
)

// Table 1 substitution (DESIGN.md §2): we cannot synthesize Verilog, so
// BRAM demand is computed exactly from our data-structure sizes while
// LUT/FF/DSP counts come from an analytic model fitted to the paper's two
// published configurations:
//
//	LUT ≈ 0.478·(FSMs·Banks)^1.5   (crossbar-dominated; reproduces 10165
//	                                and 81862 for 16:48 and 32:96)
//	FF  ≈ 0.663·(FSMs·Banks)^1.22  (reproduces 2194 and 11899)
//	DSP = 30 per RQRMI engine      (FP32 inference MACs)
//
// Device totals are back-derived from the paper's own utilization
// percentages of the Kintex UltraScale+ target.
const (
	bramBlockBytes = 4608 // one 36Kb block
	deviceLUTs     = 535000
	deviceFFs      = 1070000
	deviceDSPs     = 1974
	deviceBRAMs    = 992
)

// Table1Row models one design's resource consumption.
type Table1Row struct {
	Design     string
	LUT, FF    int
	DSP        int
	BRAMBlocks int
	BRAMBytes  int
}

func modelLUT(fsms, banks int) int {
	return int(0.478 * math.Pow(float64(fsms*banks), 1.5))
}

func modelFF(fsms, banks int) int {
	return int(0.663 * math.Pow(float64(fsms*banks), 1.22))
}

// Table1 regenerates the resource-consumption comparison for the paper's
// two NeuroLPM configurations and SAIL, using the representative RIPE-like
// rule-set for BRAM sizing.
func Table1(sc Scale) ([]Table1Row, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	// NeuroLPM BRAM: model parameters + RQ Array (bucket directory), as in
	// the paper's "about 540KB sufficient to hold the RQ Array for all the
	// evaluated rule-sets with 32-byte buckets".
	nlpmBRAM := eng.SRAMUsage().Total
	// SAIL BRAM: its 16- and 24-bit tables (2439KB in the paper).
	sailBRAM := 8*1024 + 64*1024 + 128*1024 + 2*1024*1024 + 192*1024

	rows := []Table1Row{
		{
			Design: "NeuroLPM (16 banks:48 FSMs)",
			LUT:    modelLUT(48, 16), FF: modelFF(48, 16), DSP: 30,
			BRAMBytes: nlpmBRAM, BRAMBlocks: blocks(nlpmBRAM),
		},
		{
			Design: "NeuroLPM (32 banks:96 FSMs)",
			LUT:    modelLUT(96, 32), FF: modelFF(96, 32), DSP: 60,
			BRAMBytes: nlpmBRAM, BRAMBlocks: blocks(nlpmBRAM),
		},
		{
			Design: "SAIL",
			LUT:    600, FF: 757, DSP: 0,
			BRAMBytes: sailBRAM, BRAMBlocks: blocks(sailBRAM),
		},
	}
	return rows, nil
}

func blocks(bytes int) int { return (bytes + bramBlockBytes - 1) / bramBlockBytes }

// Table1Table renders with device-utilization percentages.
func Table1Table(rows []Table1Row) *Table {
	t := &Table{
		Title:  "Table 1: FPGA resource consumption (modeled; see DESIGN.md substitutions)",
		Header: []string{"design", "LUT", "FlipFlop", "DSP", "BRAM blocks", "BRAM KB"},
		Notes: []string{
			"BRAM computed exactly from data-structure sizes; LUT/FF/DSP from the fitted analytic model",
			"paper's claim to check: SAIL uses ~3x more BRAM; NeuroLPM trades logic for memory",
		},
	}
	pct := func(v, total int) string {
		return fmt.Sprintf("%d (%.1f%%)", v, 100*float64(v)/float64(total))
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Design,
			pct(r.LUT, deviceLUTs),
			pct(r.FF, deviceFFs),
			pct(r.DSP, deviceDSPs),
			pct(r.BRAMBlocks, deviceBRAMs),
			fi(r.BRAMBytes / 1024),
		})
	}
	return t
}
