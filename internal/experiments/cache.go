package experiments

import (
	"fmt"
	"time"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/workload"
)

// CacheCell is one row of E25, the hot-key result-cache experiment
// (DESIGN.md §12): batched lookup throughput with an epoch-invalidated
// result cache in front of the compiled plane, across traffic skews and
// cache sizes, plus an update-storm row that keeps the cache plane honest
// while commits fail.
type CacheCell struct {
	Workload   string
	CacheKB    int // 0 = uncached baseline
	MLookupsPS float64
	Speedup    float64 // vs the same workload's uncached row
	HitPct     float64 // over one warm full-trace pass
	StalePct   float64
	Mismatches int // disagreements with the trie oracle (must be 0)
}

// cacheBatchSize matches the sharded/compiled fan-out unit so the three
// experiments' batch rows are comparable.
const cacheBatchSize = 256

// CacheSizesKB are the swept result-cache sizes.
var CacheSizesKB = []int{64, 512}

// lcacheDeltas snapshots the global lcache counters and returns a closure
// yielding the deltas since the snapshot.
func lcacheDeltas() func() (hits, misses, stale uint64) {
	h := telemetry.Default.Counter("neurolpm_lcache_hits_total", "")
	m := telemetry.Default.Counter("neurolpm_lcache_misses_total", "")
	s := telemetry.Default.Counter("neurolpm_lcache_stale_total", "")
	h0, m0, s0 := h.Load(), m.Load(), s.Load()
	return func() (uint64, uint64, uint64) {
		return h.Load() - h0, m.Load() - m0, s.Load() - s0
	}
}

// measureRatesInterleaved measures the run functions in alternating rounds
// and returns each one's best observed rate. Measuring the variants of one
// workload back to back would let slow drift (thermal throttling,
// background load) bias the speedup ratios; interleaving rounds and keeping
// the max filters the drift out of the comparison — the same discipline
// TestCacheOffBatchOverheadGuard uses.
func measureRatesInterleaved(trace []keys.Value, runs []func([]keys.Value)) []float64 {
	const rounds = 3
	best := make([]float64, len(runs))
	for r := 0; r < rounds; r++ {
		for i, fn := range runs {
			if v := measureRate(trace, fn); v > best[i] {
				best[i] = v
			}
		}
	}
	return best
}

// CacheHotKey measures the result-cache plane on one bucketized
// RIPE-profile engine:
//
//   - Zipf s=1.2 / locality 0.9 — the hot-key regime the cache targets —
//     uncached vs each swept cache size.
//   - Locality 0.5 — a milder skew, one cache size.
//   - Uniform traffic — the worst case; the adaptive bypass must hold the
//     cached path within noise of the uncached one.
//   - An update-storm row on a sharded updatable engine with every retrain
//     failing: the delta overlay answers, every commit attempt and delta
//     mutation bumps the epoch, and the cached answers must still match the
//     merged-rule-set oracle exactly.
//
// Every traced answer on every row is checked against the trie oracle.
func CacheHotKey(sc Scale) ([]CacheCell, error) {
	rs, err := workload.Generate(workload.Profiles()["ripe"], sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	oracle := lpm.NewTrieMatcher(rs)

	hot, err := workload.GenerateTrace(rs, workload.TraceConfig{
		Queries: sc.TraceLen, ZipfS: 1.2, Locality: 0.9, Window: 256, Seed: sc.Seed + 4})
	if err != nil {
		return nil, err
	}
	mid, err := workload.GenerateTrace(rs, workload.TraceConfig{
		Queries: sc.TraceLen, ZipfS: 1.2, Locality: 0.5, Window: 256, Seed: sc.Seed + 4})
	if err != nil {
		return nil, err
	}
	uni := workload.UniformTrace(rs.Width, sc.TraceLen, sc.Seed+5)

	// rowsFor produces one workload's rows: the uncached baseline plus one
	// row per cache size, with correctness + hit-rate passes per variant and
	// a drift-immune interleaved rate measurement across all of them. Every
	// variant rides the unified stack executor — the cached rows select the
	// lcache plane via plane.StackConfig, the baseline the uncached stack.
	rowsFor := func(name string, trace []keys.Value, kbs []int) []CacheCell {
		wantA := make([]uint64, len(trace))
		wantM := make([]bool, len(trace))
		for i, k := range trace {
			wantA[i], wantM[i] = oracle.Lookup(k)
		}
		epoch := eng.CacheEpoch().Load()
		type variant struct {
			cell CacheCell
			c    *lcache.Cache
		}
		vs := []*variant{{cell: CacheCell{Workload: name}}}
		for _, kb := range kbs {
			vs = append(vs, &variant{cell: CacheCell{Workload: name, CacheKB: kb}, c: lcache.New(kb << 10)})
		}
		for _, v := range vs {
			st := plane.StackConfig{Cached: v.c != nil}
			var out []core.BatchResult
			// Correctness pass (doubles as cache warm-up).
			for lo := 0; lo < len(trace); lo += cacheBatchSize {
				hi := min(lo+cacheBatchSize, len(trace))
				out = eng.LookupBatchStack(st, trace[lo:hi], out[:0], cachesim.Null{}, v.c, epoch)
				for i, r := range out {
					if r.Action != wantA[lo+i] || r.Matched != wantM[lo+i] {
						v.cell.Mismatches++
					}
				}
			}
			// Hit/stale breakdown over one warm pass.
			deltas := lcacheDeltas()
			for lo := 0; lo < len(trace); lo += cacheBatchSize {
				out = eng.LookupBatchStack(st, trace[lo:min(lo+cacheBatchSize, len(trace))], out[:0], cachesim.Null{}, v.c, epoch)
			}
			if h, m, s := deltas(); v.c != nil && h+m+s > 0 {
				tot := float64(h + m + s)
				v.cell.HitPct = 100 * float64(h) / tot
				v.cell.StalePct = 100 * float64(s) / tot
			}
		}
		runs := make([]func([]keys.Value), len(vs))
		for i, v := range vs {
			st := plane.StackConfig{Cached: v.c != nil}
			c := v.c
			var out []core.BatchResult
			runs[i] = func(ks []keys.Value) {
				for lo := 0; lo < len(ks); lo += cacheBatchSize {
					out = eng.LookupBatchStack(st, ks[lo:min(lo+cacheBatchSize, len(ks))], out[:0], cachesim.Null{}, c, epoch)
				}
			}
		}
		rates := measureRatesInterleaved(trace, runs)
		cells := make([]CacheCell, len(vs))
		for i, v := range vs {
			v.cell.MLookupsPS = rates[i]
			v.cell.Speedup = 1
			if i > 0 && rates[0] > 0 {
				v.cell.Speedup = rates[i] / rates[0]
			}
			cells[i] = v.cell
		}
		return cells
	}

	var out []CacheCell
	out = append(out, rowsFor("zipf1.2/loc0.9", hot, CacheSizesKB)...)
	out = append(out, rowsFor("zipf1.2/loc0.5", mid, CacheSizesKB[:1])...)
	out = append(out, rowsFor("uniform", uni, CacheSizesKB[:1])...)

	storm, err := cacheStormRow(sc, rs, hot)
	if err != nil {
		return nil, err
	}
	return append(out, storm), nil
}

// cacheStormRow runs the hot trace through a cache-enabled sharded
// updatable engine while every retrain fails: fresh rules land in the delta
// overlay, commit attempts keep bumping epochs via the failure path's
// retries, and every cached answer must match the trie oracle over the
// merged rule-set — before and after a clean CommitAll drain.
func cacheStormRow(sc Scale, rs *lpm.RuleSet, trace []keys.Value) (CacheCell, error) {
	cell := CacheCell{Workload: "zipf1.2/loc0.9 +storm", CacheKB: CacheSizesKB[0]}
	in := fault.NewInjector(uint64(sc.Seed) | 1)
	cfg := sc.engineConfig()
	cfg.Fault = in.Hook()
	sh, err := shard.BuildUpdatable(rs, cfg, 4, 0)
	if err != nil {
		return cell, err
	}
	sh.SetCommitBackoff(core.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond})
	sh.StartAutoCommit(10*time.Millisecond, 16)

	// Queue fresh full-width rules under a total retrain outage: they stay
	// pending in the delta overlay for the whole measured phase.
	in.FailProb(fault.SiteRetrain, 1)
	merged := append([]lpm.Rule(nil), rs.Rules...)
	probe := uint64(0x9e3779b97f4a7c15)
	set, err := lpm.NewRuleSet(rs.Width, merged)
	if err != nil {
		return cell, err
	}
	for added := 0; added < 64; probe = probe*2862933555777941757 + 3037000493 {
		p := keys.FromUint64(probe).And(keys.MaxValue(rs.Width))
		if set.Find(p, rs.Width) != lpm.NoMatch {
			continue
		}
		r := lpm.Rule{Prefix: p, Len: rs.Width, Action: uint64(1<<21) + uint64(added)}
		if err := sh.Insert(r); err != nil {
			return cell, fmt.Errorf("insert during storm: %w", err)
		}
		merged = append(merged, r)
		added++
	}
	set, err = lpm.NewRuleSet(rs.Width, merged)
	if err != nil {
		return cell, err
	}
	oracle := lpm.NewTrieMatcher(set)
	wantA := make([]uint64, len(trace))
	wantM := make([]bool, len(trace))
	for i, k := range trace {
		wantA[i], wantM[i] = oracle.Lookup(k)
	}

	// Uncached baseline first (the plane is off until EnableCache), then the
	// cached phase over the identical storm state. The phases are ordered —
	// the plane cannot be re-disabled — so each takes its own best-of-3
	// instead of interleaving.
	runTrace := func(ks []keys.Value) {
		for lo := 0; lo < len(ks); lo += cacheBatchSize {
			sh.LookupBatch(ks[lo:min(lo+cacheBatchSize, len(ks))])
		}
	}
	base := measureRatesInterleaved(trace, []func([]keys.Value){runTrace})[0]
	sh.EnableCache(CacheSizesKB[0] << 10)
	check := func() {
		for lo := 0; lo < len(trace); lo += cacheBatchSize {
			hi := min(lo+cacheBatchSize, len(trace))
			for i, r := range sh.LookupBatch(trace[lo:hi]) {
				if r.Action != wantA[lo+i] || r.Matched != wantM[lo+i] {
					cell.Mismatches++
				}
			}
		}
	}
	check()
	deltas := lcacheDeltas()
	cell.MLookupsPS = measureRatesInterleaved(trace, []func([]keys.Value){runTrace})[0]
	if h, m, s := deltas(); h+m+s > 0 {
		tot := float64(h + m + s)
		cell.HitPct = 100 * float64(h) / tot
		cell.StalePct = 100 * float64(s) / tot
	}
	cell.Speedup = cell.MLookupsPS / base

	// Recovery: clear the faults, drain, and re-verify — the commits bump
	// the epochs, so every cached storm-era answer must die rather than be
	// served against the rebuilt engines.
	in.Clear(fault.SiteRetrain)
	if err := sh.CommitAll(); err != nil {
		return cell, fmt.Errorf("recovery commit: %w", err)
	}
	if pending := sh.PendingInserts(); pending != 0 {
		return cell, fmt.Errorf("recovery left %d rules pending", pending)
	}
	check()
	if err := sh.Close(); err != nil {
		return cell, fmt.Errorf("close after storm: %w", err)
	}
	return cell, nil
}

// CacheHotKeyTable renders E25.
func CacheHotKeyTable(cells []CacheCell) *Table {
	t := &Table{
		Title:  "Hot-key result cache: batched lookups through an epoch-invalidated cache vs the uncached compiled plane (ripe workload)",
		Header: []string{"workload", "cache KB", "Mlookups/s", "speedup", "hit %", "stale %", "oracle mismatches"},
		Notes: []string{
			"DESIGN.md §12: set-associative (key, action, epoch) arrays; any rule-table update bumps the epoch and kills every entry",
			"uniform row is the worst case — the adaptive bypass must keep the cached path within noise of uncached",
			"+storm row: sharded updatable engine, every retrain failing; answers checked against the merged-rule-set oracle (must be 0 mismatches)",
			"hit/stale % over one warm full-trace pass; cache KB 0 = uncached baseline for that workload",
		},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Workload, fi(c.CacheKB), f2(c.MLookupsPS), f2(c.Speedup),
			f1(c.HitPct), f1(c.StalePct), fi(c.Mismatches),
		})
	}
	return t
}
