package experiments

import (
	"runtime"
	"time"

	"neurolpm/internal/baseline/binsearch"
	"neurolpm/internal/baseline/sail"
	"neurolpm/internal/baseline/treebitmap"
	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/lpm"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/workload"
)

// ExpansionRow is one family's LPM→range conversion overhead (§10.5).
type ExpansionRow struct {
	Family       string
	Rules        int
	Ranges       int
	ExpansionPct float64
}

// Expansion regenerates the §10.5 conversion-overhead measurement.
func Expansion(sc Scale) ([]ExpansionRow, error) {
	var out []ExpansionRow
	for _, family := range []string{"ripe", "routeviews", "stanford", "snort", "ipv6"} {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		arr, err := ranges.Convert(rs)
		if err != nil {
			return nil, err
		}
		st := arr.Expansion(rs.Len())
		out = append(out, ExpansionRow{
			Family: family, Rules: st.Rules, Ranges: st.Ranges,
			ExpansionPct: 100 * st.Expansion,
		})
	}
	return out, nil
}

// ExpansionTable renders the rows.
func ExpansionTable(rows []ExpansionRow) *Table {
	t := &Table{
		Title:  "§10.5: LPM-to-ranges conversion overhead",
		Header: []string{"family", "rules", "ranges", "expansion [%]"},
		Notes:  []string{"paper: 18% average, 32% worst case (Stanford); theoretical bound 100%"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Family, fi(r.Rules), fi(r.Ranges), f1(r.ExpansionPct)})
	}
	return t
}

// WorstCaseRow is one algorithm's deterministic DRAM-access bound plus the
// worst access count actually observed on an adversarial uniform trace.
type WorstCaseRow struct {
	Algorithm string
	Bound     int
	Observed  int
}

// WorstCase regenerates the §10.2 worst-case analysis on the RIPE-like set.
func WorstCase(sc Scale) ([]WorstCaseRow, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	trace := workload.UniformTrace(32, sc.TraceLen/10+1, sc.Seed+7)

	nlpm, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	tbm, err := treebitmap.Build(rs)
	if err != nil {
		return nil, err
	}
	sl, err := sail.Build(rs)
	if err != nil {
		return nil, err
	}
	rows := []WorstCaseRow{
		{Algorithm: "neurolpm", Bound: nlpm.WorstCaseDRAMAccesses()},
		{Algorithm: "sail", Bound: sl.WorstCaseDRAMAccesses()},
		{Algorithm: "treebitmap", Bound: tbm.WorstCaseDRAMAccesses()},
	}
	for _, k := range trace {
		u := &cachesim.Uncached{}
		nlpm.LookupMem(k, u)
		rows[0].Observed = maxI(rows[0].Observed, int(u.Stats().Accesses))
		u = &cachesim.Uncached{}
		sl.LookupMem(k, u)
		rows[1].Observed = maxI(rows[1].Observed, int(u.Stats().Accesses))
		u = &cachesim.Uncached{}
		tbm.LookupMem(k, u)
		rows[2].Observed = maxI(rows[2].Observed, int(u.Stats().Accesses))
	}
	return rows, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WorstCaseTable renders the bounds.
func WorstCaseTable(rows []WorstCaseRow) *Table {
	t := &Table{
		Title:  "§10.2: worst-case DRAM accesses per query",
		Header: []string{"algorithm", "deterministic bound", "observed max (uniform trace)"},
		Notes:  []string{"paper: NeuroLPM 1, SAIL 2, Tree Bitmap 3 (dependent accesses)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Algorithm, fi(r.Bound), fi(r.Observed)})
	}
	return t
}

// BinSearchRow compares RQRMI-assisted search with a full binary search.
type BinSearchRow struct {
	Family     string
	RangeCount int
	AvgRQRMI   float64 // avg probes, model + bounded search
	AvgFull    float64 // avg probes, plain binary search
	Reduction  float64 // AvgFull / AvgRQRMI
}

// VsBinarySearch regenerates the §8 claim that RQRMI reduces memory
// accesses per query by more than 2x compared to a full binary search over
// the same array.
func VsBinarySearch(sc Scale) ([]BinSearchRow, error) {
	var out []BinSearchRow
	for _, family := range RoutingFamilies {
		rs, err := workload.Generate(workload.Profiles()[family], sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		arr, err := ranges.Convert(rs)
		if err != nil {
			return nil, err
		}
		model, _, err := rqrmi.Train(arr, rs.Width, sc.Model)
		if err != nil {
			return nil, err
		}
		bs := binsearch.FromArray(arr)
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen/10+1, sc.Seed+8))
		if err != nil {
			return nil, err
		}
		var rqProbes, fullProbes uint64
		for _, k := range trace {
			_, p := model.Lookup(arr, k)
			rqProbes += uint64(p)
			_, _, fp := bs.LookupMem(k, cachesim.Null{})
			fullProbes += uint64(fp)
		}
		row := BinSearchRow{
			Family:     family,
			RangeCount: arr.Len(),
			AvgRQRMI:   float64(rqProbes) / float64(len(trace)),
			AvgFull:    float64(fullProbes) / float64(len(trace)),
		}
		if row.AvgRQRMI > 0 {
			row.Reduction = row.AvgFull / row.AvgRQRMI
		}
		out = append(out, row)
	}
	return out, nil
}

// VsBinarySearchTable renders the comparison.
func VsBinarySearchTable(rows []BinSearchRow) *Table {
	t := &Table{
		Title:  "§8: RQRMI vs full binary search (memory accesses per query)",
		Header: []string{"family", "ranges", "RQRMI probes", "binary-search probes", "reduction"},
		Notes:  []string{"paper: >2x fewer accesses on the evaluated rule-sets (O(log e) vs O(log n))"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Family, fi(r.RangeCount), f2(r.AvgRQRMI), f2(r.AvgFull), f2(r.Reduction) + "x",
		})
	}
	return t
}

// BitwidthRow compares access behaviour across key widths (§6.4).
type BitwidthRow struct {
	Family          string
	Width           int
	NeuroDRAM       int     // NeuroLPM worst-case DRAM accesses
	NeuroSRAMProbes float64 // avg secondary-search probes
	TrieDRAM        int     // Tree Bitmap worst-case chunk reads
}

// Bitwidth regenerates the §6.4 scaling argument: NeuroLPM's accesses are
// width-independent while trie depth grows linearly.
func Bitwidth(sc Scale) ([]BitwidthRow, error) {
	var out []BitwidthRow
	for _, family := range []string{"ripe", "snort", "ipv6"} {
		p := workload.Profiles()[family]
		rs, err := workload.Generate(p, sc.Rules[family], sc.Seed)
		if err != nil {
			return nil, err
		}
		eng, err := core.Build(rs, sc.engineConfig())
		if err != nil {
			return nil, err
		}
		tbm, err := treebitmap.Build(rs)
		if err != nil {
			return nil, err
		}
		trace, err := workload.GenerateTrace(rs, workload.DefaultTrace(sc.TraceLen/20+1, sc.Seed+9))
		if err != nil {
			return nil, err
		}
		var probes uint64
		for _, k := range trace {
			tr := eng.LookupMem(k, cachesim.Null{})
			probes += uint64(tr.SRAMProbes)
		}
		out = append(out, BitwidthRow{
			Family:          family,
			Width:           p.Width,
			NeuroDRAM:       eng.WorstCaseDRAMAccesses(),
			NeuroSRAMProbes: float64(probes) / float64(len(trace)),
			TrieDRAM:        tbm.WorstCaseDRAMAccesses(),
		})
	}
	return out, nil
}

// BitwidthTable renders the width scaling comparison.
func BitwidthTable(rows []BitwidthRow) *Table {
	t := &Table{
		Title:  "§6.4: bit-width scaling — per-query accesses vs key width",
		Header: []string{"family", "width [bits]", "NeuroLPM DRAM acc (worst)", "NeuroLPM SRAM probes (avg)", "Tree Bitmap DRAM acc (worst)"},
		Notes:  []string{"paper: NeuroLPM's access count is width-independent; trie accesses grow linearly with width"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Family, fi(r.Width), fi(r.NeuroDRAM), f2(r.NeuroSRAMProbes), fi(r.TrieDRAM),
		})
	}
	return t
}

// UpdateRow times the three §6.5 update paths.
type UpdateRow struct {
	Kind     string
	Count    int
	Duration time.Duration
}

// Updates regenerates the §6.5 update-path measurements on the RIPE-like
// set: action modification and deletion avoid retraining; insertion pays
// one full (parallel) retraining.
func Updates(sc Scale) ([]UpdateRow, error) {
	rs, err := workload.Generate(workload.RIPE(), sc.Rules["ripe"], sc.Seed)
	if err != nil {
		return nil, err
	}
	eng, err := core.Build(rs, sc.engineConfig())
	if err != nil {
		return nil, err
	}
	var rows []UpdateRow

	nMod := 1000
	if nMod > rs.Len() {
		nMod = rs.Len()
	}
	start := time.Now()
	for i := 0; i < nMod; i++ {
		r := rs.Rules[i]
		if err := eng.ModifyAction(r.Prefix, r.Len, r.Action+1); err != nil {
			return nil, err
		}
	}
	rows = append(rows, UpdateRow{Kind: "modify-action (no retrain)", Count: nMod, Duration: time.Since(start)})

	nDel := 20
	start = time.Now()
	for i := 0; i < nDel; i++ {
		r := rs.Rules[rs.Len()-1-i]
		if err := eng.Delete(r.Prefix, r.Len); err != nil {
			return nil, err
		}
	}
	rows = append(rows, UpdateRow{Kind: "delete (no retrain)", Count: nDel, Duration: time.Since(start)})

	// Insertion: full rebuild + retraining, parallel across submodels.
	extra, err := workload.Generate(workload.RIPE(), 1000, sc.Seed+100)
	if err != nil {
		return nil, err
	}
	var fresh []lpm.Rule
	for _, r := range extra.Rules {
		if rs.Find(r.Prefix, r.Len) == lpm.NoMatch {
			fresh = append(fresh, r)
		}
	}
	start = time.Now()
	if _, err := eng.InsertBatch(fresh); err != nil {
		return nil, err
	}
	rows = append(rows, UpdateRow{
		Kind:     "insert batch (full retrain, " + fi(runtime.GOMAXPROCS(0)) + " workers)",
		Count:    len(fresh),
		Duration: time.Since(start),
	})
	return rows, nil
}

// UpdatesTable renders the update timings.
func UpdatesTable(rows []UpdateRow) *Table {
	t := &Table{
		Title:  "§6.5: update paths",
		Header: []string{"update kind", "count", "total time [ms]", "per update [µs]"},
		Notes:  []string{"paper: insertion-by-retraining runs in ~100ms on 8 x86 cores for an 870K rule-set"},
	}
	for _, r := range rows {
		per := float64(r.Duration.Microseconds()) / float64(maxI(r.Count, 1))
		t.Rows = append(t.Rows, []string{
			r.Kind, fi(r.Count), fi(int(r.Duration.Milliseconds())), f1(per),
		})
	}
	return t
}

// WorstBWRow is the §10.1 worst-case DRAM bandwidth arithmetic: with 32-byte
// buckets every query fetches one bucket, so the bandwidth requirement is a
// pure function of the packet rate — deterministic by design.
type WorstBWRow struct {
	LineRateGbps  float64
	PacketBytes   int // wire size incl. preamble and IPG
	Mpps          float64
	BucketBytes   int
	WorstCaseGbps float64
}

// WorstCaseBandwidth computes the §10.1 numbers: minimum-size packets at
// the given line rates with one 32-byte bucket fetch per query. At 200Gbps
// this reproduces the paper's "worst-case DRAM bandwidth is 88 Gbps".
func WorstCaseBandwidth() []WorstBWRow {
	const (
		wireBytes   = 64 + 8 // min Ethernet frame + preamble (§10.1 figure, IPG excluded)
		bucketBytes = 32
	)
	var rows []WorstBWRow
	for _, gbps := range []float64{100, 200, 400, 800} {
		mpps := gbps * 1e9 / 8 / wireBytes / 1e6
		rows = append(rows, WorstBWRow{
			LineRateGbps:  gbps,
			PacketBytes:   wireBytes,
			Mpps:          mpps,
			BucketBytes:   bucketBytes,
			WorstCaseGbps: mpps * 1e6 * bucketBytes * 8 / 1e9,
		})
	}
	return rows
}

// WorstCaseBandwidthTable renders the arithmetic.
func WorstCaseBandwidthTable(rows []WorstBWRow) *Table {
	t := &Table{
		Title:  "§10.1: worst-case DRAM bandwidth, one 32B bucket fetch per minimum-size packet",
		Header: []string{"line rate [Gbps]", "packet [B]", "Mpps", "bucket [B]", "worst-case DRAM [Gbps]"},
		Notes:  []string{"paper: 88 Gbps at 200 Gbps line rate; caching reduces the effective demand to a small fraction (Fig 7)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f1(r.LineRateGbps), fi(r.PacketBytes), f1(r.Mpps), fi(r.BucketBytes), f1(r.WorstCaseGbps),
		})
	}
	return t
}
