package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
)

// ShardedUpdatable is the updatable sharded engine: each shard is a
// core.Updatable (delta buffer + atomic engine swap, §6.5), and a background
// committer rebuilds dirty shards off the hot path. The payoff over a single
// Updatable is that an insertion only ever retrains the shard it covers —
// untouched shards keep their models — and readers never block: they load
// each shard's engine through the existing atomic.Pointer snapshot, so a
// commit is invisible except for the action change it carries.
//
// Updates (Insert/Delete/ModifyAction/Commit) may be called concurrently
// with lookups, but serialize among themselves per shard; replicated rules
// (shorter than the shard prefix) are applied to every covered shard.
type ShardedUpdatable struct {
	router
	shards []*core.Updatable
	// wmu serializes writers (Insert/Delete/ModifyAction/Commit) per shard,
	// including across a commit's retrain. core.Updatable alone lets inserts
	// land during a retrain, but a Delete of a rule already snapshotted by an
	// in-flight Commit would be resurrected by the engine swap (lost update);
	// holding the shard's writer lock for the whole commit closes that race.
	// Readers never take these locks. Multi-shard operations (replicated
	// rules) lock their span in ascending order, so writers cannot deadlock.
	wmu []sync.Mutex

	threshold atomic.Int64  // auto-commit when a shard's pending ≥ threshold
	kick      chan struct{} // nudges the committer before the next tick
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// The robustness plane (DESIGN.md §11): per-shard failure state,
	// retry schedule and staleness budget. states is index-aligned with
	// shards; each entry has its own mutex so health reads never block on
	// an in-flight retrain.
	states      []shardState
	backoff     core.Backoff
	staleBudget atomic.Int64 // time.Duration; Degraded→Stale threshold
}

// BuildUpdatable builds a sharded engine wrapped shard-by-shard in
// core.Updatable. capacity is the per-shard delta-buffer size (≤ 0 selects
// core.DefaultDeltaCapacity). Call Close when done (stops the background
// committer and the batch pool).
func BuildUpdatable(rs *lpm.RuleSet, cfg core.Config, nShards, capacity int) (*ShardedUpdatable, error) {
	r, parts, err := plan(rs, nShards)
	if err != nil {
		return nil, err
	}
	engines, err := buildEngines(rs.Width, cfg, parts)
	if err != nil {
		return nil, err
	}
	u := &ShardedUpdatable{
		router:  r,
		shards:  make([]*core.Updatable, len(engines)),
		wmu:     make([]sync.Mutex, len(engines)),
		stop:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
		states:  make([]shardState, len(engines)),
		backoff: core.DefaultBackoff,
	}
	u.staleBudget.Store(int64(DefaultStaleBudget))
	for i, e := range engines {
		u.shards[i] = core.NewUpdatable(e, capacity)
	}
	u.registerGauges(func(i int) int { return u.shards[i].Engine().Ranges().Len() })
	u.registerHealthGauges()
	u.registerObserverGauges(u.Engine)
	return u, nil
}

// Engine returns shard i's current live engine (read-only use).
func (u *ShardedUpdatable) Engine(i int) *core.Engine { return u.shards[i].Engine() }

// Lookup answers one key: the key's shard consults its delta buffer and its
// engine, longest prefix wins. Like every Lookup* variant it must answer
// exactly what a trie oracle over the installed+pending rules answers
// (planetest's parameterized harness).
func (u *ShardedUpdatable) Lookup(k keys.Value) (uint64, bool) {
	a, ok, _ := u.LookupStack(plane.StackConfig{}, k)
	return a, ok
}

// LookupCached is LookupStack with the compiled+lcache configuration.
func (u *ShardedUpdatable) LookupCached(k keys.Value) (uint64, bool, lcache.Outcome) {
	return u.LookupStack(plane.StackConfig{Cached: true}, k)
}

// LookupStack routes k to its shard and answers it — delta overlay included
// — through the stack selected by st. Cached stacks check a spare cache out
// for the call. Safe for concurrent use, including with updates: the shard's
// epoch is loaded before its delta or engine is read, so a fill can never
// pin a pre-update answer past the update.
func (u *ShardedUpdatable) LookupStack(st plane.StackConfig, k keys.Value) (uint64, bool, lcache.Outcome) {
	i := u.ShardOf(k)
	u.loads[i].n.Add(1)
	if !st.Cached {
		return u.shards[i].LookupStack(st, k, nil)
	}
	c, spare := u.cacheFor(-1)
	a, m, o := u.shards[i].LookupStack(st, k, c)
	u.releaseCache(c, spare)
	return a, m, o
}

// LookupBatch resolves a batch positionally, fanning shard groups out over
// the worker pool. Each key's answer is individually consistent: it reflects
// either the pre- or post-commit state of its shard, never a mix. A shard
// whose delta buffer is empty answers its whole group through the engine's
// pipelined batch path (delta empty ⇒ Updatable.Lookup ≡ engine lookup);
// shards with pending insertions fall back to the per-key overlay lookup.
// With the cache plane enabled both paths probe the worker's cache first.
// The epoch is loaded BEFORE the PendingInserts check: an insert landing
// after the load bumps the epoch, so results this group caches are already
// dead — closing the window where an engine-only answer computed before the
// insert could be cached under the post-insert epoch.
func (u *ShardedUpdatable) LookupBatch(ks []keys.Value) []Result {
	return u.LookupBatchStack(plane.StackConfig{Cached: true}, ks)
}

// LookupBatchStack is the updatable sharded batch executor: the shared
// fan-out with each clean shard's group answered through the engine-level
// batch stack for st, and dirty shards (pending insertions) falling back to
// the per-key overlay lookup on the same inference plane.
func (u *ShardedUpdatable) LookupBatchStack(st plane.StackConfig, ks []keys.Value) []Result {
	return u.lookupBatch(ks, func(shard, worker int, group []int32, out []Result) {
		s := u.shards[shard]
		var c *lcache.Cache
		var spare bool
		if st.Cached {
			c, spare = u.cacheFor(worker)
			defer u.releaseCache(c, spare)
		}
		epoch := s.CacheEpoch().Load()
		if s.PendingInserts() == 0 {
			batchGroup(st, s.Engine(), ks, group, out, c, epoch)
			return
		}
		overlay := st
		overlay.Cached = false
		if !st.Cached || c.Bypassed(len(group)) {
			for _, idx := range group {
				out[idx].Action, out[idx].Matched, _ = s.LookupStack(overlay, ks[idx], nil)
			}
			return
		}
		for _, idx := range group {
			k := ks[idx]
			a, m, o := c.Get(k, epoch)
			if o != lcache.Hit {
				a, m, _ = s.LookupStack(overlay, k, nil)
				c.Put(k, epoch, a, m)
			}
			out[idx] = Result{Action: a, Matched: m}
		}
	})
}

// coveredShards returns the inclusive shard range for a prefix/length.
func (u *ShardedUpdatable) coveredShards(prefix keys.Value, length int) (int, int) {
	return shardSpan(u.width, u.shardBits, lpm.Rule{Prefix: prefix, Len: length})
}

func (u *ShardedUpdatable) lockSpan(lo, hi int) {
	for s := lo; s <= hi; s++ {
		u.wmu[s].Lock()
	}
}

func (u *ShardedUpdatable) unlockSpan(lo, hi int) {
	for s := lo; s <= hi; s++ {
		u.wmu[s].Unlock()
	}
}

// Insert places r in the delta buffer of every shard it covers; queries see
// it immediately (§6.5 TCAM-analogue), retraining happens at commit. On a
// partial failure (e.g. one shard's buffer is full) the insertion is rolled
// back from the shards that already accepted it.
func (u *ShardedUpdatable) Insert(r lpm.Rule) error {
	if err := r.Validate(u.width); err != nil {
		return err
	}
	lo, hi := u.coveredShards(r.Prefix, r.Len)
	u.lockSpan(lo, hi)
	defer u.unlockSpan(lo, hi)
	for s := lo; s <= hi; s++ {
		if err := u.shards[s].Insert(r); err != nil {
			for b := lo; b < s; b++ {
				u.shards[b].Delete(r.Prefix, r.Len)
			}
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	if th := u.threshold.Load(); th > 0 && u.shards[lo].PendingInserts() >= int(th) {
		select {
		case u.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Delete removes the rule from every covered shard (delta buffer first,
// then the live engine's no-retrain tombstone path).
func (u *ShardedUpdatable) Delete(prefix keys.Value, length int) error {
	lo, hi := u.coveredShards(prefix, length)
	u.lockSpan(lo, hi)
	defer u.unlockSpan(lo, hi)
	var firstErr error
	for s := lo; s <= hi; s++ {
		if err := u.shards[s].Delete(prefix, length); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return firstErr
}

// ModifyAction rewrites an installed rule's action in every covered shard
// without retraining (§6.5).
func (u *ShardedUpdatable) ModifyAction(prefix keys.Value, length int, action uint64) error {
	lo, hi := u.coveredShards(prefix, length)
	u.lockSpan(lo, hi)
	defer u.unlockSpan(lo, hi)
	var firstErr error
	for s := lo; s <= hi; s++ {
		if err := u.shards[s].ModifyAction(prefix, length, action); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return firstErr
}

// PendingInserts sums the delta-buffer occupancy across shards.
func (u *ShardedUpdatable) PendingInserts() int {
	total := 0
	for _, s := range u.shards {
		total += s.PendingInserts()
	}
	return total
}

// Commit rebuilds shard i from its merged rule-set and swaps it in
// atomically. Lookups proceed against the old engine for the duration.
// Success and failure both feed the shard's health state: a failure
// schedules a backed-off background retry, a success clears any pending
// failure (the LastCommitErr contract).
func (u *ShardedUpdatable) Commit(i int) error {
	u.wmu[i].Lock()
	defer u.wmu[i].Unlock()
	st := &u.states[i]
	st.mu.Lock()
	if st.consecFails > 0 {
		metCommitRetries.Inc()
	}
	st.mu.Unlock()
	start := time.Now()
	err := u.shards[i].Commit()
	metRebuildMs.ObserveInt(int(time.Since(start).Milliseconds()))
	if err != nil {
		metCommitErrs.Inc()
		err = fmt.Errorf("shard %d: %w", i, err)
		st.recordFailure(err, u.backoff)
		return err
	}
	metCommits.Inc()
	st.recordSuccess()
	return nil
}

// CommitAll commits every shard with pending insertions, sequentially (one
// retrain's worth of CPU at a time, like the background committer).
func (u *ShardedUpdatable) CommitAll() error {
	var firstErr error
	for i, s := range u.shards {
		if s.PendingInserts() == 0 {
			continue
		}
		if err := u.Commit(i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// StartAutoCommit launches the background committer: every interval (and
// immediately once any shard's pending insertions reach threshold) it
// commits each dirty shard, one at a time, off the query path. A failing
// shard is retried on the capped-exponential backoff schedule without
// blocking the other shards' commits. interval ≤ 0 selects 100ms;
// threshold ≤ 0 disables the early nudge (time-based only).
func (u *ShardedUpdatable) StartAutoCommit(interval time.Duration, threshold int) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	u.threshold.Store(int64(threshold))
	u.wg.Add(1)
	go u.commitLoop(interval)
}

// RebalanceTiers runs one tier placement pass on every shard's current live
// engine (no-op for untiered configs) and returns the totals. Each shard's
// migrations publish through its own epoch inside RebalanceTier, so a cached
// reader of shard i is invalidated exactly when shard i's placement moved.
func (u *ShardedUpdatable) RebalanceTiers() (promoted, demoted int) {
	for i := range u.shards {
		p, d := u.Engine(i).RebalanceTier()
		promoted += p
		demoted += d
	}
	return promoted, demoted
}

// StartTierRebalancer launches the background tier rebalancer: every
// interval it runs one placement pass per shard against whatever engine is
// live at that moment — an engine swapped in by a commit starts all-fast and
// is picked up on the next pass, so placement survives retrains without any
// coordination with the committer. interval ≤ 0 selects 1s. The goroutine
// stops with Close, alongside the committer.
func (u *ShardedUpdatable) StartTierRebalancer(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	u.wg.Add(1)
	go func() {
		defer u.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-u.stop:
				return
			case <-t.C:
				u.RebalanceTiers()
			}
		}
	}()
}

// commitLoop wakes on the ticker, on a writer's kick, or when a backed-off
// shard becomes retryable — whichever is earliest. The kick channel holds
// one buffered nudge, which is sufficient re-arming: a kick raced with an
// in-flight pass parks in the buffer and re-triggers a full scan, and every
// pass scans all shards, so a dirty shard is never stranded until the next
// timer tick (regression-tested by TestKickDuringInFlightCommitNotStranded).
func (u *ShardedUpdatable) commitLoop(interval time.Duration) {
	defer u.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	retry := time.NewTimer(time.Hour)
	if !retry.Stop() {
		<-retry.C
	}
	for {
		var retryC <-chan time.Time
		if d, ok := u.earliestRetry(); ok {
			retry.Reset(max(d, time.Millisecond))
			retryC = retry.C
		}
		select {
		case <-u.stop:
			return
		case <-t.C:
		case <-u.kick:
		case <-retryC:
		}
		if retryC != nil && !retry.Stop() {
			select {
			case <-retry.C:
			default:
			}
		}
		u.commitPass()
	}
}

// earliestRetry returns the wait until the soonest backed-off dirty shard
// becomes retryable (false when no shard is awaiting retry).
func (u *ShardedUpdatable) earliestRetry() (time.Duration, bool) {
	var best time.Time
	for i := range u.states {
		st := &u.states[i]
		st.mu.Lock()
		at := st.retryAt
		st.mu.Unlock()
		if at.IsZero() || u.shards[i].PendingInserts() == 0 {
			continue
		}
		if best.IsZero() || at.Before(best) {
			best = at
		}
	}
	if best.IsZero() {
		return 0, false
	}
	return time.Until(best), true
}

// commitPass commits every dirty shard that is not waiting out a backoff.
func (u *ShardedUpdatable) commitPass() {
	now := time.Now()
	for i, s := range u.shards {
		if s.PendingInserts() == 0 {
			// A failure whose pending rules were since withdrawn has
			// nothing left to be stale about.
			u.states[i].clearIfIdle()
			continue
		}
		st := &u.states[i]
		st.mu.Lock()
		wait := st.retryAt
		st.mu.Unlock()
		if !wait.IsZero() && now.Before(wait) {
			continue
		}
		u.Commit(i) // outcome recorded in the shard's state
	}
}

// LastCommitErr returns the most recent unresolved commit failure across
// shards — non-nil while any shard is degraded or stale, nil once every
// failing shard has since committed successfully (or had its pending rules
// withdrawn).
func (u *ShardedUpdatable) LastCommitErr() error {
	var (
		newest   error
		newestAt time.Time
	)
	for i := range u.states {
		st := &u.states[i]
		if u.shards[i].PendingInserts() == 0 {
			// The failure's pending rules were withdrawn (or a concurrent
			// commit just drained them): resolve it here rather than waiting
			// for the next background pass.
			st.clearIfIdle()
			continue
		}
		st.mu.Lock()
		if st.lastErr != nil && (newest == nil || st.lastErrAt.After(newestAt)) {
			newest, newestAt = st.lastErr, st.lastErrAt
		}
		st.mu.Unlock()
	}
	return newest
}

// Close stops the background committer and the batch pool; lookups remain
// valid afterwards (serially). It fails loudly when a commit failure is
// still unresolved — pending rules exist that never made it into a trained
// engine — so callers cannot silently discard a dirty shard.
func (u *ShardedUpdatable) Close() error {
	u.closeOnce.Do(func() {
		close(u.stop)
		u.wg.Wait()
		u.router.close()
	})
	if err := u.LastCommitErr(); err != nil {
		return fmt.Errorf("shard: closed with unresolved commit failure (%d rules pending): %w",
			u.PendingInserts(), err)
	}
	return nil
}

// Verify checks every shard's live engine against the trie oracle. Pending
// delta-buffer rules are not part of the engines, so callers normally
// CommitAll first.
func (u *ShardedUpdatable) Verify() error {
	for i, s := range u.shards {
		if err := s.Engine().Verify(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
