package shard

import (
	"neurolpm/internal/lcache"
)

// cachePlane is the sharded engine's result-cache layout (DESIGN.md §12):
// one private cache per pool worker — a worker runs one shard group at a
// time, so probes and fills need no locks and never share a cache line with
// another worker — plus a pool of spare caches checked out, exclusively, by
// paths without a stable worker identity (the serial fan-out when no pool
// exists, and single-key lookups). Invalidation does not live here: each
// shard's core engine carries its own epoch, and a cached entry is only ever
// probed under its own shard's epoch because the shard index is a pure
// function of the key.
type cachePlane struct {
	perWorker []*lcache.Cache
	spares    *lcache.Pool
	bytes     int
}

// EnableCache installs the result-cache plane with per-cache tables of at
// most bytes bytes (≤ 0 disables). Not safe to call concurrently with
// lookups: enable before serving traffic.
func (r *router) EnableCache(bytes int) {
	if bytes <= 0 {
		r.cache = nil
		return
	}
	cp := &cachePlane{bytes: bytes, spares: lcache.NewPool(bytes)}
	if r.pool != nil {
		cp.perWorker = make([]*lcache.Cache, r.pool.workers)
		for i := range cp.perWorker {
			cp.perWorker[i] = lcache.New(bytes)
		}
	}
	r.cache = cp
}

// CacheEnabled reports whether the result-cache plane is installed.
func (r *router) CacheEnabled() bool { return r.cache != nil }

// CacheBytes returns the per-cache table budget (0 when disabled).
func (r *router) CacheBytes() int {
	if r.cache == nil {
		return 0
	}
	return r.cache.bytes
}

// cacheFor hands the caller a cache it owns exclusively until releaseCache:
// the executing pool worker's private cache (worker ≥ 0), or a spare checked
// out of the pool (worker < 0 — serial fan-out, single-key paths). nil when
// the plane is disabled; every lcache operation tolerates a nil cache.
func (r *router) cacheFor(worker int) (c *lcache.Cache, spare bool) {
	cp := r.cache
	if cp == nil {
		return nil, false
	}
	if worker >= 0 && worker < len(cp.perWorker) {
		return cp.perWorker[worker], false
	}
	return cp.spares.Get(), true
}

// releaseCache returns a spare taken by cacheFor (no-op for worker caches).
func (r *router) releaseCache(c *lcache.Cache, spare bool) {
	if spare {
		r.cache.spares.Put(c)
	}
}
