package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/telemetry"
)

func TestShardedCachedBatchMatchesOracle(t *testing.T) {
	const width = 32
	rs := randomRuleSet(t, width, 2000, 21)
	s, err := Build(rs, quickBucketed(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableCache(64 << 10)
	if !s.CacheEnabled() {
		t.Fatal("cache plane not enabled")
	}
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(23))
	hot := randomKeys(width, 64, 25)
	batch := make([]keys.Value, 512)
	for round := 0; round < 16; round++ {
		for i := range batch {
			if i%4 == 0 {
				batch[i] = keys.FromUint64(rng.Uint64() & (1<<width - 1))
			} else {
				batch[i] = hot[rng.Intn(len(hot))] // repeats → cache hits
			}
		}
		res := s.LookupBatch(batch)
		for i, k := range batch {
			want, wantOK := oracle.Lookup(k)
			if res[i].Matched != wantOK || (wantOK && res[i].Action != want) {
				t.Fatalf("round %d key %v: cached batch (%d,%v), oracle (%d,%v)",
					round, k, res[i].Action, res[i].Matched, want, wantOK)
			}
		}
	}
}

func TestShardedLookupCachedOutcomes(t *testing.T) {
	const width = 32
	rs := randomRuleSet(t, width, 500, 31)
	s, err := Build(rs, quickBucketed(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	k := randomKeys(width, 1, 33)[0]
	if _, _, o := s.LookupCached(k); o != lcache.None {
		t.Fatalf("outcome with the plane disabled = %v, want none/off", o)
	}
	s.EnableCache(32 << 10)
	if _, _, o := s.LookupCached(k); o != lcache.Miss {
		t.Fatalf("first cached probe = %v, want miss", o)
	}
	// sync.Pool may drop the worker cache between probes (GC runs more often
	// under -race), losing the fill — so require a hit within a few probes
	// rather than on exactly the second one.
	hit := false
	for i := 0; i < 32 && !hit; i++ {
		_, _, o := s.LookupCached(k)
		hit = o == lcache.Hit
	}
	if !hit {
		t.Fatal("no cache hit within 32 repeated probes of the same key")
	}
	// Mutating the key's shard engine must invalidate: delete any rule from
	// that shard (the epoch is per-shard, so this key's next probe is stale).
	e := s.Engine(s.ShardOf(k))
	before := e.CacheEpoch().Load()
	r := rs.Rules[0]
	for _, rr := range rs.Rules {
		lo, hi := shardSpan(width, 1, rr)
		if lo <= s.ShardOf(k) && s.ShardOf(k) <= hi {
			r = rr
			break
		}
	}
	if err := e.Delete(r.Prefix, r.Len); err != nil {
		// The picked rule may not be installed in this sub-engine with a
		// replication miss; skip rather than contort the fixture.
		t.Skipf("probe rule not deletable in shard: %v", err)
	}
	if after := e.CacheEpoch().Load(); after != before+1 {
		t.Fatalf("shard-engine delete did not bump its epoch: %d → %d", before, after)
	}
	// The warm entry must now classify as stale. A probe that lands on a
	// pool-dropped (fresh) cache misses and re-fills instead, and a stale
	// probe itself re-fills at the new epoch — so drive the loop: a hit means
	// the entry was re-filled fresh, so bump the epoch and probe again.
	stale := false
	for i := 0; i < 64 && !stale; i++ {
		_, _, o := s.LookupCached(k)
		switch o {
		case lcache.Stale:
			stale = true
		case lcache.Hit:
			e.CacheEpoch().Bump()
		}
	}
	if !stale {
		t.Fatal("never observed a stale outcome after the shard engine's epoch was bumped")
	}
}

// TestShardedUpdatableCachedSequentialStorm interleaves cached lookups with
// inserts, deletes, modifies, failed and successful commits, checking every
// answer against a lockstep trie oracle — the sequential half of the
// "0 oracle mismatches under updates" acceptance bar (the concurrent half is
// TestConcurrentCachedReadersWithUpdates; the adversarial half is
// planetest.FuzzStackVsOracle).
func TestShardedUpdatableCachedSequentialStorm(t *testing.T) {
	const width = 32
	rs := randomRuleSet(t, width, 400, 51)
	in := fault.NewInjector(99)
	cfg := core.Config{BucketSize: 8, Model: quickModel(), Fault: in.Hook()}
	u, err := BuildUpdatable(rs, cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.EnableCache(64 << 10)

	live := append([]lpm.Rule(nil), rs.Rules...)
	rng := rand.New(rand.NewSource(53))
	hot := randomKeys(width, 48, 57)
	check := func(stage string) {
		t.Helper()
		set, err := lpm.NewRuleSet(width, append([]lpm.Rule(nil), live...))
		if err != nil {
			t.Fatal(err)
		}
		oracle := lpm.NewTrieMatcher(set)
		// Probe the hot set twice per stage — the second pass is all cache
		// hits unless an update invalidated — plus fresh random keys, through
		// both the batch and the single-key cached paths.
		batch := append(append([]keys.Value(nil), hot...), hot...)
		for i := 0; i < 16; i++ {
			batch = append(batch, keys.FromUint64(rng.Uint64()&(1<<width-1)))
		}
		res := u.LookupBatch(batch)
		for i, k := range batch {
			want, wantOK := oracle.Lookup(k)
			if res[i].Matched != wantOK || (wantOK && res[i].Action != want) {
				t.Fatalf("%s: batch key %v: (%d,%v), oracle (%d,%v)",
					stage, k, res[i].Action, res[i].Matched, want, wantOK)
			}
		}
		for _, k := range hot {
			got, ok, _ := u.LookupCached(k)
			want, wantOK := oracle.Lookup(k)
			if ok != wantOK || (wantOK && got != want) {
				t.Fatalf("%s: cached key %v: (%d,%v), oracle (%d,%v)", stage, k, got, ok, want, wantOK)
			}
		}
	}

	check("baseline")
	for step := 0; step < 40; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert
			r := lpm.Rule{
				Prefix: keys.FromUint64(rng.Uint64() & (1<<width - 1)),
				Len:    width,
				Action: uint64(rng.Intn(1000)) + 1,
			}
			dup := false
			for _, lr := range live {
				if lr.Prefix == r.Prefix && lr.Len == r.Len {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if err := u.Insert(r); err != nil {
				if errors.Is(err, core.ErrDeltaFull) {
					continue
				}
				t.Fatalf("insert: %v", err)
			}
			live = append(live, r)
		case 4, 5: // delete
			j := rng.Intn(len(live))
			if err := u.Delete(live[j].Prefix, live[j].Len); err != nil {
				t.Fatalf("delete: %v", err)
			}
			live = append(live[:j], live[j+1:]...)
		case 6, 7: // modify
			j := rng.Intn(len(live))
			a := uint64(rng.Intn(1000)) + 2000
			if err := u.ModifyAction(live[j].Prefix, live[j].Len, a); err != nil {
				t.Fatalf("modify: %v", err)
			}
			live[j].Action = a
		case 8: // failed commit
			s := rng.Intn(u.Shards())
			if u.shards[s].PendingInserts() == 0 {
				continue
			}
			in.FailNext(fault.SiteRetrain, 1)
			err := u.Commit(s)
			in.Clear(fault.SiteRetrain)
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("injected commit failure lost: %v", err)
			}
		case 9: // successful commit
			s := rng.Intn(u.Shards())
			if u.shards[s].PendingInserts() == 0 {
				continue
			}
			if err := u.Commit(s); err != nil {
				t.Fatalf("commit: %v", err)
			}
		}
		check(fmt.Sprintf("step %d", step))
	}
	if err := u.CommitAll(); err != nil {
		t.Fatal(err)
	}
	check("after final commit")
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCachedReadersWithUpdates is the cached torn-snapshot stress:
// cached batch readers stream a probe key + steady keys while a writer
// insert/delete-cycles the probe rule and the background committer rebuilds.
// The cache must never let an answer escape the {base, probe} envelope — a
// stale cached action surviving an update would show up here as a torn read.
// Runs under -race in CI's race-and-fuzz job.
func TestConcurrentCachedReadersWithUpdates(t *testing.T) {
	const width = 16
	rs := randomRuleSet(t, width, 200, 41)
	u, err := BuildUpdatable(rs, quickBucketed(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.EnableCache(32 << 10)
	u.StartAutoCommit(2*time.Millisecond, 4)

	probe := freeProbeRule(t, rs, width)
	baseAction, baseOK := lpm.NewTrieMatcher(rs).Lookup(probe.Prefix)
	steady := randomKeys(width, 128, 43)
	for i, k := range steady {
		if k == probe.Prefix {
			steady[i] = k.Xor(keys.FromUint64(1))
		}
	}
	oracle := lpm.NewTrieMatcher(rs)
	steadyWant := make([]Result, len(steady))
	for i, k := range steady {
		steadyWant[i].Action, steadyWant[i].Matched = oracle.Lookup(k)
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]keys.Value, 0, 2*len(steady)+2)
			// Every key appears twice per batch so the second occurrence
			// exercises the intra-batch hit path.
			batch = append(batch, probe.Prefix)
			batch = append(batch, steady...)
			batch = append(batch, probe.Prefix)
			batch = append(batch, steady...)
			for !stop.Load() {
				res := u.LookupBatch(batch)
				for _, pi := range []int{0, len(steady) + 1} {
					got := res[pi]
					probeSeen := got.Matched && got.Action == probe.Action
					baseSeen := got.Matched == baseOK && (!baseOK || got.Action == baseAction)
					if !probeSeen && !baseSeen {
						torn.Add(1)
					}
				}
				for i, want := range steadyWant {
					if res[i+1] != want || res[i+2+len(steady)] != want {
						torn.Add(1)
					}
				}
				// The single-key cached path races the same updates.
				a, ok, _ := u.LookupCached(probe.Prefix)
				probeSeen := ok && a == probe.Action
				baseSeen := ok == baseOK && (!baseOK || a == baseAction)
				if !probeSeen && !baseSeen {
					torn.Add(1)
				}
			}
		}()
	}

	deadline := time.Now().Add(1500 * time.Millisecond)
	cycles := 0
	for time.Now().Before(deadline) {
		if err := u.Insert(probe); err != nil {
			t.Errorf("insert: %v", err)
			break
		}
		time.Sleep(500 * time.Microsecond)
		if err := u.Delete(probe.Prefix, probe.Len); err != nil {
			t.Errorf("delete: %v", err)
			break
		}
		cycles++
	}
	stop.Store(true)
	wg.Wait()
	if got := torn.Load(); got != 0 {
		t.Fatalf("%d stale/torn cached reads over %d writer cycles", got, cycles)
	}
	if err := u.LastCommitErr(); err != nil {
		t.Fatalf("background commit failed: %v", err)
	}
	if cycles < 10 {
		t.Fatalf("writer made only %d cycles; stress run too short", cycles)
	}
	hits := telemetry.Default.Counter("neurolpm_lcache_hits_total", "")
	if hits.Load() == 0 {
		t.Fatal("stress run produced zero cache hits — cached path not exercised")
	}
}
