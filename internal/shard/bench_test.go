package shard

import (
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
)

// Benchmarks decompose batch throughput: engine lookup vs routed lookup vs
// the full LookupBatch machinery. Run with -bench=. -benchmem.

func benchSetup(b *testing.B, nShards int) (*core.Engine, *Sharded, []keys.Value) {
	b.Helper()
	rs := randomRuleSet(b, 32, 4096, 7)
	eng, err := core.Build(rs, quickBucketed())
	if err != nil {
		b.Fatal(err)
	}
	sh, err := Build(rs, quickBucketed(), nShards)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sh.Close)
	return eng, sh, randomKeys(32, 4096, 9)
}

func BenchmarkSingleEngineLookup(b *testing.B) {
	eng, _, ks := benchSetup(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Lookup(ks[i%len(ks)])
	}
}

func BenchmarkShardedLookup(b *testing.B) {
	_, sh, ks := benchSetup(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Lookup(ks[i%len(ks)])
	}
}

func BenchmarkShardedLookupBatch256(b *testing.B) {
	_, sh, ks := benchSetup(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := i % (len(ks) - 256)
		sh.LookupBatch(ks[lo : lo+256])
	}
}

func BenchmarkShardedLookupBatch256Scalar(b *testing.B) {
	// Contrast row: the same fan-out but per-key engine lookups inside each
	// group, isolating what the compiled batch plane adds over routing.
	_, sh, ks := benchSetup(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := i % (len(ks) - 256)
		batch := ks[lo : lo+256]
		sh.lookupBatch(batch, func(shard, _ int, group []int32, out []Result) {
			e := sh.engines[shard]
			for _, idx := range group {
				out[idx].Action, out[idx].Matched = e.Lookup(batch[idx])
			}
		})
	}
}

func BenchmarkSingleEngineLookupBatch256(b *testing.B) {
	// The compiled batch plane with no sharding at all: one engine, blocks
	// of 256 keys through Engine.LookupBatch.
	eng, _, ks := benchSetup(b, 4)
	var out []core.BatchResult
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := i % (len(ks) - 256)
		out = eng.LookupBatch(ks[lo:lo+256], out)
	}
}

func BenchmarkShardedLookupBatch256NoPoolDirect(b *testing.B) {
	// Upper bound: direct per-shard engine calls in grouped order, no
	// grouping machinery at all.
	_, sh, ks := benchSetup(b, 4)
	groups := make([][]keys.Value, sh.Shards())
	for _, k := range ks {
		s := sh.ShardOf(k)
		groups[s] = append(groups[s], k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; {
		for s, g := range groups {
			for _, k := range g {
				sh.engines[s].Lookup(k)
				i++
			}
		}
	}
}
