package shard

import (
	"sync"
	"sync/atomic"

	"neurolpm/internal/telemetry"
)

// padUint64 is a cache-line-padded counter, one per shard, so concurrent
// batch workers tallying different shards never share a coherence granule.
type padUint64 struct {
	n atomic.Uint64
	_ [56]byte
}

// pool is a fixed set of workers draining a job channel — the software
// analogue of the paper's fixed complement of binary-search FSMs (§6.2):
// capacity is provisioned once, work queues when all units are busy. Jobs
// receive the executing worker's index (0..workers-1): per-worker state like
// the result-cache plane keys off it, since a worker runs one job at a time.
type pool struct {
	jobs    chan func(worker int)
	workers int
	wg      sync.WaitGroup
	once    sync.Once
}

func newPool(workers int) *pool {
	p := &pool{jobs: make(chan func(int), workers), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(w int) {
			defer p.wg.Done()
			for f := range p.jobs {
				f(w)
			}
		}(i)
	}
	return p
}

// submit blocks until a worker accepts the job.
func (p *pool) submit(f func(worker int)) { p.jobs <- f }

// close stops the workers after the queue drains. Idempotent.
func (p *pool) close() {
	p.once.Do(func() { close(p.jobs) })
	p.wg.Wait()
}

// Batch and rebuild telemetry, registered alongside the core engine metrics
// (DESIGN.md §8 carries the metric → paper-section map).
var (
	metBatches = telemetry.Default.Counter("neurolpm_shard_batches_total",
		"LookupBatch calls served by a sharded engine")
	metBatchKeys = telemetry.Default.Counter("neurolpm_shard_batch_keys_total",
		"Keys resolved through LookupBatch")
	metBatchSize = telemetry.Default.Histogram("neurolpm_shard_batch_size",
		"Keys per LookupBatch call")
	metRebuildMs = telemetry.Default.Histogram("neurolpm_shard_rebuild_ms",
		"Per-shard background rebuild (retrain + swap) duration in milliseconds (§6.5)")
	metCommits = telemetry.Default.Counter("neurolpm_shard_commits_total",
		"Per-shard commits (background auto-commit and explicit)")
	metCommitErrs = telemetry.Default.Counter("neurolpm_shard_commit_errors_total",
		"Per-shard commits that failed (rule-set invalid or training error)")
	metCommitRetries = telemetry.Default.Counter("neurolpm_shard_commit_retries_total",
		"Commit attempts made while the shard already had an unresolved failure")
)
