package shard

import (
	"strconv"
	"sync"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/telemetry"
)

// Health classifies one shard's update plane (DESIGN.md §11). The query
// plane is deliberately not part of the classification: readers always
// answer from the last good engine plus the delta overlay, so a shard in
// any state serves correct (possibly stale-model, never stale-data)
// answers.
//
//	Healthy  — no unresolved commit failure.
//	Degraded — the last commit attempt failed; retries are scheduled and
//	           pending updates are still served from the delta buffer.
//	Stale    — commits have kept failing for longer than the staleness
//	           budget; operators (and /healthz) should treat the shard as
//	           needing intervention.
type Health int32

const (
	Healthy Health = iota
	Degraded
	Stale
)

// String returns the lowercase state name used by /healthz and /metrics.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Stale:
		return "stale"
	}
	return "unknown"
}

// DefaultStaleBudget is how long a shard may keep failing commits before it
// is reported Stale. Thirty seconds covers hundreds of retries at the
// DefaultBackoff cap — a shard that is still failing then is not having a
// transient problem.
const DefaultStaleBudget = 30 * time.Second

// ShardStatus is one shard's observable update-plane state.
type ShardStatus struct {
	Shard               int
	Health              Health
	Pending             int           // delta-buffer rules awaiting commit
	ConsecutiveFailures int           // commit failures since the last success
	StaleFor            time.Duration // time since the first unresolved failure
	LastErr             error         // last commit failure; nil when healthy
	Commits             uint64        // lifetime successful commits
	Failures            uint64        // lifetime failed commit attempts
}

// shardState is the committer-side record behind ShardStatus. Its mutex is
// distinct from the shard's writer lock so health reads never wait on an
// in-flight retrain.
type shardState struct {
	mu          sync.Mutex
	lastErr     error
	lastErrAt   time.Time
	consecFails int
	firstFailAt time.Time
	retryAt     time.Time // next allowed background attempt; zero = now
	commits     uint64
	failures    uint64
}

// recordFailure notes a failed commit attempt and schedules the retry.
func (st *shardState) recordFailure(err error, b core.Backoff) {
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lastErr = err
	st.lastErrAt = now
	st.consecFails++
	st.failures++
	if st.firstFailAt.IsZero() {
		st.firstFailAt = now
	}
	st.retryAt = now.Add(b.Delay(st.consecFails))
}

// recordSuccess clears the failure state after a successful commit.
func (st *shardState) recordSuccess() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.commits++
	st.clearLocked()
}

// clearIfIdle resolves a failure whose pending rules have since been
// withdrawn (deleted from the delta buffer): with nothing left to commit
// there is nothing to be stale about. Returns whether anything was cleared.
func (st *shardState) clearIfIdle() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.consecFails == 0 {
		return false
	}
	st.clearLocked()
	return true
}

func (st *shardState) clearLocked() {
	st.lastErr = nil
	st.consecFails = 0
	st.firstFailAt = time.Time{}
	st.retryAt = time.Time{}
}

// ShardStatus reports shard i's current update-plane state. The Health
// classification is computed at read time against the staleness budget, so
// a shard transitions Degraded→Stale without any committer activity.
func (u *ShardedUpdatable) ShardStatus(i int) ShardStatus {
	st := &u.states[i]
	out := ShardStatus{Shard: i, Pending: u.shards[i].PendingInserts()}
	st.mu.Lock()
	out.ConsecutiveFailures = st.consecFails
	out.LastErr = st.lastErr
	out.Commits = st.commits
	out.Failures = st.failures
	if st.consecFails > 0 {
		out.StaleFor = time.Since(st.firstFailAt)
	}
	st.mu.Unlock()
	switch {
	case out.ConsecutiveFailures == 0:
		out.Health = Healthy
	case out.StaleFor > u.StaleBudget():
		out.Health = Stale
	default:
		out.Health = Degraded
	}
	return out
}

// Statuses reports every shard's status (index-aligned with shard ids).
func (u *ShardedUpdatable) Statuses() []ShardStatus {
	out := make([]ShardStatus, u.Shards())
	for i := range out {
		out[i] = u.ShardStatus(i)
	}
	return out
}

// StaleBudget returns the current Degraded→Stale threshold.
func (u *ShardedUpdatable) StaleBudget() time.Duration {
	return time.Duration(u.staleBudget.Load())
}

// SetStaleBudget reconfigures the Degraded→Stale threshold (safe at any
// time; d ≤ 0 restores the default).
func (u *ShardedUpdatable) SetStaleBudget(d time.Duration) {
	if d <= 0 {
		d = DefaultStaleBudget
	}
	u.staleBudget.Store(int64(d))
}

// SetCommitBackoff reconfigures the retry schedule. Call it before
// StartAutoCommit; it is not synchronized against an already-running
// committer.
func (u *ShardedUpdatable) SetCommitBackoff(b core.Backoff) { u.backoff = b }

// registerHealthGauges publishes the per-shard health surface for the most
// recently built updatable engine (last-writer-wins, like the balance
// gauges).
func (u *ShardedUpdatable) registerHealthGauges() {
	healthVec := telemetry.Default.GaugeVec("neurolpm_shard_health",
		"Per-shard update-plane state (0 healthy, 1 degraded, 2 stale)", "shard")
	failsVec := telemetry.Default.GaugeVec("neurolpm_shard_consecutive_commit_failures",
		"Commit failures since the shard's last successful commit", "shard")
	for i := range u.shards {
		i := i
		healthVec.Set(strconv.Itoa(i), func() float64 { return float64(u.ShardStatus(i).Health) })
		failsVec.Set(strconv.Itoa(i), func() float64 { return float64(u.ShardStatus(i).ConsecutiveFailures) })
	}
	telemetry.Default.Gauge("neurolpm_shard_unhealthy",
		"Shards currently degraded or stale",
		func() float64 {
			n := 0
			for i := range u.shards {
				if u.ShardStatus(i).Health != Healthy {
					n++
				}
			}
			return float64(n)
		})
}
