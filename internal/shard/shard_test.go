package shard

import (
	"math/rand"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

func quickModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 8}
	cfg.Samples = 512
	cfg.Epochs = 20
	cfg.MaxRounds = 2
	return cfg
}

func quickSRAMOnly() core.Config { return core.Config{Model: quickModel()} }
func quickBucketed() core.Config { return core.Config{BucketSize: 8, Model: quickModel()} }

// randomRuleSet mirrors the generator used across the core and serve tests.
func randomRuleSet(t testing.TB, width, n int, seed int64) *lpm.RuleSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for len(rules) < n {
		length := 1 + rng.Intn(width)
		prefix := keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
		prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(len(rules) + 1)})
	}
	rs, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func randomKeys(width, n int, seed int64) []keys.Value {
	rng := rand.New(rand.NewSource(seed))
	mask := keys.MaxValue(width)
	out := make([]keys.Value, n)
	for i := range out {
		out[i] = keys.FromParts(rng.Uint64(), rng.Uint64()).And(mask)
	}
	return out
}

func TestBuildRejectsBadShardCounts(t *testing.T) {
	rs := randomRuleSet(t, 16, 50, 1)
	for _, n := range []int{0, -1, 3, 6, 1 << (MaxShardBits + 1)} {
		if _, err := Build(rs, quickSRAMOnly(), n); err == nil {
			t.Errorf("Build accepted shard count %d", n)
		}
	}
	// More shard bits than key bits.
	rs4 := randomRuleSet(t, 4, 5, 2)
	if _, err := Build(rs4, quickSRAMOnly(), 16); err == nil {
		t.Error("Build accepted 16 shards on a 4-bit domain")
	}
}

func TestShardSpanReplication(t *testing.T) {
	// A /1 rule on a 4-shard (2-bit) partition covers shards 0..1 or 2..3;
	// a /0 rule covers all; a /2+ rule exactly one.
	cases := []struct {
		r      lpm.Rule
		lo, hi int
	}{
		{lpm.Rule{Len: 0}, 0, 3},
		{lpm.Rule{Prefix: keys.FromUint64(0), Len: 1}, 0, 1},
		{lpm.Rule{Prefix: keys.FromUint64(1 << 15), Len: 1}, 2, 3},
		{lpm.Rule{Prefix: keys.FromUint64(3 << 14), Len: 2}, 3, 3},
		{lpm.Rule{Prefix: keys.FromUint64(0xABCD), Len: 16}, 2, 2},
	}
	for _, c := range cases {
		lo, hi := shardSpan(16, 2, c.r)
		if lo != c.lo || hi != c.hi {
			t.Errorf("shardSpan(%v) = [%d,%d], want [%d,%d]", c.r, lo, hi, c.lo, c.hi)
		}
	}
}

// TestShardedVsOracle is the differential core of the package: every key of
// a random stream must match the trie oracle, for both engine designs and
// several shard counts, through Lookup and LookupBatch.
func TestShardedVsOracle(t *testing.T) {
	rs := randomRuleSet(t, 32, 400, 7)
	oracle := lpm.NewTrieMatcher(rs)
	ks := randomKeys(32, 4096, 99)
	// Include every rule boundary — the adversarial points.
	for _, r := range rs.Rules {
		ks = append(ks, r.Low(32), r.High(32))
	}
	for _, cfg := range []core.Config{quickSRAMOnly(), quickBucketed()} {
		for _, n := range []int{1, 4, 8} {
			s, err := Build(rs, cfg, n)
			if err != nil {
				t.Fatalf("Build(%d shards): %v", n, err)
			}
			got := s.LookupBatch(ks)
			for i, k := range ks {
				a, ok := oracle.Lookup(k)
				if got[i].Matched != ok || (ok && got[i].Action != a) {
					t.Fatalf("%d shards: batch mismatch at %v: got (%d,%v) want (%d,%v)",
						n, k, got[i].Action, got[i].Matched, a, ok)
				}
				sa, sok := s.Lookup(k)
				if sok != ok || (ok && sa != a) {
					t.Fatalf("%d shards: Lookup mismatch at %v", n, k)
				}
			}
			s.Close()
		}
	}
}

func TestEmptyShardsAnswerNoMatch(t *testing.T) {
	// All rules under prefix 0b00 → shards 1..3 of a 4-shard engine are empty.
	rules := []lpm.Rule{
		{Prefix: keys.FromUint64(0), Len: 8, Action: 1},
		{Prefix: keys.FromUint64(1 << 20), Len: 12, Action: 2},
	}
	rs, err := lpm.NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(rs, quickSRAMOnly(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.Lookup(keys.FromUint64(0xFFFFFFFF)); ok {
		t.Error("empty shard returned a match")
	}
	if a, ok := s.Lookup(keys.FromUint64(5)); !ok || a != 1 {
		t.Errorf("populated shard: got (%d,%v), want (1,true)", a, ok)
	}
}

func TestLookupBatchPositional(t *testing.T) {
	rs := randomRuleSet(t, 32, 100, 3)
	s, err := Build(rs, quickSRAMOnly(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ks := randomKeys(32, 513, 5) // odd size: exercises uneven groups
	batch := s.LookupBatch(ks)
	if len(batch) != len(ks) {
		t.Fatalf("batch length %d, want %d", len(batch), len(ks))
	}
	for i, k := range ks {
		a, ok := s.Lookup(k)
		if batch[i].Matched != ok || batch[i].Action != a {
			t.Fatalf("position %d: batch (%d,%v) vs Lookup (%d,%v)",
				i, batch[i].Action, batch[i].Matched, a, ok)
		}
	}
	if got := s.LookupBatch(nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

func TestShardedVerify(t *testing.T) {
	rs := randomRuleSet(t, 16, 120, 11)
	s, err := Build(rs, quickBucketed(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBalanceTelemetry(t *testing.T) {
	rs := randomRuleSet(t, 32, 100, 13)
	s, err := Build(rs, quickSRAMOnly(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.LookupBatch(randomKeys(32, 1024, 17))
	counts := s.loadCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 1024 {
		t.Errorf("load counts sum to %d, want 1024", total)
	}
	if ib := imbalance(counts); ib < 1 {
		t.Errorf("imbalance %f < 1", ib)
	}
}
