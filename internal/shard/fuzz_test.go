package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

// fuzzModel is deliberately tiny: each fuzz execution trains a fresh model
// per shard, so the budget per iteration must stay in the low milliseconds.
func fuzzModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 4}
	cfg.Samples = 128
	cfg.Epochs = 10
	cfg.MaxRounds = 1
	return cfg
}

// deriveRules decodes raw fuzz bytes into a valid width-bit rule-set:
// 6 bytes per rule (4 prefix, 1 length, 1 action), wildcard bits masked,
// duplicates dropped, capped at 48 rules so training stays fast.
func deriveRules(width int, data []byte) []lpm.Rule {
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for i := 0; i+6 <= len(data) && len(rules) < 48; i += 6 {
		length := 1 + int(data[i+4])%width
		raw := uint64(data[i])<<24 | uint64(data[i+1])<<16 | uint64(data[i+2])<<8 | uint64(data[i+3])
		prefix := keys.FromUint64(raw).And(keys.MaxValue(width))
		prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(data[i+5]) + 1})
	}
	return rules
}

// FuzzShardedVsOracle is the differential fuzz target: for arbitrary
// rule-sets, shard counts and key streams, the sharded engine (batch and
// single-key paths) must agree with the trie oracle on every key — the
// CLAUDE.md correctness invariant under adversarial partitioning.
func FuzzShardedVsOracle(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2}, uint64(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 64, 0, 0, 0, 1, 6}, uint64(42), uint8(2))
	f.Add([]byte{}, uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, keySeed uint64, shardSel uint8) {
		const width = 32
		rules := deriveRules(width, data)
		rs, err := lpm.NewRuleSet(width, rules)
		if err != nil {
			t.Fatalf("derived rule-set invalid: %v", err)
		}
		nShards := []int{2, 4, 8}[int(shardSel)%3]
		s, err := Build(rs, core.Config{BucketSize: 8, Model: fuzzModel()}, nShards)
		if err != nil {
			t.Fatalf("Build(%d shards, %d rules): %v", nShards, rs.Len(), err)
		}
		defer s.Close()
		oracle := lpm.NewTrieMatcher(rs)
		ks := make([]keys.Value, 0, 2*len(rules)+64)
		for _, r := range rules {
			ks = append(ks, r.Low(width), r.High(width))
		}
		rng := rand.New(rand.NewSource(int64(keySeed)))
		for i := 0; i < 64; i++ {
			ks = append(ks, keys.FromUint64(rng.Uint64()&(1<<width-1)))
		}
		batch := s.LookupBatch(ks)
		for i, k := range ks {
			want, wantOK := oracle.Lookup(k)
			if batch[i].Matched != wantOK || (wantOK && batch[i].Action != want) {
				t.Fatalf("%d shards, key %v: batch (%d,%v), oracle (%d,%v)",
					nShards, k, batch[i].Action, batch[i].Matched, want, wantOK)
			}
			got, ok := s.Lookup(k)
			if ok != wantOK || (wantOK && got != want) {
				t.Fatalf("%d shards, key %v: Lookup (%d,%v), oracle (%d,%v)",
					nShards, k, got, ok, want, wantOK)
			}
		}
	})
}

// FuzzShardedUpdateVsOracle is the crash-consistency fuzz target (DESIGN.md
// §11): arbitrary interleavings of {Insert, Delete, ModifyAction, failed
// Commit, successful Commit} — with commit failures injected through the
// fault hook — must keep the sharded engine equal to a trie oracle over the
// logical rule-set after every step. Failed commits additionally must be
// observable through LastCommitErr and fully resolved by the final
// successful CommitAll (exactly-once apply).
func FuzzShardedUpdateVsOracle(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2, 0, 1, 2, 3, 4, 5, 6, 3, 0, 0, 0, 0, 0, 0, 0}, uint64(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 3, 1, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0}, uint64(42), uint8(2))
	f.Add([]byte{}, uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, keySeed uint64, shardSel uint8) {
		const width = 32
		split := len(data) / 2
		base := deriveRules(width, data[:split])
		rs, err := lpm.NewRuleSet(width, base)
		if err != nil {
			t.Fatalf("derived rule-set invalid: %v", err)
		}
		nShards := []int{2, 4, 8}[int(shardSel)%3]
		in := fault.NewInjector(keySeed | 1)
		cfg := core.Config{BucketSize: 8, Model: fuzzModel(), Fault: in.Hook()}
		u, err := BuildUpdatable(rs, cfg, nShards, 0)
		if err != nil {
			t.Fatalf("BuildUpdatable(%d shards, %d rules): %v", nShards, rs.Len(), err)
		}

		type ruleKey struct {
			p keys.Value
			l int
		}
		live := append([]lpm.Rule(nil), base...)
		installed := map[ruleKey]bool{}
		for _, r := range base {
			installed[ruleKey{r.Prefix, r.Len}] = true
		}
		rng := rand.New(rand.NewSource(int64(keySeed)))
		check := func(stage string) {
			t.Helper()
			set, err := lpm.NewRuleSet(width, append([]lpm.Rule(nil), live...))
			if err != nil {
				t.Fatalf("%s: model rule-set invalid: %v", stage, err)
			}
			oracle := lpm.NewTrieMatcher(set)
			ks := make([]keys.Value, 0, 2*len(live)+16)
			for _, r := range live {
				ks = append(ks, r.Low(width), r.High(width))
			}
			for i := 0; i < 16; i++ {
				ks = append(ks, keys.FromUint64(rng.Uint64()&(1<<width-1)))
			}
			for _, k := range ks {
				got, ok := u.Lookup(k)
				want, wantOK := oracle.Lookup(k)
				if ok != wantOK || (wantOK && got != want) {
					t.Fatalf("%s: key %v: engine (%d,%v), oracle (%d,%v)",
						stage, k, got, ok, want, wantOK)
				}
			}
		}

		// Up to 16 ops, 7 bytes each: opcode + rule/selector material.
		ops := data[split:]
		for i, n := 0, 0; i+7 <= len(ops) && n < 16; i, n = i+7, n+1 {
			switch ops[i] % 5 {
			case 0: // insert a fresh rule
				rr := deriveRules(width, ops[i+1:i+7])
				if len(rr) == 0 || installed[ruleKey{rr[0].Prefix, rr[0].Len}] {
					continue
				}
				r := rr[0]
				if err := u.Insert(r); err != nil {
					if errors.Is(err, core.ErrDeltaFull) {
						continue // backpressure is a legal outcome
					}
					t.Fatalf("insert %v: %v", r, err)
				}
				installed[ruleKey{r.Prefix, r.Len}] = true
				live = append(live, r)
			case 1: // delete an installed rule
				if len(live) == 0 {
					continue
				}
				j := int(ops[i+1]) % len(live)
				r := live[j]
				if err := u.Delete(r.Prefix, r.Len); err != nil {
					t.Fatalf("delete %v: %v", r, err)
				}
				delete(installed, ruleKey{r.Prefix, r.Len})
				live = append(live[:j], live[j+1:]...)
			case 2: // modify an installed rule's action
				if len(live) == 0 {
					continue
				}
				j := int(ops[i+1]) % len(live)
				a := uint64(ops[i+2]) + 1
				if err := u.ModifyAction(live[j].Prefix, live[j].Len, a); err != nil {
					t.Fatalf("modify %v: %v", live[j], err)
				}
				live[j].Action = a
			case 3: // failed commit of a dirty shard
				s := int(ops[i+1]) % u.Shards()
				if u.shards[s].PendingInserts() == 0 {
					continue
				}
				in.FailNext(fault.SiteRetrain, 1)
				err := u.Commit(s)
				in.Clear(fault.SiteRetrain)
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("injected commit failure lost: %v", err)
				}
				if u.LastCommitErr() == nil {
					t.Fatal("failed commit not observable through LastCommitErr")
				}
			case 4: // successful commit of a dirty shard
				s := int(ops[i+1]) % u.Shards()
				if u.shards[s].PendingInserts() == 0 {
					continue
				}
				if err := u.Commit(s); err != nil {
					t.Fatalf("commit shard %d: %v", s, err)
				}
			}
			check(fmt.Sprintf("after op %d", i/7))
		}

		// Recovery: a final successful commit applies everything exactly once
		// and resolves any lingering failure state.
		if err := u.CommitAll(); err != nil {
			t.Fatalf("final CommitAll: %v", err)
		}
		if got := u.PendingInserts(); got != 0 {
			t.Fatalf("pending after final commit: %d", got)
		}
		check("after recovery")
		if err := u.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	})
}
