package shard

import (
	"math/rand"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

// fuzzModel is deliberately tiny: each fuzz execution trains a fresh model
// per shard, so the budget per iteration must stay in the low milliseconds.
func fuzzModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 4}
	cfg.Samples = 128
	cfg.Epochs = 10
	cfg.MaxRounds = 1
	return cfg
}

// deriveRules decodes raw fuzz bytes into a valid width-bit rule-set:
// 6 bytes per rule (4 prefix, 1 length, 1 action), wildcard bits masked,
// duplicates dropped, capped at 48 rules so training stays fast.
func deriveRules(width int, data []byte) []lpm.Rule {
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for i := 0; i+6 <= len(data) && len(rules) < 48; i += 6 {
		length := 1 + int(data[i+4])%width
		raw := uint64(data[i])<<24 | uint64(data[i+1])<<16 | uint64(data[i+2])<<8 | uint64(data[i+3])
		prefix := keys.FromUint64(raw).And(keys.MaxValue(width))
		prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(data[i+5]) + 1})
	}
	return rules
}

// FuzzShardedVsOracle is the differential fuzz target: for arbitrary
// rule-sets, shard counts and key streams, the sharded engine (batch and
// single-key paths) must agree with the trie oracle on every key — the
// CLAUDE.md correctness invariant under adversarial partitioning.
func FuzzShardedVsOracle(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2}, uint64(1), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 64, 0, 0, 0, 1, 6}, uint64(42), uint8(2))
	f.Add([]byte{}, uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, keySeed uint64, shardSel uint8) {
		const width = 32
		rules := deriveRules(width, data)
		rs, err := lpm.NewRuleSet(width, rules)
		if err != nil {
			t.Fatalf("derived rule-set invalid: %v", err)
		}
		nShards := []int{2, 4, 8}[int(shardSel)%3]
		s, err := Build(rs, core.Config{BucketSize: 8, Model: fuzzModel()}, nShards)
		if err != nil {
			t.Fatalf("Build(%d shards, %d rules): %v", nShards, rs.Len(), err)
		}
		defer s.Close()
		oracle := lpm.NewTrieMatcher(rs)
		ks := make([]keys.Value, 0, 2*len(rules)+64)
		for _, r := range rules {
			ks = append(ks, r.Low(width), r.High(width))
		}
		rng := rand.New(rand.NewSource(int64(keySeed)))
		for i := 0; i < 64; i++ {
			ks = append(ks, keys.FromUint64(rng.Uint64()&(1<<width-1)))
		}
		batch := s.LookupBatch(ks)
		for i, k := range ks {
			want, wantOK := oracle.Lookup(k)
			if batch[i].Matched != wantOK || (wantOK && batch[i].Action != want) {
				t.Fatalf("%d shards, key %v: batch (%d,%v), oracle (%d,%v)",
					nShards, k, batch[i].Action, batch[i].Matched, want, wantOK)
			}
			got, ok := s.Lookup(k)
			if ok != wantOK || (wantOK && got != want) {
				t.Fatalf("%d shards, key %v: Lookup (%d,%v), oracle (%d,%v)",
					nShards, k, got, ok, want, wantOK)
			}
		}
	})
}
