// Regression tests for the hardened update plane (DESIGN.md §11): commit
// failures must be observable, recoverable, and invisible to readers.
package shard

import (
	"errors"
	"testing"
	"time"

	"neurolpm/internal/core"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// buildFaultyUpdatable builds a 4-shard updatable engine whose commits run
// through a fault injector.
func buildFaultyUpdatable(t *testing.T, width int, seed int64) (*ShardedUpdatable, *lpm.RuleSet, *fault.Injector) {
	t.Helper()
	rs := randomRuleSet(t, width, 60, seed)
	in := fault.NewInjector(uint64(seed))
	cfg := quickSRAMOnly()
	cfg.Fault = in.Hook()
	u, err := BuildUpdatable(rs, cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u, rs, in
}

// freeRuleInShard returns a full-width rule absent from rs that routes to
// the given shard (top shardBits bits).
func freeRuleInShard(t *testing.T, rs *lpm.RuleSet, width, shardBits, shard int, action uint64) lpm.Rule {
	t.Helper()
	base := uint64(shard) << (width - shardBits)
	for p := uint64(0); p < 1<<(width-shardBits); p++ {
		prefix := keys.FromUint64(base | (p*2654435761)%(1<<(width-shardBits)))
		if rs.Find(prefix, width) == lpm.NoMatch {
			return lpm.Rule{Prefix: prefix, Len: width, Action: action}
		}
	}
	t.Fatalf("no free rule in shard %d", shard)
	return lpm.Rule{}
}

// TestLastCommitErrObservableAndCleared is the satellite-1 regression: a
// background-path commit failure must be observable through LastCommitErr
// and ShardStatus, and the next successful commit of the same shard must
// clear it with the queued rule applied exactly once.
func TestLastCommitErrObservableAndCleared(t *testing.T) {
	u, rs, in := buildFaultyUpdatable(t, 16, 51)
	r := freeRuleInShard(t, rs, 16, 2, 1, 9100)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}

	in.FailNext(fault.SiteRetrain, 1)
	if err := u.Commit(u.ShardOf(r.Prefix)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under injected failure: %v", err)
	}
	if err := u.LastCommitErr(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("LastCommitErr after failure = %v, want the injected error", err)
	}
	st := u.ShardStatus(u.ShardOf(r.Prefix))
	if st.Health != Degraded || st.ConsecutiveFailures != 1 || st.LastErr == nil {
		t.Fatalf("shard status after failure = %+v, want degraded/1 failure", st)
	}
	// The pending rule is still served through the delta overlay.
	if got, ok := u.Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("pending rule lost during failure: (%d,%v)", got, ok)
	}

	// Retry (injector exhausted) clears the error and applies the rule once.
	if err := u.Commit(u.ShardOf(r.Prefix)); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if err := u.LastCommitErr(); err != nil {
		t.Fatalf("LastCommitErr not cleared by successful commit: %v", err)
	}
	st = u.ShardStatus(u.ShardOf(r.Prefix))
	if st.Health != Healthy || st.Pending != 0 || st.Commits != 1 || st.Failures != 1 {
		t.Fatalf("shard status after recovery = %+v", st)
	}
	if got, ok := u.Engine(u.ShardOf(r.Prefix)).Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("rule missing from recovered engine: (%d,%v)", got, ok)
	}
	if err := u.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

// TestCloseFailsLoudlyOnPendingError: Close must not silently discard a
// shard whose pending rules never reached a trained engine.
func TestCloseFailsLoudlyOnPendingError(t *testing.T) {
	u, rs, in := buildFaultyUpdatable(t, 16, 52)
	r := freeRuleInShard(t, rs, 16, 2, 2, 9200)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	in.FailProb(fault.SiteRetrain, 1)
	if err := u.CommitAll(); err == nil {
		t.Fatal("CommitAll under permanent injected failure succeeded")
	}
	err := u.Close()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close with unresolved failure = %v, want loud error", err)
	}
	// Idempotent: a second Close reports the same condition, no panic.
	if err := u.Close(); err == nil {
		t.Fatal("second Close swallowed the pending failure")
	}
}

// TestKickDuringInFlightCommitNotStranded is the satellite-2 regression:
// with the timer effectively disabled (1h interval), a kick raced with an
// in-flight commit must still get the second dirty shard committed — the
// single-buffered kick channel re-arms while the committer is busy.
func TestKickDuringInFlightCommitNotStranded(t *testing.T) {
	rs := randomRuleSet(t, 16, 60, 53)
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	cfg := quickSRAMOnly()
	cfg.Fault = func(s fault.Site) error {
		if s != fault.SiteRetrain {
			return nil
		}
		select {
		case <-release: // gate already open: pass through
			return nil
		default:
		}
		started <- struct{}{}
		<-release
		return nil
	}
	u, err := BuildUpdatable(rs, cfg, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := u.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	u.StartAutoCommit(time.Hour, 1) // only kicks can trigger a pass

	a := freeRuleInShard(t, rs, 16, 2, 0, 9301)
	if err := u.Insert(a); err != nil { // kick #1: committer starts, blocks in retrain
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("committer never reached the gated retrain")
	}
	b := freeRuleInShard(t, rs, 16, 2, 3, 9302)
	if err := u.Insert(b); err != nil { // kick #2 lands while a commit is in flight
		t.Fatal(err)
	}
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for u.PendingInserts() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := u.PendingInserts(); got != 0 {
		t.Fatalf("%d rules stranded after kick raced an in-flight commit", got)
	}
	for _, r := range []lpm.Rule{a, b} {
		if got, ok := u.Engine(u.ShardOf(r.Prefix)).Lookup(r.Prefix); !ok || got != r.Action {
			t.Fatalf("rule %v not committed: (%d,%v)", r, got, ok)
		}
	}
}

// TestHealthTransitionsWithStaleBudget walks a shard through
// healthy → degraded → stale → healthy against a tiny staleness budget.
func TestHealthTransitionsWithStaleBudget(t *testing.T) {
	u, rs, in := buildFaultyUpdatable(t, 16, 54)
	u.SetStaleBudget(50 * time.Millisecond)
	shard := 1
	r := freeRuleInShard(t, rs, 16, 2, shard, 9400)

	if st := u.ShardStatus(shard); st.Health != Healthy {
		t.Fatalf("initial health = %v", st.Health)
	}
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	in.FailProb(fault.SiteRetrain, 1)
	if err := u.Commit(shard); err == nil {
		t.Fatal("injected commit succeeded")
	}
	if st := u.ShardStatus(shard); st.Health != Degraded {
		t.Fatalf("health right after failure = %v, want degraded", st.Health)
	}
	time.Sleep(60 * time.Millisecond)
	if st := u.ShardStatus(shard); st.Health != Stale {
		t.Fatalf("health past the budget = %v, want stale", st.Health)
	}
	// Readers still see the pending rule while the shard is stale.
	if got, ok := u.Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("stale shard dropped the pending rule: (%d,%v)", got, ok)
	}
	in.Clear(fault.SiteRetrain)
	if err := u.Commit(shard); err != nil {
		t.Fatal(err)
	}
	if st := u.ShardStatus(shard); st.Health != Healthy || st.StaleFor != 0 {
		t.Fatalf("health after recovery = %+v, want healthy", st)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundRetryRecovers: the background committer must ride out a
// burst of injected failures on its backoff schedule and converge with
// every queued update applied exactly once.
func TestBackgroundRetryRecovers(t *testing.T) {
	u, rs, in := buildFaultyUpdatable(t, 16, 55)
	u.SetCommitBackoff(core.Backoff{Base: 2 * time.Millisecond, Cap: 10 * time.Millisecond})
	in.FailNext(fault.SiteRetrain, 3)
	u.StartAutoCommit(time.Hour, 1) // kicks + backoff retries only

	r := freeRuleInShard(t, rs, 16, 2, 2, 9500)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for u.PendingInserts() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := u.PendingInserts(); got != 0 {
		t.Fatalf("background retry never converged: pending = %d, lastErr = %v", got, u.LastCommitErr())
	}
	if err := u.LastCommitErr(); err != nil {
		t.Fatalf("LastCommitErr after convergence: %v", err)
	}
	st := u.ShardStatus(u.ShardOf(r.Prefix))
	if st.Failures != 3 || st.Commits != 1 {
		t.Fatalf("retry accounting = %+v, want 3 failures then 1 commit", st)
	}
	if got, ok := u.Engine(u.ShardOf(r.Prefix)).Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("rule not applied exactly once: (%d,%v)", got, ok)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWithdrawnPendingClearsFailure: deleting the only pending rule of a
// failing shard resolves its degraded state on the next committer pass —
// nothing is left to be stale about.
func TestWithdrawnPendingClearsFailure(t *testing.T) {
	u, rs, in := buildFaultyUpdatable(t, 16, 56)
	r := freeRuleInShard(t, rs, 16, 2, 0, 9600)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	in.FailProb(fault.SiteRetrain, 1)
	if err := u.Commit(0); err == nil {
		t.Fatal("injected commit succeeded")
	}
	if err := u.Delete(r.Prefix, r.Len); err != nil {
		t.Fatal(err)
	}
	u.commitPass() // what the background loop would do
	if st := u.ShardStatus(0); st.Health != Healthy {
		t.Fatalf("withdrawing pending rules left shard %v", st.Health)
	}
	if err := u.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
