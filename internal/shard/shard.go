// Package shard partitions a NeuroLPM rule-set by the top bits of the key
// into independent sub-engines, mirroring the paper's hardware parallelism:
// §6's design replicates inference pipelines and spreads the RQ Array over
// banked SRAM (Fig 6a) so many queries resolve concurrently. In software the
// same move buys two things:
//
//   - throughput: LookupBatch groups a batch of keys by shard and fans the
//     groups out over a worker pool, so per-call overhead is amortized and
//     each worker walks one shard-local RQ Array that is a fraction of the
//     global one (better cache residency, smaller error bounds, fewer
//     secondary-search probes);
//   - incremental updates: a rule insertion only retrains the shard it
//     lands in (ShardedUpdatable), never the full model — the §6.5 rebuild
//     cost divided by the shard count.
//
// Correctness is preserved by replication: a rule shorter than the shard
// prefix is installed in every shard it covers (exactly like a route
// replicated across SRAM banks), so each shard answers queries for its key
// slice identically to the global engine. The parameterized differential
// fuzz target planetest.FuzzStackVsOracle and the full-keyspace metamorphic
// tests enforce the CLAUDE.md invariant — sharded results equal the trie
// oracle on every key, across every stack configuration (DESIGN.md §14).
package shard

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/telemetry"
)

// Result is one LookupBatch answer.
type Result struct {
	Action  uint64
	Matched bool
}

// MaxShardBits bounds the partition so replication of short rules cannot
// explode: 2^10 sub-engines is far past any plausible core count.
const MaxShardBits = 10

// Sharded is an immutable sharded engine: 2^shardBits independent
// sub-engines, each built over the rules covering its key slice. It is safe
// for concurrent lookups. For an updatable variant see ShardedUpdatable.
type Sharded struct {
	router
	engines []*core.Engine
}

// router holds the key→shard mapping and the batch fan-out machinery shared
// by Sharded and ShardedUpdatable.
type router struct {
	width     int
	shardBits int
	pool      *pool
	loads     []padUint64 // per-shard lookups served (balance telemetry)
	cache     *cachePlane // result-cache plane; nil until EnableCache
}

// Build partitions the rule-set into nShards sub-engines (a power of two,
// ≥ 1) and trains each independently. Empty shards get a valid empty engine,
// so routing never needs a nil check.
func Build(rs *lpm.RuleSet, cfg core.Config, nShards int) (*Sharded, error) {
	r, parts, err := plan(rs, nShards)
	if err != nil {
		return nil, err
	}
	engines, err := buildEngines(rs.Width, cfg, parts)
	if err != nil {
		return nil, err
	}
	s := &Sharded{router: r, engines: engines}
	s.registerGauges(func(i int) int { return engines[i].Ranges().Len() })
	s.registerObserverGauges(func(i int) *core.Engine { return s.engines[i] })
	return s, nil
}

// RebalanceTiers runs one tier placement pass on every shard (no-op for
// untiered configurations) and returns the totals. The immutable sharded
// engine has no background loop of its own — callers (experiments, tests)
// drive passes explicitly; the serving layers use ShardedUpdatable's
// StartTierRebalancer.
func (s *Sharded) RebalanceTiers() (promoted, demoted int) {
	for _, e := range s.engines {
		p, d := e.RebalanceTier()
		promoted += p
		demoted += d
	}
	return promoted, demoted
}

// plan validates the shard count and returns the router plus the per-shard
// rule partition.
func plan(rs *lpm.RuleSet, nShards int) (router, [][]lpm.Rule, error) {
	if rs == nil {
		return router{}, nil, fmt.Errorf("shard: nil rule-set")
	}
	if nShards < 1 || nShards&(nShards-1) != 0 {
		return router{}, nil, fmt.Errorf("shard: shard count %d is not a power of two ≥ 1", nShards)
	}
	bits := 0
	for 1<<bits < nShards {
		bits++
	}
	if bits > MaxShardBits {
		return router{}, nil, fmt.Errorf("shard: %d shards exceeds the 2^%d limit", nShards, MaxShardBits)
	}
	if bits >= rs.Width {
		return router{}, nil, fmt.Errorf("shard: %d shards needs %d key bits, rule-set width is %d", nShards, bits, rs.Width)
	}
	r := router{
		width:     rs.Width,
		shardBits: bits,
		loads:     make([]padUint64, nShards),
	}
	if workers := min(nShards, runtime.GOMAXPROCS(0)); workers > 1 {
		r.pool = newPool(workers)
	}
	return r, partition(rs, bits), nil
}

// partition assigns every rule to the shards it covers. Rules at least
// shardBits long land in exactly one shard; shorter rules are replicated
// into each of the 2^(shardBits−len) shards under their prefix.
func partition(rs *lpm.RuleSet, shardBits int) [][]lpm.Rule {
	parts := make([][]lpm.Rule, 1<<shardBits)
	for _, r := range rs.Rules {
		lo, hi := shardSpan(rs.Width, shardBits, r)
		for s := lo; s <= hi; s++ {
			parts[s] = append(parts[s], r)
		}
	}
	return parts
}

// shardSpan returns the inclusive shard range rule r covers.
func shardSpan(width, shardBits int, r lpm.Rule) (lo, hi int) {
	top := int(r.Prefix.Shr(uint(width - shardBits)).Uint64())
	if r.Len >= shardBits {
		return top, top
	}
	span := 1 << (shardBits - r.Len)
	return top, top + span - 1
}

// shardModel shallows the per-shard model: a shard learns only 1/N of the
// key-space CDF, so the middle refinement stage of a ≥3-stage global config
// is redundant — keeping the final stage width preserves (and with 1/N of
// the ranges, improves) per-leaf resolution while inference drops one LUT
// evaluation per query. This is the §6 bank model's smaller per-bank
// pipeline, and it is where the software speedup comes from on one core.
// Error bounds are recomputed per shard by the normal build, so correctness
// is unaffected.
func shardModel(cfg core.Config, nShards int) core.Config {
	sw := cfg.Model.StageWidths
	if nShards < 4 || len(sw) < 3 {
		return cfg
	}
	cfg.Model.StageWidths = []int{1, sw[len(sw)-1]}
	return cfg
}

// buildEngines trains one engine per partition, in parallel up to
// GOMAXPROCS (training is the expensive step; shards are independent).
func buildEngines(width int, cfg core.Config, parts [][]lpm.Rule) ([]*core.Engine, error) {
	cfg = shardModel(cfg, len(parts))
	engines := make([]*core.Engine, len(parts))
	errs := make([]error, len(parts))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			srs, err := lpm.NewRuleSet(width, parts[i])
			if err != nil {
				errs[i] = err
				return
			}
			engines[i], errs[i] = core.Build(srs, cfg)
			if engines[i] != nil {
				engines[i].SetShardID(i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return engines, nil
}

// Shards returns the shard count.
func (r *router) Shards() int { return 1 << r.shardBits }

// Width returns the key bit width.
func (r *router) Width() int { return r.width }

// ShardOf returns the shard index serving key k.
func (r *router) ShardOf(k keys.Value) int {
	return int(k.Shr(uint(r.width - r.shardBits)).Uint64())
}

// Engine returns shard i's sub-engine (read-only use: stats, tracing).
func (s *Sharded) Engine(i int) *core.Engine { return s.engines[i] }

// Lookup routes k to its shard and returns the longest-prefix action. Like
// every Lookup* variant it must answer exactly what the trie oracle answers
// (the contract planetest's parameterized harness enforces across the full
// stack matrix).
func (s *Sharded) Lookup(k keys.Value) (uint64, bool) {
	a, ok, _ := s.LookupStack(plane.StackConfig{}, k)
	return a, ok
}

// LookupCached is LookupStack with the compiled+lcache configuration,
// reporting how the cache participated (lcache.None when the plane is
// disabled or bypassed).
func (s *Sharded) LookupCached(k keys.Value) (uint64, bool, lcache.Outcome) {
	return s.LookupStack(plane.StackConfig{Cached: true}, k)
}

// LookupStack routes k to its shard and answers through the stack selected
// by st. Cached stacks check a probing cache out of the spare pool for the
// call (degrading to uncached while the plane is disabled), so every
// configuration is safe for concurrent use.
func (s *Sharded) LookupStack(st plane.StackConfig, k keys.Value) (uint64, bool, lcache.Outcome) {
	i := s.ShardOf(k)
	s.loads[i].n.Add(1)
	if !st.Cached {
		return s.engines[i].LookupStack(st, k, nil)
	}
	c, spare := s.cacheFor(-1)
	a, m, o := s.engines[i].LookupStack(st, k, c)
	s.releaseCache(c, spare)
	return a, m, o
}

// LookupBatch resolves a batch of keys, grouping them by shard and fanning
// the groups out over the worker pool. Results are positional: out[i]
// answers ks[i]. It is safe for concurrent use, and it is LookupBatchStack
// with the production configuration — compiled inference, probing the
// result-cache plane when installed.
func (s *Sharded) LookupBatch(ks []keys.Value) []Result {
	return s.LookupBatchStack(plane.StackConfig{Cached: true}, ks)
}

// LookupBatchStack is the sharded batch executor: the shared shard-grouped
// fan-out with each group answered through the engine-level batch stack for
// st. Each shard's group runs through the pipelined (or reference) batch
// path — for cached stacks on the executing worker's private cache: probe
// all keys, infer only the misses.
func (s *Sharded) LookupBatchStack(st plane.StackConfig, ks []keys.Value) []Result {
	return s.lookupBatch(ks, func(shard, worker int, group []int32, out []Result) {
		e := s.engines[shard]
		var c *lcache.Cache
		var spare bool
		if st.Cached {
			c, spare = s.cacheFor(worker)
		}
		batchGroup(st, e, ks, group, out, c, e.CacheEpoch().Load())
		s.releaseCache(c, spare)
	})
}

// keyScratch holds one group's gather/scatter buffers; pooled so concurrent
// shard groups each get their own without per-batch allocation.
type keyScratch struct {
	ks  []keys.Value
	res []core.BatchResult
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// batchGroup gathers one shard's keys contiguously, answers them through the
// engine's batch stack for st — cached stacks probe c at the epoch the
// caller loaded before any staleness checks — and scatters the results back
// to their positions.
func batchGroup(st plane.StackConfig, e *core.Engine, ks []keys.Value, group []int32, out []Result, c *lcache.Cache, epoch uint64) {
	sc := keyScratchPool.Get().(*keyScratch)
	if cap(sc.ks) < len(group) {
		sc.ks = make([]keys.Value, len(group))
	}
	gk := sc.ks[:len(group)]
	for i, idx := range group {
		gk[i] = ks[idx]
	}
	res := e.LookupBatchStack(st, gk, sc.res[:0], cachesim.Null{}, c, epoch)
	for i, idx := range group {
		out[idx] = Result{Action: res[i].Action, Matched: res[i].Matched}
	}
	sc.ks, sc.res = gk, res
	keyScratchPool.Put(sc)
}

// Close releases the worker pool. The engine stays queryable through the
// serial path afterwards.
func (s *Sharded) Close() { s.router.close() }

// Verify checks every shard against its own analytical bound and the trie
// oracle (expensive; tests and offline validation).
func (s *Sharded) Verify() error {
	for i, e := range s.engines {
		if err := e.Verify(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// batchScratch holds the grouping buffers for one lookupBatch call; pooling
// them keeps the hot path allocation-free apart from the caller-visible
// result slice.
type batchScratch struct {
	counts, starts, fill, order, shardOf []int32
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// lookupBatch is the shared fan-out: bucket keys by shard (one pass to
// count, one to place — no per-group append growth), then answer each
// shard's group back-to-back so consecutive queries reuse that shard's
// model and RQ-Array cache lines. lookGroup answers one shard's whole
// group (out[idx] ← answer for ks[idx], idx ∈ group) so implementations
// hoist the sub-engine out of the per-key loop; worker is the executing
// pool worker's index (−1 on the serial path), the handle to per-worker
// state like the result-cache plane. Groups run on the pool, or serially
// when the pool is absent (single shard or GOMAXPROCS=1).
func (r *router) lookupBatch(ks []keys.Value, lookGroup func(shard, worker int, group []int32, out []Result)) []Result {
	out := make([]Result, len(ks))
	if len(ks) == 0 {
		return out
	}
	metBatches.Inc()
	metBatchKeys.Add(uint64(len(ks)))
	metBatchSize.ObserveInt(len(ks))
	n := r.Shards()
	if n == 1 {
		sc := scratchPool.Get().(*batchScratch)
		whole := grow(sc.order, len(ks))
		for i := range ks {
			whole[i] = int32(i)
		}
		lookGroup(0, -1, whole, out)
		sc.order = whole
		scratchPool.Put(sc)
		r.loads[0].n.Add(uint64(len(ks)))
		return out
	}
	sc := scratchPool.Get().(*batchScratch)
	counts := grow(sc.counts, n)
	clear(counts)
	shardOf := grow(sc.shardOf, len(ks))
	for i, k := range ks {
		s := int32(r.ShardOf(k))
		shardOf[i] = s
		counts[s]++
	}
	starts := grow(sc.starts, n+1)
	starts[0] = 0
	for s := 0; s < n; s++ {
		starts[s+1] = starts[s] + counts[s]
	}
	order := grow(sc.order, len(ks))
	fill := grow(sc.fill, n)
	copy(fill, starts[:n])
	for i := range ks {
		s := shardOf[i]
		order[fill[s]] = int32(i)
		fill[s]++
	}
	run := func(s, worker int) {
		group := order[starts[s]:starts[s+1]]
		lookGroup(s, worker, group, out)
		r.loads[s].n.Add(uint64(len(group)))
	}
	if r.pool == nil {
		for s := 0; s < n; s++ {
			if counts[s] > 0 {
				run(s, -1)
			}
		}
	} else {
		var wg sync.WaitGroup
		for s := 0; s < n; s++ {
			if counts[s] == 0 {
				continue
			}
			s := s
			wg.Add(1)
			r.pool.submit(func(w int) { defer wg.Done(); run(s, w) })
		}
		wg.Wait()
	}
	*sc = batchScratch{counts: counts, starts: starts, fill: fill, order: order, shardOf: shardOf}
	scratchPool.Put(sc)
	return out
}

// close shuts the pool down (idempotent).
func (r *router) close() {
	if r.pool != nil {
		r.pool.close()
		r.pool = nil
	}
}

// registerGauges publishes the balance telemetry for the most recently
// built sharded engine (the registry's last-writer-wins gauge semantics are
// exactly the rebuilt-engine refresh case).
func (r *router) registerGauges(rangesOf func(i int) int) {
	telemetry.Default.Gauge("neurolpm_shards",
		"Shards in the current sharded engine",
		func() float64 { return float64(r.Shards()) })
	telemetry.Default.Gauge("neurolpm_shard_load_imbalance",
		"Max/mean per-shard lookup load (1 = perfectly balanced; 0 before any lookup)",
		func() float64 { return imbalance(r.loadCounts()) })
	telemetry.Default.Gauge("neurolpm_shard_range_imbalance",
		"Max/mean per-shard RQ-Array size (static partition balance)",
		func() float64 {
			sizes := make([]uint64, r.Shards())
			for i := range sizes {
				sizes[i] = uint64(rangesOf(i))
			}
			return imbalance(sizes)
		})
}

// registerObserverGauges publishes the per-shard observability-plane gauges
// (DESIGN.md §13): model drift, the compiled probe ceiling and bucket-hotness
// skew. engineAt reads the shard's *current* live engine, so an updatable
// shard's post-commit engine — with its fresh bound and sketch — is what a
// scrape sees, without any re-registration on commit.
func (r *router) registerObserverGauges(engineAt func(i int) *core.Engine) {
	drift := telemetry.Default.GaugeVec("neurolpm_model_drift",
		"Observed p99 secondary-search probes over the last minute divided by the compiled probe ceiling (→1 = bound headroom consumed; retrain signal)", "shard")
	bound := telemetry.Default.GaugeVec("neurolpm_model_probe_bound",
		"Compiled worst-case secondary-search probes for the shard's live model", "shard")
	skew := telemetry.Default.GaugeVec("neurolpm_bucket_hotness_skew",
		"Fraction of sampled bucket accesses landing in the hottest 10% of buckets (decaying window)", "shard")
	resident := telemetry.Default.GaugeVec("neurolpm_tier_resident_buckets",
		"Fast-tier-resident buckets in the shard's live engine (total buckets when untiered)", "shard")
	fastBytes := telemetry.Default.GaugeVec("neurolpm_tier_fast_bytes",
		"Fast-tier-resident bucket-array bytes in the shard's live engine", "shard")
	for i := 0; i < r.Shards(); i++ {
		i := i
		lbl := strconv.Itoa(i)
		drift.Set(lbl, func() float64 { return engineAt(i).DriftMeter().Drift() })
		bound.Set(lbl, func() float64 { return float64(engineAt(i).DriftMeter().Bound()) })
		skew.Set(lbl, func() float64 { return engineAt(i).HotSketch().Skew() })
		resident.Set(lbl, func() float64 {
			if t := engineAt(i).TierStore(); t != nil {
				return float64(t.Stats().FastResident)
			}
			if d := engineAt(i).Directory(); d != nil {
				return float64((d.Array().Len() + d.K - 1) / d.K)
			}
			return 0
		})
		fastBytes.Set(lbl, func() float64 {
			if t := engineAt(i).TierStore(); t != nil {
				return float64(t.Stats().FastBytes)
			}
			return float64(engineAt(i).DRAMFootprint())
		})
	}
}

// loadCounts snapshots the per-shard lookup tallies.
func (r *router) loadCounts() []uint64 {
	out := make([]uint64, len(r.loads))
	for i := range r.loads {
		out[i] = r.loads[i].n.Load()
	}
	return out
}

// imbalance is max/mean over the counts; 0 when all counts are zero.
func imbalance(counts []uint64) float64 {
	var sum, max uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(counts))
	return float64(max) / mean
}
