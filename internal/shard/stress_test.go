package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/telemetry"
)

// TestConcurrentReadersWithBackgroundCommit is the torn-snapshot stress
// test: readers stream LookupBatch while a writer inserts and deletes a
// probe rule and the background committer rebuilds dirty shards. Invariants
// checked on every read (run under -race in CI's race-and-fuzz job):
//
//   - the probe key always resolves to its base action or the probe-rule
//     action — any other value would be a torn snapshot;
//   - keys in never-written shard slices always resolve to their initial
//     action — a commit of one shard must not disturb another;
//   - the §7 one-fetch-per-query gauge holds: DRAM bucket fetches stay
//     exactly one per bucketized lookup throughout the run.
func TestConcurrentReadersWithBackgroundCommit(t *testing.T) {
	const width = 16
	rs := randomRuleSet(t, width, 200, 41)
	u, err := BuildUpdatable(rs, quickBucketed(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.StartAutoCommit(2*time.Millisecond, 4)

	// The probe: a /16 rule the writer repeatedly inserts and deletes. Its
	// key either matches the probe action (rule present) or whatever the
	// base rule-set says (rule absent) — precompute the base answer.
	probe := freeProbeRule(t, rs, width)
	baseAction, baseOK := lpm.NewTrieMatcher(rs).Lookup(probe.Prefix)

	// Steady keys: resolved once up front; their shards never see writes?
	// No — the probe's shard sees commits, so steady keys prove cross-shard
	// isolation only when they live in other shards. Keep both kinds and
	// assert all of them are commit-invariant (deltas only carry the probe).
	steady := randomKeys(width, 256, 43)
	for i, k := range steady {
		if k == probe.Prefix { // keep steady keys commit-invariant
			steady[i] = k.Xor(keys.FromUint64(1))
		}
	}
	oracle := lpm.NewTrieMatcher(rs)
	steadyWant := make([]sweepResult, len(steady))
	for i, k := range steady {
		steadyWant[i].Action, steadyWant[i].Matched = oracle.Lookup(k)
	}

	fetches := telemetry.Default.Counter("neurolpm_bucket_fetches_total", "")
	bucketized := telemetry.Default.Counter("neurolpm_bucketized_lookups_total", "")
	fetches0, bucketized0 := fetches.Load(), bucketized.Load()
	// The fetch counter increments just before the bucketized-lookup counter
	// inside one lookup, so with R in-flight readers the snapshots satisfy
	// db ≤ df ≤ db+R; anything outside that band is a broken §7 invariant.
	checkGauge := func() {
		df := fetches.Load() - fetches0
		db := bucketized.Load() - bucketized0
		if df < db || df > db+16 {
			t.Errorf("§7 invariant broken: %d fetches for %d bucketized lookups", df, db)
		}
	}

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup
	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			batch := make([]keys.Value, 0, len(steady)+1)
			batch = append(batch, probe.Prefix)
			batch = append(batch, steady...)
			for n := 0; !stop.Load(); n++ {
				res := u.LookupBatch(batch)
				got := res[0]
				probeSeen := got.Matched && got.Action == probe.Action
				baseSeen := got.Matched == baseOK && (!baseOK || got.Action == baseAction)
				if !probeSeen && !baseSeen {
					torn.Add(1)
				}
				for i, want := range steadyWant {
					if res[i+1].Action != want.Action || res[i+1].Matched != want.Matched {
						torn.Add(1)
					}
				}
				if n%64 == 0 {
					checkGauge()
				}
			}
		}(int64(r))
	}

	// Writer: insert probe → (maybe committed in background) → delete →
	// commit cycles. Every intermediate state keeps the probe key's answer
	// in {base, probe}.
	deadline := time.Now().Add(1500 * time.Millisecond)
	cycles := 0
	for time.Now().Before(deadline) {
		if err := u.Insert(probe); err != nil {
			t.Errorf("insert: %v", err)
			break
		}
		time.Sleep(500 * time.Microsecond) // let the committer race the delete
		if err := u.Delete(probe.Prefix, probe.Len); err != nil {
			t.Errorf("delete: %v", err)
			break
		}
		cycles++
	}
	stop.Store(true)
	wg.Wait()

	if got := torn.Load(); got != 0 {
		t.Fatalf("%d torn reads over %d writer cycles", got, cycles)
	}
	if err := u.LastCommitErr(); err != nil {
		t.Fatalf("background commit failed: %v", err)
	}
	checkGauge()
	if cycles < 10 {
		t.Fatalf("writer made only %d cycles; stress run too short", cycles)
	}
}

// freeProbeRule returns a full-width rule absent from rs whose action is
// distinct from every base action.
func freeProbeRule(t *testing.T, rs *lpm.RuleSet, width int) lpm.Rule {
	t.Helper()
	for p := uint64(0); p < 1<<12; p++ {
		prefix := keys.FromUint64(p * 7919 % (1 << width))
		if rs.Find(prefix, width) == lpm.NoMatch {
			return lpm.Rule{Prefix: prefix, Len: width, Action: 1 << 40}
		}
	}
	t.Fatal("no free probe rule")
	return lpm.Rule{}
}
