// Metamorphic update tests for ShardedUpdatable: the §6.5 identities must
// survive sharding — including for short rules that are replicated into
// several shards. Each identity is checked by a full-keyspace sweep against
// the trie oracle on a 2^10 domain.
package shard

import (
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

const sweepWidth = 10

type sweepResult struct {
	Action  uint64
	Matched bool
}

func sweepFn(width int, look func(keys.Value) (uint64, bool)) []sweepResult {
	out := make([]sweepResult, 1<<width)
	for i := range out {
		out[i].Action, out[i].Matched = look(keys.FromUint64(uint64(i)))
	}
	return out
}

func diffSweeps(t *testing.T, label string, got, want []sweepResult) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: key %#x: got (%d,%v), want (%d,%v)",
				label, i, got[i].Action, got[i].Matched, want[i].Action, want[i].Matched)
		}
	}
}

// freeRule returns a length-bit rule whose (prefix,len) is absent from rs.
func freeRule(t *testing.T, rs *lpm.RuleSet, length int, action uint64) lpm.Rule {
	t.Helper()
	for p := 0; p < 1<<length; p++ {
		prefix := keys.FromUint64(uint64(p)).Shl(uint(sweepWidth - length))
		if rs.Find(prefix, length) == lpm.NoMatch {
			return lpm.Rule{Prefix: prefix, Len: length, Action: action}
		}
	}
	t.Fatalf("no free /%d rule", length)
	return lpm.Rule{}
}

func buildSweepUpdatable(t *testing.T, seed int64) (*ShardedUpdatable, *lpm.RuleSet) {
	t.Helper()
	// Keep generated rules at /3 and longer so the tests always have free
	// short prefixes to insert (the replicated-rule cases need a free /1).
	var rules []lpm.Rule
	for _, r := range randomRuleSet(t, sweepWidth, 50, seed).Rules {
		if r.Len >= 3 {
			rules = append(rules, r)
		}
	}
	rs, err := lpm.NewRuleSet(sweepWidth, rules)
	if err != nil {
		t.Fatal(err)
	}
	u, err := BuildUpdatable(rs, quickSRAMOnly(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := u.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return u, rs
}

// TestShardedInsertThenDeleteIsIdentity covers both a long rule (one shard)
// and a /1 rule (replicated into two of the four shards), on the delta path
// and the committed path.
func TestShardedInsertThenDeleteIsIdentity(t *testing.T) {
	u, rs := buildSweepUpdatable(t, 31)
	before := sweepFn(sweepWidth, u.Lookup)
	long := freeRule(t, rs, 6, 5001)
	short := freeRule(t, rs, 1, 5002)

	// Delta path.
	for _, r := range []lpm.Rule{long, short} {
		if err := u.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []lpm.Rule{long, short} {
		if err := u.Delete(r.Prefix, r.Len); err != nil {
			t.Fatal(err)
		}
	}
	diffSweeps(t, "delta insert+delete", sweepFn(sweepWidth, u.Lookup), before)

	// Committed path: the replicated short rule exercises per-shard
	// tombstones in two shards at once.
	for _, r := range []lpm.Rule{long, short} {
		if err := u.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.CommitAll(); err != nil {
		t.Fatal(err)
	}
	for _, r := range []lpm.Rule{long, short} {
		if err := u.Delete(r.Prefix, r.Len); err != nil {
			t.Fatal(err)
		}
	}
	diffSweeps(t, "committed insert+delete", sweepFn(sweepWidth, u.Lookup), before)
}

// TestShardedModifyActionWithoutRetrain checks the modification is visible
// on every key the rule owns — across all replicas — while no shard engine
// is replaced.
func TestShardedModifyActionWithoutRetrain(t *testing.T) {
	u, rs := buildSweepUpdatable(t, 32)
	target := rs.Rules[len(rs.Rules)/3]
	const newAction = 888888

	enginesBefore := make([]any, u.Shards())
	for i := range enginesBefore {
		enginesBefore[i] = u.Engine(i)
	}
	if err := u.ModifyAction(target.Prefix, target.Len, newAction); err != nil {
		t.Fatal(err)
	}
	for i := range enginesBefore {
		if u.Engine(i) != enginesBefore[i] {
			t.Fatalf("shard %d engine replaced by ModifyAction (retrained)", i)
		}
	}

	modified := rs.Clone()
	for i := range modified.Rules {
		if modified.Rules[i].Prefix == target.Prefix && modified.Rules[i].Len == target.Len {
			modified.Rules[i].Action = newAction
		}
	}
	oracle := lpm.NewTrieMatcher(modified)
	diffSweeps(t, "sharded modify-action", sweepFn(sweepWidth, u.Lookup), sweepFn(sweepWidth, oracle.Lookup))
}

// TestShardedCommitEqualsFreshBuild: after inserting rules (including a
// replicated one) and committing, the sharded engine must equal a fresh
// sharded Build — and the oracle — over the merged rule-set.
func TestShardedCommitEqualsFreshBuild(t *testing.T) {
	u, rs := buildSweepUpdatable(t, 33)
	// One rule per length: /1 replicates across shards 0–1, /4 and /8 land
	// in single shards. freeRule scans for prefixes absent from the set.
	news := []lpm.Rule{
		freeRule(t, rs, 4, 7001),
		freeRule(t, rs, 1, 7002),
		freeRule(t, rs, 8, 7003),
	}
	merged := append([]lpm.Rule(nil), rs.Rules...)
	for _, r := range news {
		if err := u.Insert(r); err != nil {
			t.Fatal(err)
		}
		merged = append(merged, r)
	}
	if err := u.CommitAll(); err != nil {
		t.Fatal(err)
	}
	if got := u.PendingInserts(); got != 0 {
		t.Fatalf("pending after CommitAll: %d", got)
	}
	mergedSet, err := lpm.NewRuleSet(sweepWidth, merged)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(mergedSet, quickSRAMOnly(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want := sweepFn(sweepWidth, fresh.Lookup)
	diffSweeps(t, "sharded commit vs fresh build", sweepFn(sweepWidth, u.Lookup), want)
	oracle := lpm.NewTrieMatcher(mergedSet)
	diffSweeps(t, "fresh sharded build vs oracle", want, sweepFn(sweepWidth, oracle.Lookup))
	if err := u.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedUpdatableBatchSeesDelta: a pending (uncommitted) insertion is
// visible through LookupBatch, shard-consistently.
func TestShardedUpdatableBatchSeesDelta(t *testing.T) {
	u, rs := buildSweepUpdatable(t, 34)
	r := freeRule(t, rs, 10, 4242)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	res := u.LookupBatch([]keys.Value{r.Prefix})
	if !res[0].Matched || res[0].Action != 4242 {
		t.Fatalf("pending rule invisible to LookupBatch: %+v", res[0])
	}
}
