package workload

import (
	"fmt"
	"math/rand"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// UpdateOp is one churn operation kind.
type UpdateOp uint8

const (
	UpdateInsert UpdateOp = iota
	UpdateDelete
	UpdateModify
)

func (op UpdateOp) String() string {
	switch op {
	case UpdateInsert:
		return "insert"
	case UpdateDelete:
		return "delete"
	case UpdateModify:
		return "modify"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Update is one scheduled rule-table mutation. At is the open-loop send
// offset from stream start (0 when the stream is unpaced).
type Update struct {
	At   time.Duration
	Op   UpdateOp
	Rule lpm.Rule
}

// UpdateConfig parameterizes GenerateUpdates.
type UpdateConfig struct {
	// Count is the total number of updates in the stream.
	Count int
	// Rate is the offered update rate in updates/sec; arrivals are Poisson
	// (exponential inter-arrival times). ≤ 0 leaves every At at 0: the
	// consumer applies the stream as fast as it likes.
	Rate float64
	// Sites is the number of distinct flap prefixes the stream cycles
	// through (insert → modify* → delete → insert …). 0 picks a default of
	// Count/4 (min 1). Ignored when InsertOnly: every insert needs its own
	// fresh site.
	Sites int
	// InsertOnly emits only inserts, each at a distinct fresh site — the
	// shape the fault-storm experiment folds into its merged oracle.
	InsertOnly bool
	// ActionBase is the first action value; site i's rule carries
	// ActionBase+i (modifies flip the low bit so the change is observable).
	ActionBase uint64
	// Seed makes the stream deterministic.
	Seed int64
}

// UpdateStream is a calibrated churn stream against a standing rule-set.
// Every rule is full-width at a site where the base set has no exact-width
// rule, so applying any prefix of the stream changes answers only for the
// site keys themselves: a trie oracle built over the base rule-set stays
// valid for every other key. Verifiers skip trace keys in SiteSet.
type UpdateStream struct {
	Updates []Update
	Sites   []keys.Value
}

// SiteSet returns the flap sites as a membership set.
func (s *UpdateStream) SiteSet() map[keys.Value]struct{} {
	m := make(map[keys.Value]struct{}, len(s.Sites))
	for _, k := range s.Sites {
		m[k] = struct{}{}
	}
	return m
}

// GenerateUpdates builds a deterministic open-loop churn stream against rs —
// shared by cmd/lpmload (replayed over the wire or HTTP next to the query
// trace) and the fault/storm experiments (insert-only, folded into the
// merged oracle). The same (rs, cfg) always yields the same stream.
func GenerateUpdates(rs *lpm.RuleSet, cfg UpdateConfig) (*UpdateStream, error) {
	if cfg.Count <= 0 {
		return &UpdateStream{}, nil
	}
	nSites := cfg.Sites
	if cfg.InsertOnly {
		nSites = cfg.Count
	} else if nSites <= 0 {
		nSites = cfg.Count / 4
		if nSites < 1 {
			nSites = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mask := keys.MaxValue(rs.Width)

	// Pick fresh full-width sites: no exact-width rule in the base set, no
	// duplicates among the sites. Bounded retries so a pathological rule-set
	// fails loudly instead of spinning.
	sites := make([]keys.Value, 0, nSites)
	seen := make(map[keys.Value]struct{}, nSites)
	for tries := 0; len(sites) < nSites; tries++ {
		if tries > 64*nSites {
			return nil, fmt.Errorf("workload: could not find %d fresh update sites (width %d)", nSites, rs.Width)
		}
		p := keys.FromParts(rng.Uint64(), rng.Uint64()).And(mask)
		if _, dup := seen[p]; dup {
			continue
		}
		if rs.Find(p, rs.Width) != lpm.NoMatch {
			continue
		}
		seen[p] = struct{}{}
		sites = append(sites, p)
	}

	// present[i] tracks whether site i currently carries a rule, so the
	// stream is always applicable in order: deletes and modifies only hit
	// rules a prior insert created.
	present := make([]bool, nSites)
	updates := make([]Update, 0, cfg.Count)
	var at time.Duration
	for i := 0; i < cfg.Count; i++ {
		if cfg.Rate > 0 {
			at += time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second))
		}
		var u Update
		if cfg.InsertOnly {
			u = Update{At: at, Op: UpdateInsert, Rule: lpm.Rule{
				Prefix: sites[i], Len: rs.Width, Action: cfg.ActionBase + uint64(i),
			}}
		} else {
			site := rng.Intn(nSites)
			r := lpm.Rule{Prefix: sites[site], Len: rs.Width, Action: cfg.ActionBase + uint64(site)}
			switch {
			case !present[site]:
				u = Update{At: at, Op: UpdateInsert, Rule: r}
				present[site] = true
			case rng.Intn(2) == 0:
				r.Action ^= 1 // observable action change
				u = Update{At: at, Op: UpdateModify, Rule: r}
			default:
				u = Update{At: at, Op: UpdateDelete, Rule: r}
				present[site] = false
			}
		}
		updates = append(updates, u)
	}
	return &UpdateStream{Updates: updates, Sites: sites}, nil
}
