//go:build !race

package workload

import (
	"testing"
	"time"

	"neurolpm/internal/bucket"
	"neurolpm/internal/ranges"
)

// raceEnabled gates the 10M canary: the race detector's ~10x slowdown and
// shadow memory would blow both the wall-clock budget and the container, so
// the canary only runs in non-race test binaries (CI runs it as a dedicated
// non-race step; the regular test job uses -race and compiles this out).
const raceEnabled = false

// TestScaleCanary10M pins the end-to-end asymptotics of rule-set
// construction: Generate → NewRuleSet (validate+sort+dedup) → range
// expansion → bucket directory at 10M rules must finish inside a generous
// wall-clock budget. Before NewRuleSet dropped its map-keyed duplicate scan
// for a sort-adjacent one, this path spent whole seconds hashing 16-byte
// struct keys; an accidental O(n²) anywhere in the chain times out rather
// than silently freezing a paper-scale run (the CLAUDE.md incident).
func TestScaleCanary10M(t *testing.T) {
	if testing.Short() {
		t.Skip("10M-rule canary skipped in -short mode")
	}
	const n = 10_000_000
	const budget = 120 * time.Second
	start := time.Now()

	rs, err := Generate(RIPE(), n, 404)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() < n*9/10 {
		t.Fatalf("generator fell far short of scale: %d rules of %d requested", rs.Len(), n)
	}
	genDone := time.Since(start)

	ra, err := ranges.Convert(rs)
	if err != nil {
		t.Fatal(err)
	}
	// Expansion factor stays near the paper's ~18% at full scale too —
	// a generator drift that only shows past the calibration tests' sizes
	// would quietly inflate every downstream footprint number.
	factor := float64(ra.Len()) / float64(rs.Len())
	if factor > 1.6 {
		t.Errorf("range expansion %.2fx at 10M rules (calibrated ≈1.18x)", factor)
	}

	dir, err := bucket.Build(ra, 8)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Len() == 0 {
		t.Fatal("empty bucket directory at 10M rules")
	}

	elapsed := time.Since(start)
	t.Logf("10M canary: generate %v, total %v (%d rules → %d ranges → %d buckets)",
		genDone.Round(time.Millisecond), elapsed.Round(time.Millisecond),
		rs.Len(), ra.Len(), dir.Len())
	if elapsed > budget {
		t.Fatalf("10M-rule construction took %v, budget %v — superlinear regression?", elapsed, budget)
	}
}
