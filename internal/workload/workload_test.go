package workload

import (
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/ranges"
)

func TestGenerateCounts(t *testing.T) {
	for name, p := range Profiles() {
		rs, err := Generate(p, 2000, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rs.Len() != 2000 {
			t.Errorf("%s: generated %d rules", name, rs.Len())
		}
		if rs.Width != p.Width {
			t.Errorf("%s: width %d", name, rs.Width)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(RIPE(), 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(RIPE(), 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Fatalf("rule %d differs between same-seed runs", i)
		}
	}
	c, err := Generate(RIPE(), 500, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Rules {
		if a.Rules[i] == c.Rules[i] {
			same++
		}
	}
	if same == len(a.Rules) {
		t.Fatal("different seeds produced identical rule-sets")
	}
}

// TestRIPEShape checks the calibration: /24 dominates and the /16 secondary
// mode exists, matching Fig 2's routing curve.
func TestRIPEShape(t *testing.T) {
	rs, err := Generate(RIPE(), 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := rs.PrefixHistogram()
	frac24 := float64(h[24]) / float64(rs.Len())
	if frac24 < 0.4 || frac24 > 0.65 {
		t.Errorf("/24 fraction %.2f outside BGP-like range", frac24)
	}
	if h[16] < h[17] {
		t.Error("/16 mode missing")
	}
	// Almost everything is ≤ /24.
	le24 := 0
	for l := 0; l <= 24; l++ {
		le24 += h[l]
	}
	if float64(le24)/float64(rs.Len()) < 0.95 {
		t.Errorf("≤/24 fraction %.2f too low", float64(le24)/float64(rs.Len()))
	}
}

// TestSnortShape checks the string-matching distribution is broad, unlike
// routing (Fig 2's contrast).
func TestSnortShape(t *testing.T) {
	rs, err := Generate(Snort(), 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := rs.PrefixHistogram()
	nonEmpty := 0
	for l := 8; l <= 48; l++ {
		if h[l] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 30 {
		t.Errorf("only %d distinct lengths; string matching should be broad", nonEmpty)
	}
	// No single length dominates the way /24 does in routing.
	max := 0
	for _, c := range h {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(rs.Len()) > 0.25 {
		t.Errorf("a single length holds %.2f of rules", float64(max)/float64(rs.Len()))
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Profile{Width: 0}, 10, 1); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Generate(RIPE(), 0, 1); err == nil {
		t.Error("zero rules accepted")
	}
	p := RIPE()
	p.LengthWeights = map[int]float64{}
	if _, err := Generate(p, 10, 1); err == nil {
		t.Error("empty distribution accepted")
	}
	p.LengthWeights = map[int]float64{8: -1}
	if _, err := Generate(p, 10, 1); err == nil {
		t.Error("negative weight accepted")
	}
	// A profile too narrow for the requested count must fail, not hang.
	narrow := Profile{
		Name: "narrow", Width: 8,
		LengthWeights: map[int]float64{4: 1},
		Clusters:      2, Actions: 2,
	}
	if _, err := Generate(narrow, 1000, 1); err == nil {
		t.Error("impossible count accepted")
	}
}

func TestExpansionRealistic(t *testing.T) {
	// §10.5: real rule-sets expand ~18% on average, ≤32% worst case. The
	// synthetic families must stay in a comparable regime (well under the
	// 2× theoretical bound).
	for _, p := range []Profile{RIPE(), RouteViews(), Stanford()} {
		rs, err := Generate(p, 10000, 4)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := ranges.Convert(rs)
		if err != nil {
			t.Fatal(err)
		}
		st := arr.Expansion(rs.Len())
		if st.Expansion < 0 || st.Expansion > 0.9 {
			t.Errorf("%s: expansion %.2f unrealistic", p.Name, st.Expansion)
		}
	}
}

func TestGenerateTraceBasic(t *testing.T) {
	rs, err := Generate(RIPE(), 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(rs, DefaultTrace(5000, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 5000 {
		t.Fatalf("trace length %d", len(trace))
	}
	dom := keys.NewDomain(32)
	for _, k := range trace {
		if !dom.Contains(k) {
			t.Fatalf("trace key %v outside domain", k)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	rs, err := Generate(RIPE(), 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateTrace(rs, DefaultTrace(1000, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(rs, DefaultTrace(1000, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace differs at %d", i)
		}
	}
}

func TestGenerateTraceLocality(t *testing.T) {
	rs, err := Generate(RIPE(), 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	local, err := GenerateTrace(rs, TraceConfig{Queries: 20000, ZipfS: 1.2, Locality: 0.9, Window: 64, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := GenerateTrace(rs, TraceConfig{Queries: 20000, ZipfS: 1.2, Locality: 0, Window: 64, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if u1, u2 := distinct(local), distinct(cold); u1 >= u2 {
		t.Fatalf("locality did not reduce distinct keys: %d vs %d", u1, u2)
	}
}

func distinct(ks []keys.Value) int {
	set := map[keys.Value]struct{}{}
	for _, k := range ks {
		set[k] = struct{}{}
	}
	return len(set)
}

func TestGenerateTraceMatchable(t *testing.T) {
	// Most trace keys should hit some rule (traffic goes to installed
	// destinations).
	rs, err := Generate(RIPE(), 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(rs, DefaultTrace(5000, 12))
	if err != nil {
		t.Fatal(err)
	}
	oracle := lpm.NewTrieMatcher(rs)
	hits := 0
	for _, k := range trace {
		if _, ok := oracle.Lookup(k); ok {
			hits++
		}
	}
	if float64(hits)/float64(len(trace)) < 0.5 {
		t.Fatalf("only %d/%d trace keys match a rule", hits, len(trace))
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	rs, err := Generate(RIPE(), 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	bad := []TraceConfig{
		{Queries: 0, ZipfS: 1.2},
		{Queries: 10, ZipfS: 1.0},
		{Queries: 10, ZipfS: 1.2, Locality: 1.5},
		{Queries: 10, ZipfS: 1.2, Locality: -0.1},
	}
	for i, cfg := range bad {
		if _, err := GenerateTrace(rs, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestUniformTrace(t *testing.T) {
	trace := UniformTrace(32, 1000, 1)
	if len(trace) != 1000 {
		t.Fatalf("length %d", len(trace))
	}
	dom := keys.NewDomain(32)
	for _, k := range trace {
		if !dom.Contains(k) {
			t.Fatalf("key %v outside domain", k)
		}
	}
	if distinct(trace) < 900 {
		t.Fatal("uniform trace suspiciously repetitive")
	}
}

func BenchmarkGenerate100K(b *testing.B) {
	p := RIPE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, 100000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrace1M(b *testing.B) {
	rs, err := Generate(RIPE(), 10000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTrace(rs, DefaultTrace(1000000, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
