package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"neurolpm/internal/keys"
)

// WriteTrace writes one hexadecimal key per line (the format lpmgen emits
// and lpmquery consumes).
func WriteTrace(w io.Writer, trace []keys.Value) error {
	bw := bufio.NewWriter(w)
	for _, k := range trace {
		if _, err := bw.WriteString(k.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace. Keys must fit the given
// width; blank lines and '#' comments are skipped.
func ReadTrace(r io.Reader, width int) ([]keys.Value, error) {
	dom := keys.NewDomain(width)
	var out []keys.Value
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := parseKey(line)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		if !dom.Contains(v) {
			return nil, fmt.Errorf("workload: trace line %d: key %s exceeds %d bits", lineNo, line, width)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseKey accepts decimal or 0x-hex values up to 128 bits.
func parseKey(s string) (keys.Value, error) {
	if strings.HasPrefix(s, "0x") && len(s) > 18 {
		digits := s[2:]
		if len(digits) > 32 {
			return keys.Value{}, fmt.Errorf("value exceeds 128 bits")
		}
		split := len(digits) - 16
		hi, err := strconv.ParseUint(digits[:split], 16, 64)
		if err != nil {
			return keys.Value{}, err
		}
		lo, err := strconv.ParseUint(digits[split:], 16, 64)
		if err != nil {
			return keys.Value{}, err
		}
		return keys.FromParts(hi, lo), nil
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return keys.Value{}, err
	}
	return keys.FromUint64(v), nil
}
