package workload

import (
	"fmt"
	"math/rand"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/ranges"
)

// TraceConfig shapes a synthetic query trace. It substitutes for the CAIDA
// Equinix-Chicago traces the paper replays (§10.1): flow popularity follows
// a Zipf law and packets exhibit strong temporal locality, the two
// properties that determine cache behaviour in the §10.2 methodology.
type TraceConfig struct {
	Queries int
	// ZipfS > 1 skews which destination ranges are popular (larger = more
	// skew). Values near 1.2 approximate flow-size distributions in
	// data-center traces.
	ZipfS float64
	// Locality is the probability a query repeats one of the last Window
	// destinations (temporal locality from packet bursts within flows).
	Locality float64
	Window   int
	Seed     int64
}

// DefaultTrace mirrors the evaluation settings: Zipf-popular destinations
// with bursty repetition.
func DefaultTrace(queries int, seed int64) TraceConfig {
	return TraceConfig{Queries: queries, ZipfS: 1.2, Locality: 0.6, Window: 256, Seed: seed}
}

// GenerateTrace synthesizes a query trace against the rule-set: each query
// is a key drawn from a Zipf-popular range of the rule-set's range array,
// with bursty re-use of recent keys.
func GenerateTrace(rs *lpm.RuleSet, cfg TraceConfig) ([]keys.Value, error) {
	if cfg.Queries < 1 {
		return nil, fmt.Errorf("workload: invalid query count %d", cfg.Queries)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("workload: ZipfS must exceed 1, got %g", cfg.ZipfS)
	}
	if cfg.Locality < 0 || cfg.Locality > 1 {
		return nil, fmt.Errorf("workload: locality %g outside [0,1]", cfg.Locality)
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	arr, err := ranges.Convert(rs)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Zipf over a random permutation of ranges, so popularity is not
	// correlated with address order.
	perm := rng.Perm(arr.Len())
	zipf := rand.NewZipf(rng, cfg.ZipfS, 8, uint64(arr.Len()-1))

	out := make([]keys.Value, 0, cfg.Queries)
	window := make([]keys.Value, 0, cfg.Window)
	for len(out) < cfg.Queries {
		var k keys.Value
		if len(window) > 0 && rng.Float64() < cfg.Locality {
			k = window[rng.Intn(len(window))]
		} else {
			r := perm[zipf.Uint64()]
			lo := arr.Entries[r].Low
			hi := arr.High(r)
			k = randKeyBetween(rng, lo, hi)
		}
		out = append(out, k)
		if len(window) < cfg.Window {
			window = append(window, k)
		} else {
			window[len(out)%cfg.Window] = k
		}
	}
	return out, nil
}

// UniformTrace draws keys uniformly from the whole domain — the adversarial,
// locality-free load used for worst-case cache analysis (§10.2).
func UniformTrace(width, queries int, seed int64) []keys.Value {
	rng := rand.New(rand.NewSource(seed))
	dom := keys.NewDomain(width)
	out := make([]keys.Value, queries)
	for i := range out {
		out[i] = dom.FromUnit(rng.Float64())
	}
	return out
}

// randKeyBetween draws a near-uniform key in [lo, hi].
func randKeyBetween(rng *rand.Rand, lo, hi keys.Value) keys.Value {
	span := hi.Sub(lo)
	if span.Hi == 0 {
		if span.Lo == ^uint64(0) {
			return lo.AddUint64(rng.Uint64())
		}
		return lo.AddUint64(rng.Uint64() % (span.Lo + 1))
	}
	if span.Hi == ^uint64(0) {
		return keys.FromParts(rng.Uint64(), rng.Uint64())
	}
	for {
		v := keys.FromParts(rng.Uint64()%(span.Hi+1), rng.Uint64())
		if !span.Less(v) {
			return lo.Add(v)
		}
	}
}
