// Package workload generates the synthetic rule-sets and query traces the
// evaluation runs on, substituting for the paper's proprietary inputs
// (RIPE / RouteViews / Stanford forwarding tables and CAIDA packet traces —
// see DESIGN.md §2). Generators are calibrated to the published prefix-length
// distributions and produce deterministic output for a given seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// Profile describes a rule-set family.
type Profile struct {
	Name  string
	Width int
	// LengthWeights is the prefix-length histogram to sample from
	// (unnormalized).
	LengthWeights map[int]float64
	// Clusters is the number of distinct address regions rules concentrate
	// in (real tables are allocation-clustered, which is what gives range
	// arrays their skewed layout).
	Clusters int
	// Actions is the number of distinct action values (small for routing —
	// the low action entropy the paper notes packet-forwarding engines
	// exploit — and large for clustering workloads).
	Actions int
	// RunLength is the expected number of *adjacent* same-length prefixes
	// emitted in a row (BGP deaggregation: an allocation announced as
	// consecutive /24s). Runs keep the LPM→range expansion near the ~18%
	// the paper measures on production tables (§10.5); fully scattered
	// prefixes would expand by ~2×. Zero disables runs.
	RunLength int
}

// RIPE is calibrated to BGP-like forwarding tables from the RIPE RIS
// archive: mass concentrated at /24 with a secondary mode at /16 (Fig 2).
func RIPE() Profile {
	return Profile{
		Name:  "ripe",
		Width: 32,
		LengthWeights: map[int]float64{
			8: 0.4, 10: 0.3, 11: 0.4, 12: 0.7, 13: 1.0, 14: 1.5, 15: 1.6,
			16: 9.0, 17: 2.3, 18: 3.5, 19: 4.5, 20: 5.5, 21: 5.0, 22: 9.0,
			23: 7.5, 24: 53.0, 25: 0.3, 26: 0.2, 27: 0.2, 28: 0.2, 29: 0.3,
			30: 0.2, 32: 0.7,
		},
		Clusters:  4000,
		Actions:   64,
		RunLength: 4,
	}
}

// RouteViews mirrors the University of Oregon Route Views tables: the same
// BGP shape as RIPE with slightly more specifics.
func RouteViews() Profile {
	return Profile{
		Name:  "routeviews",
		Width: 32,
		LengthWeights: map[int]float64{
			8: 0.5, 9: 0.2, 10: 0.3, 11: 0.5, 12: 0.8, 13: 1.1, 14: 1.7,
			15: 1.8, 16: 8.0, 17: 2.5, 18: 3.8, 19: 5.0, 20: 6.0, 21: 5.5,
			22: 10.0, 23: 8.0, 24: 50.0, 25: 0.6, 26: 0.5, 27: 0.4, 28: 0.5,
			29: 0.8, 30: 0.6, 31: 0.1, 32: 1.5,
		},
		Clusters:  6000,
		Actions:   128,
		RunLength: 4,
	}
}

// Stanford is calibrated to the Stanford backbone tables: a campus network
// with heavier short-prefix usage, host routes, and far fewer rules.
func Stanford() Profile {
	return Profile{
		Name:  "stanford",
		Width: 32,
		LengthWeights: map[int]float64{
			8: 1.0, 10: 1.0, 12: 2.0, 14: 3.0, 15: 2.0, 16: 14.0, 17: 3.0,
			18: 5.0, 19: 6.0, 20: 8.0, 21: 7.0, 22: 9.0, 23: 7.0, 24: 22.0,
			25: 1.0, 26: 1.5, 27: 2.0, 28: 2.5, 29: 2.0, 30: 1.5, 31: 0.5,
			32: 7.0,
		},
		Clusters:  300,
		Actions:   32,
		RunLength: 3,
	}
}

// Snort is calibrated to Fig 2's 48-bit string-matching rule-sets derived
// from NIDS signatures: prefix lengths spread broadly across 8..48 (driven
// by pattern lengths), with none of routing's /24 concentration — the case
// that defeats prefix-length-specialized engines.
func Snort() Profile {
	w := map[int]float64{}
	for l := 8; l <= 48; l++ {
		// Broad plateau with mild modes at byte boundaries.
		w[l] = 2.0
		if l%8 == 0 {
			w[l] = 5.0
		}
	}
	return Profile{Name: "snort", Width: 48, LengthWeights: w, Clusters: 20000, Actions: 1 << 16, RunLength: 2}
}

// IPv6 is a 128-bit forwarding profile (allocation-driven lengths 16..64,
// mode at /48) for the bit-width scaling experiments (§6.4).
func IPv6() Profile {
	return Profile{
		Name:  "ipv6",
		Width: 128,
		LengthWeights: map[int]float64{
			16: 1.0, 20: 1.0, 24: 2.0, 28: 2.5, 32: 12.0, 36: 4.0, 40: 6.0,
			44: 6.0, 48: 40.0, 52: 3.0, 56: 6.0, 60: 2.0, 64: 14.0,
		},
		Clusters:  3000,
		Actions:   64,
		RunLength: 8,
	}
}

// Profiles returns the evaluation families keyed by name.
func Profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{RIPE(), RouteViews(), Stanford(), Snort(), IPv6()} {
		out[p.Name] = p
	}
	return out
}

// Generate produces a deterministic rule-set of n rules from the profile.
func Generate(p Profile, n int, seed int64) (*lpm.RuleSet, error) {
	if p.Width < 1 || p.Width > 128 {
		return nil, fmt.Errorf("workload: invalid width %d", p.Width)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: invalid rule count %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	sampler, err := newLengthSampler(p.LengthWeights)
	if err != nil {
		return nil, err
	}
	// Cluster bases: allocation blocks rules concentrate under. Base length
	// is the shortest plausible allocation (8 for v4-like, 16 for wider).
	baseLen := 8
	if p.Width > 32 {
		baseLen = 16
	}
	clusters := make([]keys.Value, p.Clusters)
	for i := range clusters {
		clusters[i] = randBits(rng, p.Width, baseLen)
	}
	// Zipf-distributed cluster popularity: a few hot allocations hold most
	// rules, as in real tables.
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(p.Clusters-1))

	type pl struct {
		p keys.Value
		l int
	}
	seen := make(map[pl]struct{}, n)
	rules := make([]lpm.Rule, 0, n)
	attempts := 0
	// Run state: deaggregated allocations emit adjacent same-length
	// prefixes (e.g. consecutive /24s), which keeps the LPM→range expansion
	// near production levels (§10.5).
	var runPrefix keys.Value
	var runLen int
	runContinue := 0.0
	if p.RunLength > 1 {
		runContinue = 1 - 1/float64(p.RunLength)
	}
	var runAction uint64
	for len(rules) < n {
		attempts++
		if attempts > 60*n {
			return nil, fmt.Errorf("workload: cannot reach %d distinct rules (profile %q too narrow)", n, p.Name)
		}
		var prefix keys.Value
		var length int
		if runLen > 0 && rng.Float64() < runContinue {
			// Continue the run with the next adjacent prefix.
			length = runLen
			stride := keys.FromUint64(1).Shl(uint(p.Width - length))
			next := runPrefix.Add(stride)
			if next.IsZero() || !keys.NewDomain(p.Width).Contains(next) {
				runLen = 0
				continue
			}
			prefix = next
		} else {
			length = sampler.sample(rng)
			if length > p.Width {
				length = p.Width
			}
			if length <= baseLen {
				prefix = truncate(randBits(rng, p.Width, length), p.Width, length)
			} else {
				c := clusters[zipf.Uint64()]
				// Keep the cluster's top bits, randomize the rest up to length.
				low := randBits(rng, p.Width, p.Width) // random filler
				mask := suffixMask(p.Width, baseLen)
				prefix = truncate(c.And(mask.Not()).Or(low.And(mask)), p.Width, length)
			}
			runAction = uint64(rng.Intn(p.Actions))
		}
		key := pl{prefix, length}
		if _, dup := seen[key]; dup {
			runLen = 0
			continue
		}
		seen[key] = struct{}{}
		runPrefix, runLen = prefix, length
		// Runs share a next hop with occasional divergence, preserving the
		// low action entropy of forwarding tables.
		if rng.Float64() < 0.2 {
			runAction = uint64(rng.Intn(p.Actions))
		}
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: runAction})
	}
	return lpm.NewRuleSet(p.Width, rules)
}

// lengthSampler draws prefix lengths from a weighted histogram.
type lengthSampler struct {
	lengths []int
	cum     []float64
	total   float64
}

func newLengthSampler(weights map[int]float64) (*lengthSampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("workload: empty length distribution")
	}
	s := &lengthSampler{}
	for l := range weights {
		s.lengths = append(s.lengths, l)
	}
	sort.Ints(s.lengths)
	for _, l := range s.lengths {
		w := weights[l]
		if w < 0 {
			return nil, fmt.Errorf("workload: negative weight for length %d", l)
		}
		s.total += w
		s.cum = append(s.cum, s.total)
	}
	if s.total <= 0 {
		return nil, fmt.Errorf("workload: zero-mass length distribution")
	}
	return s, nil
}

func (s *lengthSampler) sample(rng *rand.Rand) int {
	t := rng.Float64() * s.total
	i := sort.SearchFloat64s(s.cum, t)
	if i >= len(s.lengths) {
		i = len(s.lengths) - 1
	}
	return s.lengths[i]
}

// randBits returns a random width-bit value whose low width−bits bits are
// zeroed when bits < width (a random prefix of the given length).
func randBits(rng *rand.Rand, width, bits int) keys.Value {
	var v keys.Value
	if width <= 64 {
		v = keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
	} else {
		v = keys.FromParts(rng.Uint64(), rng.Uint64())
		v = v.Shr(uint(128 - width))
	}
	return truncate(v, width, bits)
}

// truncate zeroes all but the top `length` bits of a width-bit value.
func truncate(v keys.Value, width, length int) keys.Value {
	if length >= width {
		return v
	}
	return v.Shr(uint(width - length)).Shl(uint(width - length))
}

// suffixMask returns a width-bit mask with the low width−prefixLen bits set.
func suffixMask(width, prefixLen int) keys.Value {
	if prefixLen >= width {
		return keys.Value{}
	}
	return keys.MaxValue(width - prefixLen)
}
