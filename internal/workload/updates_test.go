package workload

import (
	"testing"
	"time"

	"neurolpm/internal/lpm"
)

func updatesTestRuleSet(t *testing.T) *lpm.RuleSet {
	t.Helper()
	rs, err := Generate(Profiles()["ripe"], 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestGenerateUpdatesDeterministicAndApplicable(t *testing.T) {
	rs := updatesTestRuleSet(t)
	cfg := UpdateConfig{Count: 500, Rate: 1000, Sites: 64, ActionBase: 1 << 30, Seed: 11}
	a, err := GenerateUpdates(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUpdates(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Updates) != 500 || len(a.Sites) != 64 {
		t.Fatalf("stream shape %d updates / %d sites", len(a.Updates), len(a.Sites))
	}
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatalf("update %d differs between identically-seeded streams", i)
		}
	}

	// Applicable in order: inserts only on absent sites, deletes/modifies
	// only on present ones; every rule full-width at a fresh site.
	live := map[string]bool{}
	var prev time.Duration
	for i, u := range a.Updates {
		if u.Rule.Len != rs.Width {
			t.Fatalf("update %d length %d, want full width %d", i, u.Rule.Len, rs.Width)
		}
		if rs.Find(u.Rule.Prefix, rs.Width) != lpm.NoMatch {
			t.Fatalf("update %d site collides with a base rule", i)
		}
		id := u.Rule.Prefix.String()
		switch u.Op {
		case UpdateInsert:
			if live[id] {
				t.Fatalf("update %d inserts an already-present site", i)
			}
			live[id] = true
		case UpdateDelete:
			if !live[id] {
				t.Fatalf("update %d deletes an absent site", i)
			}
			delete(live, id)
		case UpdateModify:
			if !live[id] {
				t.Fatalf("update %d modifies an absent site", i)
			}
		}
		if u.At < prev {
			t.Fatalf("update %d scheduled at %v before predecessor %v", i, u.At, prev)
		}
		prev = u.At
	}

	// Poisson pacing: mean inter-arrival ≈ 1/rate (loose 3× bounds).
	mean := a.Updates[len(a.Updates)-1].At / time.Duration(len(a.Updates))
	if mean < 300*time.Microsecond || mean > 3*time.Millisecond {
		t.Fatalf("mean inter-arrival %v for 1000/s, want ≈1ms", mean)
	}
}

func TestGenerateUpdatesInsertOnly(t *testing.T) {
	rs := updatesTestRuleSet(t)
	s, err := GenerateUpdates(rs, UpdateConfig{Count: 128, InsertOnly: true, ActionBase: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Updates) != 128 || len(s.Sites) != 128 {
		t.Fatalf("insert-only shape %d/%d, want 128/128", len(s.Updates), len(s.Sites))
	}
	seen := map[string]bool{}
	for i, u := range s.Updates {
		if u.Op != UpdateInsert {
			t.Fatalf("update %d op %v, want insert", i, u.Op)
		}
		if u.At != 0 {
			t.Fatalf("update %d paced at %v with Rate 0", i, u.At)
		}
		if u.Rule.Action != 7+uint64(i) {
			t.Fatalf("update %d action %d, want %d", i, u.Rule.Action, 7+i)
		}
		id := u.Rule.Prefix.String()
		if seen[id] {
			t.Fatalf("update %d reuses a site", i)
		}
		seen[id] = true
	}
	if len(s.SiteSet()) != 128 {
		t.Fatalf("SiteSet size %d, want 128", len(s.SiteSet()))
	}
}
