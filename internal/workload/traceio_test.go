package workload

import (
	"bytes"
	"strings"
	"testing"

	"neurolpm/internal/keys"
)

func TestTraceRoundTrip(t *testing.T) {
	trace := []keys.Value{
		keys.FromUint64(0),
		keys.FromUint64(0xDEADBEEF),
		keys.FromParts(0x1234, 0x5678),
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("read %d keys", len(got))
	}
	for i := range got {
		if got[i] != trace[i] {
			t.Fatalf("key %d: %v vs %v", i, got[i], trace[i])
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	got, err := ReadTrace(strings.NewReader("# header\n\n0x10\n"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != keys.FromUint64(0x10) {
		t.Fatalf("got %v", got)
	}
}

func TestReadTraceRejectsOutOfDomain(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("0x100000000\n"), 32); err == nil {
		t.Fatal("33-bit key accepted in 32-bit domain")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, text := range []string{"zzz\n", "0xGG\n", "0x" + strings.Repeat("f", 40) + "\n"} {
		if _, err := ReadTrace(strings.NewReader(text), 128); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestReadTraceDecimal(t *testing.T) {
	got, err := ReadTrace(strings.NewReader("42\n"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != keys.FromUint64(42) {
		t.Fatalf("got %v", got)
	}
}

func TestGeneratedTraceRoundTrips(t *testing.T) {
	rs, err := Generate(IPv6(), 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(rs, DefaultTrace(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != trace[i] {
			t.Fatalf("128-bit key %d mismatched: %v vs %v", i, got[i], trace[i])
		}
	}
}
