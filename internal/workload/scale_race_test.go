//go:build race

package workload

// The 10M scale canary (scale_test.go) is compiled out under the race
// detector; this constant keeps both build flavors consistent for any
// future gating.
const raceEnabled = true
