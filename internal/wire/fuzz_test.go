package wire

import (
	"bytes"
	"io"
	"testing"

	"neurolpm/internal/keys"
)

// FuzzWireCodec throws arbitrary bytes at the frame reader and every payload
// decoder. The invariants are: never panic, never read past the declared
// frame, and any frame that decodes successfully must re-encode to an
// equivalent frame (round-trip closure). Seeds cover every frame type plus
// truncations and corruptions of each.
func FuzzWireCodec(f *testing.F) {
	k := keys.FromParts(0x1122334455667788, 0x99aabbccddeeff00)
	seeds := [][]byte{
		AppendLookup(nil, 1, k),
		AppendBatch(nil, 2, []keys.Value{k, keys.FromUint64(7), {}}),
		AppendUpdate(nil, 3, RuleUpdate{Op: UpdateInsert, Prefix: k, Len: 64, Action: 9}),
		AppendUpdate(nil, 4, RuleUpdate{Op: UpdateDelete, Prefix: k, Len: 128}),
		AppendPing(nil, 5),
		AppendResult(nil, 6, 42, true),
		AppendBatchResults(nil, 7, []Result{{Action: 1, Matched: true}, {}}),
		AppendUpdateResult(nil, 8, 12),
		AppendPong(nil, 9),
		AppendError(nil, 10, ErrBackpressure, "full"),
		{}, {0xff}, {0, 0, 0, 0},
	}
	// Truncations and single-byte corruptions of a representative frame.
	base := AppendBatch(nil, 11, []keys.Value{k, k})
	for i := 1; i < len(base); i += 5 {
		seeds = append(seeds, base[:i])
	}
	for i := 0; i < len(base); i += 3 {
		c := append([]byte(nil), base...)
		c[i] ^= 0x80
		seeds = append(seeds, c)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			before := r.Len()
			fr, nb, err := ReadFrame(r, buf)
			buf = nb
			if err != nil {
				if err == io.EOF && before != r.Len() {
					t.Fatalf("io.EOF after consuming %d bytes", before-r.Len())
				}
				return // any error ends the stream cleanly
			}
			// Consumed exactly the declared frame: prefix + length.
			if got, want := before-r.Len(), lenPrefix+headerLen+len(fr.Payload); got != want {
				t.Fatalf("frame consumed %d bytes, declared %d", got, want)
			}
			// Every decoder must tolerate this payload without panicking;
			// on success the value must re-encode to an identical frame.
			if key, err := fr.Key(); err == nil && fr.Op == OpLookup {
				if enc := AppendLookup(nil, fr.ID, key); !bytes.Equal(framePayload(enc), fr.Payload) {
					t.Fatalf("lookup round-trip mismatch")
				}
			}
			if ks, err := fr.BatchKeys(nil); err == nil && fr.Op == OpBatch {
				if enc := AppendBatch(nil, fr.ID, ks); !bytes.Equal(framePayload(enc), fr.Payload) {
					t.Fatalf("batch round-trip mismatch")
				}
			}
			if res, err := fr.Result(); err == nil && fr.Op == OpResult {
				if enc := AppendResult(nil, fr.ID, res.Action, res.Matched); !bytes.Equal(framePayload(enc), fr.Payload) {
					t.Fatalf("result round-trip mismatch")
				}
			}
			if rs, err := fr.BatchResults(nil); err == nil && fr.Op == OpBatchResult {
				if enc := AppendBatchResults(nil, fr.ID, rs); !bytes.Equal(framePayload(enc), fr.Payload) {
					t.Fatalf("batch-result round-trip mismatch")
				}
			}
			if u, err := fr.Update(); err == nil && fr.Op == OpUpdate {
				if enc := AppendUpdate(nil, fr.ID, u); !bytes.Equal(framePayload(enc), fr.Payload) {
					t.Fatalf("update round-trip mismatch")
				}
			}
			if p, err := fr.UpdatePending(); err == nil && fr.Op == OpUpdateResult {
				if enc := AppendUpdateResult(nil, fr.ID, p); !bytes.Equal(framePayload(enc), fr.Payload) {
					t.Fatalf("update-result round-trip mismatch")
				}
			}
			_ = fr.Err() // must not panic on any payload
		}
	})
}

// framePayload strips the length prefix and header from an encoded frame.
func framePayload(b []byte) []byte { return b[lenPrefix+headerLen:] }
