package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"neurolpm/internal/keys"
)

// Client is one persistent wire connection. The synchronous methods
// (Lookup, Batch, Update, Ping) keep one request in flight and are safe for
// concurrent use; high-rate callers that want pipelining (cmd/lpmload) use
// Send/Recv directly — ids are caller-assigned and responses arrive in
// whatever order the server's coalescer produced them.
type Client struct {
	conn net.Conn

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	rmu  sync.Mutex
	br   *bufio.Reader
	rbuf []byte
	res  []Result // scratch for Batch

	idmu   sync.Mutex
	nextID uint64

	// syncMu serializes the synchronous request/response methods so two
	// goroutines' round-trips cannot interleave on the shared connection.
	syncMu sync.Mutex
}

// Dial connects to a WireServer.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over Nagle batching; we batch explicitly
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 16<<10),
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ID returns a fresh request id.
func (c *Client) ID() uint64 {
	c.idmu.Lock()
	c.nextID++
	id := c.nextID
	c.idmu.Unlock()
	return id
}

// Send appends one encoded request frame and flushes. enc appends the frame
// into the supplied buffer (use the Append* encoders).
func (c *Client) Send(enc func(b []byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = enc(c.wbuf[:0])
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// SendNoFlush appends one encoded request frame into the connection's
// buffered writer without flushing — pipelined senders flush once per burst.
func (c *Client) SendNoFlush(enc func(b []byte) []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = enc(c.wbuf[:0])
	_, err := c.bw.Write(c.wbuf)
	return err
}

// Flush flushes buffered request frames.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

// Recv reads the next response frame. The frame's payload aliases the
// client's read buffer and is valid until the next Recv.
func (c *Client) Recv() (Frame, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	f, buf, err := ReadFrame(c.br, c.rbuf)
	c.rbuf = buf
	return f, err
}

// roundTrip sends one request and waits for its response, which must carry
// the request's id (the synchronous methods never pipeline, so any other id
// is a protocol violation).
func (c *Client) roundTrip(id uint64, enc func(b []byte) []byte) (Frame, error) {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if err := c.Send(enc); err != nil {
		return Frame{}, err
	}
	f, err := c.Recv()
	if err != nil {
		return Frame{}, err
	}
	if f.ID != id {
		return Frame{}, fmt.Errorf("wire: response id %d for request %d", f.ID, id)
	}
	if f.Op == OpError {
		return Frame{}, f.Err()
	}
	return f, nil
}

// Lookup answers one key.
func (c *Client) Lookup(k keys.Value) (Result, error) {
	id := c.ID()
	f, err := c.roundTrip(id, func(b []byte) []byte { return AppendLookup(b, id, k) })
	if err != nil {
		return Result{}, err
	}
	if f.Op != OpResult {
		return Result{}, fmt.Errorf("wire: lookup answered with %s", f.Op)
	}
	return f.Result()
}

// Batch answers many keys positionally in one round-trip.
func (c *Client) Batch(ks []keys.Value) ([]Result, error) {
	id := c.ID()
	f, err := c.roundTrip(id, func(b []byte) []byte { return AppendBatch(b, id, ks) })
	if err != nil {
		return nil, err
	}
	if f.Op != OpBatchResult {
		return nil, fmt.Errorf("wire: batch answered with %s", f.Op)
	}
	c.res, err = f.BatchResults(c.res[:0])
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(c.res))
	copy(out, c.res)
	return out, nil
}

// Update applies one rule update, returning the server's pending-rule count.
func (c *Client) Update(u RuleUpdate) (pending uint32, err error) {
	id := c.ID()
	f, err := c.roundTrip(id, func(b []byte) []byte { return AppendUpdate(b, id, u) })
	if err != nil {
		return 0, err
	}
	if f.Op != OpUpdateResult {
		return 0, fmt.Errorf("wire: update answered with %s", f.Op)
	}
	return f.UpdatePending()
}

// Ping round-trips an empty frame (liveness / drain probe).
func (c *Client) Ping() error {
	id := c.ID()
	f, err := c.roundTrip(id, func(b []byte) []byte { return AppendPing(b, id) })
	if err != nil {
		return err
	}
	if f.Op != OpPong {
		return fmt.Errorf("wire: ping answered with %s", f.Op)
	}
	return nil
}
