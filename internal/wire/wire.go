// Package wire is the binary serving protocol (DESIGN.md §17): a
// length-prefixed frame format over persistent TCP connections that replaces
// HTTP/JSON on the hot path. A frame is a 4-byte little-endian length
// followed by a fixed 12-byte header (magic, version, opcode, request id)
// and an opcode-specific payload of fixed-width fields — no text parsing, no
// reflection, no per-request allocation. Request ids let a server answer out
// of order, which is what makes cross-connection coalescing (serve.WireServer)
// possible: responses are demultiplexed by id, not by arrival order.
//
// Every encoder appends into a caller-owned buffer and every decoder returns
// slices into the received frame, so a connection loop runs allocation-free
// at steady state (pinned by TestWireCodecZeroAllocs). Malformed input —
// truncated frames, bad magic, oversized lengths, short payloads — must
// error cleanly without panicking or over-reading (FuzzWireCodec).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"neurolpm/internal/keys"
)

// Protocol constants. The magic renders as "NL" on the wire (little-endian
// uint16), so a stray HTTP client talking to a wire port fails the magic
// check on its first frame instead of being misparsed.
const (
	Magic   uint16 = 0x4C4E // "NL" in little-endian byte order
	Version uint8  = 1

	// headerLen is the fixed header after the length prefix:
	// magic(2) + version(1) + opcode(1) + id(8).
	headerLen = 12
	// lenPrefix is the length prefix itself.
	lenPrefix = 4
)

// MaxBatchKeys bounds one batch frame, matching the HTTP /batch limit.
const MaxBatchKeys = 65536

// MaxFrameLen is the largest legal value of the length prefix: a full batch
// of results (4-byte count + 9 bytes per result would be smaller; keys at 16
// bytes each dominate) plus the header. Anything larger is rejected before
// any payload byte is read, so a garbage length cannot force a huge read.
const MaxFrameLen = headerLen + 4 + 16*MaxBatchKeys

// Op is a frame opcode. Requests have the high bit clear; responses set it.
type Op uint8

const (
	OpLookup Op = 0x01 // payload: key (16 bytes)
	OpBatch  Op = 0x02 // payload: count u32, then count × 16-byte keys
	OpUpdate Op = 0x03 // payload: uop u8, plen u8, prefix 16 bytes, action u64
	OpPing   Op = 0x04 // payload: empty

	OpResult       Op = 0x81 // payload: action u64, flags u8 (bit0 = matched)
	OpBatchResult  Op = 0x82 // payload: count u32, then count × 9-byte results
	OpUpdateResult Op = 0x83 // payload: pending u32
	OpPong         Op = 0x84 // payload: empty
	OpError        Op = 0xFF // payload: code u8, UTF-8 message
)

// String names the opcode for diagnostics.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpBatch:
		return "batch"
	case OpUpdate:
		return "update"
	case OpPing:
		return "ping"
	case OpResult:
		return "result"
	case OpBatchResult:
		return "batch-result"
	case OpUpdateResult:
		return "update-result"
	case OpPong:
		return "pong"
	case OpError:
		return "error"
	}
	return fmt.Sprintf("op(0x%02x)", uint8(o))
}

// Rule-update sub-opcodes (the uop byte of OpUpdate).
const (
	UpdateInsert uint8 = 0
	UpdateDelete uint8 = 1
	UpdateModify uint8 = 2
)

// Error codes carried by OpError frames.
const (
	ErrMalformed      uint8 = 1 // frame failed structural validation
	ErrBadRequest     uint8 = 2 // well-formed frame, unservable request
	ErrBackpressure   uint8 = 3 // delta buffer full; retry after a beat
	ErrNotImplemented uint8 = 4 // op unsupported in this server mode
)

// Result is one lookup answer as carried on the wire.
type Result struct {
	Action  uint64
	Matched bool
}

// RuleUpdate is the decoded OpUpdate payload.
type RuleUpdate struct {
	Op     uint8 // UpdateInsert | UpdateDelete | UpdateModify
	Prefix keys.Value
	Len    int
	Action uint64
}

// appendHeader appends the length prefix and fixed header for a frame whose
// payload is payloadLen bytes.
func appendHeader(b []byte, op Op, id uint64, payloadLen int) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(headerLen+payloadLen))
	b = binary.LittleEndian.AppendUint16(b, Magic)
	b = append(b, Version, uint8(op))
	return binary.LittleEndian.AppendUint64(b, id)
}

func appendKey(b []byte, k keys.Value) []byte {
	b = binary.LittleEndian.AppendUint64(b, k.Lo)
	return binary.LittleEndian.AppendUint64(b, k.Hi)
}

func decodeKey(p []byte) keys.Value {
	return keys.Value{
		Lo: binary.LittleEndian.Uint64(p[0:8]),
		Hi: binary.LittleEndian.Uint64(p[8:16]),
	}
}

// AppendLookup appends one lookup request frame.
func AppendLookup(b []byte, id uint64, k keys.Value) []byte {
	b = appendHeader(b, OpLookup, id, 16)
	return appendKey(b, k)
}

// AppendBatch appends one batch request frame. len(ks) must be in
// [1, MaxBatchKeys]; out-of-range batches are the caller's bug and panic.
func AppendBatch(b []byte, id uint64, ks []keys.Value) []byte {
	if len(ks) < 1 || len(ks) > MaxBatchKeys {
		panic(fmt.Sprintf("wire: batch of %d keys outside [1,%d]", len(ks), MaxBatchKeys))
	}
	b = appendHeader(b, OpBatch, id, 4+16*len(ks))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ks)))
	for _, k := range ks {
		b = appendKey(b, k)
	}
	return b
}

// AppendUpdate appends one rule-update request frame.
func AppendUpdate(b []byte, id uint64, u RuleUpdate) []byte {
	b = appendHeader(b, OpUpdate, id, 26)
	b = append(b, u.Op, uint8(u.Len))
	b = appendKey(b, u.Prefix)
	return binary.LittleEndian.AppendUint64(b, u.Action)
}

// AppendPing appends a ping frame.
func AppendPing(b []byte, id uint64) []byte { return appendHeader(b, OpPing, id, 0) }

// AppendResult appends one lookup response frame.
func AppendResult(b []byte, id uint64, action uint64, matched bool) []byte {
	b = appendHeader(b, OpResult, id, 9)
	b = binary.LittleEndian.AppendUint64(b, action)
	var f uint8
	if matched {
		f = 1
	}
	return append(b, f)
}

// AppendBatchResults appends one batch response frame.
func AppendBatchResults(b []byte, id uint64, res []Result) []byte {
	b = appendHeader(b, OpBatchResult, id, 4+9*len(res))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(res)))
	for _, r := range res {
		b = binary.LittleEndian.AppendUint64(b, r.Action)
		var f uint8
		if r.Matched {
			f = 1
		}
		b = append(b, f)
	}
	return b
}

// AppendUpdateResult appends an update-accepted response carrying the
// server's pending (uncommitted) rule count.
func AppendUpdateResult(b []byte, id uint64, pending uint32) []byte {
	b = appendHeader(b, OpUpdateResult, id, 4)
	return binary.LittleEndian.AppendUint32(b, pending)
}

// AppendPong appends a pong frame.
func AppendPong(b []byte, id uint64) []byte { return appendHeader(b, OpPong, id, 0) }

// AppendError appends an error response frame.
func AppendError(b []byte, id uint64, code uint8, msg string) []byte {
	b = appendHeader(b, OpError, id, 1+len(msg))
	b = append(b, code)
	return append(b, msg...)
}

// Frame is one decoded frame. Payload aliases the read buffer and is valid
// only until the next ReadFrame on the same buffer.
type Frame struct {
	Op      Op
	ID      uint64
	Payload []byte
}

// ReadFrame reads one frame from r into buf (grown as needed) and parses the
// header. It returns the frame, the (possibly grown) buffer for reuse, and
// any error. Structural violations — bad magic, unknown version, a length
// outside [headerLen, MaxFrameLen] — return an error without reading past
// the declared frame, so one bad client frame cannot desynchronize or
// over-allocate the connection. io.EOF is returned untouched on a clean
// close before any byte of the next frame.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	if cap(buf) < lenPrefix {
		buf = make([]byte, 4096)
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:lenPrefix]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("wire: truncated length prefix: %w", err)
		}
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(buf[:lenPrefix])
	if n < headerLen || n > MaxFrameLen {
		return Frame{}, buf, fmt.Errorf("wire: frame length %d outside [%d,%d]", n, headerLen, MaxFrameLen)
	}
	if int(n) > len(buf) {
		buf = make([]byte, int(n))
	}
	body := buf[:n]
	if got, err := io.ReadFull(r, body); err != nil {
		return Frame{}, buf, fmt.Errorf("wire: truncated frame (%d of %d bytes): %w", got, n, err)
	}
	if m := binary.LittleEndian.Uint16(body[0:2]); m != Magic {
		return Frame{}, buf, fmt.Errorf("wire: bad magic 0x%04x", m)
	}
	if v := body[2]; v != Version {
		return Frame{}, buf, fmt.Errorf("wire: unsupported version %d", v)
	}
	f := Frame{
		Op:      Op(body[3]),
		ID:      binary.LittleEndian.Uint64(body[4:12]),
		Payload: body[headerLen:],
	}
	return f, buf, nil
}

// Key decodes an OpLookup payload.
func (f Frame) Key() (keys.Value, error) {
	if len(f.Payload) != 16 {
		return keys.Value{}, fmt.Errorf("wire: lookup payload %d bytes, want 16", len(f.Payload))
	}
	return decodeKey(f.Payload), nil
}

// BatchKeys decodes an OpBatch payload, appending into dst.
func (f Frame) BatchKeys(dst []keys.Value) ([]keys.Value, error) {
	if len(f.Payload) < 4 {
		return dst, fmt.Errorf("wire: batch payload %d bytes, want ≥ 4", len(f.Payload))
	}
	n := binary.LittleEndian.Uint32(f.Payload[:4])
	if n < 1 || n > MaxBatchKeys {
		return dst, fmt.Errorf("wire: batch count %d outside [1,%d]", n, MaxBatchKeys)
	}
	if len(f.Payload) != 4+16*int(n) {
		return dst, fmt.Errorf("wire: batch payload %d bytes, want %d for %d keys", len(f.Payload), 4+16*int(n), n)
	}
	for i := 0; i < int(n); i++ {
		dst = append(dst, decodeKey(f.Payload[4+16*i:]))
	}
	return dst, nil
}

// Result decodes an OpResult payload.
func (f Frame) Result() (Result, error) {
	if len(f.Payload) != 9 {
		return Result{}, fmt.Errorf("wire: result payload %d bytes, want 9", len(f.Payload))
	}
	if f.Payload[8] > 1 {
		return Result{}, fmt.Errorf("wire: result flags 0x%02x, want 0 or 1", f.Payload[8])
	}
	return Result{
		Action:  binary.LittleEndian.Uint64(f.Payload[0:8]),
		Matched: f.Payload[8] == 1,
	}, nil
}

// BatchResults decodes an OpBatchResult payload, appending into dst.
func (f Frame) BatchResults(dst []Result) ([]Result, error) {
	if len(f.Payload) < 4 {
		return dst, fmt.Errorf("wire: batch-result payload %d bytes, want ≥ 4", len(f.Payload))
	}
	n := binary.LittleEndian.Uint32(f.Payload[:4])
	if n > MaxBatchKeys {
		return dst, fmt.Errorf("wire: batch-result count %d exceeds %d", n, MaxBatchKeys)
	}
	if len(f.Payload) != 4+9*int(n) {
		return dst, fmt.Errorf("wire: batch-result payload %d bytes, want %d for %d results", len(f.Payload), 4+9*int(n), n)
	}
	for i := 0; i < int(n); i++ {
		p := f.Payload[4+9*i:]
		if p[8] > 1 {
			return dst, fmt.Errorf("wire: batch-result %d flags 0x%02x, want 0 or 1", i, p[8])
		}
		dst = append(dst, Result{
			Action:  binary.LittleEndian.Uint64(p[0:8]),
			Matched: p[8] == 1,
		})
	}
	return dst, nil
}

// Update decodes an OpUpdate payload.
func (f Frame) Update() (RuleUpdate, error) {
	if len(f.Payload) != 26 {
		return RuleUpdate{}, fmt.Errorf("wire: update payload %d bytes, want 26", len(f.Payload))
	}
	u := RuleUpdate{
		Op:     f.Payload[0],
		Len:    int(f.Payload[1]),
		Prefix: decodeKey(f.Payload[2:18]),
		Action: binary.LittleEndian.Uint64(f.Payload[18:26]),
	}
	if u.Op > UpdateModify {
		return RuleUpdate{}, fmt.Errorf("wire: unknown update op %d", u.Op)
	}
	if u.Len > 128 {
		return RuleUpdate{}, fmt.Errorf("wire: update prefix length %d exceeds 128", u.Len)
	}
	return u, nil
}

// UpdatePending decodes an OpUpdateResult payload.
func (f Frame) UpdatePending() (uint32, error) {
	if len(f.Payload) != 4 {
		return 0, fmt.Errorf("wire: update-result payload %d bytes, want 4", len(f.Payload))
	}
	return binary.LittleEndian.Uint32(f.Payload), nil
}

// Err decodes an OpError payload into a Go error.
func (f Frame) Err() error {
	if len(f.Payload) < 1 {
		return fmt.Errorf("wire: empty error payload")
	}
	return &RemoteError{Code: f.Payload[0], Msg: string(f.Payload[1:])}
}

// RemoteError is a server-reported error decoded from an OpError frame.
type RemoteError struct {
	Code uint8
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}
