package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"neurolpm/internal/keys"
)

// readOne decodes a single encoded frame, failing the test on any error.
func readOne(t *testing.T, b []byte) Frame {
	t.Helper()
	f, _, err := ReadFrame(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return f
}

func TestLookupRoundTrip(t *testing.T) {
	k := keys.FromParts(0xdeadbeefcafe, 0x0123456789abcdef)
	f := readOne(t, AppendLookup(nil, 42, k))
	if f.Op != OpLookup || f.ID != 42 {
		t.Fatalf("header %v/%d, want lookup/42", f.Op, f.ID)
	}
	got, err := f.Key()
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("key %v, want %v", got, k)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ks := []keys.Value{
		keys.FromUint64(1),
		keys.FromParts(^uint64(0), ^uint64(0)),
		{},
	}
	f := readOne(t, AppendBatch(nil, 7, ks))
	if f.Op != OpBatch {
		t.Fatalf("op %v, want batch", f.Op)
	}
	got, err := f.BatchKeys(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("%d keys, want %d", len(got), len(ks))
	}
	for i := range ks {
		if got[i] != ks[i] {
			t.Fatalf("key %d: %v, want %v", i, got[i], ks[i])
		}
	}
}

func TestResultAndBatchResultRoundTrip(t *testing.T) {
	f := readOne(t, AppendResult(nil, 9, 12345, true))
	r, err := f.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != 12345 || !r.Matched {
		t.Fatalf("result %+v", r)
	}

	res := []Result{{Action: 1, Matched: true}, {Action: 0, Matched: false}, {Action: ^uint64(0), Matched: true}}
	f = readOne(t, AppendBatchResults(nil, 10, res))
	got, err := f.BatchResults(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res) {
		t.Fatalf("%d results, want %d", len(got), len(res))
	}
	for i := range res {
		if got[i] != res[i] {
			t.Fatalf("result %d: %+v, want %+v", i, got[i], res[i])
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := RuleUpdate{Op: UpdateModify, Prefix: keys.FromUint64(0x0a000000), Len: 24, Action: 99}
	f := readOne(t, AppendUpdate(nil, 3, u))
	got, err := f.Update()
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("update %+v, want %+v", got, u)
	}
}

func TestPingPongAndError(t *testing.T) {
	if f := readOne(t, AppendPing(nil, 1)); f.Op != OpPing || len(f.Payload) != 0 {
		t.Fatalf("ping frame %+v", f)
	}
	if f := readOne(t, AppendPong(nil, 1)); f.Op != OpPong {
		t.Fatalf("pong frame %+v", f)
	}
	f := readOne(t, AppendError(nil, 5, ErrBackpressure, "delta buffer full"))
	err := f.Err()
	re, ok := err.(*RemoteError)
	if !ok || re.Code != ErrBackpressure || re.Msg != "delta buffer full" {
		t.Fatalf("error %v", err)
	}
}

func TestStreamOfFramesSharesBuffer(t *testing.T) {
	var b []byte
	b = AppendLookup(b, 1, keys.FromUint64(10))
	b = AppendPing(b, 2)
	b = AppendLookup(b, 3, keys.FromUint64(30))
	r := bytes.NewReader(b)
	var buf []byte
	var err error
	var f Frame
	for want := uint64(1); want <= 3; want++ {
		f, buf, err = ReadFrame(r, buf)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		if f.ID != want {
			t.Fatalf("id %d, want %d", f.ID, want)
		}
	}
	if _, _, err = ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("after stream: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"short prefix":   {1, 0},
		"length too big": binary.LittleEndian.AppendUint32(nil, MaxFrameLen+1),
		"length too small": append(binary.LittleEndian.AppendUint32(nil, headerLen-1),
			make([]byte, headerLen-1)...),
		"bad magic": func() []byte {
			b := AppendPing(nil, 1)
			b[4] = 0x00 // corrupt magic low byte
			return b
		}(),
		"bad version": func() []byte {
			b := AppendPing(nil, 1)
			b[6] = 99
			return b
		}(),
		"truncated body": AppendLookup(nil, 1, keys.FromUint64(5))[:12],
	}
	for name, raw := range cases {
		_, _, err := ReadFrame(bytes.NewReader(raw), nil)
		if err == nil {
			t.Errorf("%s: ReadFrame accepted garbage", name)
		}
	}
	// A declared length larger than the bytes on the wire must error, not
	// block forever or succeed short.
	b := AppendBatch(nil, 1, make([]keys.Value, 4))
	if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-8]), nil); err == nil {
		t.Error("truncated batch accepted")
	}
}

func TestPayloadDecodersRejectWrongSizes(t *testing.T) {
	lk := readOne(t, AppendLookup(nil, 1, keys.FromUint64(1)))
	short := lk
	short.Payload = lk.Payload[:8]
	if _, err := short.Key(); err == nil {
		t.Error("short lookup payload accepted")
	}
	batch := readOne(t, AppendBatch(nil, 1, []keys.Value{{}}))
	bad := batch
	bad.Payload = append([]byte(nil), batch.Payload...)
	binary.LittleEndian.PutUint32(bad.Payload, 2) // count lies about length
	if _, err := bad.BatchKeys(nil); err == nil {
		t.Error("batch count/length mismatch accepted")
	}
	res := readOne(t, AppendResult(nil, 1, 5, true))
	badFlags := res
	badFlags.Payload = append([]byte(nil), res.Payload...)
	badFlags.Payload[8] = 7
	if _, err := badFlags.Result(); err == nil {
		t.Error("result flags 7 accepted")
	}
	upd := readOne(t, AppendUpdate(nil, 1, RuleUpdate{Op: UpdateInsert, Len: 8}))
	badOp := upd
	badOp.Payload = append([]byte(nil), upd.Payload...)
	badOp.Payload[0] = 9
	if _, err := badOp.Update(); err == nil {
		t.Error("update op 9 accepted")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpLookup: "lookup", OpBatch: "batch", OpUpdate: "update", OpPing: "ping",
		OpResult: "result", OpBatchResult: "batch-result", OpUpdateResult: "update-result",
		OpPong: "pong", OpError: "error", Op(0x55): "op(0x55)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%#x).String() = %q, want %q", uint8(op), got, want)
		}
	}
}

// replayReader hands ReadFrame the same frame repeatedly without allocating.
type replayReader struct {
	data []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestWireCodecZeroAllocs pins the encode/decode hot path — the loop a
// WireServer connection and a load-driver sender both run — at zero
// steady-state allocations (the PR 10 acceptance bar, alongside
// TestCachedBatchZeroAllocs).
func TestWireCodecZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; strict zero-alloc pin runs in the non-race suite")
	}
	ks := make([]keys.Value, 64)
	for i := range ks {
		ks[i] = keys.FromUint64(uint64(i) * 0x9e3779b97f4a7c15)
	}
	res := make([]Result, 64)
	for i := range res {
		res[i] = Result{Action: uint64(i), Matched: i%2 == 0}
	}

	// Encode: one lookup, one result, one 64-key batch, one batch result.
	buf := make([]byte, 0, 8192)
	encode := func() {
		buf = AppendLookup(buf[:0], 1, ks[0])
		buf = AppendResult(buf, 1, 7, true)
		buf = AppendBatch(buf, 2, ks)
		buf = AppendBatchResults(buf, 2, res)
	}
	encode()
	if avg := testing.AllocsPerRun(100, encode); avg > 0 {
		t.Errorf("encode allocates %.2f/op, want 0", avg)
	}

	// Decode the same stream back with a reused frame buffer and scratch.
	src := &replayReader{data: buf}
	rbuf := make([]byte, 0, 8192)
	kScratch := make([]keys.Value, 0, 64)
	rScratch := make([]Result, 0, 64)
	decode := func() {
		for i := 0; i < 4; i++ {
			f, nb, err := ReadFrame(src, rbuf)
			if err != nil {
				t.Fatal(err)
			}
			rbuf = nb
			switch f.Op {
			case OpLookup:
				if _, err := f.Key(); err != nil {
					t.Fatal(err)
				}
			case OpResult:
				if _, err := f.Result(); err != nil {
					t.Fatal(err)
				}
			case OpBatch:
				if kScratch, err = f.BatchKeys(kScratch[:0]); err != nil {
					t.Fatal(err)
				}
			case OpBatchResult:
				if rScratch, err = f.BatchResults(rScratch[:0]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	decode()
	if avg := testing.AllocsPerRun(100, decode); avg > 0 {
		t.Errorf("decode allocates %.2f/op, want 0", avg)
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Code: ErrBadRequest, Msg: "no"}
	if !strings.Contains(e.Error(), "2") || !strings.Contains(e.Error(), "no") {
		t.Fatalf("error text %q", e.Error())
	}
}
