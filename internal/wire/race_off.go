//go:build !race

package wire

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation adds allocations that break strict alloc assertions.
const raceEnabled = false
