package binsearch

import (
	"math/rand"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/workload"
)

func build(t testing.TB, n int, seed int64) (*lpm.RuleSet, *Engine) {
	t.Helper()
	rs, err := workload.Generate(workload.RIPE(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	return rs, e
}

func TestMatchesOracle(t *testing.T) {
	rs, e := build(t, 2000, 1)
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 10000; q++ {
		k := keys.FromUint64(uint64(rng.Uint32()))
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: binsearch (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestProbeCountLogarithmic(t *testing.T) {
	rs, e := build(t, 4000, 3)
	_ = rs
	bound := e.Probes()
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 5000; q++ {
		_, _, probes := e.LookupMem(keys.FromUint64(uint64(rng.Uint32())), cachesim.Null{})
		if probes > bound {
			t.Fatalf("probes %d exceed ⌈log₂ n⌉ = %d", probes, bound)
		}
	}
}

func TestMemSeesEveryProbe(t *testing.T) {
	_, e := build(t, 1000, 5)
	u := &cachesim.Uncached{}
	_, _, probes := e.LookupMem(keys.FromUint64(0x0A000001), u)
	if int(u.Stats().Accesses) != probes {
		t.Fatalf("mem saw %d accesses for %d probes", u.Stats().Accesses, probes)
	}
	if u.Stats().Bytes != uint64(probes*e.Array().BytesPerEntry()) {
		t.Fatalf("bytes %d for %d 4-byte probes", u.Stats().Bytes, probes)
	}
}

func TestFromArraySharesRanges(t *testing.T) {
	rs, e := build(t, 500, 6)
	e2 := FromArray(e.Array())
	rng := rand.New(rand.NewSource(7))
	_ = rs
	for q := 0; q < 1000; q++ {
		k := keys.FromUint64(uint64(rng.Uint32()))
		a1, ok1 := e.Lookup(k)
		a2, ok2 := e2.Lookup(k)
		if a1 != a2 || ok1 != ok2 {
			t.Fatalf("FromArray disagrees at %v", k)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	_, e := build(b, 10000, 8)
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(qs[i&1023])
	}
}
