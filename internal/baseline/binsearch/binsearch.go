// Package binsearch implements the full-binary-search LPM baseline the
// paper compares RQRMI against in §8: LPM rules are converted to the same
// non-overlapping range array, but queries locate the matching range with an
// unassisted O(log n) binary search instead of model inference plus an
// O(log e) bounded search. Every probe is a 4-byte (or wider) read of a
// range bound; when the array lives in DRAM these probes are the dependent,
// poorly-local accesses RQRMI avoids.
package binsearch

import (
	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/ranges"
)

// Engine performs LPM via binary search over a range array.
type Engine struct {
	arr *ranges.Array
}

// Build converts the rule-set into a range array.
func Build(rs *lpm.RuleSet) (*Engine, error) {
	arr, err := ranges.Convert(rs)
	if err != nil {
		return nil, err
	}
	return &Engine{arr: arr}, nil
}

// FromArray wraps an existing range array (so NeuroLPM and the baseline can
// be compared on the identical array).
func FromArray(arr *ranges.Array) *Engine { return &Engine{arr: arr} }

// Lookup implements lpm.Matcher.
func (e *Engine) Lookup(k keys.Value) (uint64, bool) {
	idx, _ := e.search(k, cachesim.Null{})
	return e.arr.Action(idx)
}

// LookupMem runs the query, reading every probed range bound through mem.
// It returns the action and the number of probes.
func (e *Engine) LookupMem(k keys.Value, mem cachesim.Mem) (action uint64, ok bool, probes int) {
	idx, probes := e.search(k, mem)
	action, ok = e.arr.Action(idx)
	return action, ok, probes
}

func (e *Engine) search(k keys.Value, mem cachesim.Mem) (idx, probes int) {
	eb := e.arr.BytesPerEntry()
	lo, hi := 0, e.arr.Len()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		probes++
		mem.Read(uint64(mid)*uint64(eb), eb)
		if k.Less(e.arr.Entries[mid].Low) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return lo, probes
}

// Probes returns the worst-case probe count, ⌈log₂ n⌉.
func (e *Engine) Probes() int {
	p := 0
	for v := 1; v < e.arr.Len(); v <<= 1 {
		p++
	}
	return p
}

// Array exposes the underlying range array.
func (e *Engine) Array() *ranges.Array { return e.arr }
