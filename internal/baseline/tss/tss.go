// Package tss implements the Tuple Space Search LPM baseline (§3.3): one
// exact-match hash table per distinct prefix length, probed from the longest
// length to the shortest until a match is found. Its query cost — and its
// weakness, per the paper — is proportional to the number of distinct prefix
// lengths in the rule-set, which is exactly what the per-query probe count
// exposes.
package tss

import (
	"sort"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// slotBytes models one hash-table bucket read (key + action + chain word).
const slotBytes = 16

// Engine is a built TSS engine.
type Engine struct {
	width   int
	lengths []int // distinct prefix lengths, descending
	tables  []map[keys.Value]uint64
	bases   []uint64 // simulated DRAM base address per table
	slots   []uint64 // simulated table capacity (power of two)
}

// Build indexes the rule-set into per-length hash tables.
func Build(rs *lpm.RuleSet) (*Engine, error) {
	byLen := map[int]map[keys.Value]uint64{}
	for _, r := range rs.Rules {
		t, ok := byLen[r.Len]
		if !ok {
			t = map[keys.Value]uint64{}
			byLen[r.Len] = t
		}
		t[r.Prefix] = r.Action
	}
	e := &Engine{width: rs.Width}
	for l := range byLen {
		e.lengths = append(e.lengths, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(e.lengths)))
	base := uint64(0)
	for _, l := range e.lengths {
		t := byLen[l]
		e.tables = append(e.tables, t)
		slots := uint64(1)
		for slots < uint64(2*len(t)) {
			slots <<= 1
		}
		e.bases = append(e.bases, base)
		e.slots = append(e.slots, slots)
		base += slots * slotBytes
	}
	return e, nil
}

// NumTables returns the number of hash tables — the paper's table-count
// sensitivity metric (e.g. >26 for Snort string matching, ~24 for routing).
func (e *Engine) NumTables() int { return len(e.tables) }

// Lookup implements lpm.Matcher.
func (e *Engine) Lookup(k keys.Value) (uint64, bool) {
	a, ok, _ := e.LookupMem(k, cachesim.Null{})
	return a, ok
}

// LookupMem probes tables longest-first, reading one hash bucket through mem
// per probe, and returns the match plus the number of tables probed.
func (e *Engine) LookupMem(k keys.Value, mem cachesim.Mem) (action uint64, ok bool, probes int) {
	for i, l := range e.lengths {
		probes++
		key := k
		if l < e.width {
			shift := uint(e.width - l)
			key = k.Shr(shift).Shl(shift)
		}
		mem.Read(e.bases[i]+(hash(key)%e.slots[i])*slotBytes, slotBytes)
		if a, hit := e.tables[i][key]; hit {
			return a, true, probes
		}
	}
	return 0, false, probes
}

// DRAMBytes is the simulated footprint of all tables.
func (e *Engine) DRAMBytes() int {
	total := uint64(0)
	for _, s := range e.slots {
		total += s * slotBytes
	}
	return int(total)
}

// hash is FNV-1a over the key limbs.
func hash(k keys.Value) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, limb := range [2]uint64{k.Hi, k.Lo} {
		for i := 0; i < 8; i++ {
			h ^= (limb >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	return h
}
