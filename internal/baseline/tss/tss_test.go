package tss

import (
	"math/rand"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/workload"
)

func build(t testing.TB, p workload.Profile, n int, seed int64) (*lpm.RuleSet, *Engine) {
	t.Helper()
	rs, err := workload.Generate(p, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	return rs, e
}

func TestMatchesOracle(t *testing.T) {
	rs, e := build(t, workload.RIPE(), 2000, 1)
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 10000; q++ {
		k := keys.FromUint64(uint64(rng.Uint32()))
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: tss (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestProbesBoundedByTables(t *testing.T) {
	rs, e := build(t, workload.RIPE(), 2000, 3)
	_ = rs
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 2000; q++ {
		_, _, probes := e.LookupMem(keys.FromUint64(uint64(rng.Uint32())), cachesim.Null{})
		if probes > e.NumTables() {
			t.Fatalf("probes %d exceed table count %d", probes, e.NumTables())
		}
	}
}

// TestTableCountSensitivity reproduces the §3.3 observation: string-matching
// rule-sets need many more tables than routing ones.
func TestTableCountSensitivity(t *testing.T) {
	_, routing := build(t, workload.RIPE(), 3000, 5)
	_, strings := build(t, workload.Snort(), 3000, 6)
	if routing.NumTables() < 15 || routing.NumTables() > 32 {
		t.Fatalf("routing tables = %d, want ~20-24", routing.NumTables())
	}
	if strings.NumTables() < 26 {
		t.Fatalf("string-matching tables = %d, want > 26 (§3.3)", strings.NumTables())
	}
}

func TestLongestWins(t *testing.T) {
	rules := []lpm.Rule{
		{Prefix: keys.FromUint64(0x80), Len: 1, Action: 1},
		{Prefix: keys.FromUint64(0xF0), Len: 4, Action: 2},
	}
	rs, err := lpm.NewRuleSet(8, rules)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e.Lookup(keys.FromUint64(0xF5))
	if !ok || got != 2 {
		t.Fatalf("lookup = %d,%v, want 2", got, ok)
	}
	// A longest-first hit stops probing.
	_, _, probes := e.LookupMem(keys.FromUint64(0xF5), cachesim.Null{})
	if probes != 1 {
		t.Fatalf("probes = %d, want 1", probes)
	}
}

func TestNoMatch(t *testing.T) {
	rs, err := lpm.NewRuleSet(8, []lpm.Rule{{Prefix: keys.FromUint64(0x80), Len: 1, Action: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Lookup(keys.FromUint64(0x10)); ok {
		t.Fatal("matched nothing")
	}
}

func TestDRAMBytesPositive(t *testing.T) {
	_, e := build(t, workload.RIPE(), 1000, 7)
	if e.DRAMBytes() <= 0 {
		t.Fatal("no DRAM footprint")
	}
}

func BenchmarkLookup(b *testing.B) {
	_, e := build(b, workload.RIPE(), 10000, 8)
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(qs[i&1023])
	}
}
