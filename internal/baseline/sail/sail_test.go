package sail

import (
	"math/rand"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/workload"
)

func buildFromProfile(t testing.TB, n int, seed int64) (*lpm.RuleSet, *Engine) {
	t.Helper()
	rs, err := workload.Generate(workload.RIPE(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	return rs, e
}

func TestMatchesOracle(t *testing.T) {
	rs, e := buildFromProfile(t, 3000, 1)
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 20000; q++ {
		k := keys.FromUint64(uint64(rng.Uint32()))
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: sail (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestMatchesOracleAtRuleBoundaries(t *testing.T) {
	rs, e := buildFromProfile(t, 1000, 3)
	oracle := lpm.NewTrieMatcher(rs)
	check := func(k keys.Value) {
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: sail (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
	for _, r := range rs.Rules {
		check(r.Low(32))
		check(r.High(32))
		if !r.Low(32).IsZero() {
			check(r.Low(32).Dec())
		}
	}
}

func TestRejectsNon32Bit(t *testing.T) {
	rs, err := lpm.NewRuleSet(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(rs); err == nil {
		t.Fatal("64-bit rule-set accepted")
	}
}

func TestRejectsTooManyActions(t *testing.T) {
	var rules []lpm.Rule
	for i := 0; i < 300; i++ {
		rules = append(rules, lpm.Rule{
			Prefix: keys.FromUint64(uint64(i) << 16),
			Len:    16,
			Action: uint64(i), // 300 distinct actions
		})
	}
	rs, err := lpm.NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(rs); err == nil {
		t.Fatal("rule-set with >255 actions accepted")
	}
}

func TestDRAMAccessCounts(t *testing.T) {
	// Hand-built set exercising all three levels.
	rules := []lpm.Rule{
		{Prefix: keys.FromUint64(0x0A000000), Len: 8, Action: 1},  // /8: level 16
		{Prefix: keys.FromUint64(0x0A140000), Len: 16, Action: 2}, // /16: level 16
		{Prefix: keys.FromUint64(0x0A141400), Len: 24, Action: 3}, // /24: level 24
		{Prefix: keys.FromUint64(0x0A141500), Len: 24, Action: 5}, // /24 without deeper rules
		{Prefix: keys.FromUint64(0x0A141420), Len: 28, Action: 4}, // /28: level 32
	}
	rs, err := lpm.NewRuleSet(32, rules)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key      uint64
		accesses uint64
		action   uint64
	}{
		{0x0B000000, 0, 0}, // no match, level 16 only
		{0x0A990000, 0, 1}, // /8 match without deeper chunk: level 16
		{0x0A149900, 1, 2}, // under the /16 with a chunk: level-24 read
		{0x0A141599, 1, 5}, // /24 match with no deeper rules: level-24 read
		{0x0A141425, 2, 4}, // /28 match: pointer + level-32 reads
		{0x0A141410, 2, 3}, // /24 holding a /28: forced to level 32 anyway
	}
	for _, c := range cases {
		u := &cachesim.Uncached{}
		got, _ := e.LookupMem(keys.FromUint64(c.key), u)
		if u.Stats().Accesses != c.accesses {
			t.Errorf("key %08x: %d accesses, want %d", c.key, u.Stats().Accesses, c.accesses)
		}
		if c.action != 0 && got != c.action {
			t.Errorf("key %08x: action %d, want %d", c.key, got, c.action)
		}
	}
}

func TestWorstCaseAccessesNeverExceeded(t *testing.T) {
	rs, e := buildFromProfile(t, 2000, 4)
	_ = rs
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 5000; q++ {
		u := &cachesim.Uncached{}
		e.LookupMem(keys.FromUint64(uint64(rng.Uint32())), u)
		if int(u.Stats().Accesses) > e.WorstCaseDRAMAccesses() {
			t.Fatalf("%d accesses exceed worst case %d", u.Stats().Accesses, e.WorstCaseDRAMAccesses())
		}
	}
}

func TestStaticSRAMBytes(t *testing.T) {
	_, e := buildFromProfile(t, 100, 6)
	got := e.StaticSRAMBytes()
	// 8KB + 64KB + 128KB + 2MB = 2,297,856 bytes ≈ the paper's 2.25MB.
	want := 8*1024 + 64*1024 + 128*1024 + 2*1024*1024
	if got != want {
		t.Fatalf("static SRAM = %d, want %d", got, want)
	}
	// 2,301,952 bytes = 2.30 decimal MB ≈ the paper's "2.25MB".
	if got < 2_200_000 || got > 2_400_000 {
		t.Fatalf("static SRAM %d outside the paper's ~2.25MB", got)
	}
}

func TestDRAMBytesGrowWithRules(t *testing.T) {
	_, small := buildFromProfile(t, 500, 7)
	_, large := buildFromProfile(t, 5000, 7)
	if large.DRAMBytes() <= small.DRAMBytes() {
		t.Fatalf("DRAM bytes did not grow: %d vs %d", small.DRAMBytes(), large.DRAMBytes())
	}
}

func BenchmarkLookup(b *testing.B) {
	_, e := buildFromProfile(b, 10000, 8)
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(qs[i&1023])
	}
}
