// Package sail implements the SAIL hardware-oriented LPM baseline (§3.3):
// leaf-pushed lookup tables split at bit levels 16, 24 and 32. Levels 16 and
// 24's bitmaps plus the chunk pointer table are SRAM-resident (the paper's
// ~2.25MB static allocation); the level-24 action chunks, level-32 pointer
// chunks and level-32 action chunks live in DRAM and are accessed through
// the cache, so the engine can be compared with NeuroLPM under the §10.2
// methodology.
//
// SAIL is IPv4-specific by construction (32-bit keys) and assumes one-byte
// action identifiers — the very restrictions the paper's multi-purpose
// requirements R1–R2 call out.
package sail

import (
	"fmt"
	"sort"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

const (
	// Width is the only key width SAIL supports.
	Width = 32

	noChunk  = 0xFFFF
	noAction = 0 // action ids are 1-based; 0 means "no rule"

	chunkEntries = 256
)

// Engine is a built SAIL engine.
type Engine struct {
	// SRAM-resident (static) structures.
	b16 bitset   // a longer-than-16 rule exists under this /16
	n16 []uint8  // leaf-pushed action id per /16
	c16 []uint16 // level-24 chunk id per /16 (noChunk when absent)
	b24 bitset   // a longer-than-24 rule exists under this /24

	// DRAM-resident structures, addressed via layout below.
	n24 [][]uint8  // level-24 action chunks (256 × 1B)
	c24 [][]uint16 // level-32 pointer chunks (256 × 2B), parallel to n24
	n32 [][]uint8  // level-32 action chunks (256 × 1B)

	actions []uint64 // action id (1-based) → action value
}

type bitset []uint64

func newBitset(n int) bitset       { return make(bitset, (n+63)/64) }
func (b bitset) set(i uint32)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) get(i uint32) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Build constructs the SAIL tables from a 32-bit rule-set by leaf pushing.
// It fails when the rule-set is not 32-bit or needs more than 255 distinct
// actions (SAIL's one-byte action assumption).
func Build(rs *lpm.RuleSet) (*Engine, error) {
	if rs.Width != Width {
		return nil, fmt.Errorf("sail: only %d-bit rule-sets are supported, got %d", Width, rs.Width)
	}
	e := &Engine{
		b16: newBitset(1 << 16),
		n16: make([]uint8, 1<<16),
		c16: make([]uint16, 1<<16),
		b24: newBitset(1 << 24),
	}
	for i := range e.c16 {
		e.c16[i] = noChunk
	}
	actionID := map[uint64]uint8{}
	idOf := func(a uint64) (uint8, error) {
		if id, ok := actionID[a]; ok {
			return id, nil
		}
		if len(actionID) >= 255 {
			return 0, fmt.Errorf("sail: more than 255 distinct actions")
		}
		id := uint8(len(actionID) + 1)
		actionID[a] = id
		e.actions = append(e.actions, a)
		return id, nil
	}

	// Pass 1: leaf-push rules with len ≤ 16 into n16 (increasing length so
	// longer prefixes overwrite).
	for _, r := range sortedByLen(rs.Rules) {
		if r.Len > 16 {
			continue
		}
		id, err := idOf(r.Action)
		if err != nil {
			return nil, err
		}
		base := uint32(r.Prefix.Uint64() >> 16)
		span := uint32(1) << (16 - r.Len)
		for i := base; i < base+span; i++ {
			e.n16[i] = id
		}
	}
	// Pass 2: rules with len 17..24 populate level-24 chunks; chunk entries
	// start as the pushed-down level-16 action.
	chunkOf16 := func(idx16 uint32) int {
		if e.c16[idx16] != noChunk {
			return int(e.c16[idx16])
		}
		c := len(e.n24)
		if c >= noChunk {
			// 65535 chunks × 256 entries = the whole /24 space; unreachable
			// for valid rule-sets but guard anyway.
			return -1
		}
		chunk := make([]uint8, chunkEntries)
		for i := range chunk {
			chunk[i] = e.n16[idx16]
		}
		ptrs := make([]uint16, chunkEntries)
		for i := range ptrs {
			ptrs[i] = noChunk
		}
		e.n24 = append(e.n24, chunk)
		e.c24 = append(e.c24, ptrs)
		e.c16[idx16] = uint16(c)
		e.b16.set(idx16)
		return c
	}
	for _, r := range sortedByLen(rs.Rules) {
		if r.Len <= 16 || r.Len > 24 {
			continue
		}
		id, err := idOf(r.Action)
		if err != nil {
			return nil, err
		}
		addr := uint32(r.Prefix.Uint64())
		idx16 := addr >> 16
		c := chunkOf16(idx16)
		if c < 0 {
			return nil, fmt.Errorf("sail: level-24 chunk space exhausted")
		}
		base := (addr >> 8) & 0xFF
		span := uint32(1) << (24 - r.Len)
		for i := base; i < base+span; i++ {
			e.n24[c][i] = id
		}
	}
	// Pass 3: rules with len 25..32 populate level-32 chunks.
	chunkOf24 := func(idx16 uint32, off24 uint32) (int, error) {
		c16 := chunkOf16(idx16)
		if c16 < 0 {
			return -1, fmt.Errorf("sail: level-24 chunk space exhausted")
		}
		if p := e.c24[c16][off24]; p != noChunk {
			return int(p), nil
		}
		c := len(e.n32)
		if c >= noChunk {
			return -1, fmt.Errorf("sail: level-32 chunk space exhausted")
		}
		chunk := make([]uint8, chunkEntries)
		for i := range chunk {
			chunk[i] = e.n24[c16][off24]
		}
		e.n32 = append(e.n32, chunk)
		e.c24[c16][off24] = uint16(c)
		e.b24.set(idx16<<8 | off24)
		return c, nil
	}
	for _, r := range sortedByLen(rs.Rules) {
		if r.Len <= 24 {
			continue
		}
		id, err := idOf(r.Action)
		if err != nil {
			return nil, err
		}
		addr := uint32(r.Prefix.Uint64())
		c, err := chunkOf24(addr>>16, (addr>>8)&0xFF)
		if err != nil {
			return nil, err
		}
		base := addr & 0xFF
		span := uint32(1) << (32 - r.Len)
		for i := base; i < base+span; i++ {
			e.n32[c][i] = id
		}
	}
	return e, nil
}

// sortedByLen returns the rules ordered by increasing prefix length so that
// leaf pushing overwrites shorter matches with longer ones.
func sortedByLen(rules []lpm.Rule) []lpm.Rule {
	out := append([]lpm.Rule(nil), rules...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Len < out[j].Len })
	return out
}

// DRAM layout: n24 chunks, then c24 pointer chunks, then n32 chunks.
func (e *Engine) n24Addr(chunk int, off uint32) uint64 {
	return uint64(chunk)*chunkEntries + uint64(off)
}

func (e *Engine) c24Addr(chunk int, off uint32) uint64 {
	base := uint64(len(e.n24)) * chunkEntries
	return base + uint64(chunk)*chunkEntries*2 + uint64(off)*2
}

func (e *Engine) n32Addr(chunk int, off uint32) uint64 {
	base := uint64(len(e.n24))*chunkEntries + uint64(len(e.c24))*chunkEntries*2
	return base + uint64(chunk)*chunkEntries + uint64(off)
}

// Lookup implements lpm.Matcher (no traffic accounting).
func (e *Engine) Lookup(k keys.Value) (uint64, bool) {
	return e.LookupMem(k, cachesim.Null{})
}

// LookupMem performs the SAIL query, reading DRAM-resident tables through
// mem: the level-24 action byte, and for longer matches the level-32 chunk
// pointer (2B) followed by the level-32 action byte — SAIL's two dependent
// DRAM accesses in the worst case (§10.2).
func (e *Engine) LookupMem(k keys.Value, mem cachesim.Mem) (uint64, bool) {
	addr := uint32(k.Uint64())
	idx16 := addr >> 16
	if !e.b16.get(idx16) {
		return e.action(e.n16[idx16])
	}
	c16 := int(e.c16[idx16])
	off24 := (addr >> 8) & 0xFF
	if !e.b24.get(addr >> 8) {
		mem.Read(e.n24Addr(c16, off24), 1)
		return e.action(e.n24[c16][off24])
	}
	mem.Read(e.c24Addr(c16, off24), 2)
	c32 := int(e.c24[c16][off24])
	off32 := addr & 0xFF
	mem.Read(e.n32Addr(c32, off32), 1)
	return e.action(e.n32[c32][off32])
}

func (e *Engine) action(id uint8) (uint64, bool) {
	if id == noAction {
		return 0, false
	}
	return e.actions[id-1], true
}

// StaticSRAMBytes is SAIL's fixed on-chip allocation: the level-16 bitmap
// and action/pointer arrays plus the level-24 bitmap — about 2.26MB, which
// is why the paper notes SAIL needs at least 2.4MB of SRAM to run.
func (e *Engine) StaticSRAMBytes() int {
	b16 := (1 << 16) / 8 // 8 KB
	n16 := (1 << 16) * 1 // 64 KB (1B leaf-pushed action)
	c16 := (1 << 16) * 2 // 128 KB chunk pointers
	b24 := (1 << 24) / 8 // 2 MB
	return b16 + n16 + c16 + b24
}

// DRAMBytes is the off-chip footprint of the chunked tables.
func (e *Engine) DRAMBytes() int {
	return len(e.n24)*chunkEntries + len(e.c24)*chunkEntries*2 + len(e.n32)*chunkEntries
}

// WorstCaseDRAMAccesses is SAIL's deterministic bound: two dependent reads.
func (e *Engine) WorstCaseDRAMAccesses() int { return 2 }
