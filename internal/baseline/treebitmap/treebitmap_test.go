package treebitmap

import (
	"math/rand"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/workload"
)

func buildFromProfile(t testing.TB, p workload.Profile, n int, seed int64) (*lpm.RuleSet, *Engine) {
	t.Helper()
	rs, err := workload.Generate(p, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	return rs, e
}

func TestMatchesOracle32(t *testing.T) {
	rs, e := buildFromProfile(t, workload.RIPE(), 3000, 1)
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 20000; q++ {
		k := keys.FromUint64(uint64(rng.Uint32()))
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: treebitmap (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestMatchesOracle48(t *testing.T) {
	rs, e := buildFromProfile(t, workload.Snort(), 1500, 3)
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 10000; q++ {
		k := keys.FromUint64(rng.Uint64() & (1<<48 - 1))
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: treebitmap (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestMatchesOracle128(t *testing.T) {
	rs, e := buildFromProfile(t, workload.IPv6(), 800, 5)
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 5000; q++ {
		k := keys.FromParts(rng.Uint64(), rng.Uint64())
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: treebitmap (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestMatchesOracleAtBoundaries(t *testing.T) {
	rs, e := buildFromProfile(t, workload.Stanford(), 800, 7)
	oracle := lpm.NewTrieMatcher(rs)
	for _, r := range rs.Rules {
		for _, k := range []keys.Value{r.Low(32), r.High(32)} {
			got, gotOK := e.Lookup(k)
			want, wantOK := oracle.Lookup(k)
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("key %v: treebitmap (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
			}
		}
	}
}

func TestRejectsNonStrideWidth(t *testing.T) {
	rs, err := lpm.NewRuleSet(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(rs); err == nil {
		t.Fatal("width 20 accepted")
	}
}

func TestDefaultRuleAtRoot(t *testing.T) {
	rs, err := lpm.NewRuleSet(32, []lpm.Rule{{Len: 0, Action: 42}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs)
	if err != nil {
		t.Fatal(err)
	}
	u := &cachesim.Uncached{}
	got, ok := e.LookupMem(keys.FromUint64(0xDEADBEEF), u)
	if !ok || got != 42 {
		t.Fatalf("default rule: %d,%v", got, ok)
	}
	if u.Stats().Accesses != 0 {
		t.Fatalf("root-only lookup cost %d DRAM accesses", u.Stats().Accesses)
	}
}

func TestAccessCountBoundedByDepth(t *testing.T) {
	rs, e := buildFromProfile(t, workload.RIPE(), 2000, 8)
	_ = rs
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 5000; q++ {
		u := &cachesim.Uncached{}
		e.LookupMem(keys.FromUint64(uint64(rng.Uint32())), u)
		if int(u.Stats().Accesses) > e.WorstCaseDRAMAccesses() {
			t.Fatalf("%d accesses exceed worst case %d", u.Stats().Accesses, e.WorstCaseDRAMAccesses())
		}
	}
}

func TestWorstCaseGrowsWithWidth(t *testing.T) {
	rs32, _ := lpm.NewRuleSet(32, nil)
	rs128, _ := lpm.NewRuleSet(128, nil)
	e32, err := Build(rs32)
	if err != nil {
		t.Fatal(err)
	}
	e128, err := Build(rs128)
	if err != nil {
		t.Fatal(err)
	}
	if e32.WorstCaseDRAMAccesses() != 3 {
		t.Fatalf("32-bit worst case = %d, want 3 (§10.2)", e32.WorstCaseDRAMAccesses())
	}
	if e128.WorstCaseDRAMAccesses() != 15 {
		t.Fatalf("128-bit worst case = %d, want 15", e128.WorstCaseDRAMAccesses())
	}
}

func TestChunkReadsAre64Bytes(t *testing.T) {
	rs, e := buildFromProfile(t, workload.RIPE(), 1000, 10)
	_ = rs
	u := &cachesim.Uncached{}
	rng := rand.New(rand.NewSource(11))
	n := uint64(0)
	for q := 0; q < 1000; q++ {
		e.LookupMem(keys.FromUint64(uint64(rng.Uint32())), u)
		n = u.Stats().Accesses
	}
	if n == 0 {
		t.Skip("no DRAM accesses observed")
	}
	if got := u.Stats().Bytes; got != n*ChunkBytes {
		t.Fatalf("bytes %d for %d chunk reads, want %d", got, n, n*ChunkBytes)
	}
}

func TestDRAMBytesMatchNodeCount(t *testing.T) {
	_, e := buildFromProfile(t, workload.RIPE(), 1000, 12)
	if e.DRAMBytes() != (e.NodeCount()-1)*ChunkBytes {
		t.Fatalf("DRAMBytes %d, nodes %d", e.DRAMBytes(), e.NodeCount())
	}
}

func BenchmarkLookup(b *testing.B) {
	_, e := buildFromProfile(b, workload.RIPE(), 10000, 13)
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(qs[i&1023])
	}
}
