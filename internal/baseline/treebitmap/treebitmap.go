// Package treebitmap implements the Tree Bitmap LPM baseline (§3.3): a
// multibit trie with stride 8 whose nodes are 64-byte chunks, each holding an
// internal bitmap (matching prefixes of the next 0..7 bits), an external
// bitmap (which 8-bit extensions have children) and result storage. A 32-bit
// query traverses up to four chunks; the root chunk is SRAM-resident and the
// rest are read from DRAM through the cache, with the poor spatial locality
// the paper highlights.
package treebitmap

import (
	"fmt"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// Stride is the bits consumed per trie level (the paper's depth-8 subtree
// chunks).
const Stride = 8

// ChunkBytes is the modeled size of one trie node in memory: the 255-bit
// internal bitmap + 256-bit external bitmap + child/result pointers ≈ 64B.
const ChunkBytes = 64

// node is one stride-8 trie node. The internal prefix tree is heap-indexed:
// slot 1 is the zero-length prefix, slots 2p / 2p+1 extend p with 0 / 1, so
// prefixes of 0..7 bits occupy slots 1..255. Real nodes hold few prefixes,
// so the slots are stored sparsely (the 64-byte chunk in the modeled memory
// is a bitmap; the software representation just needs the same contents).
type node struct {
	id       int // DRAM chunk id (root = 0)
	internal map[uint16]uint64
	children map[uint8]*node
}

// Engine is a built Tree Bitmap engine.
type Engine struct {
	width int
	root  *node
	nodes []*node // by id, BFS order
}

// Build constructs the trie. Any key width that is a multiple of the stride
// is supported; depth grows linearly with width (§6.4's point that trie
// engines scale poorly in bit-width).
func Build(rs *lpm.RuleSet) (*Engine, error) {
	if rs.Width%Stride != 0 {
		return nil, fmt.Errorf("treebitmap: width %d is not a multiple of the stride %d", rs.Width, Stride)
	}
	e := &Engine{width: rs.Width, root: newNode()}
	for _, r := range rs.Rules {
		e.insert(r)
	}
	// Assign chunk ids in BFS order (the allocation order a builder would
	// use, giving siblings adjacent addresses).
	e.nodes = e.nodes[:0]
	queue := []*node{e.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.id = len(e.nodes)
		e.nodes = append(e.nodes, n)
		for b := 0; b < 256; b++ {
			if c, ok := n.children[uint8(b)]; ok {
				queue = append(queue, c)
			}
		}
	}
	return e, nil
}

func (e *Engine) insert(r lpm.Rule) {
	n := e.root
	depth := 0
	for r.Len-depth >= Stride {
		b := byteAt(r.Prefix, e.width, depth)
		c, ok := n.children[b]
		if !ok {
			c = newNode()
			n.children[b] = c
		}
		n = c
		depth += Stride
	}
	// Remaining r.Len−depth bits (0..7) index the internal prefix tree.
	rem := r.Len - depth
	slot := uint16(1)
	for i := 0; i < rem; i++ {
		bit := r.Prefix.Bit(e.width - 1 - depth - i)
		slot = slot*2 + uint16(bit)
	}
	n.internal[slot] = r.Action
}

func newNode() *node {
	return &node{internal: map[uint16]uint64{}, children: map[uint8]*node{}}
}

// byteAt extracts the stride byte starting at bit offset depth from the top.
func byteAt(v keys.Value, width, depth int) uint8 {
	return uint8(v.Shr(uint(width-depth-Stride)).Uint64() & 0xFF)
}

// Lookup implements lpm.Matcher.
func (e *Engine) Lookup(k keys.Value) (uint64, bool) {
	return e.LookupMem(k, cachesim.Null{})
}

// LookupMem walks the trie; every visited node except the SRAM-resident
// root costs one 64-byte chunk read through mem.
func (e *Engine) LookupMem(k keys.Value, mem cachesim.Mem) (uint64, bool) {
	n := e.root
	depth := 0
	var best uint64
	found := false
	for {
		if n != e.root {
			mem.Read(uint64(n.id)*ChunkBytes, ChunkBytes)
		}
		// Longest matching internal prefix: walk the heap path for the next
		// up-to-7 bits and remember the deepest valid slot.
		slot := uint16(1)
		if a, ok := n.internal[slot]; ok {
			best, found = a, true
		}
		for i := 0; i < Stride-1 && depth+i < e.width; i++ {
			slot = slot*2 + uint16(k.Bit(e.width-1-depth-i))
			if a, ok := n.internal[slot]; ok {
				best, found = a, true
			}
		}
		if depth+Stride > e.width {
			break
		}
		c, ok := n.children[byteAt(k, e.width, depth)]
		if !ok {
			break
		}
		n = c
		depth += Stride
	}
	return best, found
}

// NodeCount returns the number of trie chunks.
func (e *Engine) NodeCount() int { return len(e.nodes) }

// DRAMBytes is the off-chip footprint: all chunks except the root.
func (e *Engine) DRAMBytes() int {
	if len(e.nodes) <= 1 {
		return 0
	}
	return (len(e.nodes) - 1) * ChunkBytes
}

// StaticSRAMBytes is the root chunk kept on-chip.
func (e *Engine) StaticSRAMBytes() int { return ChunkBytes }

// WorstCaseDRAMAccesses is the trie depth minus the on-chip root — three
// dependent reads for 32-bit keys (§10.2), growing linearly with bit-width.
func (e *Engine) WorstCaseDRAMAccesses() int { return e.width/Stride - 1 }
