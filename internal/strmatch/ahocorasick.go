// Package strmatch implements the string pattern-matching application of
// LPM (paper App 4, §3.1): dictionaries are compiled both into a classic
// Aho–Corasick automaton (the reference scanner used by NIDS tools such as
// Snort and ClamAV) and into LPM rules over a fixed-width byte window, so a
// multi-purpose LPM engine can serve as the matching backend. The resulting
// rule-sets have the broad prefix-length distribution of Fig 2 that defeats
// routing-specialized engines.
package strmatch

import "fmt"

// Match reports pattern p starting at byte offset Pos of the scanned text.
type Match struct {
	Pos     int
	Pattern int // index into the dictionary
}

// AhoCorasick is a goto/fail automaton over byte strings.
type AhoCorasick struct {
	patterns [][]byte
	next     []map[byte]int32
	fail     []int32
	// out[s] lists patterns ending at state s (including via fail links).
	out [][]int32
}

// NewAhoCorasick builds the automaton. Empty pattern lists are allowed and
// match nothing.
func NewAhoCorasick(patterns []string) *AhoCorasick {
	a := &AhoCorasick{
		next: []map[byte]int32{{}},
		fail: []int32{0},
		out:  [][]int32{nil},
	}
	for i, p := range patterns {
		a.patterns = append(a.patterns, []byte(p))
		a.insert([]byte(p), int32(i))
	}
	a.buildFailLinks()
	return a
}

func (a *AhoCorasick) insert(p []byte, id int32) {
	s := int32(0)
	for _, b := range p {
		n, ok := a.next[s][b]
		if !ok {
			n = int32(len(a.next))
			a.next = append(a.next, map[byte]int32{})
			a.fail = append(a.fail, 0)
			a.out = append(a.out, nil)
			a.next[s][b] = n
		}
		s = n
	}
	if len(p) > 0 {
		a.out[s] = append(a.out[s], id)
	}
}

// buildFailLinks runs the standard BFS: fail(s) is the longest proper
// suffix of s's string that is also a state; outputs accumulate along fail
// chains.
func (a *AhoCorasick) buildFailLinks() {
	var queue []int32
	for _, n := range a.next[0] {
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for b, n := range a.next[s] {
			queue = append(queue, n)
			f := a.fail[s]
			for f != 0 {
				if t, ok := a.next[f][b]; ok {
					f = t
					goto linked
				}
				f = a.fail[f]
			}
			if t, ok := a.next[0][b]; ok && t != n {
				f = t
			}
		linked:
			a.fail[n] = f
			a.out[n] = append(a.out[n], a.out[f]...)
		}
	}
}

// States returns the automaton size (the DFA-size metric CompactDFA-style
// encodings depend on).
func (a *AhoCorasick) States() int { return len(a.next) }

// Scan returns every occurrence of every pattern in text, in increasing
// end-position order.
func (a *AhoCorasick) Scan(text []byte) []Match {
	var out []Match
	s := int32(0)
	for i, b := range text {
		for {
			if n, ok := a.next[s][b]; ok {
				s = n
				break
			}
			if s == 0 {
				break
			}
			s = a.fail[s]
		}
		for _, id := range a.out[s] {
			out = append(out, Match{Pos: i + 1 - len(a.patterns[id]), Pattern: int(id)})
		}
	}
	return out
}

// LongestAt returns, for each text offset, the index of the longest pattern
// starting there (−1 when none) — the query the LPM-window scanner answers.
func (a *AhoCorasick) LongestAt(text []byte) []int {
	best := make([]int, len(text))
	for i := range best {
		best[i] = -1
	}
	for _, m := range a.Scan(text) {
		cur := best[m.Pos]
		if cur == -1 || len(a.patterns[m.Pattern]) > len(a.patterns[cur]) {
			best[m.Pos] = m.Pattern
		}
	}
	return best
}

// Validate checks internal consistency (for tests).
func (a *AhoCorasick) Validate() error {
	if len(a.next) != len(a.fail) || len(a.next) != len(a.out) {
		return fmt.Errorf("strmatch: inconsistent automaton arrays")
	}
	for s, f := range a.fail {
		if f < 0 || int(f) >= len(a.next) {
			return fmt.Errorf("strmatch: fail link of state %d out of range", s)
		}
	}
	return nil
}
