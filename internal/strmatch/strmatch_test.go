package strmatch

import (
	"math/rand"
	"strings"
	"testing"

	"neurolpm/internal/lpm"
)

func TestAhoCorasickBasic(t *testing.T) {
	a := NewAhoCorasick([]string{"he", "she", "his", "hers"})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	got := a.Scan([]byte("ushers"))
	// Expected matches: "she"@1, "he"@2, "hers"@2.
	want := map[Match]bool{
		{Pos: 1, Pattern: 1}: true,
		{Pos: 2, Pattern: 0}: true,
		{Pos: 2, Pattern: 3}: true,
	}
	if len(got) != len(want) {
		t.Fatalf("matches = %+v", got)
	}
	for _, m := range got {
		if !want[m] {
			t.Fatalf("unexpected match %+v", m)
		}
	}
}

func TestAhoCorasickNoPatterns(t *testing.T) {
	a := NewAhoCorasick(nil)
	if got := a.Scan([]byte("anything")); len(got) != 0 {
		t.Fatalf("matches = %+v", got)
	}
}

func TestAhoCorasickOverlapping(t *testing.T) {
	a := NewAhoCorasick([]string{"aa", "aaa"})
	got := a.Scan([]byte("aaaa"))
	// "aa" at 0,1,2 and "aaa" at 0,1.
	if len(got) != 5 {
		t.Fatalf("got %d matches: %+v", len(got), got)
	}
}

// naiveScan is the brute-force oracle.
func naiveScan(patterns []string, text []byte) []Match {
	var out []Match
	for i := range text {
		for pi, p := range patterns {
			if i+len(p) <= len(text) && string(text[i:i+len(p)]) == p {
				out = append(out, Match{Pos: i, Pattern: pi})
			}
		}
	}
	return out
}

func TestAhoCorasickAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := "abcd"
	for trial := 0; trial < 30; trial++ {
		var patterns []string
		seen := map[string]bool{}
		for len(patterns) < 12 {
			l := 1 + rng.Intn(5)
			var b strings.Builder
			for i := 0; i < l; i++ {
				b.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			if !seen[b.String()] {
				seen[b.String()] = true
				patterns = append(patterns, b.String())
			}
		}
		text := make([]byte, 300)
		for i := range text {
			text[i] = alphabet[rng.Intn(len(alphabet))]
		}
		a := NewAhoCorasick(patterns)
		got := a.Scan(text)
		want := naiveScan(patterns, text)
		gotSet := map[Match]bool{}
		for _, m := range got {
			if gotSet[m] {
				t.Fatalf("duplicate match %+v", m)
			}
			gotSet[m] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches, want %d", trial, len(got), len(want))
		}
		for _, m := range want {
			if !gotSet[m] {
				t.Fatalf("trial %d: missing match %+v", trial, m)
			}
		}
	}
}

func TestDictionaryValidation(t *testing.T) {
	if _, err := NewDictionary(nil); err == nil {
		t.Error("empty dictionary accepted")
	}
	if _, err := NewDictionary([]string{""}); err == nil {
		t.Error("empty pattern accepted")
	}
	if _, err := NewDictionary([]string{"aaaaaaaaaaaaaaaaa"}); err == nil {
		t.Error("17-byte pattern accepted")
	}
	if _, err := NewDictionary([]string{"ab", "ab"}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestDictionaryRules(t *testing.T) {
	d, err := NewDictionary([]string{"attack", "atta", "bomb"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 48 {
		t.Fatalf("width = %d", d.Width())
	}
	rs, err := d.Rules()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 {
		t.Fatalf("rules = %d", rs.Len())
	}
	h := d.PrefixLengthHistogram()
	if h[48] != 1 || h[32] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

// TestScanLPMEqualsAhoCorasick is the App 4 equivalence: the LPM-window
// scanner must return the same longest-pattern-at-offset answer as the
// Aho–Corasick reference.
func TestScanLPMEqualsAhoCorasick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	alphabet := "abc"
	for trial := 0; trial < 20; trial++ {
		var patterns []string
		seen := map[string]bool{}
		for len(patterns) < 15 {
			l := 1 + rng.Intn(6)
			var b strings.Builder
			for i := 0; i < l; i++ {
				b.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			if !seen[b.String()] {
				seen[b.String()] = true
				patterns = append(patterns, b.String())
			}
		}
		d, err := NewDictionary(patterns)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := d.Rules()
		if err != nil {
			t.Fatal(err)
		}
		matcher := lpm.NewTrieMatcher(rs)
		text := make([]byte, 400)
		for i := range text {
			text[i] = alphabet[rng.Intn(len(alphabet))]
		}
		want := NewAhoCorasick(patterns).LongestAt(text)
		got := d.ScanLPM(matcher, text)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d offset %d: lpm %d, ac %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestScanLPMTextEnd(t *testing.T) {
	// A pattern longer than the remaining text must not match at the tail.
	d, err := NewDictionary([]string{"abcdef", "abc"})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.Rules()
	if err != nil {
		t.Fatal(err)
	}
	matcher := lpm.NewTrieMatcher(rs)
	got := d.ScanLPM(matcher, []byte("xabc"))
	if got[1] != 1 {
		t.Fatalf("offset 1 = %d, want pattern 1 (abc)", got[1])
	}
	if got[0] != -1 || got[2] != -1 {
		t.Fatalf("spurious matches: %v", got)
	}
}

func TestScanLPMNULPadding(t *testing.T) {
	// A pattern ending in NUL bytes must not be fabricated by window
	// padding at the text end.
	d, err := NewDictionary([]string{"ab\x00"})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.Rules()
	if err != nil {
		t.Fatal(err)
	}
	matcher := lpm.NewTrieMatcher(rs)
	got := d.ScanLPM(matcher, []byte("ab"))
	if got[0] != -1 {
		t.Fatalf("padded window fabricated a match: %v", got)
	}
	got = d.ScanLPM(matcher, []byte("ab\x00"))
	if got[0] != 0 {
		t.Fatalf("real NUL pattern missed: %v", got)
	}
}

func TestSortedLengths(t *testing.T) {
	d, err := NewDictionary([]string{"aaa", "b", "cc", "dd"})
	if err != nil {
		t.Fatal(err)
	}
	got := d.SortedLengths()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("lengths = %v", got)
	}
}

func BenchmarkAhoCorasickScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var patterns []string
	for i := 0; i < 500; i++ {
		l := 2 + rng.Intn(6)
		p := make([]byte, l)
		for j := range p {
			p[j] = byte('a' + rng.Intn(26))
		}
		patterns = append(patterns, string(p))
	}
	a := NewAhoCorasick(patterns)
	text := make([]byte, 64*1024)
	for i := range text {
		text[i] = byte('a' + rng.Intn(26))
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Scan(text)
	}
}
