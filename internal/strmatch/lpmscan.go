package strmatch

import (
	"fmt"
	"sort"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// Dictionary is a set of byte-string patterns compiled for LPM matching.
type Dictionary struct {
	patterns [][]byte
	maxLen   int
	width    int
}

// NewDictionary validates and stores the patterns. Pattern bytes are
// left-aligned into a window of maxLen bytes; the LPM key width is
// 8·maxLen, so patterns may be at most 16 bytes (128-bit keys). Duplicates
// are rejected; empty patterns are rejected.
func NewDictionary(patterns []string) (*Dictionary, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("strmatch: empty dictionary")
	}
	seen := map[string]bool{}
	d := &Dictionary{}
	for _, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("strmatch: empty pattern")
		}
		if len(p) > 16 {
			return nil, fmt.Errorf("strmatch: pattern %q exceeds 16 bytes (128-bit key limit)", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("strmatch: duplicate pattern %q", p)
		}
		seen[p] = true
		d.patterns = append(d.patterns, []byte(p))
		if len(p) > d.maxLen {
			d.maxLen = len(p)
		}
	}
	d.width = 8 * d.maxLen
	return d, nil
}

// Width returns the LPM key width (8 × longest pattern).
func (d *Dictionary) Width() int { return d.width }

// Patterns returns the dictionary contents.
func (d *Dictionary) Patterns() [][]byte { return d.patterns }

// Rules encodes the dictionary as an LPM rule-set: pattern i becomes the
// rule prefix(pattern bytes, left-aligned)/8·len with action i. Longest
// prefix match over a text window then finds the longest pattern starting
// at the window (App 4's CompactDFA-style reduction [9]).
func (d *Dictionary) Rules() (*lpm.RuleSet, error) {
	rules := make([]lpm.Rule, 0, len(d.patterns))
	for i, p := range d.patterns {
		rules = append(rules, lpm.Rule{
			Prefix: d.windowKey(p),
			Len:    8 * len(p),
			Action: uint64(i),
		})
	}
	return lpm.NewRuleSet(d.width, rules)
}

// windowKey packs up to maxLen bytes left-aligned into a width-bit key.
func (d *Dictionary) windowKey(b []byte) keys.Value {
	v := keys.Value{}
	for i := 0; i < d.maxLen; i++ {
		v = v.Shl(8)
		if i < len(b) {
			v = v.Or(keys.FromUint64(uint64(b[i])))
		}
	}
	return v
}

// ScanLPM slides the window over the text, querying the matcher at every
// offset, and returns the longest pattern starting at each offset (−1 when
// none). The matcher must have been built from d.Rules().
func (d *Dictionary) ScanLPM(m lpm.Matcher, text []byte) []int {
	best := make([]int, len(text))
	for i := range text {
		best[i] = -1
		end := i + d.maxLen
		if end > len(text) {
			end = len(text)
		}
		action, ok := m.Lookup(d.windowKey(text[i:end]))
		if !ok {
			continue
		}
		p := int(action)
		// Reject matches that would extend past the end of the text (the
		// zero-padded window could otherwise fabricate them) and — for
		// truncated windows — verify the bytes (zero padding may alias a
		// pattern whose tail is NUL bytes).
		if i+len(d.patterns[p]) > len(text) {
			p = d.demote(text[i:end], len(text)-i)
		}
		best[i] = p
	}
	return best
}

// demote finds the longest dictionary pattern of length ≤ limit that
// prefixes window (a slow path used only near the text end).
func (d *Dictionary) demote(window []byte, limit int) int {
	best := -1
	for i, p := range d.patterns {
		if len(p) > limit || len(p) > len(window) {
			continue
		}
		if string(window[:len(p)]) == string(p) {
			if best == -1 || len(p) > len(d.patterns[best]) {
				best = i
			}
		}
	}
	return best
}

// PrefixLengthHistogram returns rule counts per prefix length for the
// encoded dictionary — the Fig 2 string-matching curve.
func (d *Dictionary) PrefixLengthHistogram() map[int]int {
	h := map[int]int{}
	for _, p := range d.patterns {
		h[8*len(p)]++
	}
	return h
}

// SortedLengths returns the distinct pattern byte-lengths ascending.
func (d *Dictionary) SortedLengths() []int {
	set := map[int]bool{}
	for _, p := range d.patterns {
		set[len(p)] = true
	}
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
