package plane

import (
	"strings"
	"testing"
)

// TestInferenceStringExhaustive fails the moment a new Inference variant is
// added without a name: every value below NumInference must render a
// non-empty, unique, lowercase spelling that round-trips through
// ParseInference. Out-of-range values must fall back to the numbered form
// instead of silently borrowing another plane's name.
func TestInferenceStringExhaustive(t *testing.T) {
	seen := map[string]Inference{}
	for i := Inference(0); i < NumInference; i++ {
		s := i.String()
		if s == "" || strings.HasPrefix(s, "inference(") {
			t.Fatalf("Inference(%d) has no name: %q", i, s)
		}
		if s != strings.ToLower(s) {
			t.Errorf("Inference(%d) name %q is not lowercase", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Inference(%d) and Inference(%d) share the name %q", prev, i, s)
		}
		seen[s] = i
		got, err := ParseInference(s)
		if err != nil || got != i {
			t.Errorf("ParseInference(%q) = (%v, %v), want (%v, nil)", s, got, err, i)
		}
	}
	if got := NumInference.String(); got != "inference(3)" {
		t.Errorf("out-of-range String() = %q, want numbered fallback", got)
	}
	if _, err := ParseInference("nonsense"); err == nil {
		t.Error("ParseInference accepted an unknown spelling")
	}
}

// TestStackConfigString covers every StackConfig the matrix enumerates plus
// the derived Combo spellings: one name per cell, no collisions, and the
// cached suffix composes rather than replaces.
func TestStackConfigString(t *testing.T) {
	want := map[string]bool{
		"compiled":         true,
		"reference":        true,
		"quantized":        true,
		"compiled+lcache":  true,
		"reference+lcache": true,
		"quantized+lcache": true,
	}
	got := map[string]bool{}
	for _, st := range Matrix() {
		s := st.String()
		if got[s] {
			t.Errorf("duplicate StackConfig name %q", s)
		}
		got[s] = true
		if st.Cached && !strings.HasSuffix(s, "+lcache") {
			t.Errorf("cached config %+v renders %q without +lcache suffix", st, s)
		}
		if !st.Cached && strings.Contains(s, "+lcache") {
			t.Errorf("uncached config %+v renders %q with +lcache suffix", st, s)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Matrix() renders %d names %v, want %d", len(got), got, len(want))
	}
	for s := range want {
		if !got[s] {
			t.Errorf("missing StackConfig name %q", s)
		}
	}

	combos := Combos()
	if len(combos) != 2*len(Matrix()) {
		t.Fatalf("Combos() has %d cells, want %d", len(combos), 2*len(Matrix()))
	}
	comboNames := map[string]bool{}
	for _, cb := range combos {
		s := cb.String()
		if comboNames[s] {
			t.Errorf("duplicate Combo name %q", s)
		}
		comboNames[s] = true
		topo, rest, ok := strings.Cut(s, "/")
		if !ok || topo != cb.Topology.String() || rest != cb.Stack.String() {
			t.Errorf("Combo name %q does not compose topology/stack", s)
		}
	}
}
