// Package plane names the composable lookup-plane stack (DESIGN.md §14).
//
// A NeuroLPM lookup is a pipeline of planes: an optional result-cache probe
// (internal/lcache), an inference plane predicting the range index (the
// reference RQRMI model, its compiled float32 flat form, or the int32
// fixed-point quantized form, internal/rqrmi), a bounded
// secondary search, and — for bucketized engines — one DRAM bucket fetch.
// Earlier PRs grew one hand-wired method per plane combination; this package
// collapses the combination space into a value, StackConfig, that the single
// stack executor in internal/core branches on. The executors are written so
// the exported per-combination entry points (Lookup, LookupBatch,
// LookupCached, ...) are thin constant-config wrappers that compile down to
// the same hot paths as before — zero-overhead is a hard requirement, guarded
// by TestCacheOffBatchOverheadGuard and `lpmbench -guard`.
//
// The full test matrix — {single, sharded} × {compiled, reference,
// quantized} × {cached, uncached} — is enumerated by Combos; internal/planetest runs one
// differential fuzz + metamorphic suite over it, so every combination (and
// every future plane) gets trie-oracle coverage without its own harness.
package plane

import (
	"fmt"

	"neurolpm/internal/telemetry"
)

// Inference selects the inference plane of the stack: which arithmetic
// predicts the range index before the bounded secondary search.
type Inference uint8

const (
	// Compiled runs the devirtualized flat-storage RQRMI plane
	// (rqrmi.Compiled) — the float32 production hot path. Bit-identical
	// to Reference by construction (rqrmi.FuzzCompiledVsModel).
	Compiled Inference = iota
	// Reference runs the pointer-walking rqrmi.Model arithmetic — the
	// plane the error-bound analysis is stated against.
	Reference
	// Quantized runs the int32 fixed-point shift-add plane
	// (rqrmi.Quantized): no float ops, half the coefficient bank. Its
	// error bounds are recomputed in the same integer arithmetic
	// (bound-inclusion, not bit-identity — DESIGN.md §15), so the bounded
	// search still lands on exactly the true index for every key
	// (rqrmi.FuzzQuantizedVsModel).
	Quantized

	// NumInference bounds the enum; every variant below it must have an
	// entry in inferenceNames (TestInferenceStringExhaustive).
	NumInference
)

var inferenceNames = [NumInference]string{
	Compiled:  "compiled",
	Reference: "reference",
	Quantized: "quantized",
}

// String returns the stable spelling used in test names, /trace output and
// experiment tables.
func (i Inference) String() string {
	if i < NumInference && inferenceNames[i] != "" {
		return inferenceNames[i]
	}
	return fmt.Sprintf("inference(%d)", uint8(i))
}

// ParseInference maps a stable spelling ("compiled", "reference",
// "quantized") back to its variant — the inverse of String, used by
// command-line flags.
func ParseInference(s string) (Inference, error) {
	for i := Inference(0); i < NumInference; i++ {
		if inferenceNames[i] == s {
			return i, nil
		}
	}
	return 0, fmt.Errorf("plane: unknown inference plane %q (want one of %v)", s, inferenceNames)
}

// StackConfig selects one lookup-plane stack. The zero value is the
// production default: compiled inference, no result-cache probe.
type StackConfig struct {
	// Inference picks the inference plane.
	Inference Inference
	// Cached prepends the result-cache probe plane (internal/lcache).
	// The probe degrades to a no-op on a nil cache, so Cached=true with
	// the plane disabled still answers correctly — it just never hits.
	Cached bool
}

// String returns e.g. "compiled" or "reference+lcache".
func (c StackConfig) String() string {
	s := c.Inference.String()
	if c.Cached {
		s += "+lcache"
	}
	return s
}

// Topology says whether the stack runs on one engine or fans out across the
// sharded router.
type Topology uint8

const (
	Single Topology = iota
	Sharded
)

// String returns the stable spelling used in test names.
func (t Topology) String() string {
	if t == Sharded {
		return "sharded"
	}
	return "single"
}

// Combo is one cell of the full 2×3×2 matrix.
type Combo struct {
	Topology Topology
	Stack    StackConfig
}

// String returns e.g. "sharded/compiled+lcache".
func (c Combo) String() string { return c.Topology.String() + "/" + c.Stack.String() }

// Matrix enumerates the six stack configurations: every inference plane,
// uncached then cached.
func Matrix() []StackConfig {
	out := make([]StackConfig, 0, 2*NumInference)
	for _, cached := range []bool{false, true} {
		for i := Inference(0); i < NumInference; i++ {
			out = append(out, StackConfig{Inference: i, Cached: cached})
		}
	}
	return out
}

// Combos enumerates all twelve {single,sharded}×{compiled,reference,
// quantized}×{cached,uncached} combinations.
func Combos() []Combo {
	var out []Combo
	for _, topo := range []Topology{Single, Sharded} {
		for _, st := range Matrix() {
			out = append(out, Combo{Topology: topo, Stack: st})
		}
	}
	return out
}

// The stack's stage identifiers, in pipeline order. These alias the
// flight-recorder stage slots (internal/telemetry): the recorder's per-stage
// stamps are defined to be the stack's plane boundaries, so /trace and the
// flight ring name exactly the planes a StackConfig composes.
const (
	StageProbe     = telemetry.StageProbe     // result-cache probe
	StageInference = telemetry.StageInference // RQRMI prediction
	StageSearch    = telemetry.StageSearch    // bounded secondary search
	StageFetch     = telemetry.StageFetch     // DRAM bucket fetch + scan
)
