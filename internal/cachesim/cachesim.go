// Package cachesim provides the set-associative LRU cache and DRAM-traffic
// accounting used to compare LPM engines at the algorithmic level, exactly
// per the paper's methodology (§10.2): each algorithm routes the reads of
// its DRAM-resident structures through the cache, the miss rate is measured
// per query, and the bandwidth per miss is max(access size, line size).
package cachesim

import "fmt"

// Mem abstracts the off-chip memory path. Algorithms call Read for every
// access to a DRAM-resident structure.
type Mem interface {
	// Read records an access of size bytes at byte address addr.
	Read(addr uint64, size int)
}

// Stats accumulates traffic counters.
type Stats struct {
	Accesses uint64 // Read calls
	Lines    uint64 // cache lines touched
	Misses   uint64 // line misses
	Bytes    uint64 // DRAM bytes fetched (max(access, line) per miss)
}

// MissRate returns misses per access (NaN-free: zero when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Config describes a cache. The paper's evaluation uses a 2-way associative
// LRU cache with 32-byte lines.
type Config struct {
	SizeBytes int // total capacity; must be a positive multiple of LineSize*Ways
	LineSize  int
	Ways      int
}

// DefaultConfig returns the evaluation cache: 2-way LRU, 32-byte lines.
func DefaultConfig(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, LineSize: 32, Ways: 2}
}

// Cache is a set-associative LRU cache with traffic accounting.
type Cache struct {
	cfg   Config
	sets  uint64
	tags  []uint64 // sets × ways; tag+1 (0 = invalid)
	ages  []uint64 // LRU stamps
	clock uint64
	stats Stats
}

// New builds a cache. It returns an error when the geometry is inconsistent.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d must be a positive power of two", cfg.LineSize)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: ways %d must be positive", cfg.Ways)
	}
	if cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cachesim: size %d must be positive", cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	if sets <= 0 {
		return nil, fmt.Errorf("cachesim: size %dB too small for %d-way %dB lines",
			cfg.SizeBytes, cfg.Ways, cfg.LineSize)
	}
	c := &Cache{
		cfg:  cfg,
		sets: uint64(sets),
		tags: make([]uint64, sets*cfg.Ways),
		ages: make([]uint64, sets*cfg.Ways),
	}
	return c, nil
}

// Read implements Mem: it touches every line the access spans, fetching
// missing lines from DRAM. Per the paper, each miss costs
// max(access size, line size) bytes of DRAM bandwidth — but an access that
// spans several lines pays per missing line, never less than its own size
// in total when everything misses.
func (c *Cache) Read(addr uint64, size int) {
	if size <= 0 {
		return
	}
	c.stats.Accesses++
	line := addr / uint64(c.cfg.LineSize)
	last := (addr + uint64(size) - 1) / uint64(c.cfg.LineSize)
	for ; line <= last; line++ {
		c.stats.Lines++
		if !c.touch(line) {
			c.stats.Misses++
			c.stats.Bytes += uint64(c.cfg.LineSize)
		}
	}
}

// touch looks up (and on miss, fills) the line, returning true on hit.
func (c *Cache) touch(line uint64) bool {
	set := line % c.sets
	tag := line + 1 // +1 so the zero value means invalid
	base := int(set) * c.cfg.Ways
	c.clock++
	victim, victimAge := base, c.ages[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.ages[i] = c.clock
			return true
		}
		if c.ages[i] < victimAge {
			victim, victimAge = i, c.ages[i]
		}
	}
	c.tags[victim] = tag
	c.ages[victim] = c.clock
	return false
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears counters but keeps cache contents (for warmup phases).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates all lines and clears the statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.ages[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Uncached counts DRAM traffic with no cache in front: every access is a
// miss that transfers max(access size, minBurst) bytes. It models the
// paper's cache-less worst-case analyses.
type Uncached struct {
	MinBurst int // minimum DRAM transfer granularity; 0 means exact sizes
	stats    Stats
}

// Read implements Mem.
func (u *Uncached) Read(addr uint64, size int) {
	if size <= 0 {
		return
	}
	u.stats.Accesses++
	u.stats.Lines++
	u.stats.Misses++
	b := size
	if b < u.MinBurst {
		b = u.MinBurst
	}
	u.stats.Bytes += uint64(b)
}

// Stats returns the accumulated counters.
func (u *Uncached) Stats() Stats { return u.stats }

// ResetStats clears the counters.
func (u *Uncached) ResetStats() { u.stats = Stats{} }

// Null discards accesses (for SRAM-only runs where off-chip traffic is
// impossible by construction).
type Null struct{}

// Read implements Mem.
func (Null) Read(uint64, int) {}
