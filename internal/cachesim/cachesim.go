// Package cachesim provides the set-associative LRU cache and DRAM-traffic
// accounting used to compare LPM engines at the algorithmic level, exactly
// per the paper's methodology (§10.2): each algorithm routes the reads of
// its DRAM-resident structures through the cache, the miss rate is measured
// per query, and the bandwidth per miss is max(access size, line size).
package cachesim

import (
	"fmt"

	"neurolpm/internal/telemetry"
)

// Mem abstracts the off-chip memory path. Algorithms call Read for every
// access to a DRAM-resident structure.
type Mem interface {
	// Read records an access of size bytes at byte address addr.
	Read(addr uint64, size int)
}

// Stats is a point-in-time view of traffic counters. It is a plain value;
// the live accounting behind it is a tally of lock-free telemetry counters
// shared with the /metrics surface (see tally), not bespoke struct fields.
type Stats struct {
	Accesses uint64 // Read calls
	Lines    uint64 // cache lines touched
	Misses   uint64 // line misses
	Bytes    uint64 // DRAM bytes fetched (max(access, line) per miss)
}

// tally is the single accounting implementation every Mem uses: four
// telemetry counters. Because the counters are sharded atomics, any Mem
// built on a tally has thread-safe accounting for free, and Register
// exposes the same counters through a telemetry registry — there is no
// second, duplicated set of fields to keep in sync.
type tally struct {
	accesses, lines, misses, bytes *telemetry.Counter
}

func newTally() tally {
	return tally{
		accesses: telemetry.NewCounter(),
		lines:    telemetry.NewCounter(),
		misses:   telemetry.NewCounter(),
		bytes:    telemetry.NewCounter(),
	}
}

// lazyInit makes the zero value of Uncached usable (callers construct it
// with &cachesim.Uncached{}).
func (t *tally) lazyInit() {
	if t.accesses == nil {
		*t = newTally()
	}
}

// Stats snapshots the counters into the reporting value.
func (t *tally) Stats() Stats {
	t.lazyInit()
	return Stats{
		Accesses: t.accesses.Load(),
		Lines:    t.lines.Load(),
		Misses:   t.misses.Load(),
		Bytes:    t.bytes.Load(),
	}
}

// reset zeroes the counters.
func (t *tally) reset() {
	t.lazyInit()
	t.accesses.Reset()
	t.lines.Reset()
	t.misses.Reset()
	t.bytes.Reset()
}

// Register exposes the tally's counters through reg under
// <prefix>_accesses_total, _lines_total, _misses_total and _bytes_total,
// plus a <prefix>_miss_rate gauge.
func (t *tally) Register(reg *telemetry.Registry, prefix string) {
	t.lazyInit()
	reg.AttachCounter(prefix+"_accesses_total", "DRAM-path Read calls", t.accesses)
	reg.AttachCounter(prefix+"_lines_total", "Cache lines touched", t.lines)
	reg.AttachCounter(prefix+"_misses_total", "Cache line misses", t.misses)
	reg.AttachCounter(prefix+"_bytes_total", "DRAM bytes fetched", t.bytes)
	reg.Gauge(prefix+"_miss_rate", "Misses per access", func() float64 {
		return t.Stats().MissRate()
	})
}

// MissRate returns misses per access (NaN-free: zero when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Config describes a cache. The paper's evaluation uses a 2-way associative
// LRU cache with 32-byte lines.
type Config struct {
	SizeBytes int // total capacity; must be a positive multiple of LineSize*Ways
	LineSize  int
	Ways      int
}

// DefaultConfig returns the evaluation cache: 2-way LRU, 32-byte lines.
func DefaultConfig(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, LineSize: 32, Ways: 2}
}

// Cache is a set-associative LRU cache with traffic accounting. The LRU
// state itself is not thread-safe; accounting is (it lives in the embedded
// tally's atomic counters).
type Cache struct {
	cfg   Config
	sets  uint64
	tags  []uint64 // sets × ways; tag+1 (0 = invalid)
	ages  []uint64 // LRU stamps
	clock uint64
	tally
}

// New builds a cache. It returns an error when the geometry is inconsistent.
func New(cfg Config) (*Cache, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d must be a positive power of two", cfg.LineSize)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: ways %d must be positive", cfg.Ways)
	}
	if cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cachesim: size %d must be positive", cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	if sets <= 0 {
		return nil, fmt.Errorf("cachesim: size %dB too small for %d-way %dB lines",
			cfg.SizeBytes, cfg.Ways, cfg.LineSize)
	}
	c := &Cache{
		cfg:   cfg,
		sets:  uint64(sets),
		tags:  make([]uint64, sets*cfg.Ways),
		ages:  make([]uint64, sets*cfg.Ways),
		tally: newTally(),
	}
	return c, nil
}

// Read implements Mem: it touches every line the access spans, fetching
// missing lines from DRAM. Per the paper, each miss costs
// max(access size, line size) bytes of DRAM bandwidth — but an access that
// spans several lines pays per missing line, never less than its own size
// in total when everything misses.
func (c *Cache) Read(addr uint64, size int) {
	if size <= 0 {
		return
	}
	c.accesses.Inc()
	line := addr / uint64(c.cfg.LineSize)
	last := (addr + uint64(size) - 1) / uint64(c.cfg.LineSize)
	for ; line <= last; line++ {
		c.lines.Inc()
		if !c.touch(line) {
			c.misses.Inc()
			c.bytes.Add(uint64(c.cfg.LineSize))
		}
	}
}

// touch looks up (and on miss, fills) the line, returning true on hit.
func (c *Cache) touch(line uint64) bool {
	set := line % c.sets
	tag := line + 1 // +1 so the zero value means invalid
	base := int(set) * c.cfg.Ways
	c.clock++
	victim, victimAge := base, c.ages[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.ages[i] = c.clock
			return true
		}
		if c.ages[i] < victimAge {
			victim, victimAge = i, c.ages[i]
		}
	}
	c.tags[victim] = tag
	c.ages[victim] = c.clock
	return false
}

// ResetStats clears counters but keeps cache contents (for warmup phases).
func (c *Cache) ResetStats() { c.reset() }

// Flush invalidates all lines and clears the statistics.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.ages[i] = 0
	}
	c.clock = 0
	c.reset()
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Uncached counts DRAM traffic with no cache in front: every access is a
// miss that transfers max(access size, minBurst) bytes. It models the
// paper's cache-less worst-case analyses. Accounting is thread-safe once
// initialized (first Read or Stats call); initialize before sharing across
// goroutines by calling Stats() once, as cmd/lpmserve does.
type Uncached struct {
	MinBurst int // minimum DRAM transfer granularity; 0 means exact sizes
	tally
}

// Read implements Mem.
func (u *Uncached) Read(addr uint64, size int) {
	if size <= 0 {
		return
	}
	u.lazyInit()
	u.accesses.Inc()
	u.lines.Inc()
	u.misses.Inc()
	b := size
	if b < u.MinBurst {
		b = u.MinBurst
	}
	u.bytes.Add(uint64(b))
}

// ResetStats clears the counters.
func (u *Uncached) ResetStats() { u.reset() }

// Null discards accesses (for SRAM-only runs where off-chip traffic is
// impossible by construction).
type Null struct{}

// Read implements Mem.
func (Null) Read(uint64, int) {}
