package cachesim

import (
	"math/rand"
	"testing"
)

func mustCache(t testing.TB, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineSize: 32, Ways: 2},
		{SizeBytes: 1024, LineSize: 0, Ways: 2},
		{SizeBytes: 1024, LineSize: 33, Ways: 2}, // not a power of two
		{SizeBytes: 1024, LineSize: 32, Ways: 0},
		{SizeBytes: 16, LineSize: 32, Ways: 2}, // smaller than one set
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, DefaultConfig(1024))
	c.Read(0, 4)
	if s := c.Stats(); s.Misses != 1 || s.Accesses != 1 || s.Bytes != 32 {
		t.Fatalf("after cold read: %+v", s)
	}
	c.Read(0, 4)
	if s := c.Stats(); s.Misses != 1 || s.Accesses != 2 {
		t.Fatalf("after warm read: %+v", s)
	}
	// Same line, different offset: still a hit.
	c.Read(28, 4)
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("same-line read missed: %+v", s)
	}
}

func TestSpanningAccess(t *testing.T) {
	c := mustCache(t, DefaultConfig(1024))
	c.Read(30, 4) // spans lines 0 and 1
	if s := c.Stats(); s.Lines != 2 || s.Misses != 2 || s.Bytes != 64 {
		t.Fatalf("spanning read: %+v", s)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2 ways, 2 sets: lines with the same parity collide.
	c := mustCache(t, Config{SizeBytes: 128, LineSize: 32, Ways: 2})
	lineBytes := uint64(32)
	// Fill set 0 with lines 0 and 2.
	c.Read(0*lineBytes, 1)
	c.Read(2*lineBytes, 1)
	// Touch line 0 so line 2 is LRU.
	c.Read(0*lineBytes, 1)
	// Insert line 4 (same set): should evict line 2.
	c.Read(4*lineBytes, 1)
	base := c.Stats().Misses
	c.Read(0*lineBytes, 1) // hit
	if c.Stats().Misses != base {
		t.Fatal("line 0 was evicted, LRU broken")
	}
	c.Read(2*lineBytes, 1) // miss (was evicted)
	if c.Stats().Misses != base+1 {
		t.Fatal("line 2 should have been evicted")
	}
}

func TestZeroSizeIgnored(t *testing.T) {
	c := mustCache(t, DefaultConfig(1024))
	c.Read(0, 0)
	c.Read(0, -4)
	if s := c.Stats(); s.Accesses != 0 {
		t.Fatalf("zero-size access counted: %+v", s)
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set smaller than the cache must converge to zero misses.
	c := mustCache(t, DefaultConfig(64*1024))
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 512)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(32 * 1024))
	}
	for _, a := range addrs { // warmup
		c.Read(a, 4)
	}
	c.ResetStats()
	for round := 0; round < 10; round++ {
		for _, a := range addrs {
			c.Read(a, 4)
		}
	}
	if s := c.Stats(); s.Misses != 0 {
		t.Fatalf("warm working set missed %d times", s.Misses)
	}
}

func TestWorkingSetThrashes(t *testing.T) {
	// A working set much larger than the cache misses nearly always under a
	// sequential sweep (LRU worst case).
	c := mustCache(t, DefaultConfig(1024))
	for round := 0; round < 4; round++ {
		for a := uint64(0); a < 64*1024; a += 32 {
			c.Read(a, 4)
		}
	}
	s := c.Stats()
	if s.MissRate() < 0.99 {
		t.Fatalf("sweep miss rate %.3f, want ~1", s.MissRate())
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t, DefaultConfig(1024))
	c.Read(0, 4)
	c.Flush()
	if s := c.Stats(); s.Accesses != 0 {
		t.Fatalf("stats after flush: %+v", s)
	}
	c.Read(0, 4)
	if s := c.Stats(); s.Misses != 1 {
		t.Fatal("flush did not invalidate lines")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := mustCache(t, DefaultConfig(1024))
	c.Read(0, 4)
	c.ResetStats()
	c.Read(0, 4)
	if s := c.Stats(); s.Misses != 0 || s.Accesses != 1 {
		t.Fatalf("warm line lost across ResetStats: %+v", s)
	}
}

func TestMissRate(t *testing.T) {
	if r := (Stats{}).MissRate(); r != 0 {
		t.Fatalf("idle miss rate %g", r)
	}
	if r := (Stats{Accesses: 4, Misses: 1}).MissRate(); r != 0.25 {
		t.Fatalf("miss rate %g", r)
	}
}

func TestUncached(t *testing.T) {
	u := &Uncached{MinBurst: 8}
	u.Read(0, 4)
	u.Read(100, 64)
	s := u.Stats()
	if s.Accesses != 2 || s.Misses != 2 {
		t.Fatalf("uncached stats: %+v", s)
	}
	if s.Bytes != 8+64 {
		t.Fatalf("uncached bytes = %d", s.Bytes)
	}
	u.ResetStats()
	if u.Stats().Accesses != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestNullMem(t *testing.T) {
	var m Mem = Null{}
	m.Read(0, 1024) // must not panic or record anything
}

func TestCacheImplementsMem(t *testing.T) {
	var _ Mem = (*Cache)(nil)
	var _ Mem = (*Uncached)(nil)
}

func BenchmarkCacheRead(b *testing.B) {
	c := mustCache(b, DefaultConfig(2*1024*1024))
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(16 * 1024 * 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(addrs[i&4095], 4)
	}
}
