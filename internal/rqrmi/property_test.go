package rqrmi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"neurolpm/internal/keys"
)

// TestPropertyLookupExact: for random index layouts and random model
// configurations, every lookup (boundary keys and random keys) must resolve
// to Find's answer — training quality may vary, correctness may not.
func TestPropertyLookupExact(t *testing.T) {
	prop := func(seed int64, widthSel, layoutSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		widths := []int{12, 16, 24, 32, 64}
		width := widths[int(widthSel)%len(widths)]
		var ix *sliceIndex
		switch layoutSel % 3 {
		case 0:
			ix = uniformIndex(width, 100+rng.Intn(400))
		case 1:
			ix = skewedIndex(rng, width, 100+rng.Intn(400))
		default:
			// Adversarial: geometric gaps (heavy head, sparse tail).
			dom := keys.NewDomain(width)
			lows := []keys.Value{{}}
			u := 0.0
			for u < 0.9 {
				u += math.Pow(2, -float64(len(lows)%20)) * 0.01
				lows = append(lows, dom.FromUnit(u))
			}
			ix = &sliceIndex{lows: dedupe(lows)}
		}
		cfg := quickConfig()
		cfg.Seed = seed
		m, _, err := Train(ix, width, cfg)
		if err != nil {
			t.Logf("train: %v", err)
			return false
		}
		dom := keys.NewDomain(width)
		check := func(k keys.Value) bool {
			idx, _ := m.Lookup(ix, k)
			return idx == Find(ix, k)
		}
		for i := 0; i < ix.Len(); i++ {
			if !check(ix.Low(i)) {
				return false
			}
			if !ix.Low(i).IsZero() && !check(ix.Low(i).Dec()) {
				return false
			}
		}
		for q := 0; q < 300; q++ {
			if !check(dom.FromUnit(rng.Float64())) {
				return false
			}
		}
		return check(dom.Max())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySerializeRoundTrip: serialization is lossless for any trained
// model — identical predictions everywhere.
func TestPropertySerializeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := skewedIndex(rng, 20, 150)
		cfg := quickConfig()
		cfg.Seed = seed
		m, _, err := Train(ix, 20, cfg)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadModel(&buf)
		if err != nil {
			return false
		}
		for q := 0; q < 200; q++ {
			k := keys.FromUint64(uint64(rng.Intn(1 << 20)))
			if m.Predict(k) != got.Predict(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLUTMatchesMLP: compilation is semantics-preserving for
// arbitrary weights, not just trained ones.
func TestPropertyLUTMatchesMLP(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMLP(0, 1, rng)
		for k := 0; k < hiddenUnits; k++ {
			m.w1[k] = rng.NormFloat64() * 5
			m.b1[k] = rng.NormFloat64() * 2
			m.w2[k] = rng.NormFloat64() * 2
		}
		m.b2 = rng.NormFloat64()
		lut := m.compile()
		if lut.Segments() > MaxSegments {
			return false
		}
		for q := 0; q < 300; q++ {
			u := rng.Float64()*1.4 - 0.2 // include out-of-range inputs
			want := m.forward(u, nil)
			got := float64(lut.Eval(float32(u)))
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEvalMonotonePerSegment: within one segment, Eval is monotone
// in u — the assumption the analytical error-bound machinery rests on.
func TestPropertyEvalMonotonePerSegment(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := newMLP(0, 1, rng)
		for k := 0; k < hiddenUnits; k++ {
			m.w1[k] = rng.NormFloat64() * 3
			m.b1[k] = rng.NormFloat64()
			m.w2[k] = rng.NormFloat64()
		}
		lut := m.compile()
		for s := 0; s < lut.Segments(); s++ {
			lo, hi := float32(-0.5), float32(1.5)
			if s > 0 {
				lo = lut.Knots[s-1]
			}
			if s < len(lut.Knots) {
				hi = lut.Knots[s]
			}
			if !(lo < hi) {
				continue
			}
			ascending := lut.A[s] >= 0
			prev := lut.Eval(lo + (hi-lo)*1e-6)
			for step := 1; step <= 20; step++ {
				u := lo + (hi-lo)*float32(step)/20
				v := lut.Eval(u)
				if ascending && v < prev || !ascending && v > prev {
					return false
				}
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
