package rqrmi

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
)

// quantPlanes trains one model per width and compiles both planes. The
// widths exercise every unit() branch: shl (≤30), shr on one limb (≤64),
// the split Hi/Lo shift (64<width<94), and the Hi-only shift (≥94).
func quantPlanes(t *testing.T, widths []int) []fuzzPlane {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var out []fuzzPlane
	for _, w := range widths {
		n := 200
		if w < 10 {
			n = 40
		}
		ix := skewedIndex(rng, w, n)
		m, _, err := Train(ix, w, quickConfig())
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		c, err := Compile(m, ix)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		q, err := CompileQuantized(m, ix)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		out = append(out, fuzzPlane{width: w, ix: ix, m: m, c: c, q: q})
	}
	return out
}

// checkQuantizedKey asserts the bound-inclusion contract for one key: the
// stored quantized error bound covers the quantized prediction, and the
// bounded search therefore returns exactly the true index.
func checkQuantizedKey(t *testing.T, p fuzzPlane, k keys.Value) {
	t.Helper()
	truth := Find(p.ix, k)
	pq := p.q.Predict(k)
	if d := pq.Index - truth; d > pq.Err || -d > pq.Err {
		t.Fatalf("width %d key %v: quantized index %d err %d does not cover truth %d",
			p.width, k, pq.Index, pq.Err, truth)
	}
	if idx, _ := p.q.Lookup(k); idx != truth {
		t.Fatalf("width %d key %v: quantized Lookup %d, want %d", p.width, k, idx, truth)
	}
}

// TestQuantizedBoundInclusion sweeps every index boundary ±1 plus random
// keys on models covering all unit() width branches. This is the
// deterministic counterpart of FuzzQuantizedVsModel: the true index only
// changes at entry lower bounds, so boundary keys are where a stale or
// miscomputed bound would surface first.
func TestQuantizedBoundInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range quantPlanes(t, []int{15, 16, 30, 32, 64, 80, 128}) {
		dom := keys.NewDomain(p.width)
		checkQuantizedKey(t, p, keys.Value{})
		checkQuantizedKey(t, p, dom.Max())
		for i := 0; i < p.ix.Len(); i++ {
			low := p.ix.Low(i)
			if !low.IsZero() {
				checkQuantizedKey(t, p, low.Dec())
			}
			checkQuantizedKey(t, p, low)
			if low.Less(dom.Max()) {
				checkQuantizedKey(t, p, low.Inc())
			}
		}
		for i := 0; i < 500; i++ {
			k := keys.FromParts(rng.Uint64(), rng.Uint64()).And(dom.Max())
			checkQuantizedKey(t, p, k)
		}
		// Out-of-domain keys must saturate like the reference's ≥1 clamp,
		// not wrap: still bound-covered, still found.
		if p.width < 64 {
			checkQuantizedKey(t, p, keys.FromUint64(^uint64(0)))
			checkQuantizedKey(t, p, keys.FromParts(1, 0))
		}
	}
}

// TestQuantizedExhaustiveTinyDomain verifies the analysis is exact, not
// just safe, on a domain small enough to enumerate: every single key of an
// 8-bit model must be bound-covered, and the stored per-plane MaxErr must
// be attained (the bound is the maximum, so an unattained bound means the
// analysis over-approximated — legal for safety but a regression for probe
// counts, and a symptom of analysis/hot-path divergence).
func TestQuantizedExhaustiveTinyDomain(t *testing.T) {
	for _, p := range quantPlanes(t, []int{8}) {
		worst := 0
		for v := uint64(0); v < 1<<8; v++ {
			k := keys.FromUint64(v)
			checkQuantizedKey(t, p, k)
			pq := p.q.Predict(k)
			d := pq.Index - Find(p.ix, k)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst != p.q.MaxErr() {
			t.Errorf("width 8: observed worst error %d, stored MaxErr %d (bound not tight)",
				worst, p.q.MaxErr())
		}
	}
}

// TestQuantizedBatchMatchesSingle pins the software-pipelined batch arm to
// the single-key arm bit-for-bit, across block-size boundaries.
func TestQuantizedBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, p := range quantPlanes(t, []int{32, 128}) {
		dom := keys.NewDomain(p.width)
		for _, n := range []int{1, predictBlock - 1, predictBlock, predictBlock + 1, 3*predictBlock + 5} {
			ks := make([]keys.Value, n)
			for i := range ks {
				ks[i] = keys.FromParts(rng.Uint64(), rng.Uint64()).And(dom.Max())
			}
			out := make([]Prediction, n)
			p.q.PredictBatch(ks, out)
			for i, k := range ks {
				if want := p.q.Predict(k); out[i] != want {
					t.Fatalf("width %d batch[%d] (n=%d) = %+v, want %+v", p.width, i, n, out[i], want)
				}
			}
		}
	}
}

// TestQuantizedBankShrink pins the tentpole's storage claim: the int16
// coefficient bank must be at most 0.6× the float32 bank (E27 reports the
// measured ratio at engine scale; this is the unit-level floor).
func TestQuantizedBankShrink(t *testing.T) {
	for _, p := range quantPlanes(t, []int{32}) {
		qb, cb := p.q.BankBytes(), p.c.BankBytes()
		if qb <= 0 || cb <= 0 {
			t.Fatalf("degenerate bank sizes: quantized %d, compiled %d", qb, cb)
		}
		if ratio := float64(qb) / float64(cb); ratio > 0.6 {
			t.Errorf("quantized bank %dB / compiled bank %dB = %.3f, want ≤ 0.6", qb, cb, ratio)
		}
		if p.q.SizeBytes() <= p.q.BankBytes() {
			t.Errorf("SizeBytes %d must include the bounds copy beyond the bank %d",
				p.q.SizeBytes(), p.q.BankBytes())
		}
	}
}

// TestCompileQuantizedRejects mirrors Compile's validation: structurally
// invalid models and index-length mismatches must fail loudly — a silent
// mismatch would void every stored bound.
func TestCompileQuantizedRejects(t *testing.T) {
	ix := uniformIndex(16, 32)
	m, _, err := Train(ix, 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileQuantized(m, uniformIndex(16, 16)); err == nil {
		t.Error("CompileQuantized accepted an index shorter than the model's N")
	}
	bad := &Model{Width: 16, N: 32}
	if _, err := CompileQuantized(bad, ix); err == nil {
		t.Error("CompileQuantized accepted a model with no stages")
	}
}
