package rqrmi

import (
	"math"
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
)

// compileFor trains a quick model over ix and compiles it, failing the test
// on any error.
func compileFor(t testing.TB, ix Index, width int) (*Model, *Compiled) {
	t.Helper()
	m, _, err := Train(ix, width, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(m, ix)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// probeKeys yields the adversarial key set for equivalence checks: every
// index boundary, its neighbours, and a spread of random keys.
func probeKeys(rng *rand.Rand, ix Index, width int, extra int) []keys.Value {
	dom := keys.NewDomain(width)
	var ks []keys.Value
	for i := 0; i < ix.Len(); i++ {
		b := ix.Low(i)
		ks = append(ks, b)
		if !b.IsZero() {
			ks = append(ks, b.Dec())
		}
		if b.Less(dom.Max()) {
			ks = append(ks, b.Inc())
		}
	}
	for i := 0; i < extra; i++ {
		ks = append(ks, dom.FromUnit(rng.Float64()))
	}
	ks = append(ks, keys.Value{}, dom.Max())
	return ks
}

// assertSame checks Predict, Search and Lookup agree bit-for-bit between the
// model and its compiled plane on key k.
func assertSame(t *testing.T, m *Model, c *Compiled, ix Index, k keys.Value) {
	t.Helper()
	pm := m.Predict(k)
	pc := c.Predict(k)
	if pm != pc {
		t.Fatalf("Predict(%v): model %+v, compiled %+v", k, pm, pc)
	}
	im, probesM := m.Search(ix, k, pm)
	ic, probesC := c.Search(k, pc)
	if im != ic || probesM != probesC {
		t.Fatalf("Search(%v): model (%d,%d), compiled (%d,%d)", k, im, probesM, ic, probesC)
	}
}

func TestCompiledMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name  string
		width int
		ix    Index
	}{
		{"uniform-16", 16, uniformIndex(16, 64)},
		{"uniform-32", 32, uniformIndex(32, 2000)},
		{"skewed-32", 32, skewedIndex(rng, 32, 800)},
		{"uniform-64", 64, uniformIndex(64, 500)},
		{"uniform-128", 128, uniformIndex(128, 300)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, c := compileFor(t, tc.ix, tc.width)
			for _, k := range probeKeys(rng, tc.ix, tc.width, 2000) {
				assertSame(t, m, c, tc.ix, k)
			}
		})
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ix := skewedIndex(rng, 32, 600)
	m, c := compileFor(t, ix, 32)
	ks := probeKeys(rng, ix, 32, 1000)
	// Exercise ragged tails: every batch length from 0 to a few blocks.
	for n := 0; n <= 3*predictBlock+1 && n <= len(ks); n++ {
		out := make([]Prediction, n)
		c.PredictBatch(ks[:n], out)
		for i := 0; i < n; i++ {
			if want := m.Predict(ks[i]); out[i] != want {
				t.Fatalf("PredictBatch[%d/%d] = %+v, want %+v", i, n, out[i], want)
			}
		}
	}
	out := make([]Prediction, len(ks))
	c.PredictBatch(ks, out)
	for i, k := range ks {
		if want := m.Predict(k); out[i] != want {
			t.Fatalf("PredictBatch[%d] = %+v, want %+v", i, out[i], want)
		}
	}
}

// TestCompiledSearchOutOfDomain checks the width ≤ 64 one-limb fast path
// still agrees with the reference 128-bit compare when a caller passes a key
// above the model's domain.
func TestCompiledSearchOutOfDomain(t *testing.T) {
	ix := uniformIndex(32, 200)
	m, c := compileFor(t, ix, 32)
	for _, k := range []keys.Value{
		keys.FromParts(1, 0),
		keys.FromParts(1, 5),
		keys.FromParts(^uint64(0), ^uint64(0)),
		keys.FromUint64(^uint64(0)),
	} {
		assertSame(t, m, c, ix, k)
	}
}

func TestCompiledLayout(t *testing.T) {
	ix := uniformIndex(24, 128)
	m, c := compileFor(t, ix, 24)
	total := 0
	for _, stage := range m.Stages {
		total += len(stage)
	}
	if len(c.bank) != total*blockStride {
		t.Fatalf("bank size %d, want %d for %d submodels", len(c.bank), total*blockStride, total)
	}
	// Padding invariants: knot slots beyond the real knots are +Inf (never
	// counted by the unrolled select); coefficient pads are zero.
	id := 0
	for _, stage := range m.Stages {
		for j := range stage {
			l := &stage[j]
			blk := c.bank[id<<blockShift : (id+1)<<blockShift]
			for i := len(l.Knots); i < padKnots; i++ {
				if !math.IsInf(float64(blk[offKnots+i]), 1) {
					t.Fatalf("submodel %d knot pad %d is %v, want +Inf", id, i, blk[offKnots+i])
				}
			}
			for i := len(l.A); i < padSegs; i++ {
				if blk[offA+i] != 0 || blk[offB+i] != 0 {
					t.Fatalf("submodel %d coeff pad %d not zero", id, i)
				}
			}
			id++
		}
	}
	if c.lows64 == nil {
		t.Fatal("width 24 should compile to the one-limb bounds path")
	}
	if c.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestCompileRejectsMismatch(t *testing.T) {
	ix := uniformIndex(16, 64)
	m, _, err := Train(ix, 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(m, uniformIndex(16, 63)); err == nil {
		t.Fatal("Compile accepted an index of the wrong length")
	}
	bad := &Model{} // structurally invalid
	if _, err := Compile(bad, ix); err == nil {
		t.Fatal("Compile accepted an invalid model")
	}
}
