package rqrmi

import (
	"math"
	"math/rand"
)

// hiddenUnits is the hidden-layer width of every submodel: the paper uses
// eight fully-connected perceptrons with ReLU activation (§2.2).
const hiddenUnits = 8

// mlp is a trainable 1→8→1 multi-layer perceptron over the unit input u.
// The input is first normalized with the affine transform z = inA·u + inB
// (determined by the submodel's responsibility interval at training time, as
// in the paper: "normalized using an affine transformation determined at
// training time"). Training runs in float64; the trained network is then
// compiled into a LUT for float32 inference.
type mlp struct {
	w1, b1 [hiddenUnits]float64
	w2     [hiddenUnits]float64
	b2     float64
	inA    float64 // input normalization: z = inA*u + inB
	inB    float64
}

// newMLP creates a submodel normalized to the input interval [uMin, uMax]
// and initialized close to the identity mapping z ↦ z, which both breaks
// symmetry and starts near the CDF it will fit. For a degenerate interval
// the normalization collapses to z = u.
func newMLP(uMin, uMax float64, rng *rand.Rand) *mlp {
	m := &mlp{}
	if uMax > uMin {
		m.inA = 1 / (uMax - uMin)
		m.inB = -uMin * m.inA
	} else {
		m.inA, m.inB = 1, 0
	}
	for k := 0; k < hiddenUnits; k++ {
		// Hinges spread across [0,1); small noise breaks ties.
		m.w1[k] = 1 + 0.01*rng.NormFloat64()
		m.b1[k] = -float64(k)/hiddenUnits + 0.01*rng.NormFloat64()
		m.w2[k] = 0.05 * rng.NormFloat64()
	}
	// With w2[0] ≈ 1 and hinge 0 at z ≈ 0, the initial output is ≈ z.
	m.w2[0] = 1
	m.b2 = 0
	return m
}

// forward computes the network output and, when grad is non-nil, the hidden
// activations needed for backprop.
func (m *mlp) forward(u float64, hidden *[hiddenUnits]float64) float64 {
	z := m.inA*u + m.inB
	y := m.b2
	for k := 0; k < hiddenUnits; k++ {
		h := m.w1[k]*z + m.b1[k]
		if h < 0 {
			h = 0
		}
		if hidden != nil {
			hidden[k] = h
		}
		y += m.w2[k] * h
	}
	return y
}

// sample is one training example: unit input and target fraction in [0,1].
type sample struct {
	u, target float64
}

// trainParams configures SGD for one submodel.
type trainParams struct {
	epochs    int
	batchSize int
	lr        float64
	momentum  float64
}

// train fits the network to the samples with minibatch SGD + momentum on
// MSE loss, returning the final epoch's mean loss. The learning rate decays
// geometrically to a tenth of its initial value across the epochs.
func (m *mlp) train(samples []sample, p trainParams, rng *rand.Rand) float64 {
	if len(samples) == 0 {
		return 0
	}
	if p.batchSize <= 0 {
		p.batchSize = 32
	}
	if p.batchSize > len(samples) {
		p.batchSize = len(samples)
	}
	decay := math.Pow(0.1, 1/math.Max(1, float64(p.epochs)))
	lr := p.lr

	var vw1, vb1, vw2 [hiddenUnits]float64
	var vb2 float64
	order := rng.Perm(len(samples))
	var hidden [hiddenUnits]float64
	lastLoss := 0.0

	for epoch := 0; epoch < p.epochs; epoch++ {
		// Fisher–Yates reshuffle per epoch.
		for i := len(order) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		lossSum := 0.0
		for start := 0; start < len(order); start += p.batchSize {
			end := start + p.batchSize
			if end > len(order) {
				end = len(order)
			}
			var gw1, gb1, gw2 [hiddenUnits]float64
			gb2 := 0.0
			for _, si := range order[start:end] {
				s := samples[si]
				y := m.forward(s.u, &hidden)
				diff := y - s.target
				lossSum += diff * diff
				z := m.inA*s.u + m.inB
				gb2 += diff
				for k := 0; k < hiddenUnits; k++ {
					gw2[k] += diff * hidden[k]
					if hidden[k] > 0 {
						gk := diff * m.w2[k]
						gw1[k] += gk * z
						gb1[k] += gk
					}
				}
			}
			scale := lr / float64(end-start)
			for k := 0; k < hiddenUnits; k++ {
				vw1[k] = p.momentum*vw1[k] - scale*gw1[k]
				vb1[k] = p.momentum*vb1[k] - scale*gb1[k]
				vw2[k] = p.momentum*vw2[k] - scale*gw2[k]
				m.w1[k] += vw1[k]
				m.b1[k] += vb1[k]
				m.w2[k] += vw2[k]
			}
			vb2 = p.momentum*vb2 - scale*gb2
			m.b2 += vb2
		}
		lastLoss = lossSum / float64(len(order))
		lr *= decay
	}
	return lastLoss
}

// compile converts the trained network into its exact piecewise-linear LUT
// (paper §5.2.2). Segment coefficients fold the input normalization, so the
// LUT maps the raw unit input u directly: within segment s,
// y = A[s]·u + B[s]. Coefficients are computed in float64 and stored as
// float32; the error-bound analysis runs against the stored float32 values,
// so the rounding here can never break query correctness.
func (m *mlp) compile() LUT {
	// Hinge locations in z-space: z_k = −b1/w1 where the ReLU flips.
	type hinge struct{ z float64 }
	var hinges []float64
	for k := 0; k < hiddenUnits; k++ {
		if m.w1[k] != 0 {
			hinges = append(hinges, -m.b1[k]/m.w1[k])
		}
	}
	// Sort and deduplicate.
	for i := 1; i < len(hinges); i++ {
		for j := i; j > 0 && hinges[j] < hinges[j-1]; j-- {
			hinges[j], hinges[j-1] = hinges[j-1], hinges[j]
		}
	}
	uniq := hinges[:0]
	for _, h := range hinges {
		if len(uniq) == 0 || h > uniq[len(uniq)-1] {
			uniq = append(uniq, h)
		}
	}
	hinges = uniq

	var lut LUT
	// Segment s covers z ∈ (hinges[s−1], hinges[s]].
	for s := 0; s <= len(hinges); s++ {
		// Pick a probe point inside the segment to determine the active set.
		var probe float64
		switch {
		case len(hinges) == 0:
			probe = 0
		case s == 0:
			probe = hinges[0] - 1
		case s == len(hinges):
			probe = hinges[len(hinges)-1] + 1
		default:
			probe = (hinges[s-1] + hinges[s]) / 2
		}
		az, bz := 0.0, m.b2
		for k := 0; k < hiddenUnits; k++ {
			if m.w1[k]*probe+m.b1[k] > 0 {
				az += m.w2[k] * m.w1[k]
				bz += m.w2[k] * m.b1[k]
			}
		}
		// Fold the input normalization: z = inA·u + inB.
		lut.A = append(lut.A, float32(az*m.inA))
		lut.B = append(lut.B, float32(az*m.inB+bz))
		if s < len(hinges) {
			// Knots move to u-space; inA > 0 preserves order.
			lut.Knots = append(lut.Knots, float32((hinges[s]-m.inB)/m.inA))
		}
	}
	return lut
}
