package rqrmi

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"neurolpm/internal/keys"
	"neurolpm/internal/telemetry"
)

// Training telemetry: the distributions the paper's training-time argument
// rests on (§5.2.1 error bounds, §6.5 straggler trade-off) as live metrics.
// Loss is observed in nano-units (loss × 1e9) so the log₂ histogram
// resolves the 1e-3..1e-8 MSE range.
var (
	metTrainRuns = telemetry.Default.Counter("neurolpm_train_runs_total",
		"RQRMI training runs")
	metTrainNs = telemetry.Default.Counter("neurolpm_train_ns_total",
		"Nanoseconds spent in RQRMI training")
	metTrainSubmodelErr = telemetry.Default.Histogram("neurolpm_train_submodel_err",
		"Final-stage submodel error bounds (paper §5.2.1)")
	metTrainLossNano = telemetry.Default.Histogram("neurolpm_train_loss_nano",
		"Final-epoch MSE loss per submodel, in units of 1e-9")
	metTrainRespSize = telemetry.Default.Histogram("neurolpm_train_responsibility_entries",
		"Index entries per final-stage submodel responsibility (paper §5.2)")
	metTrainRetrained = telemetry.Default.Counter("neurolpm_train_retrain_rounds_total",
		"Extra training rounds spent on straggler submodels (paper §6.5)")
	metTrainStragglers = telemetry.Default.Counter("neurolpm_train_stragglers_total",
		"Submodels still above TargetErr after MaxRounds (paper §6.5)")
)

// Config controls RQRMI training. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// StageWidths is the number of submodels per stage. The paper's
	// configuration — 1, 4, 64 — achieves good performance on all evaluated
	// rule-sets (§8).
	StageWidths []int
	// Samples is the uniform-sample budget per submodel.
	Samples int
	// Epochs, BatchSize, LearningRate and Momentum drive per-submodel SGD.
	Epochs       int
	BatchSize    int
	LearningRate float64
	Momentum     float64
	// TargetErr is the per-submodel error-bound goal: submodels above it are
	// retrained with a fresh seed and more epochs, up to MaxRounds rounds.
	// "Straggler" submodels still above the target after MaxRounds keep
	// their best bound — the paper shows absorbing a few high-e submodels in
	// the secondary search costs ~3.5% of lookup throughput but shortens
	// training up to 4× (§6.5).
	TargetErr int
	MaxRounds int
	// Workers bounds training parallelism (§6.5: submodels are independent).
	// Zero means GOMAXPROCS.
	Workers int
	// Seed makes training deterministic.
	Seed int64
}

// DefaultConfig returns the paper's model configuration with training knobs
// sized for sub-second training of ~1M-range indexes.
func DefaultConfig() Config {
	return Config{
		StageWidths:  []int{1, 4, 64},
		Samples:      4096,
		Epochs:       48,
		BatchSize:    64,
		LearningRate: 0.25,
		Momentum:     0.9,
		TargetErr:    512,
		MaxRounds:    3,
		Seed:         1,
	}
}

func (c *Config) validate() error {
	if len(c.StageWidths) == 0 {
		return fmt.Errorf("rqrmi: config has no stages")
	}
	if c.StageWidths[0] != 1 {
		return fmt.Errorf("rqrmi: stage 0 width must be 1, got %d", c.StageWidths[0])
	}
	for _, w := range c.StageWidths {
		if w < 1 {
			return fmt.Errorf("rqrmi: invalid stage width %d", w)
		}
	}
	if c.Samples < 16 {
		return fmt.Errorf("rqrmi: sample budget %d too small", c.Samples)
	}
	if c.Epochs < 1 || c.LearningRate <= 0 {
		return fmt.Errorf("rqrmi: invalid SGD parameters")
	}
	return nil
}

// Stats reports what training did.
type Stats struct {
	Duration      time.Duration
	StageDuration []time.Duration
	SubmodelErrs  []int // final-stage error bounds
	Retrained     int   // submodels that needed extra rounds
	Stragglers    int   // submodels still above TargetErr at the end
}

// MaxErr returns the largest final-stage error bound.
func (s *Stats) MaxErr() int {
	max := 0
	for _, e := range s.SubmodelErrs {
		if e > max {
			max = e
		}
	}
	return max
}

// Train fits an RQRMI model to the index over a width-bit key domain.
// Training is stage by stage; submodels within a stage train in parallel.
func Train(ix Index, width int, cfg Config) (*Model, *Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if ix.Len() == 0 {
		return nil, nil, fmt.Errorf("rqrmi: cannot train on an empty index")
	}
	start := time.Now()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dom := keys.NewDomain(width)
	m := &Model{Width: width, N: ix.Len(), Stages: make([][]LUT, len(cfg.StageWidths))}
	stats := &Stats{StageDuration: make([]time.Duration, len(cfg.StageWidths))}

	// Responsibilities of the submodels in the stage being trained.
	resp := make([][]interval, 1)
	resp[0] = []interval{{Lo: keys.Value{}, Hi: dom.Max()}}

	for s, stageWidth := range cfg.StageWidths {
		stageStart := time.Now()
		m.Stages[s] = make([]LUT, stageWidth)
		final := s == len(cfg.StageWidths)-1

		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		var mu sync.Mutex
		for j := 0; j < stageWidth; j++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(j int) {
				defer wg.Done()
				defer func() { <-sem }()
				lut, retrained, loss := trainSubmodel(ix, width, cfg, resp[j], final, int64(s)<<32|int64(j))
				if final {
					metTrainLossNano.Observe(uint64(loss * 1e9))
					metTrainRespSize.ObserveInt(respEntries(ix, resp[j]))
				}
				mu.Lock()
				m.Stages[s][j] = lut
				stats.Retrained += retrained
				mu.Unlock()
			}(j)
		}
		wg.Wait()

		if !final {
			// Route the domain through the freshly compiled stage to obtain
			// the next stage's responsibilities (analytically, §5.2).
			next := make([][]interval, cfg.StageWidths[s+1])
			for j := range resp {
				if len(resp[j]) == 0 {
					continue
				}
				parts := partition(width, &m.Stages[s][j], cfg.StageWidths[s+1], resp[j])
				for t := range parts {
					next[t] = append(next[t], parts[t]...)
				}
			}
			resp = next
		} else {
			for j := range m.Stages[s] {
				e := int(m.Stages[s][j].Err)
				stats.SubmodelErrs = append(stats.SubmodelErrs, e)
				metTrainSubmodelErr.ObserveInt(e)
				if e > cfg.TargetErr {
					stats.Stragglers++
				}
			}
		}
		stats.StageDuration[s] = time.Since(stageStart)
	}
	stats.Duration = time.Since(start)
	metTrainRuns.Inc()
	metTrainNs.Add(uint64(stats.Duration.Nanoseconds()))
	metTrainRetrained.Add(uint64(stats.Retrained))
	metTrainStragglers.Add(uint64(stats.Stragglers))
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, stats, nil
}

// respEntries counts the index entries a responsibility covers — the size
// of the slice of the learned array one final-stage submodel answers for.
func respEntries(ix Index, ivs []interval) int {
	total := 0
	for _, iv := range ivs {
		total += Find(ix, iv.Hi) - Find(ix, iv.Lo) + 1
	}
	return total
}

// trainSubmodel trains one submodel on its responsibility, compiles it, and
// (for final-stage submodels) computes its error bound, retrying stragglers
// per the config. It returns the LUT, how many retrain rounds ran, and the
// final epoch's mean loss of the kept network.
func trainSubmodel(ix Index, width int, cfg Config, ivs []interval, final bool, seed int64) (LUT, int, float64) {
	if totalSpan(ivs) == 0 {
		return constLUT(0), 0, 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ seed))
	samples := drawSamples(ix, width, ivs, cfg.Samples, rng)
	if len(samples) == 0 {
		return constLUT(0), 0, 0
	}
	uMin, uMax := sampleBounds(samples)

	var best LUT
	bestErr := int32(-1)
	bestLoss := 0.0
	rounds := 0
	epochs := cfg.Epochs
	for round := 0; round < maxInt(1, cfg.MaxRounds); round++ {
		net := newMLP(uMin, uMax, rng)
		loss := net.train(samples, trainParams{
			epochs:    epochs,
			batchSize: cfg.BatchSize,
			lr:        cfg.LearningRate,
			momentum:  cfg.Momentum,
		}, rng)
		lut := net.compile()
		if !final {
			// Internal stages need no error bound: routing is recomputed
			// analytically from whatever the stage learned.
			return lut, rounds, loss
		}
		lut.Err = errorBound(width, &lut, ix, ivs)
		if bestErr < 0 || lut.Err < bestErr {
			best, bestErr, bestLoss = lut, lut.Err, loss
		}
		if bestErr <= int32(cfg.TargetErr) {
			break
		}
		// Straggler: more epochs and a denser sample set for the retry.
		rounds++
		epochs += cfg.Epochs
		extra := drawSamples(ix, width, ivs, cfg.Samples, rng)
		samples = append(samples, extra...)
	}
	return best, rounds, bestLoss
}

// totalSpan returns the total key count covered by the intervals as a
// float64 (precision loss is harmless: it only weights sampling).
func totalSpan(ivs []interval) float64 {
	total := 0.0
	for _, iv := range ivs {
		total += iv.Hi.Sub(iv.Lo).Float64() + 1
	}
	return total
}

// drawSamples draws ~budget training samples for a responsibility: uniform
// keys across the intervals plus the entry boundaries that fall inside them
// (boundaries are where the learned step function actually moves).
func drawSamples(ix Index, width int, ivs []interval, budget int, rng *rand.Rand) []sample {
	dom := keys.NewDomain(width)
	n := ix.Len()
	out := make([]sample, 0, budget+budget/2)
	add := func(k keys.Value) {
		idx := Find(ix, k)
		out = append(out, sample{
			u:      dom.ToUnit(k),
			target: (float64(idx) + 0.5) / float64(n),
		})
	}
	total := totalSpan(ivs)
	if total <= 0 {
		return nil
	}
	// Uniform samples, interval-weighted.
	for i := 0; i < budget; i++ {
		t := rng.Float64() * total
		for _, iv := range ivs {
			span := iv.Hi.Sub(iv.Lo).Float64() + 1
			if t > span {
				t -= span
				continue
			}
			add(randKeyIn(rng, iv))
			break
		}
	}
	// Boundary samples: every entry low inside the responsibility, capped at
	// half the budget by striding.
	boundaries := 0
	for _, iv := range ivs {
		lo := Find(ix, iv.Lo)
		hi := Find(ix, iv.Hi)
		boundaries += hi - lo
	}
	stride := 1
	if limit := budget / 2; limit > 0 && boundaries > limit {
		stride = (boundaries + limit - 1) / limit
	}
	cnt := 0
	for _, iv := range ivs {
		lo := Find(ix, iv.Lo)
		hi := Find(ix, iv.Hi)
		for r := lo + 1; r <= hi; r++ {
			if cnt%stride == 0 {
				add(ix.Low(r))
			}
			cnt++
		}
	}
	return out
}

// randKeyIn draws a near-uniform key in the inclusive interval. Slight
// modulo bias is harmless: samples only steer SGD, never correctness.
func randKeyIn(rng *rand.Rand, iv interval) keys.Value {
	span := iv.Hi.Sub(iv.Lo) // key count − 1
	if span.Hi == 0 {
		if span.Lo == ^uint64(0) {
			return iv.Lo.AddUint64(rng.Uint64())
		}
		return iv.Lo.AddUint64(rng.Uint64() % (span.Lo + 1))
	}
	if span.Hi == ^uint64(0) {
		// The interval is essentially the whole 128-bit domain.
		return keys.FromParts(rng.Uint64(), rng.Uint64())
	}
	// Wide interval: pick the high limb in range, reject the rare overshoot.
	for {
		v := keys.FromParts(rng.Uint64()%(span.Hi+1), rng.Uint64())
		if !span.Less(v) {
			return iv.Lo.Add(v)
		}
	}
}

func sampleBounds(s []sample) (uMin, uMax float64) {
	uMin, uMax = s[0].u, s[0].u
	for _, x := range s[1:] {
		if x.u < uMin {
			uMin = x.u
		}
		if x.u > uMax {
			uMax = x.u
		}
	}
	return uMin, uMax
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
