package rqrmi

// The quantized query plane: an int32 fixed-point re-encoding of the
// compiled plane's interleaved coefficient bank, evaluated with integer
// shift-add alignment and no float operations on the hot path.
//
// TableNet-style quantized inference (PAPERS.md) replaces FP multipliers
// with table lookups plus shift-add accumulation. The software analogue
// here keeps the compiled plane's block layout — same offsets, same
// submodel-id<<blockShift addressing — but stores int16 words instead of
// float32, halving every coefficient block from two cache lines to one:
//
//	[ 0.. 7] knots, Q0.15, padded with unitMax (never exceeded by u>>15)
//	[ 8..16] A mantissas, 15-bit, per-stage shared exponent expA
//	[17..25] B mantissas, 15-bit, per-stage shared exponent expB
//	[26..31] unused (pads the block to a power of two)
//
// Number formats (DESIGN.md §15):
//
//   - input u: Q0.30 — the top 30 bits of the key, so the input granularity
//     (2^(width−30) keys) is finer than float32's 24-bit mantissa for every
//     width ≥ 25, and error bounds do not inflate at paper scale;
//   - segment select: u>>15 against Q0.15 int16 knots — the same
//     "count knots strictly below" scan as the reference and compiled
//     planes, in one int16 cache line;
//   - MAC: y = (a_q·u)>>shA + (b_q<<shBL)>>shBR, with per-stage shifts
//     derived from the shared exponents so the sum lands in a common
//     Q?.Fy accumulator. The a_q·u product widens through int64 (a single
//     machine multiply stands in for the hardware's shift-add tree); every
//     stored word and the accumulator are ≤ 32 bits;
//   - slot scaling: scaleClamp's float multiply becomes
//     (y·n)>>Fy in int64, with the same ≤0 / ≥1 / top-edge clamps.
//
// Correctness contract (CLAUDE.md): the float error bounds do NOT transfer —
// rounding the coefficients moves every prediction. CompileQuantized
// therefore re-runs the responsibility/error analysis of analyze.go in
// exactly this integer arithmetic (same eval, same clamp, same unit), so
// the stored bounds cover the deployed quantized plane for every key:
// bound-inclusion rather than bit-identity with the float planes. The
// bounded secondary search then lands on exactly the true index, so
// everything downstream (bucket fetch, action resolve) is unchanged.
// FuzzQuantizedVsModel and core.Engine.Verify enforce this mechanically.

import (
	"fmt"
	"math"

	"neurolpm/internal/keys"
)

const (
	// unitBits is the fixed-point input precision: u is the key's top
	// unitBits bits, Q0.30 in [0, unitMax].
	unitBits = 30
	unitMax  = 1<<unitBits - 1

	// knotBits is the segment-select precision: knots store the top
	// knotBits of the unit coordinate as int16, compared against u>>15.
	knotBits = 15
	knotMax  = 1<<knotBits - 1

	// mantBits is the signed coefficient mantissa width; mantissas are
	// clamped to ±mantMax so they always fit int16.
	mantBits = 15
	mantMax  = 1<<mantBits - 1

	// accBits caps the accumulator magnitude: per-stage Fy is chosen so
	// |a·u·2^Fy| and |b·2^Fy| each stay ≤ 2^accBits, keeping their sum
	// within int32 with a sign bit and a carry bit to spare.
	accBits = 28
)

// Quantized is the fixed-point query plane. It is immutable after
// CompileQuantized and safe for concurrent use.
type Quantized struct {
	width int
	n     int // entries in the learned index

	// Saturation bound for out-of-domain keys (the quantized analogue of
	// Compiled.Search's ^uint64(0) clamp): any key above the domain max
	// maps to maxU — the domain max's own unit coordinate — so it aliases
	// a key the bound analysis covered instead of landing on an
	// unanalyzed input.
	maxHi, maxLo uint64
	maxU         int32
	shl, shr     uint // unit() shift, selected by width

	// stages holds the per-stage layout and fixed-point parameters in one
	// 16-byte record, so the hot path pays a single bounds-checked load
	// per stage instead of one per parameter slice.
	stages []qStage

	bank []int16 // blockStride int16 words per submodel: knots | A | B
	errs []int32 // error bound per submodel, recomputed in this arithmetic

	// Exactly one of lows64/lows is non-nil — the same devirtualized
	// bounds copy the compiled plane holds (see Compiled).
	lows64 []uint64
	lows   []keys.Value
}

// qStage is one stage's submodel layout plus its fixed-point parameters,
// all derived from the stage's shared coefficient exponents (expA from
// max|A|, expB from max|B|): fy output fraction bits, one = 1<<fy (the
// clamp threshold), shA the product alignment shift, shBL/shBR the
// intercept alignment (exactly one is non-zero).
type qStage struct {
	base  int32 // global id of the stage's first submodel
	width int32 // submodels in this stage
	one   int32
	fy    uint8
	shA   uint8
	shBL  uint8
	shBR  uint8
}

// CompileQuantized re-encodes a trained model as the fixed-point plane and
// recomputes every final-stage error bound in the quantized arithmetic.
// The model must be structurally valid and trained over exactly this index,
// as in Compile.
func CompileQuantized(m *Model, ix Index) (*Quantized, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("rqrmi: compile quantized: %w", err)
	}
	if m.N != ix.Len() {
		return nil, fmt.Errorf("rqrmi: compile quantized: model N=%d does not match index length %d", m.N, ix.Len())
	}
	total := 0
	for _, stage := range m.Stages {
		total += len(stage)
	}
	dom := keys.NewDomain(m.Width)
	q := &Quantized{
		width:      m.Width,
		n:          m.N,
		maxHi:      dom.Max().Hi,
		maxLo:      dom.Max().Lo,
		stages:     make([]qStage, len(m.Stages)),
		bank:       make([]int16, total*blockStride),
		errs:       make([]int32, total),
	}
	if m.Width <= unitBits {
		q.shl = uint(unitBits - m.Width)
		q.maxU = int32(dom.Max().Lo << q.shl)
	} else {
		q.shr = uint(m.Width - unitBits)
		q.maxU = unitMax
	}

	id := 0
	for s, stage := range m.Stages {
		st := &q.stages[s]
		st.base = int32(id)
		st.width = int32(len(stage))

		// Shared per-stage exponents: the smallest power of two covering
		// the stage's largest |coefficient|, clamped to [0, accBits].
		// The upper clamp saturates absurdly large coefficients to the
		// mantissa limit (the function stays linear and monotone per
		// segment, and the bound analysis sees the saturated plane, so
		// bounds stay exact); the lower clamp keeps fy ≤ accBits so the
		// clamp threshold fits int32.
		var maxA, maxB float64
		for j := range stage {
			for _, v := range stage[j].A {
				maxA = math.Max(maxA, math.Abs(float64(v)))
			}
			for _, v := range stage[j].B {
				maxB = math.Max(maxB, math.Abs(float64(v)))
			}
		}
		expA, expB := coeffExp(maxA), coeffExp(maxB)

		// fy: as many output fraction bits as keep both MAC terms within
		// ±2^accBits — see the overflow audit in DESIGN.md §15.
		fy := accBits - expA
		if expB > expA {
			fy = accBits - expB
		}
		if fy < 0 {
			fy = 0
		}
		st.fy = uint8(fy)
		st.one = 1 << fy
		// a·u: the Q0.30 product carries mantBits+unitBits fraction bits
		// scaled by 2^(expA−mantBits); aligning to fy fraction bits
		// shifts right by (mantBits+unitBits) − expA − fy ∈ [17, 45].
		st.shA = uint8(mantBits + unitBits - expA - fy)
		// b: stored with mantBits fraction bits scaled by 2^(expB−mantBits);
		// aligning to fy shifts left by fy+expB−mantBits ≤ accBits−mantBits,
		// or right when negative.
		if sh := fy + expB - mantBits; sh >= 0 {
			st.shBL = uint8(sh)
		} else {
			st.shBR = uint8(-sh)
		}

		for j := range stage {
			l := &stage[j]
			blk := q.bank[id<<blockShift : (id+1)<<blockShift]
			for i := range blk[offKnots : offKnots+padKnots] {
				blk[offKnots+i] = knotMax
			}
			for i, kn := range l.Knots {
				blk[offKnots+i] = quantKnot(kn)
			}
			for i, v := range l.A {
				blk[offA+i] = quantMant(v, expA)
			}
			for i, v := range l.B {
				blk[offB+i] = quantMant(v, expB)
			}
			id++
		}
	}

	if m.Width <= 64 {
		q.lows64 = make([]uint64, ix.Len())
		for i := range q.lows64 {
			q.lows64[i] = ix.Low(i).Lo
		}
	} else {
		q.lows = make([]keys.Value, ix.Len())
		for i := range q.lows {
			q.lows[i] = ix.Low(i)
		}
	}

	q.analyze(ix)
	return q, nil
}

// coeffExp returns the shared exponent for a stage's coefficient group:
// the e with max|v| < 2^e (Frexp), clamped to [0, accBits]. Non-finite
// maxima take the upper clamp (their mantissas saturate).
func coeffExp(max float64) int {
	if max == 0 {
		return 0
	}
	if math.IsInf(max, 0) || math.IsNaN(max) {
		return accBits
	}
	_, e := math.Frexp(max)
	if e < 0 {
		return 0
	}
	if e > accBits {
		return accBits
	}
	return e
}

// quantMant rounds v to a mantBits-bit mantissa under the shared exponent:
// round-to-nearest of v·2^(mantBits−exp), clamped to ±mantMax.
func quantMant(v float32, exp int) int16 {
	r := math.Round(math.Ldexp(float64(v), mantBits-exp))
	if !(r < mantMax) { // catches +Inf and NaN
		if math.IsNaN(r) {
			return 0
		}
		return mantMax
	}
	if r < -mantMax {
		return -mantMax
	}
	return int16(r)
}

// quantKnot rounds a float32 knot to Q0.15, clamped to int16. +Inf (the
// compiled plane's padding) and NaN map to knotMax, which the scan can
// never exceed — the same "stop here" behavior as the reference's u > knot
// compare against +Inf or NaN.
func quantKnot(kn float32) int16 {
	r := math.Round(math.Ldexp(float64(kn), knotBits))
	if !(r < knotMax) {
		return knotMax
	}
	if r < math.MinInt16 {
		return math.MinInt16
	}
	return int16(r)
}

// Width returns the key bit width.
func (q *Quantized) Width() int { return q.width }

// Len returns the learned index length.
func (q *Quantized) Len() int { return q.n }

// SizeBytes is the quantized plane's memory footprint: the int16
// coefficient banks, the per-submodel bounds, and the flat bounds copy.
func (q *Quantized) SizeBytes() int {
	coeff := q.BankBytes()
	if q.lows64 != nil {
		return coeff + 8*len(q.lows64)
	}
	return coeff + 16*len(q.lows)
}

// BankBytes is the coefficient-bank footprint alone (banks + per-submodel
// error bounds) — the quantity E27 compares against Compiled.BankBytes to
// report the shrink ratio.
func (q *Quantized) BankBytes() int {
	return 2*len(q.bank) + 4*len(q.errs)
}

// MaxErr returns the largest final-stage error bound of the quantized
// arithmetic — generally close to, but not equal to, the float planes'
// bound. The engine's drift meters and probe ceiling take the max over
// both planes so either hot path stays covered.
func (q *Quantized) MaxErr() int {
	st := &q.stages[len(q.stages)-1]
	maxE := 0
	for i := 0; i < int(st.width); i++ {
		if e := int(q.errs[int(st.base)+i]); e > maxE {
			maxE = e
		}
	}
	return maxE
}

// unit maps k to the Q0.30 input coordinate: the key's top unitBits bits,
// saturating at the domain max's coordinate for out-of-domain keys — any
// such key then predicts and searches exactly like dom.Max(), which the
// bound analysis covers, so bound-inclusion holds for every representable
// key, in or out of domain.
func (q *Quantized) unit(k keys.Value) int32 {
	if k.Hi > q.maxHi || (k.Hi == q.maxHi && k.Lo > q.maxLo) {
		return q.maxU
	}
	switch {
	case q.width <= unitBits:
		return int32(k.Lo << q.shl)
	case q.width <= 64:
		return int32(k.Lo >> q.shr)
	case q.shr >= 64:
		return int32(k.Hi >> (q.shr - 64))
	default:
		return int32(k.Hi<<(64-q.shr) | k.Lo>>q.shr)
	}
}

// eval computes submodel id's piecewise-linear value at u in stage st's
// fixed-point format: the compiled plane's count-knots-below segment select
// (over int16 knots and u's top 15 bits), then the shift-add MAC. The select
// is branchless — knots are sorted (quantization rounds monotonically, pads
// are knotMax), so the first knot ≥ uh equals the count of knots < uh, and
// eight sign-bit adds replace the float plane's data-dependent branch per
// knot. All shifts are arithmetic, so alignment floors toward −∞
// consistently and the per-segment map stays monotone — the property the
// bound analysis relies on.
func (q *Quantized) eval(st *qStage, id int, u int32) int32 {
	blk := (*[blockStride]int16)(q.bank[id<<blockShift:])
	uh := u >> (unitBits - knotBits)
	seg := int(uint32(int32(blk[0])-uh)>>31) +
		int(uint32(int32(blk[1])-uh)>>31) +
		int(uint32(int32(blk[2])-uh)>>31) +
		int(uint32(int32(blk[3])-uh)>>31) +
		int(uint32(int32(blk[4])-uh)>>31) +
		int(uint32(int32(blk[5])-uh)>>31) +
		int(uint32(int32(blk[6])-uh)>>31) +
		int(uint32(int32(blk[7])-uh)>>31)
	prod := int64(blk[offA+seg]) * int64(u)
	return int32(prod>>st.shA) + (int32(blk[offB+seg])<<st.shBL)>>st.shBR
}

// clampStage maps a stage's fixed-point output y to an integer slot in
// [0, n) — scaleClamp with the float multiply replaced by (y·n)>>fy.
// Like the float arithmetic, it is part of the inference contract: the
// bound analysis runs this exact code.
func clampStage(st *qStage, y int32, n int) int {
	if y <= 0 {
		return 0
	}
	if y >= st.one {
		return n - 1
	}
	i := int(int64(y) * int64(n) >> st.fy)
	if i >= n { // unreachable (y < one ⇒ i < n), kept to mirror scaleClamp
		i = n - 1
	}
	return i
}

// Predict runs full RQRMI inference for key k in the fixed-point
// arithmetic, returning the quantized plane's own error bound.
func (q *Quantized) Predict(k keys.Value) Prediction {
	u := q.unit(k)
	cur := 0
	last := len(q.stages) - 1
	for s := 0; s < last; s++ {
		st := &q.stages[s]
		y := q.eval(st, int(st.base)+cur, u)
		cur = clampStage(st, y, int(q.stages[s+1].width))
	}
	st := &q.stages[last]
	id := int(st.base) + cur
	y := q.eval(st, id, u)
	return Prediction{Index: clampStage(st, y, q.n), Err: int(q.errs[id]), Submodel: cur}
}

// PredictBatch runs inference for each key, writing out[i] = Predict(ks[i]).
// Same software pipelining as Compiled.PredictBatch: blocks of predictBlock
// keys advance stage-by-stage so the independent coefficient loads overlap.
// out must have at least len(ks) entries.
func (q *Quantized) PredictBatch(ks []keys.Value, out []Prediction) {
	_ = out[:len(ks)]
	last := len(q.stages) - 1
	var us [predictBlock]int32
	var cur [predictBlock]int32
	for start := 0; start < len(ks); start += predictBlock {
		n := len(ks) - start
		if n > predictBlock {
			n = predictBlock
		}
		blk := ks[start : start+n]
		ub, cb := us[:n], cur[:n]
		for i := range ub {
			ub[i] = q.unit(blk[i])
			cb[i] = 0
		}
		for s := 0; s < last; s++ {
			st := &q.stages[s]
			base := int(st.base)
			w := int(q.stages[s+1].width)
			for i := range ub {
				cb[i] = int32(clampStage(st, q.eval(st, base+int(cb[i]), ub[i]), w))
			}
		}
		st := &q.stages[last]
		base := int(st.base)
		ob := out[start : start+n]
		for i := range ob {
			id := base + int(cb[i])
			ob[i] = Prediction{
				Index:    clampStage(st, q.eval(st, id, ub[i]), q.n),
				Err:      int(q.errs[id]),
				Submodel: int(cb[i]),
			}
		}
	}
}

// Search runs the bounded secondary search over the flat bounds copy —
// identical to Compiled.Search, but bounded by the quantized plane's own
// error bound carried in p. Because that bound covers the quantized
// prediction for every key, the search lands on exactly the true index.
func (q *Quantized) Search(k keys.Value, p Prediction) (idx, probes int) {
	lo, hi := p.Index-p.Err, p.Index+p.Err
	if lo < 0 {
		lo = 0
	}
	if hi > q.n-1 {
		hi = q.n - 1
	}
	if q.lows64 != nil {
		kk := k.Lo
		if k.Hi != 0 {
			// Out-of-domain key above every 64-bit bound: saturate so the
			// one-limb compare agrees with the reference 128-bit Less.
			kk = ^uint64(0)
		}
		return keys.SearchLows64(q.lows64, kk, lo, hi)
	}
	return keys.SearchLows(q.lows, k, lo, hi)
}

// Lookup is inference plus bounded search: the true index of the entry
// containing k and the probe count.
func (q *Quantized) Lookup(k keys.Value) (idx, probes int) {
	return q.Search(k, q.Predict(k))
}
