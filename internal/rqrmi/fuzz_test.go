package rqrmi

import (
	"bytes"
	"testing"
)

// FuzzReadModel ensures arbitrary byte streams never panic the
// deserializer, and that any accepted model validates.
func FuzzReadModel(f *testing.F) {
	// Seed with a real serialized model.
	ix := uniformIndex(16, 64)
	m, _, err := Train(ix, 16, quickConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RQRMI1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted model fails validation: %v", err)
		}
	})
}
