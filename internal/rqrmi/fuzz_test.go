package rqrmi

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"neurolpm/internal/keys"
)

// FuzzReadModel ensures arbitrary byte streams never panic the
// deserializer, and that any accepted model validates.
func FuzzReadModel(f *testing.F) {
	// Seed with a real serialized model.
	ix := uniformIndex(16, 64)
	m, _, err := Train(ix, 16, quickConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RQRMI1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted model fails validation: %v", err)
		}
	})
}

// fuzzPlane is one trained model plus its compiled and quantized planes,
// shared across fuzz iterations (training once per process keeps the fuzz
// loop fast).
type fuzzPlane struct {
	width int
	ix    Index
	m     *Model
	c     *Compiled
	q     *Quantized
}

var (
	fuzzPlanesOnce sync.Once
	fuzzPlanes     []fuzzPlane
)

func getFuzzPlanes(t testing.TB) []fuzzPlane {
	fuzzPlanesOnce.Do(func() {
		rng := rand.New(rand.NewSource(99))
		for _, w := range []int{32, 64, 128} {
			ix := skewedIndex(rng, w, 400)
			m, _, err := Train(ix, w, quickConfig())
			if err != nil {
				t.Fatalf("width %d: %v", w, err)
			}
			c, err := Compile(m, ix)
			if err != nil {
				t.Fatalf("width %d: %v", w, err)
			}
			q, err := CompileQuantized(m, ix)
			if err != nil {
				t.Fatalf("width %d: %v", w, err)
			}
			fuzzPlanes = append(fuzzPlanes, fuzzPlane{width: w, ix: ix, m: m, c: c, q: q})
		}
	})
	return fuzzPlanes
}

// FuzzCompiledVsModel is the compiled plane's bit-identity enforcement
// (CLAUDE.md): for arbitrary keys, Compiled.Predict/Search/Lookup must equal
// Model.Predict/Search/Lookup exactly — index, error bound, submodel, and
// probe count — on 32-, 64- and 128-bit models. Any divergence means the
// analyze.go error bounds no longer cover the deployed arithmetic.
func FuzzCompiledVsModel(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0), uint64(1)<<31)
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(0), uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, hi, lo uint64) {
		for _, p := range getFuzzPlanes(t) {
			k := keys.FromParts(hi, lo)
			if p.width <= 64 {
				k = keys.FromUint64(lo)
				if p.width < 64 {
					k = keys.FromUint64(lo & (1<<uint(p.width) - 1))
				}
			}
			pm := p.m.Predict(k)
			pc := p.c.Predict(k)
			if pm != pc {
				t.Fatalf("width %d Predict(%v): model %+v, compiled %+v", p.width, k, pm, pc)
			}
			im, probesM := p.m.Search(p.ix, k, pm)
			ic, probesC := p.c.Search(k, pc)
			if im != ic || probesM != probesC {
				t.Fatalf("width %d Search(%v): model (%d,%d), compiled (%d,%d)",
					p.width, k, im, probesM, ic, probesC)
			}
			var one [1]Prediction
			p.c.PredictBatch([]keys.Value{k}, one[:])
			if one[0] != pm {
				t.Fatalf("width %d PredictBatch(%v) = %+v, want %+v", p.width, k, one[0], pm)
			}
		}
	})
}

// FuzzQuantizedVsModel is the quantized plane's bound-inclusion enforcement
// (CLAUDE.md, DESIGN.md §15). The int32 arithmetic is NOT bit-identical to
// the float planes — rounded coefficients move predictions — so the contract
// is the one the bounded search actually needs: for every key, the stored
// quantized error bound covers the quantized prediction's distance from the
// true index, and therefore Search/Lookup land on exactly the index the
// reference model finds. The batch arm must still be bit-identical to the
// quantized single-key arm.
func FuzzQuantizedVsModel(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0), uint64(1)<<31)
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(0), uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, hi, lo uint64) {
		for _, p := range getFuzzPlanes(t) {
			k := keys.FromParts(hi, lo)
			if p.width <= 64 {
				k = keys.FromUint64(lo)
				if p.width < 64 {
					k = keys.FromUint64(lo & (1<<uint(p.width) - 1))
				}
			}
			truth := Find(p.ix, k)
			pq := p.q.Predict(k)
			if d := pq.Index - truth; d > pq.Err || -d > pq.Err {
				t.Fatalf("width %d Predict(%v): quantized index %d err %d does not cover truth %d",
					p.width, k, pq.Index, pq.Err, truth)
			}
			iq, probes := p.q.Search(k, pq)
			if iq != truth {
				t.Fatalf("width %d Search(%v) = %d, want true index %d", p.width, k, iq, truth)
			}
			if probes > 3+2*bitsLen(2*pq.Err) {
				t.Fatalf("width %d Search(%v): %d probes for err %d", p.width, k, probes, pq.Err)
			}
			if im, _ := p.m.Lookup(p.ix, k); im != iq {
				t.Fatalf("width %d Lookup(%v): quantized %d, model %d", p.width, k, iq, im)
			}
			var one [1]Prediction
			p.q.PredictBatch([]keys.Value{k}, one[:])
			if one[0] != pq {
				t.Fatalf("width %d PredictBatch(%v) = %+v, want %+v", p.width, k, one[0], pq)
			}
		}
	})
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
