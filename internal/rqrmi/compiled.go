package rqrmi

// The compiled query plane: a flattened, devirtualized mirror of a trained
// Model plus its learned Index, built once at engine-build time and used by
// every hot lookup thereafter.
//
// Model.Predict pointer-chases through Stages [][]LUT (three slice headers
// per submodel) and scans knots with a data-dependent loop; Model.Search
// pays a dynamic Index.Low dispatch per probe. The paper's premise (§5.2.2)
// is that inference is ~4 FP ops, so in software those indirections dominate.
// Compile lays every submodel out in one fixed-stride interleaved bank of
// blockStride float32 words —
//
//	[ 0.. 7] knots, padded with +Inf
//	[ 8..16] A coefficients, zero padded
//	[17..25] B coefficients, zero padded
//	[26..31] unused (pads the block to a power of two)
//
// — so submodel id<<blockShift addresses its entire coefficient block with
// no pointer loads, one evaluation touches at most two cache lines (the
// split SoA layout cost three), and the ≤ 8 knot comparisons unroll into
// straight-line branch-predictable code. The Index's lower bounds are copied into a flat []uint64 (width ≤ 64,
// where every bound's high limb is zero) or []keys.Value, so the bounded
// secondary search runs keys.SearchLows64/SearchLows with zero interface
// calls and zero allocations.
//
// Bit-identity contract (CLAUDE.md): analyze.go computes error bounds by
// running LUT.Eval + scaleClamp + unitOf; the compiled plane must reproduce
// that arithmetic exactly or the bounds silently stop covering the deployed
// engine. Concretely:
//
//   - unit coordinate: same float64 multiply against the same Ldexp scale
//     keys.Domain.ToUnit uses, rounded to float32 once (cached, not
//     recomputed per key — caching changes cost, not value);
//   - segment select: knots are non-decreasing (Model.Validate), so the
//     reference scan "first s with u ≤ Knots[s]" equals the unrolled count
//     of knots with u > knot; +Inf padding never counts. NaN inputs count
//     zero knots on both paths;
//   - MAC: the same float32 A[s]*u + B[s] on the same coefficients;
//   - search: keys.SearchLows* share the canonical BoundedSearch loop, so
//     probe sequences and counts match the reference exactly.
//
// FuzzCompiledVsModel and the boundary sweep in core.Engine.Verify enforce
// the contract mechanically.

import (
	"fmt"
	"math"

	"neurolpm/internal/keys"
)

const (
	// padKnots/padSegs are the per-submodel field sizes: MaxSegments
	// segments need MaxSegments−1 interior knots (§5.2.2's 8-hidden-ReLU
	// bound).
	padKnots = MaxSegments - 1
	padSegs  = MaxSegments

	// Block layout inside the interleaved bank (float32 offsets).
	offKnots = 0
	offA     = padKnots           // 8
	offB     = padKnots + padSegs // 17

	// blockStride rounds the 26 used words up to a power of two so block
	// addressing is a shift and consecutive blocks share cache-line
	// boundaries deterministically.
	blockShift  = 5
	blockStride = 1 << blockShift // 32
)

// Compiled is the flat query plane. It is immutable after Compile and safe
// for concurrent use.
type Compiled struct {
	width int
	n     int     // entries in the learned index
	scale float64 // 1 / 2^width: keys.Domain.ToUnit's multiplier, cached

	stageWidth []int32 // submodels per stage
	stageBase  []int32 // stageBase[s] = global id of stage s's first submodel

	bank []float32 // blockStride words per submodel: knots | A | B
	errs []int32   // error bound per submodel (final stage only)

	// Exactly one of lows64/lows is non-nil: the index's lower bounds,
	// devirtualized. Range/bucket bounds never change after build (deletions
	// re-own ranges, they do not move boundaries), so the copy cannot go
	// stale.
	lows64 []uint64
	lows   []keys.Value
}

// Compile flattens a trained model and its learned index into the compiled
// plane. The model must be structurally valid (Train/ReadModel output) and
// trained over exactly this index; both are checked because a mismatch would
// silently void the error bounds.
func Compile(m *Model, ix Index) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("rqrmi: compile: %w", err)
	}
	if m.N != ix.Len() {
		return nil, fmt.Errorf("rqrmi: compile: model N=%d does not match index length %d", m.N, ix.Len())
	}
	total := 0
	for _, stage := range m.Stages {
		total += len(stage)
	}
	c := &Compiled{
		width:      m.Width,
		n:          m.N,
		scale:      math.Ldexp(1, -m.Width),
		stageWidth: make([]int32, len(m.Stages)),
		stageBase:  make([]int32, len(m.Stages)),
		bank:       make([]float32, total*blockStride),
		errs:       make([]int32, total),
	}
	inf := float32(math.Inf(1))
	id := 0
	for s, stage := range m.Stages {
		c.stageWidth[s] = int32(len(stage))
		c.stageBase[s] = int32(id)
		for j := range stage {
			l := &stage[j]
			blk := c.bank[id<<blockShift : (id+1)<<blockShift]
			for i := range blk[offKnots : offKnots+padKnots] {
				blk[offKnots+i] = inf
			}
			copy(blk[offKnots:], l.Knots)
			copy(blk[offA:], l.A)
			copy(blk[offB:], l.B)
			c.errs[id] = l.Err
			id++
		}
	}
	if m.Width <= 64 {
		c.lows64 = make([]uint64, ix.Len())
		for i := range c.lows64 {
			c.lows64[i] = ix.Low(i).Lo
		}
	} else {
		c.lows = make([]keys.Value, ix.Len())
		for i := range c.lows {
			c.lows[i] = ix.Low(i)
		}
	}
	return c, nil
}

// Width returns the key bit width.
func (c *Compiled) Width() int { return c.width }

// Len returns the learned index length.
func (c *Compiled) Len() int { return c.n }

// SizeBytes is the compiled plane's memory footprint: the padded coefficient
// banks plus the flat bounds copy. (The bounds mirror SRAM the hardware
// already holds once; software pays it twice for devirtualization.)
func (c *Compiled) SizeBytes() int {
	coeff := c.BankBytes()
	if c.lows64 != nil {
		return coeff + 8*len(c.lows64)
	}
	return coeff + 16*len(c.lows)
}

// BankBytes is the coefficient-bank footprint alone (float32 banks + the
// per-submodel error bounds) — the baseline E27's shrink ratio is stated
// against.
func (c *Compiled) BankBytes() int {
	return 4 * (len(c.bank) + len(c.errs))
}

// MaxErr returns the largest final-stage error bound — the compiled plane's
// static worst case, from which the secondary-search probe ceiling derives
// (telemetry.ProbeBound). Matches Model.MaxErr for the source model.
func (c *Compiled) MaxErr() int {
	last := len(c.stageWidth) - 1
	base := int(c.stageBase[last])
	maxE := 0
	for i := 0; i < int(c.stageWidth[last]); i++ {
		if e := int(c.errs[base+i]); e > maxE {
			maxE = e
		}
	}
	return maxE
}

// unit maps k to the model's float32 input coordinate — the same arithmetic
// as unitOf (keys.Value.Float64 × the domain's Ldexp scale, rounded to
// float32 once) with the Domain construction hoisted out of the query path.
func (c *Compiled) unit(k keys.Value) float32 {
	return float32((float64(k.Hi)*0x1p64 + float64(k.Lo)) * c.scale)
}

// eval computes submodel id's piecewise-linear value at u. The segment is
// the count of knots strictly below u — the same early-exit scan as
// LUT.Eval (real traces have locality, so the exit branch predicts well),
// but over the interleaved block: no pointer loads, fixed 8-iteration
// bound, and the +Inf padding stops the scan exactly where the reference's
// len(Knots) bound does (NaN exits at zero on both paths).
func (c *Compiled) eval(id int, u float32) float32 {
	blk := c.bank[id<<blockShift : id<<blockShift+offB+padSegs]
	s := 0
	for s < padKnots && u > blk[s] {
		s++
	}
	return blk[offA+s]*u + blk[offB+s]
}

// Predict runs full RQRMI inference for key k, bit-identical to
// Model.Predict.
func (c *Compiled) Predict(k keys.Value) Prediction {
	u := c.unit(k)
	cur := 0
	last := len(c.stageWidth) - 1
	for s := 0; s < last; s++ {
		y := c.eval(int(c.stageBase[s])+cur, u)
		cur = scaleClamp(y, int(c.stageWidth[s+1]))
	}
	id := int(c.stageBase[last]) + cur
	y := c.eval(id, u)
	return Prediction{Index: scaleClamp(y, c.n), Err: int(c.errs[id]), Submodel: cur}
}

// predictBlock is the software-pipelining width of PredictBatch: enough
// independent inferences in flight per stage to hide the coefficient-bank
// load latency, small enough that the per-block state lives in registers
// and L1.
const predictBlock = 16

// PredictBatch runs inference for each key, writing out[i] = Predict(ks[i]).
// Keys are processed in blocks of predictBlock, stage-by-stage: within one
// stage the block's evaluations are independent, so the CPU overlaps their
// coefficient loads instead of serializing whole per-key inference chains.
// out must have at least len(ks) entries.
func (c *Compiled) PredictBatch(ks []keys.Value, out []Prediction) {
	_ = out[:len(ks)]
	last := len(c.stageWidth) - 1
	var us [predictBlock]float32
	var cur [predictBlock]int32
	for start := 0; start < len(ks); start += predictBlock {
		n := len(ks) - start
		if n > predictBlock {
			n = predictBlock
		}
		blk := ks[start : start+n]
		ub, cb := us[:n], cur[:n]
		for i := range ub {
			ub[i] = c.unit(blk[i])
			cb[i] = 0
		}
		for s := 0; s < last; s++ {
			base := int(c.stageBase[s])
			w := int(c.stageWidth[s+1])
			for i := range ub {
				cb[i] = int32(scaleClamp(c.eval(base+int(cb[i]), ub[i]), w))
			}
		}
		base := int(c.stageBase[last])
		ob := out[start : start+n]
		for i := range ob {
			id := base + int(cb[i])
			ob[i] = Prediction{
				Index:    scaleClamp(c.eval(id, ub[i]), c.n),
				Err:      int(c.errs[id]),
				Submodel: int(cb[i]),
			}
		}
	}
}

// Search runs the bounded secondary search over the flat bounds copy,
// bit-identical to Model.Search on the source index (same clamping, same
// canonical loop, same probe counts).
func (c *Compiled) Search(k keys.Value, p Prediction) (idx, probes int) {
	lo, hi := p.Index-p.Err, p.Index+p.Err
	if lo < 0 {
		lo = 0
	}
	if hi > c.n-1 {
		hi = c.n - 1
	}
	if c.lows64 != nil {
		kk := k.Lo
		if k.Hi != 0 {
			// Out-of-domain key above every 64-bit bound: saturate so the
			// one-limb compare agrees with the reference 128-bit Less.
			kk = ^uint64(0)
		}
		return keys.SearchLows64(c.lows64, kk, lo, hi)
	}
	return keys.SearchLows(c.lows, k, lo, hi)
}

// Lookup is inference plus bounded search: the true index of the entry
// containing k and the probe count, equal to Model.Lookup on the source
// index.
func (c *Compiled) Lookup(k keys.Value) (idx, probes int) {
	return c.Search(k, c.Predict(k))
}
