// Package rqrmi implements the Range-Query Recursive Model Index used by
// NeuroLPM: a three-stage hierarchy of tiny neural networks that learns the
// location of sorted, non-overlapping ranges and answers queries with a
// guaranteed error bound (paper §2.2, §5.2).
//
// Inference follows the paper's lookup-table design (§5.2.2): each trained
// 1→8→1 MLP submodel is a piecewise-linear function with at most nine linear
// segments, so it is compiled offline into a table of (knot, slope,
// intercept) triples. A query then needs only a segment lookup plus one
// multiply-accumulate — four floating-point operations instead of 26 — and
// produces exactly the arithmetic against which the error bounds were
// computed, so query correctness is preserved without quantization.
package rqrmi

import (
	"fmt"
	"math"

	"neurolpm/internal/keys"
)

// Index is the sorted array the model learns: Low(i) are strictly
// increasing lower bounds with Low(0) equal to the domain minimum. Both the
// range array and the bucket directory satisfy it.
type Index interface {
	Len() int
	Low(i int) keys.Value
}

// Find returns the index of the entry containing k: the greatest i with
// Low(i) ≤ k. It is the training-time oracle for target indexes.
func Find(ix Index, k keys.Value) int {
	idx, _ := keys.BoundedSearch(k, 0, ix.Len()-1, ix.Low)
	return idx
}

// LUT is one compiled submodel: a piecewise-linear function over the unit
// input u. Segment s covers (Knots[s-1], Knots[s]] with value A[s]·u + B[s];
// Knots has len(A)−1 interior knots in ascending order.
//
// Err is the submodel's prediction error bound, valid for every input the
// model routes to this submodel (final stage only; zero for internal
// stages).
type LUT struct {
	Knots []float32
	A, B  []float32
	Err   int32
}

// Eval computes the piecewise-linear value at u using the same float32
// multiply-accumulate the hardware performs.
func (l *LUT) Eval(u float32) float32 {
	s := 0
	for s < len(l.Knots) && u > l.Knots[s] {
		s++
	}
	return l.A[s]*u + l.B[s]
}

// Segments returns the number of linear segments.
func (l *LUT) Segments() int { return len(l.A) }

// SizeBytes is the parameter-buffer footprint of the submodel: one float32
// per knot plus two per segment, plus the 4-byte error bound.
func (l *LUT) SizeBytes() int {
	return 4*len(l.Knots) + 8*len(l.A) + 4
}

// constLUT builds a single-segment LUT with constant value v (used for
// submodels with empty responsibility).
func constLUT(v float32) LUT {
	return LUT{A: []float32{0}, B: []float32{v}}
}

// Model is a trained RQRMI model over an Index of N entries in a width-bit
// key domain.
type Model struct {
	Width  int
	N      int
	Stages [][]LUT // Stages[s][j]; len(Stages[0]) == 1
}

// Prediction is the result of RQRMI inference for one key.
type Prediction struct {
	Index    int // estimated index into the learned Index
	Err      int // error bound: the true index lies in [Index−Err, Index+Err]
	Submodel int // final-stage submodel used (for stats / hwsim)
}

// scaleClamp maps a submodel output y to an integer slot in [0, n).
// The float32 arithmetic here is part of the "inference contract": error
// bounds are computed by running this exact code.
func scaleClamp(y float32, n int) int {
	if !(y > 0) { // catches y ≤ 0 and NaN
		return 0
	}
	if y >= 1 {
		return n - 1
	}
	i := int(y * float32(n))
	if i >= n { // guard float32 rounding at the top edge
		i = n - 1
	}
	return i
}

// unitOf maps a key to the model's float32 input coordinate.
func unitOf(width int, k keys.Value) float32 {
	return float32(keys.NewDomain(width).ToUnit(k))
}

// Predict runs full RQRMI inference for key k.
func (m *Model) Predict(k keys.Value) Prediction {
	u := unitOf(m.Width, k)
	cur := 0
	last := len(m.Stages) - 1
	for s := 0; ; s++ {
		lut := &m.Stages[s][cur]
		y := lut.Eval(u)
		if s == last {
			return Prediction{
				Index:    scaleClamp(y, m.N),
				Err:      int(lut.Err),
				Submodel: cur,
			}
		}
		cur = scaleClamp(y, len(m.Stages[s+1]))
	}
}

// Lookup performs the complete query against the learned Index: inference
// followed by the bounded secondary search. It returns the true index of
// the entry containing k and the number of index probes the binary search
// made.
func (m *Model) Lookup(ix Index, k keys.Value) (idx, probes int) {
	return m.Search(ix, k, m.Predict(k))
}

// Search runs the bounded secondary search for k given its prediction p
// (which must come from Predict on the same key). Splitting inference from
// the search lets callers that need the Prediction — the engine's
// instrumented lookup, the hardware simulator — run inference exactly once.
func (m *Model) Search(ix Index, k keys.Value, p Prediction) (idx, probes int) {
	lo, hi := p.Index-p.Err, p.Index+p.Err
	if lo < 0 {
		lo = 0
	}
	if hi > ix.Len()-1 {
		hi = ix.Len() - 1
	}
	return keys.BoundedSearch(k, lo, hi, ix.Low)
}

// Validate checks structural invariants: stage widths, knot ordering, and
// segment-count limits (≤ 9 segments for an 8-neuron hidden layer, §5.2.2).
func (m *Model) Validate() error {
	if len(m.Stages) == 0 {
		return fmt.Errorf("rqrmi: model has no stages")
	}
	if len(m.Stages[0]) != 1 {
		return fmt.Errorf("rqrmi: stage 0 must have exactly one submodel, has %d", len(m.Stages[0]))
	}
	if m.N <= 0 {
		return fmt.Errorf("rqrmi: invalid N=%d", m.N)
	}
	for s, stage := range m.Stages {
		if len(stage) == 0 {
			return fmt.Errorf("rqrmi: stage %d is empty", s)
		}
		for j := range stage {
			l := &stage[j]
			if len(l.A) == 0 || len(l.A) != len(l.B) || len(l.Knots) != len(l.A)-1 {
				return fmt.Errorf("rqrmi: stage %d submodel %d: inconsistent LUT shape", s, j)
			}
			if len(l.A) > MaxSegments {
				return fmt.Errorf("rqrmi: stage %d submodel %d: %d segments exceeds %d", s, j, len(l.A), MaxSegments)
			}
			for i := 1; i < len(l.Knots); i++ {
				if !(l.Knots[i-1] <= l.Knots[i]) {
					return fmt.Errorf("rqrmi: stage %d submodel %d: knots out of order", s, j)
				}
			}
			for i := range l.A {
				if math.IsNaN(float64(l.A[i])) || math.IsNaN(float64(l.B[i])) {
					return fmt.Errorf("rqrmi: stage %d submodel %d: NaN coefficient", s, j)
				}
			}
			if l.Err < 0 {
				return fmt.Errorf("rqrmi: stage %d submodel %d: negative error bound", s, j)
			}
		}
	}
	return nil
}

// MaxSegments is the segment limit per submodel: 8 hidden ReLUs yield at
// most 9 linear segments.
const MaxSegments = 9

// SizeBytes returns the total parameter footprint of the model — the
// quantity the paper reports as 8KB for the 1/4/64 configuration.
func (m *Model) SizeBytes() int {
	total := 0
	for _, stage := range m.Stages {
		for j := range stage {
			total += stage[j].SizeBytes()
		}
	}
	return total
}

// MaxErr returns the largest final-stage error bound.
func (m *Model) MaxErr() int {
	max := 0
	for j := range m.Stages[len(m.Stages)-1] {
		if e := int(m.Stages[len(m.Stages)-1][j].Err); e > max {
			max = e
		}
	}
	return max
}

// StageWidths returns the number of submodels per stage.
func (m *Model) StageWidths() []int {
	w := make([]int, len(m.Stages))
	for i, s := range m.Stages {
		w[i] = len(s)
	}
	return w
}
