package rqrmi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
)

// sliceIndex is a test Index over explicit lower bounds.
type sliceIndex struct {
	lows []keys.Value
}

func (s *sliceIndex) Len() int             { return len(s.lows) }
func (s *sliceIndex) Low(i int) keys.Value { return s.lows[i] }

// uniformIndex builds n entries spread evenly across a width-bit domain.
func uniformIndex(width, n int) *sliceIndex {
	dom := keys.NewDomain(width)
	lows := make([]keys.Value, n)
	for i := 1; i < n; i++ {
		lows[i] = dom.FromUnit(float64(i) / float64(n))
	}
	return &sliceIndex{lows: dedupe(lows)}
}

// skewedIndex builds n entries clustered in a few hot regions, mimicking the
// clustered low bounds of real forwarding tables.
func skewedIndex(rng *rand.Rand, width, n int) *sliceIndex {
	dom := keys.NewDomain(width)
	centers := []float64{0.1, 0.35, 0.71, 0.92}
	lowSet := map[keys.Value]bool{{}: true}
	for len(lowSet) < n {
		c := centers[rng.Intn(len(centers))]
		u := c + rng.NormFloat64()*0.02
		if u <= 0 || u >= 1 {
			continue
		}
		lowSet[dom.FromUnit(u)] = true
	}
	lows := make([]keys.Value, 0, len(lowSet))
	for v := range lowSet {
		lows = append(lows, v)
	}
	sortValues(lows)
	return &sliceIndex{lows: lows}
}

func sortValues(v []keys.Value) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j].Less(v[j-1]); j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func dedupe(v []keys.Value) []keys.Value {
	out := v[:1]
	for _, x := range v[1:] {
		if out[len(out)-1].Less(x) {
			out = append(out, x)
		}
	}
	return out
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Samples = 512
	cfg.Epochs = 20
	cfg.StageWidths = []int{1, 2, 8}
	cfg.MaxRounds = 2
	return cfg
}

func TestFind(t *testing.T) {
	ix := &sliceIndex{lows: []keys.Value{
		keys.FromUint64(0), keys.FromUint64(10), keys.FromUint64(20),
	}}
	cases := map[uint64]int{0: 0, 5: 0, 10: 1, 19: 1, 20: 2, 1000: 2}
	for k, want := range cases {
		if got := Find(ix, keys.FromUint64(k)); got != want {
			t.Errorf("Find(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestLUTEval(t *testing.T) {
	l := LUT{
		Knots: []float32{0.5},
		A:     []float32{1, 2},
		B:     []float32{0, -0.5},
	}
	if got := l.Eval(0.25); got != 0.25 {
		t.Errorf("Eval(0.25) = %g", got)
	}
	if got := l.Eval(0.5); got != 0.5 { // boundary belongs to left segment
		t.Errorf("Eval(0.5) = %g", got)
	}
	if got := l.Eval(0.75); got != 1.0 {
		t.Errorf("Eval(0.75) = %g", got)
	}
}

func TestScaleClamp(t *testing.T) {
	cases := []struct {
		y    float32
		n    int
		want int
	}{
		{-0.5, 10, 0},
		{0, 10, 0},
		{float32(math.NaN()), 10, 0},
		{0.05, 10, 0},
		{0.15, 10, 1},
		{0.999999, 10, 9},
		{1, 10, 9},
		{5, 10, 9},
	}
	for _, c := range cases {
		if got := scaleClamp(c.y, c.n); got != c.want {
			t.Errorf("scaleClamp(%g,%d) = %d, want %d", c.y, c.n, got, c.want)
		}
	}
}

// TestCompileMatchesForward is the §5.2.2 equivalence: the compiled LUT must
// reproduce the MLP output (up to float32 storage of the coefficients).
func TestCompileMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m := newMLP(0, 1, rng)
		// Randomize beyond the near-identity init.
		for k := 0; k < hiddenUnits; k++ {
			m.w1[k] = rng.NormFloat64() * 3
			m.b1[k] = rng.NormFloat64()
			m.w2[k] = rng.NormFloat64()
		}
		m.b2 = rng.NormFloat64()
		lut := m.compile()
		if lut.Segments() > MaxSegments {
			t.Fatalf("%d segments", lut.Segments())
		}
		for q := 0; q < 200; q++ {
			u := rng.Float64()
			want := m.forward(u, nil)
			got := float64(lut.Eval(float32(u)))
			// float32 coefficient storage bounds the discrepancy.
			tol := 1e-5 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("trial %d u=%g: lut %g vs mlp %g", trial, u, got, want)
			}
		}
	}
}

func TestCompileSegmentCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := newMLP(0, 1, rng)
	lut := m.compile()
	if lut.Segments() < 1 || lut.Segments() > MaxSegments {
		t.Fatalf("segments = %d", lut.Segments())
	}
	if len(lut.Knots) != lut.Segments()-1 {
		t.Fatalf("knots = %d for %d segments", len(lut.Knots), lut.Segments())
	}
}

func TestMLPTrainsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := newMLP(0, 1, rng)
	var samples []sample
	for i := 0; i < 512; i++ {
		u := rng.Float64()
		samples = append(samples, sample{u: u, target: 0.2 + 0.6*u})
	}
	loss := m.train(samples, trainParams{epochs: 40, batchSize: 32, lr: 0.2, momentum: 0.9}, rng)
	if loss > 1e-3 {
		t.Fatalf("failed to fit a line: loss %g", loss)
	}
}

func TestSplitAtKnotsCoversInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	width := 24
	dom := keys.NewDomain(width)
	for trial := 0; trial < 30; trial++ {
		m := newMLP(0, 1, rng)
		for k := 0; k < hiddenUnits; k++ {
			m.w1[k] = rng.NormFloat64() * 2
			m.b1[k] = rng.NormFloat64() * 0.5
		}
		lut := m.compile()
		iv := interval{Lo: keys.Value{}, Hi: dom.Max()}
		pieces := splitAtKnots(width, &lut, iv)
		if pieces[0].Lo != iv.Lo || pieces[len(pieces)-1].Hi != iv.Hi {
			t.Fatalf("pieces do not span interval: %+v", pieces)
		}
		for i := range pieces {
			if pieces[i].Hi.Less(pieces[i].Lo) {
				t.Fatalf("piece %d inverted: %+v", i, pieces[i])
			}
			if i > 0 && pieces[i-1].Hi.Inc() != pieces[i].Lo {
				t.Fatalf("gap between pieces %d and %d", i-1, i)
			}
		}
	}
}

func TestPartitionAgreesWithRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	width := 20
	dom := keys.NewDomain(width)
	for trial := 0; trial < 20; trial++ {
		m := newMLP(0, 1, rng)
		for k := 0; k < hiddenUnits; k++ {
			m.w1[k] = rng.NormFloat64() * 2
			m.w2[k] = rng.NormFloat64() * 0.5
		}
		lut := m.compile()
		n := 8
		parts := partition(width, &lut, n, []interval{{Lo: keys.Value{}, Hi: dom.Max()}})
		// Every sampled key must land in the part it routes to.
		for q := 0; q < 500; q++ {
			k := keys.FromUint64(rng.Uint64() & (1<<20 - 1))
			want := scaleClamp(lut.Eval(unitOf(width, k)), n)
			found := -1
			for slot, ivs := range parts {
				for _, iv := range ivs {
					if !k.Less(iv.Lo) && !iv.Hi.Less(k) {
						found = slot
					}
				}
			}
			if found != want {
				t.Fatalf("key %v in part %d, routes to %d", k, found, want)
			}
		}
		// Parts must tile the domain exactly.
		total := 0.0
		for _, ivs := range parts {
			for _, iv := range ivs {
				total += iv.Hi.Sub(iv.Lo).Float64() + 1
			}
		}
		if want := math.Ldexp(1, width); total != want {
			t.Fatalf("parts cover %g keys, want %g", total, want)
		}
	}
}

// TestErrorBoundSound is the core soundness property: on a small domain the
// analytically computed bound must dominate the true error at EVERY key.
func TestErrorBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	width := 12
	dom := keys.NewDomain(width)
	for trial := 0; trial < 15; trial++ {
		ix := skewedIndex(rng, width, 40)
		m := newMLP(0, 1, rng)
		// Train roughly so the bound is non-trivial.
		var samples []sample
		for i := 0; i < 400; i++ {
			k := keys.FromUint64(uint64(rng.Intn(1 << width)))
			samples = append(samples, sample{
				u:      dom.ToUnit(k),
				target: (float64(Find(ix, k)) + 0.5) / float64(ix.Len()),
			})
		}
		m.train(samples, trainParams{epochs: 15, batchSize: 32, lr: 0.2, momentum: 0.9}, rng)
		lut := m.compile()
		ivs := []interval{{Lo: keys.Value{}, Hi: dom.Max()}}
		bound := int(errorBound(width, &lut, ix, ivs))

		worst := 0
		for k := uint64(0); k < 1<<width; k++ {
			key := keys.FromUint64(k)
			p := scaleClamp(lut.Eval(unitOf(width, key)), ix.Len())
			d := p - Find(ix, key)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if worst > bound {
			t.Fatalf("trial %d: true max error %d exceeds bound %d", trial, worst, bound)
		}
		if bound > worst {
			// The analysis is exact, not just sound.
			t.Fatalf("trial %d: bound %d exceeds true max error %d (not tight)", trial, bound, worst)
		}
	}
}

func TestTrainUniform(t *testing.T) {
	ix := uniformIndex(32, 1000)
	m, stats, err := Train(ix, 32, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Duration <= 0 {
		t.Error("no duration recorded")
	}
	assertLookupsCorrect(t, m, ix, 32, 3000)
}

func TestTrainSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ix := skewedIndex(rng, 32, 2000)
	m, _, err := Train(ix, 32, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertLookupsCorrect(t, m, ix, 32, 3000)
}

func TestTrainExhaustiveSmallDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	ix := skewedIndex(rng, 14, 120)
	m, _, err := Train(ix, 14, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1<<14; k++ {
		key := keys.FromUint64(k)
		idx, _ := m.Lookup(ix, key)
		if want := Find(ix, key); idx != want {
			t.Fatalf("key %d: lookup %d, want %d", k, idx, want)
		}
	}
}

func TestTrain128Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dom := keys.NewDomain(128)
	lowSet := map[keys.Value]bool{{}: true}
	for len(lowSet) < 300 {
		lowSet[dom.FromUnit(rng.Float64())] = true
	}
	lows := make([]keys.Value, 0, len(lowSet))
	for v := range lowSet {
		lows = append(lows, v)
	}
	sortValues(lows)
	ix := &sliceIndex{lows: lows}
	m, _, err := Train(ix, 128, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	assertLookupsCorrect(t, m, ix, 128, 2000)
}

func assertLookupsCorrect(t *testing.T, m *Model, ix Index, width, queries int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	dom := keys.NewDomain(width)
	check := func(k keys.Value) {
		idx, probes := m.Lookup(ix, k)
		if want := Find(ix, k); idx != want {
			t.Fatalf("key %v: lookup %d, want %d", k, idx, want)
		}
		if probes > 2+bitsFor(2*m.MaxErr()+1) {
			t.Fatalf("key %v: %d probes exceed bound for err %d", k, probes, m.MaxErr())
		}
	}
	for q := 0; q < queries; q++ {
		check(dom.FromUnit(rng.Float64()))
	}
	// Boundaries are the adversarial inputs.
	for i := 0; i < ix.Len(); i++ {
		check(ix.Low(i))
		if !ix.Low(i).IsZero() {
			check(ix.Low(i).Dec())
		}
	}
	check(dom.Max())
}

func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b + 1
}

func TestVerifyTrainedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ix := skewedIndex(rng, 24, 500)
	m, _, err := Train(ix, 24, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ok, witness := m.Verify(ix); !ok {
		t.Fatalf("Verify failed at key %v", witness)
	}
}

func TestVerifyDetectsCorruptBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ix := skewedIndex(rng, 20, 400)
	m, _, err := Train(ix, 20, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: zero out all final-stage error bounds.
	last := len(m.Stages) - 1
	sabotaged := false
	for j := range m.Stages[last] {
		if m.Stages[last][j].Err > 0 {
			m.Stages[last][j].Err = 0
			sabotaged = true
		}
	}
	if !sabotaged {
		t.Skip("model trained to zero error; nothing to sabotage")
	}
	if ok, _ := m.Verify(ix); ok {
		t.Fatal("Verify accepted corrupted bounds")
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	ix := uniformIndex(16, 100)
	bad := []Config{
		{},
		{StageWidths: []int{2, 4}, Samples: 512, Epochs: 10, LearningRate: 0.1},
		{StageWidths: []int{1, 0}, Samples: 512, Epochs: 10, LearningRate: 0.1},
		{StageWidths: []int{1, 4}, Samples: 1, Epochs: 10, LearningRate: 0.1},
		{StageWidths: []int{1, 4}, Samples: 512, Epochs: 0, LearningRate: 0.1},
	}
	for i, cfg := range bad {
		if _, _, err := Train(ix, 16, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTrainEmptyIndex(t *testing.T) {
	if _, _, err := Train(&sliceIndex{}, 16, quickConfig()); err == nil {
		t.Fatal("empty index accepted")
	}
}

func TestTrainSingleEntry(t *testing.T) {
	ix := &sliceIndex{lows: []keys.Value{{}}}
	m, _, err := Train(ix, 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := m.Lookup(ix, keys.FromUint64(12345))
	if idx != 0 {
		t.Fatalf("lookup = %d", idx)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ix := uniformIndex(24, 300)
	cfg := quickConfig()
	cfg.Workers = 1
	m1, _, err := Train(ix, 24, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(ix, 24, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if _, err := m1.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("training is not deterministic for a fixed seed")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ix := skewedIndex(rng, 24, 300)
	m, _, err := Train(ix, 24, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != m.Width || got.N != m.N {
		t.Fatalf("header mismatch: %d/%d vs %d/%d", got.Width, got.N, m.Width, m.N)
	}
	// Identical predictions on a sample.
	for q := 0; q < 500; q++ {
		k := keys.FromUint64(uint64(rng.Intn(1 << 24)))
		if m.Predict(k) != got.Predict(k) {
			t.Fatalf("prediction mismatch at %v", k)
		}
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXXXX"),
		append([]byte("RQRMI1"), 0, 0), // truncated
	}
	for i, b := range cases {
		if _, err := ReadModel(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestModelValidate(t *testing.T) {
	bad := []*Model{
		{},
		{N: 10, Stages: [][]LUT{{constLUT(0), constLUT(0)}}},                    // stage0 width 2
		{N: 0, Stages: [][]LUT{{constLUT(0)}}},                                  // N=0
		{N: 10, Stages: [][]LUT{{{A: []float32{1}, B: nil}}}},                   // shape
		{N: 10, Stages: [][]LUT{{{A: []float32{1}, B: []float32{1}, Err: -1}}}}, // negative err
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

func TestSizeBytesSmall(t *testing.T) {
	// The paper's 1/4/64 model is ~8KB; our LUT encoding must stay in that
	// ballpark (69 submodels × ≤9 segments × 12B ≈ 7.5KB max).
	ix := uniformIndex(32, 5000)
	cfg := quickConfig()
	cfg.StageWidths = []int{1, 4, 64}
	m, _, err := Train(ix, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.SizeBytes() > 10*1024 {
		t.Fatalf("model size %d bytes exceeds 10KB", m.SizeBytes())
	}
}

func TestPredictionSubmodelInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ix := skewedIndex(rng, 20, 200)
	m, _, err := Train(ix, 20, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		p := m.Predict(keys.FromUint64(uint64(rng.Intn(1 << 20))))
		if p.Submodel < 0 || p.Submodel >= len(m.Stages[len(m.Stages)-1]) {
			t.Fatalf("submodel %d out of range", p.Submodel)
		}
		if p.Index < 0 || p.Index >= ix.Len() {
			t.Fatalf("index %d out of range", p.Index)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	ix := uniformIndex(32, 100000)
	m, _, err := Train(ix, 32, quickConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(qs[i&1023])
	}
}

func BenchmarkLookup(b *testing.B) {
	ix := uniformIndex(32, 100000)
	m, _, err := Train(ix, 32, quickConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(ix, qs[i&1023])
	}
}

func BenchmarkTrain10K(b *testing.B) {
	ix := uniformIndex(32, 10000)
	cfg := quickConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Train(ix, 32, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The §5.2.2 inference ablation: the compiled LUT replaces the 26-FP-op MLP
// evaluation with a segment lookup plus one MAC. These two benchmarks
// compare the software cost of both paths on the same trained submodel.
func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := newMLP(0, 1, rng)
	var samples []sample
	for i := 0; i < 256; i++ {
		u := rng.Float64()
		samples = append(samples, sample{u: u, target: u * u})
	}
	m.train(samples, trainParams{epochs: 10, batchSize: 32, lr: 0.2, momentum: 0.9}, rng)
	us := make([]float64, 1024)
	for i := range us {
		us[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.forward(us[i&1023], nil)
	}
}

func BenchmarkLUTEval(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := newMLP(0, 1, rng)
	var samples []sample
	for i := 0; i < 256; i++ {
		u := rng.Float64()
		samples = append(samples, sample{u: u, target: u * u})
	}
	m.train(samples, trainParams{epochs: 10, batchSize: 32, lr: 0.2, momentum: 0.9}, rng)
	lut := m.compile()
	us := make([]float32, 1024)
	for i := range us {
		us[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lut.Eval(us[i&1023])
	}
}
