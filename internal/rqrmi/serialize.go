package rqrmi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Serialization format (little endian):
//
//	magic   [6]byte "RQRMI1"
//	width   uint16
//	n       uint64
//	stages  uint16
//	per stage: width uint32
//	per submodel (stage-major order):
//	    segments uint16
//	    knots    [segments-1]float32
//	    a, b     [segments]float32 each
//	    err      int32
var magic = [6]byte{'R', 'Q', 'R', 'M', 'I', '1'}

// WriteTo serializes the model.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if err := write(magic); err != nil {
		return cw.n, err
	}
	if err := write(uint16(m.Width)); err != nil {
		return cw.n, err
	}
	if err := write(uint64(m.N)); err != nil {
		return cw.n, err
	}
	if err := write(uint16(len(m.Stages))); err != nil {
		return cw.n, err
	}
	for _, stage := range m.Stages {
		if err := write(uint32(len(stage))); err != nil {
			return cw.n, err
		}
	}
	for _, stage := range m.Stages {
		for j := range stage {
			l := &stage[j]
			if err := write(uint16(len(l.A))); err != nil {
				return cw.n, err
			}
			for _, v := range l.Knots {
				if err := write(v); err != nil {
					return cw.n, err
				}
			}
			for _, v := range l.A {
				if err := write(v); err != nil {
					return cw.n, err
				}
			}
			for _, v := range l.B {
				if err := write(v); err != nil {
					return cw.n, err
				}
			}
			if err := write(l.Err); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, bw.Flush()
}

// ReadModel deserializes a model written by WriteTo and validates it.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var got [6]byte
	if err := read(&got); err != nil {
		return nil, fmt.Errorf("rqrmi: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("rqrmi: bad magic %q", got)
	}
	var width uint16
	var n uint64
	var stages uint16
	if err := read(&width); err != nil {
		return nil, err
	}
	if err := read(&n); err != nil {
		return nil, err
	}
	if err := read(&stages); err != nil {
		return nil, err
	}
	if width == 0 || width > 128 {
		return nil, fmt.Errorf("rqrmi: invalid width %d", width)
	}
	if stages == 0 || stages > 16 {
		return nil, fmt.Errorf("rqrmi: invalid stage count %d", stages)
	}
	if n == 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("rqrmi: invalid index size %d", n)
	}
	m := &Model{Width: int(width), N: int(n), Stages: make([][]LUT, stages)}
	for s := range m.Stages {
		var w uint32
		if err := read(&w); err != nil {
			return nil, err
		}
		if w == 0 || w > 1<<20 {
			return nil, fmt.Errorf("rqrmi: invalid stage width %d", w)
		}
		m.Stages[s] = make([]LUT, w)
	}
	for s := range m.Stages {
		for j := range m.Stages[s] {
			var segs uint16
			if err := read(&segs); err != nil {
				return nil, err
			}
			if segs == 0 || int(segs) > MaxSegments {
				return nil, fmt.Errorf("rqrmi: invalid segment count %d", segs)
			}
			l := LUT{
				Knots: make([]float32, segs-1),
				A:     make([]float32, segs),
				B:     make([]float32, segs),
			}
			for i := range l.Knots {
				if err := read(&l.Knots[i]); err != nil {
					return nil, err
				}
			}
			for i := range l.A {
				if err := read(&l.A[i]); err != nil {
					return nil, err
				}
			}
			for i := range l.B {
				if err := read(&l.B[i]); err != nil {
					return nil, err
				}
			}
			if err := read(&l.Err); err != nil {
				return nil, err
			}
			m.Stages[s][j] = l
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
