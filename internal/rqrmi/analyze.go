package rqrmi

import (
	"neurolpm/internal/keys"
)

// This file implements the analytical machinery that makes RQRMI queries
// provably correct (paper §5.2): because every compiled submodel is
// piecewise-linear with at most nine segments, both the routing performed by
// internal stages and the prediction error of final-stage submodels can be
// computed *exactly*, for every possible input, by examining only segment
// knots and range boundaries — no sweep over the input domain is needed.
//
// All evaluations below run the same float32 LUT arithmetic as query-time
// inference (LUT.Eval + scaleClamp), so the derived responsibilities and
// error bounds hold for the deployed engine bit-for-bit.

// interval is an inclusive key interval [Lo, Hi].
type interval struct {
	Lo, Hi keys.Value
}

// splitAtKnots partitions [iv.Lo, iv.Hi] into sub-intervals that each map
// into a single linear segment of the LUT. The split points are the largest
// keys whose unit coordinate does not exceed each knot — exactly the
// boundary LUT.Eval uses (u > knot advances to the next segment).
func splitAtKnots(width int, l *LUT, iv interval) []interval {
	pieces := make([]interval, 0, len(l.Knots)+1)
	lo := iv.Lo
	for _, kn := range l.Knots {
		if unitOf(width, iv.Hi) <= kn {
			break // the rest of the interval is below this knot
		}
		if unitOf(width, lo) > kn {
			continue // this knot is below the remaining interval
		}
		// Largest key in [lo, iv.Hi] with u(key) ≤ kn. u is monotone
		// non-decreasing, so this is a plain binary search.
		a, b := lo, iv.Hi
		for a.Less(b) {
			mid := a.Mid(b).Inc() // upper mid so the loop converges upward
			if unitOf(width, mid) <= kn {
				a = mid
			} else {
				b = mid.Dec()
			}
		}
		pieces = append(pieces, interval{Lo: lo, Hi: a})
		lo = a.Inc()
	}
	pieces = append(pieces, interval{Lo: lo, Hi: iv.Hi})
	return pieces
}

// partition splits the given responsibility intervals of a submodel by the
// slot its output routes to (slot = scaleClamp(Eval(u), n)) and returns the
// intervals owned by each of the n next-stage submodels. Within a linear
// segment the routing function is monotone, so every transition is located
// with a key-space binary search against the real inference arithmetic.
func partition(width int, l *LUT, n int, ivs []interval) [][]interval {
	out := make([][]interval, n)
	route := func(k keys.Value) int {
		return scaleClamp(l.Eval(unitOf(width, k)), n)
	}
	assign := func(slot int, iv interval) {
		// Merge with the previous interval when contiguous.
		if m := len(out[slot]); m > 0 && out[slot][m-1].Hi.Inc() == iv.Lo {
			out[slot][m-1].Hi = iv.Hi
			return
		}
		out[slot] = append(out[slot], iv)
	}
	for _, iv := range ivs {
		for _, piece := range splitAtKnots(width, l, iv) {
			a := piece.Lo
			rA := route(a)
			for {
				rB := route(piece.Hi)
				if rA == rB {
					assign(rA, interval{Lo: a, Hi: piece.Hi})
					break
				}
				// Monotone on the piece: find the largest key still
				// routed to rA.
				lo, hi := a, piece.Hi
				ascending := rB > rA
				for lo.Less(hi) {
					mid := lo.Mid(hi).Inc()
					r := route(mid)
					same := r == rA
					if !same && ((ascending && r < rA) || (!ascending && r > rA)) {
						same = true // float plateaus cannot occur, but stay safe
					}
					if same {
						lo = mid
					} else {
						hi = mid.Dec()
					}
				}
				assign(rA, interval{Lo: a, Hi: lo})
				a = lo.Inc()
				rA = route(a)
			}
		}
	}
	return out
}

// errorBound computes the exact maximum of |prediction − true index| over
// every key in the submodel's responsibility. Within one linear segment the
// prediction is monotone while the true index is a step function changing
// only at entry lower bounds, so the maximum over each (segment ∩ entry)
// piece is attained at its two endpoints.
func errorBound(width int, l *LUT, ix Index, ivs []interval) int32 {
	n := ix.Len()
	pred := func(k keys.Value) int {
		return scaleClamp(l.Eval(unitOf(width, k)), n)
	}
	maxErr := 0
	note := func(k keys.Value, truth int) {
		d := pred(k) - truth
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	for _, iv := range ivs {
		for _, piece := range splitAtKnots(width, l, iv) {
			r := Find(ix, piece.Lo)
			start := piece.Lo
			for {
				end := piece.Hi
				if r+1 < n && !piece.Hi.Less(ix.Low(r+1)) {
					end = ix.Low(r + 1).Dec()
				}
				note(start, r)
				note(end, r)
				if end == piece.Hi {
					break
				}
				start = ix.Low(r + 1)
				r++
			}
		}
	}
	return int32(maxErr)
}

// Verify exhaustively re-checks the model's error bounds against the index
// at every entry boundary and both endpoints of every final-stage
// responsibility piece, returning false with a witness key on violation.
// It recomputes responsibilities from the stored LUTs, so it validates the
// whole inference chain, not just the stored Err values.
func (m *Model) Verify(ix Index) (ok bool, witness keys.Value) {
	width := m.Width
	dom := keys.NewDomain(width)
	resp := []interval{{Lo: keys.Value{}, Hi: dom.Max()}}
	stageResp := [][]interval{resp}
	for s := 0; s < len(m.Stages)-1; s++ {
		next := make([][]interval, len(m.Stages[s+1]))
		for j, ivs := range stageResp {
			if len(ivs) == 0 {
				continue
			}
			parts := partition(width, &m.Stages[s][j], len(m.Stages[s+1]), ivs)
			for t := range parts {
				next[t] = append(next[t], parts[t]...)
			}
		}
		stageResp = next
	}
	last := len(m.Stages) - 1
	for j := range m.Stages[last] {
		l := &m.Stages[last][j]
		check := func(k keys.Value) bool {
			truth := Find(ix, k)
			p := scaleClamp(l.Eval(unitOf(width, k)), ix.Len())
			d := p - truth
			if d < 0 {
				d = -d
			}
			return d <= int(l.Err)
		}
		for _, iv := range stageResp[j] {
			for _, piece := range splitAtKnots(width, l, iv) {
				r := Find(ix, piece.Lo)
				start := piece.Lo
				for {
					end := piece.Hi
					if r+1 < ix.Len() && !piece.Hi.Less(ix.Low(r+1)) {
						end = ix.Low(r + 1).Dec()
					}
					if !check(start) {
						return false, start
					}
					if !check(end) {
						return false, end
					}
					if end == piece.Hi {
						break
					}
					start = ix.Low(r + 1)
					r++
				}
			}
		}
	}
	return true, keys.Value{}
}
