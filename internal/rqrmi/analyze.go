package rqrmi

import (
	"neurolpm/internal/keys"
)

// This file implements the analytical machinery that makes RQRMI queries
// provably correct (paper §5.2): because every compiled submodel is
// piecewise-linear with at most nine segments, both the routing performed by
// internal stages and the prediction error of final-stage submodels can be
// computed *exactly*, for every possible input, by examining only segment
// knots and range boundaries — no sweep over the input domain is needed.
//
// All evaluations below run the same arithmetic as query-time inference —
// float32 (LUT.Eval + scaleClamp) for the reference/compiled planes,
// int32 fixed-point (Quantized.eval + clampStage) for the quantized plane —
// so the derived responsibilities and error bounds hold for the deployed
// engine bit-for-bit. The traversal logic (knot splitting, monotone
// transition search, endpoint maximization) is shared via partitionBy /
// errorBoundBy; only the split and evaluate closures differ per plane.

// interval is an inclusive key interval [Lo, Hi].
type interval struct {
	Lo, Hi keys.Value
}

// splitAtKnots partitions [iv.Lo, iv.Hi] into sub-intervals that each map
// into a single linear segment of the LUT. The split points are the largest
// keys whose unit coordinate does not exceed each knot — exactly the
// boundary LUT.Eval uses (u > knot advances to the next segment).
func splitAtKnots(width int, l *LUT, iv interval) []interval {
	pieces := make([]interval, 0, len(l.Knots)+1)
	lo := iv.Lo
	for _, kn := range l.Knots {
		if unitOf(width, iv.Hi) <= kn {
			break // the rest of the interval is below this knot
		}
		if unitOf(width, lo) > kn {
			continue // this knot is below the remaining interval
		}
		// Largest key in [lo, iv.Hi] with u(key) ≤ kn. u is monotone
		// non-decreasing, so this is a plain binary search.
		a, b := lo, iv.Hi
		for a.Less(b) {
			mid := a.Mid(b).Inc() // upper mid so the loop converges upward
			if unitOf(width, mid) <= kn {
				a = mid
			} else {
				b = mid.Dec()
			}
		}
		pieces = append(pieces, interval{Lo: lo, Hi: a})
		lo = a.Inc()
	}
	pieces = append(pieces, interval{Lo: lo, Hi: iv.Hi})
	return pieces
}

// partitionBy is the arithmetic-neutral core of responsibility routing:
// split carves an interval into pieces that each lie within one linear
// segment of whatever evaluator route wraps, and route maps a key to its
// next-stage slot. The only property required is that route is monotone
// (non-strictly — integer plateaus are fine) within each split piece; the
// transition search below tolerates plateaus by treating any overshoot
// past rA in the search direction as still-rA.
func partitionBy(split func(interval) []interval, route func(keys.Value) int, n int, ivs []interval) [][]interval {
	out := make([][]interval, n)
	assign := func(slot int, iv interval) {
		// Merge with the previous interval when contiguous.
		if m := len(out[slot]); m > 0 && out[slot][m-1].Hi.Inc() == iv.Lo {
			out[slot][m-1].Hi = iv.Hi
			return
		}
		out[slot] = append(out[slot], iv)
	}
	for _, iv := range ivs {
		for _, piece := range split(iv) {
			a := piece.Lo
			rA := route(a)
			for {
				rB := route(piece.Hi)
				if rA == rB {
					assign(rA, interval{Lo: a, Hi: piece.Hi})
					break
				}
				// Monotone on the piece: find the largest key still
				// routed to rA.
				lo, hi := a, piece.Hi
				ascending := rB > rA
				for lo.Less(hi) {
					mid := lo.Mid(hi).Inc()
					r := route(mid)
					same := r == rA
					if !same && ((ascending && r < rA) || (!ascending && r > rA)) {
						same = true // plateau safety (quantized plateaus are real)
					}
					if same {
						lo = mid
					} else {
						hi = mid.Dec()
					}
				}
				assign(rA, interval{Lo: a, Hi: lo})
				a = lo.Inc()
				rA = route(a)
			}
		}
	}
	return out
}

// partition splits the given responsibility intervals of a submodel by the
// slot its output routes to (slot = scaleClamp(Eval(u), n)) and returns the
// intervals owned by each of the n next-stage submodels, in the float32
// reference arithmetic.
func partition(width int, l *LUT, n int, ivs []interval) [][]interval {
	return partitionBy(
		func(iv interval) []interval { return splitAtKnots(width, l, iv) },
		func(k keys.Value) int { return scaleClamp(l.Eval(unitOf(width, k)), n) },
		n, ivs)
}

// errorBoundBy is the arithmetic-neutral core of the error-bound
// computation: the exact maximum of |pred − true index| over every key in
// ivs. Within one split piece pred is monotone while the true index is a
// step function changing only at entry lower bounds, so the maximum over
// each (piece ∩ entry) sub-piece is attained at its two endpoints.
func errorBoundBy(split func(interval) []interval, pred func(keys.Value) int, ix Index, ivs []interval) int32 {
	n := ix.Len()
	maxErr := 0
	note := func(k keys.Value, truth int) {
		d := pred(k) - truth
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	for _, iv := range ivs {
		for _, piece := range split(iv) {
			r := Find(ix, piece.Lo)
			start := piece.Lo
			for {
				end := piece.Hi
				if r+1 < n && !piece.Hi.Less(ix.Low(r+1)) {
					end = ix.Low(r + 1).Dec()
				}
				note(start, r)
				note(end, r)
				if end == piece.Hi {
					break
				}
				start = ix.Low(r + 1)
				r++
			}
		}
	}
	return int32(maxErr)
}

// errorBound computes the exact maximum of |prediction − true index| over
// every key in the submodel's responsibility, in the float32 reference
// arithmetic (Train stores this as LUT.Err).
func errorBound(width int, l *LUT, ix Index, ivs []interval) int32 {
	n := ix.Len()
	return errorBoundBy(
		func(iv interval) []interval { return splitAtKnots(width, l, iv) },
		func(k keys.Value) int { return scaleClamp(l.Eval(unitOf(width, k)), n) },
		ix, ivs)
}

// splitAtKnots is the quantized analogue of the float splitAtKnots: it
// partitions iv into pieces that each map into a single linear segment of
// submodel id's int16 block. Because the quantized segment select compares
// the key's top 15 bits against Q0.15 knots, each boundary — the largest
// key whose top-15-bit coordinate does not exceed the knot — is computed
// directly (no binary search): for width ≥ 15 it is (knot+1)·2^(width−15)−1,
// below 15 the knot truncated back down to the key width. The knotMax
// padding never splits anything (uh ≤ knotMax means the break fires first),
// exactly like the float plane's +Inf pads.
func (q *Quantized) splitAtKnots(id int, iv interval) []interval {
	knots := q.bank[id<<blockShift : id<<blockShift+padKnots]
	pieces := make([]interval, 0, padKnots+1)
	lo := iv.Lo
	uHi := q.unit(iv.Hi) >> (unitBits - knotBits)
	for _, kn := range knots {
		knq := int32(kn)
		if uHi <= knq {
			break // the rest of the interval is below this knot
		}
		if q.unit(lo)>>(unitBits-knotBits) > knq {
			continue // this knot is below the remaining interval
		}
		var b keys.Value
		if q.width >= knotBits {
			b = keys.FromUint64(uint64(knq) + 1).Shl(uint(q.width - knotBits)).Dec()
		} else {
			b = keys.FromUint64(uint64(knq) >> uint(knotBits-q.width))
		}
		pieces = append(pieces, interval{Lo: lo, Hi: b})
		lo = b.Inc()
	}
	pieces = append(pieces, interval{Lo: lo, Hi: iv.Hi})
	return pieces
}

// analyze recomputes every final-stage error bound in the quantized
// arithmetic: the same responsibility propagation as Model.Verify — full
// domain through partitionBy stage by stage, then errorBoundBy per final
// submodel — but with every evaluation running the deployed integer hot
// path (unit, eval, clampStage). This is the CLAUDE.md contract applied to
// the new arithmetic: bounds are only valid for the arithmetic that
// computed them, so the quantized plane carries its own.
func (q *Quantized) analyze(ix Index) {
	dom := keys.NewDomain(q.width)
	stageResp := [][]interval{{{Lo: keys.Value{}, Hi: dom.Max()}}}
	last := len(q.stages) - 1
	for s := 0; s < last; s++ {
		st := &q.stages[s]
		n := int(q.stages[s+1].width)
		next := make([][]interval, n)
		for j, ivs := range stageResp {
			if len(ivs) == 0 {
				continue
			}
			id := int(st.base) + j
			parts := partitionBy(
				func(iv interval) []interval { return q.splitAtKnots(id, iv) },
				func(k keys.Value) int { return clampStage(st, q.eval(st, id, q.unit(k)), n) },
				n, ivs)
			for t := range parts {
				next[t] = append(next[t], parts[t]...)
			}
		}
		stageResp = next
	}
	st := &q.stages[last]
	for j := 0; j < int(st.width); j++ {
		id := int(st.base) + j
		if len(stageResp[j]) == 0 {
			q.errs[id] = 0 // unreachable submodel: no key routes here
			continue
		}
		q.errs[id] = errorBoundBy(
			func(iv interval) []interval { return q.splitAtKnots(id, iv) },
			func(k keys.Value) int { return clampStage(st, q.eval(st, id, q.unit(k)), q.n) },
			ix, stageResp[j])
	}
}

// Verify exhaustively re-checks the model's error bounds against the index
// at every entry boundary and both endpoints of every final-stage
// responsibility piece, returning false with a witness key on violation.
// It recomputes responsibilities from the stored LUTs, so it validates the
// whole inference chain, not just the stored Err values.
func (m *Model) Verify(ix Index) (ok bool, witness keys.Value) {
	width := m.Width
	dom := keys.NewDomain(width)
	resp := []interval{{Lo: keys.Value{}, Hi: dom.Max()}}
	stageResp := [][]interval{resp}
	for s := 0; s < len(m.Stages)-1; s++ {
		next := make([][]interval, len(m.Stages[s+1]))
		for j, ivs := range stageResp {
			if len(ivs) == 0 {
				continue
			}
			parts := partition(width, &m.Stages[s][j], len(m.Stages[s+1]), ivs)
			for t := range parts {
				next[t] = append(next[t], parts[t]...)
			}
		}
		stageResp = next
	}
	last := len(m.Stages) - 1
	for j := range m.Stages[last] {
		l := &m.Stages[last][j]
		check := func(k keys.Value) bool {
			truth := Find(ix, k)
			p := scaleClamp(l.Eval(unitOf(width, k)), ix.Len())
			d := p - truth
			if d < 0 {
				d = -d
			}
			return d <= int(l.Err)
		}
		for _, iv := range stageResp[j] {
			for _, piece := range splitAtKnots(width, l, iv) {
				r := Find(ix, piece.Lo)
				start := piece.Lo
				for {
					end := piece.Hi
					if r+1 < ix.Len() && !piece.Hi.Less(ix.Low(r+1)) {
						end = ix.Low(r + 1).Dec()
					}
					if !check(start) {
						return false, start
					}
					if !check(end) {
						return false, end
					}
					if end == piece.Hi {
						break
					}
					start = ix.Low(r + 1)
					r++
				}
			}
		}
	}
	return true, keys.Value{}
}
