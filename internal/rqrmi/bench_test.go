package rqrmi

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
)

// Micro-benchmarks isolating the compiled plane's two wins — flat
// coefficient banks for inference and devirtualized bounds for the
// secondary search — plus the quantized plane's fixed-point arithmetic
// against both. Run with -bench=Predict\|Search -benchmem.

func benchModel(b *testing.B, n int) (*Model, *Compiled, *Quantized, Index, []keys.Value) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	ix := skewedIndex(rng, 32, n)
	m, _, err := Train(ix, 32, quickConfig())
	if err != nil {
		b.Fatal(err)
	}
	c, err := Compile(m, ix)
	if err != nil {
		b.Fatal(err)
	}
	q, err := CompileQuantized(m, ix)
	if err != nil {
		b.Fatal(err)
	}
	dom := keys.NewDomain(32)
	ks := make([]keys.Value, 4096)
	for i := range ks {
		ks[i] = dom.FromUnit(rng.Float64())
	}
	return m, c, q, ix, ks
}

func BenchmarkPredictReference(b *testing.B) {
	m, _, _, _, ks := benchModel(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ks[i&4095])
	}
}

func BenchmarkPredictCompiled(b *testing.B) {
	_, c, _, _, ks := benchModel(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Predict(ks[i&4095])
	}
}

func BenchmarkPredictBatchCompiled(b *testing.B) {
	_, c, _, _, ks := benchModel(b, 4000)
	out := make([]Prediction, len(ks))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ks) {
		c.PredictBatch(ks, out)
	}
}

func BenchmarkSearchReference(b *testing.B) {
	m, c, _, ix, ks := benchModel(b, 4000)
	preds := make([]Prediction, len(ks))
	c.PredictBatch(ks, preds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Search(ix, ks[i&4095], preds[i&4095])
	}
}

func BenchmarkSearchDevirtualized(b *testing.B) {
	_, c, _, _, ks := benchModel(b, 4000)
	preds := make([]Prediction, len(ks))
	c.PredictBatch(ks, preds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Search(ks[i&4095], preds[i&4095])
	}
}

func BenchmarkLookupCompiled(b *testing.B) {
	_, c, _, _, ks := benchModel(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(ks[i&4095])
	}
}

func BenchmarkPredictQuantized(b *testing.B) {
	_, _, q, _, ks := benchModel(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Predict(ks[i&4095])
	}
}

func BenchmarkPredictBatchQuantized(b *testing.B) {
	_, _, q, _, ks := benchModel(b, 4000)
	out := make([]Prediction, len(ks))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ks) {
		q.PredictBatch(ks, out)
	}
}

func BenchmarkSearchQuantized(b *testing.B) {
	_, _, q, _, ks := benchModel(b, 4000)
	preds := make([]Prediction, len(ks))
	q.PredictBatch(ks, preds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Search(ks[i&4095], preds[i&4095])
	}
}

func BenchmarkLookupQuantized(b *testing.B) {
	_, _, q, _, ks := benchModel(b, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Lookup(ks[i&4095])
	}
}
