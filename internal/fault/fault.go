// Package fault is the deterministic fault-injection plane for the update
// path (DESIGN.md §11). The paper's §6.5 update story — delta buffer in
// front of the engine, retrain in the background, atomic swap — is exactly
// the machinery that fails in production at large-database scale (the CRAM
// lens observation: rebuilds, not lookups, are the failure surface), so the
// engine's crash-tolerance must be provable, not asserted. An Injector is a
// seedable, thread-safe decision source that the committers consult at
// named sites; production builds leave core.Config.Fault nil and pay one
// nil-check per commit, nothing on the query path.
//
// Faults are modelled per site as any combination of
//
//   - a latency (retrain latency spikes, shard-swap stalls): Fire sleeps;
//   - an armed failure count (FailNext): the next n fires error;
//   - a failure probability (FailProb): each fire errors with probability p
//     drawn from the injector's own deterministic splitmix64 stream.
//
// Errors returned by Fire wrap ErrInjected, so tests and recovery logic can
// classify injected failures with errors.Is.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Site names one injection point in the update path.
type Site string

const (
	// SiteRetrain fires at the start of a commit's retrain; an error
	// models a failed background rebuild, a latency models a retrain
	// spike. (core.Updatable.Commit)
	SiteRetrain Site = "retrain"
	// SiteSwap fires after a successful retrain, immediately before the
	// atomic engine swap; a latency models a stalled swap, an error
	// aborts the commit with the new engine discarded.
	SiteSwap Site = "swap"
	// SiteDeltaFull fires on every delta-buffer insertion; an error
	// models buffer exhaustion (the caller sees core.ErrDeltaFull).
	SiteDeltaFull Site = "delta_full"
)

// Hook is the decision function the engine consults at each site. A nil
// Hook (the production configuration) disables injection entirely. The
// returned error, if any, is the injected failure.
type Hook func(site Site) error

// ErrInjected is the root of every injector-produced failure.
var ErrInjected = errors.New("fault: injected failure")

// siteConfig is one site's arming state.
type siteConfig struct {
	failNext int           // fail the next n fires (consumed first)
	prob     float64       // then fail each fire with this probability
	latency  time.Duration // sleep on every fire, failing or not
	fired    uint64        // total fires observed
	failed   uint64        // fires that returned an error
}

// Injector is a seedable fault source. All methods are safe for concurrent
// use; the random stream is its own splitmix64 sequence, so two injectors
// with the same seed and the same fire order make identical decisions
// regardless of what the global math/rand state looks like.
type Injector struct {
	mu    sync.Mutex
	state uint64 // splitmix64 state
	sites map[Site]*siteConfig
}

// NewInjector returns an injector whose probabilistic decisions derive from
// seed alone.
func NewInjector(seed uint64) *Injector {
	return &Injector{state: seed, sites: make(map[Site]*siteConfig)}
}

// site returns (creating if needed) s's config; callers hold in.mu.
func (in *Injector) site(s Site) *siteConfig {
	c, ok := in.sites[s]
	if !ok {
		c = &siteConfig{}
		in.sites[s] = c
	}
	return c
}

// FailNext arms site s to fail its next n fires (deterministically,
// regardless of seed). n ≤ 0 disarms the counter.
func (in *Injector) FailNext(s Site, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(s).failNext = max(n, 0)
}

// FailProb sets site s's per-fire failure probability (clamped to [0,1]).
// FailNext arming, when present, is consumed first.
func (in *Injector) FailProb(s Site, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(s).prob = min(max(p, 0), 1)
}

// SetLatency makes every fire of site s sleep d before deciding (the
// latency-spike and stall faults). d ≤ 0 clears it.
func (in *Injector) SetLatency(s Site, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.site(s).latency = max(d, 0)
}

// Clear disarms site s completely (counters of past fires are kept).
func (in *Injector) Clear(s Site) {
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.site(s)
	c.failNext, c.prob, c.latency = 0, 0, 0
}

// Fired returns how many times site s has fired and how many of those
// fires were injected failures.
func (in *Injector) Fired(s Site) (fired, failed uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	c := in.site(s)
	return c.fired, c.failed
}

// Hook adapts the injector to the core.Config hook shape.
func (in *Injector) Hook() Hook { return in.Fire }

// Fire consults site s: it sleeps the configured latency (outside the
// injector lock), then returns an ErrInjected-wrapping error if the site's
// arming says this fire fails.
func (in *Injector) Fire(s Site) error {
	in.mu.Lock()
	c := in.site(s)
	c.fired++
	latency := c.latency
	fail := false
	switch {
	case c.failNext > 0:
		c.failNext--
		fail = true
	case c.prob > 0:
		fail = in.rand() < c.prob
	}
	if fail {
		c.failed++
	}
	in.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if fail {
		return fmt.Errorf("%s: %w", s, ErrInjected)
	}
	return nil
}

// rand draws the next [0,1) float from the splitmix64 stream; callers hold
// in.mu.
func (in *Injector) rand() float64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
