package fault

import (
	"errors"
	"testing"
	"time"
)

func TestFailNextConsumedExactly(t *testing.T) {
	in := NewInjector(1)
	in.FailNext(SiteRetrain, 2)
	for i := 0; i < 2; i++ {
		if err := in.Fire(SiteRetrain); !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: want injected failure, got %v", i, err)
		}
	}
	if err := in.Fire(SiteRetrain); err != nil {
		t.Fatalf("armed count exhausted but fire still fails: %v", err)
	}
	fired, failed := in.Fired(SiteRetrain)
	if fired != 3 || failed != 2 {
		t.Fatalf("counters fired=%d failed=%d, want 3/2", fired, failed)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	in := NewInjector(1)
	in.FailNext(SiteRetrain, 1)
	if err := in.Fire(SiteSwap); err != nil {
		t.Fatalf("arming retrain must not fail swap: %v", err)
	}
	if err := in.Fire(SiteDeltaFull); err != nil {
		t.Fatalf("arming retrain must not fail delta_full: %v", err)
	}
	if err := in.Fire(SiteRetrain); err == nil {
		t.Fatal("armed retrain fire did not fail")
	}
}

// TestProbDeterministic: same seed + same fire order ⇒ identical decisions.
func TestProbDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		in := NewInjector(seed)
		in.FailProb(SiteRetrain, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(SiteRetrain) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across same-seed injectors", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical 64-fire streams (suspicious)")
	}
}

func TestProbExtremes(t *testing.T) {
	in := NewInjector(7)
	in.FailProb(SiteRetrain, 1)
	for i := 0; i < 32; i++ {
		if in.Fire(SiteRetrain) == nil {
			t.Fatal("p=1 fire succeeded")
		}
	}
	in.FailProb(SiteRetrain, 0)
	for i := 0; i < 32; i++ {
		if err := in.Fire(SiteRetrain); err != nil {
			t.Fatalf("p=0 fire failed: %v", err)
		}
	}
}

func TestClearDisarms(t *testing.T) {
	in := NewInjector(1)
	in.FailNext(SiteSwap, 10)
	in.FailProb(SiteSwap, 1)
	in.SetLatency(SiteSwap, time.Hour)
	in.Clear(SiteSwap)
	start := time.Now()
	if err := in.Fire(SiteSwap); err != nil {
		t.Fatalf("cleared site still fails: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cleared site still sleeps")
	}
}

func TestLatencySleeps(t *testing.T) {
	in := NewInjector(1)
	in.SetLatency(SiteRetrain, 20*time.Millisecond)
	start := time.Now()
	if err := in.Fire(SiteRetrain); err != nil {
		t.Fatalf("latency-only site failed: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("fire returned after %v, want ≥ 20ms", d)
	}
}

func TestNilHookShape(t *testing.T) {
	var h Hook
	if h != nil {
		t.Fatal("zero Hook must be nil (the production no-injection case)")
	}
	h = NewInjector(1).Hook()
	if err := h(SiteRetrain); err != nil {
		t.Fatalf("unarmed hook failed: %v", err)
	}
}
