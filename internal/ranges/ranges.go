// Package ranges converts overlapping LPM rules into the sorted array of
// non-overlapping integer ranges that RQRMI can learn (paper §5.1).
//
// The conversion is the stack-based sweep the paper likens to balanced
// bracket checking: rules are sorted by lower bound (covering prefixes
// first), and a stack of currently-open rules determines, for every point of
// the input domain, the deepest (longest-prefix) rule that matches it. The
// output covers the whole domain; gaps between rules are assigned the
// sentinel NoRule. The expansion is at most 2·|rules| ranges.
package ranges

import (
	"fmt"
	"sort"
	"sync/atomic"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// NoRule marks a range that no rule covers.
const NoRule int32 = -1

// Entry is one non-overlapping range. Only the lower bound is stored (the
// array covers the whole domain, so entry i ends where entry i+1 begins —
// exactly the paper's 4-bytes-per-range layout for 32-bit rules). Rule is
// the index of the matching rule in the source rule-set, or NoRule.
type Entry struct {
	Low  keys.Value
	Rule int32
}

// Array is a sorted range array over a width-bit domain.
type Array struct {
	Width   int
	Entries []Entry
	actions []uint64 // actions[i] = action of source rule i
}

// Convert transforms the rule-set into a range array. The result satisfies:
// for every key k, the entry found by Find(k) names the longest-prefix rule
// of s matching k (or NoRule).
func Convert(s *lpm.RuleSet) (*Array, error) {
	type openRule struct {
		high keys.Value
		idx  int32
	}
	a := &Array{Width: s.Width, actions: make([]uint64, len(s.Rules))}
	for i, r := range s.Rules {
		a.actions[i] = r.Action
	}
	// Rules arrive sorted by (low asc, len asc): covering prefixes first.
	// Prefix ranges form a laminar family, so a stack sweep suffices.
	stack := make([]openRule, 0, 64)
	stack = append(stack, openRule{high: keys.MaxValue(s.Width), idx: NoRule}) // null rule (step 1)
	cursor := keys.Value{}                                                     // next uncovered key
	emit := func(low keys.Value, idx int32) {
		// Merge with the previous entry when the owner is unchanged, so
		// adjacent ranges of the same rule never split the array.
		if n := len(a.Entries); n > 0 && a.Entries[n-1].Rule == idx {
			return
		}
		a.Entries = append(a.Entries, Entry{Low: low, Rule: idx})
	}
	top := func() openRule { return stack[len(stack)-1] }

	for i, r := range s.Rules {
		low, high := r.Low(s.Width), r.High(s.Width)
		// Close every open rule that ends before this one starts (step 4).
		for len(stack) > 1 && top().high.Less(low) {
			t := top()
			if cursor.Cmp(t.high) <= 0 {
				emit(cursor, t.idx)
				cursor = t.high.Inc()
			}
			stack = stack[:len(stack)-1]
		}
		// Laminar check: the new rule must nest inside the current top.
		if t := top(); high.Cmp(t.high) > 0 {
			return nil, fmt.Errorf("ranges: rule %v is not nested (corrupt rule-set)", s.Rules[i])
		}
		// The gap between cursor and this rule's start belongs to the
		// currently open rule (step 3).
		if cursor.Less(low) {
			emit(cursor, top().idx)
			cursor = low
		}
		stack = append(stack, openRule{high: high, idx: int32(i)})
	}
	// Close the remaining open rules, deepest first.
	for len(stack) > 0 {
		t := top()
		if cursor.Cmp(t.high) <= 0 {
			emit(cursor, t.idx)
			if t.high == keys.MaxValue(s.Width) {
				stack = stack[:1]
				break
			}
			cursor = t.high.Inc()
		}
		stack = stack[:len(stack)-1]
	}
	if len(a.Entries) == 0 { // empty rule-set: whole domain unmatched
		a.Entries = append(a.Entries, Entry{Rule: NoRule})
	}
	return a, nil
}

// Len returns the number of ranges.
func (a *Array) Len() int { return len(a.Entries) }

// Low returns the lower bound of range i. Together with Len it lets the
// array serve directly as the RQ Array an RQRMI model learns.
func (a *Array) Low(i int) keys.Value { return a.Entries[i].Low }

// Find returns the index of the range containing k: the greatest i with
// Entries[i].Low ≤ k. This is the reference secondary search over the whole
// array.
func (a *Array) Find(k keys.Value) int {
	// sort.Search for first entry with Low > k, then step back.
	i := sort.Search(len(a.Entries), func(i int) bool {
		return k.Less(a.Entries[i].Low)
	})
	return i - 1
}

// FindWithin performs the bounded secondary search of the hardware engine:
// it searches only [lo, hi] (clamped), assuming the true answer lies there.
// It returns the index and the number of array probes the binary search
// performed (the quantity the paper's FSM/bank analysis is built on).
func (a *Array) FindWithin(k keys.Value, lo, hi int) (idx, probes int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(a.Entries)-1 {
		hi = len(a.Entries) - 1
	}
	return keys.BoundedSearch(k, lo, hi, a.Low)
}

// Rule ownership (Entry.Rule) and the actions table are the only words a
// published array mutates — the no-retrain delete and action-modification
// paths rewrite them while lock-free readers resolve lookups. Both are
// accessed with atomic word operations so a reader sees either the old or
// the new value, never a torn one. Low values never change after Convert.

// Rule returns the rule index owning range i, or NoRule.
func (a *Array) RuleOf(i int) int32 { return atomic.LoadInt32(&a.Entries[i].Rule) }

// SetRule re-owns range i (the tombstone-aware delete path).
func (a *Array) SetRule(i int, r int32) { atomic.StoreInt32(&a.Entries[i].Rule, r) }

// Action resolves the action of range i; ok is false for NoRule ranges.
func (a *Array) Action(i int) (uint64, bool) {
	r := atomic.LoadInt32(&a.Entries[i].Rule)
	if r == NoRule {
		return 0, false
	}
	return atomic.LoadUint64(&a.actions[r]), true
}

// SetAction updates the stored action of source rule idx (used by the
// no-retrain action-modification update path).
func (a *Array) SetAction(idx int32, action uint64) {
	atomic.StoreUint64(&a.actions[idx], action)
}

// High returns the inclusive upper bound of range i.
func (a *Array) High(i int) keys.Value {
	if i == len(a.Entries)-1 {
		return keys.MaxValue(a.Width)
	}
	return a.Entries[i+1].Low.Dec()
}

// BytesPerEntry is the on-chip cost of one range: the 32-/64-/128-bit lower
// bound (§5.1 stores only lower bounds).
func (a *Array) BytesPerEntry() int {
	return (a.Width + 7) / 8
}

// SizeBytes returns the SRAM footprint of the range array's bounds.
func (a *Array) SizeBytes() int { return a.Len() * a.BytesPerEntry() }

// ExpansionStats describes the LPM→range conversion overhead (§10.5).
type ExpansionStats struct {
	Rules     int
	Ranges    int
	Expansion float64 // Ranges/Rules − 1
}

// Expansion computes the conversion overhead relative to the source rules.
func (a *Array) Expansion(ruleCount int) ExpansionStats {
	st := ExpansionStats{Rules: ruleCount, Ranges: a.Len()}
	if ruleCount > 0 {
		st.Expansion = float64(a.Len())/float64(ruleCount) - 1
	}
	return st
}
