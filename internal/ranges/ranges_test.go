package ranges

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

func mustConvert(t *testing.T, width int, rules []lpm.Rule) (*lpm.RuleSet, *Array) {
	t.Helper()
	s, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Convert(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

// TestPaperConversionExample checks §5.1's example: 5-bit rules r0 = 1000*
// and r1 = 100** produce ranges 10000–10001 (r0) and 10010–10011 (r1).
func TestPaperConversionExample(t *testing.T) {
	s, a := mustConvert(t, 5, []lpm.Rule{
		{Prefix: keys.FromUint64(0b10000), Len: 4, Action: 0},
		{Prefix: keys.FromUint64(0b10000), Len: 3, Action: 1},
	})
	_ = s
	// Expected ranges: [0,0b01111]→none, [0b10000,0b10001]→r0,
	// [0b10010,0b10011]→r1, [0b10100,max]→none.
	wantLows := []uint64{0, 0b10000, 0b10010, 0b10100}
	if a.Len() != len(wantLows) {
		t.Fatalf("got %d ranges: %+v", a.Len(), a.Entries)
	}
	for i, w := range wantLows {
		if a.Entries[i].Low != keys.FromUint64(w) {
			t.Errorf("range %d low = %v, want %#b", i, a.Entries[i].Low, w)
		}
	}
	if a.Entries[0].Rule != NoRule || a.Entries[3].Rule != NoRule {
		t.Error("gap ranges should be NoRule")
	}
	if act, _ := a.Action(1); act != 0 {
		t.Errorf("range 1 action = %d", act)
	}
	if act, _ := a.Action(2); act != 1 {
		t.Errorf("range 2 action = %d", act)
	}
}

func TestEmptyRuleSet(t *testing.T) {
	_, a := mustConvert(t, 8, nil)
	if a.Len() != 1 || a.Entries[0].Rule != NoRule {
		t.Fatalf("empty conversion = %+v", a.Entries)
	}
	if i := a.Find(keys.FromUint64(100)); i != 0 {
		t.Fatalf("Find = %d", i)
	}
}

func TestDefaultRuleOnly(t *testing.T) {
	_, a := mustConvert(t, 8, []lpm.Rule{{Len: 0, Action: 9}})
	if a.Len() != 1 {
		t.Fatalf("ranges = %d", a.Len())
	}
	if act, ok := a.Action(0); !ok || act != 9 {
		t.Fatalf("action = %d,%v", act, ok)
	}
}

func TestNestedRules(t *testing.T) {
	// 0*** ⊃ 00** ⊃ 000* in a 4-bit domain.
	s, a := mustConvert(t, 4, []lpm.Rule{
		{Prefix: keys.FromUint64(0b0000), Len: 1, Action: 1},
		{Prefix: keys.FromUint64(0b0000), Len: 2, Action: 2},
		{Prefix: keys.FromUint64(0b0000), Len: 3, Action: 3},
	})
	oracle := lpm.NewTrie(s)
	for k := uint64(0); k < 16; k++ {
		key := keys.FromUint64(k)
		i := a.Find(key)
		want := oracle.Lookup(key)
		if int(a.RuleOf(i)) != want {
			t.Errorf("key %04b: range rule %d, oracle %d", k, a.RuleOf(i), want)
		}
	}
}

func TestSiblingRules(t *testing.T) {
	_, a := mustConvert(t, 4, []lpm.Rule{
		{Prefix: keys.FromUint64(0b0000), Len: 2, Action: 1},
		{Prefix: keys.FromUint64(0b0100), Len: 2, Action: 2},
		{Prefix: keys.FromUint64(0b1100), Len: 2, Action: 3},
	})
	// Ranges: [0,3]→0, [4,7]→1, [8,11]→none, [12,15]→2.
	if a.Len() != 4 {
		t.Fatalf("got %d ranges: %+v", a.Len(), a.Entries)
	}
	if a.Entries[2].Rule != NoRule {
		t.Errorf("middle gap should be NoRule, got %d", a.Entries[2].Rule)
	}
}

func TestHighBounds(t *testing.T) {
	_, a := mustConvert(t, 4, []lpm.Rule{
		{Prefix: keys.FromUint64(0b0100), Len: 2, Action: 1},
	})
	// Ranges: [0,3], [4,7], [8,15].
	if a.High(0) != keys.FromUint64(3) {
		t.Errorf("High(0) = %v", a.High(0))
	}
	if a.High(1) != keys.FromUint64(7) {
		t.Errorf("High(1) = %v", a.High(1))
	}
	if a.High(2) != keys.MaxValue(4) {
		t.Errorf("High(2) = %v", a.High(2))
	}
}

func TestAdjacentSameRuleMerged(t *testing.T) {
	// A child with the same action as nothing in between: check no two
	// consecutive entries share an owner.
	rng := rand.New(rand.NewSource(3))
	s := randomRuleSet(rng, 16, 200)
	a, err := Convert(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < a.Len(); i++ {
		if a.Entries[i].Rule == a.Entries[i-1].Rule {
			t.Fatalf("entries %d and %d share rule %d", i-1, i, a.Entries[i].Rule)
		}
	}
}

func TestExpansionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		s := randomRuleSet(rng, 32, 300)
		a, err := Convert(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.Len() > 2*s.Len()+1 {
			t.Fatalf("expansion %d ranges from %d rules exceeds 2n+1", a.Len(), s.Len())
		}
	}
}

func randomRuleSet(rng *rand.Rand, width, n int) *lpm.RuleSet {
	type pl struct {
		p keys.Value
		l int
	}
	// Small domains cannot yield n distinct rules; cap by the number of
	// possible (prefix,len) pairs to keep the dedupe loop finite.
	if width < 10 {
		if limit := (1 << (width + 1)) / 2; n > limit {
			n = limit
		}
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for len(rules) < n {
		length := 1 + rng.Intn(width)
		var prefix keys.Value
		if width <= 64 {
			prefix = keys.FromUint64(rng.Uint64())
		} else {
			prefix = keys.FromParts(rng.Uint64(), rng.Uint64())
		}
		prefix = prefix.Shr(uint(128 - width)) // confine to width bits... see below
		if width <= 64 {
			prefix = keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
		}
		if length < width {
			prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		}
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(rng.Intn(100))})
	}
	s, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		panic(err)
	}
	return s
}

// TestOracleEquivalence is the central correctness property of the
// conversion: for random rule-sets and random keys, the range array must
// agree with the trie oracle.
func TestOracleEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, width := range []int{4, 8, 16, 32, 64, 128} {
		for trial := 0; trial < 5; trial++ {
			s := randomRuleSet(rng, width, 150)
			a, err := Convert(s)
			if err != nil {
				t.Fatal(err)
			}
			oracle := lpm.NewTrie(s)
			for q := 0; q < 400; q++ {
				var k keys.Value
				if width <= 64 {
					k = keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
				} else {
					k = keys.FromParts(rng.Uint64(), rng.Uint64())
				}
				got := int(a.RuleOf(a.Find(k)))
				want := oracle.Lookup(k)
				if got != want {
					t.Fatalf("width %d key %v: range %d, oracle %d", width, k, got, want)
				}
			}
		}
	}
}

// TestOracleEquivalenceAtBoundaries probes exactly at range boundaries and
// their neighbours, the most error-prone points of the sweep.
func TestOracleEquivalenceAtBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomRuleSet(rng, 16, 120)
	a, err := Convert(s)
	if err != nil {
		t.Fatal(err)
	}
	oracle := lpm.NewTrie(s)
	check := func(k keys.Value) {
		got := int(a.RuleOf(a.Find(k)))
		if want := oracle.Lookup(k); got != want {
			t.Fatalf("key %v: range %d, oracle %d", k, got, want)
		}
	}
	for i, e := range a.Entries {
		check(e.Low)
		check(a.High(i))
		if !e.Low.IsZero() {
			check(e.Low.Dec())
		}
	}
}

func TestFindWithinAgreesWithFind(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomRuleSet(rng, 32, 400)
	a, err := Convert(s)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2000; q++ {
		k := keys.FromUint64(uint64(rng.Uint32()))
		want := a.Find(k)
		// Any window containing the answer must locate it.
		e := rng.Intn(50)
		got, probes := a.FindWithin(k, want-e, want+e)
		if got != want {
			t.Fatalf("FindWithin = %d, want %d", got, want)
		}
		if maxProbes := bitsFor(2*e + 1); probes > maxProbes {
			t.Fatalf("probes %d exceed log bound %d for window %d", probes, maxProbes, 2*e+1)
		}
	}
}

func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b + 1
}

func TestFindWithinClamps(t *testing.T) {
	_, a := mustConvert(t, 8, []lpm.Rule{
		{Prefix: keys.FromUint64(0x80), Len: 1, Action: 1},
	})
	idx, _ := a.FindWithin(keys.FromUint64(0xFF), -10, 1000)
	if idx != a.Find(keys.FromUint64(0xFF)) {
		t.Fatalf("clamped search = %d", idx)
	}
}

func TestFindFirstAndLastKey(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomRuleSet(rng, 32, 100)
	a, err := Convert(s)
	if err != nil {
		t.Fatal(err)
	}
	if i := a.Find(keys.Value{}); i != 0 {
		t.Fatalf("Find(0) = %d", i)
	}
	if i := a.Find(keys.MaxValue(32)); i != a.Len()-1 {
		t.Fatalf("Find(max) = %d, want %d", i, a.Len()-1)
	}
}

func TestSetAction(t *testing.T) {
	s, a := mustConvert(t, 8, []lpm.Rule{
		{Prefix: keys.FromUint64(0x80), Len: 1, Action: 1},
	})
	idx := s.Find(keys.FromUint64(0x80), 1)
	a.SetAction(int32(idx), 77)
	r := a.Find(keys.FromUint64(0x90))
	if act, _ := a.Action(r); act != 77 {
		t.Fatalf("action after SetAction = %d", act)
	}
}

func TestSizeBytes(t *testing.T) {
	_, a := mustConvert(t, 32, []lpm.Rule{
		{Prefix: keys.FromUint64(0x80000000), Len: 1, Action: 1},
	})
	if a.BytesPerEntry() != 4 {
		t.Fatalf("BytesPerEntry = %d", a.BytesPerEntry())
	}
	if a.SizeBytes() != 4*a.Len() {
		t.Fatalf("SizeBytes = %d", a.SizeBytes())
	}
	_, a = mustConvert(t, 128, []lpm.Rule{
		{Prefix: keys.FromParts(1<<63, 0), Len: 1, Action: 1},
	})
	if a.BytesPerEntry() != 16 {
		t.Fatalf("128-bit BytesPerEntry = %d", a.BytesPerEntry())
	}
}

func TestExpansionStats(t *testing.T) {
	_, a := mustConvert(t, 4, []lpm.Rule{
		{Prefix: keys.FromUint64(0b0100), Len: 2, Action: 1},
	})
	st := a.Expansion(1)
	if st.Rules != 1 || st.Ranges != 3 || st.Expansion != 2.0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConversionCoversDomain asserts the first range starts at zero and the
// lows are strictly increasing — the invariants Find depends on.
func TestConversionCoversDomain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomRuleSet(rng, 16, 80)
		a, err := Convert(s)
		if err != nil {
			return false
		}
		if !a.Entries[0].Low.IsZero() {
			return false
		}
		for i := 1; i < a.Len(); i++ {
			if !a.Entries[i-1].Low.Less(a.Entries[i].Low) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConvert10K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomRuleSet(rng, 32, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Convert(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFind(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	s := randomRuleSet(rng, 32, 100000)
	a, err := Convert(s)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]keys.Value, 1024)
	for i := range queries {
		queries[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Find(queries[i&1023])
	}
}
