package core

import (
	"math/rand"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/tier"
)

func quickTiered() Config {
	cfg := quickBucketed()
	cfg.Tier = tier.Config{Enabled: true}
	return cfg
}

// TestTieredOracleEquivalence is the engine-level half of the tier
// correctness contract: with every bucket demoted, every inference arm must
// keep answering exactly what the trie oracle answers, and the traces must
// show the fetches coming from the slow tier.
func TestTieredOracleEquivalence(t *testing.T) {
	rs := randomRuleSet(t, 32, 600, 9)
	e, err := Build(rs, quickTiered())
	if err != nil {
		t.Fatal(err)
	}
	ts := e.TierStore()
	if ts == nil {
		t.Fatal("tiered config built an untiered engine")
	}
	assertMatchesOracle(t, e, rs, 2000, 90)

	ts.DemoteAll()
	st := ts.Stats()
	if st.FastResident != 0 || st.ColdBytes == 0 {
		t.Fatalf("after DemoteAll: %+v", st)
	}
	assertMatchesOracle(t, e, rs, 2000, 91)
	tr := e.LookupMem(randomKey(rand.New(rand.NewSource(7)), 32), cachesim.Null{})
	if !tr.BucketRead || !tr.ColdRead {
		t.Fatalf("all-cold engine trace: %+v", tr)
	}
	// Reference and quantized arms route through the same tier map.
	for _, inf := range []plane.Inference{plane.Reference, plane.Quantized} {
		tr := e.LookupMemInfer(inf, randomKey(rand.New(rand.NewSource(8)), 32), cachesim.Null{})
		if !tr.ColdRead {
			t.Fatalf("%v arm bypassed the cold tier: %+v", inf, tr)
		}
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("Verify on all-cold engine: %v", err)
	}

	// Promotion on access bursts: the traffic above fed the burst counters,
	// so a rebalance pass pulls the touched buckets back up and bumps the
	// cache epoch exactly once.
	before := e.CacheEpoch().Load()
	promoted, _ := e.RebalanceTier()
	if promoted == 0 {
		t.Fatal("no promotions after cold traffic")
	}
	if got := e.CacheEpoch().Load(); got != before+1 {
		t.Fatalf("epoch after rebalance = %d, want %d", got, before+1)
	}
	// The epoch moves iff a pass migrated something (a second pass may demote
	// sketch-cold buckets — that's placement working, and it must bump too).
	mid := e.CacheEpoch().Load()
	p2, d2 := e.RebalanceTier()
	got := e.CacheEpoch().Load()
	if p2+d2 == 0 && got != mid {
		t.Fatalf("idle rebalance bumped the epoch to %d", got)
	}
	if p2+d2 > 0 && got != mid+1 {
		t.Fatalf("migrating rebalance bumped the epoch to %d, want %d", got, mid+1)
	}
	assertMatchesOracle(t, e, rs, 2000, 92)
}

// TestTieredConfigInheritedByRebuild checks the Config ride-along: an
// InsertBatch rebuild must come up tiered (all-fast, placement re-learned),
// like the fault hook does.
func TestTieredConfigInheritedByRebuild(t *testing.T) {
	rs := randomRuleSet(t, 32, 300, 11)
	e, err := Build(rs, quickTiered())
	if err != nil {
		t.Fatal(err)
	}
	e.TierStore().DemoteAll()
	ins := make([]lpm.Rule, 0, 20)
	for _, r := range randomRuleSet(t, 32, 60, 12).Rules {
		if rs.Find(r.Prefix, r.Len) == lpm.NoMatch {
			ins = append(ins, r)
		}
		if len(ins) == 20 {
			break
		}
	}
	next, err := e.InsertBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	ts := next.TierStore()
	if ts == nil {
		t.Fatal("rebuilt engine lost the tier config")
	}
	if st := ts.Stats(); st.FastResident != st.Buckets {
		t.Fatalf("rebuilt engine did not start all-fast: %+v", st)
	}
}

// TestUntieredEngineHasNoTierStore pins the disabled path: default configs
// stay nil-tier and RebalanceTier is a no-op that never bumps the epoch.
func TestUntieredEngineHasNoTierStore(t *testing.T) {
	rs := randomRuleSet(t, 32, 200, 13)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	if e.TierStore() != nil {
		t.Fatal("untiered config built a tier store")
	}
	before := e.CacheEpoch().Load()
	if p, d := e.RebalanceTier(); p != 0 || d != 0 {
		t.Fatalf("RebalanceTier on untiered engine = (%d,%d)", p, d)
	}
	if e.CacheEpoch().Load() != before {
		t.Fatal("no-op rebalance bumped the epoch")
	}
}
