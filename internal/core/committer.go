package core

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff computes capped exponential retry delays for failed background
// commits. A failed retrain is retried, not abandoned: the delta buffer
// keeps serving the pending rules, so the only cost of waiting is
// staleness, and hammering a failing rebuild (e.g. an allocation-starved
// host) with immediate retries makes the outage worse. Jitter desynchronizes
// shards that fail together.
type Backoff struct {
	Base time.Duration // delay after the first failure
	Cap  time.Duration // upper bound on the exponential growth
}

// DefaultBackoff is the committers' retry schedule: 25ms doubling to a 2s
// ceiling — a transient failure retries almost immediately, a persistent
// one settles at one attempt every ~2s.
var DefaultBackoff = Backoff{Base: 25 * time.Millisecond, Cap: 2 * time.Second}

// Delay returns the wait before retry number consecutive (≥ 1): base
// doubled per prior failure, capped, with ±25% jitter. The jitter draw
// uses math/rand's thread-safe top-level source — retry spacing is not
// part of any determinism contract.
func (b Backoff) Delay(consecutive int) time.Duration {
	if b.Base <= 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Cap <= 0 {
		b.Cap = DefaultBackoff.Cap
	}
	d := b.Base
	for i := 1; i < consecutive && d < b.Cap; i++ {
		d *= 2
	}
	d = min(d, b.Cap)
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// autoCommitter drives one Updatable's background commits with retry.
type autoCommitter struct {
	stop chan struct{}
	wg   sync.WaitGroup

	mu          sync.Mutex
	lastErr     error
	consecFails int
}

// StartAutoCommit launches a background committer: every interval it
// commits the delta buffer if non-empty, retrying failures on the
// DefaultBackoff schedule (the shard-level equivalent, with per-shard
// health states, lives in shard.ShardedUpdatable). interval ≤ 0 selects
// 100ms. Calling it twice without StopAutoCommit is a no-op.
func (u *Updatable) StartAutoCommit(interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	u.acMu.Lock()
	defer u.acMu.Unlock()
	if u.ac != nil {
		return
	}
	ac := &autoCommitter{stop: make(chan struct{})}
	u.ac = ac
	ac.wg.Add(1)
	go func() {
		defer ac.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		var retryAt time.Time
		for {
			select {
			case <-ac.stop:
				return
			case <-t.C:
			}
			if u.PendingInserts() == 0 || time.Now().Before(retryAt) {
				continue
			}
			err := u.Commit()
			ac.mu.Lock()
			if err != nil {
				ac.lastErr = err
				ac.consecFails++
				retryAt = time.Now().Add(DefaultBackoff.Delay(ac.consecFails))
			} else {
				ac.lastErr = nil
				ac.consecFails = 0
				retryAt = time.Time{}
			}
			ac.mu.Unlock()
		}
	}()
}

// StopAutoCommit stops the background committer (idempotent; safe when it
// was never started) and returns the pending commit failure, if the last
// attempt failed.
func (u *Updatable) StopAutoCommit() error {
	u.acMu.Lock()
	ac := u.ac
	u.ac = nil
	u.acMu.Unlock()
	if ac == nil {
		return nil
	}
	close(ac.stop)
	ac.wg.Wait()
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.lastErr
}

// LastCommitErr returns the background committer's pending failure: non-nil
// after a failed commit until the next successful one.
func (u *Updatable) LastCommitErr() error {
	u.acMu.Lock()
	ac := u.ac
	u.acMu.Unlock()
	if ac == nil {
		return nil
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.lastErr
}
