package core

import (
	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/plane"
)

// This file is the engine-side surface of the result-cache plane (DESIGN.md
// §12): cached variants of the lookup entry points, all thin constant-config
// wrappers over the stack executor in stack.go. The cache itself — layout,
// epoch semantics, the single-owner contract — lives in internal/lcache; the
// executor glues the plane onto the query path with one rule throughout:
// load the epoch BEFORE touching any engine or delta state, stamp every fill
// with that loaded value, never re-read it mid-lookup.
//
// Telemetry note: a cache hit answers without entering the engine, so it
// increments neurolpm_lcache_hits_total but NOT neurolpm_lookups_total —
// the engine counters keep meaning "queries the inference pipeline served".

// LookupCached answers k through cache c (which the caller must own
// exclusively for the duration — see lcache's single-owner contract). It is
// LookupStack with the compiled+lcache configuration: answers obey the same
// oracle-equivalence contract as Lookup. The outcome reports how the cache
// participated; c == nil degrades to the uncached path with outcome None.
func (e *Engine) LookupCached(k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	return e.lookupCachedStack(plane.Compiled, k, c)
}

// LookupBatchCached is LookupBatchCachedMem against a null DRAM model.
func (e *Engine) LookupBatchCached(ks []keys.Value, out []BatchResult, c *lcache.Cache, epoch uint64) []BatchResult {
	return e.LookupBatchStack(plane.StackConfig{Cached: true}, ks, out, cachesim.Null{}, c, epoch)
}

// LookupBatchCachedMem is the batch-aware cached lookup — LookupBatchStack
// with the compiled+lcache configuration: probe every key first, resolve
// only the misses through the compiled plane's pipelined blocks, and fill on
// the way out. epoch must be the value of e.CacheEpoch().Load() taken by the
// caller BEFORE any staleness check on surrounding state (ShardedUpdatable
// loads it before consulting PendingInserts — loading it later would let an
// update land in between and the pre-update answers would be cached under
// the post-update epoch). c == nil (or an armed bypass) degrades to
// LookupBatchMem.
func (e *Engine) LookupBatchCachedMem(ks []keys.Value, out []BatchResult, mem cachesim.Mem, c *lcache.Cache, epoch uint64) []BatchResult {
	return e.LookupBatchStack(plane.StackConfig{Cached: true}, ks, out, mem, c, epoch)
}

// LookupCached answers k against the delta overlay + engine through cache c:
// LookupStack with the compiled+lcache configuration. The epoch is loaded
// before either is read, so a fill can never carry a pre-update answer under
// a post-update stamp.
func (u *Updatable) LookupCached(k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	return u.lookupCachedStack(plane.Compiled, k, c)
}

// CacheEpoch returns the lineage's invalidation counter (stable across
// commits: InsertBatch propagates the pointer into every rebuilt engine).
func (u *Updatable) CacheEpoch() *lcache.Epoch { return u.engine.Load().epoch }
