package core

import (
	"sync"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/telemetry"
)

// This file is the engine-side half of the result-cache plane (DESIGN.md
// §12): cached variants of the lookup entry points. The cache itself —
// layout, epoch semantics, the single-owner contract — lives in
// internal/lcache; here the plane is glued onto the query path with one rule
// throughout: load the epoch BEFORE touching any engine or delta state,
// stamp every fill with that loaded value, never re-read it mid-lookup.
//
// Telemetry note: a cache hit answers without entering the engine, so it
// increments neurolpm_lcache_hits_total but NOT neurolpm_lookups_total —
// the engine counters keep meaning "queries the inference pipeline served".

// LookupCached answers k through cache c (which the caller must own
// exclusively for the duration — see lcache's single-owner contract). The
// outcome reports how the cache participated; c == nil degrades to the
// uncached path with outcome None.
func (e *Engine) LookupCached(k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	if c.Bypassed(1) {
		action, ok = e.Lookup(k)
		return action, ok, lcache.None
	}
	// Flight sampling for the probe stage rides the cache's own plain tick
	// (the hit path must stay free of extra atomics). A probe-stage record
	// covers the whole cached query: on a hit it is probe-only; on a miss
	// the engine time shows up as total − probe, while the engine's own
	// independently-sampled records carry the stage split.
	var fr *telemetry.FlightRecord
	if telemetry.Flight.HitN(c.SampleTick()) {
		var rec telemetry.FlightRecord
		fr = &rec
		fr.Begin(k.Hi, k.Lo)
	}
	epoch := e.epoch.Load()
	action, ok, o = c.Get(k, epoch)
	fr.Stamp(telemetry.StageProbe)
	if o != lcache.Hit {
		action, ok = e.Lookup(k)
		c.Put(k, epoch, action, ok)
	}
	if fr != nil {
		fr.Cache = uint8(o)
		fr.Shard = e.shardID
		fr.Action = action
		fr.Matched = ok
		telemetry.Flight.Commit(fr)
	}
	return action, ok, o
}

// missScratch carries one batch's miss gather buffers; pooled so concurrent
// cached batches stay allocation-free.
type missScratch struct {
	idx  []int32
	keys []keys.Value
}

var missScratchPool = sync.Pool{New: func() any { return new(missScratch) }}

// LookupBatchCached is LookupBatchCachedMem against a null DRAM model.
func (e *Engine) LookupBatchCached(ks []keys.Value, out []BatchResult, c *lcache.Cache, epoch uint64) []BatchResult {
	return e.LookupBatchCachedMem(ks, out, cachesim.Null{}, c, epoch)
}

// LookupBatchCachedMem is the batch-aware cached lookup: probe every key
// first, resolve only the misses through the compiled plane's pipelined
// blocks, and fill on the way out. epoch must be the value of
// e.CacheEpoch().Load() taken by the caller BEFORE any staleness check on
// surrounding state (ShardedUpdatable loads it before consulting
// PendingInserts — loading it later would let an update land in between and
// the pre-update answers would be cached under the post-update epoch).
// c == nil (or an armed bypass) degrades to LookupBatchMem.
func (e *Engine) LookupBatchCachedMem(ks []keys.Value, out []BatchResult, mem cachesim.Mem, c *lcache.Cache, epoch uint64) []BatchResult {
	if c.Bypassed(len(ks)) {
		return e.LookupBatchMem(ks, out, mem)
	}
	if cap(out) < len(ks) {
		out = make([]BatchResult, len(ks))
	}
	out = out[:len(ks)]
	sc := missScratchPool.Get().(*missScratch)
	miss := sc.idx[:0]
	for i, k := range ks {
		a, m, o := c.Get(k, epoch)
		if o == lcache.Hit {
			out[i] = BatchResult{Action: a, Matched: m}
		} else {
			miss = append(miss, int32(i))
		}
	}
	if len(miss) > 0 {
		if cap(sc.keys) < len(miss) {
			sc.keys = make([]keys.Value, len(miss))
		}
		mk := sc.keys[:len(miss)]
		for j, i := range miss {
			mk[j] = ks[i]
		}
		e.finishBatch(mk, mem, func(j int, r BatchResult) {
			out[miss[j]] = r
			c.Put(mk[j], epoch, r.Action, r.Matched)
		})
		sc.keys = mk
	}
	sc.idx = miss
	missScratchPool.Put(sc)
	return out
}

// LookupCached answers k against the delta overlay + engine through cache c.
// The epoch is loaded before either is read, so a fill can never carry a
// pre-update answer under a post-update stamp.
func (u *Updatable) LookupCached(k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	if c.Bypassed(1) {
		action, ok = u.Lookup(k)
		return action, ok, lcache.None
	}
	eng := u.engine.Load()
	var fr *telemetry.FlightRecord
	if telemetry.Flight.HitN(c.SampleTick()) {
		var rec telemetry.FlightRecord
		fr = &rec
		fr.Begin(k.Hi, k.Lo)
	}
	epoch := eng.epoch.Load()
	action, ok, o = c.Get(k, epoch)
	fr.Stamp(telemetry.StageProbe)
	if o != lcache.Hit {
		action, ok = u.Lookup(k)
		c.Put(k, epoch, action, ok)
	}
	if fr != nil {
		fr.Cache = uint8(o)
		fr.Shard = eng.shardID
		fr.Action = action
		fr.Matched = ok
		telemetry.Flight.Commit(fr)
	}
	return action, ok, o
}

// CacheEpoch returns the lineage's invalidation counter (stable across
// commits: InsertBatch propagates the pointer into every rebuilt engine).
func (u *Updatable) CacheEpoch() *lcache.Epoch { return u.engine.Load().epoch }
