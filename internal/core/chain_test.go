package core

import (
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

func chainEngine(t *testing.T, rules []lpm.Rule) *Engine {
	t.Helper()
	rs, err := lpm.NewRuleSet(16, rules)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestChainTwoStages(t *testing.T) {
	// Stage 1: classify by source "zone" (action = zone id).
	zones := chainEngine(t, []lpm.Rule{
		{Prefix: keys.FromUint64(0x1000), Len: 4, Action: 1},
		{Prefix: keys.FromUint64(0x2000), Len: 4, Action: 2},
	})
	// Stage 2: route within the zone (key rewritten to zone<<12 | low bits).
	routes := chainEngine(t, []lpm.Rule{
		{Prefix: keys.FromUint64(0x1000), Len: 8, Action: 100},
		{Prefix: keys.FromUint64(0x2000), Len: 8, Action: 200},
	})
	chain, err := NewChain(
		ChainStage{Name: "zone", Matcher: zones, NextKey: func(k keys.Value, action uint64) keys.Value {
			return keys.FromUint64(action<<12 | k.Uint64()&0xFF)
		}},
		ChainStage{Name: "route", Matcher: routes},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := chain.Lookup(keys.FromUint64(0x1ABC))
	if !res.Matched || len(res.Actions) != 2 || res.Actions[0] != 1 || res.Actions[1] != 100 {
		t.Fatalf("chain result %+v", res)
	}
	res = chain.Lookup(keys.FromUint64(0x2ABC))
	if !res.Matched || res.Actions[1] != 200 {
		t.Fatalf("chain result %+v", res)
	}
}

func TestChainMissStopsEvaluation(t *testing.T) {
	first := chainEngine(t, []lpm.Rule{
		{Prefix: keys.FromUint64(0x1000), Len: 4, Action: 1},
	})
	second := chainEngine(t, []lpm.Rule{
		{Prefix: keys.FromUint64(0), Len: 0, Action: 9},
	})
	chain, err := NewChain(
		ChainStage{Name: "a", Matcher: first},
		ChainStage{Name: "b", Matcher: second},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := chain.Lookup(keys.FromUint64(0xF000))
	if res.Matched || res.Misses != 0 || len(res.Actions) != 0 {
		t.Fatalf("miss result %+v", res)
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain(); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := NewChain(ChainStage{Name: "x"}); err == nil {
		t.Fatal("nil matcher accepted")
	}
}

func TestChainDefaultKeyForwarding(t *testing.T) {
	e := chainEngine(t, []lpm.Rule{
		{Prefix: keys.FromUint64(0x1000), Len: 4, Action: 1},
	})
	chain, err := NewChain(
		ChainStage{Name: "a", Matcher: e},
		ChainStage{Name: "b", Matcher: e},
	)
	if err != nil {
		t.Fatal(err)
	}
	res := chain.Lookup(keys.FromUint64(0x1234))
	if !res.Matched || res.Actions[0] != res.Actions[1] {
		t.Fatalf("key not forwarded unchanged: %+v", res)
	}
}
