package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
)

// ErrDeltaFull is the write-backpressure signal: the delta buffer is at
// capacity and the insertion was refused. Callers should commit (or let the
// background committer catch up) and retry; the serving layer maps it to
// HTTP 429. Matched with errors.Is through any wrapping.
var ErrDeltaFull = errors.New("core: delta buffer full")

// Updatable wraps an Engine with the two §6.5 mechanisms that make rule
// insertion practical on a retraining-based engine:
//
//   - a delta buffer — the software analogue of the small TCAM the paper
//     proposes ("a small TCAM with 10K entries can support 33K–100K updates
//     per second") — absorbs insertions immediately: queries consult the
//     buffer alongside the engine and the longer prefix wins;
//   - atomic commit — Commit retrains a fresh engine over the merged
//     rule-set off the query path and swaps it in atomically, the
//     concurrent-versions scheme of the paper's atomicity discussion.
//
// Lookups are wait-free with respect to Commit (they read an atomic engine
// pointer); insertions and commits serialize among themselves.
type Updatable struct {
	engine atomic.Pointer[Engine]

	mu       sync.Mutex // guards delta and commit
	capacity int
	delta    *deltaBuffer

	acMu sync.Mutex     // guards ac (StartAutoCommit/StopAutoCommit)
	ac   *autoCommitter // background committer; nil until StartAutoCommit
}

// DefaultDeltaCapacity mirrors the 10K-entry TCAM the paper cites as the
// realistic delta-buffer size (NVIDIA production switches use such TCAMs).
const DefaultDeltaCapacity = 10000

// NewUpdatable wraps a built engine. capacity ≤ 0 selects
// DefaultDeltaCapacity.
func NewUpdatable(e *Engine, capacity int) *Updatable {
	if capacity <= 0 {
		capacity = DefaultDeltaCapacity
	}
	u := &Updatable{capacity: capacity, delta: newDeltaBuffer(e.Width())}
	u.engine.Store(e)
	return u
}

// Engine returns the current live engine (for stats and verification).
func (u *Updatable) Engine() *Engine { return u.engine.Load() }

// PendingInserts returns the number of rules waiting in the delta buffer.
func (u *Updatable) PendingInserts() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.delta.len()
}

// Lookup consults the delta buffer and the main engine and returns the
// longer-prefix match, exactly as a TCAM stage in front of the engine
// would. It obeys the same oracle-equivalence contract as Engine.Lookup —
// the overlay must answer exactly what a trie over engine+delta rules would
// — across every stack configuration (internal/planetest).
func (u *Updatable) Lookup(k keys.Value) (uint64, bool) {
	return u.lookupOverlay(plane.Compiled, k)
}

// lookupOverlay is the delta-overlay arm of the stack executor: the engine
// half runs through the inf-selected inference plane, then the longer prefix
// of {engine match, delta match} wins.
func (u *Updatable) lookupOverlay(inf plane.Inference, k keys.Value) (uint64, bool) {
	e := u.engine.Load()
	// The delta read takes the mutex: the buffer is tiny, and insertion
	// latency is the quantity being optimized, not query concurrency with
	// inserts (hardware gives the TCAM its own port).
	u.mu.Lock()
	dAction, dLen, dOK := u.delta.lookup(k)
	u.mu.Unlock()
	tr := e.lookupInfer(inf, k, nullMem{})
	if !tr.Matched {
		if dOK {
			return dAction, true
		}
		return 0, false
	}
	if dOK {
		// Compare prefix lengths: the engine's match length is the rule's.
		r := e.ra.RuleOf(tr.RangeIndex)
		if r >= 0 && e.rules.Rules[r].Len < dLen {
			return dAction, true
		}
	}
	return tr.Action, tr.Matched
}

// nullMem avoids importing cachesim here just for the no-op reader.
type nullMem struct{}

func (nullMem) Read(uint64, int) {}

// Insert places a rule in the delta buffer. It fails when the buffer is
// full — the caller should Commit — or when the rule already exists.
func (u *Updatable) Insert(r lpm.Rule) error {
	e := u.engine.Load()
	if err := r.Validate(e.Width()); err != nil {
		return err
	}
	if hook := e.cfg.Fault; hook != nil {
		if err := hook(fault.SiteDeltaFull); err != nil {
			return fmt.Errorf("%w (injected: %v)", ErrDeltaFull, err)
		}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.delta.len() >= u.capacity {
		return fmt.Errorf("%w (%d rules); commit first", ErrDeltaFull, u.capacity)
	}
	if e.rules.Find(r.Prefix, r.Len) != lpm.NoMatch {
		if idx := e.rules.Find(r.Prefix, r.Len); e.live[idx].Load() {
			return fmt.Errorf("core: rule %s/%d already installed", r.Prefix, r.Len)
		}
	}
	if err := u.delta.insert(r); err != nil {
		return err
	}
	// The new rule is queryable through the overlay the moment the mutex
	// drops; cached results that the rule now shadows must die.
	e.epoch.Bump()
	return nil
}

// ModifyAction and Delete pass through to the engine's no-retrain paths
// (checking the delta buffer first for not-yet-committed rules).
func (u *Updatable) ModifyAction(prefix keys.Value, length int, action uint64) error {
	u.mu.Lock()
	if u.delta.modify(prefix, length, action) {
		u.mu.Unlock()
		u.engine.Load().epoch.Bump()
		return nil
	}
	u.mu.Unlock()
	return u.engine.Load().ModifyAction(prefix, length, action) // bumps on success
}

// Delete removes a rule from the delta buffer or, failing that, from the
// live engine (no retraining either way).
func (u *Updatable) Delete(prefix keys.Value, length int) error {
	u.mu.Lock()
	if u.delta.remove(prefix, length) {
		u.mu.Unlock()
		u.engine.Load().epoch.Bump()
		return nil
	}
	u.mu.Unlock()
	return u.engine.Load().Delete(prefix, length) // bumps on success
}

// Commit retrains an engine over the merged rule-set and swaps it in
// atomically, draining the delta buffer. Queries proceed against the old
// engine for the whole duration (§6.5: both versions coexist; free SRAM
// doubles as cache in hardware, so the transient costs bandwidth, not
// downtime).
func (u *Updatable) Commit() error {
	u.mu.Lock()
	pending := u.delta.rules()
	u.mu.Unlock()

	// Retrain off the lock: lookups and even further inserts may proceed.
	// A failure at any point before the swap leaves the delta buffer
	// untouched, so the pending rules stay visible through the overlay and
	// a later commit applies them exactly once.
	old := u.engine.Load()
	if hook := old.cfg.Fault; hook != nil {
		if err := hook(fault.SiteRetrain); err != nil {
			return err
		}
	}
	next, err := old.InsertBatch(pending)
	if err != nil {
		return err
	}
	if hook := old.cfg.Fault; hook != nil {
		if err := hook(fault.SiteSwap); err != nil {
			return err
		}
	}

	u.mu.Lock()
	defer u.mu.Unlock()
	// Remove exactly the committed rules from the buffer; rules inserted
	// during retraining stay pending for the next commit.
	for _, r := range pending {
		u.delta.remove(r.Prefix, r.Len)
	}
	u.engine.Store(next)
	// Bump strictly after the swap is visible (next shares old's epoch
	// pointer via InsertBatch): a reader that loads the post-bump epoch is
	// guaranteed — release on Bump, acquire on Load — to also see the new
	// engine pointer and the drained delta, so its fill reflects post-commit
	// state; a reader that loaded the pre-bump epoch fills dead entries.
	next.epoch.Bump()
	return nil
}

// deltaBuffer is a small overlay rule store with longest-prefix lookup. At
// TCAM-like sizes (≤10K rules) a per-length exact-match probe is plenty.
type deltaBuffer struct {
	width int
	byLen map[int]map[keys.Value]uint64
	total int
}

func newDeltaBuffer(width int) *deltaBuffer {
	return &deltaBuffer{width: width, byLen: map[int]map[keys.Value]uint64{}}
}

func (d *deltaBuffer) len() int { return d.total }

func (d *deltaBuffer) insert(r lpm.Rule) error {
	t, ok := d.byLen[r.Len]
	if !ok {
		t = map[keys.Value]uint64{}
		d.byLen[r.Len] = t
	}
	if _, dup := t[r.Prefix]; dup {
		return fmt.Errorf("core: rule %s/%d already pending", r.Prefix, r.Len)
	}
	t[r.Prefix] = r.Action
	d.total++
	return nil
}

func (d *deltaBuffer) remove(prefix keys.Value, length int) bool {
	t, ok := d.byLen[length]
	if !ok {
		return false
	}
	if _, ok := t[prefix]; !ok {
		return false
	}
	delete(t, prefix)
	d.total--
	return true
}

func (d *deltaBuffer) modify(prefix keys.Value, length int, action uint64) bool {
	t, ok := d.byLen[length]
	if !ok {
		return false
	}
	if _, ok := t[prefix]; !ok {
		return false
	}
	t[prefix] = action
	return true
}

// lookup returns the longest pending match.
func (d *deltaBuffer) lookup(k keys.Value) (action uint64, length int, ok bool) {
	for l := d.width; l >= 0; l-- {
		t, have := d.byLen[l]
		if !have {
			continue
		}
		key := k
		if l < d.width {
			shift := uint(d.width - l)
			key = k.Shr(shift).Shl(shift)
		}
		if a, hit := t[key]; hit {
			return a, l, true
		}
	}
	return 0, 0, false
}

func (d *deltaBuffer) rules() []lpm.Rule {
	out := make([]lpm.Rule, 0, d.total)
	for l, t := range d.byLen {
		for p, a := range t {
			out = append(out, lpm.Rule{Prefix: p, Len: l, Action: a})
		}
	}
	return out
}
