package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// TestPropertyEngineEqualsOracle drives testing/quick over randomly shaped
// rule-sets (width, count, seed all fuzzed) and asserts exact agreement
// with the trie oracle on boundary-adjacent keys — the strongest end-to-end
// invariant the paper claims ("RQRMI lookups are precise").
func TestPropertyEngineEqualsOracle(t *testing.T) {
	cfgSRAM := quickSRAMOnly()
	cfgBucket := quickBucketed()
	prop := func(seed int64, widthSel, sizeSel uint8, bucketized bool) bool {
		widths := []int{8, 16, 24, 32}
		width := widths[int(widthSel)%len(widths)]
		n := 20 + int(sizeSel)%200
		maxRules := 1 << (width - 2)
		if n > maxRules {
			n = maxRules
		}
		rs := randomRuleSet(t, width, n, seed)
		cfg := cfgSRAM
		if bucketized {
			cfg = cfgBucket
		}
		e, err := Build(rs, cfg)
		if err != nil {
			t.Logf("build failed: %v", err)
			return false
		}
		oracle := lpm.NewTrieMatcher(rs)
		check := func(k keys.Value) bool {
			got, gotOK := e.Lookup(k)
			want, wantOK := oracle.Lookup(k)
			return gotOK == wantOK && (!gotOK || got == want)
		}
		for _, r := range rs.Rules {
			lo, hi := r.Low(width), r.High(width)
			if !check(lo) || !check(hi) {
				return false
			}
			if !lo.IsZero() && !check(lo.Dec()) {
				return false
			}
			if hi != keys.MaxValue(width) && !check(hi.Inc()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUpdatesPreserveExactness applies a random interleaving of
// deletions and action modifications and checks the engine still agrees
// with an oracle over the surviving rules.
func TestPropertyUpdatesPreserveExactness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomRuleSet(t, 20, 120, seed)
		e, err := Build(rs, quickSRAMOnly())
		if err != nil {
			return false
		}
		live := map[int]uint64{}
		for i, r := range rs.Rules {
			live[i] = r.Action
		}
		for op := 0; op < 40; op++ {
			i := rng.Intn(rs.Len())
			r := rs.Rules[i]
			if _, alive := live[i]; !alive {
				continue
			}
			if rng.Intn(2) == 0 {
				if err := e.Delete(r.Prefix, r.Len); err != nil {
					return false
				}
				delete(live, i)
			} else {
				a := uint64(rng.Intn(1000))
				if err := e.ModifyAction(r.Prefix, r.Len, a); err != nil {
					return false
				}
				live[i] = a
			}
		}
		var survivors []lpm.Rule
		for i, a := range live {
			r := rs.Rules[i]
			r.Action = a
			survivors = append(survivors, r)
		}
		surSet, err := lpm.NewRuleSet(20, survivors)
		if err != nil {
			return false
		}
		oracle := lpm.NewTrieMatcher(surSet)
		for q := 0; q < 800; q++ {
			k := keys.FromUint64(uint64(rng.Intn(1 << 20)))
			got, gotOK := e.Lookup(k)
			want, wantOK := oracle.Lookup(k)
			if gotOK != wantOK || (gotOK && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySRAMAccountingConsistent: totals always itemize, directory
// always compresses, DRAM footprint only exists when bucketized.
func TestPropertySRAMAccountingConsistent(t *testing.T) {
	prop := func(seed int64, bucketSel uint8) bool {
		rs := randomRuleSet(t, 24, 150, seed)
		sizes := []int{0, 2, 4, 8, 16}
		bs := sizes[int(bucketSel)%len(sizes)]
		cfg := quickSRAMOnly()
		cfg.BucketSize = bs
		e, err := Build(rs, cfg)
		if err != nil {
			return false
		}
		u := e.SRAMUsage()
		if u.Total != u.Model+u.RQArray {
			return false
		}
		if bs >= 2 {
			return e.Bucketized() && e.DRAMFootprint() > 0 && u.RQArray < e.Ranges().SizeBytes()
		}
		return !e.Bucketized() && e.DRAMFootprint() == 0 && u.RQArray == e.Ranges().SizeBytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
