package core

import (
	"sync"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/plane"
	"neurolpm/internal/telemetry"
)

// This file is the stack executor (DESIGN.md §14): the one implementation of
// the composable lookup-plane pipeline — optional result-cache probe →
// inference (compiled, reference or quantized) → bounded secondary search →
// bucket fetch — that every exported Lookup* entry point wraps with a constant
// plane.StackConfig. The per-plane arms (lookup, lookupReference,
// finishBatch, the cached probe/fill bodies below) are the same out-of-line
// functions the pre-stack entry points compiled to, so dispatching on a
// constant config adds no work to the hot paths; the equivalence of every
// configuration against the trie oracle is enforced by
// internal/planetest (FuzzStackVsOracle, TestLookupEntryPointsEquivalent).

// LookupStack answers one key through the stack selected by st. c is the
// result cache for Cached stacks (nil degrades to the uncached pipeline with
// outcome None); uncached stacks ignore it.
func (e *Engine) LookupStack(st plane.StackConfig, k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	if st.Cached {
		return e.lookupCachedStack(st.Inference, k, c)
	}
	// Branch straight to the inference arm (no lookupInfer hop): single-key
	// stack dispatch stays one call frame over the inlined Lookup wrapper.
	switch st.Inference {
	case plane.Reference:
		tr := e.lookupReference(k, cachesim.Null{}, nil)
		return tr.Action, tr.Matched, lcache.None
	case plane.Quantized:
		tr := e.lookupQuantized(k, cachesim.Null{}, nil)
		return tr.Action, tr.Matched, lcache.None
	}
	tr := e.lookup(k, cachesim.Null{}, nil)
	return tr.Action, tr.Matched, lcache.None
}

// lookupInfer is the uncached single-key spine: run the st-selected inference
// plane and the shared post-inference tail, returning the full trace.
func (e *Engine) lookupInfer(inf plane.Inference, k keys.Value, mem cachesim.Mem) Trace {
	switch inf {
	case plane.Reference:
		return e.lookupReference(k, mem, nil)
	case plane.Quantized:
		return e.lookupQuantized(k, mem, nil)
	}
	return e.lookup(k, mem, nil)
}

// lookupCachedStack is the cached single-key arm: probe c at the epoch loaded
// before any engine state is read, fill misses through the inf-selected
// inference plane. The caller must own c exclusively for the duration (see
// lcache's single-owner contract); c == nil or an armed bypass degrades to
// the uncached pipeline with outcome None.
func (e *Engine) lookupCachedStack(inf plane.Inference, k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	if c.Bypassed(1) {
		tr := e.lookupInfer(inf, k, cachesim.Null{})
		return tr.Action, tr.Matched, lcache.None
	}
	// Flight sampling for the probe stage rides the cache's own plain tick
	// (the hit path must stay free of extra atomics). A probe-stage record
	// covers the whole cached query: on a hit it is probe-only; on a miss
	// the engine time shows up as total − probe, while the engine's own
	// independently-sampled records carry the stage split.
	var fr *telemetry.FlightRecord
	if telemetry.Flight.HitN(c.SampleTick()) {
		var rec telemetry.FlightRecord
		fr = &rec
		fr.Begin(k.Hi, k.Lo)
	}
	epoch := e.epoch.Load()
	action, ok, o = c.Get(k, epoch)
	fr.Stamp(plane.StageProbe)
	if o != lcache.Hit {
		tr := e.lookupInfer(inf, k, cachesim.Null{})
		action, ok = tr.Action, tr.Matched
		c.Put(k, epoch, action, ok)
	}
	if fr != nil {
		fr.Cache = uint8(o)
		fr.Shard = e.shardID
		fr.Action = action
		fr.Matched = ok
		telemetry.Flight.Commit(fr)
	}
	return action, ok, o
}

// LookupBatchStack resolves ks positionally through the stack selected by st:
// out[i] answers ks[i] (out is reused when it has capacity). Cached stacks
// probe every key first, resolve only the misses through the inference plane,
// and fill on the way out; epoch must then be the caller's
// CacheEpoch().Load() taken BEFORE any staleness check on surrounding state
// (see LookupBatchCached). DRAM bucket fetches route through mem.
func (e *Engine) LookupBatchStack(st plane.StackConfig, ks []keys.Value, out []BatchResult, mem cachesim.Mem, c *lcache.Cache, epoch uint64) []BatchResult {
	if st.Cached && !c.Bypassed(len(ks)) {
		return e.lookupBatchCachedStack(st.Inference, ks, out, mem, c, epoch)
	}
	if cap(out) < len(ks) {
		out = make([]BatchResult, len(ks))
	}
	out = out[:len(ks)]
	e.runBatch(st.Inference, ks, mem, func(i int, r BatchResult) { out[i] = r })
	return out
}

// runBatch is the inference plane of the batch stack — compiled or quantized
// pipelined blocks, or per-key reference arithmetic — driving the shared
// instrumented tail and delivering ks[i]'s answer through emit(i, result).
func (e *Engine) runBatch(inf plane.Inference, ks []keys.Value, mem cachesim.Mem, emit func(i int, r BatchResult)) {
	if inf == plane.Reference {
		for i, k := range ks {
			tr := e.lookupReference(k, mem, nil)
			emit(i, BatchResult{Action: tr.Action, Matched: tr.Matched})
		}
		return
	}
	e.finishBatch(inf, ks, mem, emit)
}

// missScratch carries one batch's miss gather buffers; pooled so concurrent
// cached batches stay allocation-free (pinned by TestCachedBatchZeroAllocs).
type missScratch struct {
	idx  []int32
	keys []keys.Value
}

var missScratchPool = sync.Pool{New: func() any { return new(missScratch) }}

// lookupBatchCachedStack is the cached batch arm: probe all keys at the
// caller-loaded epoch, gather the misses, resolve them through the
// inf-selected inference plane, scatter the answers back and fill the cache
// on the way out.
func (e *Engine) lookupBatchCachedStack(inf plane.Inference, ks []keys.Value, out []BatchResult, mem cachesim.Mem, c *lcache.Cache, epoch uint64) []BatchResult {
	if cap(out) < len(ks) {
		out = make([]BatchResult, len(ks))
	}
	out = out[:len(ks)]
	sc := missScratchPool.Get().(*missScratch)
	miss := sc.idx[:0]
	for i, k := range ks {
		a, m, o := c.Get(k, epoch)
		if o == lcache.Hit {
			out[i] = BatchResult{Action: a, Matched: m}
		} else {
			miss = append(miss, int32(i))
		}
	}
	if len(miss) > 0 {
		if cap(sc.keys) < len(miss) {
			sc.keys = make([]keys.Value, len(miss))
		}
		mk := sc.keys[:len(miss)]
		for j, i := range miss {
			mk[j] = ks[i]
		}
		e.runBatch(inf, mk, mem, func(j int, r BatchResult) {
			out[miss[j]] = r
			c.Put(mk[j], epoch, r.Action, r.Matched)
		})
		sc.keys = mk
	}
	sc.idx = miss
	missScratchPool.Put(sc)
	return out
}

// LookupStack answers one key against the delta overlay + engine through the
// stack selected by st (the Updatable analogue of Engine.LookupStack).
func (u *Updatable) LookupStack(st plane.StackConfig, k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	if st.Cached {
		return u.lookupCachedStack(st.Inference, k, c)
	}
	action, ok = u.lookupOverlay(st.Inference, k)
	return action, ok, lcache.None
}

// lookupCachedStack is the Updatable's cached single-key arm. The epoch is
// loaded before either the delta or the engine is read, so a fill can never
// carry a pre-update answer under a post-update stamp.
func (u *Updatable) lookupCachedStack(inf plane.Inference, k keys.Value, c *lcache.Cache) (action uint64, ok bool, o lcache.Outcome) {
	if c.Bypassed(1) {
		action, ok = u.lookupOverlay(inf, k)
		return action, ok, lcache.None
	}
	eng := u.engine.Load()
	var fr *telemetry.FlightRecord
	if telemetry.Flight.HitN(c.SampleTick()) {
		var rec telemetry.FlightRecord
		fr = &rec
		fr.Begin(k.Hi, k.Lo)
	}
	epoch := eng.epoch.Load()
	action, ok, o = c.Get(k, epoch)
	fr.Stamp(plane.StageProbe)
	if o != lcache.Hit {
		action, ok = u.lookupOverlay(inf, k)
		c.Put(k, epoch, action, ok)
	}
	if fr != nil {
		fr.Cache = uint8(o)
		fr.Shard = eng.shardID
		fr.Action = action
		fr.Matched = ok
		telemetry.Flight.Commit(fr)
	}
	return action, ok, o
}
