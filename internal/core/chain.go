package core

import (
	"fmt"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// Chain models the policy-based-routing pattern of App 2 (§3.1): virtual
// switches such as Open vSwitch evaluate several rule tables sequentially,
// so one packet issues multiple dependent LPM queries. Each stage matches
// on a key derived from the packet and the previous stage's action; the
// per-stage latency bound of the engine (R3) is what keeps the chain's
// total latency within the few-µs budget of production NICs.
type Chain struct {
	stages []ChainStage
}

// ChainStage is one table in the chain.
type ChainStage struct {
	Name    string
	Matcher lpm.Matcher
	// NextKey derives the key for the following stage from the current key
	// and this stage's matched action. A nil NextKey forwards the key
	// unchanged.
	NextKey func(k keys.Value, action uint64) keys.Value
}

// NewChain builds a chain of at least one stage.
func NewChain(stages ...ChainStage) (*Chain, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: empty chain")
	}
	for i, s := range stages {
		if s.Matcher == nil {
			return nil, fmt.Errorf("core: chain stage %d (%q) has no matcher", i, s.Name)
		}
	}
	return &Chain{stages: append([]ChainStage(nil), stages...)}, nil
}

// Len returns the number of stages.
func (c *Chain) Len() int { return len(c.stages) }

// ChainResult records one packet's walk through the chain.
type ChainResult struct {
	Actions []uint64 // per-stage matched actions (up to the miss, if any)
	Matched bool     // true when every stage matched
	Misses  int      // index of the first stage that missed, or -1
}

// Lookup evaluates the chain: stage i+1's key derives from stage i's
// result. Evaluation stops at the first miss, mirroring a virtual switch
// dropping to its slow path.
func (c *Chain) Lookup(k keys.Value) ChainResult {
	res := ChainResult{Misses: -1}
	cur := k
	for i, s := range c.stages {
		action, ok := s.Matcher.Lookup(cur)
		if !ok {
			res.Misses = i
			return res
		}
		res.Actions = append(res.Actions, action)
		if s.NextKey != nil {
			cur = s.NextKey(cur, action)
		}
	}
	res.Matched = true
	return res
}
