package core

import (
	"math/rand"
	"sync"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/telemetry"
)

// TestBucketFetchInvariant drives a bucketized engine and asserts the §7
// invariant as the telemetry layer reports it: exactly one DRAM bucket
// fetch per bucketized lookup, so the live gauge reads exactly 1.0.
func TestBucketFetchInvariant(t *testing.T) {
	rs := randomRuleSet(t, 32, 400, 7)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}

	fetches := telemetry.Default.Counter("neurolpm_bucket_fetches_total", "")
	bucketized := telemetry.Default.Counter("neurolpm_bucketized_lookups_total", "")
	f0, b0 := fetches.Load(), bucketized.Load()

	const n = 5000
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		e.Lookup(randomKey(rng, 32))
	}

	fd, bd := fetches.Load()-f0, bucketized.Load()-b0
	if bd != n {
		t.Fatalf("bucketized lookups delta = %d, want %d", bd, n)
	}
	if fd != n {
		t.Fatalf("bucket fetches delta = %d, want %d (§7: exactly one per query)", fd, n)
	}

	// The live gauge must read exactly 1.0 — every bucketized lookup this
	// process ever served did exactly one fetch.
	snap := telemetry.Default.Snapshot()
	if g := snap["neurolpm_bucket_fetches_per_query"]; g != 1.0 {
		t.Fatalf("neurolpm_bucket_fetches_per_query = %v, want exactly 1.0", g)
	}
}

// TestSRAMOnlyNoFetches checks the complementary invariant: the SRAM-only
// design never touches the bucket path.
func TestSRAMOnlyNoFetches(t *testing.T) {
	rs := randomRuleSet(t, 32, 300, 9)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	fetches := telemetry.Default.Counter("neurolpm_bucket_fetches_total", "")
	f0 := fetches.Load()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		e.Lookup(randomKey(rng, 32))
	}
	if d := fetches.Load() - f0; d != 0 {
		t.Fatalf("SRAM-only engine issued %d bucket fetches", d)
	}
}

// TestLookupPathsAgree pins the satellite requirement that Lookup,
// LookupMem and LookupSpan share one implementation: identical results and
// identical per-query statistics for the same key.
func TestLookupPathsAgree(t *testing.T) {
	rs := randomRuleSet(t, 32, 500, 21)
	for name, cfg := range map[string]Config{"sram": quickSRAMOnly(), "bucketized": quickBucketed()} {
		e, err := Build(rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			k := randomKey(rng, 32)
			trMem := e.LookupMem(k, cachesim.Null{})
			trSpan, sp := e.LookupSpan(k, cachesim.Null{})
			action, ok := e.Lookup(k)
			if trMem != trSpan {
				t.Fatalf("%s: LookupMem %+v != LookupSpan %+v", name, trMem, trSpan)
			}
			if ok != trMem.Matched || (ok && action != trMem.Action) {
				t.Fatalf("%s: Lookup (%d,%v) disagrees with trace (%d,%v)",
					name, action, ok, trMem.Action, trMem.Matched)
			}
			if sp == nil || sp.TotalNs <= 0 {
				t.Fatalf("%s: span missing timing", name)
			}
			wantStages := 2
			if trMem.BucketRead {
				wantStages = 3
			}
			if len(sp.Stages) != wantStages {
				t.Fatalf("%s: span has %d stages, want %d: %+v", name, len(sp.Stages), wantStages, sp.Stages)
			}
		}
	}
}

// TestConcurrentLookups exercises the instrumented hot path from many
// goroutines (run under -race in CI): the engine is read-only at query time
// and the telemetry layer is lock-free, so parallel lookups must be safe
// and must not lose counter updates.
func TestConcurrentLookups(t *testing.T) {
	rs := randomRuleSet(t, 32, 400, 13)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	lookups := telemetry.Default.Counter("neurolpm_lookups_total", "")
	l0 := lookups.Load()

	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				e.Lookup(randomKey(rng, 32))
			}
		}(int64(w))
	}
	wg.Wait()
	if d := lookups.Load() - l0; d != workers*per {
		t.Fatalf("lookup counter delta = %d, want %d (lost updates)", d, workers*per)
	}
}

// lookupBaseline is today's query path stripped of every telemetry update —
// an idealized floor — so Instrumented−Baseline measures the raw cost of the
// always-on counters. It must mirror lookup()'s arithmetic.
func (e *Engine) lookupBaseline(k keys.Value) (uint64, bool) {
	p := e.model.Predict(k)
	var rangeIdx int
	if e.dir == nil {
		rangeIdx, _ = e.model.Search(e.ra, k, p)
	} else {
		b, _ := e.model.Search(e.dir, k, p)
		rangeIdx, _ = e.dir.Search(b, k)
	}
	return e.resolve(rangeIdx)
}

// benchSink defeats dead-code elimination in lookupSeed.
var benchSink uint64

// lookupSeed replicates the seed LookupMem arithmetic — which predicted
// TWICE (once for the trace, once inside Model.Lookup) and computed the DRAM
// address — without any telemetry. Instrumented vs Seed is the acceptance
// comparison: the PR must hold the public Lookup within 2% of the seed.
func (e *Engine) lookupSeed(k keys.Value) (uint64, bool) {
	p := e.model.Predict(k)
	benchSink += uint64(p.Index)
	var rangeIdx int
	if e.dir == nil {
		rangeIdx, _ = e.model.Search(e.ra, k, e.model.Predict(k))
	} else {
		b, _ := e.model.Search(e.dir, k, e.model.Predict(k))
		eb := uint64(e.dir.Array().BytesPerEntry())
		benchSink += uint64(b)*uint64(e.dir.K)*eb + eb
		rangeIdx, _ = e.dir.Search(b, k)
	}
	return e.resolve(rangeIdx)
}

func benchEngine(b *testing.B, cfg Config) (*Engine, []keys.Value) {
	b.Helper()
	rs := randomRuleSet(b, 32, 20000, 42)
	e, err := Build(rs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	keysArr := make([]keys.Value, 1<<14)
	for i := range keysArr {
		keysArr[i] = randomKey(rng, 32)
	}
	return e, keysArr
}

// The instrumented/baseline benchmark pair: CI compares these to hold the
// always-on telemetry within noise (≤2%) of the seed lookup path. The
// baseline performs no telemetry at all and even skips the DRAMAddr address
// arithmetic, so the measured delta upper-bounds the instrumentation cost.
func BenchmarkLookupInstrumented(b *testing.B) {
	e, ks := benchEngine(b, quickBucketed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(ks[i&(1<<14-1)])
	}
}

func BenchmarkLookupBaseline(b *testing.B) {
	e, ks := benchEngine(b, quickBucketed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.lookupBaseline(ks[i&(1<<14-1)])
	}
}

func BenchmarkLookupInstrumentedSRAMOnly(b *testing.B) {
	e, ks := benchEngine(b, quickSRAMOnly())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(ks[i&(1<<14-1)])
	}
}

func BenchmarkLookupBaselineSRAMOnly(b *testing.B) {
	e, ks := benchEngine(b, quickSRAMOnly())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.lookupBaseline(ks[i&(1<<14-1)])
	}
}

func BenchmarkLookupSeed(b *testing.B) {
	e, ks := benchEngine(b, quickBucketed())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.lookupSeed(ks[i&(1<<14-1)])
	}
}

func BenchmarkLookupSeedSRAMOnly(b *testing.B) {
	e, ks := benchEngine(b, quickSRAMOnly())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.lookupSeed(ks[i&(1<<14-1)])
	}
}
