// Package core implements the NeuroLPM engine — the paper's primary
// contribution (§4): an LPM engine whose query path is RQRMI inference
// followed by a bounded secondary search, with optional bucketization to
// scale past on-chip SRAM.
//
// Build performs the offline rule-set preparation stage:
//
//  1. conversion of LPM rules into a sorted range array (§5.1),
//  2. optional bucketization when the array exceeds the SRAM budget (§7),
//  3. RQRMI training over the SRAM-resident RQ Array.
//
// Lookup executes the online query path of Figure 3: inference → secondary
// search → (bucketized designs only) one bucket fetch from DRAM → bucket
// search.
package core

import (
	"fmt"
	"sync/atomic"

	"neurolpm/internal/bucket"
	"neurolpm/internal/cachesim"
	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/ranges"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/telemetry"
	"neurolpm/internal/tier"
)

// Config configures an engine build.
type Config struct {
	// BucketSize is the number of ranges per bucket. Zero selects the
	// SRAM-only design (the whole range array is the RQ Array). The paper's
	// DRAM evaluation uses 32-byte buckets, i.e. 8 ranges of 4 bytes.
	BucketSize int
	// Model configures RQRMI training; the zero value selects
	// rqrmi.DefaultConfig.
	Model rqrmi.Config
	// Fault, when non-nil, is consulted at the update-path injection
	// sites (retrain, swap, delta-full — see internal/fault). The query
	// path never fires it; production builds leave it nil and pay one
	// nil-check per commit/insert. The hook rides Config so engine
	// rebuilds (InsertBatch → Build) inherit it automatically.
	Fault fault.Hook
	// Tier enables the two-tier bucket store (DESIGN.md §16) for bucketized
	// engines of width ≤ 64. Like Fault it rides Config so rebuilds inherit
	// it; a rebuilt engine starts all-fast and re-learns placement.
	Tier tier.Config
}

// DefaultConfig returns the paper's evaluated configuration: 32-byte buckets
// (8 × 4-byte ranges) and the 1/4/64 RQRMI model.
func DefaultConfig() Config {
	return Config{BucketSize: 8, Model: rqrmi.DefaultConfig()}
}

// SRAMOnlyConfig returns the SRAM-only design (§6): no bucketization.
func SRAMOnlyConfig() Config {
	return Config{Model: rqrmi.DefaultConfig()}
}

// Engine is a built NeuroLPM engine. It is safe for concurrent lookups;
// updates require external synchronization (the hardware analogue swaps
// whole engine instances atomically, §6.5).
type Engine struct {
	cfg   Config
	width int
	rules *lpm.RuleSet
	// live holds tombstones for deleted rules (parallel to rules.Rules).
	// Delete flips entries while lock-free readers consult them in resolve,
	// so access is atomic; everything else in the engine is immutable after
	// build or rewritten only through the atomic ranges.Array accessors.
	live  []atomic.Bool
	ra    *ranges.Array
	dir   *bucket.Directory // nil in the SRAM-only design
	model *rqrmi.Model
	stats *rqrmi.Stats
	trie  *lpm.Trie // lazily built on first Delete; indexes e.rules.Rules

	// Observability-plane attachments (DESIGN.md §13): drift watches the
	// observed secondary search against the compiled probe ceiling, hot
	// sketches per-bucket access frequency, shardID tags flight records.
	// Build creates both — a rebuilt engine gets fresh meters because a new
	// model means a new bound and new bucket geometry — and only the sampled
	// 1:sampleEvery branch ever feeds them.
	shardID int32
	drift   *telemetry.DriftMeter
	hot     *telemetry.HotSketch

	// The compiled query plane (DESIGN.md §10): comp mirrors model + index
	// in flat devirtualized storage and serves every hot lookup; the model
	// remains the reference arithmetic (LookupReference, Verify). quant is
	// the int32 fixed-point re-encoding of the same model (DESIGN.md §15),
	// carrying its own error bounds recomputed in the integer arithmetic —
	// selected per lookup by plane.StackConfig.Inference. For bucketized
	// engines of width ≤ 64, rangeLows64 additionally flattens the full
	// range array's bounds — the DRAM bucket array — so the bucket scan
	// compares bare uint64s. All are immutable after build: updates re-own
	// ranges or rewrite actions but never move a boundary.
	comp        *rqrmi.Compiled
	quant       *rqrmi.Quantized
	rangeLows64 []uint64

	// tiers is the two-tier bucket placement map (DESIGN.md §16), non-nil
	// only when cfg.Tier enables it on a bucketized ≤ 64-bit engine. The
	// disabled configuration pays a single nil check per bucket fetch.
	tiers *tier.Store

	// epoch is the result-cache invalidation counter (DESIGN.md §12). Every
	// post-build mutation — tombstone Delete, ModifyAction — bumps it, and
	// InsertBatch hands the same pointer to the rebuilt engine so the counter
	// is monotonic across an Updatable lineage's engine swaps (an epoch that
	// restarted at 1 per engine would let a stale entry from a prior engine
	// collide with a live epoch).
	epoch *lcache.Epoch
}

// CacheEpoch exposes the engine's result-cache invalidation counter.
// Lookup-cache users load it before touching engine state and stamp fills
// with the loaded value (see internal/lcache).
func (e *Engine) CacheEpoch() *lcache.Epoch { return e.epoch }

// Build runs the offline preparation stage on the rule-set.
func Build(rs *lpm.RuleSet, cfg Config) (*Engine, error) {
	if rs == nil {
		return nil, fmt.Errorf("core: nil rule-set")
	}
	if cfg.Model.StageWidths == nil {
		cfg.Model = rqrmi.DefaultConfig()
	}
	if cfg.BucketSize == 1 || cfg.BucketSize < 0 {
		return nil, fmt.Errorf("core: invalid bucket size %d", cfg.BucketSize)
	}
	ra, err := ranges.Convert(rs)
	if err != nil {
		return nil, fmt.Errorf("core: range conversion: %w", err)
	}
	e := &Engine{
		cfg:   cfg,
		width: rs.Width,
		rules: rs.Clone(),
		live:  make([]atomic.Bool, rs.Len()),
		ra:    ra,
		epoch: new(lcache.Epoch),
	}
	for i := range e.live {
		e.live[i].Store(true)
	}
	var ix rqrmi.Index = ra
	if cfg.BucketSize >= 2 {
		d, err := bucket.Build(ra, cfg.BucketSize)
		if err != nil {
			return nil, err
		}
		e.dir = d
		ix = d
	}
	model, stats, err := rqrmi.Train(ix, rs.Width, cfg.Model)
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}
	e.model = model
	e.stats = stats
	if err := e.compilePlane(ix); err != nil {
		return nil, err
	}
	e.attachObservers(ix)
	return e, nil
}

// attachObservers creates the engine's drift meter and hotness sketch from
// the query planes (probe ceiling) and learned-index geometry (bucket count;
// for SRAM-only engines the "buckets" are the ranges themselves). The drift
// bound is the max of the compiled and quantized ceilings, so the meter never
// flags a healthy quantized lookup whose (slightly looser) integer bound
// admits more probes than the float plane's.
func (e *Engine) attachObservers(ix rqrmi.Index) {
	e.drift = telemetry.NewDriftMeter()
	bound := e.comp.MaxErr()
	if qb := e.quant.MaxErr(); qb > bound {
		bound = qb
	}
	e.drift.SetBound(bound)
	e.hot = telemetry.NewHotSketch(ix.Len())
}

// compilePlane flattens the trained model and index into the compiled query
// plane and its fixed-point re-encoding (plus the flat bucket-array bounds
// for bucketized ≤ 64-bit engines).
func (e *Engine) compilePlane(ix rqrmi.Index) error {
	c, err := rqrmi.Compile(e.model, ix)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.comp = c
	q, err := rqrmi.CompileQuantized(e.model, ix)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.quant = q
	if e.dir != nil && e.width <= 64 {
		e.rangeLows64 = make([]uint64, e.ra.Len())
		for i := range e.rangeLows64 {
			e.rangeLows64[i] = e.ra.Entries[i].Low.Lo
		}
		if e.cfg.Tier.Enabled {
			e.tiers = tier.New(e.rangeLows64, e.dir.K, e.ra.BytesPerEntry(), e.cfg.Tier)
		}
	}
	return nil
}

// BuildWithModel assembles an engine around a previously trained and
// serialized model, skipping training — the deployment path where the
// control plane trains once and ships the model to the data plane (§6.5).
// The model must have been trained on exactly the RQ Array this rule-set
// and bucket size produce; a cheap shape check rejects mismatches and a
// full analytical verification can be requested.
func BuildWithModel(rs *lpm.RuleSet, cfg Config, m *rqrmi.Model, verify bool) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	if cfg.BucketSize == 1 || cfg.BucketSize < 0 {
		return nil, fmt.Errorf("core: invalid bucket size %d", cfg.BucketSize)
	}
	ra, err := ranges.Convert(rs)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:   cfg,
		width: rs.Width,
		rules: rs.Clone(),
		live:  make([]atomic.Bool, rs.Len()),
		ra:    ra,
		model: m,
		epoch: new(lcache.Epoch),
	}
	for i := range e.live {
		e.live[i].Store(true)
	}
	var ix rqrmi.Index = ra
	if cfg.BucketSize >= 2 {
		d, err := bucket.Build(ra, cfg.BucketSize)
		if err != nil {
			return nil, err
		}
		e.dir = d
		ix = d
	}
	if m.Width != rs.Width || m.N != ix.Len() {
		return nil, fmt.Errorf("core: model shape (width %d, N %d) does not match RQ Array (width %d, N %d)",
			m.Width, m.N, rs.Width, ix.Len())
	}
	if verify {
		if ok, witness := m.Verify(ix); !ok {
			return nil, fmt.Errorf("core: model error bound violated at key %v", witness)
		}
	}
	if err := e.compilePlane(ix); err != nil {
		return nil, err
	}
	e.attachObservers(ix)
	return e, nil
}

// Width returns the key bit width.
func (e *Engine) Width() int { return e.width }

// Model exposes the trained RQRMI model (read-only use).
func (e *Engine) Model() *rqrmi.Model { return e.model }

// Compiled exposes the flat query plane serving the hot lookup path.
func (e *Engine) Compiled() *rqrmi.Compiled { return e.comp }

// Quantized exposes the int32 fixed-point query plane (DESIGN.md §15).
func (e *Engine) Quantized() *rqrmi.Quantized { return e.quant }

// TrainStats returns statistics from the build's training phase.
func (e *Engine) TrainStats() *rqrmi.Stats { return e.stats }

// DriftMeter exposes the engine's model-drift meter (observed secondary
// search vs the compiled probe ceiling).
func (e *Engine) DriftMeter() *telemetry.DriftMeter { return e.drift }

// HotSketch exposes the engine's decaying bucket-hotness sketch.
func (e *Engine) HotSketch() *telemetry.HotSketch { return e.hot }

// TierStore exposes the two-tier bucket placement map, or nil when the
// engine is untiered (SRAM-only, width > 64, or cfg.Tier disabled).
func (e *Engine) TierStore() *tier.Store { return e.tiers }

// RebalanceTier runs one tier placement pass driven by the engine's hotness
// sketch (demotions) and the store's burst counters (promotions), then
// publishes any migration through the per-shard cache epoch: a placement
// change is an engine-state change, so cached planes re-probe instead of
// trusting entries filled under the previous tier map. No-op (0,0) on
// untiered engines.
func (e *Engine) RebalanceTier() (promoted, demoted int) {
	if e.tiers == nil {
		return 0, 0
	}
	promoted, demoted = e.tiers.Rebalance(e.hot)
	if promoted+demoted > 0 {
		e.epoch.Bump()
	}
	return promoted, demoted
}

// SetShardID tags the engine's flight records with its shard index (the
// sharded router calls this at build; rebuilds inherit it via InsertBatch).
func (e *Engine) SetShardID(id int) { e.shardID = int32(id) }

// Ranges exposes the underlying range array (read-only use).
func (e *Engine) Ranges() *ranges.Array { return e.ra }

// Directory returns the bucket directory, or nil for SRAM-only engines.
func (e *Engine) Directory() *bucket.Directory { return e.dir }

// Bucketized reports whether the engine uses the DRAM design.
func (e *Engine) Bucketized() bool { return e.dir != nil }

// Lookup returns the action of the longest-prefix rule matching k.
// ok is false when no live rule matches.
//
// Equivalence contract: every Lookup* variant — single-key or batch, Mem or
// not, cached or not, reference or compiled, directly or through the sharded
// router — must return exactly what the trie oracle returns for every key,
// including misses. Lookup is the stack executor's compiled-uncached
// configuration (LookupStack with the zero plane.StackConfig); the contract
// across the full configuration matrix is enforced by the parameterized
// harness in internal/planetest (FuzzStackVsOracle,
// TestLookupEntryPointsEquivalent).
func (e *Engine) Lookup(k keys.Value) (action uint64, ok bool) {
	tr := e.lookup(k, cachesim.Null{}, nil)
	return tr.Action, tr.Matched
}

// Trace describes one query's path through the engine, in the units the
// paper's evaluation reports.
type Trace struct {
	Prediction rqrmi.Prediction
	SRAMProbes int  // secondary-search probes into the RQ Array (SRAM)
	BucketRead bool // whether a DRAM bucket fetch was needed
	ColdRead   bool // the bucket fetch was served from the slow tier (§16)
	DRAMBytes  int  // bytes requested from DRAM (before caching)
	RangeIndex int  // resolved index in the full range array
	Action     uint64
	Matched    bool
}

// LookupMem executes the query, routing any DRAM-resident accesses through
// mem (a cache or traffic counter). For the SRAM-only design no accesses are
// issued. The returned trace carries the per-query statistics.
func (e *Engine) LookupMem(k keys.Value, mem cachesim.Mem) Trace {
	return e.lookup(k, mem, nil)
}

// LookupMemInfer is LookupMem with an explicit inference plane: the compiled
// float32 arm, the reference Model walk, or the quantized fixed-point arm.
// All three obey the oracle-equivalence contract; only the inference
// arithmetic and cost differ.
func (e *Engine) LookupMemInfer(inf plane.Inference, k keys.Value, mem cachesim.Mem) Trace {
	switch inf {
	case plane.Reference:
		return e.lookupReference(k, mem, nil)
	case plane.Quantized:
		return e.lookupQuantized(k, mem, nil)
	default:
		return e.lookup(k, mem, nil)
	}
}

// LookupSpan executes the query while recording a fully-annotated span:
// per-stage timings (inference → secondary search → bucket fetch), the
// inference error bound, probe counts and DRAM traffic. It is the /trace
// endpoint's implementation; the span costs clock reads and allocation, so
// the plain Lookup paths pass a nil span instead.
func (e *Engine) LookupSpan(k keys.Value, mem cachesim.Mem) (Trace, *telemetry.Span) {
	return e.LookupSpanInfer(plane.Compiled, k, mem)
}

// LookupSpanInfer is LookupSpan with an explicit inference plane; the span's
// first stage is labeled after the arm that ran ("inference",
// "reference-inference" or "quantized-inference"), so /trace output
// identifies the arithmetic that produced the prediction.
func (e *Engine) LookupSpanInfer(inf plane.Inference, k keys.Value, mem cachesim.Mem) (Trace, *telemetry.Span) {
	sp := telemetry.StartSpan("lookup")
	var tr Trace
	switch inf {
	case plane.Reference:
		tr = e.lookupReference(k, mem, sp)
	case plane.Quantized:
		tr = e.lookupQuantized(k, mem, sp)
	default:
		tr = e.lookup(k, mem, sp)
	}
	sp.Set("key", k.String())
	sp.Set("predicted_index", tr.Prediction.Index)
	sp.Set("error_bound", tr.Prediction.Err)
	sp.Set("submodel", tr.Prediction.Submodel)
	sp.Set("sram_probes", tr.SRAMProbes)
	sp.Set("bucket_read", tr.BucketRead)
	sp.Set("cold_read", tr.ColdRead)
	sp.Set("dram_bytes", tr.DRAMBytes)
	sp.Set("range_index", tr.RangeIndex)
	sp.Set("matched", tr.Matched)
	if tr.Matched {
		sp.Set("action", tr.Action)
	}
	sp.End()
	return tr, sp
}

// lookup is the single instrumented implementation behind Lookup, LookupMem
// and LookupSpan: one compiled-plane inference, one bounded secondary
// search, and (for bucketized engines) exactly one DRAM bucket fetch.
// Telemetry counters are always updated; stage timings are recorded only
// when sp is non-nil or the query drew a flight-recorder sample.
func (e *Engine) lookup(k keys.Value, mem cachesim.Mem, sp *telemetry.Span) Trace {
	var tr Trace
	// One counter tick serves three masters: the exact lookups_total count,
	// the 1:sampleEvery distribution sampling in finish, and the
	// flight-recorder sampling decision — no second atomic on the hot path.
	n := metLookups.Inc()
	var fr *telemetry.FlightRecord
	if telemetry.Flight.HitN(n) {
		var rec telemetry.FlightRecord // stack-allocated; Commit copies it out
		fr = &rec
		fr.Begin(k.Hi, k.Lo)
	}
	end := sp.Stage("inference")
	tr.Prediction = e.comp.Predict(k)
	end()
	fr.Stamp(plane.StageInference)
	e.finish(k, &tr, mem, sp, plane.Compiled, n, fr)
	return tr
}

// lookupQuantized is the quantized-inference single-key arm: the same
// instrumented pipeline as lookup, with prediction and bounded search running
// the int32 fixed-point plane (and its own error bounds) instead of the
// float32 one. It feeds the flight recorder like the compiled arm — both are
// production planes; only the reference arm is excluded.
func (e *Engine) lookupQuantized(k keys.Value, mem cachesim.Mem, sp *telemetry.Span) Trace {
	var tr Trace
	n := metLookups.Inc()
	var fr *telemetry.FlightRecord
	if telemetry.Flight.HitN(n) {
		var rec telemetry.FlightRecord
		fr = &rec
		fr.Begin(k.Hi, k.Lo)
	}
	end := sp.Stage("quantized-inference")
	tr.Prediction = e.quant.Predict(k)
	end()
	fr.Stamp(plane.StageInference)
	e.finish(k, &tr, mem, sp, plane.Quantized, n, fr)
	return tr
}

// bucketScan resolves k within bucket b over the flat bounds copy: the same
// in-order hardware scan as bucket.Directory.Search (identical index and
// comparison count), with one uint64 load per compared bound instead of a
// 24-byte Entry.
func (e *Engine) bucketScan(b int, k keys.Value) (idx, comparisons int) {
	start, end := e.dir.Bounds(b)
	kk := k.Lo
	if k.Hi != 0 {
		kk = ^uint64(0) // out-of-domain key: above every ≤ 64-bit bound
	}
	idx = start
	for i := start + 1; i < end; i++ {
		comparisons++
		if kk < e.rangeLows64[i] {
			break
		}
		idx = i
	}
	return idx, comparisons
}

// finish runs the post-inference pipeline — secondary search, bucket fetch,
// action resolution, telemetry — shared by every inference arm, single-key
// and batch. inf selects the bounded-search arithmetic matching the caller's
// prediction: the search must consume the same plane's error bound it was
// predicted under (quantized bounds cover quantized predictions, not float
// ones), after which all three arms land on the identical true index — per
// Verify — and share the rest of the pipeline. tr.Prediction must already be
// populated; n is the caller's lookup-counter tick (metLookups.Inc()) and fr
// the in-flight sample, nil for the other 63-in-64 queries.
func (e *Engine) finish(k keys.Value, tr *Trace, mem cachesim.Mem, sp *telemetry.Span, inf plane.Inference, n uint64, fr *telemetry.FlightRecord) {
	end := sp.Stage("secondary-search")
	var b int
	switch inf {
	case plane.Reference:
		var ix rqrmi.Index = e.ra
		if e.dir != nil {
			ix = e.dir
		}
		b, tr.SRAMProbes = e.model.Search(ix, k, tr.Prediction)
	case plane.Quantized:
		b, tr.SRAMProbes = e.quant.Search(k, tr.Prediction)
	default:
		b, tr.SRAMProbes = e.comp.Search(k, tr.Prediction)
	}
	end()
	fr.Stamp(plane.StageSearch)
	var cmp int
	if e.dir == nil {
		tr.RangeIndex = b
	} else {
		end = sp.Stage("bucket-fetch")
		addr, size := e.dir.DRAMAddr(b)
		mem.Read(addr, size)
		tr.BucketRead = true
		tr.DRAMBytes = size
		// Tiered engines route the fetch through the placement map first: a
		// cold bucket resolves against its slow-tier copy (same bounds, same
		// scan, so the answer is identical — only the charged latency and the
		// tier counters differ), still exactly one bucket fetch per query.
		// All three inference arms share the routing; bounds are immutable,
		// so a migration racing this lookup cannot change the result.
		if t := e.tiers; t != nil {
			kk := k.Lo
			if k.Hi != 0 {
				kk = ^uint64(0) // out-of-domain key: above every ≤ 64-bit bound
			}
			if idx, c, cold := t.Fetch(b, kk); cold {
				tr.RangeIndex, cmp = idx, c
				tr.ColdRead = true
			} else if inf != plane.Reference {
				tr.RangeIndex, cmp = e.bucketScan(b, k)
			} else {
				tr.RangeIndex, cmp = e.dir.Search(b, k)
			}
		} else if inf != plane.Reference && e.rangeLows64 != nil {
			tr.RangeIndex, cmp = e.bucketScan(b, k)
		} else {
			tr.RangeIndex, cmp = e.dir.Search(b, k)
		}
		end()
		fr.Stamp(plane.StageFetch)
		metBucketized.Inc()
	}
	tr.Action, tr.Matched = e.resolve(tr.RangeIndex)
	if tr.Matched {
		metMatched.Inc()
	}
	// The per-query distributions are sampled 1:sampleEvery; an uncontended
	// atomic RMW costs ~5ns on the reference machine, so observing three
	// histograms on every query would alone blow the ≤2% overhead budget.
	// Counters above stay exact — only distribution shape is sampled. The
	// drift meter and hotness sketch ride the same sampled branch, so their
	// marginal hot-path cost is a fraction of a nanosecond per lookup.
	if n&(sampleEvery-1) == 0 {
		metProbes.ObserveInt(tr.SRAMProbes)
		metInferErr.ObserveInt(tr.Prediction.Err)
		if tr.BucketRead {
			metBucketCmp.ObserveInt(cmp)
		}
		if e.drift != nil {
			e.drift.Observe(tr.SRAMProbes)
			e.hot.Touch(uint32(b))
		}
	}
	if fr != nil {
		fr.Probes = int32(tr.SRAMProbes)
		fr.ErrBound = int32(tr.Prediction.Err)
		fr.Shard = e.shardID
		fr.Action = tr.Action
		fr.Matched = tr.Matched
		fr.BucketRead = tr.BucketRead
		telemetry.Flight.Commit(fr)
	}
}

// LookupReference answers k through the reference-inference arm of the stack
// executor: Model.Predict's pointer-chasing LUT walk and the Index-interface
// bounded search, with the same telemetry and DRAM accounting as Lookup. It
// is LookupStack with the reference-uncached configuration, and it obeys the
// same equivalence contract as Lookup: bit-identical to the compiled plane
// and to the trie oracle on every key (enforced per-build by Verify and
// across the matrix by internal/planetest's parameterized harness). Only the
// cost differs, which is what the E23 reference-vs-compiled experiment
// measures.
func (e *Engine) LookupReference(k keys.Value) (action uint64, ok bool) {
	tr := e.lookupReference(k, cachesim.Null{}, nil)
	return tr.Action, tr.Matched
}

// LookupQuantized answers k through the quantized-inference arm of the stack
// executor: int32 shift-add inference and a bounded search driven by the
// plane's own integer-arithmetic error bounds. It is LookupStack with the
// quantized-uncached configuration and obeys the same oracle-equivalence
// contract as Lookup — the E27 experiment measures the cost difference.
func (e *Engine) LookupQuantized(k keys.Value) (action uint64, ok bool) {
	tr := e.lookupQuantized(k, cachesim.Null{}, nil)
	return tr.Action, tr.Matched
}

// lookupReference is the reference-inference single-key arm shared by
// LookupReference, the stack executor and the reference batch plane.
func (e *Engine) lookupReference(k keys.Value, mem cachesim.Mem, sp *telemetry.Span) Trace {
	var tr Trace
	n := metLookups.Inc()
	end := sp.Stage("reference-inference")
	tr.Prediction = e.model.Predict(k)
	end()
	// The reference path is for differential tests and E23 — it never feeds
	// the flight recorder, whose records describe the production planes.
	e.finish(k, &tr, mem, sp, plane.Reference, n, nil)
	return tr
}

// BatchResult is one LookupBatch answer.
type BatchResult struct {
	Action  uint64
	Matched bool
}

// batchBlock sizes LookupBatch's inference blocks; it matches the compiled
// plane's software-pipelining width.
const batchBlock = 16

// LookupBatch resolves ks positionally: out[i] answers ks[i]. Inference runs
// through Compiled.PredictBatch in blocks of batchBlock keys, so per-stage
// coefficient loads overlap across keys instead of serializing per lookup;
// the searches and bucket fetches then complete each key with the same
// instrumented tail as Lookup. out is reused when it has capacity, so a
// caller looping over batches performs zero allocations. Batch answers obey
// the same oracle-equivalence contract as Lookup (LookupBatch is the batch
// stack executor's compiled-uncached configuration; see internal/planetest).
func (e *Engine) LookupBatch(ks []keys.Value, out []BatchResult) []BatchResult {
	return e.LookupBatchStack(plane.StackConfig{}, ks, out, cachesim.Null{}, nil, 0)
}

// LookupBatchMem is LookupBatch with the batch's DRAM bucket fetches routed
// through mem (which must tolerate concurrent Read calls if the caller
// batches concurrently).
func (e *Engine) LookupBatchMem(ks []keys.Value, out []BatchResult, mem cachesim.Mem) []BatchResult {
	return e.LookupBatchStack(plane.StackConfig{}, ks, out, mem, nil, 0)
}

// finishBatch runs the pipelined batch tail — blocked PredictBatch inference
// plus the instrumented per-key finish — delivering ks[i]'s answer through
// emit(i, result). It serves both pipelined inference planes of the batch
// stack executor (stack.go) — inf selects the compiled or quantized
// PredictBatch; the reference plane has no pipelined arm and loops the
// single-key path instead. Uncached stacks emit positionally, cached stacks
// scatter to the miss positions and fill the result cache.
func (e *Engine) finishBatch(inf plane.Inference, ks []keys.Value, mem cachesim.Mem, emit func(i int, r BatchResult)) {
	var preds [batchBlock]rqrmi.Prediction
	for start := 0; start < len(ks); start += batchBlock {
		n := len(ks) - start
		if n > batchBlock {
			n = batchBlock
		}
		blk := ks[start : start+n]
		if inf == plane.Quantized {
			e.quant.PredictBatch(blk, preds[:n])
		} else {
			e.comp.PredictBatch(blk, preds[:n])
		}
		for i := 0; i < n; i++ {
			var tr Trace
			tr.Prediction = preds[i]
			nq := metLookups.Inc()
			var fr *telemetry.FlightRecord
			if telemetry.Flight.HitN(nq) {
				var rec telemetry.FlightRecord
				fr = &rec
				fr.Begin(blk[i].Hi, blk[i].Lo)
				// Inference was pipelined across the block, so a batch
				// record times only the per-key tail (search onward).
				fr.Batch = true
			}
			e.finish(blk[i], &tr, mem, nil, inf, nq, fr)
			emit(start+i, BatchResult{Action: tr.Action, Matched: tr.Matched})
		}
	}
}

// resolve maps a range index to its action, honouring tombstones.
func (e *Engine) resolve(rangeIdx int) (uint64, bool) {
	r := e.ra.RuleOf(rangeIdx)
	if r == ranges.NoRule || !e.live[r].Load() {
		return 0, false
	}
	return e.ra.Action(rangeIdx)
}

// ModifyAction changes the action of an installed rule without retraining
// (§6.5: action modification touches only the RQ-array metadata).
func (e *Engine) ModifyAction(prefix keys.Value, length int, action uint64) error {
	idx := e.rules.Find(prefix, length)
	if idx == lpm.NoMatch || !e.live[idx].Load() {
		return fmt.Errorf("core: rule %s/%d not installed", prefix, length)
	}
	e.rules.Rules[idx].Action = action
	e.ra.SetAction(int32(idx), action)
	// The action rewrite above is complete (atomic store) before the bump, so
	// any cached-lookup probe that observes the new epoch recomputes from the
	// post-modify state (lcache's fill/invalidate ordering argument).
	e.epoch.Bump()
	return nil
}

// Delete removes a rule without retraining (§6.5): the affected RQ-array
// entries are re-owned by the next-longest live rule. Range boundaries stay
// as they were — they remain a valid (finer-than-necessary) partition.
//
// The first deletion builds a trie over the installed rules (O(rules));
// every deletion after that costs only the tombstone-aware re-own of the
// doomed rule's ranges, which is how the paper keeps deletions off the
// retraining path.
func (e *Engine) Delete(prefix keys.Value, length int) error {
	idx := e.rules.Find(prefix, length)
	if idx == lpm.NoMatch || !e.live[idx].Load() {
		return fmt.Errorf("core: rule %s/%d not installed", prefix, length)
	}
	e.live[idx].Store(false)
	if e.trie == nil {
		e.trie = lpm.NewTrie(e.rules)
	}
	alive := func(r int32) bool { return e.live[r].Load() }

	// Re-own every range that pointed at the deleted rule. Within one range
	// no rule begins or ends (all rule bounds are range boundaries), so the
	// new owner is uniform across the range: query its lower bound. The
	// doomed rule's ranges are found by searching its covered span.
	doomed := int32(idx)
	r := lpm.Rule{Prefix: prefix, Len: length}
	first := e.ra.Find(r.Low(e.width))
	last := e.ra.Find(r.High(e.width))
	for i := first; i <= last; i++ {
		if e.ra.RuleOf(i) != doomed {
			continue
		}
		o := e.trie.LookupWhere(e.ra.Entries[i].Low, alive)
		if o == lpm.NoMatch {
			e.ra.SetRule(i, ranges.NoRule)
		} else {
			e.ra.SetRule(i, int32(o))
		}
	}
	// Tombstone + re-own are fully visible before the bump: a cached action
	// for a key the deleted rule covered dies on the next probe.
	e.epoch.Bump()
	return nil
}

// InsertBatch commits a batch of new rules by rebuilding the engine —
// insertion requires full retraining (§6.5). Deleted rules are dropped; the
// receiver is left untouched, so callers can swap engines atomically.
func (e *Engine) InsertBatch(newRules []lpm.Rule) (*Engine, error) {
	merged := make([]lpm.Rule, 0, e.rules.Len()+len(newRules))
	for i, r := range e.rules.Rules {
		if e.live[i].Load() {
			merged = append(merged, r)
		}
	}
	merged = append(merged, newRules...)
	rs, err := lpm.NewRuleSet(e.width, merged)
	if err != nil {
		return nil, err
	}
	next, err := Build(rs, e.cfg)
	if err != nil {
		return nil, err
	}
	// The rebuilt engine continues the receiver's cache-epoch lineage (no
	// bump here — the engine is not live yet; Updatable.Commit bumps after
	// the atomic swap makes it visible) and keeps its shard tag; drift meter
	// and hotness sketch start fresh from Build, matching the new model.
	next.epoch = e.epoch
	next.shardID = e.shardID
	return next, nil
}

// SRAMUsage itemizes the engine's on-chip memory demand in bytes.
type SRAMUsage struct {
	Model   int // RQRMI parameter buffers
	RQArray int // range array (SRAM-only) or bucket directory
	Total   int
}

// SRAMUsage reports the engine's static SRAM footprint. Any remaining SRAM
// budget is available as a DRAM cache (§6.5, §8).
func (e *Engine) SRAMUsage() SRAMUsage {
	u := SRAMUsage{Model: e.model.SizeBytes()}
	if e.dir != nil {
		u.RQArray = e.dir.SizeBytes()
	} else {
		u.RQArray = e.ra.SizeBytes()
	}
	u.Total = u.Model + u.RQArray
	return u
}

// DRAMFootprint returns the off-chip bytes of the bucket array (zero for
// SRAM-only engines).
func (e *Engine) DRAMFootprint() int {
	if e.dir == nil {
		return 0
	}
	return e.ra.SizeBytes()
}

// WorstCaseDRAMAccesses returns the deterministic per-query DRAM access
// bound: one bucket fetch for bucketized engines, zero otherwise (§10.2).
func (e *Engine) WorstCaseDRAMAccesses() int {
	if e.dir == nil {
		return 0
	}
	return 1
}

// Verify re-derives the model's error bounds analytically and checks the
// engine end to end on every range boundary, including the compiled plane's
// bit-identity with the reference arithmetic. It is expensive; intended for
// tests and offline validation.
func (e *Engine) Verify() error {
	var ix rqrmi.Index = e.ra
	if e.dir != nil {
		ix = e.dir
	}
	if ok, witness := e.model.Verify(ix); !ok {
		return fmt.Errorf("core: model error bound violated at key %v", witness)
	}
	if err := e.verifyCompiled(ix); err != nil {
		return err
	}
	if err := e.verifyQuantized(ix); err != nil {
		return err
	}
	liveRules := make([]lpm.Rule, 0, e.rules.Len())
	for i, r := range e.rules.Rules {
		if e.live[i].Load() {
			liveRules = append(liveRules, r)
		}
	}
	liveSet, err := lpm.NewRuleSet(e.width, liveRules)
	if err != nil {
		return err
	}
	oracle := lpm.NewTrieMatcher(liveSet)
	for i := range e.ra.Entries {
		k := e.ra.Entries[i].Low
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			return fmt.Errorf("core: mismatch at %v: engine (%d,%v) oracle (%d,%v)",
				k, got, gotOK, want, wantOK)
		}
		// The compiled and reference paths must resolve identically end to
		// end (search, bucket scan, action) — not just against the oracle.
		refGot, refOK := e.LookupReference(k)
		if refOK != gotOK || refGot != got {
			return fmt.Errorf("core: compiled/reference divergence at %v: compiled (%d,%v) reference (%d,%v)",
				k, got, gotOK, refGot, refOK)
		}
		// The quantized arm carries different intermediate predictions but
		// must land on the same end-to-end answer (bound-inclusion makes the
		// bounded search exact; verifyQuantized checks the inclusion itself).
		qTr := e.lookupQuantized(k, cachesim.Null{}, nil)
		if qTr.Matched != gotOK || (gotOK && qTr.Action != got) {
			return fmt.Errorf("core: compiled/quantized divergence at %v: compiled (%d,%v) quantized (%d,%v)",
				k, got, gotOK, qTr.Action, qTr.Matched)
		}
	}
	return nil
}

// verifyCompiled sweeps every boundary of the learned index — and the keys
// adjacent to it — asserting the compiled plane reproduces the reference
// float32 LUT arithmetic bit for bit: equal predictions (index, error bound,
// submodel), equal search results, and equal probe counts, for both Predict
// and the batched PredictBatch. This is the full-range-boundary half of the
// bit-identity contract; FuzzCompiledVsModel covers arbitrary keys.
func (e *Engine) verifyCompiled(ix rqrmi.Index) error {
	dom := keys.NewDomain(e.width)
	buf := make([]keys.Value, 0, 3*batchBlock)
	preds := make([]rqrmi.Prediction, 3*batchBlock)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		e.comp.PredictBatch(buf, preds[:len(buf)])
		for i, k := range buf {
			pm := e.model.Predict(k)
			if pc := e.comp.Predict(k); pc != pm {
				return fmt.Errorf("core: compiled Predict(%v) = %+v, reference %+v", k, pc, pm)
			}
			if preds[i] != pm {
				return fmt.Errorf("core: compiled PredictBatch(%v) = %+v, reference %+v", k, preds[i], pm)
			}
			im, probesM := e.model.Search(ix, k, pm)
			ic, probesC := e.comp.Search(k, pm)
			if im != ic || probesM != probesC {
				return fmt.Errorf("core: compiled Search(%v) = (%d,%d), reference (%d,%d)",
					k, ic, probesC, im, probesM)
			}
		}
		buf = buf[:0]
		return nil
	}
	for i := 0; i < ix.Len(); i++ {
		b := ix.Low(i)
		buf = append(buf, b)
		if !b.IsZero() {
			buf = append(buf, b.Dec())
		}
		if b.Less(dom.Max()) {
			buf = append(buf, b.Inc())
		}
		if len(buf)+3 > cap(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// verifyQuantized sweeps the same boundary±1 key set as verifyCompiled, but
// the quantized contract is bound-inclusion, not bit-identity: the integer
// prediction may differ from the float one, yet its own stored error bound
// must cover the true index (so the bounded search is exact), the search must
// land on that index, and the pipelined batch arm must match the single-key
// arm bit for bit.
func (e *Engine) verifyQuantized(ix rqrmi.Index) error {
	dom := keys.NewDomain(e.width)
	buf := make([]keys.Value, 0, 3*batchBlock)
	preds := make([]rqrmi.Prediction, 3*batchBlock)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		e.quant.PredictBatch(buf, preds[:len(buf)])
		for i, k := range buf {
			pq := e.quant.Predict(k)
			if preds[i] != pq {
				return fmt.Errorf("core: quantized PredictBatch(%v) = %+v, single %+v", k, preds[i], pq)
			}
			truth := rqrmi.Find(ix, k)
			if d := pq.Index - truth; d > pq.Err || -d > pq.Err {
				return fmt.Errorf("core: quantized bound violated at %v: index %d err %d truth %d",
					k, pq.Index, pq.Err, truth)
			}
			if iq, _ := e.quant.Search(k, pq); iq != truth {
				return fmt.Errorf("core: quantized Search(%v) = %d, truth %d", k, iq, truth)
			}
		}
		buf = buf[:0]
		return nil
	}
	for i := 0; i < ix.Len(); i++ {
		b := ix.Low(i)
		buf = append(buf, b)
		if !b.IsZero() {
			buf = append(buf, b.Dec())
		}
		if b.Less(dom.Max()) {
			buf = append(buf, b.Inc())
		}
		if len(buf)+3 > cap(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}
