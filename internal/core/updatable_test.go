package core

import (
	"math/rand"
	"sync"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

func buildUpdatable(t *testing.T, n int, seed int64) (*Updatable, *lpm.RuleSet) {
	t.Helper()
	rs := randomRuleSet(t, 24, n, seed)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	return NewUpdatable(e, 100), rs
}

func TestUpdatableInsertVisibleImmediately(t *testing.T) {
	u, rs := buildUpdatable(t, 100, 30)
	// A very specific rule nested under nothing else: use a full-length
	// prefix unlikely to collide.
	r := lpm.Rule{Prefix: keys.FromUint64(0xABCDEF), Len: 24, Action: 777}
	if rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
		if err := u.Insert(r); err != nil {
			t.Fatal(err)
		}
		got, ok := u.Lookup(r.Prefix)
		if !ok || got != 777 {
			t.Fatalf("pending rule invisible: %d,%v", got, ok)
		}
		if u.PendingInserts() != 1 {
			t.Fatalf("pending = %d", u.PendingInserts())
		}
	}
}

func TestUpdatableLongestWinsAcrossBufferAndEngine(t *testing.T) {
	// Engine rule /8; delta rule /16 nested inside: delta must win inside,
	// engine outside.
	rs, err := lpm.NewRuleSet(24, []lpm.Rule{
		{Prefix: keys.FromUint64(0xAA0000), Len: 8, Action: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdatable(e, 10)
	if err := u.Insert(lpm.Rule{Prefix: keys.FromUint64(0xAABB00), Len: 16, Action: 2}); err != nil {
		t.Fatal(err)
	}
	if got, ok := u.Lookup(keys.FromUint64(0xAABB99)); !ok || got != 2 {
		t.Fatalf("nested delta rule lost: %d,%v", got, ok)
	}
	if got, ok := u.Lookup(keys.FromUint64(0xAACC00)); !ok || got != 1 {
		t.Fatalf("engine rule lost: %d,%v", got, ok)
	}
	// Reverse nesting: delta /8 under engine /16 region must lose there.
	if err := u.Insert(lpm.Rule{Prefix: keys.FromUint64(0xBB0000), Len: 8, Action: 3}); err != nil {
		t.Fatal(err)
	}
	if got, ok := u.Lookup(keys.FromUint64(0xBB1234)); !ok || got != 3 {
		t.Fatalf("delta-only region: %d,%v", got, ok)
	}
}

func TestUpdatableCapacity(t *testing.T) {
	u, _ := buildUpdatable(t, 50, 31)
	count := 0
	for i := 0; count < 100; i++ {
		r := lpm.Rule{Prefix: keys.FromUint64(uint64(i)), Len: 24, Action: 1}
		err := u.Insert(r)
		if err == nil {
			count++
			continue
		}
		// Either duplicate-with-engine or full; full must only happen at
		// capacity.
		if u.PendingInserts() >= 100 {
			return // expected: buffer full
		}
	}
	if err := u.Insert(lpm.Rule{Prefix: keys.FromUint64(0xFFFFFF), Len: 24, Action: 1}); err == nil {
		t.Fatal("insert beyond capacity succeeded")
	}
}

func TestUpdatableRejectsDuplicates(t *testing.T) {
	u, rs := buildUpdatable(t, 50, 32)
	if err := u.Insert(rs.Rules[0]); err == nil {
		t.Fatal("duplicate of installed rule accepted")
	}
	fresh := lpm.Rule{Prefix: keys.FromUint64(0x123456), Len: 24, Action: 9}
	if rs.Find(fresh.Prefix, fresh.Len) == lpm.NoMatch {
		if err := u.Insert(fresh); err != nil {
			t.Fatal(err)
		}
		if err := u.Insert(fresh); err == nil {
			t.Fatal("duplicate pending rule accepted")
		}
	}
}

func TestUpdatableCommit(t *testing.T) {
	u, rs := buildUpdatable(t, 80, 33)
	var added []lpm.Rule
	for i := 0; len(added) < 20; i++ {
		r := lpm.Rule{Prefix: keys.FromUint64(uint64(i) << 8), Len: 16, Action: uint64(100 + i)}
		if rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
			continue
		}
		if err := u.Insert(r); err != nil {
			continue
		}
		added = append(added, r)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if u.PendingInserts() != 0 {
		t.Fatalf("pending after commit = %d", u.PendingInserts())
	}
	// Everything still answers correctly: compare against an oracle over
	// the merged set.
	merged := append(append([]lpm.Rule(nil), rs.Rules...), added...)
	mergedSet, err := lpm.NewRuleSet(24, merged)
	if err != nil {
		t.Fatal(err)
	}
	oracle := lpm.NewTrieMatcher(mergedSet)
	rng := rand.New(rand.NewSource(34))
	for q := 0; q < 3000; q++ {
		k := keys.FromUint64(uint64(rng.Intn(1 << 24)))
		got, gotOK := u.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: updatable (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
	if err := u.Engine().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatableModifyAndDeletePending(t *testing.T) {
	u, rs := buildUpdatable(t, 50, 35)
	r := lpm.Rule{Prefix: keys.FromUint64(0x424200), Len: 16, Action: 1}
	if rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
		if err := u.Insert(r); err != nil {
			t.Fatal(err)
		}
		if err := u.ModifyAction(r.Prefix, r.Len, 2); err != nil {
			t.Fatal(err)
		}
		if got, _ := u.Lookup(r.Prefix); got != 2 {
			t.Fatalf("pending modify lost: %d", got)
		}
		if err := u.Delete(r.Prefix, r.Len); err != nil {
			t.Fatal(err)
		}
		if u.PendingInserts() != 0 {
			t.Fatal("pending delete did not drain")
		}
	}
	// Delete of an installed rule routes to the engine path.
	installed := rs.Rules[0]
	if err := u.Delete(installed.Prefix, installed.Len); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatableConcurrentLookupsDuringCommit(t *testing.T) {
	u, rs := buildUpdatable(t, 150, 36)
	for i := 0; i < 10; i++ {
		r := lpm.Rule{Prefix: keys.FromUint64(uint64(0xF00000 + i)), Len: 24, Action: uint64(i)}
		if rs.Find(r.Prefix, r.Len) == lpm.NoMatch {
			if err := u.Insert(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u.Lookup(keys.FromUint64(uint64(rng.Intn(1 << 24))))
			}
		}(int64(w))
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}
