// Metamorphic update tests: algebraic identities over the §6.5 update
// paths, each checked by a full-keyspace sweep on a small domain so that
// every range boundary and wildcard interaction is exercised, not a sample.
package core

import (
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// sweepWidth keeps full-keyspace sweeps cheap: 2^10 keys.
const sweepWidth = 10

// sweep evaluates m on every key of the width-bit domain.
func sweep(width int, m lpm.Matcher) []Result {
	out := make([]Result, 1<<width)
	for i := range out {
		out[i].Action, out[i].Matched = m.Lookup(keys.FromUint64(uint64(i)))
	}
	return out
}

// Result mirrors one lookup's outcome for sweep comparison.
type Result struct {
	Action  uint64
	Matched bool
}

func diffSweeps(t *testing.T, label string, got, want []Result) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: key %#x: got (%d,%v), want (%d,%v)",
				label, i, got[i].Action, got[i].Matched, want[i].Action, want[i].Matched)
		}
	}
}

type matcherFunc func(keys.Value) (uint64, bool)

func (f matcherFunc) Lookup(k keys.Value) (uint64, bool) { return f(k) }

// freshRule returns a rule not present in rs.
func freshRule(rs *lpm.RuleSet) lpm.Rule {
	r := lpm.Rule{Prefix: keys.FromUint64(0b1010100000), Len: 7, Action: 9999}
	for rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
		r.Len--
		r.Prefix = r.Prefix.Shr(uint(sweepWidth - r.Len)).Shl(uint(sweepWidth - r.Len))
	}
	return r
}

// TestMetamorphicInsertThenDeleteIsIdentity: inserting a rule and deleting
// it again must leave the observable lookup function unchanged — both when
// the rule is still in the delta buffer and after it was committed into the
// engine (tombstone path).
func TestMetamorphicInsertThenDeleteIsIdentity(t *testing.T) {
	rs := randomRuleSet(t, sweepWidth, 40, 21)
	eng, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdatable(eng, 0)
	before := sweep(sweepWidth, matcherFunc(u.Lookup))
	r := freshRule(rs)

	// Delta path: insert + delete without a commit in between.
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := u.Delete(r.Prefix, r.Len); err != nil {
		t.Fatal(err)
	}
	diffSweeps(t, "delta insert+delete", sweep(sweepWidth, matcherFunc(u.Lookup)), before)

	// Committed path: insert, commit (retrain), then tombstone-delete.
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := u.Delete(r.Prefix, r.Len); err != nil {
		t.Fatal(err)
	}
	diffSweeps(t, "committed insert+delete", sweep(sweepWidth, matcherFunc(u.Lookup)), before)
}

// TestMetamorphicModifyActionWithoutRetrain: ModifyAction must change the
// lookup function exactly as the oracle over the modified rule-set says,
// while leaving the engine instance (hence the trained model) untouched.
func TestMetamorphicModifyActionWithoutRetrain(t *testing.T) {
	rs := randomRuleSet(t, sweepWidth, 40, 22)
	eng, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdatable(eng, 0)
	target := rs.Rules[len(rs.Rules)/2]
	const newAction = 777777

	engineBefore := u.Engine()
	if err := u.ModifyAction(target.Prefix, target.Len, newAction); err != nil {
		t.Fatal(err)
	}
	if u.Engine() != engineBefore {
		t.Fatal("ModifyAction replaced the engine (retrained)")
	}

	modified := rs.Clone()
	for i := range modified.Rules {
		if modified.Rules[i].Prefix == target.Prefix && modified.Rules[i].Len == target.Len {
			modified.Rules[i].Action = newAction
		}
	}
	oracle := lpm.NewTrieMatcher(modified)
	diffSweeps(t, "modify-action", sweep(sweepWidth, matcherFunc(u.Lookup)), sweep(sweepWidth, oracle))
}

// TestMetamorphicCommitEqualsFreshBuild: committing pending insertions must
// yield the same lookup function as building a fresh engine over the merged
// rule-set (and hence as the oracle).
func TestMetamorphicCommitEqualsFreshBuild(t *testing.T) {
	rs := randomRuleSet(t, sweepWidth, 30, 23)
	eng, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdatable(eng, 0)
	extra := randomRuleSet(t, sweepWidth, 50, 77) // superset pool to draw news from
	var added []lpm.Rule
	for _, r := range extra.Rules {
		if rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
			continue
		}
		r.Action += 100000
		if err := u.Insert(r); err != nil {
			t.Fatal(err)
		}
		added = append(added, r)
		if len(added) == 10 {
			break
		}
	}
	if len(added) == 0 {
		t.Fatal("no fresh rules to insert")
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := u.PendingInserts(); got != 0 {
		t.Fatalf("pending after commit: %d", got)
	}

	merged, err := lpm.NewRuleSet(sweepWidth, append(append([]lpm.Rule(nil), rs.Rules...), added...))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(merged, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	want := sweep(sweepWidth, matcherFunc(fresh.Lookup))
	diffSweeps(t, "commit vs fresh build", sweep(sweepWidth, matcherFunc(u.Lookup)), want)
	diffSweeps(t, "fresh build vs oracle", want, sweep(sweepWidth, lpm.NewTrieMatcher(merged)))
}
