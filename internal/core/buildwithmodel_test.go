package core

import (
	"bytes"
	"testing"

	"neurolpm/internal/rqrmi"
)

// TestBuildWithModelRoundTrip covers the control-plane→data-plane
// deployment path: train once, serialize, rebuild around the stored model.
func TestBuildWithModelRoundTrip(t *testing.T) {
	rs := randomRuleSet(t, 24, 400, 40)
	for _, cfg := range []Config{quickSRAMOnly(), quickBucketed()} {
		trained, err := Build(rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := trained.Model().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		model, err := rqrmi.ReadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		deployed, err := BuildWithModel(rs, cfg, model, true)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesOracle(t, deployed, rs, 2000, 41)
		if deployed.Bucketized() != trained.Bucketized() {
			t.Fatal("bucketization mode changed across deployment")
		}
	}
}

func TestBuildWithModelRejectsMismatch(t *testing.T) {
	rs := randomRuleSet(t, 24, 300, 42)
	other := randomRuleSet(t, 24, 500, 43)
	trained, err := Build(other, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	// The model indexes a differently sized RQ Array: shape check fails.
	if _, err := BuildWithModel(rs, quickSRAMOnly(), trained.Model(), false); err == nil {
		t.Fatal("mismatched model accepted")
	}
	// Nil model.
	if _, err := BuildWithModel(rs, quickSRAMOnly(), nil, false); err == nil {
		t.Fatal("nil model accepted")
	}
	// Bad bucket size.
	good, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	bad := quickSRAMOnly()
	bad.BucketSize = 1
	if _, err := BuildWithModel(rs, bad, good.Model(), false); err == nil {
		t.Fatal("bucket size 1 accepted")
	}
}

func TestBuildWithModelVerifyCatchesCorruption(t *testing.T) {
	rs := randomRuleSet(t, 20, 300, 44)
	trained, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	m := trained.Model()
	// Corrupt the error bounds.
	last := len(m.Stages) - 1
	sabotaged := false
	for j := range m.Stages[last] {
		if m.Stages[last][j].Err > 0 {
			m.Stages[last][j].Err = 0
			sabotaged = true
		}
	}
	if !sabotaged {
		t.Skip("zero-error model; nothing to corrupt")
	}
	if _, err := BuildWithModel(rs, quickSRAMOnly(), m, true); err == nil {
		t.Fatal("corrupted model passed verification")
	}
	// Without verification the shape check alone accepts it — documenting
	// why the verify flag exists.
	if _, err := BuildWithModel(rs, quickSRAMOnly(), m, false); err != nil {
		t.Fatalf("shape-only path rejected a shape-valid model: %v", err)
	}
}
