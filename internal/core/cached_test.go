package core

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
)

// cachedEngine builds a quick engine plus a private cache for the test.
func cachedEngine(t testing.TB, cfg Config) (*Engine, *lpm.RuleSet, *lcache.Cache) {
	t.Helper()
	rs := randomRuleSet(t, 32, 3000, 11)
	e, err := Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, rs, lcache.New(256 << 10)
}

func TestLookupCachedMatchesUncached(t *testing.T) {
	for name, cfg := range map[string]Config{"bucketized": quickBucketed(), "sram": quickSRAMOnly()} {
		t.Run(name, func(t *testing.T) {
			e, rs, c := cachedEngine(t, cfg)
			rng := rand.New(rand.NewSource(3))
			hot := make([]keys.Value, 32)
			for i := range hot {
				hot[i] = randomKey(rng, rs.Width)
			}
			for q := 0; q < 4096; q++ {
				var k keys.Value
				if q%4 != 0 { // 3/4 hot repeats, 1/4 cold
					k = hot[rng.Intn(len(hot))]
				} else {
					k = randomKey(rng, rs.Width)
				}
				wantA, wantOK := e.Lookup(k)
				gotA, gotOK, _ := e.LookupCached(k, c)
				if gotOK != wantOK || (gotOK && gotA != wantA) {
					t.Fatalf("key %v: cached (%d,%v), uncached (%d,%v)", k, gotA, gotOK, wantA, wantOK)
				}
			}
		})
	}
}

func TestLookupCachedSecondProbeHits(t *testing.T) {
	e, rs, c := cachedEngine(t, quickBucketed())
	rng := rand.New(rand.NewSource(5))
	k := randomKey(rng, rs.Width)
	if _, _, o := e.LookupCached(k, c); o != lcache.Miss {
		t.Fatalf("first probe = %v, want miss", o)
	}
	if _, _, o := e.LookupCached(k, c); o != lcache.Hit {
		t.Fatalf("second probe = %v, want hit", o)
	}
}

func TestLookupBatchCachedMatchesUncached(t *testing.T) {
	e, rs, c := cachedEngine(t, quickBucketed())
	rng := rand.New(rand.NewSource(9))
	hot := make([]keys.Value, 64)
	for i := range hot {
		hot[i] = randomKey(rng, rs.Width)
	}
	batch := make([]keys.Value, 256)
	var cached, plain []BatchResult
	epoch := e.CacheEpoch().Load()
	for round := 0; round < 32; round++ {
		for i := range batch {
			if i%3 == 0 {
				batch[i] = randomKey(rng, rs.Width)
			} else {
				batch[i] = hot[rng.Intn(len(hot))]
			}
		}
		plain = e.LookupBatch(batch, plain)
		cached = e.LookupBatchCached(batch, cached, c, epoch)
		for i := range batch {
			if cached[i] != plain[i] {
				t.Fatalf("round %d key %v: cached %+v, uncached %+v", round, batch[i], cached[i], plain[i])
			}
		}
	}
}

func TestLookupBatchCachedNilCacheEqualsUncached(t *testing.T) {
	e, rs, _ := cachedEngine(t, quickBucketed())
	rng := rand.New(rand.NewSource(13))
	batch := make([]keys.Value, 512)
	for i := range batch {
		batch[i] = randomKey(rng, rs.Width)
	}
	plain := e.LookupBatch(batch, nil)
	viaNil := e.LookupBatchCached(batch, nil, nil, e.CacheEpoch().Load())
	for i := range batch {
		if viaNil[i] != plain[i] {
			t.Fatalf("key %v: nil-cache path %+v, uncached %+v", batch[i], viaNil[i], plain[i])
		}
	}
}

// liveKeyOf returns a key matched by rule idx right now (its prefix) — handy
// for pinning cache staleness around that rule's mutations.
func liveKeyOf(rs *lpm.RuleSet, idx int) keys.Value { return rs.Rules[idx].Prefix }

// TestDeleteBumpsCacheEpoch is the regression pin for the no-retrain delete
// path: a cached action surviving a Delete would be a silent correctness bug
// (ISSUE 5). The cached answer must track the tombstone immediately.
func TestDeleteBumpsCacheEpoch(t *testing.T) {
	e, rs, c := cachedEngine(t, quickBucketed())
	// Pick a rule whose prefix it uniquely owns right now (matched == true
	// and the resolved action equals the rule's).
	var k keys.Value
	ruleIdx := -1
	for i, r := range rs.Rules {
		a, ok := e.Lookup(r.Prefix)
		if ok && a == r.Action {
			k, ruleIdx = liveKeyOf(rs, i), i
			break
		}
	}
	if ruleIdx < 0 {
		t.Fatal("no directly-resolvable rule found")
	}
	before := e.CacheEpoch().Load()
	if _, _, o := e.LookupCached(k, c); o != lcache.Miss {
		t.Fatalf("priming probe = %v, want miss", o)
	}
	r := rs.Rules[ruleIdx]
	if err := e.Delete(r.Prefix, r.Len); err != nil {
		t.Fatal(err)
	}
	if after := e.CacheEpoch().Load(); after != before+1 {
		t.Fatalf("Delete did not bump the cache epoch: %d → %d", before, after)
	}
	wantA, wantOK := e.Lookup(k)
	gotA, gotOK, o := e.LookupCached(k, c)
	if o == lcache.Hit {
		t.Fatal("post-delete probe hit the cache (stale entry served)")
	}
	if gotOK != wantOK || (gotOK && gotA != wantA) {
		t.Fatalf("post-delete cached answer (%d,%v) != engine (%d,%v)", gotA, gotOK, wantA, wantOK)
	}
}

// TestModifyActionBumpsCacheEpoch pins the no-retrain action-rewrite path
// the same way: the cached action must die with the rewrite.
func TestModifyActionBumpsCacheEpoch(t *testing.T) {
	e, rs, c := cachedEngine(t, quickBucketed())
	r := rs.Rules[0]
	k := r.Prefix
	before := e.CacheEpoch().Load()
	e.LookupCached(k, c) // prime
	if err := e.ModifyAction(r.Prefix, r.Len, 999_999); err != nil {
		t.Fatal(err)
	}
	if after := e.CacheEpoch().Load(); after != before+1 {
		t.Fatalf("ModifyAction did not bump the cache epoch: %d → %d", before, after)
	}
	wantA, wantOK := e.Lookup(k)
	gotA, gotOK, o := e.LookupCached(k, c)
	if o == lcache.Hit {
		t.Fatal("post-modify probe hit the cache (stale action served)")
	}
	if gotOK != wantOK || (gotOK && gotA != wantA) {
		t.Fatalf("post-modify cached answer (%d,%v) != engine (%d,%v)", gotA, gotOK, wantA, wantOK)
	}
}

// TestUpdatableMutationsBumpEpoch covers the delta-overlay paths and the
// commit swap: every route through which an Updatable changes answers must
// advance the shared epoch, and InsertBatch must carry the same counter into
// the rebuilt engine (a reset would resurrect stale entries by collision).
func TestUpdatableMutationsBumpEpoch(t *testing.T) {
	e, rs, c := cachedEngine(t, quickBucketed())
	u := NewUpdatable(e, 100)
	ep := u.CacheEpoch()
	width := rs.Width

	fresh := lpm.Rule{Prefix: keys.FromUint64(0xABCD0000), Len: 32, Action: 42}
	before := ep.Load()
	if err := u.Insert(fresh); err != nil {
		t.Fatal(err)
	}
	if got := ep.Load(); got != before+1 {
		t.Fatalf("delta Insert: epoch %d → %d, want +1", before, got)
	}
	// The inserted rule must be served correctly through the cached path
	// even though its key may have been cached negative before.
	if a, ok, _ := u.LookupCached(fresh.Prefix, c); !ok || a != 42 {
		t.Fatalf("cached lookup after delta insert = (%d,%v), want (42,true)", a, ok)
	}

	before = ep.Load()
	if err := u.ModifyAction(fresh.Prefix, fresh.Len, 43); err != nil {
		t.Fatal(err)
	}
	if got := ep.Load(); got != before+1 {
		t.Fatalf("delta ModifyAction: epoch %d → %d, want +1", before, got)
	}
	if a, ok, _ := u.LookupCached(fresh.Prefix, c); !ok || a != 43 {
		t.Fatalf("cached lookup after delta modify = (%d,%v), want (43,true)", a, ok)
	}

	before = ep.Load()
	if err := u.Delete(fresh.Prefix, fresh.Len); err != nil {
		t.Fatal(err)
	}
	if got := ep.Load(); got != before+1 {
		t.Fatalf("delta Delete: epoch %d → %d, want +1", before, got)
	}

	// Commit: pointer identity across the swap, bump after.
	if err := u.Insert(lpm.Rule{Prefix: keys.FromUint64(0x12340000), Len: 32, Action: 7}); err != nil {
		t.Fatal(err)
	}
	before = ep.Load()
	oldEngine := u.Engine()
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if u.Engine() == oldEngine {
		t.Fatal("commit did not swap the engine")
	}
	if u.CacheEpoch() != ep {
		t.Fatal("commit broke the epoch lineage (new engine has a different counter)")
	}
	if got := ep.Load(); got != before+1 {
		t.Fatalf("Commit: epoch %d → %d, want +1", before, got)
	}
	if a, ok, _ := u.LookupCached(keys.FromUint64(0x12340000), c); !ok || a != 7 {
		t.Fatalf("cached lookup after commit = (%d,%v), want (7,true)", a, ok)
	}
	_ = width
}

// TestCacheOffBatchOverheadGuard is the CI bench-smoke guard (ISSUE 5
// satellite): with the cache plane disabled (nil cache), the batch path must
// run within 10% of the plain uncached compiled path — cache off must be
// zero-overhead. Measured with testing.Benchmark so the comparison fails the
// suite, not just a human reading numbers.
func TestCacheOffBatchOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	rs := randomRuleSet(t, 32, 20000, 42)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	ks := make([]keys.Value, 1<<14)
	for i := range ks {
		ks[i] = randomKey(rng, 32)
	}
	out := make([]BatchResult, 256)
	run := func(cached bool) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			epoch := e.CacheEpoch().Load()
			b.ResetTimer()
			for i := 0; i < b.N; i += 256 {
				lo := (i * 256) % (len(ks) - 256)
				if cached {
					out = e.LookupBatchCached(ks[lo:lo+256], out, nil, epoch)
				} else {
					out = e.LookupBatch(ks[lo:lo+256], out)
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// Alternate the two paths and take each side's best, so thermal or
	// scheduler drift hits both sides equally instead of whichever ran last.
	uncached, cacheOff := run(false), run(true)
	for i := 0; i < 2; i++ {
		if v := run(false); v < uncached {
			uncached = v
		}
		if v := run(true); v < cacheOff {
			cacheOff = v
		}
	}
	t.Logf("uncached %.1f ns/key-block, cache-off %.1f ns/key-block (%.2fx)",
		uncached, cacheOff, cacheOff/uncached)
	if cacheOff > uncached*1.10 {
		t.Fatalf("cache-off batch path is %.1f%% slower than the uncached compiled path (budget 10%%)",
			(cacheOff/uncached-1)*100)
	}
}

// The cached-batch micro-bench family: CI's bench-smoke runs these; the
// Zipf-vs-uncached ratio is the headline the E25 experiment quantifies.
func benchBatchKeys(rng *rand.Rand, n int, hot []keys.Value, hotFrac float64) []keys.Value {
	ks := make([]keys.Value, n)
	for i := range ks {
		if rng.Float64() < hotFrac {
			ks[i] = hot[rng.Intn(len(hot))]
		} else {
			ks[i] = randomKey(rng, 32)
		}
	}
	return ks
}

func benchCachedSetup(b *testing.B, hotFrac float64) (*Engine, []keys.Value, *lcache.Cache) {
	b.Helper()
	rs := randomRuleSet(b, 32, 20000, 42)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	hot := make([]keys.Value, 256)
	for i := range hot {
		hot[i] = randomKey(rng, 32)
	}
	return e, benchBatchKeys(rng, 1<<14, hot, hotFrac), lcache.New(64 << 10)
}

func BenchmarkBatchUncachedCompiled(b *testing.B) {
	e, ks, _ := benchCachedSetup(b, 0.9)
	var out []BatchResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := (i * 256) % (len(ks) - 256)
		out = e.LookupBatch(ks[lo:lo+256], out)
	}
}

func BenchmarkBatchCachedZipfHot(b *testing.B) {
	e, ks, c := benchCachedSetup(b, 0.9)
	epoch := e.CacheEpoch().Load()
	var out []BatchResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := (i * 256) % (len(ks) - 256)
		out = e.LookupBatchCached(ks[lo:lo+256], out, c, epoch)
	}
}

func BenchmarkBatchCachedUniform(b *testing.B) {
	e, ks, c := benchCachedSetup(b, 0)
	epoch := e.CacheEpoch().Load()
	var out []BatchResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := (i * 256) % (len(ks) - 256)
		out = e.LookupBatchCached(ks[lo:lo+256], out, c, epoch)
	}
}

func BenchmarkBatchCacheOff(b *testing.B) {
	e, ks, _ := benchCachedSetup(b, 0.9)
	epoch := e.CacheEpoch().Load()
	var out []BatchResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		lo := (i * 256) % (len(ks) - 256)
		out = e.LookupBatchCached(ks[lo:lo+256], out, nil, epoch)
	}
}
