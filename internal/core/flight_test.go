package core

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/telemetry"
)

// TestFlightRecordsFlowFromLookup checks the end-to-end sampling contract:
// with a 1:1 stride every lookup commits a flight record whose fields agree
// with the engine's own answer.
func TestFlightRecordsFlowFromLookup(t *testing.T) {
	rs := randomRuleSet(t, 32, 2000, 9)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	prev := telemetry.Flight.SampleEvery()
	defer telemetry.Flight.SetSampleEvery(prev)
	telemetry.Flight.SetSampleEvery(1)

	rng := rand.New(rand.NewSource(11))
	before := telemetry.Flight.Recorded()
	k := randomKey(rng, 32)
	action, matched := e.Lookup(k)
	if telemetry.Flight.Recorded() != before+1 {
		t.Fatalf("recorded went %d → %d, want +1 at stride 1", before, telemetry.Flight.Recorded())
	}
	rec := telemetry.Flight.Recent(1)[0]
	if rec.KeyLo != k.Lo || rec.KeyHi != k.Hi {
		t.Fatalf("record key %x:%x, want %x:%x", rec.KeyHi, rec.KeyLo, k.Hi, k.Lo)
	}
	if rec.Matched != matched || rec.Action != action {
		t.Fatalf("record (matched=%v action=%d) disagrees with lookup (matched=%v action=%d)",
			rec.Matched, rec.Action, matched, action)
	}
	if rec.TotalNs <= 0 {
		t.Fatalf("TotalNs = %d, want > 0", rec.TotalNs)
	}
	if rec.ErrBound < 0 || rec.Probes < 0 {
		t.Fatalf("negative bound/probes: %+v", rec)
	}
	// The stage stamps must not exceed the committed total.
	var sum int64
	for _, ns := range rec.StageNs {
		sum += ns
	}
	if sum > rec.TotalNs {
		t.Fatalf("stage sum %d > total %d", sum, rec.TotalNs)
	}

	// Batched lookups sample too, tagged as batch records.
	before = telemetry.Flight.Recorded()
	ks := make([]keys.Value, 64)
	for i := range ks {
		ks[i] = randomKey(rng, 32)
	}
	e.LookupBatch(ks, nil)
	if telemetry.Flight.Recorded() != before+64 {
		t.Fatalf("batch recorded %d, want 64", telemetry.Flight.Recorded()-before)
	}
	if rec := telemetry.Flight.Recent(1)[0]; !rec.Batch {
		t.Fatal("batch lookup committed a record without the Batch tag")
	}
}

// TestSampledLookupZeroAllocs: the tentpole's allocation-free claim — even a
// lookup that takes the sampled branch (record, stamps, ring commit) must not
// allocate; the FlightRecord lives on the lookup's stack and moves by copy.
func TestSampledLookupZeroAllocs(t *testing.T) {
	rs := randomRuleSet(t, 32, 2000, 10)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	prev := telemetry.Flight.SampleEvery()
	defer telemetry.Flight.SetSampleEvery(prev)
	telemetry.Flight.SetSampleEvery(1) // every lookup takes the sampled path

	rng := rand.New(rand.NewSource(12))
	ks := make([]keys.Value, 256)
	for i := range ks {
		ks[i] = randomKey(rng, 32)
	}
	i := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		e.Lookup(ks[i&255])
		i++
	}); allocs != 0 {
		t.Fatalf("sampled lookup allocates %v objects per call, want 0", allocs)
	}
}

// TestFlightOverheadGuard is the CI bench-smoke guard for E26: at the default
// sampling stride the single-key lookup path must run within 10% of the
// recorder-disabled path. E26 reports the honest number (~0-2% at 1:256); the
// 10% budget here only absorbs scheduler noise on loaded CI machines.
func TestFlightOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	rs := randomRuleSet(t, 32, 20000, 43)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	ks := make([]keys.Value, 1<<14)
	for i := range ks {
		ks[i] = randomKey(rng, 32)
	}
	prev := telemetry.Flight.SampleEvery()
	defer telemetry.Flight.SetSampleEvery(prev)

	run := func(every uint64) float64 {
		telemetry.Flight.SetSampleEvery(every)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Lookup(ks[i&(1<<14-1)])
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// Alternate the two modes and take each side's best, so thermal or
	// scheduler drift hits both sides equally instead of whichever ran last.
	off, on := run(0), run(telemetry.DefaultSampleEvery)
	for i := 0; i < 2; i++ {
		if v := run(0); v < off {
			off = v
		}
		if v := run(telemetry.DefaultSampleEvery); v < on {
			on = v
		}
	}
	t.Logf("flight off %.1f ns/lookup, 1:%d %.1f ns/lookup (%.2fx)",
		off, telemetry.DefaultSampleEvery, on, on/off)
	if on > off*1.10 {
		t.Fatalf("default-stride flight sampling is %.1f%% slower than disabled (budget 10%%)",
			(on/off-1)*100)
	}
}
