// Always-on engine telemetry. The hot lookup path updates a handful of
// sharded lock-free counters/histograms (internal/telemetry); the cost is
// a few uncontended atomic adds per query, which benchmarks show is within
// noise of the uninstrumented engine (see instrument_test.go).
package core

import "neurolpm/internal/telemetry"

// sampleEvery is the per-query histogram sampling stride: distributions
// (probes, error bound, bucket comparisons) are observed on every 64th
// lookup of a shard. Counters are never sampled. Must be a power of two.
const sampleEvery = 64

var (
	// metLookups counts every engine lookup, on any path (Lookup,
	// LookupMem, LookupSpan) — the paths share one implementation, so the
	// counters and the trace output cannot drift.
	metLookups = telemetry.Default.Counter("neurolpm_lookups_total",
		"Engine lookups executed (all query paths)")
	metMatched = telemetry.Default.Counter("neurolpm_lookups_matched_total",
		"Lookups that matched a live rule")
	// metProbes is the §6.2 secondary-search probe distribution.
	metProbes = telemetry.Default.Histogram("neurolpm_sram_probes",
		"Secondary-search probes into the RQ Array per lookup (paper §6.2; sampled 1:64)")
	// metInferErr is the per-query §5.2.1 error-bound distribution.
	metInferErr = telemetry.Default.Histogram("neurolpm_inference_err",
		"RQRMI inference error bound e per lookup (paper §5.2.1; sampled 1:64)")
	metBucketized = telemetry.Default.Counter("neurolpm_bucketized_lookups_total",
		"Lookups served by a bucketized (DRAM) engine")
	metBucketCmp = telemetry.Default.Histogram("neurolpm_bucket_search_comparisons",
		"Comparisons per bucket search over the fetched bounds (sampled 1:64)")
)

func init() {
	// The §7 invariant as a live metric: a bucketized engine performs
	// exactly one dependent DRAM bucket fetch per query, so this gauge must
	// read exactly 1.0 whenever bucketized lookups have been served. The
	// fetch counter is owned by internal/bucket (incremented at DRAMAddr,
	// the single point every simulated fetch passes through); the
	// get-or-create registry joins the two packages without an import cycle.
	fetches := telemetry.Default.Counter("neurolpm_bucket_fetches_total",
		"DRAM bucket fetches issued (paper §7)")
	telemetry.Default.Gauge("neurolpm_bucket_fetches_per_query",
		"Bucket fetches per bucketized lookup; must be exactly 1 (paper §7 invariant)",
		func() float64 {
			b := metBucketized.Load()
			if b == 0 {
				return 0
			}
			return float64(fetches.Load()) / float64(b)
		})
}
