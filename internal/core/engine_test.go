package core

import (
	"math/rand"
	"testing"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

func quickModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 8}
	cfg.Samples = 512
	cfg.Epochs = 20
	cfg.MaxRounds = 2
	return cfg
}

func quickSRAMOnly() Config { return Config{Model: quickModel()} }
func quickBucketed() Config { return Config{BucketSize: 8, Model: quickModel()} }

func randomRuleSet(t testing.TB, width, n int, seed int64) *lpm.RuleSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for len(rules) < n {
		length := 1 + rng.Intn(width)
		prefix := keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
		prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(rng.Intn(1000))})
	}
	s, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomKey(rng *rand.Rand, width int) keys.Value {
	if width <= 64 {
		return keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
	}
	return keys.FromParts(rng.Uint64(), rng.Uint64())
}

func assertMatchesOracle(t *testing.T, e *Engine, rs *lpm.RuleSet, queries int, seed int64) {
	t.Helper()
	oracle := lpm.NewTrieMatcher(rs)
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < queries; q++ {
		k := randomKey(rng, rs.Width)
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v: engine (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestBuildSRAMOnly(t *testing.T) {
	rs := randomRuleSet(t, 32, 500, 1)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	if e.Bucketized() {
		t.Fatal("SRAM-only engine reports bucketized")
	}
	if e.WorstCaseDRAMAccesses() != 0 {
		t.Fatal("SRAM-only engine claims DRAM accesses")
	}
	assertMatchesOracle(t, e, rs, 4000, 2)
}

func TestBuildBucketized(t *testing.T) {
	rs := randomRuleSet(t, 32, 500, 3)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	if !e.Bucketized() {
		t.Fatal("engine not bucketized")
	}
	if e.WorstCaseDRAMAccesses() != 1 {
		t.Fatalf("worst-case accesses = %d, want 1 (§10.2)", e.WorstCaseDRAMAccesses())
	}
	assertMatchesOracle(t, e, rs, 4000, 4)
}

func TestBuild128Bit(t *testing.T) {
	rs := randomRuleSet(t, 128, 300, 5)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, e, rs, 2000, 6)
}

func TestBuildRejectsBadConfig(t *testing.T) {
	rs := randomRuleSet(t, 16, 50, 7)
	if _, err := Build(nil, quickSRAMOnly()); err == nil {
		t.Error("nil rule-set accepted")
	}
	cfg := quickSRAMOnly()
	cfg.BucketSize = 1
	if _, err := Build(rs, cfg); err == nil {
		t.Error("bucket size 1 accepted")
	}
	cfg.BucketSize = -3
	if _, err := Build(rs, cfg); err == nil {
		t.Error("negative bucket size accepted")
	}
}

func TestBuildEmptyRuleSet(t *testing.T) {
	rs, err := lpm.NewRuleSet(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Lookup(keys.FromUint64(123)); ok {
		t.Fatal("empty rule-set matched something")
	}
}

func TestLookupTraceSRAMOnly(t *testing.T) {
	rs := randomRuleSet(t, 24, 300, 8)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for q := 0; q < 500; q++ {
		tr := e.LookupMem(randomKey(rng, 24), cachesim.Null{})
		if tr.BucketRead || tr.DRAMBytes != 0 {
			t.Fatal("SRAM-only trace shows DRAM traffic")
		}
		maxProbes := 2 + bitsFor(2*e.Model().MaxErr()+1)
		if tr.SRAMProbes > maxProbes {
			t.Fatalf("probes %d exceed bound %d", tr.SRAMProbes, maxProbes)
		}
	}
}

func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b + 1
}

func TestLookupTraceBucketized(t *testing.T) {
	rs := randomRuleSet(t, 24, 400, 10)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	u := &cachesim.Uncached{}
	rng := rand.New(rand.NewSource(11))
	n := 500
	for q := 0; q < n; q++ {
		tr := e.LookupMem(randomKey(rng, 24), u)
		if !tr.BucketRead {
			t.Fatal("bucketized lookup skipped the bucket read")
		}
		if tr.DRAMBytes != e.Directory().BucketBytes() {
			t.Fatalf("DRAM bytes %d, want %d", tr.DRAMBytes, e.Directory().BucketBytes())
		}
	}
	if got := u.Stats().Accesses; got != uint64(n) {
		t.Fatalf("mem saw %d accesses, want %d (exactly one per query)", got, n)
	}
}

func TestLookupThroughCache(t *testing.T) {
	rs := randomRuleSet(t, 24, 1000, 12)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	cache, err := cachesim.New(cachesim.DefaultConfig(64 * 1024))
	if err != nil {
		t.Fatal(err)
	}
	// A small hot set must become cache-resident.
	hot := make([]keys.Value, 32)
	rng := rand.New(rand.NewSource(13))
	for i := range hot {
		hot[i] = randomKey(rng, 24)
	}
	for round := 0; round < 3; round++ {
		for _, k := range hot {
			e.LookupMem(k, cache)
		}
	}
	cache.ResetStats()
	for _, k := range hot {
		e.LookupMem(k, cache)
	}
	if m := cache.Stats().Misses; m != 0 {
		t.Fatalf("hot set still missing: %d misses", m)
	}
}

func TestModifyAction(t *testing.T) {
	rs := randomRuleSet(t, 24, 200, 14)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Rules[0]
	if err := e.ModifyAction(r.Prefix, r.Len, 424242); err != nil {
		t.Fatal(err)
	}
	// A key inside the rule that is owned by it must see the new action.
	// Find such a key via a range owned by rule 0 in the engine's own
	// rule order.
	idx := e.rules.Find(r.Prefix, r.Len)
	found := false
	for i := range e.ra.Entries {
		if e.ra.Entries[i].Rule == int32(idx) {
			got, ok := e.Lookup(e.ra.Entries[i].Low)
			if !ok || got != 424242 {
				t.Fatalf("after modify: got %d,%v", got, ok)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("rule fully shadowed; nothing to observe")
	}
	if err := e.ModifyAction(r.Prefix, r.Len+1, 1); err == nil && e.rules.Find(r.Prefix, r.Len+1) == lpm.NoMatch {
		t.Fatal("modifying a missing rule succeeded")
	}
}

func TestDelete(t *testing.T) {
	rs := randomRuleSet(t, 20, 150, 15)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	// Delete a third of the rules, then compare against an oracle over the
	// survivors.
	rng := rand.New(rand.NewSource(16))
	var kept []lpm.Rule
	for i, r := range rs.Rules {
		if i%3 == 0 {
			if err := e.Delete(r.Prefix, r.Len); err != nil {
				t.Fatal(err)
			}
		} else {
			kept = append(kept, r)
		}
	}
	keptSet, err := lpm.NewRuleSet(20, kept)
	if err != nil {
		t.Fatal(err)
	}
	oracle := lpm.NewTrieMatcher(keptSet)
	for q := 0; q < 5000; q++ {
		k := randomKey(rng, 20)
		got, gotOK := e.Lookup(k)
		want, wantOK := oracle.Lookup(k)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("key %v after delete: engine (%d,%v), oracle (%d,%v)", k, got, gotOK, want, wantOK)
		}
	}
}

func TestDeleteMissingRule(t *testing.T) {
	rs := randomRuleSet(t, 20, 50, 17)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Rules[0]
	if err := e.Delete(r.Prefix, r.Len); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(r.Prefix, r.Len); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestInsertBatch(t *testing.T) {
	rs := randomRuleSet(t, 24, 200, 18)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	extra := randomRuleSet(t, 24, 260, 19)
	// Avoid duplicate (prefix,len) pairs with the installed set.
	var newRules []lpm.Rule
	for _, r := range extra.Rules {
		if rs.Find(r.Prefix, r.Len) == lpm.NoMatch {
			newRules = append(newRules, r)
		}
	}
	e2, err := e.InsertBatch(newRules)
	if err != nil {
		t.Fatal(err)
	}
	merged := append(append([]lpm.Rule(nil), rs.Rules...), newRules...)
	mergedSet, err := lpm.NewRuleSet(24, merged)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, e2, mergedSet, 4000, 20)
	// The original engine is untouched.
	assertMatchesOracle(t, e, rs, 1000, 21)
}

func TestInsertAfterDelete(t *testing.T) {
	rs := randomRuleSet(t, 20, 100, 22)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	dead := rs.Rules[5]
	if err := e.Delete(dead.Prefix, dead.Len); err != nil {
		t.Fatal(err)
	}
	// Re-inserting the deleted rule must be allowed: tombstoned rules are
	// dropped from the rebuild.
	e2, err := e.InsertBatch([]lpm.Rule{{Prefix: dead.Prefix, Len: dead.Len, Action: 777}})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := e2.Lookup(dead.Prefix)
	if !ok {
		t.Fatal("no match after reinsert")
	}
	_ = got // the action may belong to a longer rule; oracle check below
	var survivors []lpm.Rule
	for _, r := range rs.Rules {
		if r != dead {
			survivors = append(survivors, r)
		}
	}
	survivors = append(survivors, lpm.Rule{Prefix: dead.Prefix, Len: dead.Len, Action: 777})
	survivorSet, err := lpm.NewRuleSet(20, survivors)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesOracle(t, e2, survivorSet, 3000, 23)
}

func TestSRAMUsage(t *testing.T) {
	rs := randomRuleSet(t, 32, 800, 24)
	sram, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	bkt, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	us, ub := sram.SRAMUsage(), bkt.SRAMUsage()
	if us.Total != us.Model+us.RQArray || ub.Total != ub.Model+ub.RQArray {
		t.Fatal("totals inconsistent")
	}
	if ub.RQArray >= us.RQArray {
		t.Fatalf("bucketized RQ array (%d) not smaller than SRAM-only (%d)", ub.RQArray, us.RQArray)
	}
	if sram.DRAMFootprint() != 0 {
		t.Fatal("SRAM-only engine has DRAM footprint")
	}
	if bkt.DRAMFootprint() != bkt.Ranges().SizeBytes() {
		t.Fatal("bucketized DRAM footprint wrong")
	}
}

func TestVerify(t *testing.T) {
	rs := randomRuleSet(t, 24, 300, 25)
	for _, cfg := range []Config{quickSRAMOnly(), quickBucketed()} {
		e, err := Build(rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyAfterUpdates(t *testing.T) {
	rs := randomRuleSet(t, 20, 120, 26)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(rs.Rules[3].Prefix, rs.Rules[3].Len); err != nil {
		t.Fatal(err)
	}
	if err := e.ModifyAction(rs.Rules[7].Prefix, rs.Rules[7].Len, 999); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupSRAMOnly(b *testing.B) {
	rs := randomRuleSet(b, 32, 10000, 27)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(qs[i&1023])
	}
}

func BenchmarkLookupBucketized(b *testing.B) {
	rs := randomRuleSet(b, 32, 10000, 28)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	qs := make([]keys.Value, 1024)
	for i := range qs {
		qs[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(qs[i&1023])
	}
}

func BenchmarkBuild10K(b *testing.B) {
	rs := randomRuleSet(b, 32, 10000, 29)
	cfg := quickBucketed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(rs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
