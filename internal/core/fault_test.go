package core

import (
	"errors"
	"testing"
	"time"

	"neurolpm/internal/fault"
	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
)

// buildFaulty builds an Updatable whose engine carries a fault injector.
func buildFaulty(t *testing.T, capacity int) (*Updatable, *lpm.RuleSet, *fault.Injector) {
	t.Helper()
	rs := randomRuleSet(t, 24, 80, 91)
	in := fault.NewInjector(1)
	cfg := quickSRAMOnly()
	cfg.Fault = in.Hook()
	e, err := Build(rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewUpdatable(e, capacity), rs, in
}

// freeRule24 returns a /24 rule absent from rs.
func freeRule24(t *testing.T, rs *lpm.RuleSet, action uint64) lpm.Rule {
	t.Helper()
	for p := uint64(0); p < 1<<16; p++ {
		prefix := keys.FromUint64(p * 2654435761 % (1 << 24))
		if rs.Find(prefix, 24) == lpm.NoMatch {
			return lpm.Rule{Prefix: prefix, Len: 24, Action: action}
		}
	}
	t.Fatal("no free rule")
	return lpm.Rule{}
}

// TestCommitFailureLeavesDeltaAndEngineIntact: an injected retrain failure
// must abort the commit with the pending rule still served from the
// overlay and the live engine unchanged; the next (successful) commit
// applies the rule exactly once.
func TestCommitFailureLeavesDeltaAndEngineIntact(t *testing.T) {
	u, rs, in := buildFaulty(t, 100)
	r := freeRule24(t, rs, 4242)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	before := u.Engine()

	in.FailNext(fault.SiteRetrain, 1)
	err := u.Commit()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under injected retrain failure: err = %v", err)
	}
	if u.Engine() != before {
		t.Fatal("failed commit swapped the engine")
	}
	if u.PendingInserts() != 1 {
		t.Fatalf("failed commit drained the delta buffer: pending = %d", u.PendingInserts())
	}
	if got, ok := u.Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("pending rule lost after failed commit: (%d,%v)", got, ok)
	}

	// Injector exhausted: the retry succeeds and applies the rule once.
	if err := u.Commit(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if u.PendingInserts() != 0 {
		t.Fatalf("pending after successful commit: %d", u.PendingInserts())
	}
	if got, ok := u.Engine().Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("committed rule missing from engine: (%d,%v)", got, ok)
	}
}

// TestSwapFailureDiscardsNewEngine: a failure injected between retrain and
// swap aborts the commit without tearing — old engine stays live, delta
// stays pending.
func TestSwapFailureDiscardsNewEngine(t *testing.T) {
	u, rs, in := buildFaulty(t, 100)
	r := freeRule24(t, rs, 777)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	before := u.Engine()
	in.FailNext(fault.SiteSwap, 1)
	if err := u.Commit(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("commit under injected swap failure: err = %v", err)
	}
	if u.Engine() != before || u.PendingInserts() != 1 {
		t.Fatal("swap failure tore the commit")
	}
	if err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if u.PendingInserts() != 0 {
		t.Fatal("retry did not drain the delta")
	}
}

// TestInjectedDeltaExhaustionIsErrDeltaFull: both the real capacity limit
// and the injected exhaustion fault surface as ErrDeltaFull.
func TestInjectedDeltaExhaustionIsErrDeltaFull(t *testing.T) {
	// Real capacity overflow.
	u, rs, _ := buildFaulty(t, 1)
	a := freeRule24(t, rs, 1)
	if err := u.Insert(a); err != nil {
		t.Fatal(err)
	}
	b := freeRule24(t, rs, 2)
	if b.Prefix == a.Prefix {
		b.Prefix = b.Prefix.Xor(keys.FromUint64(1 << 8))
	}
	if err := u.Insert(b); !errors.Is(err, ErrDeltaFull) {
		t.Fatalf("capacity overflow: err = %v, want ErrDeltaFull", err)
	}

	// Injected exhaustion on an otherwise-roomy buffer.
	u2, rs2, in2 := buildFaulty(t, 100)
	in2.FailNext(fault.SiteDeltaFull, 1)
	if err := u2.Insert(freeRule24(t, rs2, 3)); !errors.Is(err, ErrDeltaFull) {
		t.Fatalf("injected exhaustion: err = %v, want ErrDeltaFull", err)
	}
	if err := u2.Insert(freeRule24(t, rs2, 3)); err != nil {
		t.Fatalf("insert after injector disarmed: %v", err)
	}
}

// TestAutoCommitRetriesThroughFailures: the background committer must ride
// out injected failures on the backoff schedule and eventually commit,
// clearing LastCommitErr.
func TestAutoCommitRetriesThroughFailures(t *testing.T) {
	u, rs, in := buildFaulty(t, 100)
	r := freeRule24(t, rs, 9001)
	in.FailNext(fault.SiteRetrain, 2)
	if err := u.Insert(r); err != nil {
		t.Fatal(err)
	}
	u.StartAutoCommit(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for u.PendingInserts() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if u.PendingInserts() != 0 {
		t.Fatalf("auto-commit never recovered: pending = %d, lastErr = %v",
			u.PendingInserts(), u.LastCommitErr())
	}
	if err := u.LastCommitErr(); err != nil {
		t.Fatalf("LastCommitErr not cleared after successful commit: %v", err)
	}
	if err := u.StopAutoCommit(); err != nil {
		t.Fatalf("StopAutoCommit after recovery: %v", err)
	}
	if fired, failed := in.Fired(fault.SiteRetrain); failed != 2 || fired < 3 {
		t.Fatalf("retrain site fired=%d failed=%d, want ≥3 fires with exactly 2 failures", fired, failed)
	}
	if got, ok := u.Engine().Lookup(r.Prefix); !ok || got != r.Action {
		t.Fatalf("rule not applied exactly once after retries: (%d,%v)", got, ok)
	}
}
