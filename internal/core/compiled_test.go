package core

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
)

// TestSampleEveryPowerOfTwo pins the sampling-mask precondition: the hot
// path computes n & (sampleEvery-1), which silently samples garbage strides
// unless sampleEvery is a power of two.
func TestSampleEveryPowerOfTwo(t *testing.T) {
	if sampleEvery <= 0 || sampleEvery&(sampleEvery-1) != 0 {
		t.Fatalf("sampleEvery = %d must be a positive power of two: the n&(sampleEvery-1) mask in lookup depends on it", sampleEvery)
	}
}

// compiledConfigs covers both designs the compiled plane serves: SRAM-only
// (search over the full range array) and bucketized (directory search plus
// the devirtualized bucket scan).
func compiledConfigs() map[string]Config {
	return map[string]Config{"sram": quickSRAMOnly(), "bucketized": quickBucketed()}
}

func TestLookupBatchMatchesLookup(t *testing.T) {
	for name, cfg := range compiledConfigs() {
		t.Run(name, func(t *testing.T) {
			rs := randomRuleSet(t, 32, 3000, 5)
			e, err := Build(rs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			// Ragged batch lengths exercise the block tail paths.
			for _, n := range []int{0, 1, 7, batchBlock, batchBlock + 1, 3*batchBlock + 5, 1000} {
				ks := make([]keys.Value, n)
				for i := range ks {
					ks[i] = randomKey(rng, 32)
				}
				out := e.LookupBatch(ks, nil)
				if len(out) != n {
					t.Fatalf("LookupBatch returned %d results for %d keys", len(out), n)
				}
				for i, k := range ks {
					a, ok := e.Lookup(k)
					if out[i].Action != a || out[i].Matched != ok {
						t.Fatalf("batch[%d] = (%d,%v), Lookup = (%d,%v)", i, out[i].Action, out[i].Matched, a, ok)
					}
				}
			}
			// Reuse: a caller-provided slice with capacity must not allocate
			// a fresh one.
			ks := []keys.Value{randomKey(rng, 32), randomKey(rng, 32)}
			buf := make([]BatchResult, 0, 16)
			out := e.LookupBatch(ks, buf)
			if cap(out) != cap(buf) {
				t.Fatal("LookupBatch reallocated a result slice that had capacity")
			}
		})
	}
}

func TestLookupReferenceMatchesLookup(t *testing.T) {
	for name, cfg := range compiledConfigs() {
		t.Run(name, func(t *testing.T) {
			rs := randomRuleSet(t, 32, 2000, 8)
			e, err := Build(rs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < 20000; i++ {
				k := randomKey(rng, 32)
				a, ok := e.Lookup(k)
				ra, rok := e.LookupReference(k)
				if a != ra || ok != rok {
					t.Fatalf("key %v: compiled (%d,%v), reference (%d,%v)", k, a, ok, ra, rok)
				}
			}
		})
	}
}

// TestCompiledSurvivesUpdates checks the compiled plane stays correct across
// the no-retrain update paths (Delete re-owns ranges, ModifyAction rewrites
// actions): boundaries never move, so the flat bounds copy must stay valid.
func TestCompiledSurvivesUpdates(t *testing.T) {
	rs := randomRuleSet(t, 32, 400, 10)
	e, err := Build(rs, quickBucketed())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		r := rs.Rules[i*7%rs.Len()]
		if i%2 == 0 {
			if err := e.Delete(r.Prefix, r.Len); err != nil {
				continue
			}
		} else {
			if err := e.ModifyAction(r.Prefix, r.Len, 424242+uint64(i)); err != nil {
				continue
			}
		}
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyCatchesCompiledDivergence corrupts the flat bounds copy and
// checks Verify reports the compiled/reference divergence instead of
// passing silently.
func TestVerifyCatchesCompiledDivergence(t *testing.T) {
	rs := randomRuleSet(t, 32, 300, 11)
	e, err := Build(rs, quickSRAMOnly())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("clean engine must verify: %v", err)
	}
	// Shift one compiled bound by rebuilding the plane over a mutated copy
	// of the range array; the model itself is untouched.
	n := e.ra.Len()
	if n < 2 {
		t.Skip("degenerate array")
	}
	mut := *e.ra
	mut.Entries = append(mut.Entries[:0:0], e.ra.Entries...)
	mut.Entries[n/2].Low = mut.Entries[n/2].Low.Inc()
	if err := e.compilePlane(&mut); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err == nil {
		t.Fatal("Verify passed with a corrupted compiled plane")
	}
	// Restore for hygiene.
	if err := e.compilePlane(e.ra); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("restored engine must verify: %v", err)
	}
}
