package core

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
	"neurolpm/internal/lpm"
	"neurolpm/internal/rqrmi"
)

// fuzzModel keeps per-iteration training in the low milliseconds.
func fuzzModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 4}
	cfg.Samples = 128
	cfg.Epochs = 10
	cfg.MaxRounds = 1
	return cfg
}

// deriveFuzzRules decodes raw fuzz bytes into a valid 32-bit rule-set:
// 6 bytes per rule (4 prefix, 1 length, 1 action), wildcard bits masked,
// duplicates dropped, capped at 48 rules.
func deriveFuzzRules(data []byte) []lpm.Rule {
	const width = 32
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for i := 0; i+6 <= len(data) && len(rules) < 48; i += 6 {
		length := 1 + int(data[i+4])%width
		raw := uint64(data[i])<<24 | uint64(data[i+1])<<16 | uint64(data[i+2])<<8 | uint64(data[i+3])
		prefix := keys.FromUint64(raw).Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(data[i+5]) + 1})
	}
	return rules
}

// FuzzEngineVsOracle differentially fuzzes the single engine: for arbitrary
// rule-sets and key streams the engine must equal the trie oracle on every
// key, before and after a no-retrain deletion (the §6.5 tombstone path).
func FuzzEngineVsOracle(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 7, 1, 255, 255, 0, 0, 3, 2}, uint64(1), false)
	f.Add([]byte{1, 2, 3, 4, 31, 9, 128, 0, 0, 0, 0, 5, 64, 0, 0, 0, 1, 6}, uint64(42), true)
	f.Add([]byte{}, uint64(0), false)
	f.Fuzz(func(t *testing.T, data []byte, keySeed uint64, bucketized bool) {
		const width = 32
		rules := deriveFuzzRules(data)
		rs, err := lpm.NewRuleSet(width, rules)
		if err != nil {
			t.Fatalf("derived rule-set invalid: %v", err)
		}
		cfg := Config{Model: fuzzModel()}
		if bucketized {
			cfg.BucketSize = 8
		}
		eng, err := Build(rs, cfg)
		if err != nil {
			t.Fatalf("Build(%d rules): %v", rs.Len(), err)
		}
		ks := make([]keys.Value, 0, 2*len(rules)+64)
		for _, r := range rules {
			ks = append(ks, r.Low(width), r.High(width))
		}
		rng := rand.New(rand.NewSource(int64(keySeed)))
		for i := 0; i < 64; i++ {
			ks = append(ks, keys.FromUint64(rng.Uint64()&(1<<width-1)))
		}
		check := func(stage string, oracle *lpm.TrieMatcher) {
			for _, k := range ks {
				want, wantOK := oracle.Lookup(k)
				got, ok := eng.Lookup(k)
				if ok != wantOK || (wantOK && got != want) {
					t.Fatalf("%s: key %v: engine (%d,%v), oracle (%d,%v)",
						stage, k, got, ok, want, wantOK)
				}
			}
		}
		check("fresh", lpm.NewTrieMatcher(rs))
		if len(rules) < 2 {
			return
		}
		// Delete one derived rule without retraining and re-check against an
		// oracle over the survivors.
		doomed := rules[int(keySeed)%len(rules)]
		if err := eng.Delete(doomed.Prefix, doomed.Len); err != nil {
			t.Fatalf("Delete(%v): %v", doomed, err)
		}
		var rest []lpm.Rule
		for _, r := range rules {
			if r.Prefix != doomed.Prefix || r.Len != doomed.Len {
				rest = append(rest, r)
			}
		}
		restSet, err := lpm.NewRuleSet(width, rest)
		if err != nil {
			t.Fatal(err)
		}
		check("post-delete", lpm.NewTrieMatcher(restSet))
	})
}
