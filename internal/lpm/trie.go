package lpm

import "neurolpm/internal/keys"

// Trie is a binary (unibit) trie over a rule-set: the classic exact LPM
// structure. It is the fast correctness oracle against which the learned
// engine and the hardware baselines are verified, and it powers the
// no-retrain update paths (recomputing the owner of a range after a rule is
// deleted).
type Trie struct {
	width int
	nodes []trieNode
}

type trieNode struct {
	child [2]int32 // 0 = none
	rule  int32    // index into the source rule slice, or NoMatch
}

// NewTrie builds a trie from the rule-set. Rule indexes reported by Lookup
// refer to s.Rules.
func NewTrie(s *RuleSet) *Trie {
	t := &Trie{width: s.Width, nodes: make([]trieNode, 1, 2*len(s.Rules)+1)}
	t.nodes[0] = trieNode{rule: NoMatch}
	for i, r := range s.Rules {
		t.insert(r, int32(i))
	}
	return t
}

func (t *Trie) insert(r Rule, idx int32) {
	cur := int32(0)
	for depth := 0; depth < r.Len; depth++ {
		bit := r.Prefix.Bit(t.width - 1 - depth)
		next := t.nodes[cur].child[bit]
		if next == 0 {
			t.nodes = append(t.nodes, trieNode{rule: NoMatch})
			next = int32(len(t.nodes) - 1)
			t.nodes[cur].child[bit] = next
		}
		cur = next
	}
	t.nodes[cur].rule = idx
}

// Lookup returns the index of the longest-prefix rule matching k, or NoMatch.
func (t *Trie) Lookup(k keys.Value) int {
	return t.LookupWhere(k, nil)
}

// LookupWhere returns the longest-prefix rule matching k among those the
// accept predicate admits (nil accepts all). It powers tombstone-aware
// lookups: deleting a rule and re-querying yields the next-longest live
// match without rebuilding the trie.
func (t *Trie) LookupWhere(k keys.Value, accept func(rule int32) bool) int {
	best := int32(NoMatch)
	cur := int32(0)
	for depth := 0; ; depth++ {
		if r := t.nodes[cur].rule; r != NoMatch && (accept == nil || accept(r)) {
			best = r
		}
		if depth >= t.width {
			break
		}
		next := t.nodes[cur].child[k.Bit(t.width-1-depth)]
		if next == 0 {
			break
		}
		cur = next
	}
	return int(best)
}

// NodeCount returns the number of trie nodes (for space accounting).
func (t *Trie) NodeCount() int { return len(t.nodes) }

// Matcher is the minimal LPM query interface shared by the oracle, the
// learned engine, and all baselines. Lookup returns the matched rule's
// action; ok is false when no rule covers the key.
type Matcher interface {
	Lookup(k keys.Value) (action uint64, ok bool)
}

// TrieMatcher adapts a Trie to the Matcher interface.
type TrieMatcher struct {
	Trie  *Trie
	Rules []Rule
}

// NewTrieMatcher builds the oracle matcher for a rule-set.
func NewTrieMatcher(s *RuleSet) *TrieMatcher {
	return &TrieMatcher{Trie: NewTrie(s), Rules: s.Rules}
}

// Lookup implements Matcher.
func (m *TrieMatcher) Lookup(k keys.Value) (uint64, bool) {
	i := m.Trie.Lookup(k)
	if i == NoMatch {
		return 0, false
	}
	return m.Rules[i].Action, true
}
