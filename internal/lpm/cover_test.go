package lpm

import (
	"math/rand"
	"testing"

	"neurolpm/internal/keys"
)

func TestPrefixCoverSingleKey(t *testing.T) {
	rules, err := PrefixCover(8, keys.FromUint64(5), keys.FromUint64(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Len != 8 || rules[0].Prefix != keys.FromUint64(5) {
		t.Fatalf("rules = %v", rules)
	}
}

func TestPrefixCoverAlignedBlock(t *testing.T) {
	rules, err := PrefixCover(8, keys.FromUint64(0x40), keys.FromUint64(0x7F), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Len != 2 {
		t.Fatalf("rules = %v", rules)
	}
}

func TestPrefixCoverWholeDomain(t *testing.T) {
	for _, width := range []int{8, 32, 128} {
		rules, err := PrefixCover(width, keys.Value{}, keys.MaxValue(width), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(rules) != 1 || rules[0].Len != 0 {
			t.Fatalf("width %d: rules = %v", width, rules)
		}
	}
}

func TestPrefixCoverErrors(t *testing.T) {
	if _, err := PrefixCover(8, keys.FromUint64(5), keys.FromUint64(4), 0); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := PrefixCover(8, keys.FromUint64(0), keys.FromUint64(256), 0); err == nil {
		t.Error("out-of-domain interval accepted")
	}
}

// TestPrefixCoverExact verifies, by exhaustion on a small domain, that the
// cover matches exactly the interval — every inside key matched, every
// outside key unmatched — and respects the 2w−2 size bound.
func TestPrefixCoverExact(t *testing.T) {
	const width = 10
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		a := uint64(rng.Intn(1 << width))
		b := uint64(rng.Intn(1 << width))
		if a > b {
			a, b = b, a
		}
		rules, err := PrefixCover(width, keys.FromUint64(a), keys.FromUint64(b), 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(rules) > 2*width-2+1 {
			t.Fatalf("[%d,%d]: %d prefixes exceed bound", a, b, len(rules))
		}
		for k := uint64(0); k < 1<<width; k++ {
			matched := false
			for _, r := range rules {
				if r.Matches(width, keys.FromUint64(k)) {
					if matched {
						t.Fatalf("[%d,%d]: key %d matched twice", a, b, k)
					}
					matched = true
				}
			}
			if want := k >= a && k <= b; matched != want {
				t.Fatalf("[%d,%d]: key %d matched=%v want=%v", a, b, k, matched, want)
			}
		}
	}
}

// TestPrefixCoverRulesValid checks each produced rule passes validation.
func TestPrefixCoverRulesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		a := rng.Uint64()
		b := rng.Uint64()
		if a > b {
			a, b = b, a
		}
		rules, err := PrefixCover(64, keys.FromUint64(a), keys.FromUint64(b), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rules {
			if err := r.Validate(64); err != nil {
				t.Fatalf("invalid rule %v: %v", r, err)
			}
		}
		if _, err := NewRuleSet(64, rules); err != nil {
			t.Fatalf("cover not a valid rule-set: %v", err)
		}
	}
}
