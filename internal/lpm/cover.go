package lpm

import (
	"fmt"

	"neurolpm/internal/keys"
)

// PrefixCover decomposes the inclusive key interval [lo, hi] into the
// minimal set of prefix rules covering exactly that interval, all carrying
// the given action. This is the classic range-to-prefix expansion used to
// express range-shaped policies (clustering centroid cells, load-balancing
// weight slices — paper Apps 3 and 5) as LPM rules; an interval needs at
// most 2·width−2 prefixes.
func PrefixCover(width int, lo, hi keys.Value, action uint64) ([]Rule, error) {
	if hi.Less(lo) {
		return nil, fmt.Errorf("lpm: inverted interval [%v, %v]", lo, hi)
	}
	dom := keys.NewDomain(width)
	if !dom.Contains(hi) {
		return nil, fmt.Errorf("lpm: interval exceeds %d-bit domain", width)
	}
	var out []Rule
	cur := lo
	for {
		// The largest aligned block starting at cur: limited by cur's
		// trailing zeros and by the remaining span.
		size := uint(0) // log2 of block size
		for int(size) < width {
			bigger := size + 1
			// Alignment: cur must have `bigger` trailing zero bits.
			if cur.Bit(int(size)) != 0 {
				break
			}
			// Span: block end must not pass hi.
			blockEnd := cur.Add(keys.FromUint64(1).Shl(bigger)).Dec()
			if hi.Less(blockEnd) {
				break
			}
			size = bigger
		}
		out = append(out, Rule{Prefix: cur, Len: width - int(size), Action: action})
		blockEnd := cur.Add(keys.FromUint64(1).Shl(size)).Dec()
		if !blockEnd.Less(hi) {
			return out, nil
		}
		cur = blockEnd.Inc()
	}
}
