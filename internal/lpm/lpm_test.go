package lpm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"neurolpm/internal/keys"
)

func mustRuleSet(t *testing.T, width int, rules []Rule) *RuleSet {
	t.Helper()
	s, err := NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// paperRules reproduces the 5-bit example from §2.1 of the paper:
// r1 = 001** and r2 = 00***.
func paperRules(t *testing.T) *RuleSet {
	return mustRuleSet(t, 5, []Rule{
		{Prefix: keys.FromUint64(0b00100), Len: 3, Action: 1},
		{Prefix: keys.FromUint64(0b00000), Len: 2, Action: 2},
	})
}

func TestPaperExample(t *testing.T) {
	s := paperRules(t)
	// Input 00111 matches r1 (001**), the longer prefix.
	i := s.LongestMatch(keys.FromUint64(0b00111))
	if i == NoMatch || s.Rules[i].Action != 1 {
		t.Fatalf("00111 matched %d, want action 1", i)
	}
	// Input 00011 matches only r2.
	i = s.LongestMatch(keys.FromUint64(0b00011))
	if i == NoMatch || s.Rules[i].Action != 2 {
		t.Fatalf("00011 matched %d, want action 2", i)
	}
	// Input 01000 matches nothing.
	if i := s.LongestMatch(keys.FromUint64(0b01000)); i != NoMatch {
		t.Fatalf("01000 matched %d, want NoMatch", i)
	}
}

func TestRuleLowHigh(t *testing.T) {
	r := Rule{Prefix: keys.FromUint64(0b10000), Len: 4} // 1000* in 5 bits
	if got := r.Low(5); got != keys.FromUint64(0b10000) {
		t.Errorf("Low = %v", got)
	}
	if got := r.High(5); got != keys.FromUint64(0b10001) {
		t.Errorf("High = %v", got)
	}
	// Full-length rule matches exactly one key.
	r = Rule{Prefix: keys.FromUint64(7), Len: 5}
	if r.Low(5) != r.High(5) {
		t.Error("full-length rule should have Low == High")
	}
	// Zero-length rule covers the whole domain.
	r = Rule{Len: 0}
	if r.High(5) != keys.MaxValue(5) {
		t.Errorf("default rule High = %v", r.High(5))
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Prefix: keys.FromUint64(0b00100), Len: 3}
	for k, want := range map[uint64]bool{
		0b00100: true, 0b00111: true, 0b00011: false, 0b01100: false,
	} {
		if got := r.Matches(5, keys.FromUint64(k)); got != want {
			t.Errorf("Matches(%05b) = %v, want %v", k, got, want)
		}
	}
}

func TestRuleMatchesEqualsRangeContainment(t *testing.T) {
	f := func(prefixRaw uint32, lenRaw uint8, kRaw uint32) bool {
		length := int(lenRaw % 33)
		mask := uint64(0)
		if length > 0 {
			mask = ^uint64(0) << (32 - length) & 0xFFFFFFFF
		}
		r := Rule{Prefix: keys.FromUint64(uint64(prefixRaw) & mask), Len: length}
		k := keys.FromUint64(uint64(kRaw))
		inRange := r.Low(32).Cmp(k) <= 0 && k.Cmp(r.High(32)) <= 0
		return r.Matches(32, k) == inRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := Rule{Prefix: keys.FromUint64(0xFF000000), Len: 8}
	if err := good.Validate(32); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	bad := []Rule{
		{Prefix: keys.FromUint64(1), Len: 8},       // wildcard bits set
		{Prefix: keys.FromUint64(0), Len: 33},      // too long
		{Prefix: keys.FromUint64(0), Len: -1},      // negative
		{Prefix: keys.FromUint64(1 << 40), Len: 8}, // prefix exceeds width
		{Prefix: keys.FromParts(1, 0), Len: 8},     // high limb in 32-bit
	}
	for _, r := range bad {
		if err := r.Validate(32); err == nil {
			t.Errorf("invalid rule %v accepted", r)
		}
	}
}

func TestNewRuleSetRejectsDuplicates(t *testing.T) {
	_, err := NewRuleSet(8, []Rule{
		{Prefix: keys.FromUint64(0x80), Len: 4, Action: 1},
		{Prefix: keys.FromUint64(0x80), Len: 4, Action: 2},
	})
	if err == nil {
		t.Fatal("duplicate prefix/len accepted")
	}
}

func TestNewRuleSetRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, -5, 129} {
		if _, err := NewRuleSet(w, nil); err == nil {
			t.Errorf("width %d accepted", w)
		}
	}
}

func TestRuleSetSortOrder(t *testing.T) {
	s := mustRuleSet(t, 8, []Rule{
		{Prefix: keys.FromUint64(0x80), Len: 4, Action: 1},
		{Prefix: keys.FromUint64(0x80), Len: 1, Action: 2},
		{Prefix: keys.FromUint64(0x40), Len: 2, Action: 3},
	})
	// Covering (shorter) prefixes with the same low bound come first.
	if s.Rules[0].Prefix != keys.FromUint64(0x40) {
		t.Fatalf("rules[0] = %v", s.Rules[0])
	}
	if s.Rules[1].Len != 1 || s.Rules[2].Len != 4 {
		t.Fatalf("nested order wrong: %v", s.Rules)
	}
}

func TestFind(t *testing.T) {
	s := paperRules(t)
	if i := s.Find(keys.FromUint64(0b00100), 3); i == NoMatch || s.Rules[i].Action != 1 {
		t.Fatalf("Find existing = %d", i)
	}
	if i := s.Find(keys.FromUint64(0b00100), 4); i != NoMatch {
		t.Fatalf("Find missing = %d", i)
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule(32, "0xc0a80000/16 7")
	if err != nil {
		t.Fatal(err)
	}
	if r.Prefix != keys.FromUint64(0xc0a80000) || r.Len != 16 || r.Action != 7 {
		t.Fatalf("parsed %v", r)
	}
}

func TestParseRuleDecimal(t *testing.T) {
	r, err := ParseRule(8, "128/1 3")
	if err != nil {
		t.Fatal(err)
	}
	if r.Prefix != keys.FromUint64(128) || r.Len != 1 {
		t.Fatalf("parsed %v", r)
	}
}

func TestParseRule128(t *testing.T) {
	r, err := ParseRule(128, "0x20010db8000000000000000000000000/32 9")
	if err != nil {
		t.Fatal(err)
	}
	if r.Prefix != keys.FromParts(0x20010db800000000, 0) || r.Len != 32 {
		t.Fatalf("parsed %v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"", "0x10/4", "0x10/4 5 6", "nope/4 1", "0x10/x 1", "0x10/4 act",
		"0x11/4 1", // wildcard bits set in an 8-bit domain
	}
	for _, line := range bad {
		if _, err := ParseRule(8, line); err == nil {
			t.Errorf("ParseRule(%q) accepted", line)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	s := paperRules(t)
	got, err := ParseRuleSet(5, s.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost rules: %d vs %d", got.Len(), s.Len())
	}
	for i := range got.Rules {
		if got.Rules[i] != s.Rules[i] {
			t.Fatalf("rule %d: %v vs %v", i, got.Rules[i], s.Rules[i])
		}
	}
}

func TestParseRuleSetSkipsComments(t *testing.T) {
	s, err := ParseRuleSet(8, "# comment\n\n0x80/1 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("rules = %d", s.Len())
	}
}

func TestParseRuleSetReportsLine(t *testing.T) {
	_, err := ParseRuleSet(8, "0x80/1 1\nbogus\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestPrefixHistogram(t *testing.T) {
	s := paperRules(t)
	h := s.PrefixHistogram()
	if len(h) != 6 || h[2] != 1 || h[3] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := paperRules(t)
	c := s.Clone()
	c.Rules[0].Action = 99
	if s.Rules[0].Action == 99 {
		t.Fatal("Clone shares rule storage")
	}
}

func randomRuleSet(rng *rand.Rand, width, n int) *RuleSet {
	seen := map[Rule]bool{}
	var rules []Rule
	for len(rules) < n {
		length := rng.Intn(width + 1)
		var prefix keys.Value
		if width <= 64 {
			prefix = keys.FromUint64(rng.Uint64() & (uint64(1)<<width - 1))
		} else {
			prefix = keys.FromParts(rng.Uint64(), rng.Uint64())
		}
		if length < width {
			prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		}
		key := Rule{Prefix: prefix, Len: length}
		if seen[key] {
			continue
		}
		seen[key] = true
		rules = append(rules, Rule{Prefix: prefix, Len: length, Action: uint64(rng.Intn(256))})
	}
	s, err := NewRuleSet(width, rules)
	if err != nil {
		panic(err)
	}
	return s
}

func TestTrieMatchesLinearOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{8, 16, 32, 64, 128} {
		s := randomRuleSet(rng, width, 60)
		trie := NewTrie(s)
		for q := 0; q < 500; q++ {
			var k keys.Value
			if width <= 64 {
				k = keys.FromUint64(rng.Uint64() & (uint64(1)<<(width-1)<<1 - 1))
			} else {
				k = keys.FromParts(rng.Uint64(), rng.Uint64())
			}
			want := s.LongestMatch(k)
			got := trie.Lookup(k)
			if got != want {
				t.Fatalf("width %d key %v: trie %d, linear %d", width, k, got, want)
			}
		}
	}
}

func TestTrieDefaultRule(t *testing.T) {
	s := mustRuleSet(t, 8, []Rule{{Len: 0, Action: 42}})
	trie := NewTrie(s)
	if i := trie.Lookup(keys.FromUint64(200)); i != 0 {
		t.Fatalf("default rule not matched: %d", i)
	}
}

func TestTrieEmpty(t *testing.T) {
	s := mustRuleSet(t, 8, nil)
	trie := NewTrie(s)
	if i := trie.Lookup(keys.FromUint64(5)); i != NoMatch {
		t.Fatalf("empty trie matched %d", i)
	}
}

func TestTrieMatcher(t *testing.T) {
	s := paperRules(t)
	m := NewTrieMatcher(s)
	if a, ok := m.Lookup(keys.FromUint64(0b00111)); !ok || a != 1 {
		t.Fatalf("Lookup = %d,%v", a, ok)
	}
	if _, ok := m.Lookup(keys.FromUint64(0b11111)); ok {
		t.Fatal("expected no match")
	}
}

func TestTrieNodeCountBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomRuleSet(rng, 32, 100)
	trie := NewTrie(s)
	// A unibit trie has at most 1 + sum(len) nodes.
	max := 1
	for _, r := range s.Rules {
		max += r.Len
	}
	if trie.NodeCount() > max {
		t.Fatalf("node count %d exceeds bound %d", trie.NodeCount(), max)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randomRuleSet(rng, 32, 10000)
	trie := NewTrie(s)
	queries := make([]keys.Value, 1024)
	for i := range queries {
		queries[i] = keys.FromUint64(uint64(rng.Uint32()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.Lookup(queries[i&1023])
	}
}
