package lpm

import (
	"testing"

	"neurolpm/internal/keys"
)

// FuzzParseRule ensures the rule parser never panics and that accepted
// rules re-validate and round-trip through the text format.
func FuzzParseRule(f *testing.F) {
	f.Add("0xc0a80000/16 7")
	f.Add("128/1 3")
	f.Add("0x20010db8000000000000000000000000/32 9")
	f.Add("garbage")
	f.Add("0x10/4 5 6")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := ParseRule(32, line)
		if err != nil {
			return
		}
		if err := r.Validate(32); err != nil {
			t.Fatalf("accepted rule fails validation: %v", err)
		}
	})
}

// FuzzPrefixCoverBounds checks PrefixCover on arbitrary intervals: covers
// are valid rule-sets and every rule stays inside the interval.
func FuzzPrefixCoverBounds(f *testing.F) {
	f.Add(uint64(0), uint64(100))
	f.Add(uint64(5), uint64(5))
	f.Add(uint64(1<<31), uint64(1<<32-1))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		a &= 1<<32 - 1
		b &= 1<<32 - 1
		if a > b {
			a, b = b, a
		}
		lo := keys.FromUint64(a)
		hi := keys.FromUint64(b)
		rules, err := PrefixCover(32, lo, hi, 1)
		if err != nil {
			t.Fatalf("valid interval rejected: %v", err)
		}
		if _, err := NewRuleSet(32, rules); err != nil {
			t.Fatalf("cover is not a valid rule-set: %v", err)
		}
		for _, r := range rules {
			if r.Low(32).Less(lo) || hi.Less(r.High(32)) {
				t.Fatalf("rule %v escapes [%v,%v]", r, lo, hi)
			}
		}
	})
}
