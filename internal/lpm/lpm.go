// Package lpm defines the Longest Prefix Match rule model used by NeuroLPM
// and its baselines: width-bit rules of the form prefix:wildcard with an
// associated action, plus reference matchers that serve as correctness
// oracles for the learned engine.
package lpm

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"neurolpm/internal/keys"
)

// NoMatch is returned by matchers when no rule covers the query.
const NoMatch = -1

// Rule is an LPM rule: the Len most-significant bits of Prefix are fixed,
// the remaining Width−Len bits are wildcards. Action is the value associated
// with the rule; per the paper's clustering application (App 3) it may be
// any 64-bit integer, not just an 8-bit next-hop index.
type Rule struct {
	Prefix keys.Value // wildcard bits must be zero
	Len    int        // number of fixed (most significant) bits, 0..Width
	Action uint64
}

// Low returns the smallest key matched by r in a width-bit domain.
func (r Rule) Low(width int) keys.Value { return r.Prefix }

// High returns the largest key matched by r in a width-bit domain.
func (r Rule) High(width int) keys.Value {
	if r.Len >= width {
		return r.Prefix
	}
	return r.Prefix.Or(keys.MaxValue(width - r.Len))
}

// Matches reports whether r matches key k in a width-bit domain.
func (r Rule) Matches(width int, k keys.Value) bool {
	if r.Len == 0 {
		return true
	}
	shift := uint(width - r.Len)
	return k.Shr(shift) == r.Prefix.Shr(shift)
}

// String renders r as "<hex-prefix>/<len> -> <action>".
func (r Rule) String() string {
	return fmt.Sprintf("%s/%d -> %d", r.Prefix, r.Len, r.Action)
}

// Validate checks that r is well-formed for a width-bit rule-set.
func (r Rule) Validate(width int) error {
	if r.Len < 0 || r.Len > width {
		return fmt.Errorf("lpm: rule %v: length %d outside [0,%d]", r, r.Len, width)
	}
	if !keys.NewDomain(width).Contains(r.Prefix) {
		return fmt.Errorf("lpm: rule %v: prefix exceeds %d bits", r, width)
	}
	if r.Len < width {
		wild := keys.MaxValue(width - r.Len)
		if !r.Prefix.And(wild).IsZero() {
			return fmt.Errorf("lpm: rule %v: wildcard bits not zero", r)
		}
	}
	return nil
}

// RuleSet is a collection of LPM rules over a common bit width.
type RuleSet struct {
	Width int
	Rules []Rule
}

// NewRuleSet validates the rules and returns a rule-set. Duplicate
// (prefix,len) pairs are rejected: a rule-set maps each prefix to exactly one
// action. Duplicates are detected on the sorted copy (equal pairs land
// adjacent), not with a hash set — at the 10M-rule tiered scale the struct-
// keyed map dominated construction (≈5s of hashing at 6M rules) while the
// sort is needed anyway.
func NewRuleSet(width int, rules []Rule) (*RuleSet, error) {
	if width < 1 || width > 128 {
		return nil, fmt.Errorf("lpm: invalid width %d", width)
	}
	for _, r := range rules {
		if err := r.Validate(width); err != nil {
			return nil, err
		}
	}
	rs := &RuleSet{Width: width, Rules: append([]Rule(nil), rules...)}
	rs.sort()
	for i := 1; i < len(rs.Rules); i++ {
		a, b := rs.Rules[i-1], rs.Rules[i]
		if a.Prefix == b.Prefix && a.Len == b.Len {
			return nil, fmt.Errorf("lpm: duplicate rule %s/%d", b.Prefix, b.Len)
		}
	}
	return rs, nil
}

// sort orders rules by (Low asc, Len asc) so that a covering (shorter)
// prefix always precedes the prefixes nested inside it — the order required
// by the range-conversion sweep. slices.SortFunc, not the reflect-based
// sort.Slice: at 10M rules the latter costs whole seconds.
func (s *RuleSet) sort() {
	slices.SortFunc(s.Rules, func(a, b Rule) int {
		if c := a.Prefix.Cmp(b.Prefix); c != 0 {
			return c
		}
		return a.Len - b.Len
	})
}

// Len returns the number of rules.
func (s *RuleSet) Len() int { return len(s.Rules) }

// Clone returns a deep copy of the rule-set.
func (s *RuleSet) Clone() *RuleSet {
	return &RuleSet{Width: s.Width, Rules: append([]Rule(nil), s.Rules...)}
}

// Find returns the index of the rule with the given prefix and length, or
// NoMatch if absent.
func (s *RuleSet) Find(prefix keys.Value, length int) int {
	i := sort.Search(len(s.Rules), func(i int) bool {
		r := s.Rules[i]
		if c := r.Prefix.Cmp(prefix); c != 0 {
			return c >= 0
		}
		return r.Len >= length
	})
	if i < len(s.Rules) && s.Rules[i].Prefix == prefix && s.Rules[i].Len == length {
		return i
	}
	return NoMatch
}

// LongestMatch returns the index (into Rules) of the longest-prefix rule
// matching k, or NoMatch. This is the O(n) reference oracle.
func (s *RuleSet) LongestMatch(k keys.Value) int {
	best := NoMatch
	bestLen := -1
	for i, r := range s.Rules {
		if r.Len > bestLen && r.Matches(s.Width, k) {
			best, bestLen = i, r.Len
		}
	}
	return best
}

// ParseRule parses "prefix/len action" where prefix is a hexadecimal or
// decimal integer of the domain width, e.g. "0xc0a80000/16 7".
func ParseRule(width int, line string) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return Rule{}, fmt.Errorf("lpm: malformed rule %q (want \"prefix/len action\")", line)
	}
	slash := strings.IndexByte(fields[0], '/')
	if slash < 0 {
		return Rule{}, fmt.Errorf("lpm: malformed prefix %q (missing /len)", fields[0])
	}
	prefix, err := parseValue(fields[0][:slash])
	if err != nil {
		return Rule{}, fmt.Errorf("lpm: bad prefix in %q: %w", line, err)
	}
	length, err := strconv.Atoi(fields[0][slash+1:])
	if err != nil {
		return Rule{}, fmt.Errorf("lpm: bad length in %q: %w", line, err)
	}
	action, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return Rule{}, fmt.Errorf("lpm: bad action in %q: %w", line, err)
	}
	r := Rule{Prefix: prefix, Len: length, Action: action}
	if err := r.Validate(width); err != nil {
		return Rule{}, err
	}
	return r, nil
}

func parseValue(s string) (keys.Value, error) {
	// Values up to 64 bits parse directly; longer hex strings split limbs.
	if strings.HasPrefix(s, "0x") && len(s) > 18 {
		hexDigits := s[2:]
		if len(hexDigits) > 32 {
			return keys.Value{}, errors.New("value exceeds 128 bits")
		}
		split := len(hexDigits) - 16
		hi, err := strconv.ParseUint(hexDigits[:split], 16, 64)
		if err != nil {
			return keys.Value{}, err
		}
		lo, err := strconv.ParseUint(hexDigits[split:], 16, 64)
		if err != nil {
			return keys.Value{}, err
		}
		return keys.FromParts(hi, lo), nil
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return keys.Value{}, err
	}
	return keys.FromUint64(v), nil
}

// ParseRuleSet parses one rule per line; blank lines and lines starting with
// '#' are skipped.
func ParseRuleSet(width int, text string) (*RuleSet, error) {
	var rules []Rule
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRule(width, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		rules = append(rules, r)
	}
	return NewRuleSet(width, rules)
}

// Format renders the rule-set in the textual form accepted by ParseRuleSet.
func (s *RuleSet) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# width=%d rules=%d\n", s.Width, len(s.Rules))
	for _, r := range s.Rules {
		fmt.Fprintf(&b, "%s/%d %d\n", r.Prefix, r.Len, r.Action)
	}
	return b.String()
}

// PrefixHistogram returns the count of rules per prefix length (index 0..Width).
func (s *RuleSet) PrefixHistogram() []int {
	h := make([]int, s.Width+1)
	for _, r := range s.Rules {
		h[r.Len]++
	}
	return h
}
