// Package tier implements the two-tier bucket store that scales the §7
// bucketized design an order of magnitude past paper scale (the ROADMAP's
// "CRAM Lens" direction): hot buckets stay in the engine's flat fast-tier
// bound arrays, cold buckets are demoted to a simulated slow tier — a
// separately allocated, access-counted copy of the bucket's bounds standing
// in for CXL/flash-class memory. Placement is driven by the decaying
// bucket-hotness sketches in internal/telemetry (demotion) and by unsampled
// per-bucket access bursts (promotion), applied by a rebalance pass that the
// engine publishes through its per-shard cache epoch.
//
// Correctness under racy migration is free by construction: range bounds are
// immutable after ranges.Convert, so the fast-tier arrays and a bucket's
// cold copy always hold identical values — a lookup racing a tier flip
// resolves the same range index either way, and the planetest matrix plus a
// dedicated -race stress test enforce exactly that. The tier map itself is
// an atomic bitmap plus per-bucket atomic pointers, so readers never see a
// torn migration; the epoch bump a rebalance publishes exists to keep the
// cached planes' invalidation discipline uniform (every placement change is
// an engine-state change), not to patch a data race.
package tier

import (
	"sync/atomic"
	"time"

	"neurolpm/internal/telemetry"
)

// Every cold-tier access and migration is counted here; the resident gauge
// is registered by the serving layers (internal/serve, internal/shard),
// which know each shard's live engine.
var (
	metPromotions = telemetry.Default.Counter("neurolpm_tier_promotions_total",
		"Buckets promoted cold→fast by the rebalancer (access bursts)")
	metDemotions = telemetry.Default.Counter("neurolpm_tier_demotions_total",
		"Buckets demoted fast→cold by the rebalancer (hotness below threshold)")
	metColdFetches = telemetry.Default.Counter("neurolpm_tier_cold_fetches_total",
		"Bucket fetches served from the slow tier")
)

// Config selects and tunes the tiered bucket store. It rides core.Config
// (like the fault hook) so engine rebuilds — InsertBatch, sharded commits —
// inherit the tier automatically.
type Config struct {
	// Enabled turns the tier on for bucketized engines of width ≤ 64 (the
	// designs with a flat uint64 bound array to copy from). Zero value = off:
	// the engine pays one nil check per bucket fetch and nothing else.
	Enabled bool
	// DemoteBelow is the decayed hotness count below which a rebalance pass
	// demotes a fast-resident bucket. 0 selects 1 (demote buckets the sketch
	// has not seen at all within its decay window).
	DemoteBelow uint32
	// PromoteBurst is the number of cold fetches since the previous rebalance
	// pass that promotes a cold bucket back to the fast tier. 0 selects 1
	// (any observed cold access promotes — the working set migrates up after
	// one pass). Burst counters are exact, not sampled: promotion must react
	// to traffic the 1:64 hotness sampling can miss.
	PromoteBurst uint32
}

func (c Config) withDefaults() Config {
	if c.DemoteBelow == 0 {
		c.DemoteBelow = 1
	}
	if c.PromoteBurst == 0 {
		c.PromoteBurst = 1
	}
	return c
}

// Stats is a point-in-time tier snapshot.
type Stats struct {
	Buckets      int // total buckets
	FastResident int // buckets in the fast tier
	ColdResident int // buckets in the slow tier
	FastBytes    int // fast-tier bound-array bytes for resident buckets
	ColdBytes    int // separately allocated slow-tier bytes
}

// Store is the per-engine tier map over a bucket directory's bucket array.
// It is immutable in shape after New; placement state (bitmap, cold copies,
// burst counters) is fully atomic, so lookups, the rebalancer and commits
// may race freely.
type Store struct {
	cfg        Config
	k          int      // ranges per bucket
	entryBytes int      // bytes per range entry (footprint accounting)
	lows       []uint64 // the engine's flat fast-tier bounds (shared, immutable)
	nb         int      // bucket count

	cold  []atomic.Uint32            // placement bitmap: bit b&31 of word b>>5
	data  []atomic.Pointer[[]uint64] // per-bucket slow-tier copy; nil while fast
	burst []atomic.Uint32            // cold fetches since the last rebalance

	fastResident atomic.Int64
	coldBytes    atomic.Int64
}

// New builds the tier map for a bucket array of len(lows) ranges grouped k
// per bucket. Every bucket starts fast-resident (the uniform single-tier
// layout); demotion is the rebalancer's job.
func New(lows []uint64, k, entryBytes int, cfg Config) *Store {
	nb := (len(lows) + k - 1) / k
	t := &Store{
		cfg:        cfg.withDefaults(),
		k:          k,
		entryBytes: entryBytes,
		lows:       lows,
		nb:         nb,
		cold:       make([]atomic.Uint32, (nb+31)/32),
		data:       make([]atomic.Pointer[[]uint64], nb),
		burst:      make([]atomic.Uint32, nb),
	}
	t.fastResident.Store(int64(nb))
	return t
}

// Buckets returns the bucket count.
func (t *Store) Buckets() int { return t.nb }

// bounds returns bucket b's half-open range-index span.
func (t *Store) bounds(b int) (start, end int) {
	start = b * t.k
	end = start + t.k
	if end > len(t.lows) {
		end = len(t.lows)
	}
	return start, end
}

// IsCold reports bucket b's current placement.
func (t *Store) IsCold(b int) bool {
	return t.cold[b>>5].Load()&(1<<(uint(b)&31)) != 0
}

// Fetch routes one bucket access. For fast-resident buckets it returns
// ok=false and the caller scans the fast-tier arrays as before. For cold
// buckets it counts the slow-tier fetch, feeds the promotion burst counter,
// and resolves k within the bucket's separately allocated cold copy — the
// same in-order scan as the fast path over bit-identical bounds, so a racing
// migration can never change the answer. kk is the ≤64-bit key (callers map
// out-of-domain keys to ^uint64(0), above every bound, exactly like the
// fast-tier bucket scan).
func (t *Store) Fetch(b int, kk uint64) (idx, comparisons int, ok bool) {
	if !t.IsCold(b) {
		return 0, 0, false
	}
	p := t.data[b].Load()
	if p == nil {
		// Racing promotion already reclaimed the copy; the fast tier is
		// authoritative again.
		return 0, 0, false
	}
	metColdFetches.Inc()
	t.burst[b].Add(1)
	lows := *p
	start := b * t.k
	idx = start
	for i := 1; i < len(lows); i++ {
		comparisons++
		if kk < lows[i] {
			break
		}
		idx = start + i
	}
	return idx, comparisons, true
}

// Demote moves bucket b to the slow tier: allocate the cold copy, publish
// it, then flip the placement bit. Returns false if b was already cold.
func (t *Store) Demote(b int) bool {
	if t.IsCold(b) {
		return false
	}
	start, end := t.bounds(b)
	cp := make([]uint64, end-start)
	copy(cp, t.lows[start:end])
	t.data[b].Store(&cp)
	t.cold[b>>5].Or(1 << (uint(b) & 31))
	t.fastResident.Add(-1)
	t.coldBytes.Add(int64(len(cp) * t.entryBytes))
	metDemotions.Inc()
	return true
}

// Promote moves bucket b back to the fast tier: flip the bit first (readers
// immediately take the fast path), then release the cold copy. Returns false
// if b was already fast.
func (t *Store) Promote(b int) bool {
	if !t.IsCold(b) {
		return false
	}
	t.cold[b>>5].And(^uint32(1 << (uint(b) & 31)))
	if p := t.data[b].Swap(nil); p != nil {
		t.coldBytes.Add(-int64(len(*p) * t.entryBytes))
	}
	t.fastResident.Add(1)
	metPromotions.Inc()
	return true
}

// DemoteAll demotes every fast-resident bucket (the cold-start layout tests
// and experiments use to force the promotion path) and returns how many
// moved.
func (t *Store) DemoteAll() int {
	n := 0
	for b := 0; b < t.nb; b++ {
		if t.Demote(b) {
			n++
		}
	}
	return n
}

// Rebalance runs one placement pass: cold buckets whose burst counter
// reached PromoteBurst (or whose decayed hotness recovered past DemoteBelow)
// are promoted; fast buckets whose hotness sits below DemoteBelow are
// demoted. hot may be nil, which makes the pass purely burst-driven (no
// demotions) — the deterministic mode experiments use. The caller publishes
// the pass through its cache epoch when promoted+demoted > 0
// (core.Engine.RebalanceTier).
func (t *Store) Rebalance(hot *telemetry.HotSketch) (promoted, demoted int) {
	if hot != nil {
		hot.Tick(time.Now())
	}
	for b := 0; b < t.nb; b++ {
		burst := t.burst[b].Swap(0)
		var count uint32
		if hot != nil {
			count = hot.Count(uint32(b))
		}
		if t.IsCold(b) {
			if burst >= t.cfg.PromoteBurst || count >= t.cfg.DemoteBelow {
				if t.Promote(b) {
					promoted++
				}
			}
			continue
		}
		// Burst is only ever fed by cold fetches, so a nonzero value here
		// means the bucket was promoted mid-window — leave it alone.
		if hot != nil && burst == 0 && count < t.cfg.DemoteBelow {
			if t.Demote(b) {
				demoted++
			}
		}
	}
	return promoted, demoted
}

// Stats snapshots residency. Fast bytes count the bound-array span of every
// fast-resident bucket; cold bytes are the separately allocated copies.
func (t *Store) Stats() Stats {
	fast := int(t.fastResident.Load())
	s := Stats{
		Buckets:      t.nb,
		FastResident: fast,
		ColdResident: t.nb - fast,
		FastBytes:    fast * t.k * t.entryBytes,
		ColdBytes:    int(t.coldBytes.Load()),
	}
	if s.FastResident > 0 && !t.IsCold(t.nb-1) {
		// The last bucket may be partial; correct the overcount.
		start, end := t.bounds(t.nb - 1)
		s.FastBytes -= (t.k - (end - start)) * t.entryBytes
	}
	return s
}
