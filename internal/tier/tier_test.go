package tier

import (
	"testing"

	"neurolpm/internal/telemetry"
)

// fixtureLows builds n strictly increasing bounds: 10, 20, 30, ...
func fixtureLows(n int) []uint64 {
	lows := make([]uint64, n)
	for i := range lows {
		lows[i] = uint64(i+1) * 10
	}
	return lows
}

// scan is the reference fast-tier resolution: last index in the bucket whose
// bound is ≤ kk (mirrors core.Engine.bucketScan).
func scan(lows []uint64, k, b int, kk uint64) int {
	start := b * k
	end := start + k
	if end > len(lows) {
		end = len(lows)
	}
	idx := start
	for i := start + 1; i < end; i++ {
		if kk < lows[i] {
			break
		}
		idx = i
	}
	return idx
}

func TestFetchMatchesFastScanAcrossMigrations(t *testing.T) {
	const k = 8
	lows := fixtureLows(61) // deliberately partial last bucket
	s := New(lows, k, 4, Config{Enabled: true})
	if s.Buckets() != 8 {
		t.Fatalf("buckets = %d, want 8", s.Buckets())
	}
	probe := func(when string) {
		for b := 0; b < s.Buckets(); b++ {
			for kk := uint64(0); kk <= 640; kk += 3 {
				want := scan(lows, k, b, kk)
				idx, _, cold := s.Fetch(b, kk)
				if cold != s.IsCold(b) {
					t.Fatalf("%s: bucket %d cold=%v, IsCold=%v", when, b, cold, s.IsCold(b))
				}
				if cold && idx != want {
					t.Fatalf("%s: cold fetch bucket %d key %d = %d, fast scan %d", when, b, kk, idx, want)
				}
			}
		}
	}
	probe("all-fast")
	if n := s.DemoteAll(); n != 8 {
		t.Fatalf("DemoteAll = %d, want 8", n)
	}
	probe("all-cold")
	for b := 0; b < s.Buckets(); b += 2 {
		s.Promote(b)
	}
	probe("mixed")
}

func TestResidencyAccounting(t *testing.T) {
	const k, eb = 8, 4
	lows := fixtureLows(61) // 7 full buckets + one 5-range bucket
	s := New(lows, k, eb, Config{Enabled: true})
	st := s.Stats()
	if st.FastResident != 8 || st.ColdResident != 0 {
		t.Fatalf("initial residency = %+v", st)
	}
	if want := 61 * eb; st.FastBytes != want {
		t.Fatalf("initial fast bytes = %d, want %d", st.FastBytes, want)
	}
	if st.ColdBytes != 0 {
		t.Fatalf("initial cold bytes = %d", st.ColdBytes)
	}

	s.Demote(7) // the partial bucket
	st = s.Stats()
	if st.FastResident != 7 || st.ColdResident != 1 {
		t.Fatalf("after demote: %+v", st)
	}
	if want := 56 * eb; st.FastBytes != want {
		t.Fatalf("fast bytes after demoting partial bucket = %d, want %d", st.FastBytes, want)
	}
	if want := 5 * eb; st.ColdBytes != want {
		t.Fatalf("cold bytes = %d, want %d", st.ColdBytes, want)
	}

	// Idempotence: re-demoting / re-promoting must not double-count.
	if s.Demote(7) {
		t.Fatal("Demote on cold bucket reported true")
	}
	s.Promote(7)
	if s.Promote(7) {
		t.Fatal("Promote on fast bucket reported true")
	}
	st = s.Stats()
	if st.FastResident != 8 || st.ColdBytes != 0 {
		t.Fatalf("after round-trip: %+v", st)
	}
}

func TestRebalanceBurstPromotion(t *testing.T) {
	lows := fixtureLows(64)
	s := New(lows, 8, 4, Config{Enabled: true, PromoteBurst: 3})
	s.DemoteAll()
	// Bucket 2 gets a 3-fetch burst, bucket 5 only one touch.
	for i := 0; i < 3; i++ {
		s.Fetch(2, 25)
	}
	s.Fetch(5, 415)
	promoted, demoted := s.Rebalance(nil)
	if promoted != 1 || demoted != 0 {
		t.Fatalf("Rebalance = (%d,%d), want (1,0)", promoted, demoted)
	}
	if s.IsCold(2) || !s.IsCold(5) {
		t.Fatalf("placement after rebalance: bucket2 cold=%v bucket5 cold=%v", s.IsCold(2), s.IsCold(5))
	}
	// Burst counters were consumed: a second pass promotes nothing.
	if p, _ := s.Rebalance(nil); p != 0 {
		t.Fatalf("second pass promoted %d", p)
	}
}

func TestRebalanceSketchDemotion(t *testing.T) {
	lows := fixtureLows(64)
	s := New(lows, 8, 4, Config{Enabled: true, DemoteBelow: 2})
	hot := telemetry.NewHotSketch(s.Buckets())
	// Buckets 0 and 3 are hot; the rest were never sampled.
	for i := 0; i < 5; i++ {
		hot.Touch(0)
		hot.Touch(3)
	}
	promoted, demoted := s.Rebalance(hot)
	if promoted != 0 || demoted != 6 {
		t.Fatalf("Rebalance = (%d,%d), want (0,6)", promoted, demoted)
	}
	if s.IsCold(0) || s.IsCold(3) {
		t.Fatal("hot buckets were demoted")
	}
	// A hotness recovery promotes without a burst.
	for i := 0; i < 5; i++ {
		hot.Touch(6)
	}
	promoted, _ = s.Rebalance(hot)
	if promoted != 1 || s.IsCold(6) {
		t.Fatalf("hotness recovery: promoted=%d cold=%v", promoted, s.IsCold(6))
	}
}
