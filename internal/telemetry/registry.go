package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindHistogram
	kindGauge
	kindGaugeVec
	kindInfo
)

// String names the kind for Entries (and the metrics-name lint).
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	case kindGauge:
		return "gauge"
	case kindGaugeVec:
		return "gaugevec"
	case kindInfo:
		return "info"
	}
	return "unknown"
}

// entry is one named metric.
type entry struct {
	name   string
	help   string
	kind   metricKind
	ctr    *Counter
	hist   *Histogram
	fn     func() float64
	vec    *GaugeVec
	labels [][2]string // kindInfo: sorted constant label pairs
}

// Registry is a named collection of metrics. Metric constructors are
// get-or-create, so independent packages can share a metric by name without
// import cycles (e.g. the §7 invariant gauge divides a bucket-package
// counter by a core-package counter).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry all hot-path instrumentation uses.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if needed.
// It panics if name is registered as a different kind — that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindCounter {
			panic("telemetry: " + name + " already registered with a different kind")
		}
		return e.ctr
	}
	c := NewCounter()
	r.add(&entry{name: name, help: help, kind: kindCounter, ctr: c})
	return c
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindHistogram {
			panic("telemetry: " + name + " already registered with a different kind")
		}
		return e.hist
	}
	h := NewHistogram()
	r.add(&entry{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// Gauge registers a derived metric evaluated at scrape time. Re-registering
// the same name replaces the function (last writer wins), which lets a
// rebuilt engine refresh its gauges.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindGauge {
			panic("telemetry: " + name + " already registered with a different kind")
		}
		e.fn = fn
		return
	}
	r.add(&entry{name: name, help: help, kind: kindGauge, fn: fn})
}

// GaugeVec is a derived-gauge family with one label dimension — the
// registry's answer to per-shard metrics (health, consecutive commit
// failures) without pulling in a full label model. Each label value holds
// one scrape-time function; Set is last-writer-wins per value, matching
// Gauge's rebuilt-engine refresh semantics.
type GaugeVec struct {
	name  string
	label string

	mu     sync.Mutex
	series map[string]func() float64
	order  []string
}

// Set registers (or replaces) the gauge function for one label value.
func (v *GaugeVec) Set(value string, fn func() float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.series[value]; !ok {
		v.order = append(v.order, value)
		sort.Strings(v.order)
	}
	v.series[value] = fn
}

// snapshot returns the label values (sorted) and their current readings.
func (v *GaugeVec) snapshot() ([]string, []float64) {
	v.mu.Lock()
	vals := append([]string(nil), v.order...)
	fns := make([]func() float64, len(vals))
	for i, lv := range vals {
		fns[i] = v.series[lv]
	}
	v.mu.Unlock()
	out := make([]float64, len(vals))
	for i, fn := range fns {
		out[i] = fn()
	}
	return vals, out
}

// GaugeVec returns the gauge family registered under name, creating it if
// needed. It panics if name is registered as a different kind or with a
// different label name.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindGaugeVec {
			panic("telemetry: " + name + " already registered with a different kind")
		}
		if e.vec.label != label {
			panic("telemetry: " + name + " already registered with label " + e.vec.label)
		}
		return e.vec
	}
	v := &GaugeVec{name: name, label: label, series: make(map[string]func() float64)}
	r.add(&entry{name: name, help: help, kind: kindGaugeVec, vec: v})
	return v
}

// Info registers a constant-labels info metric (value always 1) in the
// Prometheus `*_info` idiom — build/configuration facts carried as labels.
// Re-registering replaces the label set (last writer wins), mirroring
// Gauge's refresh semantics.
func (r *Registry) Info(name, help string, labels map[string]string) {
	pairs := make([][2]string, 0, len(labels))
	for k, v := range labels {
		pairs = append(pairs, [2]string{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindInfo {
			panic("telemetry: " + name + " already registered with a different kind")
		}
		e.labels = pairs
		return
	}
	r.add(&entry{name: name, help: help, kind: kindInfo, labels: pairs})
}

// MetricInfo describes one registered metric — the registry's reflection
// surface, consumed by the metrics-name lint test and documentation tools.
type MetricInfo struct {
	Name string
	Help string
	Kind string
}

// Entries lists every registered metric, name-sorted.
func (r *Registry) Entries() []MetricInfo {
	es := r.snapshotEntries()
	out := make([]MetricInfo, 0, len(es))
	for _, e := range es {
		out = append(out, MetricInfo{Name: e.name, Help: e.help, Kind: e.kind.String()})
	}
	return out
}

// AttachCounter registers an existing standalone counter under name (used
// by cachesim to expose a per-instance cache through the shared registry).
func (r *Registry) AttachCounter(name, help string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kindCounter {
			panic("telemetry: " + name + " already registered with a different kind")
		}
		e.ctr = c
		return
	}
	r.add(&entry{name: name, help: help, kind: kindCounter, ctr: c})
}

// add inserts an entry; callers hold r.mu.
func (r *Registry) add(e *entry) {
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
	sort.Strings(r.order)
}

// snapshotEntries copies the entry list under the read lock so rendering
// runs without holding it.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (counters, gauges, and log₂ histograms with cumulative buckets).
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", e.name, e.help, e.name, e.name, e.ctr.Load())
		case kindGauge:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", e.name, e.help, e.name, e.name, e.fn())
		case kindGaugeVec:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", e.name, e.help, e.name)
			vals, readings := e.vec.snapshot()
			for i, lv := range vals {
				fmt.Fprintf(w, "%s{%s=%q} %g\n", e.name, e.vec.label, lv, readings[i])
			}
		case kindInfo:
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{", e.name, e.help, e.name, e.name)
			for i, p := range e.labels {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%s=%q", p[0], p[1])
			}
			fmt.Fprint(w, "} 1\n")
		case kindHistogram:
			s := e.hist.Snapshot()
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", e.name, e.help, e.name)
			var cum uint64
			for b := 0; b < numBuckets; b++ {
				if s.Counts[b] == 0 {
					continue
				}
				cum += s.Counts[b]
				_, hi := bucketBounds(b)
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", e.name, hi, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, s.Total)
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", e.name, s.Sum, e.name, s.Total)
		}
	}
}

// Snapshot returns a flat name→value view: counters and gauges map to one
// value; histograms expand to _count, _sum, _mean, _p50, _p99 and _max.
// This is the expvar representation.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, e := range r.snapshotEntries() {
		switch e.kind {
		case kindCounter:
			out[e.name] = float64(e.ctr.Load())
		case kindGauge:
			out[e.name] = e.fn()
		case kindGaugeVec:
			vals, readings := e.vec.snapshot()
			for i, lv := range vals {
				out[fmt.Sprintf("%s{%s=%q}", e.name, e.vec.label, lv)] = readings[i]
			}
		case kindInfo:
			var lb []byte
			for i, p := range e.labels {
				if i > 0 {
					lb = append(lb, ',')
				}
				lb = append(lb, fmt.Sprintf("%s=%q", p[0], p[1])...)
			}
			out[fmt.Sprintf("%s{%s}", e.name, lb)] = 1
		case kindHistogram:
			s := e.hist.Snapshot()
			out[e.name+"_count"] = float64(s.Total)
			out[e.name+"_sum"] = float64(s.Sum)
			out[e.name+"_mean"] = s.Mean()
			out[e.name+"_p50"] = s.Quantile(0.50)
			out[e.name+"_p99"] = s.Quantile(0.99)
			out[e.name+"_max"] = float64(s.Max())
		}
	}
	return out
}

// publishOnce guards expvar publication: expvar panics on duplicate names.
var publishOnce sync.Once

// PublishExpvar exposes the default registry through expvar under the
// "neurolpm" variable, so /debug/vars carries the same numbers /metrics
// does. Safe to call any number of times.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("neurolpm", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
