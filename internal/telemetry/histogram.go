package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets is the bucket count of a log₂ histogram: bucket 0 holds the
// value 0 and bucket b (1..64) holds values v with bits.Len64(v) == b, i.e.
// v ∈ [2^(b−1), 2^b−1].
const numBuckets = 65

// padHistShard is one stripe of a Histogram. Each shard owns a contiguous
// bucket array plus the running sum, with tail padding so adjacent shards
// never share a cache line.
type padHistShard struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [cacheLine - 8*((numBuckets+1)%8)%cacheLine]byte
}

// Histogram is a lock-free log₂-bucketed histogram of uint64 observations.
// Observe costs two uncontended atomic adds; quantiles, counts and means
// are extracted from a Snapshot. Create with NewHistogram or a Registry.
type Histogram struct {
	shards []padHistShard
}

// NewHistogram returns a standalone (unregistered) histogram.
func NewHistogram() *Histogram {
	return &Histogram{shards: make([]padHistShard, numShards)}
}

// bucketOf maps a value to its log₂ bucket.
func bucketOf(v uint64) int { return bits.Len64(v) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	s := &h.shards[shardIndex()]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// ObserveInt records a non-negative int (negative values clamp to zero).
func (h *Histogram) ObserveInt(v int) {
	if v < 0 {
		v = 0
	}
	h.Observe(uint64(v))
}

// Snapshot is a point-in-time aggregation of a histogram. Methods on a
// Snapshot are pure; take one snapshot and query it repeatedly.
type Snapshot struct {
	Counts [numBuckets]uint64
	Sum    uint64
	Total  uint64
}

// Snapshot aggregates all shards. Concurrent with writers it is a
// consistent-enough view: every completed Observe is counted exactly once.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < numBuckets; b++ {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Sum += sh.sum.Load()
	}
	for _, c := range s.Counts {
		s.Total += c
	}
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Total }

// Reset zeroes every shard (see Counter.Reset for the caveats).
func (h *Histogram) Reset() {
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < numBuckets; b++ {
			sh.counts[b].Store(0)
		}
		sh.sum.Store(0)
	}
}

// bucketBounds returns the inclusive value range of bucket b.
func bucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	lo = uint64(1) << (b - 1)
	if b == 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<b - 1
}

// Mean returns the exact mean of all observations (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation inside the covering log₂ bucket. The estimate is exact for
// values 0 and 1 and within a factor of two elsewhere — sufficient for the
// order-of-magnitude distributions the paper reasons about.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	var cum float64
	for b := 0; b < numBuckets; b++ {
		c := float64(s.Counts[b])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(b)
			if c <= 1 || lo == hi {
				return float64(lo)
			}
			frac := (rank - cum) / c
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	// Fell off the end (rank == Total and rounding): highest non-empty bucket.
	for b := numBuckets - 1; b >= 0; b-- {
		if s.Counts[b] > 0 {
			_, hi := bucketBounds(b)
			return float64(hi)
		}
	}
	return 0
}

// Max returns the upper bound of the highest non-empty bucket.
func (s Snapshot) Max() uint64 {
	for b := numBuckets - 1; b >= 0; b-- {
		if s.Counts[b] > 0 {
			_, hi := bucketBounds(b)
			return hi
		}
	}
	return 0
}
