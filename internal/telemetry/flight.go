package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the always-on sampled-tracing half of the
// observability plane (DESIGN.md §13): 1-in-N queries run the real plane
// stack (lcache probe → compiled inference → bounded secondary search →
// bucket fetch) with per-stage clock stamps into a fixed-size FlightRecord
// on the caller's stack, which Commit then copies into a bounded ring and,
// for the worst offenders, a worst-N slow-query log. The untimed N−1 of
// every N queries pay one atomic-load-and-mask on a tick they already
// incremented — no clocks, no allocation, no locks.
//
// The sampling decision is lock-free; the ring and slow-log writes take a
// tiny mutex whose critical section is one fixed-size struct copy. At the
// default 1:256 stride even multi-Mlookups/s traffic commits tens of
// thousands of records per second — microseconds of aggregate lock hold
// time — so the mutex is uncontended in practice while keeping the reader
// side (debug endpoints) free of torn records under the race detector's
// memory model.

// Flight-record stage indices (StageNs slots).
const (
	StageProbe     = iota // result-cache probe (cached paths only)
	StageInference        // RQRMI compiled inference
	StageSearch           // bounded secondary search
	StageFetch            // DRAM bucket fetch + bucket scan
	NumStages
)

// StageNames maps stage indices to their /debug/flightrec spellings.
var StageNames = [NumStages]string{"lcache-probe", "inference", "secondary-search", "bucket-fetch"}

// FlightRecord is one sampled query. It is a fixed-size value — records move
// by copy, never by pointer — so sampling allocates nothing.
type FlightRecord struct {
	When       int64 // query start, Unix nanoseconds
	KeyHi      uint64
	KeyLo      uint64
	TotalNs    int64
	StageNs    [NumStages]int64
	Probes     int32 // secondary-search probes
	ErrBound   int32 // compiled per-query error bound
	Shard      int32 // owning shard (0 in single-engine mode)
	Action     uint64
	Matched    bool
	BucketRead bool
	Batch      bool  // batched query: inference was pipelined, not timed per key
	Cache      uint8 // lcache.Outcome ordinal (0 none, 1 hit, 2 miss, 3 stale)

	t0     time.Time // monotonic base for TotalNs and stage deltas
	lastNs int64     // elapsed ns at the previous Stamp
}

// Begin starts the record's clock and tags the key. This is the record's
// only full time.Now read; Stamp and Commit take monotonic-only deltas
// against t0 (time.Since skips the wall-clock half, roughly halving the
// cost per read — the flight recorder's per-sample budget is mostly clock
// reads).
func (fr *FlightRecord) Begin(keyHi, keyLo uint64) {
	t := time.Now()
	fr.t0 = t
	fr.When = t.UnixNano()
	fr.KeyHi, fr.KeyLo = keyHi, keyLo
}

// Stamp charges the time since the previous stamp (or Begin) to stage.
// Safe on a nil record: unsampled queries pass fr == nil everywhere.
func (fr *FlightRecord) Stamp(stage int) {
	if fr == nil {
		return
	}
	d := time.Since(fr.t0).Nanoseconds()
	fr.StageNs[stage] += d - fr.lastNs
	fr.lastNs = d
}

// maskOff is the disabled sentinel: ticks start at 1, so n&maskOff == 0
// never fires.
const maskOff = ^uint64(0)

// Recorder is a flight-recorder instance: sampling mask, record ring,
// slow-query log, and the windowed latency histogram the /slo endpoint
// reads. Use the package-level Flight; NewRecorder exists for tests.
type Recorder struct {
	mask  atomic.Uint64 // sampleEvery−1, or maskOff when disabled
	every atomic.Uint64

	ringMu sync.Mutex
	ring   []FlightRecord
	pos    uint64 // total commits; ring[pos&(len-1)] is the next slot

	slowN   int
	slowMu  sync.Mutex
	slow    []FlightRecord // sorted by TotalNs descending
	slowMin atomic.Int64   // fast-reject floor once the slow log is full

	lat *Windowed
}

// DefaultSampleEvery is the always-on sampling stride: 1 in 256 queries.
// It is a power-of-two multiple of the engine's distribution-sampling
// stride (core.sampleEvery = 64), so every flight-sampled query is also a
// distribution-sampled one and both ride the same lookup tick. 256 keeps
// the amortized record cost (~250ns of clock reads and ring writes per
// sample) inside the noise floor of a ~150ns lookup — E26 measures the
// overhead; 64 was measurable at 5–7%.
const DefaultSampleEvery = 256

// Flight is the process-wide recorder every engine lookup samples into.
var Flight = NewRecorder(4096, 32)

// NewRecorder builds a recorder with the given ring size (rounded up to a
// power of two) and slow-log depth, sampling 1 in DefaultSampleEvery.
func NewRecorder(ringSize, slowN int) *Recorder {
	n := 1
	for n < ringSize {
		n <<= 1
	}
	if slowN < 1 {
		slowN = 1
	}
	r := &Recorder{
		ring:  make([]FlightRecord, n),
		slowN: slowN,
		slow:  make([]FlightRecord, 0, slowN),
		lat: NewWindowed(Default.Histogram("neurolpm_lookup_latency_ns",
			"Sampled end-to-end lookup latency in nanoseconds (flight recorder; 1-in-N)"),
			time.Second, 2*time.Minute),
	}
	r.SetSampleEvery(DefaultSampleEvery)
	return r
}

// SetSampleEvery sets the sampling stride: 1 in n queries (n rounded up to a
// power of two). n == 0 disables sampling entirely.
func (r *Recorder) SetSampleEvery(n uint64) {
	if n == 0 {
		r.every.Store(0)
		r.mask.Store(maskOff)
		return
	}
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	r.every.Store(p)
	r.mask.Store(p - 1)
}

// SampleEvery returns the current stride (0 when disabled).
func (r *Recorder) SampleEvery() uint64 { return r.every.Load() }

// HitN reports whether the query holding tick n is sampled. Callers reuse a
// tick they already pay for (the lookup counter's per-shard value, a cache's
// owner-local counter), so the untimed path costs one atomic load and a
// mask.
func (r *Recorder) HitN(n uint64) bool { return n&r.mask.Load() == 0 }

// Commit finalizes fr (stamping TotalNs), feeds the windowed latency
// histogram, and copies the record into the ring and — when slow enough —
// the slow log.
func (r *Recorder) Commit(fr *FlightRecord) {
	fr.TotalNs = time.Since(fr.t0).Nanoseconds()
	r.lat.Observe(uint64(fr.TotalNs))

	r.ringMu.Lock()
	r.ring[r.pos&uint64(len(r.ring)-1)] = *fr
	r.pos++
	r.ringMu.Unlock()

	// Fast reject: once the slow log is full, only records beating its
	// floor take the lock.
	if min := r.slowMin.Load(); min > 0 && fr.TotalNs <= min {
		return
	}
	r.slowMu.Lock()
	r.offerSlowLocked(fr)
	r.slowMu.Unlock()
}

// offerSlowLocked inserts fr into the descending slow log (linear shift —
// the log holds tens of entries).
func (r *Recorder) offerSlowLocked(fr *FlightRecord) {
	i := len(r.slow)
	for i > 0 && r.slow[i-1].TotalNs < fr.TotalNs {
		i--
	}
	if i >= r.slowN {
		return
	}
	if len(r.slow) < r.slowN {
		r.slow = append(r.slow, FlightRecord{})
	}
	copy(r.slow[i+1:], r.slow[i:])
	r.slow[i] = *fr
	if len(r.slow) == r.slowN {
		r.slowMin.Store(r.slow[len(r.slow)-1].TotalNs)
	}
}

// Recent returns up to n records, newest first.
func (r *Recorder) Recent(n int) []FlightRecord {
	if n <= 0 {
		return nil
	}
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	have := int(r.pos)
	if r.pos > uint64(len(r.ring)) {
		have = len(r.ring)
	}
	if n > have {
		n = have
	}
	out := make([]FlightRecord, n)
	for i := 0; i < n; i++ {
		out[i] = r.ring[(r.pos-1-uint64(i))&uint64(len(r.ring)-1)]
	}
	return out
}

// Slow returns up to n slow-log records, worst first.
func (r *Recorder) Slow(n int) []FlightRecord {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if n <= 0 || n > len(r.slow) {
		n = len(r.slow)
	}
	return append([]FlightRecord(nil), r.slow[:n]...)
}

// ResetSlow clears the slow log (operator action after investigating; also
// used between experiment phases).
func (r *Recorder) ResetSlow() {
	r.slowMu.Lock()
	r.slow = r.slow[:0]
	r.slowMin.Store(0)
	r.slowMu.Unlock()
}

// RingSize returns the ring capacity.
func (r *Recorder) RingSize() int { return len(r.ring) }

// Recorded returns the total number of committed records.
func (r *Recorder) Recorded() uint64 {
	r.ringMu.Lock()
	defer r.ringMu.Unlock()
	return r.pos
}

// LatencyWindow returns the sampled-latency distribution over at least d
// (d ≤ 0: since boot). span is the actual covered duration (see
// Windowed.Window).
func (r *Recorder) LatencyWindow(d time.Duration) (Snapshot, time.Duration) {
	return r.lat.Window(d)
}

// SLO windows rendered by /metrics gauges and the /slo endpoint.
var sloWindows = []struct {
	label string
	d     time.Duration
}{
	{"10s", 10 * time.Second},
	{"60s", 60 * time.Second},
}

func init() {
	Default.Gauge("neurolpm_flightrec_sample_every",
		"Flight-recorder sampling stride (1-in-N; 0 = disabled)",
		func() float64 { return float64(Flight.SampleEvery()) })
	Default.Gauge("neurolpm_flightrec_records",
		"Flight records committed since boot",
		func() float64 { return float64(Flight.Recorded()) })
	for _, q := range []struct {
		name string
		p    float64
	}{
		{"neurolpm_lookup_latency_p50_ns", 0.50},
		{"neurolpm_lookup_latency_p99_ns", 0.99},
		{"neurolpm_lookup_latency_p999_ns", 0.999},
	} {
		vec := Default.GaugeVec(q.name,
			"Sampled lookup latency quantile over a sliding window (flight recorder)", "window")
		for _, w := range sloWindows {
			d, p := w.d, q.p
			vec.Set(w.label, func() float64 {
				s, _ := Flight.LatencyWindow(d)
				return s.Quantile(p)
			})
		}
	}
}
