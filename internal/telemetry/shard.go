// Package telemetry is the always-on observability substrate of the
// NeuroLPM engine: lock-free sharded counters, log₂-bucketed histograms
// with quantile extraction, a per-query span recorder, and a registry that
// renders everything as Prometheus text and publishes it through expvar.
//
// The paper argues from distributions — per-query error bounds (§5.2.1),
// secondary-search probe counts (§6.2), bank conflicts (Fig 6a), and the
// one-DRAM-access-per-query bucketization invariant (§7) — so the hot
// paths are instrumented unconditionally. Every primitive here is designed
// to keep that instrumentation within noise of the uninstrumented engine:
// one or two uncontended atomic adds per event, no locks, no allocation.
package telemetry

import (
	"runtime"
	"unsafe"
)

// numShards is the stripe count of every counter and histogram. A power of
// two at least as large as GOMAXPROCS keeps concurrent writers on distinct
// cache lines with high probability.
var numShards = func() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n < 4 {
		n = 4
	}
	if n > 128 {
		n = 128
	}
	return n
}()

// cacheLine is the assumed coherence granule. 64 bytes covers x86-64 and
// most arm64 parts; the padding only wastes a few hundred bytes per metric.
const cacheLine = 64

// shardIndex picks the stripe for the calling goroutine. Goroutines have
// distinct stacks, so the address of a local variable is a cheap,
// allocation-free goroutine fingerprint (stack moves merely re-shard the
// goroutine, which is harmless — counters are sums over all shards).
func shardIndex() int {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	// Fibonacci mixing spreads stack base entropy into the high bits.
	p *= 0x9E3779B97F4A7C15
	return int(p>>48) & (numShards - 1)
}
