package telemetry

import (
	"runtime"
	"time"
)

// procStart is captured at package init — close enough to exec time for the
// standard process_start_time_seconds contract (Prometheus uses it to detect
// restarts and compute process age).
var procStart = time.Now()

func init() {
	Default.Gauge("neurolpm_process_start_time_seconds",
		"Unix time the process started, in seconds",
		func() float64 { return float64(procStart.UnixNano()) / 1e9 })
}

// SetBuildInfo publishes neurolpm_build_info with the go runtime version
// plus the caller's configuration labels (shards, cache-bytes, ...). The
// serving layer calls it once its configuration is known; calling again
// replaces the label set.
func SetBuildInfo(extra map[string]string) {
	labels := map[string]string{"go_version": runtime.Version()}
	for k, v := range extra {
		labels[k] = v
	}
	Default.Info("neurolpm_build_info", "Build and configuration info (value is always 1)", labels)
}
