package telemetry

import "time"

// Span records one query's path through the engine as a sequence of timed
// stages plus free-form attributes — the generalization of the engine's
// per-call Trace struct that the /trace endpoint serializes. Spans are for
// sampled or on-demand tracing: they allocate and read the clock, so the
// hot lookup path only builds one when a caller asks for it.
type Span struct {
	Name    string         `json:"name"`
	Start   time.Time      `json:"start"`
	TotalNs int64          `json:"total_ns"`
	Stages  []SpanStage    `json:"stages"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// SpanStage is one timed phase of a span (inference, secondary search,
// bucket fetch, ...).
type SpanStage struct {
	Name  string `json:"name"`
	DurNs int64  `json:"duration_ns"`
}

// StartSpan begins a span. Attrs is allocated lazily by Set, so spans that
// never attach attributes cost one allocation, not two.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// Stage starts a timed phase and returns the function that ends it.
// Safe on a nil span: the returned closure is a no-op.
func (s *Span) Stage(name string) func() {
	if s == nil {
		return nopStage
	}
	start := time.Now()
	return func() {
		s.Stages = append(s.Stages, SpanStage{Name: name, DurNs: time.Since(start).Nanoseconds()})
	}
}

var nopStage = func() {}

// Set attaches an attribute. Safe on a nil span.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]any, 4)
	}
	s.Attrs[key] = v
}

// End stamps the total duration. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.TotalNs = time.Since(s.Start).Nanoseconds()
}
