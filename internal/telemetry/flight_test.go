package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fakeClock drives a Windowed/HotSketch deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestWindowedSlidingWindow(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := NewWindowedLazy(NewHistogram(), time.Second, time.Minute)
	w.now = clk.now
	w.Tick(clk.t) // baseline snapshot at t=0

	// Ten observations per second for 30 seconds.
	for s := 0; s < 30; s++ {
		for i := 0; i < 10; i++ {
			w.Observe(100)
		}
		clk.advance(time.Second)
		w.Tick(clk.t)
	}

	cum, span := w.Window(0)
	if cum.Total != 300 || span != 0 {
		t.Fatalf("cumulative: total=%d span=%v, want 300, 0", cum.Total, span)
	}
	s10, span10 := w.Window(10 * time.Second)
	if s10.Total != 100 {
		t.Fatalf("10s window total=%d, want 100", s10.Total)
	}
	if span10 < 10*time.Second || span10 > 11*time.Second {
		t.Fatalf("10s window span=%v, want within [10s,11s]", span10)
	}
	// A window wider than history falls back to the oldest snapshot.
	sAll, _ := w.Window(10 * time.Minute)
	if sAll.Total != 300 {
		t.Fatalf("over-wide window total=%d, want 300", sAll.Total)
	}
}

func TestWindowedLazyRotation(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := NewWindowedLazy(NewHistogram(), time.Second, time.Minute)
	w.now = clk.now

	// No Tick calls at all: Window itself must rotate.
	w.Observe(1)
	if s, _ := w.Window(10 * time.Second); s.Total != 0 {
		// First read establishes the baseline; nothing is older than 10s yet,
		// so the only available base is the just-taken snapshot.
		t.Fatalf("fresh window total=%d, want 0", s.Total)
	}
	clk.advance(11 * time.Second)
	w.Observe(2)
	if s, _ := w.Window(10 * time.Second); s.Total != 1 {
		t.Fatalf("lazy-rotated window total=%d, want 1 (the post-baseline observation)", s.Total)
	}
}

func TestSnapshotSub(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Observe(100)
	before := h.Snapshot()
	h.Observe(7)
	h.Observe(2000)
	d := h.Snapshot().Sub(before)
	if d.Total != 2 {
		t.Fatalf("delta total=%d, want 2", d.Total)
	}
	if d.Sum != 2007 {
		t.Fatalf("delta sum=%d, want 2007", d.Sum)
	}
	// Sub against a foreign (larger) snapshot clamps, never underflows.
	if z := before.Sub(h.Snapshot()); z.Total != 0 || z.Sum != 0 {
		t.Fatalf("clamped sub = %+v, want zero", z)
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(16, 4)
	if r.SampleEvery() != DefaultSampleEvery {
		t.Fatalf("default stride %d, want %d", r.SampleEvery(), DefaultSampleEvery)
	}
	r.SetSampleEvery(100) // rounds up to 128
	if r.SampleEvery() != 128 {
		t.Fatalf("stride %d, want 128 (rounded)", r.SampleEvery())
	}
	if r.HitN(64) || !r.HitN(128) || !r.HitN(256) {
		t.Fatal("HitN mask wrong for stride 128")
	}
	r.SetSampleEvery(0)
	if r.SampleEvery() != 0 {
		t.Fatal("disabled stride should read 0")
	}
	// Ticks start at 1, so n == 0 never occurs in practice.
	for n := uint64(1); n < 1<<12; n++ {
		if r.HitN(n) {
			t.Fatalf("disabled recorder sampled tick %d", n)
		}
	}
	r.SetSampleEvery(1)
	if !r.HitN(7) || !r.HitN(8) {
		t.Fatal("stride 1 must sample every tick")
	}
}

func TestRecorderRingAndSlow(t *testing.T) {
	r := NewRecorder(8, 3)
	commit := func(keyLo uint64, total time.Duration) {
		var fr FlightRecord
		fr.Begin(0, keyLo)
		// Rewind t0 so TotalNs comes out near the requested duration
		// without sleeping.
		fr.t0 = fr.t0.Add(-total)
		r.Commit(&fr)
	}
	for i := 1; i <= 12; i++ {
		commit(uint64(i), time.Duration(i)*time.Millisecond)
	}
	if r.Recorded() != 12 {
		t.Fatalf("recorded %d, want 12", r.Recorded())
	}
	recent := r.Recent(100)
	if len(recent) != 8 {
		t.Fatalf("ring returned %d records, want 8 (capacity)", len(recent))
	}
	// Newest first: keys 12, 11, ..., 5.
	for i, rec := range recent {
		if want := uint64(12 - i); rec.KeyLo != want {
			t.Fatalf("recent[%d].KeyLo = %d, want %d", i, rec.KeyLo, want)
		}
	}
	slow := r.Slow(100)
	if len(slow) != 3 {
		t.Fatalf("slow log has %d records, want 3", len(slow))
	}
	for i, rec := range slow {
		if want := uint64(12 - i); rec.KeyLo != want {
			t.Fatalf("slow[%d].KeyLo = %d, want %d (worst first)", i, rec.KeyLo, want)
		}
		if rec.TotalNs <= 0 {
			t.Fatalf("slow[%d].TotalNs = %d, want > 0", i, rec.TotalNs)
		}
	}
	// A fast record must not displace the slow log.
	commit(99, time.Microsecond)
	if s := r.Slow(1); s[0].KeyLo != 12 {
		t.Fatalf("fast record displaced the slow log head (key %d)", s[0].KeyLo)
	}
	r.ResetSlow()
	if len(r.Slow(10)) != 0 {
		t.Fatal("ResetSlow left records")
	}
	// After reset, new commits repopulate.
	commit(7, time.Millisecond)
	if s := r.Slow(10); len(s) != 1 || s[0].KeyLo != 7 {
		t.Fatalf("slow log after reset = %+v", s)
	}
}

func TestFlightRecordStages(t *testing.T) {
	var fr FlightRecord
	fr.Begin(1, 2)
	fr.Stamp(StageInference)
	fr.Stamp(StageSearch)
	var sum int64
	for _, ns := range fr.StageNs {
		if ns < 0 {
			t.Fatalf("negative stage time: %v", fr.StageNs)
		}
		sum += ns
	}
	if total := time.Since(fr.t0).Nanoseconds(); sum > total {
		t.Fatalf("stage sum %d exceeds elapsed %d", sum, total)
	}
	// Nil receiver is the unsampled path; must not panic.
	var nilFr *FlightRecord
	nilFr.Stamp(StageFetch)
}

func TestProbeBound(t *testing.T) {
	// Matches the engine-test invariant: 2 + bitsFor(2e+1), where
	// bitsFor(n) = ceil(log2(n)) + 1.
	cases := []struct{ err, want int }{
		{0, 3}, {1, 5}, {2, 6}, {4, 7}, {8, 8}, {100, 11},
	}
	for _, c := range cases {
		if got := ProbeBound(c.err); got != c.want {
			t.Errorf("ProbeBound(%d) = %d, want %d", c.err, got, c.want)
		}
	}
	if ProbeBound(-5) != ProbeBound(0) {
		t.Error("negative error must clamp to zero")
	}
}

func TestDriftMeterExactTail(t *testing.T) {
	d := NewDriftMeter()
	if d.Drift() != 0 {
		t.Fatal("drift without bound must be 0")
	}
	d.SetBound(4) // bound = 7
	if d.Bound() != 7 {
		t.Fatalf("bound = %d, want 7", d.Bound())
	}
	if d.Drift() != 0 {
		t.Fatal("drift without traffic must be 0")
	}
	// 90 observations of 5 probes, 10 of 7: the exact (nearest-rank) p99 is
	// 7 probes. The log₂ interpolation this meter avoids would report a
	// fractional count here; the 2^p encoding must return the integer.
	for i := 0; i < 90; i++ {
		d.Observe(5)
	}
	for i := 0; i < 10; i++ {
		d.Observe(7)
	}
	if got := d.ProbeP99(); got != 7 {
		t.Fatalf("ProbeP99 = %v, want exactly 7", got)
	}
	// p99 sits exactly at the bound: drift 1, never past it — the
	// interpolated quantile this replaced overshot small integers and
	// reported > 1 on in-bound traffic.
	if got := d.Drift(); got != 1 {
		t.Fatalf("drift = %v, want exactly 1 (p99 at the bound)", got)
	}
}

func TestHotSketchDecayAndSkew(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	s := NewHotSketch(64)
	s.now = clk.now
	s.last = clk.t
	if s.Aliased() {
		t.Fatal("64 buckets must not alias")
	}
	for i := 0; i < 900; i++ {
		s.Touch(3)
	}
	for i := 0; i < 100; i++ {
		s.Touch(uint32(10 + i%50))
	}
	if got := s.Total(); got != 1000 {
		t.Fatalf("total = %d, want 1000", got)
	}
	top := s.Top(1)
	if len(top) != 1 || top[0].Slot != 3 || top[0].Count != 900 {
		t.Fatalf("top = %+v, want slot 3 count 900", top)
	}
	if skew := s.Skew(); skew < 0.85 {
		t.Fatalf("skew = %v, want ≥ 0.85 (slot 3 holds 90%%)", skew)
	}
	// Two decay periods halve twice: 900 >> 2 = 225, the per-slot 2s decay
	// to zero.
	clk.advance(2 * decayPeriod)
	if top := s.Top(1); top[0].Count != 225 {
		t.Fatalf("decayed top count = %d, want 225 (900 >> 2)", top[0].Count)
	}
	if got := s.Total(); got != 225 {
		t.Fatalf("decayed total = %d, want 225", got)
	}
}

func TestHotSketchAliasing(t *testing.T) {
	s := NewHotSketch(maxHotSlots * 4)
	if !s.Aliased() || s.Slots() != maxHotSlots {
		t.Fatalf("aliased=%v slots=%d, want true, %d", s.Aliased(), s.Slots(), maxHotSlots)
	}
	// Buckets b and b+maxHotSlots share a slot: over-counting, never losing.
	s.Touch(5)
	s.Touch(5 + maxHotSlots)
	if top := s.Top(1); top[0].Slot != 5 || top[0].Count != 2 {
		t.Fatalf("aliased top = %+v, want slot 5 count 2", top)
	}
}

func TestStartSpanAllocs(t *testing.T) {
	// The satellite fix: StartSpan must not allocate the Attrs map eagerly.
	bare := testing.AllocsPerRun(200, func() {
		sp := StartSpan("x")
		sp.End()
	})
	withAttr := testing.AllocsPerRun(200, func() {
		sp := StartSpan("x")
		sp.Set("k", 1)
		sp.End()
	})
	if bare >= withAttr {
		t.Fatalf("bare span allocates as much as one with attrs (%v vs %v) — Attrs map is eager again", bare, withAttr)
	}
	if bare > 1 {
		t.Fatalf("bare span allocates %v objects, want ≤ 1 (the span itself)", bare)
	}
}

func TestRegistryInfoAndEntries(t *testing.T) {
	r := NewRegistry()
	r.Counter("neurolpm_test_total", "a counter")
	r.Info("neurolpm_test_info", "an info", map[string]string{"b": "2", "a": "1"})
	r.Info("neurolpm_test_info", "an info", map[string]string{"a": "1", "go": "x"}) // last writer wins

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `neurolpm_test_info{a="1",go="x"} 1`) {
		t.Fatalf("info rendering missing/stale:\n%s", out)
	}
	if strings.Contains(out, `b="2"`) {
		t.Fatalf("stale info labels survived re-registration:\n%s", out)
	}

	es := r.Entries()
	kinds := map[string]string{}
	for _, e := range es {
		kinds[e.Name] = e.Kind
	}
	if kinds["neurolpm_test_total"] != "counter" || kinds["neurolpm_test_info"] != "info" {
		t.Fatalf("Entries kinds = %v", kinds)
	}

	snap := r.Snapshot()
	if snap[`neurolpm_test_info{a="1",go="x"}`] != 1 {
		t.Fatalf("expvar snapshot missing info: %v", snap)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Counter("neurolpm_test_info", "")
}

func TestBuildInfoAndProcessStart(t *testing.T) {
	SetBuildInfo(map[string]string{"mode": "test"})
	var sb strings.Builder
	Default.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "neurolpm_build_info{") ||
		!strings.Contains(out, `mode="test"`) ||
		!strings.Contains(out, "go_version=") {
		t.Fatalf("build info missing:\n%s", out)
	}
	if !strings.Contains(out, "neurolpm_process_start_time_seconds") {
		t.Fatalf("process start time missing:\n%s", out)
	}
}
