package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HotSketch is a compact decaying sketch of per-bucket access frequency —
// the input signal for CRAM-Lens-style tiered placement (ROADMAP: hot
// buckets in SRAM/HBM, cold in DRAM/flash). One uint32 slot per bucket up
// to maxHotSlots; beyond that buckets alias into slots by masking, which
// over-counts (never under-counts) hotness — the safe direction for a
// placement signal.
//
// Touch rides the engine's existing 1-in-sampleEvery sampled branch, so its
// two uncontended atomics amortize to well under a nanosecond per lookup.
// Counts decay by halving every decayPeriod, giving an exponential moving
// window of roughly 2·decayPeriod. Decay is applied lazily on the read side
// (every Top/Skew/Total call decays first) — sketches belong to rebuildable
// engines, so they are not rotor-registered; Tick exists for callers that
// want to drive decay explicitly.
type HotSketch struct {
	mask    uint32
	aliased bool // more buckets than slots: slots are aliased classes
	slots   []atomic.Uint32

	mu   sync.Mutex
	last time.Time
	now  func() time.Time
}

// maxHotSlots caps sketch memory at 256 KiB per shard (65536 × 4 B).
const maxHotSlots = 1 << 16

// hotCeiling saturates a slot so decay always has headroom and a single
// scorching bucket cannot wrap uint32.
const hotCeiling = 1 << 30

// decayPeriod is how often counts halve.
const decayPeriod = 10 * time.Second

// NewHotSketch sizes a sketch for nbuckets buckets.
func NewHotSketch(nbuckets int) *HotSketch {
	n := 1
	for n < nbuckets && n < maxHotSlots {
		n <<= 1
	}
	s := &HotSketch{
		mask:    uint32(n - 1),
		aliased: nbuckets > n,
		slots:   make([]atomic.Uint32, n),
		now:     time.Now,
	}
	s.last = s.now()
	return s
}

// Touch records one access to bucket b. Saturation is exact (CAS, not a
// racy check-then-add): now that tiered placement compares counts against a
// demotion threshold, a slot that raced past hotCeiling toward wraparound
// would read as cold and invert the hot/cold ordering, so the ceiling is a
// hard bound rather than an estimate.
func (s *HotSketch) Touch(b uint32) {
	slot := &s.slots[b&s.mask]
	for {
		v := slot.Load()
		if v >= hotCeiling {
			return
		}
		if slot.CompareAndSwap(v, v+1) {
			return
		}
	}
}

// Count returns bucket b's current (aliased) slot count without applying
// decay — the rebalancer's bulk read path. Callers comparing counts across
// buckets must Tick once first so every slot reflects the same decay epoch.
func (s *HotSketch) Count(b uint32) uint32 {
	return s.slots[b&s.mask].Load()
}

// Tick decays if a period has elapsed (the rotor entry point).
func (s *HotSketch) Tick(now time.Time) { s.decayTo(now) }

// decayTo applies elapsed/decayPeriod halvings. The Load/Store pair races
// with Touch and may drop a concurrent increment — an accepted error source
// in an approximate sketch.
func (s *HotSketch) decayTo(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := int(now.Sub(s.last) / decayPeriod)
	if k <= 0 {
		return
	}
	s.last = s.last.Add(time.Duration(k) * decayPeriod)
	if k > 31 {
		k = 31
	}
	for i := range s.slots {
		if v := s.slots[i].Load(); v != 0 {
			if v > hotCeiling {
				// Repair any slot above the ceiling (e.g. state restored from
				// a wrapped pre-hardening counter) instead of halving the
				// corrupt value as if it were real mass.
				v = hotCeiling
			}
			s.slots[i].Store(v >> uint(k))
		}
	}
}

// Aliased reports whether multiple buckets share slots.
func (s *HotSketch) Aliased() bool { return s.aliased }

// Slots returns the slot count.
func (s *HotSketch) Slots() int { return len(s.slots) }

// HotBucket is one entry of a Top listing. Slot equals the bucket index
// unless the sketch is aliased.
type HotBucket struct {
	Slot  uint32 `json:"slot"`
	Count uint32 `json:"count"`
}

// Top returns the k hottest slots (count-descending), after decay.
func (s *HotSketch) Top(k int) []HotBucket {
	s.decayTo(s.now())
	if k <= 0 {
		return nil
	}
	all := make([]HotBucket, 0, len(s.slots))
	for i := range s.slots {
		if c := s.slots[i].Load(); c != 0 {
			all = append(all, HotBucket{Slot: uint32(i), Count: c})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Count != all[b].Count {
			return all[a].Count > all[b].Count
		}
		return all[a].Slot < all[b].Slot
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Skew returns the fraction of (decayed) accesses held by the hottest 10%
// of slots — 0 on an idle sketch, approaching 1 under a Zipfian skew. This
// is the per-shard placement-pressure gauge: high skew means a small hot
// set that tiered memory can exploit.
func (s *HotSketch) Skew() float64 {
	s.decayTo(s.now())
	counts := make([]uint32, len(s.slots))
	var total uint64
	for i := range s.slots {
		counts[i] = s.slots[i].Load()
		total += uint64(counts[i])
	}
	if total == 0 {
		return 0
	}
	sort.Slice(counts, func(a, b int) bool { return counts[a] > counts[b] })
	top := len(counts) / 10
	if top < 1 {
		top = 1
	}
	var hot uint64
	for _, c := range counts[:top] {
		hot += uint64(c)
	}
	return float64(hot) / float64(total)
}

// Total returns the decayed access mass in the sketch.
func (s *HotSketch) Total() uint64 {
	s.decayTo(s.now())
	var total uint64
	for i := range s.slots {
		total += uint64(s.slots[i].Load())
	}
	return total
}
