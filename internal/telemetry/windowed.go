package telemetry

import (
	"sync"
	"time"
)

// Windowed turns a cumulative Histogram into a sliding-window view: "what is
// p99 over the last 10 seconds", not "since boot". The hot path is untouched
// — writers keep observing into the underlying lock-free Histogram — and the
// window machinery lives entirely on the read side: a ring of timestamped
// cumulative snapshots is rotated once per slice, and a window query returns
// the delta between the live snapshot and the ring entry just older than the
// window, so the answer covers at least the requested span (never less, up
// to one slice more).
//
// Rotation is lazy — every read rotates first — so a Windowed is correct
// with no background goroutine; the serve daemon additionally drives
// rotation from the rotor (rotor.go) so windows stay fresh between scrapes
// and a window query never has to bridge a long scrape gap with one stale
// snapshot.
type Windowed struct {
	h     *Histogram
	slice time.Duration

	mu    sync.Mutex
	snaps []winSnap // ring of cumulative snapshots, oldest → newest
	head  int       // next write position
	count int       // live entries in the ring
	last  time.Time // time of the newest ring snapshot
	now   func() time.Time
}

// winSnap is one ring entry: the cumulative state at a rotation instant.
type winSnap struct {
	at time.Time
	s  Snapshot
}

// NewWindowed wraps h with a sliding window and registers it with the rotor
// (use for process-lifetime windows only — rotor registrations are never
// removed). slice is the rotation period and retain the maximum window
// answerable (rounded up to whole slices); slice ≤ 0 selects 1s, retain ≤
// slice selects 64 slices.
func NewWindowed(h *Histogram, slice, retain time.Duration) *Windowed {
	w := NewWindowedLazy(h, slice, retain)
	registerRotatable(w)
	return w
}

// NewWindowedLazy is NewWindowed without rotor registration: rotation
// happens only on the read side (every Window call rotates first), which is
// exactly right for windows owned by rebuildable objects — per-engine drift
// meters — whose lifetime is shorter than the process.
func NewWindowedLazy(h *Histogram, slice, retain time.Duration) *Windowed {
	if slice <= 0 {
		slice = time.Second
	}
	n := 64
	if retain > slice {
		n = int(retain/slice) + 2
	}
	return &Windowed{h: h, slice: slice, snaps: make([]winSnap, n), now: time.Now}
}

// Hist returns the underlying cumulative histogram (the write side).
func (w *Windowed) Hist() *Histogram { return w.h }

// Observe forwards to the underlying histogram (lock-free; the window
// machinery never runs on the write path).
func (w *Windowed) Observe(v uint64) { w.h.Observe(v) }

// ObserveInt forwards to the underlying histogram.
func (w *Windowed) ObserveInt(v int) { w.h.ObserveInt(v) }

// Tick rotates if a slice has elapsed (the rotor entry point).
func (w *Windowed) Tick(now time.Time) {
	w.mu.Lock()
	w.rotateLocked(now)
	w.mu.Unlock()
}

// rotateLocked appends a cumulative snapshot when the newest ring entry is
// at least one slice old. One snapshot suffices however long the gap was:
// the ring stores cumulative state, so missing intermediate slices only
// coarsens which window spans are answerable, never the counts.
func (w *Windowed) rotateLocked(now time.Time) {
	if w.count > 0 && now.Sub(w.last) < w.slice {
		return
	}
	w.snaps[w.head] = winSnap{at: now, s: w.h.Snapshot()}
	w.head = (w.head + 1) % len(w.snaps)
	if w.count < len(w.snaps) {
		w.count++
	}
	w.last = now
}

// Window returns the observation delta covering at least d (the span ends
// now and starts at the newest ring snapshot ≥ d old). span reports how much
// time the delta actually covers; when the process is younger than d — or
// rotation has not been driven for that long — span is the age of the oldest
// available snapshot. d ≤ 0 returns the cumulative since-boot snapshot with
// span 0.
func (w *Windowed) Window(d time.Duration) (s Snapshot, span time.Duration) {
	cur := w.h.Snapshot()
	if d <= 0 {
		return cur, 0
	}
	now := w.now()
	w.mu.Lock()
	w.rotateLocked(now)
	base, at, ok := w.baseLocked(now, d)
	w.mu.Unlock()
	if !ok {
		return cur, 0
	}
	return cur.Sub(base), now.Sub(at)
}

// baseLocked finds the newest ring snapshot at least d old, falling back to
// the oldest available.
func (w *Windowed) baseLocked(now time.Time, d time.Duration) (Snapshot, time.Time, bool) {
	if w.count == 0 {
		return Snapshot{}, time.Time{}, false
	}
	// Walk newest → oldest; entries are in ring order ending at head-1.
	oldest := (w.head - w.count + len(w.snaps)) % len(w.snaps)
	for i := 1; i <= w.count; i++ {
		idx := (w.head - i + len(w.snaps)) % len(w.snaps)
		if now.Sub(w.snaps[idx].at) >= d {
			return w.snaps[idx].s, w.snaps[idx].at, true
		}
	}
	return w.snaps[oldest].s, w.snaps[oldest].at, true
}

// Sub returns the bucket-wise difference s − b (b must be an earlier
// snapshot of the same histogram; buckets are monotonic, so clamping guards
// only against snapshots from different histograms).
func (s Snapshot) Sub(b Snapshot) Snapshot {
	var out Snapshot
	for i := range s.Counts {
		if s.Counts[i] > b.Counts[i] {
			out.Counts[i] = s.Counts[i] - b.Counts[i]
			out.Total += out.Counts[i]
		}
	}
	if s.Sum > b.Sum {
		out.Sum = s.Sum - b.Sum
	}
	return out
}
