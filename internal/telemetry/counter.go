package telemetry

import "sync/atomic"

// padCounterShard is one stripe of a Counter, padded to a full cache line so
// writers on different shards never share a coherence granule.
type padCounterShard struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a lock-free monotonic counter striped across cache-line-padded
// atomic shards. The zero value is not usable; create with NewCounter or
// through a Registry.
type Counter struct {
	shards []padCounterShard
}

// NewCounter returns a standalone (unregistered) counter.
func NewCounter() *Counter {
	return &Counter{shards: make([]padCounterShard, numShards)}
}

// Inc adds one. It returns the new value of the caller's shard — not the
// global total — which serves as a cheap monotonic per-goroutine tick for
// sampling decisions (e.g. observe a histogram every 64th event) without a
// second atomic operation.
func (c *Counter) Inc() uint64 { return c.shards[shardIndex()].n.Add(1) }

// Add adds n. Like Inc it returns the caller's shard value, not the total.
func (c *Counter) Add(n uint64) uint64 { return c.shards[shardIndex()].n.Add(n) }

// Load returns the counter's current total. Concurrent with writers it is a
// consistent-enough snapshot: every completed Add is included.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Reset zeroes every shard. Racing writers may survive into the next epoch;
// Reset is for simulation re-runs and warmup phases, not for hot paths.
func (c *Counter) Reset() {
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}
