package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// DriftMeter watches one engine's secondary search against its compiled
// error bound — the §7 one-fetch-per-query invariant's early-warning
// companion. The compiled plane guarantees the search never exceeds
// ProbeBound(maxErr) probes; the meter records the observed (sampled)
// probe distribution in a sliding window and reports how close its tail
// sits to that ceiling. A drift near 1.0 means real traffic is exercising
// the worst case the bound allows — the signal to retrain or re-shard
// before a model update widens the bound further.
//
// Probe counts are small bounded integers, so the meter stores them
// exactly: Observe records probe count p as the value 2^p, which lands in
// log₂ bucket p+1 — every distinct probe count owns its own bucket, turning
// the shared windowed-histogram machinery into an exact linear histogram.
// (The snapshot's Sum is meaningless under this encoding; only Counts are
// read.)
type DriftMeter struct {
	bound atomic.Int32 // ProbeBound(maxErr) of the live compiled model
	win   *Windowed    // exact probe counts, sampled 1-in-sampleEvery
}

// ProbeBound converts a compiled maximum prediction error into the
// worst-case secondary-search probe count: locating the entry inside a
// ±maxErr slice (2·maxErr+1 candidates) by the canonical bounded binary
// search costs ⌈log₂(2·maxErr+1)⌉ probes, plus a constant for the boundary
// checks. This is the same ceiling the engine tests assert
// (core.TestLookupTrace*: probes ≤ 2 + bitsFor(2·maxErr+1)).
func ProbeBound(maxErr int) int {
	if maxErr < 0 {
		maxErr = 0
	}
	// ceil(log₂(m)) == bits.Len(m−1); m = 2·maxErr+1 ⇒ m−1 = 2·maxErr.
	return 3 + bits.Len(uint(2*maxErr))
}

// driftWindow is the sliding window the drift gauge evaluates over.
const driftWindow = 60 * time.Second

// maxProbeSlot caps the exact encoding: probe counts above it clamp to the
// top slot. Bounds are ≤ 3+65 for any representable error, so the cap only
// guards the shift.
const maxProbeSlot = 63

// NewDriftMeter returns a meter with no bound set (Drift reports 0 until
// SetBound is called with the live model's error).
func NewDriftMeter() *DriftMeter {
	return &DriftMeter{win: NewWindowedLazy(NewHistogram(), time.Second, 2*driftWindow)}
}

// SetBound installs the compiled model's maximum error (called at build and
// after every commit that swaps the model).
func (d *DriftMeter) SetBound(maxErr int) { d.bound.Store(int32(ProbeBound(maxErr))) }

// Bound returns the current probe ceiling (0 when unset).
func (d *DriftMeter) Bound() int { return int(d.bound.Load()) }

// Observe records one sampled query's secondary-search probe count.
func (d *DriftMeter) Observe(probes int) {
	if probes < 0 {
		probes = 0
	}
	if probes > maxProbeSlot {
		probes = maxProbeSlot
	}
	d.win.Observe(uint64(1) << uint(probes))
}

// probeQuantile decodes the 2^p encoding: the exact q-quantile of the
// recorded probe counts (bucket b holds probe count b−1).
func probeQuantile(s Snapshot, q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	rank := q * float64(s.Total)
	var cum float64
	for b := 1; b < numBuckets; b++ {
		cum += float64(s.Counts[b])
		if cum >= rank {
			return float64(b - 1)
		}
	}
	return 0
}

// window returns the last-minute probe snapshot, falling back to the
// cumulative distribution while the window is empty.
func (d *DriftMeter) window() Snapshot {
	s, _ := d.win.Window(driftWindow)
	if s.Total == 0 {
		s, _ = d.win.Window(0)
	}
	return s
}

// Drift returns observed-p99-probes / probe-bound over the last minute.
// 0 means no bound or no traffic; the engine's invariant keeps the ratio
// ≤ 1, and values near 1 mean the observed tail has consumed the bound's
// headroom — real traffic is concentrating on the model's worst submodels.
// Alert on sustained drift above ~0.75.
func (d *DriftMeter) Drift() float64 {
	b := d.bound.Load()
	if b <= 0 {
		return 0
	}
	s := d.window()
	if s.Total == 0 {
		return 0
	}
	return probeQuantile(s, 0.99) / float64(b)
}

// ProbeP99 returns the exact windowed 99th-percentile probe count.
func (d *DriftMeter) ProbeP99() float64 { return probeQuantile(d.window(), 0.99) }
