package telemetry

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after reset = %d, want 0", got)
	}
}

func TestCounterNoAlloc(t *testing.T) {
	c := NewCounter()
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %.1f objects per op", allocs)
	}
	h := NewHistogram()
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(17) }); allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f objects per op", allocs)
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	h := NewHistogram()
	var wantSum uint64
	for v := uint64(0); v < 1000; v++ {
		h.Observe(v)
		wantSum += v
	}
	s := h.Snapshot()
	if s.Total != 1000 {
		t.Fatalf("count = %d, want 1000", s.Total)
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if mean := s.Mean(); math.Abs(mean-float64(wantSum)/1000) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations of 8: every quantile must land in bucket [8,15].
	for i := 0; i < 1000; i++ {
		h.Observe(8)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		v := s.Quantile(q)
		if v < 8 || v > 15 {
			t.Fatalf("Quantile(%v) = %v, want within [8,15]", q, v)
		}
	}
	if s.Max() != 15 {
		t.Fatalf("Max = %d, want 15 (bucket upper bound)", s.Max())
	}

	// A bimodal distribution: the median must stay in the low mode and the
	// p99 in the high mode.
	h2 := NewHistogram()
	for i := 0; i < 990; i++ {
		h2.Observe(2)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1 << 20)
	}
	s2 := h2.Snapshot()
	if v := s2.Quantile(0.5); v > 3 {
		t.Fatalf("median = %v, want ≤ 3", v)
	}
	if v := s2.Quantile(0.999); v < 1<<19 {
		t.Fatalf("p99.9 = %v, want ≥ %d", v, 1<<19)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(0)
	s = h.Snapshot()
	if s.Total != 1 || s.Quantile(1) != 0 {
		t.Fatalf("zero observation: total=%d q1=%v", s.Total, s.Quantile(1))
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("get-or-create returned distinct counters for one name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Histogram("x_total", "help")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "a demo counter").Add(7)
	h := r.Histogram("demo_probes", "a demo histogram")
	h.Observe(3)
	h.Observe(5)
	r.Gauge("demo_ratio", "a demo gauge", func() float64 { return 1.0 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE demo_total counter", "demo_total 7",
		"# TYPE demo_ratio gauge", "demo_ratio 1",
		"# TYPE demo_probes histogram",
		`demo_probes_bucket{le="3"} 1`,
		`demo_probes_bucket{le="7"} 2`,
		`demo_probes_bucket{le="+Inf"} 2`,
		"demo_probes_sum 8", "demo_probes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	Default.Counter("expvar_demo_total", "demo").Inc()
	PublishExpvar()
	PublishExpvar() // second call must not panic
	v := expvar.Get("neurolpm")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	var m map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar payload is not JSON: %v", err)
	}
	if m["expvar_demo_total"] < 1 {
		t.Fatalf("expvar payload missing counter: %v", m)
	}
}

func TestSpan(t *testing.T) {
	sp := StartSpan("lookup")
	end := sp.Stage("inference")
	time.Sleep(time.Millisecond)
	end()
	sp.Set("probes", 9)
	sp.End()
	if len(sp.Stages) != 1 || sp.Stages[0].Name != "inference" {
		t.Fatalf("stages = %+v", sp.Stages)
	}
	if sp.Stages[0].DurNs <= 0 || sp.TotalNs < sp.Stages[0].DurNs {
		t.Fatalf("timing inconsistent: stage=%d total=%d", sp.Stages[0].DurNs, sp.TotalNs)
	}
	if _, err := json.Marshal(sp); err != nil {
		t.Fatalf("span must be JSON-serializable: %v", err)
	}

	// All span methods must be nil-safe so the hot path can pass nil.
	var nilSpan *Span
	nilSpan.Stage("x")()
	nilSpan.Set("k", 1)
	nilSpan.End()
}

// TestConcurrentHammer drives counters and histograms from 32 goroutines
// while a reader extracts quantiles — run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	const (
		writers   = 32
		perWriter = 20000
	)
	c := NewCounter()
	h := NewHistogram()
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if q := s.Quantile(0.99); q < 0 {
				t.Error("negative quantile")
				return
			}
			_ = c.Load()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(uint64(w*perWriter+i) % 4096)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := c.Load(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d (lost updates)", got, writers*perWriter)
	}
	if got := h.Snapshot().Total; got != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d (lost updates)", got, writers*perWriter)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			h.Observe(i & 1023)
			i++
		}
	})
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("pershard", "per-shard reading", "shard")
	v.Set("1", func() float64 { return 10 })
	v.Set("0", func() float64 { return 5 })
	// Get-or-create returns the same family; Set is last-writer-wins.
	r.GaugeVec("pershard", "per-shard reading", "shard").Set("1", func() float64 { return 11 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	want := "pershard{shard=\"0\"} 5\npershard{shard=\"1\"} 11\n"
	if !strings.Contains(out, want) {
		t.Fatalf("prometheus output missing sorted labeled series:\n%s", out)
	}
	snap := r.Snapshot()
	if snap[`pershard{shard="0"}`] != 5 || snap[`pershard{shard="1"}`] != 11 {
		t.Fatalf("snapshot missing labeled series: %v", snap)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Counter("pershard", "")
}

func TestGaugeVecLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("family", "", "shard")
	defer func() {
		if recover() == nil {
			t.Fatal("label mismatch did not panic")
		}
	}()
	r.GaugeVec("family", "", "bank")
}
