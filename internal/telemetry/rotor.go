package telemetry

import (
	"sync"
	"time"
)

// The rotor is the one background clock of the observability plane: a single
// goroutine (started at most once, by the serving layer) that ticks every
// rotatable — windowed-histogram rings, decaying hotness sketches — once per
// second. Everything the rotor does is also done lazily on the read path, so
// processes that never start it (tests, lpmbench) still get correct windows;
// the rotor only keeps windows fresh between reads in a long-running daemon.

// rotatable is anything that advances on a clock tick.
type rotatable interface {
	Tick(now time.Time)
}

var (
	rotMu   sync.Mutex
	rotList []rotatable

	rotorOnce sync.Once
)

// registerRotatable adds r to the rotor's tick list. Rotatables live for the
// process lifetime (they back registered metrics), so there is no unregister.
func registerRotatable(r rotatable) {
	rotMu.Lock()
	rotList = append(rotList, r)
	rotMu.Unlock()
}

// RotorTick advances every registered rotatable to now — the rotor body,
// exported so tests and experiments can drive time explicitly.
func RotorTick(now time.Time) {
	rotMu.Lock()
	list := append([]rotatable(nil), rotList...)
	rotMu.Unlock()
	for _, r := range list {
		r.Tick(now)
	}
}

// StartRotor launches the background ticker (idempotent; the goroutine runs
// for the process lifetime). The serving layer calls it; short-lived tools
// rely on lazy read-side rotation instead.
func StartRotor() {
	rotorOnce.Do(func() {
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for now := range t.C {
				RotorTick(now)
			}
		}()
	})
}
