package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestSketchSaturationExact drives Touch across the ceiling boundary and
// asserts the CAS saturation is exact: the slot parks at hotCeiling and
// never wraps, even under concurrency.
func TestSketchSaturationExact(t *testing.T) {
	s := NewHotSketch(4)
	// Start one increment below the ceiling.
	s.slots[1].Store(hotCeiling - 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				s.Touch(1)
			}
		}()
	}
	wg.Wait()
	if got := s.Count(1); got != hotCeiling {
		t.Fatalf("slot after saturating hammer = %d, want exactly %d", got, hotCeiling)
	}
}

// TestSketchWrapCannotInvertOrdering forces the failure mode the tier
// rebalancer cares about: a counter that wrapped past uint32 (simulated by
// storing a near-max value directly, as a long-running pre-hardening process
// could have produced) must not end up ordered below a genuinely hot bucket
// after decay, and must never be resurrected by Touch.
func TestSketchWrapCannotInvertOrdering(t *testing.T) {
	s := NewHotSketch(8)
	// Bucket 0: corrupt "wrapped" state far above the ceiling.
	s.slots[0].Store(math.MaxUint32 - 3)
	// Bucket 1: legitimately hot, saturated at the ceiling.
	s.slots[1].Store(hotCeiling)
	// Bucket 2: modestly warm.
	s.slots[2].Store(1000)

	// Touch must refuse to push either high slot further (no wrap to 0).
	for i := 0; i < 8; i++ {
		s.Touch(0)
		s.Touch(1)
	}
	if got := s.Count(0); got != math.MaxUint32-3 {
		t.Fatalf("Touch modified an above-ceiling slot: %d", got)
	}

	// One decay halving clamps the corrupt slot to the ceiling first, so it
	// decays like a maximally hot bucket instead of wrapping or jumping the
	// ordering.
	s.Tick(s.last.Add(decayPeriod))
	if got, want := s.Count(0), uint32(hotCeiling>>1); got != want {
		t.Fatalf("decayed wrapped slot = %d, want clamp-then-halve %d", got, want)
	}
	if s.Count(0) != s.Count(1) {
		t.Fatalf("wrapped slot (%d) and saturated-hot slot (%d) diverged after decay",
			s.Count(0), s.Count(1))
	}
	if s.Count(0) < s.Count(2) {
		t.Fatalf("hot/cold ordering inverted: wrapped-hot %d < warm %d", s.Count(0), s.Count(2))
	}
}

// TestSketchDecayEpochExtremes exercises the decay epoch arithmetic at the
// boundaries a long-running or clock-stepped process can hit: a huge elapsed
// interval (duration saturates at MaxInt64) must not panic, must zero the
// sketch via the 31-halving cap, and must leave the epoch caught up; a
// backwards clock step must be a no-op.
func TestSketchDecayEpochExtremes(t *testing.T) {
	s := NewHotSketch(4)
	s.slots[0].Store(hotCeiling)
	far := s.last.Add(time.Duration(math.MaxInt64))
	s.Tick(far)
	if got := s.Count(0); got != 0 {
		t.Fatalf("slot after saturated-elapsed decay = %d, want 0", got)
	}
	if s.last.After(far) {
		t.Fatalf("decay epoch overran now: last=%v now=%v", s.last, far)
	}

	// Clock steps backwards: elapsed is negative, nothing changes.
	s.slots[0].Store(42)
	before := s.last
	s.Tick(s.last.Add(-time.Hour))
	if got := s.Count(0); got != 42 {
		t.Fatalf("backwards clock decayed the sketch: %d", got)
	}
	if !s.last.Equal(before) {
		t.Fatalf("backwards clock moved the decay epoch")
	}

	// And the epoch still advances normally afterwards.
	s.Tick(before.Add(decayPeriod))
	if got := s.Count(0); got != 21 {
		t.Fatalf("post-recovery decay = %d, want 21", got)
	}
}
