// Package planetest hosts the parameterized differential-test matrix for the
// composable lookup-plane stack (DESIGN.md §14).
//
// Every exported lookup entry point in internal/core and internal/shard is a
// thin wrapper over one stack executor selected by plane.StackConfig; the
// correctness contract — every variant answers exactly what the trie oracle
// answers, for every key including misses — is therefore a property of the
// (topology, stack) matrix, not of individual methods. This package checks
// that property once, parameterized over plane.Combos():
//
//   - FuzzStackVsOracle — the single differential fuzz target replacing the
//     retired per-combination targets (core.FuzzEngineVsOracle,
//     shard.FuzzShardedVsOracle, shard.FuzzShardedUpdateVsOracle,
//     shard.FuzzCachedVsOracle). It drives arbitrary rule-sets, key streams
//     and update interleavings — with commit failures injected through
//     internal/fault — and checks every stack configuration against the
//     oracle after every step.
//   - TestStackMetamorphic — oracle-free cross-variant properties: all twelve
//     combos ({single,sharded} × {compiled,reference,quantized} ×
//     {cached,uncached}) agree with each other, batches equal single-key
//     answers, and batch answers are invariant under permutation, duplication
//     and repeat.
//   - TestLookupEntryPointsEquivalent — every exported lookup entry point on
//     a shared workload-calibrated corpus (hits and misses) versus the trie
//     oracle.
//   - TestCachedBatchZeroAllocs — pins the shared cached-batch miss-fill path
//     (core/stack.go lookupBatchCachedStack) at zero steady-state
//     allocations.
//
// The package lives outside internal/core and internal/shard so the matrix
// can exercise both topologies without an import cycle.
package planetest

import (
	"fmt"
	"math/rand"

	"neurolpm/internal/cachesim"
	"neurolpm/internal/core"
	"neurolpm/internal/keys"
	"neurolpm/internal/lcache"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/rqrmi"
	"neurolpm/internal/shard"
)

// FuzzModel is deliberately tiny: each fuzz execution trains a fresh model
// per shard, so the budget per iteration must stay in the low milliseconds.
func FuzzModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 4}
	cfg.Samples = 128
	cfg.Epochs = 10
	cfg.MaxRounds = 1
	return cfg
}

// QuickModel is the non-fuzz test configuration: big enough to keep error
// bounds reasonable on ~1K-rule sets, small enough to train in well under a
// second.
func QuickModel() rqrmi.Config {
	cfg := rqrmi.DefaultConfig()
	cfg.StageWidths = []int{1, 2, 8}
	cfg.Samples = 512
	cfg.Epochs = 20
	cfg.MaxRounds = 2
	return cfg
}

// DeriveRules decodes raw fuzz bytes into a valid width-bit rule-set:
// 6 bytes per rule (4 prefix, 1 length, 1 action), wildcard bits masked,
// duplicates dropped, capped at 48 rules so training stays fast.
func DeriveRules(width int, data []byte) []lpm.Rule {
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	var rules []lpm.Rule
	for i := 0; i+6 <= len(data) && len(rules) < 48; i += 6 {
		length := 1 + int(data[i+4])%width
		raw := uint64(data[i])<<24 | uint64(data[i+1])<<16 | uint64(data[i+2])<<8 | uint64(data[i+3])
		prefix := keys.FromUint64(raw).And(keys.MaxValue(width))
		prefix = prefix.Shr(uint(width - length)).Shl(uint(width - length))
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(data[i+5]) + 1})
	}
	return rules
}

// RandomRules returns n distinct random rules over width-bit keys with
// uniform prefix lengths in [1,width].
func RandomRules(width, n int, seed int64) []lpm.Rule {
	rng := rand.New(rand.NewSource(seed))
	type pl struct {
		p keys.Value
		l int
	}
	seen := map[pl]bool{}
	rules := make([]lpm.Rule, 0, n)
	for len(rules) < n {
		length := 1 + rng.Intn(width)
		shift := uint(width - length)
		prefix := keys.FromUint64(rng.Uint64()).And(keys.MaxValue(width)).Shr(shift).Shl(shift)
		k := pl{prefix, length}
		if seen[k] {
			continue
		}
		seen[k] = true
		rules = append(rules, lpm.Rule{Prefix: prefix, Len: length, Action: uint64(rng.Intn(1<<16)) + 1})
	}
	return rules
}

// Corpus returns the boundary keys (Low/High) of every rule plus n random
// keys drawn from rng — random keys over a sparse rule space are mostly
// misses, so the corpus always covers both match outcomes.
func Corpus(width int, rules []lpm.Rule, n int, rng *rand.Rand) []keys.Value {
	ks := make([]keys.Value, 0, 2*len(rules)+n)
	for _, r := range rules {
		ks = append(ks, r.Low(width), r.High(width))
	}
	for i := 0; i < n; i++ {
		ks = append(ks, keys.FromUint64(rng.Uint64()).And(keys.MaxValue(width)))
	}
	return ks
}

// Result is the topology-neutral answer shape the matrix compares.
type Result struct {
	Action  uint64
	Matched bool
}

// SingleCombos returns the plane.Single half of the matrix (6 stacks).
func SingleCombos() []plane.Combo { return topologyCombos(plane.Single) }

// ShardedCombos returns the plane.Sharded half of the matrix (6 stacks).
func ShardedCombos() []plane.Combo { return topologyCombos(plane.Sharded) }

func topologyCombos(tp plane.Topology) []plane.Combo {
	var out []plane.Combo
	for _, cb := range plane.Combos() {
		if cb.Topology == tp {
			out = append(out, cb)
		}
	}
	return out
}

// Fixture pairs one single-topology engine with one sharded updatable so a
// test can route any plane.Combo to the matching entry point. The two sides
// are independent: the fuzz harness mutates them separately and checks each
// against its own oracle.
type Fixture struct {
	Width int
	Eng   *core.Engine            // plane.Single topology
	Upd   *shard.ShardedUpdatable // plane.Sharded topology
	cache *lcache.Cache           // backs the single-topology cached stacks
}

// NewFixture wires the two topologies; the single-engine result cache is
// fixture-private (shard-side caches belong to the updatable's cache plane).
func NewFixture(width int, eng *core.Engine, upd *shard.ShardedUpdatable) *Fixture {
	return &Fixture{Width: width, Eng: eng, Upd: upd, cache: lcache.New(lcache.MinBytes)}
}

// Lookup answers one key through the combo's single-key entry point.
func (f *Fixture) Lookup(cb plane.Combo, k keys.Value) Result {
	if cb.Topology == plane.Sharded {
		a, ok, _ := f.Upd.LookupStack(cb.Stack, k)
		return Result{a, ok}
	}
	c := f.cache
	if !cb.Stack.Cached {
		c = nil
	}
	a, ok, _ := f.Eng.LookupStack(cb.Stack, k, c)
	return Result{a, ok}
}

// LookupBatch answers a key slice through the combo's batch entry point.
func (f *Fixture) LookupBatch(cb plane.Combo, ks []keys.Value) []Result {
	out := make([]Result, len(ks))
	if cb.Topology == plane.Sharded {
		for i, r := range f.Upd.LookupBatchStack(cb.Stack, ks) {
			out[i] = Result{r.Action, r.Matched}
		}
		return out
	}
	var c *lcache.Cache
	var epoch uint64
	if cb.Stack.Cached {
		c = f.cache
		epoch = f.Eng.CacheEpoch().Load()
	}
	for i, r := range f.Eng.LookupBatchStack(cb.Stack, ks, nil, cachesim.Null{}, c, epoch) {
		out[i] = Result{r.Action, r.Matched}
	}
	return out
}

// CheckCombos verifies every combo answers ks exactly like oracle, through
// both the batch and the single-key entry points. The batch carries every
// key twice so the second occurrence rides the intra-batch cache-hit path;
// cached stacks additionally probe each key twice single-key (fill, then
// hit). Returns the first mismatch as an error.
func (f *Fixture) CheckCombos(cs []plane.Combo, oracle *lpm.TrieMatcher, ks []keys.Value) error {
	doubled := append(append(make([]keys.Value, 0, 2*len(ks)), ks...), ks...)
	for _, cb := range cs {
		res := f.LookupBatch(cb, doubled)
		for i, k := range doubled {
			want, wantOK := oracle.Lookup(k)
			if res[i].Matched != wantOK || (wantOK && res[i].Action != want) {
				return fmt.Errorf("%s: batch[%d] key %v: (%d,%v), oracle (%d,%v)",
					cb, i, k, res[i].Action, res[i].Matched, want, wantOK)
			}
		}
		passes := 1
		if cb.Stack.Cached {
			passes = 2
		}
		for _, k := range ks {
			want, wantOK := oracle.Lookup(k)
			for pass := 0; pass < passes; pass++ {
				got := f.Lookup(cb, k)
				if got.Matched != wantOK || (wantOK && got.Action != want) {
					return fmt.Errorf("%s: key %v pass %d: (%d,%v), oracle (%d,%v)",
						cb, k, pass, got.Action, got.Matched, want, wantOK)
				}
			}
		}
	}
	return nil
}
