package planetest

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"neurolpm/internal/core"
	"neurolpm/internal/lpm"
	"neurolpm/internal/plane"
	"neurolpm/internal/shard"
	"neurolpm/internal/tier"
)

// TestTierMigrationRace hammers the tier store's race-free-by-construction
// claim under the race detector: reader goroutines sweep the full combo
// matrix while one goroutine churns placement (rebalance passes interleaved
// with full demotions) and another streams inserts and commits through the
// sharded side. There are no value assertions during the storm — racing
// migrations may legally serve either tier — but every lookup must stay
// memory-safe, and once the churn stops the whole matrix must agree with a
// trie oracle over the final rule-set.
func TestTierMigrationRace(t *testing.T) {
	const width = 32
	rules := RandomRules(width, 400, 31)
	rs, err := lpm.NewRuleSet(width, rules)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := tier.Config{Enabled: true, DemoteBelow: ^uint32(0)}
	eng, err := core.Build(rs, core.Config{BucketSize: 8, Model: QuickModel(), Tier: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	u, err := shard.BuildUpdatable(rs, core.Config{BucketSize: 8, Model: QuickModel(), Tier: tcfg}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	u.EnableCache(64 << 10)
	fx := NewFixture(width, eng, u)
	eng.TierStore().DemoteAll()

	const rounds = 200
	combos := plane.Combos()
	var wg sync.WaitGroup

	// Readers: each sweeps the matrix with its own key corpus and its own
	// Fixture over the shared engines — the fixture-private result cache is
	// a per-worker structure (like serve's per-worker caches), so sharing
	// one across readers would be a test bug, not an engine race.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			mine := NewFixture(width, eng, u)
			rng := rand.New(rand.NewSource(seed))
			ks := Corpus(width, rules, 32, rng)
			for i := 0; i < rounds; i++ {
				cb := combos[i%len(combos)]
				mine.LookupBatch(cb, ks)
				mine.Lookup(cb, ks[i%len(ks)])
			}
		}(int64(w) + 7)
	}

	// Placement churn: rebalance passes (burst promotion + aggressive
	// sketch demotion) interleaved with full demotions on every engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			eng.RebalanceTier()
			u.RebalanceTiers()
			if i%8 == 0 {
				eng.TierStore().DemoteAll()
				for s := 0; s < u.Shards(); s++ {
					u.Engine(s).TierStore().DemoteAll()
				}
			}
		}
	}()

	// Updates: inserts trickle in and commits rebuild shard engines mid-storm
	// (each rebuild swaps in a fresh all-fast tier store under the readers).
	wg.Add(1)
	var accepted []lpm.Rule
	go func() {
		defer wg.Done()
		for _, r := range RandomRules(width, 40, 97) {
			if rs.Find(r.Prefix, r.Len) != lpm.NoMatch {
				continue
			}
			if err := u.Insert(r); err != nil {
				if errors.Is(err, core.ErrDeltaFull) {
					u.CommitAll()
					continue
				}
				t.Errorf("insert %v: %v", r, err)
				return
			}
			accepted = append(accepted, r)
			if len(accepted)%8 == 0 {
				if err := u.CommitAll(); err != nil {
					t.Errorf("mid-storm commit: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: flush the stragglers, settle placement, and check the whole
	// sharded matrix against the oracle (the single engine still serves the
	// base set — check it separately).
	if err := u.CommitAll(); err != nil {
		t.Fatalf("final commit: %v", err)
	}
	u.RebalanceTiers()
	merged, err := lpm.NewRuleSet(width, append(append([]lpm.Rule(nil), rules...), accepted...))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	if err := fx.CheckCombos(ShardedCombos(), lpm.NewTrieMatcher(merged), Corpus(width, merged.Rules, 128, rng)); err != nil {
		t.Fatalf("post-storm sharded matrix: %v", err)
	}
	if err := fx.CheckCombos(SingleCombos(), lpm.NewTrieMatcher(rs), Corpus(width, rules, 128, rng)); err != nil {
		t.Fatalf("post-storm single matrix: %v", err)
	}
}
